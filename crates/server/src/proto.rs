//! The SIRI wire protocol: length-prefixed frames carrying a hand-rolled
//! binary codec over `siri_encoding`'s checked reader/writer.
//!
//! ## Framing
//!
//! Every message is one frame: a 4-byte big-endian payload length followed
//! by the payload. The length must be in `1..=max_frame` — a zero length,
//! an oversized length, or a short read all surface as clean
//! `io::ErrorKind::InvalidData` errors, never as a panic or an unbounded
//! allocation (the reader allocates only after validating the length).
//!
//! ## Payloads
//!
//! The first payload byte is a message tag; the rest is field data encoded
//! with [`ByteWriter`] (varints, length-prefixed byte strings). Decoding is
//! *total*: every read is bounds-checked, every count is validated against
//! a hard cap before allocation, and [`ByteReader::finish`] rejects
//! trailing bytes — malformed input yields [`CodecError`], nothing else.
//!
//! ## Versioning
//!
//! A connection opens with `Request::Hello { version }` and the server
//! answers `Response::Hello` with its own version; mismatches are rejected
//! with a wire error before any other verb is accepted.

use std::io::{self, Read, Write};

use bytes::Bytes;
use siri_core::{BatchOp, CommitInfo, Entry, IndexError, ShardCommit};
use siri_crypto::Hash;
use siri_encoding::{ByteReader, ByteWriter, CodecError};

/// Protocol version spoken by this build (bumped on any wire change).
/// History: 1 — initial verb set; 2 — `ProveRange`/`ProveBatch`.
pub const WIRE_VERSION: u8 = 2;

/// Default cap on one frame's payload (length prefix excluded).
pub const MAX_FRAME_BYTES: usize = 8 << 20;

/// Cap on ops in one commit, entries in one page, names in one listing.
pub const MAX_WIRE_ITEMS: usize = 1 << 20;

/// Cap on page hashes in one `Fetch` batch (keeps responses under the
/// frame cap for 4 KiB-class pages).
pub const MAX_FETCH_HASHES: usize = 1 << 12;

/// Cap on a branch-name length in bytes.
pub const MAX_NAME_BYTES: usize = 1 << 12;

/// Cap on keys in one `ProveBatch` (each key adds a root→leaf walk server
/// side, so this bounds per-request work as well as frame size).
pub const MAX_BATCH_KEYS: usize = 1 << 10;

/// Everything a client can ask.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Open a connection; must be the first message.
    Hello { version: u8 },
    /// Apply one atomic batch to a branch.
    Commit { branch: String, ops: Vec<BatchOp> },
    /// Point lookup on a branch head.
    Get { branch: String, key: Bytes },
    /// One page of an ordered range scan. `after` (exclusive) re-anchors
    /// the window past the last key already delivered, so the server keeps
    /// no cursor state between pages.
    Range { branch: String, start: WireBound, end: WireBound, after: Option<Bytes>, limit: u32 },
    /// List branch names.
    Branches,
    /// Create branch `to` at the head of `from`.
    Fork { from: String, to: String },
    /// Delete a branch.
    DeleteBranch { branch: String },
    /// The branch's published head digest (manifest digest when sharded).
    BranchDigest { branch: String },
    /// A Merkle proof for a key, plus the root it verifies against.
    Prove { branch: String, key: Bytes },
    /// A completeness proof for `[start, end)`, anchored at the branch
    /// digest (manifest-first on a sharded branch).
    ProveRange { branch: String, start: WireBound, end: WireBound },
    /// One deduplicated page set proving every key in `keys` at once.
    ProveBatch { branch: String, keys: Vec<Bytes> },
    /// Server and per-connection counters.
    Stats,
    /// Anti-entropy page fetch: the pages named by `hashes`, in order.
    Fetch { hashes: Vec<Hash> },
    /// Ask the server to stop (honored only when it opted in).
    Shutdown,
}

/// Everything a server can answer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    Hello {
        version: u8,
    },
    Committed(CommitInfo),
    Value(Option<Bytes>),
    /// One scan page; `done` means the range is exhausted.
    Page {
        entries: Vec<Entry>,
        done: bool,
    },
    Branches(Vec<String>),
    Ok,
    Digest(Hash),
    Proof {
        root: Hash,
        pages: Vec<Bytes>,
    },
    Stats(WireServerStats),
    /// Fetched pages, `None` where the server has no such page.
    Pages(Vec<Option<Bytes>>),
    Err(WireError),
}

/// `std::ops::Bound<Vec<u8>>` with a stable wire form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireBound {
    Unbounded,
    Included(Bytes),
    Excluded(Bytes),
}

impl WireBound {
    /// Borrow as the std bound the index API takes.
    pub fn as_bound(&self) -> std::ops::Bound<&[u8]> {
        match self {
            WireBound::Unbounded => std::ops::Bound::Unbounded,
            WireBound::Included(b) => std::ops::Bound::Included(b.as_ref()),
            WireBound::Excluded(b) => std::ops::Bound::Excluded(b.as_ref()),
        }
    }

    /// Convert from a borrowed std bound.
    pub fn from_bound(b: std::ops::Bound<&[u8]>) -> Self {
        match b {
            std::ops::Bound::Unbounded => WireBound::Unbounded,
            std::ops::Bound::Included(s) => WireBound::Included(Bytes::copy_from_slice(s)),
            std::ops::Bound::Excluded(s) => WireBound::Excluded(Bytes::copy_from_slice(s)),
        }
    }
}

/// An error crossing the wire. Known engine errors travel as codes so the
/// client can resurface the *same* [`IndexError`] variant the in-process
/// engine would have returned; everything else degrades to
/// [`IndexError::Remote`] carrying the server's rendering.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError {
    pub code: u64,
    pub aux: u64,
    pub message: String,
}

/// [`WireError::code`] for "branch does not exist".
pub const ERR_UNKNOWN_BRANCH: u64 = 1;
/// [`WireError::code`] for [`IndexError::BranchDeleted`].
pub const ERR_BRANCH_DELETED: u64 = 2;
/// [`WireError::code`] for [`IndexError::CommitContention`]; `aux` is the
/// attempt count.
pub const ERR_CONTENTION: u64 = 3;
/// [`WireError::code`] for "server at its connection cap" backpressure.
pub const ERR_BUSY: u64 = 4;
/// [`WireError::code`] for a protocol violation (bad handshake, bad frame
/// payload); the server closes the connection after sending it.
pub const ERR_PROTOCOL: u64 = 5;

impl WireError {
    /// Wrap an engine error for the wire.
    pub fn from_index_error(e: &IndexError) -> WireError {
        match e {
            IndexError::Unsupported("unknown branch") => {
                WireError { code: ERR_UNKNOWN_BRANCH, aux: 0, message: String::new() }
            }
            IndexError::BranchDeleted => {
                WireError { code: ERR_BRANCH_DELETED, aux: 0, message: String::new() }
            }
            IndexError::CommitContention { attempts } => WireError {
                code: ERR_CONTENTION,
                aux: u64::from(*attempts),
                message: String::new(),
            },
            other => WireError { code: 0, aux: 0, message: other.to_string() },
        }
    }

    /// Resurface on the client as the engine error it came from.
    pub fn into_index_error(self) -> IndexError {
        match self.code {
            ERR_UNKNOWN_BRANCH => IndexError::Unsupported("unknown branch"),
            ERR_BRANCH_DELETED => IndexError::BranchDeleted,
            ERR_CONTENTION => IndexError::CommitContention { attempts: self.aux as u32 },
            ERR_BUSY => IndexError::Remote("server busy (connection cap reached)".to_string()),
            ERR_PROTOCOL => IndexError::Remote(format!("protocol violation: {}", self.message)),
            _ => IndexError::Remote(self.message),
        }
    }
}

/// One connection's counters as reported by `Request::Stats`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WireConnStats {
    pub id: u64,
    pub peer: String,
    pub requests: u64,
    pub bytes_in: u64,
    pub bytes_out: u64,
    pub commits: u64,
    pub reads: u64,
    pub scan_pages: u64,
    pub sync_pages: u64,
}

/// Server-wide counters plus one row per live connection.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WireServerStats {
    pub accepted: u64,
    pub active: u64,
    pub rejected: u64,
    pub total_requests: u64,
    pub total_bytes_in: u64,
    pub total_bytes_out: u64,
    pub conns: Vec<WireConnStats>,
}

// ---- framing --------------------------------------------------------------

/// Write one frame (length prefix + payload) and flush.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    if payload.is_empty() || payload.len() > u32::MAX as usize {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "frame payload size out of range"));
    }
    w.write_all(&(payload.len() as u32).to_be_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Read one frame's payload, enforcing `1..=max` on the advertised length
/// *before* allocating. A peer that lies about the length (or sends
/// garbage where the prefix should be) gets `InvalidData`; a peer that
/// hangs up mid-frame gets `UnexpectedEof` — both are clean errors the
/// caller turns into a closed connection.
pub fn read_frame(r: &mut impl Read, max: usize) -> io::Result<Vec<u8>> {
    let mut prefix = [0u8; 4];
    r.read_exact(&mut prefix)?;
    let len = u32::from_be_bytes(prefix) as usize;
    if len == 0 || len > max {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} outside 1..={max}"),
        ));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(payload)
}

// ---- field helpers --------------------------------------------------------

fn put_hash(w: &mut ByteWriter, h: &Hash) {
    w.put_raw(h.as_bytes());
}

fn get_hash(r: &mut ByteReader<'_>) -> Result<Hash, CodecError> {
    Hash::from_slice(r.get_raw(32)?).ok_or(CodecError::BadLength { what: "hash" })
}

fn put_name(w: &mut ByteWriter, s: &str) {
    w.put_bytes(s.as_bytes());
}

fn get_name(r: &mut ByteReader<'_>) -> Result<String, CodecError> {
    let raw = r.get_bytes()?;
    if raw.len() > MAX_NAME_BYTES {
        return Err(CodecError::BadLength { what: "name" });
    }
    std::str::from_utf8(raw)
        .map(str::to_owned)
        .map_err(|_| CodecError::BadLength { what: "utf8 name" })
}

fn get_blob(r: &mut ByteReader<'_>) -> Result<Bytes, CodecError> {
    Ok(Bytes::copy_from_slice(r.get_bytes()?))
}

fn get_count(r: &mut ByteReader<'_>, cap: usize, what: &'static str) -> Result<usize, CodecError> {
    let n = r.get_varint()? as usize;
    if n > cap {
        return Err(CodecError::BadLength { what });
    }
    Ok(n)
}

fn put_bound(w: &mut ByteWriter, b: &WireBound) {
    match b {
        WireBound::Unbounded => w.put_u8(0),
        WireBound::Included(s) => {
            w.put_u8(1);
            w.put_bytes(s);
        }
        WireBound::Excluded(s) => {
            w.put_u8(2);
            w.put_bytes(s);
        }
    }
}

fn get_bound(r: &mut ByteReader<'_>) -> Result<WireBound, CodecError> {
    match r.get_u8()? {
        0 => Ok(WireBound::Unbounded),
        1 => Ok(WireBound::Included(get_blob(r)?)),
        2 => Ok(WireBound::Excluded(get_blob(r)?)),
        t => Err(CodecError::BadTag(t)),
    }
}

fn put_opt_bytes(w: &mut ByteWriter, b: &Option<Bytes>) {
    match b {
        None => w.put_u8(0),
        Some(s) => {
            w.put_u8(1);
            w.put_bytes(s);
        }
    }
}

fn get_opt_bytes(r: &mut ByteReader<'_>) -> Result<Option<Bytes>, CodecError> {
    match r.get_u8()? {
        0 => Ok(None),
        1 => Ok(Some(get_blob(r)?)),
        t => Err(CodecError::BadTag(t)),
    }
}

fn put_commit_info(w: &mut ByteWriter, info: &CommitInfo) {
    put_hash(w, &info.parent);
    put_hash(w, &info.root);
    w.put_varint(u64::from(info.retries));
    w.put_varint(info.shards.len() as u64);
    for s in &info.shards {
        w.put_varint(s.shard as u64);
        put_hash(w, &s.parent);
        put_hash(w, &s.root);
    }
}

fn get_commit_info(r: &mut ByteReader<'_>) -> Result<CommitInfo, CodecError> {
    let parent = get_hash(r)?;
    let root = get_hash(r)?;
    let retries = r.get_varint()? as u32;
    let n = get_count(r, MAX_WIRE_ITEMS, "shard receipts")?;
    let mut shards = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        let shard = r.get_varint()? as usize;
        let parent = get_hash(r)?;
        let root = get_hash(r)?;
        shards.push(ShardCommit { shard, parent, root });
    }
    Ok(CommitInfo { parent, root, retries, shards })
}

// ---- request codec --------------------------------------------------------

const REQ_HELLO: u8 = 1;
const REQ_COMMIT: u8 = 2;
const REQ_GET: u8 = 3;
const REQ_RANGE: u8 = 4;
const REQ_BRANCHES: u8 = 5;
const REQ_FORK: u8 = 6;
const REQ_DELETE_BRANCH: u8 = 7;
const REQ_BRANCH_DIGEST: u8 = 8;
const REQ_PROVE: u8 = 9;
const REQ_STATS: u8 = 10;
const REQ_FETCH: u8 = 11;
const REQ_SHUTDOWN: u8 = 12;
const REQ_PROVE_RANGE: u8 = 13;
const REQ_PROVE_BATCH: u8 = 14;

impl Request {
    /// Encode into one frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        match self {
            Request::Hello { version } => {
                w.put_u8(REQ_HELLO);
                w.put_u8(*version);
            }
            Request::Commit { branch, ops } => {
                w.put_u8(REQ_COMMIT);
                put_name(&mut w, branch);
                w.put_varint(ops.len() as u64);
                for op in ops {
                    w.put_bytes(&op.key);
                    put_opt_bytes(&mut w, &op.value);
                }
            }
            Request::Get { branch, key } => {
                w.put_u8(REQ_GET);
                put_name(&mut w, branch);
                w.put_bytes(key);
            }
            Request::Range { branch, start, end, after, limit } => {
                w.put_u8(REQ_RANGE);
                put_name(&mut w, branch);
                put_bound(&mut w, start);
                put_bound(&mut w, end);
                put_opt_bytes(&mut w, after);
                w.put_varint(u64::from(*limit));
            }
            Request::Branches => w.put_u8(REQ_BRANCHES),
            Request::Fork { from, to } => {
                w.put_u8(REQ_FORK);
                put_name(&mut w, from);
                put_name(&mut w, to);
            }
            Request::DeleteBranch { branch } => {
                w.put_u8(REQ_DELETE_BRANCH);
                put_name(&mut w, branch);
            }
            Request::BranchDigest { branch } => {
                w.put_u8(REQ_BRANCH_DIGEST);
                put_name(&mut w, branch);
            }
            Request::Prove { branch, key } => {
                w.put_u8(REQ_PROVE);
                put_name(&mut w, branch);
                w.put_bytes(key);
            }
            Request::ProveRange { branch, start, end } => {
                w.put_u8(REQ_PROVE_RANGE);
                put_name(&mut w, branch);
                put_bound(&mut w, start);
                put_bound(&mut w, end);
            }
            Request::ProveBatch { branch, keys } => {
                w.put_u8(REQ_PROVE_BATCH);
                put_name(&mut w, branch);
                w.put_varint(keys.len() as u64);
                for k in keys {
                    w.put_bytes(k);
                }
            }
            Request::Stats => w.put_u8(REQ_STATS),
            Request::Fetch { hashes } => {
                w.put_u8(REQ_FETCH);
                w.put_varint(hashes.len() as u64);
                for h in hashes {
                    put_hash(&mut w, h);
                }
            }
            Request::Shutdown => w.put_u8(REQ_SHUTDOWN),
        }
        w.into_vec()
    }

    /// Decode one frame payload. Total: any malformed input is a
    /// [`CodecError`], never a panic.
    pub fn decode(buf: &[u8]) -> Result<Request, CodecError> {
        let mut r = ByteReader::new(buf);
        let req = match r.get_u8()? {
            REQ_HELLO => Request::Hello { version: r.get_u8()? },
            REQ_COMMIT => {
                let branch = get_name(&mut r)?;
                let n = get_count(&mut r, MAX_WIRE_ITEMS, "commit ops")?;
                let mut ops = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    let key = get_blob(&mut r)?;
                    let value = get_opt_bytes(&mut r)?;
                    ops.push(BatchOp { key, value });
                }
                Request::Commit { branch, ops }
            }
            REQ_GET => Request::Get { branch: get_name(&mut r)?, key: get_blob(&mut r)? },
            REQ_RANGE => {
                let branch = get_name(&mut r)?;
                let start = get_bound(&mut r)?;
                let end = get_bound(&mut r)?;
                let after = get_opt_bytes(&mut r)?;
                let limit = r.get_varint()? as u32;
                Request::Range { branch, start, end, after, limit }
            }
            REQ_BRANCHES => Request::Branches,
            REQ_FORK => Request::Fork { from: get_name(&mut r)?, to: get_name(&mut r)? },
            REQ_DELETE_BRANCH => Request::DeleteBranch { branch: get_name(&mut r)? },
            REQ_BRANCH_DIGEST => Request::BranchDigest { branch: get_name(&mut r)? },
            REQ_PROVE => Request::Prove { branch: get_name(&mut r)?, key: get_blob(&mut r)? },
            REQ_PROVE_RANGE => {
                let branch = get_name(&mut r)?;
                let start = get_bound(&mut r)?;
                let end = get_bound(&mut r)?;
                Request::ProveRange { branch, start, end }
            }
            REQ_PROVE_BATCH => {
                let branch = get_name(&mut r)?;
                let n = get_count(&mut r, MAX_BATCH_KEYS, "batch keys")?;
                let mut keys = Vec::with_capacity(n);
                for _ in 0..n {
                    keys.push(get_blob(&mut r)?);
                }
                Request::ProveBatch { branch, keys }
            }
            REQ_STATS => Request::Stats,
            REQ_FETCH => {
                let n = get_count(&mut r, MAX_FETCH_HASHES, "fetch hashes")?;
                let mut hashes = Vec::with_capacity(n);
                for _ in 0..n {
                    hashes.push(get_hash(&mut r)?);
                }
                Request::Fetch { hashes }
            }
            REQ_SHUTDOWN => Request::Shutdown,
            t => return Err(CodecError::BadTag(t)),
        };
        r.finish()?;
        Ok(req)
    }
}

// ---- response codec -------------------------------------------------------

const RESP_HELLO: u8 = 129;
const RESP_COMMITTED: u8 = 130;
const RESP_VALUE: u8 = 131;
const RESP_PAGE: u8 = 132;
const RESP_BRANCHES: u8 = 133;
const RESP_OK: u8 = 134;
const RESP_DIGEST: u8 = 135;
const RESP_PROOF: u8 = 136;
const RESP_STATS: u8 = 137;
const RESP_PAGES: u8 = 138;
const RESP_ERR: u8 = 255;

impl Response {
    /// Encode into one frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        match self {
            Response::Hello { version } => {
                w.put_u8(RESP_HELLO);
                w.put_u8(*version);
            }
            Response::Committed(info) => {
                w.put_u8(RESP_COMMITTED);
                put_commit_info(&mut w, info);
            }
            Response::Value(v) => {
                w.put_u8(RESP_VALUE);
                put_opt_bytes(&mut w, v);
            }
            Response::Page { entries, done } => {
                w.put_u8(RESP_PAGE);
                w.put_u8(u8::from(*done));
                w.put_varint(entries.len() as u64);
                for e in entries {
                    w.put_bytes(&e.key);
                    w.put_bytes(&e.value);
                }
            }
            Response::Branches(names) => {
                w.put_u8(RESP_BRANCHES);
                w.put_varint(names.len() as u64);
                for n in names {
                    put_name(&mut w, n);
                }
            }
            Response::Ok => w.put_u8(RESP_OK),
            Response::Digest(h) => {
                w.put_u8(RESP_DIGEST);
                put_hash(&mut w, h);
            }
            Response::Proof { root, pages } => {
                w.put_u8(RESP_PROOF);
                put_hash(&mut w, root);
                w.put_varint(pages.len() as u64);
                for p in pages {
                    w.put_bytes(p);
                }
            }
            Response::Stats(s) => {
                w.put_u8(RESP_STATS);
                w.put_varint(s.accepted);
                w.put_varint(s.active);
                w.put_varint(s.rejected);
                w.put_varint(s.total_requests);
                w.put_varint(s.total_bytes_in);
                w.put_varint(s.total_bytes_out);
                w.put_varint(s.conns.len() as u64);
                for c in &s.conns {
                    w.put_varint(c.id);
                    put_name(&mut w, &c.peer);
                    w.put_varint(c.requests);
                    w.put_varint(c.bytes_in);
                    w.put_varint(c.bytes_out);
                    w.put_varint(c.commits);
                    w.put_varint(c.reads);
                    w.put_varint(c.scan_pages);
                    w.put_varint(c.sync_pages);
                }
            }
            Response::Pages(pages) => {
                w.put_u8(RESP_PAGES);
                w.put_varint(pages.len() as u64);
                for p in pages {
                    put_opt_bytes(&mut w, p);
                }
            }
            Response::Err(e) => {
                w.put_u8(RESP_ERR);
                w.put_varint(e.code);
                w.put_varint(e.aux);
                put_name(&mut w, &e.message);
            }
        }
        w.into_vec()
    }

    /// Decode one frame payload. Total, like [`Request::decode`].
    pub fn decode(buf: &[u8]) -> Result<Response, CodecError> {
        let mut r = ByteReader::new(buf);
        let resp = match r.get_u8()? {
            RESP_HELLO => Response::Hello { version: r.get_u8()? },
            RESP_COMMITTED => Response::Committed(get_commit_info(&mut r)?),
            RESP_VALUE => Response::Value(get_opt_bytes(&mut r)?),
            RESP_PAGE => {
                let done = match r.get_u8()? {
                    0 => false,
                    1 => true,
                    t => return Err(CodecError::BadTag(t)),
                };
                let n = get_count(&mut r, MAX_WIRE_ITEMS, "page entries")?;
                let mut entries = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    let key = get_blob(&mut r)?;
                    let value = get_blob(&mut r)?;
                    entries.push(Entry { key, value });
                }
                Response::Page { entries, done }
            }
            RESP_BRANCHES => {
                let n = get_count(&mut r, MAX_WIRE_ITEMS, "branch names")?;
                let mut names = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    names.push(get_name(&mut r)?);
                }
                Response::Branches(names)
            }
            RESP_OK => Response::Ok,
            RESP_DIGEST => Response::Digest(get_hash(&mut r)?),
            RESP_PROOF => {
                let root = get_hash(&mut r)?;
                let n = get_count(&mut r, MAX_WIRE_ITEMS, "proof pages")?;
                let mut pages = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    pages.push(get_blob(&mut r)?);
                }
                Response::Proof { root, pages }
            }
            RESP_STATS => {
                let accepted = r.get_varint()?;
                let active = r.get_varint()?;
                let rejected = r.get_varint()?;
                let total_requests = r.get_varint()?;
                let total_bytes_in = r.get_varint()?;
                let total_bytes_out = r.get_varint()?;
                let n = get_count(&mut r, MAX_WIRE_ITEMS, "connection rows")?;
                let mut conns = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    conns.push(WireConnStats {
                        id: r.get_varint()?,
                        peer: get_name(&mut r)?,
                        requests: r.get_varint()?,
                        bytes_in: r.get_varint()?,
                        bytes_out: r.get_varint()?,
                        commits: r.get_varint()?,
                        reads: r.get_varint()?,
                        scan_pages: r.get_varint()?,
                        sync_pages: r.get_varint()?,
                    });
                }
                Response::Stats(WireServerStats {
                    accepted,
                    active,
                    rejected,
                    total_requests,
                    total_bytes_in,
                    total_bytes_out,
                    conns,
                })
            }
            RESP_PAGES => {
                let n = get_count(&mut r, MAX_FETCH_HASHES, "fetched pages")?;
                let mut pages = Vec::with_capacity(n);
                for _ in 0..n {
                    pages.push(get_opt_bytes(&mut r)?);
                }
                Response::Pages(pages)
            }
            RESP_ERR => {
                let code = r.get_varint()?;
                let aux = r.get_varint()?;
                let message = get_name(&mut r)?;
                Response::Err(WireError { code, aux, message })
            }
            t => return Err(CodecError::BadTag(t)),
        };
        r.finish()?;
        Ok(resp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_round_trips() {
        let reqs = vec![
            Request::Hello { version: WIRE_VERSION },
            Request::Commit {
                branch: "master".into(),
                ops: vec![
                    BatchOp {
                        key: Bytes::from_static(b"k"),
                        value: Some(Bytes::from_static(b"v")),
                    },
                    BatchOp { key: Bytes::from_static(b"dead"), value: None },
                ],
            },
            Request::Range {
                branch: "b".into(),
                start: WireBound::Included(Bytes::from_static(b"a")),
                end: WireBound::Excluded(Bytes::from_static(b"z")),
                after: Some(Bytes::from_static(b"m")),
                limit: 128,
            },
            Request::Fetch { hashes: vec![siri_crypto::sha256(b"p")] },
            Request::ProveRange {
                branch: "b".into(),
                start: WireBound::Unbounded,
                end: WireBound::Included(Bytes::from_static(b"q")),
            },
            Request::ProveBatch {
                branch: "b".into(),
                keys: vec![Bytes::from_static(b"k1"), Bytes::from_static(b"k2")],
            },
            Request::ProveBatch { branch: "b".into(), keys: Vec::new() },
            Request::Shutdown,
        ];
        for req in reqs {
            assert_eq!(Request::decode(&req.encode()), Ok(req));
        }
    }

    #[test]
    fn oversized_batch_key_count_is_rejected() {
        let mut w = siri_encoding::ByteWriter::new();
        w.put_u8(14); // REQ_PROVE_BATCH
        w.put_bytes(b"b");
        w.put_varint((MAX_BATCH_KEYS + 1) as u64);
        assert!(Request::decode(&w.into_vec()).is_err());
    }

    #[test]
    fn response_round_trips() {
        let resps = vec![
            Response::Value(Some(Bytes::from_static(b"v"))),
            Response::Page { entries: vec![Entry::new(&b"k"[..], &b"v"[..])], done: true },
            Response::Err(WireError { code: ERR_BUSY, aux: 0, message: "busy".into() }),
        ];
        for resp in resps {
            assert_eq!(Response::decode(&resp.encode()), Ok(resp));
        }
    }

    #[test]
    fn truncated_and_garbage_payloads_are_clean_errors() {
        let good = Request::Get { branch: "b".into(), key: Bytes::from_static(b"k") }.encode();
        for cut in 0..good.len() {
            assert!(Request::decode(&good[..cut]).is_err());
        }
        assert!(Request::decode(&[0xfe, 1, 2, 3]).is_err());
    }

    #[test]
    fn oversized_frame_is_rejected_before_allocation() {
        let mut buf: &[u8] = &[0xff, 0xff, 0xff, 0xff, 0, 0];
        let err = read_frame(&mut buf, MAX_FRAME_BYTES).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }
}
