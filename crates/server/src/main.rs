//! `siri-server` — serve a POS-Tree Forkbase over TCP.
//!
//! ```text
//! siri-server --mem --listen 127.0.0.1:4733
//! siri-server --db ./data.siri --fsync commit --listen 0.0.0.0:4733
//! ```
//!
//! With `--db` the engine is durable: commits flush per the fsync policy
//! and every head digest is appended to the `<db>.head` sidecar, so a
//! restarted server re-attaches `master` where it left off (the same
//! sidecar format the `siri` CLI uses — the two tools are
//! interchangeable over one database directory). `--allow-shutdown`
//! enables the wire `shutdown` verb (used by CI's smoke job to assert a
//! clean exit).

use std::sync::Arc;

use siri_forkbase::{Forkbase, PosFactory};
use siri_pos_tree::PosParams;
use siri_server::{serve_addr, CommitHook, ServerOptions};
use siri_store::{FileStoreOptions, FsyncPolicy};

fn usage() -> ! {
    eprintln!(
        "usage: siri-server [--listen ADDR] [--db PATH | --mem] [--fsync never|commit|every=N|group=MS]\n\
         \x20                  [--max-conns N] [--timeout-ms MS] [--allow-shutdown]\n\
         serves the SIRI wire protocol (see DESIGN.md §11); --db persists pages and\n\
         branch heads under PATH / PATH.head, --mem serves an ephemeral store"
    );
    std::process::exit(2);
}

fn fail(msg: impl std::fmt::Display) -> ! {
    eprintln!("siri-server: {msg}");
    std::process::exit(1);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut listen = String::from("127.0.0.1:4733");
    let mut db: Option<String> = None;
    let mut fsync = FsyncPolicy::OnCommit;
    let mut opts = ServerOptions::default();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--listen" => {
                i += 1;
                listen = args.get(i).cloned().unwrap_or_else(|| usage());
            }
            "--db" => {
                i += 1;
                db = Some(args.get(i).cloned().unwrap_or_else(|| usage()));
            }
            "--mem" => db = None,
            "--fsync" => {
                i += 1;
                fsync = args.get(i).and_then(|s| FsyncPolicy::parse(s)).unwrap_or_else(|| usage());
            }
            "--max-conns" => {
                i += 1;
                opts.max_connections = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .filter(|&n| n > 0)
                    .unwrap_or_else(|| usage());
            }
            "--timeout-ms" => {
                i += 1;
                let ms: u64 = args.get(i).and_then(|s| s.parse().ok()).unwrap_or_else(|| usage());
                let t = Some(std::time::Duration::from_millis(ms));
                opts.read_timeout = t;
                opts.write_timeout = t;
            }
            "--allow-shutdown" => opts.allow_remote_shutdown = true,
            _ => usage(),
        }
        i += 1;
    }

    let factory = PosFactory(PosParams::default());
    let (engine, on_commit): (Arc<Forkbase<PosFactory>>, Option<CommitHook>) = match db {
        Some(path) => {
            let store_opts = FileStoreOptions { fsync, ..FileStoreOptions::default() };
            let engine = match Forkbase::new_durable(factory, &path, store_opts, 0) {
                Ok(e) => Arc::new(e),
                Err(e) => fail(format_args!("cannot open database at {path}: {e}")),
            };
            let head_file = format!("{path}.head");
            // Re-attach master from the sidecar (same format as the CLI).
            let history: Vec<siri_crypto::Hash> = std::fs::read_to_string(&head_file)
                .unwrap_or_default()
                .lines()
                .filter_map(siri_crypto::Hash::from_hex)
                .collect();
            if let Some(head) = history.last() {
                engine.open_branch("master", *head);
            }
            let hook: CommitHook = Box::new(move |branch: &str, root: siri_crypto::Hash| {
                // Only master's history lives in the sidecar; other
                // branches are in-memory (fork them again after restart).
                if branch != "master" {
                    return;
                }
                use std::io::Write;
                let appended = std::fs::OpenOptions::new()
                    .append(true)
                    .create(true)
                    .open(&head_file)
                    .and_then(|mut f| writeln!(f, "{root}").and_then(|()| f.sync_data()));
                if let Err(e) = appended {
                    eprintln!("siri-server: cannot record version in {head_file}: {e}");
                }
            });
            (engine, Some(hook))
        }
        None => {
            (Arc::new(Forkbase::with_store(factory, siri_store::MemStore::new_shared(), 0)), None)
        }
    };

    match serve_addr(engine, &listen, opts, on_commit) {
        Ok(handle) => {
            println!("listening on {}", handle.addr());
            handle.wait();
        }
        Err(e) => fail(format_args!("cannot bind {listen}: {e}")),
    }
}
