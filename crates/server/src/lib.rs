//! `siri-server` — a Forkbase engine behind a TCP socket.
//!
//! The server speaks the length-prefixed binary protocol defined in
//! [`proto`] (DESIGN.md §11): thread-per-connection over `std::net` — no
//! async runtime, nothing to vendor — with the blocking costs fenced by
//! per-socket read/write timeouts. Backpressure is a bounded connection
//! table: past [`ServerOptions::max_connections`] an incoming socket gets
//! one `ERR_BUSY` frame and a close, so load shedding is explicit and
//! immediate rather than an unbounded accept queue.
//!
//! Each connection carries its own atomic counter block ([`ConnCounters`]);
//! the `Stats` verb snapshots every live connection's row plus totals
//! folded in from closed ones. Locking discipline: the two server locks
//! (acceptor/registry, classes 4 and 6) order *below* every engine lock
//! (forkbase branch-map is 10), so a handler may consult the registry
//! while the engine works but never the reverse — the same runtime-checked
//! hierarchy `SIRI_LOCK_ORDER=1` enforces across the engine.

pub mod proto;

use std::collections::HashMap;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use parking_lot::{LockClass, Mutex};
use siri_core::{Session, WriteBatch};
use siri_forkbase::{Forkbase, IndexFactory};
use siri_store::NodeStore;

use proto::{
    read_frame, write_frame, Request, Response, WireConnStats, WireError, WireServerStats,
    ERR_BUSY, ERR_PROTOCOL, MAX_FETCH_HASHES, WIRE_VERSION,
};

/// Lock class for the acceptor's join-handle slot.
static ACCEPTOR_CLASS: LockClass = LockClass::new(4, "server.acceptor");
/// Lock class for the live-connection registry.
static REGISTRY_CLASS: LockClass = LockClass::new(6, "server.conn-registry");

/// Server tuning. The defaults suit a trusted LAN peer; tests shrink the
/// timeouts and caps to exercise the shedding and shutdown paths.
#[derive(Debug, Clone)]
pub struct ServerOptions {
    /// Connection slots; socket N+1 is refused with one `ERR_BUSY` frame.
    pub max_connections: usize,
    /// Per-socket read timeout (a connection idle longer is dropped).
    pub read_timeout: Option<Duration>,
    /// Per-socket write timeout (a peer that stops draining is dropped).
    pub write_timeout: Option<Duration>,
    /// Frame payload cap, both directions.
    pub max_frame_bytes: usize,
    /// Server-side clamp on entries per scan page.
    pub max_page_entries: u32,
    /// Honor `Request::Shutdown` (off by default: a remote stop switch is
    /// an operator decision, not a protocol default).
    pub allow_remote_shutdown: bool,
}

impl Default for ServerOptions {
    fn default() -> Self {
        ServerOptions {
            max_connections: 64,
            read_timeout: Some(Duration::from_secs(30)),
            write_timeout: Some(Duration::from_secs(30)),
            max_frame_bytes: proto::MAX_FRAME_BYTES,
            max_page_entries: 4096,
            allow_remote_shutdown: false,
        }
    }
}

/// Called after every successful commit with the branch and its new head
/// digest — the hook the CLI uses to persist heads to its sidecar file.
pub type CommitHook = Box<dyn Fn(&str, siri_crypto::Hash) + Send + Sync>;

/// One connection's counters. Shared between the handler thread (writes)
/// and the stats snapshot (reads); relaxed atomics — these are counters,
/// not synchronization.
#[derive(Debug, Default)]
pub struct ConnCounters {
    pub requests: AtomicU64,
    pub bytes_in: AtomicU64,
    pub bytes_out: AtomicU64,
    pub commits: AtomicU64,
    pub reads: AtomicU64,
    pub scan_pages: AtomicU64,
    pub sync_pages: AtomicU64,
}

struct ConnEntry {
    peer: String,
    counters: Arc<ConnCounters>,
    /// A clone of the handler's stream, kept so shutdown can unblock a
    /// handler parked in a read.
    stream: TcpStream,
}

#[derive(Default)]
struct Registry {
    conns: HashMap<u64, ConnEntry>,
    threads: Vec<JoinHandle<()>>,
}

struct Shared<F: IndexFactory> {
    engine: Arc<Forkbase<F>>,
    opts: ServerOptions,
    addr: SocketAddr,
    on_commit: Option<CommitHook>,
    stop: AtomicBool,
    accepted: AtomicU64,
    rejected: AtomicU64,
    next_id: AtomicU64,
    // Totals folded in from connections that already closed.
    closed_requests: AtomicU64,
    closed_bytes_in: AtomicU64,
    closed_bytes_out: AtomicU64,
    registry: Mutex<Registry>,
}

impl<F: IndexFactory> Shared<F> {
    fn snapshot(&self) -> WireServerStats {
        let mut stats = WireServerStats {
            accepted: self.accepted.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            total_requests: self.closed_requests.load(Ordering::Relaxed),
            total_bytes_in: self.closed_bytes_in.load(Ordering::Relaxed),
            total_bytes_out: self.closed_bytes_out.load(Ordering::Relaxed),
            ..WireServerStats::default()
        };
        let reg = self.registry.lock();
        stats.active = reg.conns.len() as u64;
        for (id, entry) in &reg.conns {
            let c = &entry.counters;
            let row = WireConnStats {
                id: *id,
                peer: entry.peer.clone(),
                requests: c.requests.load(Ordering::Relaxed),
                bytes_in: c.bytes_in.load(Ordering::Relaxed),
                bytes_out: c.bytes_out.load(Ordering::Relaxed),
                commits: c.commits.load(Ordering::Relaxed),
                reads: c.reads.load(Ordering::Relaxed),
                scan_pages: c.scan_pages.load(Ordering::Relaxed),
                sync_pages: c.sync_pages.load(Ordering::Relaxed),
            };
            stats.total_requests += row.requests;
            stats.total_bytes_in += row.bytes_in;
            stats.total_bytes_out += row.bytes_out;
            stats.conns.push(row);
        }
        stats.conns.sort_by_key(|c| c.id);
        stats
    }

    /// Begin a stop: raise the flag and unblock the acceptor with one
    /// throwaway connection.
    fn request_stop(&self) {
        self.stop.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_millis(500));
    }
}

/// A running server. Dropping the handle stops it (best effort); call
/// [`ServerHandle::shutdown`] for the explicit version, or
/// [`ServerHandle::wait`] to serve until a remote shutdown or listener
/// error (the CLI's `serve` mode).
pub struct ServerHandle<F: IndexFactory> {
    shared: Arc<Shared<F>>,
    acceptor: Mutex<Option<JoinHandle<()>>>,
}

impl<F: IndexFactory> ServerHandle<F> {
    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// A snapshot of server totals and per-connection counters, without a
    /// wire round trip (the `Stats` verb serves the same data remotely).
    pub fn stats(&self) -> WireServerStats {
        self.shared.snapshot()
    }

    /// Has a shutdown (local or remote) been initiated?
    pub fn stopping(&self) -> bool {
        self.shared.stop.load(Ordering::SeqCst)
    }

    /// Stop accepting, unblock and join every connection handler, then
    /// join the acceptor. Idempotent.
    pub fn shutdown(&self) {
        self.shared.request_stop();
        let acceptor = self.acceptor.lock().take();
        if let Some(t) = acceptor {
            let _ = t.join();
        }
        let (entries, threads) = {
            let mut reg = self.shared.registry.lock();
            (std::mem::take(&mut reg.conns), std::mem::take(&mut reg.threads))
        };
        for entry in entries.values() {
            let _ = entry.stream.shutdown(Shutdown::Both);
        }
        for t in threads {
            let _ = t.join();
        }
    }

    /// Block until the server stops (remote shutdown request or listener
    /// failure), then finish the teardown.
    pub fn wait(&self) {
        let acceptor = self.acceptor.lock().take();
        if let Some(t) = acceptor {
            let _ = t.join();
        }
        self.shutdown();
    }
}

impl<F: IndexFactory> Drop for ServerHandle<F> {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Serve `engine` on `listener` until shutdown. Returns immediately; the
/// acceptor and every connection run on their own threads.
pub fn serve<F>(
    engine: Arc<Forkbase<F>>,
    listener: TcpListener,
    opts: ServerOptions,
    on_commit: Option<CommitHook>,
) -> io::Result<ServerHandle<F>>
where
    F: IndexFactory + Send + Sync + 'static,
    F::Index: Send + Sync,
{
    let addr = listener.local_addr()?;
    let shared = Arc::new(Shared {
        engine,
        opts,
        addr,
        on_commit,
        stop: AtomicBool::new(false),
        accepted: AtomicU64::new(0),
        rejected: AtomicU64::new(0),
        next_id: AtomicU64::new(1),
        closed_requests: AtomicU64::new(0),
        closed_bytes_in: AtomicU64::new(0),
        closed_bytes_out: AtomicU64::new(0),
        registry: Mutex::with_class(Registry::default(), &REGISTRY_CLASS),
    });
    let accept_shared = shared.clone();
    let acceptor = std::thread::Builder::new()
        .name("siri-server-accept".into())
        .spawn(move || accept_loop(&accept_shared, &listener))?;
    Ok(ServerHandle { shared, acceptor: Mutex::with_class(Some(acceptor), &ACCEPTOR_CLASS) })
}

/// Bind and serve in one call, with bind failures reported to the caller.
pub fn serve_addr<F>(
    engine: Arc<Forkbase<F>>,
    addr: &str,
    opts: ServerOptions,
    on_commit: Option<CommitHook>,
) -> io::Result<ServerHandle<F>>
where
    F: IndexFactory + Send + Sync + 'static,
    F::Index: Send + Sync,
{
    serve(engine, TcpListener::bind(addr)?, opts, on_commit)
}

fn accept_loop<F>(shared: &Arc<Shared<F>>, listener: &TcpListener)
where
    F: IndexFactory + Send + Sync + 'static,
    F::Index: Send + Sync,
{
    loop {
        let Ok((stream, peer)) = listener.accept() else {
            if shared.stop.load(Ordering::SeqCst) {
                return;
            }
            continue;
        };
        if shared.stop.load(Ordering::SeqCst) {
            return;
        }
        let id = shared.next_id.fetch_add(1, Ordering::Relaxed);
        let counters = Arc::new(ConnCounters::default());
        // Bounded backpressure: register inside the cap or shed the
        // connection with one busy frame.
        let admitted = {
            let mut reg = shared.registry.lock();
            if reg.conns.len() >= shared.opts.max_connections {
                false
            } else {
                match stream.try_clone() {
                    Ok(clone) => {
                        reg.conns.insert(
                            id,
                            ConnEntry {
                                peer: peer.to_string(),
                                counters: counters.clone(),
                                stream: clone,
                            },
                        );
                        true
                    }
                    Err(_) => false,
                }
            }
        };
        if !admitted {
            shared.rejected.fetch_add(1, Ordering::Relaxed);
            let busy = Response::Err(WireError {
                code: ERR_BUSY,
                aux: 0,
                message: "connection cap reached".into(),
            });
            let mut w = BufWriter::new(&stream);
            let _ = write_frame(&mut w, &busy.encode());
            drop(w);
            let _ = stream.shutdown(Shutdown::Both);
            continue;
        }
        shared.accepted.fetch_add(1, Ordering::Relaxed);
        let conn_shared = shared.clone();
        let conn_counters = counters.clone();
        let spawn =
            std::thread::Builder::new().name(format!("siri-server-conn-{id}")).spawn(move || {
                handle_connection(&conn_shared, stream, &conn_counters);
                retire_connection(&conn_shared, id, &conn_counters);
            });
        match spawn {
            Ok(t) => shared.registry.lock().threads.push(t),
            Err(_) => {
                // Could not spawn a handler: undo the registration (the
                // entry's stream clone closes the socket when dropped).
                shared.registry.lock().conns.remove(&id);
                shared.rejected.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

/// Fold a finished connection's counters into the server totals and drop
/// its registry row.
fn retire_connection<F: IndexFactory>(shared: &Shared<F>, id: u64, counters: &ConnCounters) {
    shared.closed_requests.fetch_add(counters.requests.load(Ordering::Relaxed), Ordering::Relaxed);
    shared.closed_bytes_in.fetch_add(counters.bytes_in.load(Ordering::Relaxed), Ordering::Relaxed);
    shared
        .closed_bytes_out
        .fetch_add(counters.bytes_out.load(Ordering::Relaxed), Ordering::Relaxed);
    shared.registry.lock().conns.remove(&id);
}

/// Adapter that counts bytes through a reader/writer into an atomic.
struct Counted<T> {
    inner: T,
    count: Arc<ConnCounters>,
    incoming: bool,
}

impl<T> Counted<T> {
    fn tally(&self, n: usize) {
        let cell = if self.incoming { &self.count.bytes_in } else { &self.count.bytes_out };
        cell.fetch_add(n as u64, Ordering::Relaxed);
    }
}

impl<T: Read> Read for Counted<T> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let n = self.inner.read(buf)?;
        self.tally(n);
        Ok(n)
    }
}

impl<T: Write> Write for Counted<T> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let n = self.inner.write(buf)?;
        self.tally(n);
        Ok(n)
    }
    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

/// What the handler should do with the connection after a response.
enum After {
    Keep,
    /// Protocol is broken (bad handshake) — close this connection.
    Close,
    /// A remote shutdown was accepted — close and let the server stop.
    Stop,
}

fn handle_connection<F>(shared: &Arc<Shared<F>>, stream: TcpStream, counters: &Arc<ConnCounters>)
where
    F: IndexFactory + Send + Sync + 'static,
    F::Index: Send + Sync,
{
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(shared.opts.read_timeout);
    let _ = stream.set_write_timeout(shared.opts.write_timeout);
    let Ok(read_half) = stream.try_clone() else { return };
    let mut reader =
        BufReader::new(Counted { inner: read_half, count: counters.clone(), incoming: true });
    let mut writer =
        BufWriter::new(Counted { inner: stream, count: counters.clone(), incoming: false });
    let max_frame = shared.opts.max_frame_bytes;

    let mut greeted = false;
    while !shared.stop.load(Ordering::SeqCst) {
        let payload = match read_frame(&mut reader, max_frame) {
            Ok(p) => p,
            // Timeout, EOF, or a hopelessly malformed length prefix: the
            // frame boundary is gone, so the connection is done.
            Err(_) => break,
        };
        counters.requests.fetch_add(1, Ordering::Relaxed);
        let (response, after) = match Request::decode(&payload) {
            Ok(Request::Hello { version }) => {
                if version == WIRE_VERSION {
                    greeted = true;
                    (Response::Hello { version: WIRE_VERSION }, After::Keep)
                } else {
                    (
                        Response::Err(WireError {
                            code: ERR_PROTOCOL,
                            aux: u64::from(WIRE_VERSION),
                            message: format!("unsupported protocol version {version}"),
                        }),
                        After::Close,
                    )
                }
            }
            Ok(_) if !greeted => (
                Response::Err(WireError {
                    code: ERR_PROTOCOL,
                    aux: 0,
                    message: "expected Hello first".into(),
                }),
                After::Close,
            ),
            Ok(req) => dispatch(shared, req, counters),
            // A malformed payload inside a well-formed frame: report it
            // and keep the connection (framing is still in sync).
            Err(e) => (
                Response::Err(WireError { code: ERR_PROTOCOL, aux: 0, message: e.to_string() }),
                After::Keep,
            ),
        };
        if write_frame(&mut writer, &response.encode()).is_err() {
            break;
        }
        match after {
            After::Keep => {}
            After::Close => break,
            After::Stop => {
                shared.request_stop();
                break;
            }
        }
    }
}

fn dispatch<F>(shared: &Arc<Shared<F>>, req: Request, counters: &ConnCounters) -> (Response, After)
where
    F: IndexFactory + Send + Sync + 'static,
    F::Index: Send + Sync,
{
    let engine: &Forkbase<F> = &shared.engine;
    let resp = match req {
        Request::Hello { .. } => {
            return (
                Response::Err(WireError {
                    code: ERR_PROTOCOL,
                    aux: 0,
                    message: "duplicate Hello".into(),
                }),
                After::Close,
            )
        }
        Request::Commit { branch, ops } => {
            counters.commits.fetch_add(1, Ordering::Relaxed);
            match Session::commit(engine, &branch, WriteBatch::from_ops(ops)) {
                Ok(info) => {
                    if let Some(hook) = &shared.on_commit {
                        hook(&branch, info.root);
                    }
                    Response::Committed(info)
                }
                Err(e) => Response::Err(WireError::from_index_error(&e)),
            }
        }
        Request::Get { branch, key } => {
            counters.reads.fetch_add(1, Ordering::Relaxed);
            match Session::get(engine, &branch, &key) {
                Ok(v) => Response::Value(v),
                Err(e) => Response::Err(WireError::from_index_error(&e)),
            }
        }
        Request::Range { branch, start, end, after, limit } => {
            counters.scan_pages.fetch_add(1, Ordering::Relaxed);
            let limit = limit.clamp(1, shared.opts.max_page_entries) as usize;
            // Re-anchor past the last delivered key; the `after` cursor is
            // strictly inside the original window, so it only tightens the
            // start bound.
            let start_bound = match &after {
                Some(k) => std::ops::Bound::Excluded(k.as_ref()),
                None => start.as_bound(),
            };
            match Session::range(engine, &branch, start_bound, end.as_bound()) {
                Ok(cursor) => page_of(cursor, limit),
                Err(e) => Response::Err(WireError::from_index_error(&e)),
            }
        }
        Request::Branches => match Session::branches(engine) {
            Ok(names) => Response::Branches(names),
            Err(e) => Response::Err(WireError::from_index_error(&e)),
        },
        Request::Fork { from, to } => match Session::fork(engine, &from, &to) {
            Ok(()) => Response::Ok,
            Err(e) => Response::Err(WireError::from_index_error(&e)),
        },
        Request::DeleteBranch { branch } => match Session::delete_branch(engine, &branch) {
            Ok(()) => Response::Ok,
            Err(e) => Response::Err(WireError::from_index_error(&e)),
        },
        Request::BranchDigest { branch } => match Session::branch_digest(engine, &branch) {
            Ok(h) => Response::Digest(h),
            Err(e) => Response::Err(WireError::from_index_error(&e)),
        },
        Request::Prove { branch, key } => {
            counters.reads.fetch_add(1, Ordering::Relaxed);
            match Session::prove(engine, &branch, &key) {
                Ok((root, proof)) => Response::Proof { root, pages: proof.pages().to_vec() },
                Err(e) => Response::Err(WireError::from_index_error(&e)),
            }
        }
        Request::ProveRange { branch, start, end } => {
            counters.reads.fetch_add(1, Ordering::Relaxed);
            match Session::prove_range(engine, &branch, start.as_bound(), end.as_bound()) {
                Ok((root, proof)) => Response::Proof { root, pages: proof.pages().to_vec() },
                Err(e) => Response::Err(WireError::from_index_error(&e)),
            }
        }
        Request::ProveBatch { branch, keys } => {
            if keys.len() > proto::MAX_BATCH_KEYS {
                return (
                    Response::Err(WireError {
                        code: ERR_PROTOCOL,
                        aux: proto::MAX_BATCH_KEYS as u64,
                        message: "proof batch too large".into(),
                    }),
                    After::Keep,
                );
            }
            counters.reads.fetch_add(keys.len() as u64, Ordering::Relaxed);
            match Session::prove_batch(engine, &branch, &keys) {
                Ok((root, proof)) => Response::Proof { root, pages: proof.pages().to_vec() },
                Err(e) => Response::Err(WireError::from_index_error(&e)),
            }
        }
        Request::Stats => Response::Stats(shared.snapshot()),
        Request::Fetch { hashes } => {
            if hashes.len() > MAX_FETCH_HASHES {
                return (
                    Response::Err(WireError {
                        code: ERR_PROTOCOL,
                        aux: MAX_FETCH_HASHES as u64,
                        message: "fetch batch too large".into(),
                    }),
                    After::Keep,
                );
            }
            counters.sync_pages.fetch_add(hashes.len() as u64, Ordering::Relaxed);
            let store = engine.server_store();
            let mut pages = Vec::with_capacity(hashes.len());
            let mut fault = None;
            for h in &hashes {
                match store.try_get(h) {
                    Ok(p) => pages.push(p),
                    Err(e) => {
                        fault = Some(e);
                        break;
                    }
                }
            }
            match fault {
                None => Response::Pages(pages),
                Some(e) => Response::Err(WireError { code: 0, aux: 0, message: e.to_string() }),
            }
        }
        Request::Shutdown => {
            if shared.opts.allow_remote_shutdown {
                return (Response::Ok, After::Stop);
            }
            Response::Err(WireError { code: 0, aux: 0, message: "remote shutdown disabled".into() })
        }
    };
    (resp, After::Keep)
}

/// Drain up to `limit` entries into one scan page; fetch one extra to
/// learn whether the range is exhausted without a second round trip.
fn page_of(cursor: siri_core::EntryCursor, limit: usize) -> Response {
    let mut entries = Vec::with_capacity(limit.min(1024));
    for item in cursor {
        match item {
            Ok(e) => {
                entries.push(e);
                if entries.len() > limit {
                    entries.pop();
                    return Response::Page { entries, done: false };
                }
            }
            Err(e) => return Response::Err(WireError::from_index_error(&e)),
        }
    }
    Response::Page { entries, done: true }
}
