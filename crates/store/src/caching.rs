//! Client-side node cache over a remote store.
//!
//! Models the Forkbase deployment of §5.6.1: reads issued by a client first
//! consult a local node cache and fall back to the server, paying a remote
//! fetch. Real networking is substituted by a synthetic, configurable
//! per-fetch cost that the caller folds into measured time (see DESIGN.md
//! §2); the *shape* of Figure 21 is driven by the cache hit ratio, which
//! this layer reproduces faithfully.
//!
//! The cache is a capacity-bounded [`ShardedLru`] (DESIGN.md §3): earlier
//! revisions used an unbounded map, which grew without limit on long
//! workloads — exactly what the Figure 21 cache-size sweep cannot tolerate,
//! since the sweep's x-axis *is* the bound. Hit/miss/eviction counters are
//! folded into [`StoreStats`] (`cache_*` fields).
//!
//! Writes bypass the cache entirely — in Forkbase "the write operations
//! will be performed on the server side completely".

use std::sync::atomic::{AtomicU64, Ordering};

use bytes::Bytes;
use siri_crypto::Hash;

use crate::cache::{CacheStats, ShardedLru};
use crate::{NodeStore, SharedStore, StoreResult, StoreStats};

/// Default page capacity of a client cache: ≈16 MB at 1 KB pages, the
/// mid-range point of the §5.6.1 sweep.
pub const DEFAULT_CLIENT_CACHE_PAGES: usize = 16 * 1024;

/// A read-through, capacity-bounded page cache in front of a shared
/// ("server") store.
pub struct CachingStore {
    server: SharedStore,
    cache: ShardedLru<Bytes>,
    /// Nanoseconds of synthetic latency charged per remote fetch.
    fetch_cost_nanos: u64,
    synthetic_nanos: AtomicU64,
    remote_fetch_count: AtomicU64,
}

impl CachingStore {
    /// `fetch_cost_nanos` is the modelled round-trip cost of pulling one
    /// page from the server. The cache holds up to
    /// [`DEFAULT_CLIENT_CACHE_PAGES`] pages; use
    /// [`CachingStore::with_capacity`] for the Figure 21 sweep.
    pub fn new(server: SharedStore, fetch_cost_nanos: u64) -> Self {
        Self::with_capacity(server, fetch_cost_nanos, DEFAULT_CLIENT_CACHE_PAGES)
    }

    /// A client cache bounded to `capacity` pages (0 = no caching: every
    /// read is a remote fetch).
    pub fn with_capacity(server: SharedStore, fetch_cost_nanos: u64, capacity: usize) -> Self {
        CachingStore {
            server,
            cache: ShardedLru::new(capacity),
            fetch_cost_nanos,
            synthetic_nanos: AtomicU64::new(0),
            remote_fetch_count: AtomicU64::new(0),
        }
    }

    /// Pages fetched from the server (cache misses that found the page).
    pub fn remote_fetches(&self) -> u64 {
        // A miss on a page the server doesn't have either is not a fetch;
        // misses are counted at probe time, fetches at transfer time.
        self.remote_fetch_count.load(Ordering::Relaxed)
    }

    /// Reads served from the local cache.
    pub fn local_hits(&self) -> u64 {
        self.cache.stats().hits
    }

    /// Pages evicted from the local cache to stay under its bound.
    pub fn evictions(&self) -> u64 {
        self.cache.stats().evictions
    }

    /// Total synthetic latency accumulated so far, in nanoseconds. Harnesses
    /// add this to wall-clock time when computing client-side throughput.
    pub fn synthetic_nanos(&self) -> u64 {
        self.synthetic_nanos.load(Ordering::Relaxed)
    }

    /// Cache hit ratio over all reads so far (1.0 if no reads).
    pub fn hit_ratio(&self) -> f64 {
        let hits = self.local_hits() as f64;
        let total = hits + self.remote_fetches() as f64;
        if total == 0.0 {
            1.0
        } else {
            hits / total
        }
    }

    /// Raw cache counters (hits, misses, evictions, len, capacity).
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Drop all cached pages (e.g. to model a fresh client).
    pub fn clear(&self) {
        self.cache.clear();
    }

    /// Number of pages currently cached.
    pub fn cached_pages(&self) -> usize {
        self.cache.len()
    }
}

impl NodeStore for CachingStore {
    fn try_put(&self, page: Bytes) -> StoreResult<Hash> {
        // Server-side write; the page is *not* installed in the local cache
        // (matches Forkbase: clients cache nodes only after reading them).
        self.server.try_put(page)
    }

    fn try_put_raw(&self, page: &[u8]) -> StoreResult<Hash> {
        self.server.try_put_raw(page)
    }

    fn try_put_many(&self, pages: &[Bytes]) -> StoreResult<Vec<Hash>> {
        self.server.try_put_many(pages)
    }

    fn try_get(&self, hash: &Hash) -> StoreResult<Option<Bytes>> {
        if let Some(page) = self.cache.get(hash) {
            return Ok(Some(page));
        }
        // A server fault propagates; only a definitive miss returns None,
        // and only a definitive hit is cached.
        let Some(fetched) = self.server.try_get(hash)? else {
            return Ok(None);
        };
        self.remote_fetch_count.fetch_add(1, Ordering::Relaxed);
        self.synthetic_nanos.fetch_add(self.fetch_cost_nanos, Ordering::Relaxed);
        self.cache.insert(*hash, fetched.clone());
        Ok(Some(fetched))
    }

    fn contains(&self, hash: &Hash) -> bool {
        // `peek`, not `get`: an existence check is not a read — it must not
        // count toward the hit ratio or disturb LRU recency.
        self.cache.peek(hash) || self.server.contains(hash)
    }

    fn stats(&self) -> StoreStats {
        let cache = self.cache.stats();
        StoreStats {
            cache_hits: cache.hits,
            cache_misses: cache.misses,
            cache_evictions: cache.evictions,
            ..self.server.stats()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MemStore;

    #[test]
    fn second_read_hits_cache() {
        let server = MemStore::new_shared();
        let h = server.put(Bytes::from_static(b"page"));
        let client = CachingStore::new(server, 1_000);
        assert!(client.get(&h).is_some());
        assert!(client.get(&h).is_some());
        assert_eq!(client.remote_fetches(), 1);
        assert_eq!(client.local_hits(), 1);
        assert_eq!(client.synthetic_nanos(), 1_000);
        assert!((client.hit_ratio() - 0.5).abs() < 1e-12);
        let s = client.stats();
        assert_eq!(s.cache_hits, 1);
        assert_eq!(s.cache_misses, 1);
    }

    #[test]
    fn writes_do_not_populate_cache() {
        let server = MemStore::new_shared();
        let client = CachingStore::new(server, 500);
        let h = client.put(Bytes::from_static(b"written"));
        assert_eq!(client.cached_pages(), 0);
        // First read is still remote.
        assert!(client.get(&h).is_some());
        assert_eq!(client.remote_fetches(), 1);
    }

    #[test]
    fn missing_pages_cost_nothing() {
        let server = MemStore::new_shared();
        let client = CachingStore::new(server, 500);
        assert!(client.get(&siri_crypto::sha256(b"ghost")).is_none());
        assert_eq!(client.remote_fetches(), 0);
        assert_eq!(client.synthetic_nanos(), 0);
    }

    #[test]
    fn clear_forces_refetch() {
        let server = MemStore::new_shared();
        let h = server.put(Bytes::from_static(b"page"));
        let client = CachingStore::new(server, 100);
        client.get(&h);
        client.clear();
        client.get(&h);
        assert_eq!(client.remote_fetches(), 2);
    }

    #[test]
    fn capacity_bounds_resident_pages() {
        let server = MemStore::new_shared();
        let hashes: Vec<_> =
            (0..500u32).map(|i| server.put(Bytes::from(i.to_le_bytes().to_vec()))).collect();
        let client = CachingStore::with_capacity(server, 100, 64);
        for h in &hashes {
            assert!(client.get(h).is_some());
        }
        assert!(client.cached_pages() <= 64, "cache grew past its bound");
        assert!(client.evictions() > 0, "500 pages through a 64-page cache must evict");
        assert_eq!(client.stats().cache_evictions, client.evictions());
        // Synthetic cost was charged for every remote fetch.
        assert_eq!(client.synthetic_nanos(), 100 * client.remote_fetches());
    }

    #[test]
    fn zero_capacity_is_pure_remote() {
        let server = MemStore::new_shared();
        let h = server.put(Bytes::from_static(b"page"));
        let client = CachingStore::with_capacity(server, 10, 0);
        client.get(&h);
        client.get(&h);
        assert_eq!(client.remote_fetches(), 2);
        assert_eq!(client.local_hits(), 0);
        assert_eq!(client.cached_pages(), 0);
    }

    #[test]
    fn smaller_cache_lower_hit_ratio() {
        // The Figure 21 mechanism in miniature: same access stream,
        // shrinking capacity, monotonically (weakly) worse hit ratio.
        let server = MemStore::new_shared();
        let hashes: Vec<_> =
            (0..200u32).map(|i| server.put(Bytes::from(i.to_le_bytes().to_vec()))).collect();
        let mut ratios = Vec::new();
        for cap in [256usize, 64, 16] {
            let client = CachingStore::with_capacity(server.clone(), 100, cap);
            for _ in 0..3 {
                for h in &hashes {
                    client.get(h);
                }
            }
            ratios.push(client.hit_ratio());
        }
        assert!(ratios[0] > ratios[2], "256-page cache must beat 16-page: {ratios:?}");
    }
}
