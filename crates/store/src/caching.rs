//! Client-side node cache over a remote store.
//!
//! Models the Forkbase deployment of §5.6.1: reads issued by a client first
//! consult a local node cache and fall back to the server, paying a remote
//! fetch. Real networking is substituted by a synthetic, configurable
//! per-fetch cost that the caller folds into measured time (see DESIGN.md
//! §2); the *shape* of Figure 21 is driven by the cache hit ratio, which
//! this layer reproduces faithfully.
//!
//! Writes bypass the cache entirely — in Forkbase "the write operations
//! will be performed on the server side completely".

use std::sync::atomic::{AtomicU64, Ordering};

use bytes::Bytes;
use parking_lot::RwLock;
use siri_crypto::{FxHashMap, Hash};

use crate::{NodeStore, SharedStore, StoreStats};

/// A read-through node cache in front of a shared ("server") store.
pub struct CachingStore {
    server: SharedStore,
    cache: RwLock<FxHashMap<Hash, Bytes>>,
    /// Nanoseconds of synthetic latency charged per remote fetch.
    fetch_cost_nanos: u64,
    remote_fetches: AtomicU64,
    local_hits: AtomicU64,
    synthetic_nanos: AtomicU64,
}

impl CachingStore {
    /// `fetch_cost_nanos` is the modelled round-trip cost of pulling one
    /// page from the server.
    pub fn new(server: SharedStore, fetch_cost_nanos: u64) -> Self {
        CachingStore {
            server,
            cache: RwLock::new(FxHashMap::default()),
            fetch_cost_nanos,
            remote_fetches: AtomicU64::new(0),
            local_hits: AtomicU64::new(0),
            synthetic_nanos: AtomicU64::new(0),
        }
    }

    /// Pages fetched from the server (cache misses).
    pub fn remote_fetches(&self) -> u64 {
        self.remote_fetches.load(Ordering::Relaxed)
    }

    /// Reads served from the local cache.
    pub fn local_hits(&self) -> u64 {
        self.local_hits.load(Ordering::Relaxed)
    }

    /// Total synthetic latency accumulated so far, in nanoseconds. Harnesses
    /// add this to wall-clock time when computing client-side throughput.
    pub fn synthetic_nanos(&self) -> u64 {
        self.synthetic_nanos.load(Ordering::Relaxed)
    }

    /// Cache hit ratio over all reads so far (1.0 if no reads).
    pub fn hit_ratio(&self) -> f64 {
        let hits = self.local_hits() as f64;
        let total = hits + self.remote_fetches() as f64;
        if total == 0.0 {
            1.0
        } else {
            hits / total
        }
    }

    /// Drop all cached pages (e.g. to model a fresh client).
    pub fn clear(&self) {
        self.cache.write().clear();
    }

    /// Number of pages currently cached.
    pub fn cached_pages(&self) -> usize {
        self.cache.read().len()
    }
}

impl NodeStore for CachingStore {
    fn put(&self, page: Bytes) -> Hash {
        // Server-side write; the page is *not* installed in the local cache
        // (matches Forkbase: clients cache nodes only after reading them).
        self.server.put(page)
    }

    fn get(&self, hash: &Hash) -> Option<Bytes> {
        if let Some(page) = self.cache.read().get(hash) {
            self.local_hits.fetch_add(1, Ordering::Relaxed);
            return Some(page.clone());
        }
        let fetched = self.server.get(hash)?;
        self.remote_fetches.fetch_add(1, Ordering::Relaxed);
        self.synthetic_nanos.fetch_add(self.fetch_cost_nanos, Ordering::Relaxed);
        self.cache.write().insert(*hash, fetched.clone());
        Some(fetched)
    }

    fn contains(&self, hash: &Hash) -> bool {
        self.cache.read().contains_key(hash) || self.server.contains(hash)
    }

    fn stats(&self) -> StoreStats {
        self.server.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MemStore;

    #[test]
    fn second_read_hits_cache() {
        let server = MemStore::new_shared();
        let h = server.put(Bytes::from_static(b"page"));
        let client = CachingStore::new(server, 1_000);
        assert!(client.get(&h).is_some());
        assert!(client.get(&h).is_some());
        assert_eq!(client.remote_fetches(), 1);
        assert_eq!(client.local_hits(), 1);
        assert_eq!(client.synthetic_nanos(), 1_000);
        assert!((client.hit_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn writes_do_not_populate_cache() {
        let server = MemStore::new_shared();
        let client = CachingStore::new(server, 500);
        let h = client.put(Bytes::from_static(b"written"));
        assert_eq!(client.cached_pages(), 0);
        // First read is still remote.
        assert!(client.get(&h).is_some());
        assert_eq!(client.remote_fetches(), 1);
    }

    #[test]
    fn missing_pages_cost_nothing() {
        let server = MemStore::new_shared();
        let client = CachingStore::new(server, 500);
        assert!(client.get(&siri_crypto::sha256(b"ghost")).is_none());
        assert_eq!(client.remote_fetches(), 0);
        assert_eq!(client.synthetic_nanos(), 0);
    }

    #[test]
    fn clear_forces_refetch() {
        let server = MemStore::new_shared();
        let h = server.put(Bytes::from_static(b"page"));
        let client = CachingStore::new(server, 100);
        client.get(&h);
        client.clear();
        client.get(&h);
        assert_eq!(client.remote_fetches(), 2);
    }
}
