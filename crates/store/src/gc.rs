//! Mark-and-sweep garbage collection for retired versions.
//!
//! Immutability means nothing is ever deleted in place — but once a
//! version is no longer referenced by any branch or retention policy, its
//! exclusive pages can be reclaimed. Callers mark by collecting the
//! [`PageSet`]s of every root that must survive (e.g. branch heads plus a
//! retention window) and sweep the rest.
//!
//! The sweep is generic over [`Reclaim`]: [`crate::MemStore`] drops dead
//! entries in place, [`crate::FileStore`] compacts its segment files and
//! atomically swaps to the new generation, so the paper's reachable-set
//! metrics (P(I), §3.1/§4.2) govern *disk* occupancy too, not just memory.

use crate::{PageSet, Reclaim, StoreResult};

/// Reclaim every page not reachable from `live` page sets.
/// Returns (pages reclaimed, bytes reclaimed).
///
/// ```
/// use bytes::Bytes;
/// use siri_store::{gc, MemStore, NodeStore, PageSet};
///
/// let store = MemStore::new();
/// let keep = store.put(Bytes::from_static(b"live page"));
/// store.put(Bytes::from_static(b"dead page"));
/// let mut live = PageSet::new();
/// live.insert(keep, 9);
/// let (pages, bytes) = gc::sweep_unreachable(&store, &[live]).unwrap();
/// assert_eq!((pages, bytes), (1, 9));
/// assert!(store.contains(&keep));
/// ```
pub fn sweep_unreachable<S: Reclaim + ?Sized>(
    store: &S,
    live: &[PageSet],
) -> StoreResult<(u64, u64)> {
    let union = PageSet::union_of(live);
    store.sweep(&union)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FileStore, MemStore, NodeStore};
    use bytes::Bytes;

    #[test]
    fn keeps_union_of_live_sets() {
        let store = MemStore::new();
        let a = store.put(Bytes::from_static(b"version-a page"));
        let b = store.put(Bytes::from_static(b"version-b page"));
        let shared = store.put(Bytes::from_static(b"shared page"));
        let dead = store.put(Bytes::from_static(b"retired page"));

        let mut live_a = PageSet::new();
        live_a.insert(a, 14);
        live_a.insert(shared, 11);
        let mut live_b = PageSet::new();
        live_b.insert(b, 14);
        live_b.insert(shared, 11);

        let (pages, _) = sweep_unreachable(&store, &[live_a, live_b]).unwrap();
        assert_eq!(pages, 1);
        assert!(store.contains(&a) && store.contains(&b) && store.contains(&shared));
        assert!(!store.contains(&dead));
    }

    #[test]
    fn empty_live_set_reclaims_everything() {
        let store = MemStore::new();
        store.put(Bytes::from_static(b"x"));
        store.put(Bytes::from_static(b"y"));
        let (pages, _) = sweep_unreachable(&store, &[]).unwrap();
        assert_eq!(pages, 2);
        assert!(store.is_empty());
    }

    #[test]
    fn same_sweep_runs_on_the_durable_backend() {
        let dir = std::env::temp_dir()
            .join("siri-filestore-tests")
            .join(format!("gc-generic-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(dir.parent().unwrap()).unwrap();
        let (store, _) = FileStore::open(&dir).unwrap();
        let keep = store.put(Bytes::from_static(b"live page"));
        store.put(Bytes::from_static(b"dead page"));
        let mut live = PageSet::new();
        live.insert(keep, 9);
        let (pages, bytes) = sweep_unreachable(&store, &[live]).unwrap();
        assert_eq!((pages, bytes), (1, 9));
        assert!(store.contains(&keep));
        assert_eq!(store.len(), 1);
    }
}
