//! Mark-and-sweep garbage collection for retired versions.
//!
//! Immutability means nothing is ever deleted in place — but once a
//! version is no longer referenced by any branch or retention policy, its
//! exclusive pages can be reclaimed. Callers mark by collecting the
//! [`PageSet`]s of every root that must survive (e.g. branch heads plus a
//! retention window) and sweep the rest.

use crate::{MemStore, PageSet};

/// Reclaim every page not reachable from `live` page sets.
/// Returns (pages reclaimed, bytes reclaimed).
///
/// ```
/// use bytes::Bytes;
/// use siri_store::{gc, MemStore, NodeStore, PageSet};
///
/// let store = MemStore::new();
/// let keep = store.put(Bytes::from_static(b"live page"));
/// store.put(Bytes::from_static(b"dead page"));
/// let mut live = PageSet::new();
/// live.insert(keep, 9);
/// let (pages, bytes) = gc::sweep_unreachable(&store, &[live]);
/// assert_eq!((pages, bytes), (1, 9));
/// assert!(store.contains(&keep));
/// ```
pub fn sweep_unreachable(store: &MemStore, live: &[PageSet]) -> (u64, u64) {
    let union = PageSet::union_of(live);
    store.sweep(&union)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NodeStore;
    use bytes::Bytes;

    #[test]
    fn keeps_union_of_live_sets() {
        let store = MemStore::new();
        let a = store.put(Bytes::from_static(b"version-a page"));
        let b = store.put(Bytes::from_static(b"version-b page"));
        let shared = store.put(Bytes::from_static(b"shared page"));
        let dead = store.put(Bytes::from_static(b"retired page"));

        let mut live_a = PageSet::new();
        live_a.insert(a, 14);
        live_a.insert(shared, 11);
        let mut live_b = PageSet::new();
        live_b.insert(b, 14);
        live_b.insert(shared, 11);

        let (pages, _) = sweep_unreachable(&store, &[live_a, live_b]);
        assert_eq!(pages, 1);
        assert!(store.contains(&a) && store.contains(&b) && store.contains(&shared));
        assert!(!store.contains(&dead));
    }

    #[test]
    fn empty_live_set_reclaims_everything() {
        let store = MemStore::new();
        store.put(Bytes::from_static(b"x"));
        store.put(Bytes::from_static(b"y"));
        let (pages, _) = sweep_unreachable(&store, &[]);
        assert_eq!(pages, 2);
        assert!(store.is_empty());
    }
}
