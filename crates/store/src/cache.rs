//! Sharded, capacity-bounded LRU caching keyed by content address.
//!
//! Two users share the machinery (see DESIGN.md §3):
//!
//! * [`ShardedLru`] — a generic `Hash → V` LRU. [`CachingStore`] uses it
//!   with `V = Bytes` to bound its client-side *page* cache.
//! * [`NodeCache`] — a thin typed wrapper with `V = Arc<N>` holding
//!   *decoded* nodes. The index crates thread one through their read
//!   paths so a hot lookup costs a shard probe and a refcount bump
//!   instead of a store lock + page clone + full decode.
//!
//! Content addressing makes the cache trivially coherent: a `Hash` names
//! one immutable byte string forever, so entries can never go stale —
//! eviction exists purely to bound memory. Each shard is an independent
//! `Mutex<LruShard>` (an intrusive doubly-linked list over a slot vector +
//! an FxHashMap index), selected by the low bits of the content address;
//! SHA-256 output is uniform, so shards balance without extra hashing.
//!
//! [`CachingStore`]: crate::CachingStore

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{LockClass, Mutex};

/// Lock class for the runtime lock-order tracker (DESIGN.md §9): cache
/// shards sit between the engine locks and the backing store's internals.
static CACHE_SHARD_CLASS: LockClass = LockClass::new(40, "store.cache-shard");
use siri_crypto::{FxHashMap, Hash};

/// Counter snapshot for a cache (also folded into
/// [`crate::StoreStats`] by stores that embed one).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Probes that found the entry.
    pub hits: u64,
    /// Probes that missed.
    pub misses: u64,
    /// Entries evicted to stay under capacity.
    pub evictions: u64,
    /// Entries currently resident.
    pub len: usize,
    /// Maximum resident entries (0 = caching disabled).
    pub capacity: usize,
}

impl CacheStats {
    /// Hit ratio over all probes so far (1.0 if no probes).
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            1.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

const NIL: u32 = u32::MAX;

struct Slot<V> {
    hash: Hash,
    value: V,
    prev: u32,
    next: u32,
}

/// One shard: an LRU list threaded through `slots`, with `map` as the
/// content-address index. `head` is most-recent, `tail` least-recent.
struct LruShard<V> {
    map: FxHashMap<Hash, u32>,
    slots: Vec<Slot<V>>,
    free: Vec<u32>,
    head: u32,
    tail: u32,
}

impl<V> LruShard<V> {
    fn new() -> Self {
        LruShard {
            map: FxHashMap::default(),
            slots: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
        }
    }

    fn unlink(&mut self, idx: u32) {
        let (prev, next) = {
            let s = &self.slots[idx as usize];
            (s.prev, s.next)
        };
        match prev {
            NIL => self.head = next,
            p => self.slots[p as usize].next = next,
        }
        match next {
            NIL => self.tail = prev,
            n => self.slots[n as usize].prev = prev,
        }
    }

    fn push_front(&mut self, idx: u32) {
        let old_head = self.head;
        {
            let s = &mut self.slots[idx as usize];
            s.prev = NIL;
            s.next = old_head;
        }
        if old_head != NIL {
            self.slots[old_head as usize].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }

    fn touch(&mut self, idx: u32) {
        if self.head != idx {
            self.unlink(idx);
            self.push_front(idx);
        }
    }

    /// Remove the least-recently-used entry. Returns false on empty.
    fn evict_tail(&mut self) -> bool {
        let tail = self.tail;
        if tail == NIL {
            return false;
        }
        self.unlink(tail);
        let hash = self.slots[tail as usize].hash;
        self.map.remove(&hash);
        self.free.push(tail);
        true
    }

    fn insert(&mut self, hash: Hash, value: V, capacity: usize) -> u64 {
        if let Some(&idx) = self.map.get(&hash) {
            // Same content address ⇒ same content; refresh recency only.
            self.touch(idx);
            return 0;
        }
        let mut evicted = 0u64;
        while self.map.len() >= capacity {
            if !self.evict_tail() {
                break;
            }
            evicted += 1;
        }
        let idx = match self.free.pop() {
            Some(i) => {
                self.slots[i as usize] = Slot { hash, value, prev: NIL, next: NIL };
                i
            }
            None => {
                self.slots.push(Slot { hash, value, prev: NIL, next: NIL });
                (self.slots.len() - 1) as u32
            }
        };
        self.map.insert(hash, idx);
        self.push_front(idx);
        evicted
    }
}

/// One shard plus its share of the capacity bound.
struct Shard<V> {
    lru: Mutex<LruShard<V>>,
    /// This shard's entry bound; shard capacities sum to exactly the
    /// requested total (the remainder of `capacity / SHARDS` is spread
    /// over the first shards).
    capacity: usize,
}

/// A sharded, bounded, thread-safe LRU map keyed by content address.
pub struct ShardedLru<V> {
    shards: Box<[Shard<V>]>,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

/// Shards per cache. 16 keeps contention negligible for the thread counts
/// the benches drive while costing only 16 small mutexes.
const SHARDS: usize = 16;

impl<V: Clone> ShardedLru<V> {
    /// `capacity` is the **exact** total entry bound across shards; 0
    /// disables caching entirely (every probe misses, inserts are
    /// dropped). Individual shards get `capacity / SHARDS` (±1), so a
    /// skewed key set may evict slightly before the total is reached, but
    /// resident entries never exceed `capacity`. Capacities below the
    /// shard count leave some shards with no budget (their inserts are
    /// dropped) — use ≥ 16 for a cache that can hold every key.
    pub fn new(capacity: usize) -> Self {
        let shards = (0..SHARDS)
            .map(|i| Shard {
                lru: Mutex::with_class(LruShard::new(), &CACHE_SHARD_CLASS),
                capacity: capacity / SHARDS + usize::from(i < capacity % SHARDS),
            })
            .collect::<Vec<_>>();
        ShardedLru {
            shards: shards.into_boxed_slice(),
            capacity,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    #[inline]
    fn shard(&self, hash: &Hash) -> &Shard<V> {
        // Low byte of a SHA-256 digest is uniform.
        &self.shards[(hash.as_bytes()[0] as usize) & (SHARDS - 1)]
    }

    /// Probe the cache, refreshing recency on hit.
    pub fn get(&self, hash: &Hash) -> Option<V> {
        if self.capacity == 0 {
            self.misses.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        let shard = self.shard(hash);
        let mut lru = shard.lru.lock();
        match lru.map.get(hash).copied() {
            Some(idx) => {
                lru.touch(idx);
                let v = lru.slots[idx as usize].value.clone();
                drop(lru);
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(v)
            }
            None => {
                drop(lru);
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Side-effect-free membership probe: no counter bumps, no recency
    /// refresh. For existence checks (`NodeStore::contains`) that must not
    /// distort the hit-ratio metrics or the eviction order.
    pub fn peek(&self, hash: &Hash) -> bool {
        self.capacity != 0 && self.shard(hash).lru.lock().map.contains_key(hash)
    }

    /// Install a value (no-op when capacity is 0). Inserting an existing
    /// address only refreshes its recency — the value cannot differ, the
    /// key *is* the content hash.
    pub fn insert(&self, hash: Hash, value: V) {
        let shard = self.shard(&hash);
        if shard.capacity == 0 {
            // Total capacity 0, or a sub-16 capacity leaving this shard
            // with no budget: drop the insert rather than exceed the bound.
            return;
        }
        let evicted = shard.lru.lock().insert(hash, value, shard.capacity);
        if evicted > 0 {
            self.evictions.fetch_add(evicted, Ordering::Relaxed);
        }
    }

    /// Drop every cached entry (counters are kept).
    pub fn clear(&self) {
        for shard in self.shards.iter() {
            let mut s = shard.lru.lock();
            *s = LruShard::new();
        }
    }

    /// Entries currently resident across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lru.lock().map.len()).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            len: self.len(),
            capacity: self.capacity,
        }
    }
}

/// Typed cache of decoded nodes, shared by every clone (= version handle)
/// of an index. See the module docs for the design; index `fetch` paths
/// are one call:
///
/// ```ignore
/// let (node, was_hit) = cache.get_or_load(hash, || {
///     let page = store.get(hash).ok_or(IndexError::MissingPage(*hash))?;
///     Node::decode_zc(&page)
/// })?;
/// ```
pub struct NodeCache<N> {
    lru: ShardedLru<Arc<N>>,
}

/// Default per-index decoded-node budget. At the paper's ≈1 KB node size
/// this is ≈8 MB of pages kept alive per index family — comfortably more
/// than the working set of a point-lookup benchmark, small enough to
/// evict under scan-heavy churn.
pub const DEFAULT_NODE_CACHE_CAPACITY: usize = 8192;

impl<N> NodeCache<N> {
    pub fn new(capacity: usize) -> Self {
        NodeCache { lru: ShardedLru::new(capacity) }
    }

    /// A cache wrapped in the `Arc` the index handles share.
    pub fn new_shared(capacity: usize) -> Arc<Self> {
        Arc::new(Self::new(capacity))
    }

    pub fn get(&self, hash: &Hash) -> Option<Arc<N>> {
        self.lru.get(hash)
    }

    pub fn insert(&self, hash: Hash, node: Arc<N>) {
        self.lru.insert(hash, node);
    }

    /// The one fetch path every index shares: probe the cache, and on a
    /// miss run `load` (store fetch + decode) and install the result. The
    /// flag reports whether this was a hit — no store access, no decode.
    /// `load` runs outside any shard lock, so concurrent misses on the
    /// same hash decode redundantly rather than serializing (harmless:
    /// both decodes are identical, last insert refreshes recency).
    pub fn get_or_load<E>(
        &self,
        hash: &Hash,
        load: impl FnOnce() -> Result<N, E>,
    ) -> Result<(Arc<N>, bool), E> {
        if let Some(node) = self.get(hash) {
            return Ok((node, true));
        }
        let node = Arc::new(load()?);
        self.insert(*hash, node.clone());
        Ok((node, false))
    }

    pub fn clear(&self) {
        self.lru.clear();
    }

    pub fn len(&self) -> usize {
        self.lru.len()
    }

    pub fn is_empty(&self) -> bool {
        self.lru.is_empty()
    }

    pub fn capacity(&self) -> usize {
        self.lru.capacity()
    }

    pub fn stats(&self) -> CacheStats {
        self.lru.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use siri_crypto::sha256;

    fn h(i: u64) -> Hash {
        sha256(&i.to_le_bytes())
    }

    #[test]
    fn hit_miss_and_counters() {
        let c: ShardedLru<u64> = ShardedLru::new(64);
        assert_eq!(c.get(&h(1)), None);
        c.insert(h(1), 11);
        assert_eq!(c.get(&h(1)), Some(11));
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.evictions, s.len), (1, 1, 0, 1));
        assert!((s.hit_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn capacity_zero_disables() {
        let c: ShardedLru<u64> = ShardedLru::new(0);
        c.insert(h(1), 1);
        assert_eq!(c.get(&h(1)), None);
        assert_eq!(c.len(), 0);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn evicts_least_recently_used() {
        // Single-shard-sized capacity so eviction order is deterministic
        // within a shard: find 3 hashes landing in the same shard.
        let c: ShardedLru<u64> = ShardedLru::new(2 * SHARDS); // 2 per shard
        let same_shard: Vec<Hash> = (0..1000u64)
            .map(h)
            .filter(|x| x.as_bytes()[0] & (SHARDS as u8 - 1) == 3)
            .take(3)
            .collect();
        let &[a, b, x] = &same_shard[..] else { panic!() };
        c.insert(a, 1);
        c.insert(b, 2);
        assert_eq!(c.get(&a), Some(1)); // refresh a: b is now LRU
        c.insert(x, 3); // evicts b
        assert_eq!(c.get(&b), None, "LRU entry must be evicted");
        assert_eq!(c.get(&a), Some(1));
        assert_eq!(c.get(&x), Some(3));
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn bounded_under_churn() {
        let c: ShardedLru<u64> = ShardedLru::new(128);
        for i in 0..10_000u64 {
            c.insert(h(i), i);
        }
        assert!(c.len() <= 128, "len {} exceeds capacity", c.len());
        let s = c.stats();
        assert_eq!(s.evictions + c.len() as u64, 10_000);
    }

    #[test]
    fn reinsert_same_hash_refreshes_not_duplicates() {
        let c: ShardedLru<u64> = ShardedLru::new(SHARDS);
        c.insert(h(1), 1);
        c.insert(h(1), 1);
        assert_eq!(c.len(), 1);
        assert_eq!(c.stats().evictions, 0);
    }

    #[test]
    fn clear_empties_but_keeps_counters() {
        let c: ShardedLru<u64> = ShardedLru::new(SHARDS);
        c.insert(h(1), 1);
        c.get(&h(1));
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.get(&h(1)), None);
        assert_eq!(c.stats().hits, 1);
    }

    #[test]
    fn capacity_is_an_exact_bound() {
        // 20 over 16 shards: shards 0..4 get 2 slots, the rest get 1 —
        // the shard budgets sum to exactly the requested capacity.
        let c: ShardedLru<u64> = ShardedLru::new(20);
        for i in 0..10_000u64 {
            c.insert(h(i), i);
        }
        assert!(c.len() <= 20, "resident {} exceeds the requested bound", c.len());
        // Sub-shard-count capacities drop inserts on budget-less shards
        // rather than exceed the bound.
        let tiny: ShardedLru<u64> = ShardedLru::new(3);
        for i in 0..1_000u64 {
            tiny.insert(h(i), i);
        }
        assert!(tiny.len() <= 3);

        // And the side-effect-free peek never moves the counters.
        let before = c.stats();
        for i in 0..100u64 {
            let _ = c.peek(&h(i));
        }
        let after = c.stats();
        assert_eq!((before.hits, before.misses), (after.hits, after.misses));
    }

    #[test]
    fn node_cache_shares_arcs() {
        let c: NodeCache<Vec<u8>> = NodeCache::new(16);
        let node = Arc::new(vec![1u8, 2, 3]);
        c.insert(h(1), node.clone());
        let got = c.get(&h(1)).unwrap();
        assert!(Arc::ptr_eq(&node, &got), "hits must be refcount bumps");
    }

    #[test]
    fn concurrent_probes_stay_coherent() {
        let c: Arc<ShardedLru<u64>> = Arc::new(ShardedLru::new(256));
        let mut handles = Vec::new();
        for t in 0..8u64 {
            let c = Arc::clone(&c);
            handles.push(std::thread::spawn(move || {
                for i in 0..2_000u64 {
                    let k = (t * 31 + i) % 500;
                    if let Some(v) = c.get(&h(k)) {
                        assert_eq!(v, k, "value must match its key");
                    } else {
                        c.insert(h(k), k);
                    }
                }
            }));
        }
        for hnd in handles {
            hnd.join().unwrap();
        }
        assert!(c.len() <= 256);
        let s = c.stats();
        assert_eq!(s.hits + s.misses, 16_000);
    }
}
