//! Store-level errors.
//!
//! A store failure is *not* a miss: `try_get` returning `Ok(None)` means
//! "no such page", while `Err(StoreError)` means "the page may exist but
//! could not be read" (disk fault, torn file, permission change). Index
//! traversal must keep the two apart — a dangling reference is a structural
//! problem reported as `MissingPage`, an I/O fault is an environmental one
//! reported as a store error.
//!
//! The type is `Clone + PartialEq + Eq` (unlike [`std::io::Error`]) so it
//! can ride inside `IndexError` and test assertions; the original error is
//! preserved as its [`std::io::ErrorKind`] plus rendered detail.

use std::fmt;
use std::io;

/// Why a store operation failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// An operating-system I/O failure, tagged with the operation that hit
    /// it (`"append"`, `"read_at"`, `"manifest"` …).
    Io { op: &'static str, kind: io::ErrorKind, detail: String },
    /// On-disk bytes that cannot be trusted (frame digest mismatch during
    /// compaction, unparseable manifest where one must exist).
    Corrupt(&'static str),
}

impl StoreError {
    /// Wrap an [`io::Error`] raised by operation `op`.
    pub fn io(op: &'static str, err: io::Error) -> Self {
        StoreError::Io { op, kind: err.kind(), detail: err.to_string() }
    }
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io { op, kind, detail } => {
                write!(f, "store I/O failure during {op} ({kind:?}): {detail}")
            }
            StoreError::Corrupt(what) => write!(f, "store corruption: {what}"),
        }
    }
}

impl std::error::Error for StoreError {}

pub type StoreResult<T> = std::result::Result<T, StoreError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn io_errors_render_the_operation() {
        let e = StoreError::io("append", io::Error::new(io::ErrorKind::WriteZero, "disk full"));
        assert!(e.to_string().contains("append"));
        assert!(e.to_string().contains("disk full"));
        assert_eq!(
            e,
            StoreError::Io {
                op: "append",
                kind: io::ErrorKind::WriteZero,
                detail: "disk full".into()
            }
        );
    }
}
