//! In-memory content-addressed store.

use bytes::Bytes;
use parking_lot::{LockClass, RwLock};

/// Lock class for the runtime lock-order tracker (DESIGN.md §9): memory
/// shards are leaf locks, below every engine and cache lock.
static MEM_SHARD_CLASS: LockClass = LockClass::new(55, "store.mem-shard");
use siri_crypto::{hash_many, sha256, FxHashMap, FxHashSet, Hash};

use crate::stats::AtomicStoreStats;
use crate::{NodeStore, PageSet, Reclaim, StoreResult, StoreStats};

/// Shard count for the page map. Content addresses are uniform, so a small
/// power of two spreads both reader and writer traffic; 16 shards already
/// make put/get contention unmeasurable at bench thread counts.
const SHARDS: usize = 16;

/// The default store used by all experiments: a *sharded* hash map from
/// content address to page bytes, with lock-free accounting.
///
/// Two properties make the read path scale (ISSUE 1's first satellite —
/// the previous version took `inner.write()` on every `get` just to bump
/// counters, serializing all readers):
///
/// * stats live in [`AtomicStoreStats`], so reads only ever take a shard's
///   *read* lock;
/// * the map is sharded by the low bits of the digest, so concurrent
///   readers (and writers) of different pages proceed in parallel.
///
/// `Bytes` values make `get` an O(1) reference-count bump; pages are never
/// copied after the initial `put`.
pub struct MemStore {
    shards: Box<[RwLock<FxHashMap<Hash, Bytes>>]>,
    stats: AtomicStoreStats,
}

impl Default for MemStore {
    fn default() -> Self {
        Self::new()
    }
}

impl MemStore {
    pub fn new() -> Self {
        let shards = (0..SHARDS)
            .map(|_| RwLock::with_class(FxHashMap::default(), &MEM_SHARD_CLASS))
            .collect::<Vec<_>>();
        MemStore { shards: shards.into_boxed_slice(), stats: AtomicStoreStats::default() }
    }

    /// Wrap in an `Arc` trait object — the handle the index crates take.
    pub fn new_shared() -> crate::SharedStore {
        std::sync::Arc::new(Self::new())
    }

    #[inline]
    fn shard(&self, hash: &Hash) -> &RwLock<FxHashMap<Hash, Bytes>> {
        &self.shards[(hash.as_bytes()[0] as usize) & (SHARDS - 1)]
    }

    /// Number of distinct pages held.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().len()).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Set of all page hashes currently stored (diagnostics/tests).
    pub fn page_hashes(&self) -> FxHashSet<Hash> {
        self.shards.iter().flat_map(|s| s.read().keys().copied().collect::<Vec<_>>()).collect()
    }

    /// Corrupt a stored page by flipping one bit — failure-injection hook
    /// used by the tamper-evidence tests. Returns false if the page is
    /// absent. The page keeps its (now wrong) content address, which is
    /// precisely the situation digests and proofs must detect.
    ///
    /// Note: layers above the store (node caches) may still hold the
    /// *pre-corruption* decode of this page; tamper detection is defined
    /// over bytes read from the store, as in the paper's threat model.
    pub fn corrupt_page(&self, hash: &Hash, bit: usize) -> bool {
        let mut pages = self.shard(hash).write();
        let Some(page) = pages.get(hash) else {
            return false;
        };
        let mut raw = page.to_vec();
        if raw.is_empty() {
            return false;
        }
        let byte = (bit / 8) % raw.len();
        raw[byte] ^= 1 << (bit % 8);
        pages.insert(*hash, Bytes::from(raw));
        true
    }
}

impl MemStore {
    /// Insert a page whose content address is already known, copying (or
    /// cloning the refcounted handle) only when the page is new. The one
    /// place the put accounting lives.
    fn insert_hashed(&self, hash: Hash, page: &[u8], owned: Option<&Bytes>) {
        AtomicStoreStats::add(&self.stats.puts, 1);
        AtomicStoreStats::add(&self.stats.logical_bytes, page.len() as u64);
        let mut pages = self.shard(&hash).write();
        match pages.entry(hash) {
            std::collections::hash_map::Entry::Vacant(slot) => {
                AtomicStoreStats::add(&self.stats.unique_pages, 1);
                AtomicStoreStats::add(&self.stats.unique_bytes, page.len() as u64);
                AtomicStoreStats::add(&self.stats.bytes_written, page.len() as u64);
                slot.insert(match owned {
                    Some(bytes) => bytes.clone(),
                    None => Bytes::copy_from_slice(page),
                });
            }
            std::collections::hash_map::Entry::Occupied(_) => {
                AtomicStoreStats::add(&self.stats.shared_puts, 1);
                AtomicStoreStats::add(&self.stats.shared_bytes, page.len() as u64);
            }
        }
    }
}

impl NodeStore for MemStore {
    fn try_put(&self, page: Bytes) -> StoreResult<Hash> {
        Ok(self.put(page))
    }

    fn try_get(&self, hash: &Hash) -> StoreResult<Option<Bytes>> {
        Ok(self.get(hash))
    }

    /// Slice-based put: a deduplicated page is hashed but never copied.
    fn try_put_raw(&self, page: &[u8]) -> StoreResult<Hash> {
        let hash = sha256(page);
        self.insert_hashed(hash, page, None);
        Ok(hash)
    }

    /// Batch put: the whole sibling batch is digested with the multi-lane
    /// hasher before any shard lock is taken.
    fn try_put_many(&self, pages: &[Bytes]) -> StoreResult<Vec<Hash>> {
        let views: Vec<&[u8]> = pages.iter().map(|p| p.as_ref()).collect();
        let hashes = hash_many(&views);
        for (hash, page) in hashes.iter().zip(pages) {
            self.insert_hashed(*hash, page, Some(page));
        }
        Ok(hashes)
    }

    // Memory cannot fault: the infallible methods are the real
    // implementation and `try_*` wrap them, the reverse of `FileStore`.
    fn put(&self, page: Bytes) -> Hash {
        let hash = sha256(&page);
        self.insert_hashed(hash, &page, Some(&page));
        hash
    }

    fn get(&self, hash: &Hash) -> Option<Bytes> {
        AtomicStoreStats::add(&self.stats.gets, 1);
        let page = self.shard(hash).read().get(hash).cloned();
        if page.is_some() {
            AtomicStoreStats::add(&self.stats.hits, 1);
        }
        page
    }

    fn contains(&self, hash: &Hash) -> bool {
        self.shard(hash).read().contains_key(hash)
    }

    fn stats(&self) -> StoreStats {
        self.stats.snapshot()
    }
}

impl Reclaim for MemStore {
    /// Drop every page not contained in `live` — a mark-and-sweep GC where
    /// callers provide the mark phase. Infallible in memory; the `Ok` is
    /// the [`Reclaim`] contract shared with the durable backend.
    fn sweep(&self, live: &PageSet) -> StoreResult<(u64, u64)> {
        let mut dropped_pages = 0u64;
        let mut dropped_bytes = 0u64;
        for shard in self.shards.iter() {
            let mut pages = shard.write();
            pages.retain(|h, page| {
                if live.contains(h) {
                    true
                } else {
                    dropped_pages += 1;
                    dropped_bytes += page.len() as u64;
                    false
                }
            });
        }
        AtomicStoreStats::sub(&self.stats.unique_pages, dropped_pages);
        AtomicStoreStats::sub(&self.stats.unique_bytes, dropped_bytes);
        Ok((dropped_pages, dropped_bytes))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_is_idempotent_and_deduplicating() {
        let store = MemStore::new();
        let h1 = store.put(Bytes::from_static(b"same page"));
        let h2 = store.put(Bytes::from_static(b"same page"));
        assert_eq!(h1, h2);
        let s = store.stats();
        assert_eq!(s.puts, 2);
        assert_eq!(s.unique_pages, 1);
        assert_eq!(s.logical_bytes, 18);
        assert_eq!(s.unique_bytes, 9);
    }

    #[test]
    fn get_returns_exact_bytes() {
        let store = MemStore::new();
        let h = store.put(Bytes::from_static(b"some data"));
        assert_eq!(store.get(&h).unwrap(), Bytes::from_static(b"some data"));
        assert!(store.get(&sha256(b"absent")).is_none());
        let s = store.stats();
        assert_eq!(s.gets, 2);
        assert_eq!(s.hits, 1);
    }

    #[test]
    fn content_address_matches_sha256() {
        let store = MemStore::new();
        let h = store.put(Bytes::from_static(b"addressed"));
        assert_eq!(h, sha256(b"addressed"));
    }

    #[test]
    fn sweep_reclaims_unreachable() {
        let store = MemStore::new();
        let keep = store.put(Bytes::from_static(b"keep me"));
        let _drop = store.put(Bytes::from_static(b"drop me"));
        let mut live = PageSet::new();
        live.insert(keep, 7);
        let (pages, bytes) = store.sweep(&live).unwrap();
        assert_eq!((pages, bytes), (1, 7));
        assert!(store.contains(&keep));
        assert_eq!(store.len(), 1);
        assert_eq!(store.stats().unique_pages, 1);
    }

    #[test]
    fn corrupt_page_flips_content() {
        let store = MemStore::new();
        let h = store.put(Bytes::from_static(b"integrity"));
        assert!(store.corrupt_page(&h, 3));
        let tampered = store.get(&h).unwrap();
        assert_ne!(sha256(&tampered), h, "tampering must break the address");
        assert!(!store.corrupt_page(&sha256(b"missing"), 0));
    }

    #[test]
    fn concurrent_puts_share_pages() {
        use std::sync::Arc;
        let store = Arc::new(MemStore::new());
        let mut handles = Vec::new();
        for t in 0..4 {
            let s = Arc::clone(&store);
            handles.push(std::thread::spawn(move || {
                for i in 0..250u32 {
                    // Every thread writes the same 250 pages.
                    let _ = t;
                    s.put(Bytes::from(i.to_le_bytes().to_vec()));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let s = store.stats();
        assert_eq!(s.puts, 1000);
        assert_eq!(s.unique_pages, 250);
    }

    #[test]
    fn concurrent_reads_count_coherently() {
        use std::sync::Arc;
        let store = Arc::new(MemStore::new());
        let hashes: Vec<Hash> =
            (0..64u32).map(|i| store.put(Bytes::from(i.to_le_bytes().to_vec()))).collect();
        let mut handles = Vec::new();
        for t in 0..8usize {
            let s = Arc::clone(&store);
            let hs = hashes.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..1_000usize {
                    let h = &hs[(t * 7 + i) % hs.len()];
                    assert!(s.get(h).is_some());
                }
                // Misses are counted as gets without hits.
                assert!(s.get(&sha256(b"no such page")).is_none());
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let s = store.stats();
        assert_eq!(s.gets, 8 * 1_001);
        assert_eq!(s.hits, 8 * 1_000);
    }
}
