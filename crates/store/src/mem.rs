//! In-memory content-addressed store.

use bytes::Bytes;
use parking_lot::RwLock;
use siri_crypto::{sha256, FxHashMap, FxHashSet, Hash};

use crate::{NodeStore, PageSet, StoreStats};

/// The default store used by all experiments: a hash map from content
/// address to page bytes behind a read/write lock, with the accounting
/// counters of [`StoreStats`].
///
/// `Bytes` values make `get` an O(1) reference-count bump; pages are never
/// copied after the initial `put`.
pub struct MemStore {
    inner: RwLock<Inner>,
}

#[derive(Default)]
struct Inner {
    pages: FxHashMap<Hash, Bytes>,
    stats: StoreStats,
}

impl Default for MemStore {
    fn default() -> Self {
        Self::new()
    }
}

impl MemStore {
    pub fn new() -> Self {
        MemStore { inner: RwLock::new(Inner::default()) }
    }

    /// Wrap in an `Arc` trait object — the handle the index crates take.
    pub fn new_shared() -> crate::SharedStore {
        std::sync::Arc::new(Self::new())
    }

    /// Number of distinct pages held.
    pub fn len(&self) -> usize {
        self.inner.read().pages.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop every page not contained in `live`, returning (pages, bytes)
    /// reclaimed. `live` is typically the union of [`crate::reachable_pages`]
    /// over the roots that must survive — a mark-and-sweep GC where callers
    /// provide the mark phase.
    pub fn sweep(&self, live: &PageSet) -> (u64, u64) {
        let mut inner = self.inner.write();
        let mut dropped_pages = 0u64;
        let mut dropped_bytes = 0u64;
        inner.pages.retain(|h, page| {
            if live.contains(h) {
                true
            } else {
                dropped_pages += 1;
                dropped_bytes += page.len() as u64;
                false
            }
        });
        inner.stats.unique_pages -= dropped_pages;
        inner.stats.unique_bytes -= dropped_bytes;
        (dropped_pages, dropped_bytes)
    }

    /// Set of all page hashes currently stored (diagnostics/tests).
    pub fn page_hashes(&self) -> FxHashSet<Hash> {
        self.inner.read().pages.keys().copied().collect()
    }

    /// Corrupt a stored page by flipping one bit — failure-injection hook
    /// used by the tamper-evidence tests. Returns false if the page is
    /// absent. The page keeps its (now wrong) content address, which is
    /// precisely the situation digests and proofs must detect.
    pub fn corrupt_page(&self, hash: &Hash, bit: usize) -> bool {
        let mut inner = self.inner.write();
        let Some(page) = inner.pages.get(hash) else {
            return false;
        };
        let mut raw = page.to_vec();
        if raw.is_empty() {
            return false;
        }
        let byte = (bit / 8) % raw.len();
        raw[byte] ^= 1 << (bit % 8);
        inner.pages.insert(*hash, Bytes::from(raw));
        true
    }
}

impl NodeStore for MemStore {
    fn put(&self, page: Bytes) -> Hash {
        let hash = sha256(&page);
        let mut inner = self.inner.write();
        inner.stats.puts += 1;
        inner.stats.logical_bytes += page.len() as u64;
        if !inner.pages.contains_key(&hash) {
            inner.stats.unique_pages += 1;
            inner.stats.unique_bytes += page.len() as u64;
            inner.pages.insert(hash, page);
        }
        hash
    }

    fn get(&self, hash: &Hash) -> Option<Bytes> {
        let mut inner = self.inner.write();
        inner.stats.gets += 1;
        let page = inner.pages.get(hash).cloned();
        if page.is_some() {
            inner.stats.hits += 1;
        }
        page
    }

    fn contains(&self, hash: &Hash) -> bool {
        self.inner.read().pages.contains_key(hash)
    }

    fn stats(&self) -> StoreStats {
        self.inner.read().stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_is_idempotent_and_deduplicating() {
        let store = MemStore::new();
        let h1 = store.put(Bytes::from_static(b"same page"));
        let h2 = store.put(Bytes::from_static(b"same page"));
        assert_eq!(h1, h2);
        let s = store.stats();
        assert_eq!(s.puts, 2);
        assert_eq!(s.unique_pages, 1);
        assert_eq!(s.logical_bytes, 18);
        assert_eq!(s.unique_bytes, 9);
    }

    #[test]
    fn get_returns_exact_bytes() {
        let store = MemStore::new();
        let h = store.put(Bytes::from_static(b"some data"));
        assert_eq!(store.get(&h).unwrap(), Bytes::from_static(b"some data"));
        assert!(store.get(&sha256(b"absent")).is_none());
        let s = store.stats();
        assert_eq!(s.gets, 2);
        assert_eq!(s.hits, 1);
    }

    #[test]
    fn content_address_matches_sha256() {
        let store = MemStore::new();
        let h = store.put(Bytes::from_static(b"addressed"));
        assert_eq!(h, sha256(b"addressed"));
    }

    #[test]
    fn sweep_reclaims_unreachable() {
        let store = MemStore::new();
        let keep = store.put(Bytes::from_static(b"keep me"));
        let _drop = store.put(Bytes::from_static(b"drop me"));
        let mut live = PageSet::new();
        live.insert(keep, 7);
        let (pages, bytes) = store.sweep(&live);
        assert_eq!((pages, bytes), (1, 7));
        assert!(store.contains(&keep));
        assert_eq!(store.len(), 1);
        assert_eq!(store.stats().unique_pages, 1);
    }

    #[test]
    fn corrupt_page_flips_content() {
        let store = MemStore::new();
        let h = store.put(Bytes::from_static(b"integrity"));
        assert!(store.corrupt_page(&h, 3));
        let tampered = store.get(&h).unwrap();
        assert_ne!(sha256(&tampered), h, "tampering must break the address");
        assert!(!store.corrupt_page(&sha256(b"missing"), 0));
    }

    #[test]
    fn concurrent_puts_share_pages() {
        use std::sync::Arc;
        let store = Arc::new(MemStore::new());
        let mut handles = Vec::new();
        for t in 0..4 {
            let s = Arc::clone(&store);
            handles.push(std::thread::spawn(move || {
                for i in 0..250u32 {
                    // Every thread writes the same 250 pages.
                    let _ = t;
                    s.put(Bytes::from(i.to_le_bytes().to_vec()));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let s = store.stats();
        assert_eq!(s.puts, 1000);
        assert_eq!(s.unique_pages, 250);
    }
}
