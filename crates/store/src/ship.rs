//! Page shipping and Merkle anti-entropy: transfer one index version
//! between stores (or sites), sending only the pages the receiver is
//! missing.
//!
//! This is the paper's Figure 1 "transmission" scenario as an operation:
//! deduplication doesn't just save disk, it saves the wire — a receiver
//! that already holds an earlier version needs only the δ pages of the new
//! one. The walk prunes at any page the receiver already has, because a
//! present page implies (by the Merkle property) that its entire subtree
//! is present too.
//!
//! [`sync_pull`] is the general engine: a *receiver-driven* walk that asks
//! an arbitrary page source (a local store, or a remote peer reached
//! through `siri-client`) for batches of missing pages. Because every
//! received page lands in the receiver's content-addressed store before
//! the next batch is requested, the protocol is restartable for free: a
//! sync cut short by a disconnect resumes by re-running it — the frontier
//! prunes at everything already landed, and only the unfinished tail
//! crosses the wire again. [`ship_version`] is the in-process
//! store-to-store special case kept for local replication and tests.

use bytes::Bytes;
use siri_crypto::Hash;

use crate::{NodeStore, StoreError, StoreResult};

/// Statistics from one [`ship_version`] call.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShipReport {
    /// Pages actually transferred.
    pub pages_sent: u64,
    /// Bytes actually transferred.
    pub bytes_sent: u64,
    /// Subtrees skipped because the receiver already held their root page.
    pub subtrees_skipped: u64,
}

/// Statistics from one [`sync_pull`] call.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SyncReport {
    /// Pages fetched from the source and landed in the receiver's store.
    pub pages_fetched: u64,
    /// Bytes fetched (page payloads; framing overhead not included).
    pub bytes_fetched: u64,
    /// Subtrees pruned because the receiver already held their root page.
    pub subtrees_skipped: u64,
    /// Fetch batches issued (wire round trips when the source is remote).
    pub round_trips: u64,
    /// Pages the *source* could not produce (dangling references on the
    /// sending side). The receiver's tree has holes under these; digest
    /// verification — not this walk — is what detects whether they matter.
    pub missing: u64,
    /// False when the walk stopped early at [`SyncOptions::max_pages`];
    /// re-running the same sync resumes where this one left off.
    pub complete: bool,
}

/// Tuning knobs for [`sync_pull`].
#[derive(Debug, Clone, Copy)]
pub struct SyncOptions {
    /// Missing-page hashes per fetch call (per wire round trip).
    pub batch: usize,
    /// Stop (cleanly, resumably) after landing this many pages. `None`
    /// runs to completion. This is the client-side budget that makes a
    /// sync interruptible at page granularity — and the test hook for the
    /// disconnect-mid-sync path.
    pub max_pages: Option<u64>,
}

impl Default for SyncOptions {
    fn default() -> Self {
        SyncOptions { batch: 64, max_pages: None }
    }
}

/// Land `settled` (storing its page, unless it was a source-side hole) and
/// propagate completion upward: any fetched parent waiting on it lands as
/// soon as its last child has, recursively.
fn settle(
    to: &dyn NodeStore,
    settled: Hash,
    page: Option<Bytes>,
    pending: &mut siri_crypto::FxHashMap<Hash, (Bytes, usize)>,
    waiters: &mut siri_crypto::FxHashMap<Hash, Vec<Hash>>,
) -> StoreResult<()> {
    let mut work = vec![(settled, page)];
    while let Some((h, page)) = work.pop() {
        if let Some(page) = page {
            to.try_put(page)?;
        }
        let Some(parents) = waiters.remove(&h) else { continue };
        for p in parents {
            let Some(entry) = pending.get_mut(&p) else { continue };
            entry.1 -= 1;
            if entry.1 == 0 {
                if let Some((bytes, _)) = pending.remove(&p) {
                    work.push((p, Some(bytes)));
                }
            }
        }
    }
    Ok(())
}

/// Receiver-driven Merkle anti-entropy: walk the version rooted at `root`,
/// pruning every subtree whose root page `to` already holds, and pull the
/// missing pages from `fetch` in batches.
///
/// `fetch` answers a batch of page hashes with the pages in the same
/// order (`None` where the source has no such page); it is the transport
/// seam — a closure over another local store, or one wire round trip.
/// `children` is the index's page decoder (e.g. `Node::children_of_page`).
///
/// Every fetched page is verified against its requested address before it
/// is stored (content addressing makes that free); a source that answers
/// with bytes that hash differently gets [`StoreError::Corrupt`], and the
/// junk page is *not* retained under the requested name — an anti-entropy
/// peer is untrusted by construction.
///
/// Pages land **child-before-parent**: a fetched index page is held aside
/// until every page beneath it is in the receiver's store, then stored.
/// That ordering is what makes the prune sound — "the receiver holds this
/// page" implies "the receiver holds its whole subtree" even when an
/// earlier sync of the same version was cut short, so an interrupted sync
/// resumes by re-running it: the walk prunes at every complete subtree
/// that already landed and re-fetches only the unfinished frontier (the
/// parent pages that were still waiting on children when the line
/// dropped). The held-aside set is bounded by the index's internal pages —
/// a small fraction of the transfer, and only along incomplete paths.
pub fn sync_pull<Fetch, Ch>(
    fetch: &mut Fetch,
    to: &dyn NodeStore,
    root: Hash,
    children: Ch,
    opts: &SyncOptions,
) -> StoreResult<SyncReport>
where
    Fetch: FnMut(&[Hash]) -> StoreResult<Vec<Option<Bytes>>>,
    Ch: Fn(&[u8]) -> Vec<Hash>,
{
    let mut report = SyncReport { complete: true, ..SyncReport::default() };
    if root.is_zero() {
        return Ok(report);
    }
    let batch_cap = opts.batch.max(1);
    let mut stack = vec![root];
    let mut visited = siri_crypto::FxHashSet::default();
    // Fetched index pages not yet stored: page bytes + how many of their
    // children are still outstanding.
    let mut pending: siri_crypto::FxHashMap<Hash, (Bytes, usize)> = Default::default();
    // child hash -> fetched parents waiting for it to land.
    let mut waiters: siri_crypto::FxHashMap<Hash, Vec<Hash>> = Default::default();
    // Hashes the source answered `None` for: resolved (parents may land),
    // but never stored.
    let mut holes = siri_crypto::FxHashSet::default();
    let mut wanted: Vec<Hash> = Vec::with_capacity(batch_cap);
    loop {
        // Drain the frontier into one batch of genuinely missing pages.
        wanted.clear();
        while wanted.len() < batch_cap {
            let Some(h) = stack.pop() else { break };
            if !visited.insert(h) {
                continue;
            }
            if to.contains(&h) {
                // Merkle property: the receiver holding this page implies
                // it holds everything beneath it (child-before-parent
                // landing keeps that true even across interrupted syncs).
                report.subtrees_skipped += 1;
                continue;
            }
            wanted.push(h);
        }
        if wanted.is_empty() {
            report.complete = stack.is_empty() && pending.is_empty();
            return Ok(report);
        }
        let pages = fetch(&wanted)?;
        if pages.len() != wanted.len() {
            return Err(StoreError::Corrupt("sync source answered with wrong page count"));
        }
        report.round_trips += 1;
        for (h, page) in wanted.iter().zip(pages) {
            let Some(page) = page else {
                // A dangling reference on the sending side: resolved for
                // the parents waiting on it (the hole is reported, not
                // fatal), never stored.
                report.missing += 1;
                holes.insert(*h);
                settle(to, *h, None, &mut pending, &mut waiters)?;
                continue;
            };
            if siri_crypto::sha256(&page) != *h {
                return Err(StoreError::Corrupt("sync page content does not match its address"));
            }
            report.pages_fetched += 1;
            report.bytes_fetched += page.len() as u64;
            let mut kids = children(&page);
            kids.sort_unstable();
            kids.dedup();
            let mut outstanding = 0usize;
            for c in kids {
                if holes.contains(&c) {
                    continue;
                }
                if to.contains(&c) {
                    // First sighting of an already-present subtree counts
                    // as a prune, same as the drain-side check.
                    if visited.insert(c) {
                        report.subtrees_skipped += 1;
                    }
                    continue;
                }
                // Queued, in flight, or held pending: wait on it.
                waiters.entry(c).or_default().push(*h);
                outstanding += 1;
                if !visited.contains(&c) {
                    stack.push(c);
                }
            }
            if outstanding == 0 {
                settle(to, *h, Some(page), &mut pending, &mut waiters)?;
            } else {
                pending.insert(*h, (page, outstanding));
            }
            if let Some(budget) = opts.max_pages {
                if report.pages_fetched >= budget {
                    report.complete = stack.is_empty() && pending.is_empty();
                    if !report.complete {
                        // Held-aside parents are dropped, not stored: the
                        // resumed sync re-fetches exactly that frontier.
                        return Ok(report);
                    }
                }
            }
        }
    }
}

/// Copy the pages reachable from `root` out of `from` into `to`, skipping
/// any subtree whose root page `to` already holds. `children` is the
/// index's page decoder (e.g. `Node::children_of_page`).
///
/// This is [`sync_pull`] with the source wired to another in-process
/// store. Dangling pages in `from` are a structural bug surfaced as a
/// panic in debug builds and skipped in release (the receiving side will
/// detect the hole through digest verification, not silent corruption).
/// I/O faults on either side — a durable receiver's disk filling
/// mid-transfer — propagate as `Err`; the receiver is left with a harmless
/// partial page set that a retried ship completes incrementally.
pub fn ship_version<F>(
    from: &dyn NodeStore,
    to: &dyn NodeStore,
    root: Hash,
    children: F,
) -> StoreResult<ShipReport>
where
    F: Fn(&[u8]) -> Vec<Hash>,
{
    let mut fetch = |hashes: &[Hash]| {
        hashes.iter().map(|h| from.try_get(h)).collect::<StoreResult<Vec<Option<Bytes>>>>()
    };
    let report = sync_pull(&mut fetch, to, root, children, &SyncOptions::default())?;
    debug_assert!(report.missing == 0, "dangling page(s) while shipping {root:?}");
    Ok(ShipReport {
        pages_sent: report.pages_fetched,
        bytes_sent: report.bytes_fetched,
        subtrees_skipped: report.subtrees_skipped,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MemStore;
    use bytes::Bytes;

    fn children(page: &[u8]) -> Vec<Hash> {
        page.chunks_exact(32).filter_map(Hash::from_slice).collect()
    }

    /// Two-level page graph: root references two children.
    fn build(store: &MemStore, leaf_a: &[u8], leaf_b: &[u8]) -> Hash {
        let a = store.put(Bytes::copy_from_slice(leaf_a));
        let b = store.put(Bytes::copy_from_slice(leaf_b));
        let mut root = Vec::new();
        root.extend_from_slice(a.as_bytes());
        root.extend_from_slice(b.as_bytes());
        store.put(Bytes::from(root))
    }

    #[test]
    fn cold_receiver_gets_everything() {
        let src = MemStore::new();
        let dst = MemStore::new();
        let root = build(&src, b"leaf one", b"leaf two");
        let report = ship_version(&src, &dst, root, children).unwrap();
        assert_eq!(report.pages_sent, 3);
        assert_eq!(report.subtrees_skipped, 0);
        assert!(dst.contains(&root));
    }

    #[test]
    fn warm_receiver_gets_only_the_delta() {
        let src = MemStore::new();
        let dst = MemStore::new();
        let v1 = build(&src, b"shared leaf", b"old leaf");
        ship_version(&src, &dst, v1, children).unwrap();

        // New version shares one leaf with v1.
        let v2 = build(&src, b"shared leaf", b"new leaf");
        let report = ship_version(&src, &dst, v2, children).unwrap();
        assert_eq!(report.pages_sent, 2, "new root + new leaf only");
        assert_eq!(report.subtrees_skipped, 1, "shared leaf pruned");
        assert!(dst.contains(&v2));
    }

    #[test]
    fn identical_version_costs_nothing() {
        let src = MemStore::new();
        let dst = MemStore::new();
        let root = build(&src, b"a", b"b");
        ship_version(&src, &dst, root, children).unwrap();
        let report = ship_version(&src, &dst, root, children).unwrap();
        assert_eq!(report.pages_sent, 0);
        assert_eq!(report.bytes_sent, 0);
        assert_eq!(report.subtrees_skipped, 1, "pruned at the root");
    }

    #[test]
    fn empty_root_is_a_noop() {
        let src = MemStore::new();
        let dst = MemStore::new();
        let report = ship_version(&src, &dst, Hash::ZERO, children).unwrap();
        assert_eq!(report, ShipReport::default());
    }

    #[test]
    fn sync_pull_batches_and_reports_round_trips() {
        let src = MemStore::new();
        let dst = MemStore::new();
        let root = build(&src, b"left", b"right");
        let mut calls = 0u64;
        let mut fetch = |hs: &[Hash]| {
            calls += 1;
            hs.iter().map(|h| src.try_get(h)).collect::<StoreResult<Vec<_>>>()
        };
        let opts = SyncOptions { batch: 1, ..SyncOptions::default() };
        let report = sync_pull(&mut fetch, &dst, root, children, &opts).unwrap();
        assert_eq!(report.pages_fetched, 3);
        assert_eq!(report.round_trips, 3);
        assert_eq!(report.round_trips, calls);
        assert!(report.complete);
        assert!(dst.contains(&root));
    }

    #[test]
    fn sync_pull_resumes_after_interruption() {
        let src = MemStore::new();
        let dst = MemStore::new();
        let root = build(&src, b"alpha", b"beta");
        let mut fetch =
            |hs: &[Hash]| hs.iter().map(|h| src.try_get(h)).collect::<StoreResult<Vec<_>>>();
        // First pull "disconnects" after one page: the root was fetched
        // but, with its children still outstanding, never stored.
        let cut = SyncOptions { batch: 1, max_pages: Some(1) };
        let first = sync_pull(&mut fetch, &dst, root, children, &cut).unwrap();
        assert_eq!(first.pages_fetched, 1);
        assert!(!first.complete);
        assert!(!dst.contains(&root), "an incomplete subtree's root must not land");
        // The retry re-fetches the unfinished frontier (here: the root)
        // and finishes the tail; completed subtrees would be pruned.
        let rest = sync_pull(&mut fetch, &dst, root, children, &SyncOptions::default()).unwrap();
        assert!(rest.complete);
        assert_eq!(rest.pages_fetched, 3, "root is re-fetched, leaves ship once");
        assert!(dst.contains(&root));
    }

    #[test]
    fn sync_pull_rejects_forged_pages() {
        let dst = MemStore::new();
        let src = MemStore::new();
        let root = build(&src, b"x", b"y");
        let mut fetch = |hs: &[Hash]| Ok(vec![Some(Bytes::from_static(b"forged")); hs.len()]);
        let err = sync_pull(&mut fetch, &dst, root, children, &SyncOptions::default());
        assert!(matches!(err, Err(StoreError::Corrupt(_))));
        assert!(!dst.contains(&root), "forged page must not land under the requested name");
    }

    #[test]
    fn sync_pull_counts_source_holes() {
        let src = MemStore::new();
        let dst = MemStore::new();
        // Root references a child the source never stored.
        let ghost = siri_crypto::sha256(b"never stored");
        let root = src.put(Bytes::copy_from_slice(ghost.as_bytes()));
        let mut fetch =
            |hs: &[Hash]| hs.iter().map(|h| src.try_get(h)).collect::<StoreResult<Vec<_>>>();
        let report = sync_pull(&mut fetch, &dst, root, children, &SyncOptions::default()).unwrap();
        assert_eq!(report.pages_fetched, 1);
        assert_eq!(report.missing, 1);
    }
}
