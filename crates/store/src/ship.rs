//! Page shipping: transfer one index version between stores, sending only
//! the pages the receiver is missing.
//!
//! This is the paper's Figure 1 "transmission" scenario as an operation:
//! deduplication doesn't just save disk, it saves the wire — a receiver
//! that already holds an earlier version needs only the δ pages of the new
//! one. The walk prunes at any page the receiver already has, because a
//! present page implies (by the Merkle property) that its entire subtree is
//! present too.

use siri_crypto::Hash;

use crate::{NodeStore, StoreResult};

/// Statistics from one [`ship_version`] call.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShipReport {
    /// Pages actually transferred.
    pub pages_sent: u64,
    /// Bytes actually transferred.
    pub bytes_sent: u64,
    /// Subtrees skipped because the receiver already held their root page.
    pub subtrees_skipped: u64,
}

/// Copy the pages reachable from `root` out of `from` into `to`, skipping
/// any subtree whose root page `to` already holds. `children` is the
/// index's page decoder (e.g. `Node::children_of_page`).
///
/// Dangling pages in `from` are a structural bug surfaced as a panic in
/// debug builds and skipped in release (the receiving side will detect the
/// hole through digest verification, not silent corruption). I/O faults on
/// either side — a durable receiver's disk filling mid-transfer — propagate
/// as `Err`; the receiver is left with a harmless partial page set that a
/// retried ship completes incrementally.
pub fn ship_version<F>(
    from: &dyn NodeStore,
    to: &dyn NodeStore,
    root: Hash,
    children: F,
) -> StoreResult<ShipReport>
where
    F: Fn(&[u8]) -> Vec<Hash>,
{
    let mut report = ShipReport::default();
    if root.is_zero() {
        return Ok(report);
    }
    let mut stack = vec![root];
    let mut visited = siri_crypto::FxHashSet::default();
    while let Some(h) = stack.pop() {
        if !visited.insert(h) {
            continue;
        }
        if to.contains(&h) {
            // Merkle property: the receiver holding this page implies it
            // holds (or can verify it holds) everything beneath it.
            report.subtrees_skipped += 1;
            continue;
        }
        let Some(page) = from.try_get(&h)? else {
            debug_assert!(false, "dangling page {h:?} while shipping");
            continue;
        };
        stack.extend(children(&page));
        report.pages_sent += 1;
        report.bytes_sent += page.len() as u64;
        to.try_put(page)?;
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MemStore;
    use bytes::Bytes;

    fn children(page: &[u8]) -> Vec<Hash> {
        page.chunks_exact(32).filter_map(Hash::from_slice).collect()
    }

    /// Two-level page graph: root references two children.
    fn build(store: &MemStore, leaf_a: &[u8], leaf_b: &[u8]) -> Hash {
        let a = store.put(Bytes::copy_from_slice(leaf_a));
        let b = store.put(Bytes::copy_from_slice(leaf_b));
        let mut root = Vec::new();
        root.extend_from_slice(a.as_bytes());
        root.extend_from_slice(b.as_bytes());
        store.put(Bytes::from(root))
    }

    #[test]
    fn cold_receiver_gets_everything() {
        let src = MemStore::new();
        let dst = MemStore::new();
        let root = build(&src, b"leaf one", b"leaf two");
        let report = ship_version(&src, &dst, root, children).unwrap();
        assert_eq!(report.pages_sent, 3);
        assert_eq!(report.subtrees_skipped, 0);
        assert!(dst.contains(&root));
    }

    #[test]
    fn warm_receiver_gets_only_the_delta() {
        let src = MemStore::new();
        let dst = MemStore::new();
        let v1 = build(&src, b"shared leaf", b"old leaf");
        ship_version(&src, &dst, v1, children).unwrap();

        // New version shares one leaf with v1.
        let v2 = build(&src, b"shared leaf", b"new leaf");
        let report = ship_version(&src, &dst, v2, children).unwrap();
        assert_eq!(report.pages_sent, 2, "new root + new leaf only");
        assert_eq!(report.subtrees_skipped, 1, "shared leaf pruned");
        assert!(dst.contains(&v2));
    }

    #[test]
    fn identical_version_costs_nothing() {
        let src = MemStore::new();
        let dst = MemStore::new();
        let root = build(&src, b"a", b"b");
        ship_version(&src, &dst, root, children).unwrap();
        let report = ship_version(&src, &dst, root, children).unwrap();
        assert_eq!(report.pages_sent, 0);
        assert_eq!(report.bytes_sent, 0);
        assert_eq!(report.subtrees_skipped, 1, "pruned at the root");
    }

    #[test]
    fn empty_root_is_a_noop() {
        let src = MemStore::new();
        let dst = MemStore::new();
        let report = ship_version(&src, &dst, Hash::ZERO, children).unwrap();
        assert_eq!(report, ShipReport::default());
    }
}
