//! Storage counters distinguishing logical writes from physical storage.

use std::sync::atomic::{AtomicU64, Ordering};

/// Counters maintained by a [`crate::NodeStore`].
///
/// The split between *logical* and *unique* is what the paper's Figure 1
/// plots as "Raw" vs "Deduplicated" storage: logical counts every page ever
/// written (as if each version kept private copies), unique counts the
/// content-addressed union actually stored.
///
/// The `cache_*` fields are zero for plain stores; caching layers
/// ([`crate::CachingStore`]) fold their page-cache counters in so harnesses
/// read one struct (Figure 21's hit-ratio axis).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Number of `put` calls.
    pub puts: u64,
    /// Sum of page sizes over all `put` calls (raw / no-dedup bytes).
    pub logical_bytes: u64,
    /// `put` calls that deduplicated against an already-stored page — the
    /// paper's page-sharing events (Universally Reusable in action).
    pub shared_puts: u64,
    /// Page bytes those shared puts did *not* have to store again.
    pub shared_bytes: u64,
    /// Bytes physically written to the backend this session. For
    /// [`crate::MemStore`] this equals the bytes of newly-inserted pages;
    /// for [`crate::FileStore`] it includes frame headers, so it tracks
    /// real disk traffic (the write-amplification numerator).
    pub bytes_written: u64,
    /// Number of distinct pages held.
    pub unique_pages: u64,
    /// Sum of page sizes over distinct pages (deduplicated bytes).
    pub unique_bytes: u64,
    /// Number of `get` calls.
    pub gets: u64,
    /// `get` calls that found the page.
    pub hits: u64,
    /// Page-cache hits (caching stores only).
    pub cache_hits: u64,
    /// Page-cache misses (caching stores only).
    pub cache_misses: u64,
    /// Page-cache evictions (caching stores only).
    pub cache_evictions: u64,
    /// Logical commits acknowledged at the *store* level (`note_commit`
    /// calls that returned success on a durable store). Zero for
    /// in-memory stores. An engine doing optimistic commits flushes
    /// before its head CAS, so an attempt that acks here and then loses
    /// the head race still counts — under contention this can exceed the
    /// engine's published-commit count (`EngineStats::commits` is the
    /// publication truth; the gap is flush traffic spent on lost races).
    pub commits: u64,
    /// Durability flushes of the active segment (fsyncs issued by the
    /// fsync policy or an explicit `sync`). Under group commit this stays
    /// below `commits`: concurrent committers share one flush.
    pub fsyncs: u64,
}

impl StoreStats {
    /// Fraction of logical bytes eliminated by content addressing;
    /// 0.0 when nothing was written.
    pub fn dedup_savings(&self) -> f64 {
        if self.logical_bytes == 0 {
            0.0
        } else {
            1.0 - self.unique_bytes as f64 / self.logical_bytes as f64
        }
    }

    /// Fraction of `put` calls absorbed by an already-stored identical
    /// page — the paper's share ratio over the write stream; 0.0 when
    /// nothing was written.
    pub fn share_ratio(&self) -> f64 {
        if self.puts == 0 {
            0.0
        } else {
            self.shared_puts as f64 / self.puts as f64
        }
    }

    /// `get` hit rate; 1.0 when no gets were issued.
    pub fn hit_rate(&self) -> f64 {
        if self.gets == 0 {
            1.0
        } else {
            self.hits as f64 / self.gets as f64
        }
    }

    /// Page-cache hit rate; 1.0 when the store has no cache or it was
    /// never probed.
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            1.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }
}

/// Lock-free accumulator behind [`StoreStats`].
///
/// Stores bump these with relaxed atomics so *read* operations never take a
/// write lock just to count themselves (the regression this replaces held
/// `inner.write()` across every `get`). Relaxed ordering is enough: the
/// counters are monotone tallies, not synchronization edges, and
/// [`AtomicStoreStats::snapshot`] only promises per-counter atomicity — a
/// snapshot taken mid-operation may see `gets` without the matching `hits`,
/// exactly like the old struct read under a momentarily released lock.
#[derive(Debug, Default)]
pub struct AtomicStoreStats {
    pub puts: AtomicU64,
    pub logical_bytes: AtomicU64,
    pub shared_puts: AtomicU64,
    pub shared_bytes: AtomicU64,
    pub bytes_written: AtomicU64,
    pub unique_pages: AtomicU64,
    pub unique_bytes: AtomicU64,
    pub gets: AtomicU64,
    pub hits: AtomicU64,
    pub commits: AtomicU64,
    pub fsyncs: AtomicU64,
}

impl AtomicStoreStats {
    #[inline]
    pub fn add(counter: &AtomicU64, v: u64) {
        counter.fetch_add(v, Ordering::Relaxed);
    }

    #[inline]
    pub fn sub(counter: &AtomicU64, v: u64) {
        counter.fetch_sub(v, Ordering::Relaxed);
    }

    pub fn snapshot(&self) -> StoreStats {
        StoreStats {
            puts: self.puts.load(Ordering::Relaxed),
            logical_bytes: self.logical_bytes.load(Ordering::Relaxed),
            shared_puts: self.shared_puts.load(Ordering::Relaxed),
            shared_bytes: self.shared_bytes.load(Ordering::Relaxed),
            bytes_written: self.bytes_written.load(Ordering::Relaxed),
            unique_pages: self.unique_pages.load(Ordering::Relaxed),
            unique_bytes: self.unique_bytes.load(Ordering::Relaxed),
            gets: self.gets.load(Ordering::Relaxed),
            hits: self.hits.load(Ordering::Relaxed),
            commits: self.commits.load(Ordering::Relaxed),
            fsyncs: self.fsyncs.load(Ordering::Relaxed),
            ..StoreStats::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn savings_and_hit_rate_edge_cases() {
        let empty = StoreStats::default();
        assert_eq!(empty.dedup_savings(), 0.0);
        assert_eq!(empty.hit_rate(), 1.0);
        assert_eq!(empty.cache_hit_rate(), 1.0);

        let s = StoreStats {
            puts: 4,
            logical_bytes: 400,
            shared_puts: 3,
            shared_bytes: 300,
            bytes_written: 100,
            unique_pages: 1,
            unique_bytes: 100,
            gets: 10,
            hits: 9,
            cache_hits: 3,
            cache_misses: 1,
            cache_evictions: 0,
            commits: 5,
            fsyncs: 2,
        };
        assert!((s.dedup_savings() - 0.75).abs() < 1e-12);
        assert!((s.hit_rate() - 0.9).abs() < 1e-12);
        assert!((s.cache_hit_rate() - 0.75).abs() < 1e-12);
        assert!((s.share_ratio() - 0.75).abs() < 1e-12);
        assert_eq!(StoreStats::default().share_ratio(), 0.0);
    }

    #[test]
    fn atomic_snapshot_round_trips() {
        let a = AtomicStoreStats::default();
        AtomicStoreStats::add(&a.puts, 3);
        AtomicStoreStats::add(&a.unique_pages, 2);
        AtomicStoreStats::sub(&a.unique_pages, 1);
        let s = a.snapshot();
        assert_eq!(s.puts, 3);
        assert_eq!(s.unique_pages, 1);
        assert_eq!(s.cache_hits, 0);
    }
}
