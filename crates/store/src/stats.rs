//! Storage counters distinguishing logical writes from physical storage.

/// Counters maintained by a [`crate::NodeStore`].
///
/// The split between *logical* and *unique* is what the paper's Figure 1
/// plots as "Raw" vs "Deduplicated" storage: logical counts every page ever
/// written (as if each version kept private copies), unique counts the
/// content-addressed union actually stored.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Number of `put` calls.
    pub puts: u64,
    /// Sum of page sizes over all `put` calls (raw / no-dedup bytes).
    pub logical_bytes: u64,
    /// Number of distinct pages held.
    pub unique_pages: u64,
    /// Sum of page sizes over distinct pages (deduplicated bytes).
    pub unique_bytes: u64,
    /// Number of `get` calls.
    pub gets: u64,
    /// `get` calls that found the page.
    pub hits: u64,
}

impl StoreStats {
    /// Fraction of logical bytes eliminated by content addressing;
    /// 0.0 when nothing was written.
    pub fn dedup_savings(&self) -> f64 {
        if self.logical_bytes == 0 {
            0.0
        } else {
            1.0 - self.unique_bytes as f64 / self.logical_bytes as f64
        }
    }

    /// `get` hit rate; 1.0 when no gets were issued.
    pub fn hit_rate(&self) -> f64 {
        if self.gets == 0 {
            1.0
        } else {
            self.hits as f64 / self.gets as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn savings_and_hit_rate_edge_cases() {
        let empty = StoreStats::default();
        assert_eq!(empty.dedup_savings(), 0.0);
        assert_eq!(empty.hit_rate(), 1.0);

        let s = StoreStats {
            puts: 4,
            logical_bytes: 400,
            unique_pages: 1,
            unique_bytes: 100,
            gets: 10,
            hits: 9,
        };
        assert!((s.dedup_savings() - 0.75).abs() < 1e-12);
        assert!((s.hit_rate() - 0.9).abs() < 1e-12);
    }
}
