//! Content-addressed page store for the SIRI index family.
//!
//! Every index node ("page" in the paper's terminology) is persisted as a
//! canonical byte encoding identified by its SHA-256. Content addressing
//! gives the *Universally Reusable* property for free: two index instances
//! that produce an identical page automatically share one copy, which is
//! exactly the page-level deduplication the paper quantifies with the
//! deduplication ratio η (§4.2).
//!
//! * [`NodeStore`] — the storage abstraction all four indexes run on.
//! * [`MemStore`] — in-memory store (sharded, lock-free-read) with
//!   logical-vs-physical accounting.
//! * [`CachingStore`] — bounded client-side page cache over a remote store
//!   with a synthetic per-fetch cost; models the Forkbase client/server
//!   deployment of §5.6.1.
//! * [`NodeCache`] — sharded LRU of *decoded* nodes keyed by content
//!   address; the index crates thread one through their read paths so hot
//!   lookups skip the store lock, the page clone and the decode entirely.
//! * [`PageSet`] — the reachable page set P(I) of one index instance, the
//!   input to the deduplication metrics.
//!
//! The layering and the cache design are documented in DESIGN.md.

mod cache;
mod caching;
mod file;
pub mod gc;
mod mem;
mod pageset;
pub mod ship;
mod stats;

use bytes::Bytes;
use siri_crypto::Hash;

pub use cache::{CacheStats, NodeCache, ShardedLru, DEFAULT_NODE_CACHE_CAPACITY};
pub use caching::{CachingStore, DEFAULT_CLIENT_CACHE_PAGES};
pub use file::FileStore;
pub use mem::MemStore;
pub use pageset::PageSet;
pub use stats::{AtomicStoreStats, StoreStats};

/// Storage for immutable, content-addressed pages.
///
/// `put` hashes the page and stores it under that hash; identical pages are
/// stored once (structural sharing). Pages are immutable: there is no
/// delete or overwrite in the core trait — removal of unreachable pages is
/// an offline concern handled by [`MemStore::sweep`].
pub trait NodeStore: Send + Sync {
    /// Store a page, returning its content address. Idempotent.
    fn put(&self, page: Bytes) -> Hash;

    /// Fetch a page by content address.
    fn get(&self, hash: &Hash) -> Option<Bytes>;

    /// Whether the page exists without fetching it.
    fn contains(&self, hash: &Hash) -> bool;

    /// Storage counters (see [`StoreStats`] for the semantics).
    fn stats(&self) -> StoreStats;
}

/// Blanket impl so `Arc<S>` can be passed where a store is expected.
impl<S: NodeStore + ?Sized> NodeStore for std::sync::Arc<S> {
    fn put(&self, page: Bytes) -> Hash {
        (**self).put(page)
    }
    fn get(&self, hash: &Hash) -> Option<Bytes> {
        (**self).get(hash)
    }
    fn contains(&self, hash: &Hash) -> bool {
        (**self).contains(hash)
    }
    fn stats(&self) -> StoreStats {
        (**self).stats()
    }
}

/// Shared handle type used by index implementations.
pub type SharedStore = std::sync::Arc<dyn NodeStore>;

/// Walk the pages reachable from `root`, using `children` to decode child
/// references out of a page, and collect them into a [`PageSet`].
///
/// The walker is index-agnostic: each index crate supplies its own
/// `children` decoder. Pages are visited once even when referenced from
/// multiple parents (diamond sharing inside one instance).
pub fn reachable_pages<F>(store: &dyn NodeStore, root: Hash, children: F) -> PageSet
where
    F: Fn(&[u8]) -> Vec<Hash>,
{
    let mut set = PageSet::new();
    if root.is_zero() {
        return set;
    }
    let mut stack = vec![root];
    while let Some(h) = stack.pop() {
        if set.contains(&h) {
            continue;
        }
        let Some(page) = store.get(&h) else {
            // Dangling reference: record nothing. Callers that care detect
            // this via digest verification, not the metrics walk.
            continue;
        };
        set.insert(h, page.len() as u64);
        for child in children(&page) {
            if !child.is_zero() && !set.contains(&child) {
                stack.push(child);
            }
        }
    }
    set
}

#[cfg(test)]
mod tests {
    use super::*;
    use siri_crypto::sha256;

    #[test]
    fn reachable_pages_walks_dag_once() {
        let store = MemStore::new();
        // Build a tiny DAG: two parents sharing one child. Pages encode
        // children as a concatenation of 32-byte hashes.
        let leaf = store.put(Bytes::from_static(b"leaf-page"));
        let mut p1 = leaf.as_bytes().to_vec();
        p1.push(1);
        let mut p2 = leaf.as_bytes().to_vec();
        p2.push(2);
        let h1 = store.put(Bytes::from(p1));
        let h2 = store.put(Bytes::from(p2));
        let mut root_page = Vec::new();
        root_page.extend_from_slice(h1.as_bytes());
        root_page.extend_from_slice(h2.as_bytes());
        let root = store.put(Bytes::from(root_page));

        let set = reachable_pages(&store, root, |page| {
            page.chunks_exact(32).filter_map(Hash::from_slice).collect()
        });
        assert_eq!(set.len(), 4, "root + 2 parents + 1 shared leaf");
        assert!(set.contains(&leaf));
    }

    #[test]
    fn reachable_pages_empty_root() {
        let store = MemStore::new();
        let set = reachable_pages(&store, Hash::ZERO, |_| Vec::new());
        assert!(set.is_empty());
    }

    #[test]
    fn reachable_pages_tolerates_dangling_refs() {
        let store = MemStore::new();
        let missing = sha256(b"never stored");
        let root = store.put(Bytes::copy_from_slice(missing.as_bytes()));
        let set = reachable_pages(&store, root, |page| {
            page.chunks_exact(32).filter_map(Hash::from_slice).collect()
        });
        assert_eq!(set.len(), 1, "only the root itself");
    }
}
