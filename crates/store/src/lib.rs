//! Content-addressed page store for the SIRI index family.
//!
//! Every index node ("page" in the paper's terminology) is persisted as a
//! canonical byte encoding identified by its SHA-256. Content addressing
//! gives the *Universally Reusable* property for free: two index instances
//! that produce an identical page automatically share one copy, which is
//! exactly the page-level deduplication the paper quantifies with the
//! deduplication ratio η (§4.2).
//!
//! * [`NodeStore`] — the storage abstraction all four indexes run on.
//! * [`MemStore`] — in-memory store (sharded, lock-free-read) with
//!   logical-vs-physical accounting.
//! * [`CachingStore`] — bounded client-side page cache over a remote store
//!   with a synthetic per-fetch cost; models the Forkbase client/server
//!   deployment of §5.6.1.
//! * [`NodeCache`] — sharded LRU of *decoded* nodes keyed by content
//!   address; the index crates thread one through their read paths so hot
//!   lookups skip the store lock, the page clone and the decode entirely.
//! * [`PageSet`] — the reachable page set P(I) of one index instance, the
//!   input to the deduplication metrics.
//!
//! The layering and the cache design are documented in DESIGN.md.

mod cache;
mod caching;
mod error;
mod file;
pub mod gc;
mod mem;
mod pageset;
pub mod ship;
mod stats;

use bytes::Bytes;
use siri_crypto::Hash;

pub use cache::{CacheStats, NodeCache, ShardedLru, DEFAULT_NODE_CACHE_CAPACITY};
pub use caching::{CachingStore, DEFAULT_CLIENT_CACHE_PAGES};
pub use error::{StoreError, StoreResult};
pub use file::{CrashPoint, FileStore, FileStoreOptions, FsyncPolicy, DEFAULT_SEGMENT_BYTES};
pub use mem::MemStore;
pub use pageset::PageSet;
pub use stats::{AtomicStoreStats, StoreStats};

/// Storage for immutable, content-addressed pages.
///
/// `try_put` hashes the page and stores it under that hash; identical pages
/// are stored once (structural sharing). Pages are immutable: there is no
/// delete or overwrite in the core trait — removal of unreachable pages is
/// an offline concern behind [`Reclaim`].
///
/// The fallible `try_*` methods are the primary interface: durable backends
/// ([`FileStore`]) surface I/O faults through them instead of panicking,
/// and keep their internal index/stats consistent when an operation fails.
/// `put`/`get` are infallible sugar for in-memory stores and quick scripts;
/// they panic on a store fault (never on a mere miss).
pub trait NodeStore: Send + Sync {
    /// Store a page, returning its content address. Idempotent. A returned
    /// error means the page is *not* stored (the store state is as if the
    /// call never happened).
    fn try_put(&self, page: Bytes) -> StoreResult<Hash>;

    /// Fetch a page by content address. `Ok(None)` is a definitive miss;
    /// `Err` means the lookup could not be completed (the page may exist).
    fn try_get(&self, hash: &Hash) -> StoreResult<Option<Bytes>>;

    /// Store a page given as a borrowed slice — e.g. a commit's reusable
    /// scratch buffer. Semantically identical to [`NodeStore::try_put`];
    /// backends override it to copy the page only when it is actually new
    /// (a deduplicated put then allocates nothing at all).
    fn try_put_raw(&self, page: &[u8]) -> StoreResult<Hash> {
        self.try_put(Bytes::copy_from_slice(page))
    }

    /// Store a batch of sibling pages, returning one content address per
    /// page in order. Semantically a loop of [`NodeStore::try_put`];
    /// backends override it to digest the whole batch with the multi-lane
    /// [`siri_crypto::hash_many`] before inserting.
    fn try_put_many(&self, pages: &[Bytes]) -> StoreResult<Vec<Hash>> {
        pages.iter().map(|p| self.try_put(p.clone())).collect()
    }

    /// Whether the page exists without fetching it.
    fn contains(&self, hash: &Hash) -> bool;

    /// Storage counters (see [`StoreStats`] for the semantics).
    fn stats(&self) -> StoreStats;

    /// Infallible sugar over [`NodeStore::try_put`]; panics on a store
    /// fault.
    fn put(&self, page: Bytes) -> Hash {
        self.try_put(page).expect("store write failed")
    }

    /// Infallible sugar over [`NodeStore::try_get`]; panics on a store
    /// fault (returns `None` only for a definitive miss).
    fn get(&self, hash: &Hash) -> Option<Bytes> {
        self.try_get(hash).expect("store read failed")
    }
}

/// A store that can reclaim pages outside the live set — the sweep half of
/// mark-and-sweep GC, generalized over backends: [`MemStore`] drops dead
/// entries in place, [`FileStore`] compacts by rewriting live pages into a
/// fresh segment generation and atomically swapping its manifest.
pub trait Reclaim: NodeStore {
    /// Reclaim every page not contained in `live`, returning
    /// `(pages, bytes)` reclaimed. `live` is typically the union of
    /// [`reachable_pages`] over the roots that must survive.
    ///
    /// The sweep drops *everything* outside `live` — including pages a
    /// concurrent writer put moments earlier (whether the put completed
    /// before the sweep or deduplicated against a page the sweep is about
    /// to drop makes no difference). GC is an offline concern: callers
    /// either quiesce writers or include every in-flight root's page set
    /// in `live`. Readers need no coordination on any backend.
    fn sweep(&self, live: &PageSet) -> StoreResult<(u64, u64)>;
}

/// Blanket impl so `Arc<S>` can be passed where a store is expected.
impl<S: NodeStore + ?Sized> NodeStore for std::sync::Arc<S> {
    fn try_put(&self, page: Bytes) -> StoreResult<Hash> {
        (**self).try_put(page)
    }
    fn try_get(&self, hash: &Hash) -> StoreResult<Option<Bytes>> {
        (**self).try_get(hash)
    }
    fn try_put_raw(&self, page: &[u8]) -> StoreResult<Hash> {
        (**self).try_put_raw(page)
    }
    fn try_put_many(&self, pages: &[Bytes]) -> StoreResult<Vec<Hash>> {
        (**self).try_put_many(pages)
    }
    fn put(&self, page: Bytes) -> Hash {
        (**self).put(page)
    }
    fn get(&self, hash: &Hash) -> Option<Bytes> {
        (**self).get(hash)
    }
    fn contains(&self, hash: &Hash) -> bool {
        (**self).contains(hash)
    }
    fn stats(&self) -> StoreStats {
        (**self).stats()
    }
}

impl<S: Reclaim + ?Sized> Reclaim for std::sync::Arc<S> {
    fn sweep(&self, live: &PageSet) -> StoreResult<(u64, u64)> {
        (**self).sweep(live)
    }
}

/// Shared handle type used by index implementations.
pub type SharedStore = std::sync::Arc<dyn NodeStore>;

/// Walk the pages reachable from `root`, using `children` to decode child
/// references out of a page, and collect them into a [`PageSet`].
///
/// The walker is index-agnostic: each index crate supplies its own
/// `children` decoder. Pages are visited once even when referenced from
/// multiple parents (diamond sharing inside one instance).
pub fn reachable_pages<F>(store: &dyn NodeStore, root: Hash, children: F) -> PageSet
where
    F: Fn(&[u8]) -> Vec<Hash>,
{
    let mut set = PageSet::new();
    if root.is_zero() {
        return set;
    }
    let mut stack = vec![root];
    while let Some(h) = stack.pop() {
        if set.contains(&h) {
            continue;
        }
        let Some(page) = store.get(&h) else {
            // Dangling reference: record nothing. Callers that care detect
            // this via digest verification, not the metrics walk.
            continue;
        };
        set.insert(h, page.len() as u64);
        for child in children(&page) {
            if !child.is_zero() && !set.contains(&child) {
                stack.push(child);
            }
        }
    }
    set
}

#[cfg(test)]
mod tests {
    use super::*;
    use siri_crypto::sha256;

    #[test]
    fn reachable_pages_walks_dag_once() {
        let store = MemStore::new();
        // Build a tiny DAG: two parents sharing one child. Pages encode
        // children as a concatenation of 32-byte hashes.
        let leaf = store.put(Bytes::from_static(b"leaf-page"));
        let mut p1 = leaf.as_bytes().to_vec();
        p1.push(1);
        let mut p2 = leaf.as_bytes().to_vec();
        p2.push(2);
        let h1 = store.put(Bytes::from(p1));
        let h2 = store.put(Bytes::from(p2));
        let mut root_page = Vec::new();
        root_page.extend_from_slice(h1.as_bytes());
        root_page.extend_from_slice(h2.as_bytes());
        let root = store.put(Bytes::from(root_page));

        let set = reachable_pages(&store, root, |page| {
            page.chunks_exact(32).filter_map(Hash::from_slice).collect()
        });
        assert_eq!(set.len(), 4, "root + 2 parents + 1 shared leaf");
        assert!(set.contains(&leaf));
    }

    #[test]
    fn reachable_pages_empty_root() {
        let store = MemStore::new();
        let set = reachable_pages(&store, Hash::ZERO, |_| Vec::new());
        assert!(set.is_empty());
    }

    #[test]
    fn reachable_pages_tolerates_dangling_refs() {
        let store = MemStore::new();
        let missing = sha256(b"never stored");
        let root = store.put(Bytes::copy_from_slice(missing.as_bytes()));
        let set = reachable_pages(&store, root, |page| {
            page.chunks_exact(32).filter_map(Hash::from_slice).collect()
        });
        assert_eq!(set.len(), 1, "only the root itself");
    }
}
