//! The reachable page set P(I) of one index instance.

use siri_crypto::{FxHashMap, Hash};

/// The set of pages reachable from one index root, with their byte sizes —
/// the P(I) of the paper's SIRI definition (§3.1) and the operand of the
/// deduplication-ratio and node-sharing-ratio metrics (§4.2, §5.4.2).
#[derive(Debug, Clone, Default)]
pub struct PageSet {
    pages: FxHashMap<Hash, u64>,
}

impl PageSet {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn insert(&mut self, hash: Hash, bytes: u64) {
        self.pages.insert(hash, bytes);
    }

    pub fn contains(&self, hash: &Hash) -> bool {
        self.pages.contains_key(hash)
    }

    /// |P| — the page count.
    pub fn len(&self) -> usize {
        self.pages.len()
    }

    pub fn is_empty(&self) -> bool {
        self.pages.is_empty()
    }

    /// byte(P) — the summed byte size of the set (paper §4.2.1).
    pub fn byte_size(&self) -> u64 {
        self.pages.values().sum()
    }

    pub fn iter(&self) -> impl Iterator<Item = (&Hash, &u64)> {
        self.pages.iter()
    }

    /// In-place union; sizes agree by construction (content addressing), so
    /// duplicate keys simply collapse.
    pub fn union_with(&mut self, other: &PageSet) {
        for (h, b) in other.pages.iter() {
            self.pages.insert(*h, *b);
        }
    }

    /// Pages in `self` but not in `other`.
    pub fn difference(&self, other: &PageSet) -> PageSet {
        let pages =
            self.pages.iter().filter(|(h, _)| !other.contains(h)).map(|(h, b)| (*h, *b)).collect();
        PageSet { pages }
    }

    /// Pages present in both sets.
    pub fn intersection(&self, other: &PageSet) -> PageSet {
        // Iterate the smaller side.
        let (small, big) = if self.len() <= other.len() { (self, other) } else { (other, self) };
        let pages =
            small.pages.iter().filter(|(h, _)| big.contains(h)).map(|(h, b)| (*h, *b)).collect();
        PageSet { pages }
    }

    /// Union of many sets: `P1 ∪ P2 ∪ ... ∪ Pk`.
    pub fn union_of<'a>(sets: impl IntoIterator<Item = &'a PageSet>) -> PageSet {
        let mut out = PageSet::new();
        for s in sets {
            out.union_with(s);
        }
        out
    }
}

impl FromIterator<(Hash, u64)> for PageSet {
    fn from_iter<I: IntoIterator<Item = (Hash, u64)>>(iter: I) -> Self {
        PageSet { pages: iter.into_iter().collect() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use siri_crypto::sha256;

    fn h(s: &str) -> Hash {
        sha256(s.as_bytes())
    }

    #[test]
    fn byte_size_sums_sizes() {
        let set: PageSet = [(h("a"), 10), (h("b"), 20)].into_iter().collect();
        assert_eq!(set.byte_size(), 30);
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn union_collapses_shared_pages() {
        let a: PageSet = [(h("a"), 10), (h("s"), 5)].into_iter().collect();
        let b: PageSet = [(h("b"), 20), (h("s"), 5)].into_iter().collect();
        let u = PageSet::union_of([&a, &b]);
        assert_eq!(u.len(), 3);
        assert_eq!(u.byte_size(), 35);
    }

    #[test]
    fn difference_and_intersection() {
        let a: PageSet = [(h("a"), 10), (h("s"), 5)].into_iter().collect();
        let b: PageSet = [(h("b"), 20), (h("s"), 5)].into_iter().collect();
        let d = a.difference(&b);
        assert_eq!(d.len(), 1);
        assert!(d.contains(&h("a")));
        let i = a.intersection(&b);
        assert_eq!(i.len(), 1);
        assert!(i.contains(&h("s")));
        // Recursively Identical check shape: |P ∩ P'| vs |P − P'|.
        assert!(i.len() >= d.len() - 1);
    }

    #[test]
    fn empty_set_behaviour() {
        let e = PageSet::new();
        assert!(e.is_empty());
        assert_eq!(e.byte_size(), 0);
        let a: PageSet = [(h("a"), 10)].into_iter().collect();
        assert_eq!(a.difference(&e).len(), 1);
        assert_eq!(a.intersection(&e).len(), 0);
    }
}
