//! A persistent, append-only, content-addressed page store.
//!
//! Pages are framed into a single log file:
//!
//! ```text
//! ┌──────┬──────────┬──────────────┬────────────┐
//! │ 0xA5 │ len: u32 │ digest: 32 B │ payload    │   (repeated)
//! └──────┴──────────┴──────────────┴────────────┘
//! ```
//!
//! Append-only fits immutable pages perfectly: a page is never rewritten,
//! so recovery is a single forward scan that stops at the first torn or
//! corrupt frame (partial trailing writes after a crash are expected and
//! tolerated — everything before them is intact and digest-verified).
//!
//! This store exists so downstream users can actually persist an index;
//! all experiments use [`crate::MemStore`] for determinism.

use std::fs::{File, OpenOptions};
use std::io::{BufReader, Read, Seek, SeekFrom, Write};
use std::path::Path;

use bytes::Bytes;
use parking_lot::Mutex;
use siri_crypto::{sha256, FxHashMap, Hash};

use crate::stats::AtomicStoreStats;
use crate::{NodeStore, StoreStats};

const FRAME_MAGIC: u8 = 0xA5;
/// Refuse absurd frame lengths when scanning (corruption guard).
const MAX_PAGE: u32 = 64 * 1024 * 1024;

struct Inner {
    file: File,
    /// Page digest → (payload offset, payload length).
    index: FxHashMap<Hash, (u64, u32)>,
    /// Append position.
    end: u64,
}

/// File-backed [`NodeStore`]. Data operations go through one mutex (the
/// file cursor is shared state) but the counters live outside it in
/// [`AtomicStoreStats`], mirroring [`crate::MemStore`]: `stats()` never
/// waits behind a reader's seek+read, and counting a `get` never extends
/// the critical section.
pub struct FileStore {
    inner: Mutex<Inner>,
    stats: AtomicStoreStats,
}

impl FileStore {
    /// Open (or create) a store at `path`, replaying the log to rebuild
    /// the in-memory index. Returns the store and the number of pages
    /// recovered.
    pub fn open(path: impl AsRef<Path>) -> std::io::Result<(Self, usize)> {
        let mut file = OpenOptions::new().read(true).append(true).create(true).open(path)?;
        let mut index = FxHashMap::default();
        let stats = AtomicStoreStats::default();

        // Recovery scan.
        let file_len = file.seek(SeekFrom::End(0))?;
        file.seek(SeekFrom::Start(0))?;
        let mut reader = BufReader::new(&mut file);
        let mut pos: u64 = 0;
        let mut valid_end: u64 = 0;
        loop {
            let mut header = [0u8; 1 + 4 + 32];
            match reader.read_exact(&mut header) {
                Ok(()) => {}
                Err(_) => break, // clean EOF or torn header
            }
            if header[0] != FRAME_MAGIC {
                break; // corrupt frame boundary: stop, keep prefix
            }
            let len = u32::from_le_bytes(header[1..5].try_into().unwrap());
            if len > MAX_PAGE || pos + 37 + len as u64 > file_len {
                break; // torn payload
            }
            let digest = Hash::from_slice(&header[5..37]).expect("32 bytes");
            let mut payload = vec![0u8; len as usize];
            if reader.read_exact(&mut payload).is_err() {
                break;
            }
            if sha256(&payload) != digest {
                break; // bit rot in the tail: stop at the last good frame
            }
            index.insert(digest, (pos + 37, len));
            AtomicStoreStats::add(&stats.unique_pages, 1);
            AtomicStoreStats::add(&stats.unique_bytes, len as u64);
            pos += 37 + len as u64;
            valid_end = pos;
        }
        drop(reader);

        // Drop any torn tail so future appends start at a clean boundary.
        if valid_end < file_len {
            file.set_len(valid_end)?;
        }
        file.seek(SeekFrom::Start(valid_end))?;

        let recovered = index.len();
        Ok((
            FileStore { inner: Mutex::new(Inner { file, index, end: valid_end }), stats },
            recovered,
        ))
    }

    /// Flush appended pages to the OS (callers that need durability across
    /// power loss should call this, then `fsync` via [`FileStore::sync`]).
    pub fn sync(&self) -> std::io::Result<()> {
        self.inner.lock().file.sync_data()
    }

    /// Number of distinct pages held.
    pub fn len(&self) -> usize {
        self.inner.lock().index.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl NodeStore for FileStore {
    fn put(&self, page: Bytes) -> Hash {
        let digest = sha256(&page);
        AtomicStoreStats::add(&self.stats.puts, 1);
        AtomicStoreStats::add(&self.stats.logical_bytes, page.len() as u64);
        let mut inner = self.inner.lock();
        if inner.index.contains_key(&digest) {
            return digest;
        }
        let mut frame = Vec::with_capacity(37 + page.len());
        frame.push(FRAME_MAGIC);
        frame.extend_from_slice(&(page.len() as u32).to_le_bytes());
        frame.extend_from_slice(digest.as_bytes());
        frame.extend_from_slice(&page);
        inner.file.write_all(&frame).expect("append failed");
        let payload_off = inner.end + 37;
        inner.index.insert(digest, (payload_off, page.len() as u32));
        inner.end += frame.len() as u64;
        AtomicStoreStats::add(&self.stats.unique_pages, 1);
        AtomicStoreStats::add(&self.stats.unique_bytes, page.len() as u64);
        digest
    }

    fn get(&self, hash: &Hash) -> Option<Bytes> {
        AtomicStoreStats::add(&self.stats.gets, 1);
        let mut inner = self.inner.lock();
        let (off, len) = *inner.index.get(hash)?;
        let mut buf = vec![0u8; len as usize];
        inner.file.seek(SeekFrom::Start(off)).ok()?;
        inner.file.read_exact(&mut buf).ok()?;
        // Restore the append position invariant.
        let end = inner.end;
        inner.file.seek(SeekFrom::Start(end)).ok()?;
        drop(inner);
        AtomicStoreStats::add(&self.stats.hits, 1);
        Some(Bytes::from(buf))
    }

    fn contains(&self, hash: &Hash) -> bool {
        self.inner.lock().index.contains_key(hash)
    }

    fn stats(&self) -> StoreStats {
        self.stats.snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("siri-filestore-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("{name}-{}.log", std::process::id()));
        let _ = std::fs::remove_file(&path);
        path
    }

    #[test]
    fn put_get_round_trip_and_dedup() {
        let path = tmp("roundtrip");
        let (store, recovered) = FileStore::open(&path).unwrap();
        assert_eq!(recovered, 0);
        let h1 = store.put(Bytes::from_static(b"page one"));
        let h2 = store.put(Bytes::from_static(b"page two"));
        let h1_again = store.put(Bytes::from_static(b"page one"));
        assert_eq!(h1, h1_again);
        assert_eq!(store.len(), 2);
        assert_eq!(store.get(&h1).unwrap().as_ref(), b"page one");
        assert_eq!(store.get(&h2).unwrap().as_ref(), b"page two");
        assert!(store.get(&sha256(b"missing")).is_none());
    }

    #[test]
    fn survives_reopen() {
        let path = tmp("reopen");
        let h;
        {
            let (store, _) = FileStore::open(&path).unwrap();
            h = store.put(Bytes::from_static(b"durable page"));
            store.put(Bytes::from_static(b"another"));
            store.sync().unwrap();
        }
        let (store, recovered) = FileStore::open(&path).unwrap();
        assert_eq!(recovered, 2);
        assert_eq!(store.get(&h).unwrap().as_ref(), b"durable page");
        // Dedup persists across restarts.
        let before = store.stats().unique_pages;
        store.put(Bytes::from_static(b"durable page"));
        assert_eq!(store.stats().unique_pages, before);
    }

    #[test]
    fn torn_tail_is_truncated_on_recovery() {
        let path = tmp("torn");
        {
            let (store, _) = FileStore::open(&path).unwrap();
            store.put(Bytes::from_static(b"good page"));
            store.sync().unwrap();
        }
        // Simulate a crash mid-append: garbage half-frame at the tail.
        {
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(&[FRAME_MAGIC, 0xFF, 0x00]).unwrap();
        }
        let (store, recovered) = FileStore::open(&path).unwrap();
        assert_eq!(recovered, 1, "good prefix kept, torn tail dropped");
        // The store still appends correctly after truncation.
        let h = store.put(Bytes::from_static(b"post-crash page"));
        assert_eq!(store.get(&h).unwrap().as_ref(), b"post-crash page");
        drop(store);
        let (store, recovered) = FileStore::open(&path).unwrap();
        assert_eq!(recovered, 2);
        let _ = store;
    }

    #[test]
    fn bit_rot_in_tail_stops_the_scan() {
        let path = tmp("bitrot");
        let h_good;
        {
            let (store, _) = FileStore::open(&path).unwrap();
            h_good = store.put(Bytes::from_static(b"first"));
            store.put(Bytes::from_static(b"second - will be corrupted"));
            store.sync().unwrap();
        }
        // Flip a payload byte in the second frame.
        {
            let mut data = std::fs::read(&path).unwrap();
            let n = data.len();
            data[n - 3] ^= 0x40;
            std::fs::write(&path, data).unwrap();
        }
        let (store, recovered) = FileStore::open(&path).unwrap();
        assert_eq!(recovered, 1, "corrupted frame must not be trusted");
        assert!(store.get(&h_good).is_some());
    }

    #[test]
    fn an_index_runs_on_a_file_store() {
        // End-to-end: a real index persisted and reopened.
        let path = tmp("index");
        let root;
        {
            let (store, _) = FileStore::open(&path).unwrap();
            let shared: crate::SharedStore = std::sync::Arc::new(store);
            // Use raw pages to avoid a circular dev-dependency on the index
            // crates: simulate a two-level structure.
            let leaf = shared.put(Bytes::from_static(b"leaf payload"));
            let mut parent = Vec::new();
            parent.extend_from_slice(leaf.as_bytes());
            root = shared.put(Bytes::from(parent));
        }
        let (store, recovered) = FileStore::open(&path).unwrap();
        assert_eq!(recovered, 2);
        let page = store.get(&root).unwrap();
        let child = Hash::from_slice(&page[..32]).unwrap();
        assert_eq!(store.get(&child).unwrap().as_ref(), b"leaf payload");
    }
}
