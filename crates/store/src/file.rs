//! A persistent, segmented, compacting, content-addressed page store.
//!
//! The store is a *directory* holding numbered segment files plus a small
//! manifest naming the segments that make up the current generation:
//!
//! ```text
//! db/
//! ├── MANIFEST            # "siri-segments v1" + "seg N" lines + "end"
//! ├── seg-00000001.seg    # frames, append-only
//! └── seg-00000002.seg    # ← active segment (appends go here)
//! ```
//!
//! Each segment is a sequence of digest-verified frames:
//!
//! ```text
//! ┌──────┬──────────┬──────────────┬────────────┐
//! │ 0xA5 │ len: u32 │ digest: 32 B │ payload    │   (repeated)
//! └──────┴──────────┴──────────────┴────────────┘
//! ```
//!
//! Append-only fits immutable pages perfectly: a page is never rewritten,
//! so recovery is a forward scan per segment that stops at the first torn
//! or corrupt frame (partial trailing writes after a crash are expected and
//! tolerated — everything before them is intact and digest-verified).
//!
//! ## Why segments
//!
//! * **Reads never touch the append path.** `get` resolves a page to
//!   `(segment, offset, length)` and issues one positioned read
//!   (`read_at`); there is no shared cursor to seek and no mutex shared
//!   with writers. The single-log predecessor funnelled every read through
//!   the append mutex and a seek/read/seek-back dance.
//! * **Space can be reclaimed.** [`Reclaim::sweep`] compacts by rewriting
//!   the live pages into a fresh segment generation and atomically swapping
//!   the manifest (write-temp → fsync → rename → fsync-dir). A crash at any
//!   point leaves either the old or the new generation fully intact;
//!   segment files not named by an intact manifest are leftovers of an
//!   interrupted compaction or rotation and are deleted on open.
//! * **Writes can fail without lying.** `try_put` propagates I/O errors;
//!   on a short or failed append the segment is rewound to the last clean
//!   frame boundary and neither the in-memory index nor the counters move —
//!   the store behaves as if the call never happened.
//!
//! ## Crash matrix
//!
//! | crash during            | on-disk state found at reopen                   | outcome |
//! |-------------------------|--------------------------------------------------|---------|
//! | append                  | torn frame at active-segment tail                | tail truncated, prefix kept |
//! | rotation (pre-manifest) | new empty segment not in manifest                | stray deleted |
//! | compaction (pre-swap)   | partial new generation, old manifest             | new gen deleted, old gen served |
//! | compaction (post-swap)  | new manifest, old segments linger                | old gen deleted, new gen served |
//! | manifest torn/missing   | unparseable manifest                             | every on-disk segment loaded (superset recovery — content addressing dedups) |
//!
//! Durability of *acknowledged* commits is governed by [`FsyncPolicy`];
//! the manifest swap itself is always fsynced.

use std::fs::{self, File, OpenOptions};
use std::io::{self, BufReader, Read, Write};
#[cfg(not(unix))]
use std::io::{Seek, SeekFrom};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, PoisonError};
use std::time::Duration;

use bytes::Bytes;
use parking_lot::{LockClass, Mutex, RwLock};

/// Lock classes for the runtime lock-order tracker (DESIGN.md §9). The
/// durable store's internal order: appender → index → readers, all after
/// any engine-level lock.
static FILE_APPENDER_CLASS: LockClass = LockClass::new(50, "store.file-appender");
static FILE_INDEX_CLASS: LockClass = LockClass::new(60, "store.file-index");
static FILE_READERS_CLASS: LockClass = LockClass::new(65, "store.file-readers");
use siri_crypto::{sha256, FxHashMap, Hash};

use crate::stats::AtomicStoreStats;
use crate::{NodeStore, PageSet, Reclaim, StoreError, StoreResult, StoreStats};

const FRAME_MAGIC: u8 = 0xA5;
/// Frame header bytes preceding the payload: magic + len + digest.
const FRAME_HEADER: u64 = 1 + 4 + 32;
/// Refuse absurd frame lengths when scanning (corruption guard).
const MAX_PAGE: u32 = 64 * 1024 * 1024;
/// Segments roll over once the active one grows past this.
pub const DEFAULT_SEGMENT_BYTES: u64 = 64 * 1024 * 1024;

const MANIFEST: &str = "MANIFEST";
const MANIFEST_TMP: &str = "MANIFEST.tmp";
const MANIFEST_HEADER: &str = "siri-segments v1";
const MANIFEST_TRAILER: &str = "end";

/// When acknowledged writes are flushed to stable storage.
///
/// `put` itself never fsyncs — pages are appended through the OS page
/// cache. The policy decides what [`FileStore::note_commit`] does, which
/// engines call once per *logical* commit (a whole [`crate::PageSet`]'s
/// worth of pages), amortizing the flush the way a WAL group-commit does.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FsyncPolicy {
    /// Never fsync automatically; callers own durability via
    /// [`FileStore::sync`]. Fastest, loses the OS-buffered tail on power
    /// failure (never corrupts — recovery drops torn tails).
    Never,
    /// Fsync on every commit: an acknowledged commit survives power loss.
    #[default]
    OnCommit,
    /// Fsync every `n`-th commit — bounded data loss, amortized cost.
    EveryN(u64),
    /// Group commit: every acknowledged commit survives power loss (same
    /// guarantee as [`FsyncPolicy::OnCommit`]), but concurrent committers
    /// share one fsync. The first committer of a tick becomes the *flush
    /// leader*: it waits the `window` out for more commits to pile in,
    /// issues a single fsync, and wakes everyone the flush covered. Commit
    /// latency pays up to `window` (a lone committer always pays it — a
    /// fixed tick, not a quorum wait); commit *throughput* under N writers
    /// scales because the store pays ~1 fsync per tick instead of N.
    Group(Duration),
}

impl FsyncPolicy {
    /// Parse `"never"`, `"commit"`, `"every=N"`, or `"group=MS"` (a group
    /// window in milliseconds; `group=0` batches only commits already
    /// waiting), as the `siri` CLI accepts.
    pub fn parse(s: &str) -> Option<FsyncPolicy> {
        match s {
            "never" => Some(FsyncPolicy::Never),
            "commit" => Some(FsyncPolicy::OnCommit),
            _ => {
                if let Some(n) = s.strip_prefix("every=") {
                    return n.parse().ok().filter(|&n| n > 0).map(FsyncPolicy::EveryN);
                }
                s.strip_prefix("group=")
                    .and_then(|ms| ms.parse().ok())
                    .map(|ms: u64| FsyncPolicy::Group(Duration::from_millis(ms)))
            }
        }
    }
}

/// Tuning knobs for [`FileStore::open_with`].
#[derive(Debug, Clone, Copy)]
pub struct FileStoreOptions {
    /// Roll to a new segment once the active one reaches this size.
    pub max_segment_bytes: u64,
    /// When acknowledged commits reach stable storage.
    pub fsync: FsyncPolicy,
}

impl Default for FileStoreOptions {
    fn default() -> Self {
        FileStoreOptions { max_segment_bytes: DEFAULT_SEGMENT_BYTES, fsync: FsyncPolicy::default() }
    }
}

/// Crash-injection points inside [`FileStore::sweep_with_crash`] — the
/// compaction aborts (as if the process died) right *after* the named
/// step. Test-only plumbing for the recovery proptests; hidden from docs.
#[doc(hidden)]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashPoint {
    /// New-generation segments fully written and fsynced; no manifest yet.
    AfterSegmentsWritten,
    /// `MANIFEST.tmp` written and fsynced; rename not performed.
    AfterManifestTmp,
    /// Manifest renamed (swap is live); old segments not yet deleted.
    AfterSwap,
}

/// Where one page's payload lives on disk.
#[derive(Debug, Clone, Copy)]
struct PageLoc {
    seg: u32,
    off: u64,
    len: u32,
}

/// Append-side state: the active segment and the current generation's
/// segment list. One mutex — but only writers (and compaction) take it.
struct Appender {
    segments: Vec<u32>,
    active_id: u32,
    active: File,
    /// Clean end of the active segment (next append offset).
    end: u64,
    /// Reusable frame-assembly buffer: appends are serialized by this
    /// mutex anyway, so one allocation serves every put for the store's
    /// lifetime.
    frame_buf: Vec<u8>,
}

/// Group-commit bookkeeping: arrival tickets vs flush coverage.
///
/// Commits take a monotone ticket on arrival; a flush covers every ticket
/// issued before its fsync started. `ok_upto`/`err_upto` record how far
/// successful and failed flushes reach — an fsync flushes the whole file,
/// so a later successful flush also covers earlier tickets, which is why a
/// waiter checks `ok_upto` *before* `err_upto`.
#[derive(Default)]
struct GroupState {
    /// Tickets issued (commits that appended their frames and arrived).
    arrived: u64,
    /// Highest ticket covered by a successful fsync.
    ok_upto: u64,
    /// Highest ticket covered by a failed fsync (and not by a later
    /// successful one).
    err_upto: u64,
    /// The most recent flush failure, replayed to every waiter it covered
    /// (`io::Error` is not `Clone`; kind + message reconstruct it).
    err: Option<(io::ErrorKind, String)>,
    /// A flush leader is currently collecting the tick / fsyncing.
    flushing: bool,
}

/// Segmented, compacting, file-backed [`NodeStore`].
///
/// Reads resolve through a lock-free-ish path: a shared read lock on the
/// page index, a shared read lock on the reader-handle cache, then one
/// positioned `read_at` — no seeking, no interaction with appends.
/// Counters live in [`AtomicStoreStats`], as in [`crate::MemStore`].
pub struct FileStore {
    dir: PathBuf,
    /// Page digest → on-disk location.
    index: RwLock<FxHashMap<Hash, PageLoc>>,
    /// Lazily opened read handles, one per segment.
    readers: RwLock<FxHashMap<u32, Arc<File>>>,
    appender: Mutex<Appender>,
    stats: AtomicStoreStats,
    opts: FileStoreOptions,
    /// Commits seen by [`FsyncPolicy::EveryN`]'s cadence (counted on
    /// arrival, unlike [`StoreStats::commits`], which counts acks).
    cadence: AtomicU64,
    /// Group-commit state ([`FsyncPolicy::Group`]). `std::sync` primitives
    /// on purpose: the vendored `parking_lot` shim has no `Condvar`.
    group: std::sync::Mutex<GroupState>,
    flushed: Condvar,
}

fn seg_path(dir: &Path, id: u32) -> PathBuf {
    dir.join(format!("seg-{id:08}.seg"))
}

fn seg_id_of(name: &str) -> Option<u32> {
    name.strip_prefix("seg-")?.strip_suffix(".seg")?.parse().ok()
}

/// Fsync the directory itself so renames/creates inside it are durable.
fn sync_dir(dir: &Path) -> io::Result<()> {
    #[cfg(unix)]
    {
        File::open(dir)?.sync_all()
    }
    #[cfg(not(unix))]
    {
        let _ = dir;
        Ok(())
    }
}

/// One positioned read, independent of any file cursor.
fn read_exact_at(file: &File, buf: &mut [u8], off: u64) -> io::Result<()> {
    #[cfg(unix)]
    {
        use std::os::unix::fs::FileExt;
        file.read_exact_at(buf, off)
    }
    #[cfg(not(unix))]
    {
        // Portable fallback: clone the handle and seek the clone. Slower,
        // but keeps the shared handle's cursor untouched.
        let mut f = file.try_clone()?;
        f.seek(SeekFrom::Start(off))?;
        f.read_exact(buf)
    }
}

/// One digest-verified frame found by a recovery scan: `(digest, payload
/// offset, payload length)`.
type ScannedFrame = (Hash, u64, u32);

/// Forward-scan one segment, returning every digest-verified frame and the
/// clean end offset (everything past it is torn or corrupt).
fn scan_segment(path: &Path) -> io::Result<(Vec<ScannedFrame>, u64)> {
    let file = File::open(path)?;
    let file_len = file.metadata()?.len();
    let mut reader = BufReader::new(file);
    let mut frames = Vec::new();
    let mut pos: u64 = 0;
    let mut valid_end: u64 = 0;
    loop {
        let mut header = [0u8; FRAME_HEADER as usize];
        if reader.read_exact(&mut header).is_err() {
            break; // clean EOF or torn header
        }
        if header[0] != FRAME_MAGIC {
            break; // corrupt frame boundary: stop, keep prefix
        }
        let len = u32::from_le_bytes(header[1..5].try_into().unwrap());
        if len > MAX_PAGE || pos + FRAME_HEADER + len as u64 > file_len {
            break; // torn payload
        }
        let digest = Hash::from_slice(&header[5..37]).expect("32 bytes");
        let mut payload = vec![0u8; len as usize];
        if reader.read_exact(&mut payload).is_err() {
            break;
        }
        if sha256(&payload) != digest {
            break; // bit rot in the tail: stop at the last good frame
        }
        frames.push((digest, pos + FRAME_HEADER, len));
        pos += FRAME_HEADER + len as u64;
        valid_end = pos;
    }
    Ok((frames, valid_end))
}

/// Atomically install a manifest naming `segments` (in order).
fn write_manifest(dir: &Path, segments: &[u32]) -> io::Result<()> {
    write_manifest_tmp(dir, segments)?;
    commit_manifest_tmp(dir)
}

fn write_manifest_tmp(dir: &Path, segments: &[u32]) -> io::Result<()> {
    let tmp = dir.join(MANIFEST_TMP);
    let mut f = File::create(&tmp)?;
    let mut text = String::with_capacity(32 + segments.len() * 14);
    text.push_str(MANIFEST_HEADER);
    text.push('\n');
    for id in segments {
        text.push_str(&format!("seg {id}\n"));
    }
    text.push_str(MANIFEST_TRAILER);
    text.push('\n');
    f.write_all(text.as_bytes())?;
    f.sync_data()?;
    Ok(())
}

fn commit_manifest_tmp(dir: &Path) -> io::Result<()> {
    fs::rename(dir.join(MANIFEST_TMP), dir.join(MANIFEST))?;
    sync_dir(dir)
}

/// Parse the manifest. `Some(ids)` only when the trailer is present — a
/// manifest without it is torn and must not be trusted to *exclude*
/// segments (see the crash matrix in the module docs).
fn read_manifest(dir: &Path) -> Option<Vec<u32>> {
    let text = fs::read_to_string(dir.join(MANIFEST)).ok()?;
    let mut lines = text.lines();
    if lines.next()? != MANIFEST_HEADER {
        return None;
    }
    let mut ids = Vec::new();
    let mut sealed = false;
    for line in lines {
        if line == MANIFEST_TRAILER {
            sealed = true;
            break;
        }
        ids.push(line.strip_prefix("seg ")?.parse().ok()?);
    }
    sealed.then_some(ids)
}

/// All segment ids present on disk, ascending.
fn scan_dir_segments(dir: &Path) -> io::Result<Vec<u32>> {
    let mut ids = Vec::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        if let Some(id) = entry.file_name().to_str().and_then(seg_id_of) {
            ids.push(id);
        }
    }
    ids.sort_unstable();
    Ok(ids)
}

impl FileStore {
    /// Open (or create) a store at `path` with default options, replaying
    /// segments to rebuild the in-memory index. Returns the store and the
    /// number of pages recovered.
    ///
    /// `path` is a directory; a pre-segmented single-log file at `path` is
    /// migrated in place (it becomes segment 1 of a fresh directory).
    pub fn open(path: impl AsRef<Path>) -> io::Result<(Self, usize)> {
        Self::open_with(path, FileStoreOptions::default())
    }

    /// [`FileStore::open`] with explicit [`FileStoreOptions`].
    pub fn open_with(path: impl AsRef<Path>, opts: FileStoreOptions) -> io::Result<(Self, usize)> {
        let dir = path.as_ref().to_path_buf();

        // Legacy layout: a single append-only log file. Its frame format is
        // identical to a segment's, so migration is two renames — staged so
        // a crash at any point resumes here: the data is always reachable
        // either at `dir` (untouched log), at the `.legacy-migrate` name
        // (checked below even when the first rename happened in a previous
        // process), or as segment 1.
        let legacy = dir.with_extension("legacy-migrate");
        if dir.is_file() {
            fs::rename(&dir, &legacy)?;
        }
        if legacy.is_file() {
            fs::create_dir_all(&dir)?;
            fs::rename(&legacy, seg_path(&dir, 1))?;
            write_manifest(&dir, &[1])?;
        }
        fs::create_dir_all(&dir)?;
        let _ = fs::remove_file(dir.join(MANIFEST_TMP));

        // Which segments constitute the store? An intact manifest is
        // authoritative: files it does not name are strays of an
        // interrupted rotation/compaction and are deleted. A torn or
        // missing manifest must not exclude anything — load every segment
        // on disk (content addressing collapses duplicates) and heal.
        let (mut segments, intact) = match read_manifest(&dir) {
            Some(ids) => (ids, true),
            None => (scan_dir_segments(&dir)?, false),
        };
        if intact {
            for id in scan_dir_segments(&dir)? {
                if !segments.contains(&id) {
                    let _ = fs::remove_file(seg_path(&dir, id));
                }
            }
        }
        if segments.is_empty() {
            segments.push(1);
            File::create(seg_path(&dir, 1))?;
        }
        if !intact {
            write_manifest(&dir, &segments)?;
        }

        // Replay. Later segments win index collisions (they are identical
        // pages anyway — content addressing).
        let mut index = FxHashMap::default();
        let stats = AtomicStoreStats::default();
        let mut active_end = 0u64;
        for (i, &id) in segments.iter().enumerate() {
            let path = seg_path(&dir, id);
            let (frames, valid_end) = scan_segment(&path)?;
            for (digest, off, len) in frames {
                if index.insert(digest, PageLoc { seg: id, off, len }).is_none() {
                    AtomicStoreStats::add(&stats.unique_pages, 1);
                    AtomicStoreStats::add(&stats.unique_bytes, len as u64);
                }
            }
            let is_last = i + 1 == segments.len();
            if is_last {
                // Drop any torn tail so future appends start clean.
                let file_len = fs::metadata(&path)?.len();
                if valid_end < file_len {
                    OpenOptions::new().write(true).open(&path)?.set_len(valid_end)?;
                }
                active_end = valid_end;
            }
        }

        let active_id = *segments.last().expect("at least one segment");
        let active = OpenOptions::new().append(true).open(seg_path(&dir, active_id))?;
        let recovered = index.len();
        Ok((
            FileStore {
                dir,
                index: RwLock::with_class(index, &FILE_INDEX_CLASS),
                readers: RwLock::with_class(FxHashMap::default(), &FILE_READERS_CLASS),
                appender: Mutex::with_class(
                    Appender {
                        segments,
                        active_id,
                        active,
                        end: active_end,
                        frame_buf: Vec::new(),
                    },
                    &FILE_APPENDER_CLASS,
                ),
                stats,
                opts,
                cadence: AtomicU64::new(0),
                group: std::sync::Mutex::new(GroupState::default()),
                flushed: Condvar::new(),
            },
            recovered,
        ))
    }

    /// Flush the active segment to stable storage (`fdatasync`).
    ///
    /// The appender mutex is held only long enough to clone the active
    /// handle — the fsync itself runs outside it, so committers keep
    /// appending while a flush is in flight (the group-commit overlap).
    /// That is sound because segment rotation syncs a segment before
    /// retiring it: every frame not in the current active segment is
    /// already durable.
    pub fn sync(&self) -> io::Result<()> {
        let active = self.appender.lock().active.try_clone()?;
        active.sync_data()?;
        AtomicStoreStats::add(&self.stats.fsyncs, 1);
        Ok(())
    }

    /// Apply the [`FsyncPolicy`] after one logical commit. Engines call
    /// this once per acknowledged commit attempt, not per page. Successful
    /// returns are counted in [`StoreStats::commits`] (a commit whose
    /// flush fails was *not* acknowledged and is not counted; an engine
    /// retrying a lost optimistic race may ack more than once per
    /// published commit). The flushes land in [`StoreStats::fsyncs`] —
    /// under [`FsyncPolicy::Group`] the second counter stays below the
    /// first when writers overlap.
    pub fn note_commit(&self) -> io::Result<()> {
        let res = match self.opts.fsync {
            FsyncPolicy::Never => Ok(()),
            FsyncPolicy::OnCommit => self.sync(),
            FsyncPolicy::EveryN(n) => {
                let c = self.cadence.fetch_add(1, Ordering::Relaxed) + 1;
                if c.is_multiple_of(n) {
                    self.sync()
                } else {
                    Ok(())
                }
            }
            FsyncPolicy::Group(window) => self.group_commit(window),
        };
        if res.is_ok() {
            AtomicStoreStats::add(&self.stats.commits, 1);
        }
        res
    }

    /// One group-commit arrival: take a ticket, then either lead the flush
    /// tick (first committer in) or wait for a leader's fsync to cover the
    /// ticket. Returns once a flush that started *after* this commit's
    /// frames were appended has completed — the same ack guarantee as
    /// [`FsyncPolicy::OnCommit`], at ~1 fsync per tick instead of one per
    /// commit.
    fn group_commit(&self, window: Duration) -> io::Result<()> {
        fn lock(st: &std::sync::Mutex<GroupState>) -> std::sync::MutexGuard<'_, GroupState> {
            st.lock().unwrap_or_else(PoisonError::into_inner)
        }
        let mut st = lock(&self.group);
        st.arrived += 1;
        let ticket = st.arrived;
        loop {
            if st.ok_upto >= ticket {
                return Ok(());
            }
            if st.err_upto >= ticket {
                let (kind, msg) = st.err.clone().expect("err_upto implies a recorded error");
                return Err(io::Error::new(kind, msg));
            }
            if st.flushing {
                st = self.flushed.wait(st).unwrap_or_else(PoisonError::into_inner);
                continue;
            }
            // Lead this tick: let the group fill for `window`, snapshot the
            // arrivals (their frames were appended before they arrived —
            // append happens-before note_commit), then one fsync covers
            // them all. Latecomers ticket past the snapshot and wait for
            // the next tick's leader.
            st.flushing = true;
            drop(st);
            if !window.is_zero() {
                std::thread::sleep(window);
            }
            let covered = lock(&self.group).arrived;
            let res = self.sync();
            st = lock(&self.group);
            st.flushing = false;
            match res {
                Ok(()) => st.ok_upto = st.ok_upto.max(covered),
                Err(e) => {
                    st.err_upto = st.err_upto.max(covered);
                    st.err = Some((e.kind(), e.to_string()));
                }
            }
            self.flushed.notify_all();
            // Loop around: `ticket <= covered`, so the next pass returns.
        }
    }

    /// Number of distinct pages held.
    pub fn len(&self) -> usize {
        self.index.read().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The store's directory.
    pub fn path(&self) -> &Path {
        &self.dir
    }

    /// Segments in the current generation.
    pub fn segment_count(&self) -> usize {
        self.appender.lock().segments.len()
    }

    /// Bytes occupied on disk by the current generation's segment files
    /// (frame headers included; the manifest is noise).
    pub fn disk_bytes(&self) -> u64 {
        let segments = self.appender.lock().segments.clone();
        segments
            .iter()
            .filter_map(|&id| fs::metadata(seg_path(&self.dir, id)).ok())
            .map(|m| m.len())
            .sum()
    }

    /// A cached positioned-read handle for one segment.
    fn reader(&self, seg: u32) -> io::Result<Arc<File>> {
        if let Some(f) = self.readers.read().get(&seg) {
            return Ok(Arc::clone(f));
        }
        let file = Arc::new(File::open(seg_path(&self.dir, seg))?);
        Ok(Arc::clone(self.readers.write().entry(seg).or_insert(file)))
    }

    /// Create a brand-new segment file for `id`. A file already at that
    /// name can only be a stray from an earlier failed rotation/compaction
    /// (no live generation references it, or the caller would not have
    /// picked the id), so it is removed rather than wedging every retry
    /// with `AlreadyExists`.
    fn create_segment(&self, id: u32) -> io::Result<File> {
        let path = seg_path(&self.dir, id);
        let _ = fs::remove_file(&path);
        OpenOptions::new().append(true).create_new(true).open(path)
    }

    /// Roll the appender to a fresh segment. The manifest is updated
    /// *before* the first append to the new segment, so a crash in between
    /// leaves only an empty stray (deleted at next open) — never an
    /// unlisted segment holding acknowledged data.
    fn rotate(&self, ap: &mut Appender) -> io::Result<()> {
        ap.active.sync_data()?;
        let id = ap.segments.iter().copied().max().unwrap_or(0) + 1;
        let file = self.create_segment(id)?;
        let mut segments = ap.segments.clone();
        segments.push(id);
        if let Err(e) = write_manifest(&self.dir, &segments) {
            // Drop the just-created stray so a retry can recreate it.
            let _ = fs::remove_file(seg_path(&self.dir, id));
            return Err(e);
        }
        ap.segments = segments;
        ap.active_id = id;
        ap.active = file;
        ap.end = 0;
        Ok(())
    }

    /// Compact the store down to `live`, with an optional simulated crash
    /// for the recovery tests: the compaction stops dead right after the
    /// named step, leaving the disk exactly as a process death would. The
    /// in-memory store is stale after a simulated crash — drop it and
    /// reopen the directory.
    #[doc(hidden)]
    pub fn sweep_with_crash(
        &self,
        live: &PageSet,
        crash: Option<CrashPoint>,
    ) -> StoreResult<(u64, u64)> {
        let ioerr = StoreError::io;
        let mut ap = self.appender.lock();

        // Partition the index under a short read lock.
        let mut survivors: Vec<(Hash, PageLoc)> = Vec::new();
        let (mut dead_pages, mut dead_bytes) = (0u64, 0u64);
        for (h, loc) in self.index.read().iter() {
            if live.contains(h) {
                survivors.push((*h, *loc));
            } else {
                dead_pages += 1;
                dead_bytes += loc.len as u64;
            }
        }
        if dead_pages == 0 && crash.is_none() {
            return Ok((0, 0));
        }
        // Deterministic output: rewrite in (segment, offset) order — close
        // to the original append order, and friendly to sequential I/O.
        survivors.sort_unstable_by_key(|(_, loc)| (loc.seg, loc.off));

        // 1. Write the new generation.
        let next_id = ap.segments.iter().copied().max().unwrap_or(0) + 1;
        let mut gen_ids = vec![next_id];
        let mut cur =
            self.create_segment(next_id).map_err(|e| ioerr("compact: create segment", e))?;
        let mut cur_end = 0u64;
        let mut new_index: FxHashMap<Hash, PageLoc> = FxHashMap::default();
        for (digest, loc) in &survivors {
            let reader = self.reader(loc.seg).map_err(|e| ioerr("compact: open segment", e))?;
            let mut payload = vec![0u8; loc.len as usize];
            read_exact_at(&reader, &mut payload, loc.off)
                .map_err(|e| ioerr("compact: read page", e))?;
            if sha256(&payload) != *digest {
                return Err(StoreError::Corrupt("live page failed digest check during compaction"));
            }
            if cur_end >= self.opts.max_segment_bytes && cur_end > 0 {
                cur.sync_data().map_err(|e| ioerr("compact: sync segment", e))?;
                let id = gen_ids.last().unwrap() + 1;
                cur = self.create_segment(id).map_err(|e| ioerr("compact: create segment", e))?;
                gen_ids.push(id);
                cur_end = 0;
            }
            let mut frame = Vec::with_capacity(FRAME_HEADER as usize + payload.len());
            frame.push(FRAME_MAGIC);
            frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
            frame.extend_from_slice(digest.as_bytes());
            frame.extend_from_slice(&payload);
            cur.write_all(&frame).map_err(|e| ioerr("compact: append", e))?;
            AtomicStoreStats::add(&self.stats.bytes_written, frame.len() as u64);
            new_index.insert(
                *digest,
                PageLoc {
                    seg: *gen_ids.last().unwrap(),
                    off: cur_end + FRAME_HEADER,
                    len: loc.len,
                },
            );
            cur_end += frame.len() as u64;
        }
        cur.sync_data().map_err(|e| ioerr("compact: sync segment", e))?;
        sync_dir(&self.dir).map_err(|e| ioerr("compact: sync dir", e))?;
        if crash == Some(CrashPoint::AfterSegmentsWritten) {
            return Ok((0, 0));
        }

        // 2. Atomic manifest swap — the commit point of the compaction.
        write_manifest_tmp(&self.dir, &gen_ids).map_err(|e| ioerr("compact: manifest", e))?;
        if crash == Some(CrashPoint::AfterManifestTmp) {
            return Ok((0, 0));
        }
        commit_manifest_tmp(&self.dir).map_err(|e| ioerr("compact: manifest rename", e))?;
        if crash == Some(CrashPoint::AfterSwap) {
            return Ok((0, 0));
        }

        // 3. Install the new generation in memory, then delete old files.
        let old_segments = std::mem::take(&mut ap.segments);
        let active_id = *gen_ids.last().unwrap();
        let active = OpenOptions::new()
            .append(true)
            .open(seg_path(&self.dir, active_id))
            .map_err(|e| ioerr("compact: reopen active", e))?;
        *self.index.write() = new_index;
        self.readers.write().clear();
        ap.segments = gen_ids;
        ap.active_id = active_id;
        ap.active = active;
        ap.end = cur_end;
        drop(ap);
        for id in old_segments {
            let _ = fs::remove_file(seg_path(&self.dir, id));
        }
        AtomicStoreStats::sub(&self.stats.unique_pages, dead_pages);
        AtomicStoreStats::sub(&self.stats.unique_bytes, dead_bytes);
        Ok((dead_pages, dead_bytes))
    }
}

impl FileStore {
    /// Append `page` under its (already computed) content address. The
    /// slice-based core of every put flavor: the page bytes are only ever
    /// copied into the appender's reusable frame buffer, and a dedup hit
    /// touches neither the disk nor any allocation.
    fn put_hashed(&self, digest: Hash, page: &[u8]) -> StoreResult<Hash> {
        // Counters move only on success: `puts`/`logical_bytes` tally
        // *accepted* writes (including dedup hits), never failed attempts.
        let count_put = |stats: &AtomicStoreStats| {
            AtomicStoreStats::add(&stats.puts, 1);
            AtomicStoreStats::add(&stats.logical_bytes, page.len() as u64);
        };
        // A dedup hit is a *shared* put: the page bytes never reach disk.
        let count_shared = |stats: &AtomicStoreStats| {
            AtomicStoreStats::add(&stats.shared_puts, 1);
            AtomicStoreStats::add(&stats.shared_bytes, page.len() as u64);
        };
        if self.index.read().contains_key(&digest) {
            count_put(&self.stats);
            count_shared(&self.stats);
            return Ok(digest);
        }
        let mut ap = self.appender.lock();
        // Re-check under the appender lock: another writer may have stored
        // the page between the optimistic check and here.
        if self.index.read().contains_key(&digest) {
            count_put(&self.stats);
            count_shared(&self.stats);
            return Ok(digest);
        }
        if ap.end >= self.opts.max_segment_bytes && ap.end > 0 {
            self.rotate(&mut ap).map_err(|e| StoreError::io("rotate", e))?;
        }
        let mut frame = std::mem::take(&mut ap.frame_buf);
        frame.clear();
        frame.reserve(FRAME_HEADER as usize + page.len());
        frame.push(FRAME_MAGIC);
        frame.extend_from_slice(&(page.len() as u32).to_le_bytes());
        frame.extend_from_slice(digest.as_bytes());
        frame.extend_from_slice(page);
        let write_result = ap.active.write_all(&frame);
        let frame_len = frame.len();
        ap.frame_buf = frame;
        if let Err(e) = write_result {
            // A short write may have left a torn frame: rewind to the last
            // clean boundary so neither the file nor the index/counters
            // reflect the failed append.
            let _ = ap.active.set_len(ap.end);
            return Err(StoreError::io("append", e));
        }
        let loc = PageLoc { seg: ap.active_id, off: ap.end + FRAME_HEADER, len: page.len() as u32 };
        ap.end += frame_len as u64;
        self.index.write().insert(digest, loc);
        drop(ap);
        count_put(&self.stats);
        AtomicStoreStats::add(&self.stats.unique_pages, 1);
        AtomicStoreStats::add(&self.stats.unique_bytes, page.len() as u64);
        // Frame header included: this is the disk traffic the write cost.
        AtomicStoreStats::add(&self.stats.bytes_written, frame_len as u64);
        Ok(digest)
    }
}

impl NodeStore for FileStore {
    fn try_put(&self, page: Bytes) -> StoreResult<Hash> {
        self.put_hashed(sha256(&page), &page)
    }

    fn try_put_raw(&self, page: &[u8]) -> StoreResult<Hash> {
        self.put_hashed(sha256(page), page)
    }

    /// Batch put: one multi-lane digest pass over the whole sibling batch,
    /// then sequential appends (the log is inherently serial).
    fn try_put_many(&self, pages: &[Bytes]) -> StoreResult<Vec<Hash>> {
        let views: Vec<&[u8]> = pages.iter().map(|p| p.as_ref()).collect();
        let hashes = siri_crypto::hash_many(&views);
        for (digest, page) in hashes.iter().zip(pages) {
            self.put_hashed(*digest, page)?;
        }
        Ok(hashes)
    }

    fn try_get(&self, hash: &Hash) -> StoreResult<Option<Bytes>> {
        AtomicStoreStats::add(&self.stats.gets, 1);
        // Two attempts: a concurrent compaction can swap the generation
        // between the index lookup and the read. The second attempt re-reads
        // the (then post-swap) index; in-flight reads on already-open
        // handles are unaffected by unlink.
        for attempt in 0..2 {
            let Some(loc) = self.index.read().get(hash).copied() else {
                return Ok(None);
            };
            let file = match self.reader(loc.seg) {
                Ok(f) => f,
                Err(_) if attempt == 0 => continue,
                Err(e) => return Err(StoreError::io("open segment", e)),
            };
            let mut buf = vec![0u8; loc.len as usize];
            match read_exact_at(&file, &mut buf, loc.off) {
                Ok(()) => {
                    AtomicStoreStats::add(&self.stats.hits, 1);
                    return Ok(Some(Bytes::from(buf)));
                }
                Err(_) if attempt == 0 => {
                    self.readers.write().remove(&loc.seg);
                    continue;
                }
                Err(e) => return Err(StoreError::io("read_at", e)),
            }
        }
        unreachable!("second attempt returns or errors")
    }

    fn contains(&self, hash: &Hash) -> bool {
        self.index.read().contains_key(hash)
    }

    fn stats(&self) -> StoreStats {
        self.stats.snapshot()
    }
}

impl Reclaim for FileStore {
    /// Reclaim dead pages by rewriting the live ones into a fresh segment
    /// generation and atomically swapping the manifest. See the module docs
    /// for the crash matrix.
    fn sweep(&self, live: &PageSet) -> StoreResult<(u64, u64)> {
        self.sweep_with_crash(live, None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("siri-filestore-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&path);
        let _ = std::fs::remove_file(&path);
        path
    }

    fn small_segments(max: u64) -> FileStoreOptions {
        FileStoreOptions { max_segment_bytes: max, fsync: FsyncPolicy::Never }
    }

    #[test]
    fn put_get_round_trip_and_dedup() {
        let path = tmp("roundtrip");
        let (store, recovered) = FileStore::open(&path).unwrap();
        assert_eq!(recovered, 0);
        let h1 = store.put(Bytes::from_static(b"page one"));
        let h2 = store.put(Bytes::from_static(b"page two"));
        let h1_again = store.put(Bytes::from_static(b"page one"));
        assert_eq!(h1, h1_again);
        assert_eq!(store.len(), 2);
        assert_eq!(store.get(&h1).unwrap().as_ref(), b"page one");
        assert_eq!(store.get(&h2).unwrap().as_ref(), b"page two");
        assert!(store.get(&sha256(b"missing")).is_none());
    }

    #[test]
    fn survives_reopen() {
        let path = tmp("reopen");
        let h;
        {
            let (store, _) = FileStore::open(&path).unwrap();
            h = store.put(Bytes::from_static(b"durable page"));
            store.put(Bytes::from_static(b"another"));
            store.sync().unwrap();
        }
        let (store, recovered) = FileStore::open(&path).unwrap();
        assert_eq!(recovered, 2);
        assert_eq!(store.get(&h).unwrap().as_ref(), b"durable page");
        // Dedup persists across restarts.
        let before = store.stats().unique_pages;
        store.put(Bytes::from_static(b"durable page"));
        assert_eq!(store.stats().unique_pages, before);
    }

    #[test]
    fn torn_tail_is_truncated_on_recovery() {
        let path = tmp("torn");
        {
            let (store, _) = FileStore::open(&path).unwrap();
            store.put(Bytes::from_static(b"good page"));
            store.sync().unwrap();
        }
        // Simulate a crash mid-append: garbage half-frame at the tail of
        // the active segment.
        {
            let mut f = OpenOptions::new().append(true).open(seg_path(&path, 1)).unwrap();
            f.write_all(&[FRAME_MAGIC, 0xFF, 0x00]).unwrap();
        }
        let (store, recovered) = FileStore::open(&path).unwrap();
        assert_eq!(recovered, 1, "good prefix kept, torn tail dropped");
        // The store still appends correctly after truncation.
        let h = store.put(Bytes::from_static(b"post-crash page"));
        assert_eq!(store.get(&h).unwrap().as_ref(), b"post-crash page");
        drop(store);
        let (store, recovered) = FileStore::open(&path).unwrap();
        assert_eq!(recovered, 2);
        let _ = store;
    }

    #[test]
    fn bit_rot_in_tail_stops_the_scan() {
        let path = tmp("bitrot");
        let h_good;
        {
            let (store, _) = FileStore::open(&path).unwrap();
            h_good = store.put(Bytes::from_static(b"first"));
            store.put(Bytes::from_static(b"second - will be corrupted"));
            store.sync().unwrap();
        }
        // Flip a payload byte in the second frame.
        {
            let seg = seg_path(&path, 1);
            let mut data = std::fs::read(&seg).unwrap();
            let n = data.len();
            data[n - 3] ^= 0x40;
            std::fs::write(&seg, data).unwrap();
        }
        let (store, recovered) = FileStore::open(&path).unwrap();
        assert_eq!(recovered, 1, "corrupted frame must not be trusted");
        assert!(store.get(&h_good).is_some());
    }

    #[test]
    fn segments_rotate_and_recover() {
        let path = tmp("rotate");
        let pages: Vec<Bytes> = (0..40u32).map(|i| Bytes::from(vec![i as u8; 64])).collect();
        let hashes: Vec<Hash>;
        {
            let (store, _) = FileStore::open_with(&path, small_segments(256)).unwrap();
            hashes = pages.iter().map(|p| store.put(p.clone())).collect();
            assert!(store.segment_count() > 1, "small cap must force rotation");
            // Every page readable across segments, via positioned reads.
            for (h, p) in hashes.iter().zip(&pages) {
                assert_eq!(store.get(h).unwrap(), *p);
            }
        }
        let (store, recovered) = FileStore::open_with(&path, small_segments(256)).unwrap();
        assert_eq!(recovered, 40);
        for (h, p) in hashes.iter().zip(&pages) {
            assert_eq!(store.get(h).unwrap(), *p);
        }
    }

    #[test]
    fn sweep_compacts_disk_down_to_live_set() {
        let path = tmp("sweep");
        let (store, _) = FileStore::open_with(&path, small_segments(512)).unwrap();
        let mut live = PageSet::new();
        let mut keep = Vec::new();
        for i in 0..50u32 {
            let page = Bytes::from(vec![i as u8; 100]);
            let h = store.put(page);
            if i % 5 == 0 {
                live.insert(h, 100);
                keep.push(h);
            }
        }
        let before = store.disk_bytes();
        let (pages, bytes) = store.sweep(&live).unwrap();
        assert_eq!(pages, 40);
        assert_eq!(bytes, 40 * 100);
        assert!(store.disk_bytes() < before, "compaction must shrink the disk");
        assert_eq!(store.len(), 10);
        for h in &keep {
            assert_eq!(store.get(h).unwrap().len(), 100);
        }
        assert_eq!(store.stats().unique_pages, 10);
        // Post-compaction appends and reopen both work.
        let h_new = store.put(Bytes::from_static(b"after compaction"));
        drop(store);
        let (store, recovered) = FileStore::open(&path).unwrap();
        assert_eq!(recovered, 11);
        assert!(store.get(&h_new).is_some());
        for h in &keep {
            assert!(store.get(h).is_some());
        }
    }

    #[test]
    fn sweep_without_garbage_is_a_no_op() {
        let path = tmp("noop-sweep");
        let (store, _) = FileStore::open(&path).unwrap();
        let h = store.put(Bytes::from_static(b"live"));
        let mut live = PageSet::new();
        live.insert(h, 4);
        let before = store.disk_bytes();
        assert_eq!(store.sweep(&live).unwrap(), (0, 0));
        assert_eq!(store.disk_bytes(), before, "no rewrite when nothing is dead");
    }

    #[test]
    fn legacy_single_log_file_is_migrated() {
        let path = tmp("legacy");
        // Hand-write an old-format single log: frames straight in `path`.
        let payload = b"legacy page".to_vec();
        let digest = sha256(&payload);
        let mut frame = vec![FRAME_MAGIC];
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(digest.as_bytes());
        frame.extend_from_slice(&payload);
        std::fs::write(&path, &frame).unwrap();

        let (store, recovered) = FileStore::open(&path).unwrap();
        assert_eq!(recovered, 1);
        assert_eq!(store.get(&digest).unwrap().as_ref(), b"legacy page");
        assert!(path.is_dir(), "log file became a store directory");
    }

    #[test]
    fn an_index_runs_on_a_file_store() {
        // End-to-end: a real index persisted and reopened.
        let path = tmp("index");
        let root;
        {
            let (store, _) = FileStore::open(&path).unwrap();
            let shared: crate::SharedStore = std::sync::Arc::new(store);
            // Use raw pages to avoid a circular dev-dependency on the index
            // crates: simulate a two-level structure.
            let leaf = shared.put(Bytes::from_static(b"leaf payload"));
            let mut parent = Vec::new();
            parent.extend_from_slice(leaf.as_bytes());
            root = shared.put(Bytes::from(parent));
        }
        let (store, recovered) = FileStore::open(&path).unwrap();
        assert_eq!(recovered, 2);
        let page = store.get(&root).unwrap();
        let child = Hash::from_slice(&page[..32]).unwrap();
        assert_eq!(store.get(&child).unwrap().as_ref(), b"leaf payload");
    }

    #[test]
    fn fsync_policy_parses() {
        assert_eq!(FsyncPolicy::parse("never"), Some(FsyncPolicy::Never));
        assert_eq!(FsyncPolicy::parse("commit"), Some(FsyncPolicy::OnCommit));
        assert_eq!(FsyncPolicy::parse("every=8"), Some(FsyncPolicy::EveryN(8)));
        assert_eq!(FsyncPolicy::parse("every=0"), None);
        assert_eq!(
            FsyncPolicy::parse("group=5"),
            Some(FsyncPolicy::Group(Duration::from_millis(5)))
        );
        assert_eq!(FsyncPolicy::parse("group=0"), Some(FsyncPolicy::Group(Duration::ZERO)));
        assert_eq!(FsyncPolicy::parse("group=ms"), None);
        assert_eq!(FsyncPolicy::parse("sometimes"), None);
    }

    #[test]
    fn group_commit_acks_a_lone_committer() {
        // No concurrency: the committer leads its own tick and must not
        // deadlock waiting for company, with or without a wait window.
        for window in [Duration::ZERO, Duration::from_millis(1)] {
            let path = tmp(&format!("group-lone-{}", window.as_millis()));
            let opts = FileStoreOptions {
                max_segment_bytes: DEFAULT_SEGMENT_BYTES,
                fsync: FsyncPolicy::Group(window),
            };
            let (store, _) = FileStore::open_with(&path, opts).unwrap();
            store.put(Bytes::from_static(b"solo page"));
            store.note_commit().unwrap();
            let s = store.stats();
            assert_eq!(s.commits, 1);
            assert_eq!(s.fsyncs, 1, "a lone commit pays exactly one fsync");
        }
    }

    #[test]
    fn group_commit_shares_fsyncs_across_writers() {
        let path = tmp("group-shared");
        let opts = FileStoreOptions {
            max_segment_bytes: DEFAULT_SEGMENT_BYTES,
            fsync: FsyncPolicy::Group(Duration::from_millis(2)),
        };
        let (store, _) = FileStore::open_with(&path, opts).unwrap();
        let store = Arc::new(store);
        const WRITERS: u8 = 4;
        const COMMITS: u8 = 25;
        std::thread::scope(|s| {
            for t in 0..WRITERS {
                let store = Arc::clone(&store);
                s.spawn(move || {
                    for i in 0..COMMITS {
                        store.put(Bytes::from(vec![t, i, 0x77, 0x11]));
                        // Acked ⇒ durable: every return is a covered flush.
                        store.note_commit().unwrap();
                    }
                });
            }
        });
        let stats = store.stats();
        assert_eq!(stats.commits, WRITERS as u64 * COMMITS as u64);
        assert!(
            stats.fsyncs < stats.commits,
            "group commit must batch: {} fsyncs for {} commits",
            stats.fsyncs,
            stats.commits
        );
        // Everything acked is on disk: reopen recovers every page.
        drop(store);
        let (store, recovered) = FileStore::open(&path).unwrap();
        assert_eq!(recovered, WRITERS as usize * COMMITS as usize);
        let _ = store;
    }

    #[test]
    fn note_commit_respects_every_n() {
        let path = tmp("everyn");
        let opts = FileStoreOptions {
            max_segment_bytes: DEFAULT_SEGMENT_BYTES,
            fsync: FsyncPolicy::EveryN(3),
        };
        let (store, _) = FileStore::open_with(&path, opts).unwrap();
        store.put(Bytes::from_static(b"page"));
        for _ in 0..9 {
            store.note_commit().unwrap();
        }
        // No assertion on fsync side effects (not observable portably);
        // this exercises the counter path end to end without panicking.
        assert_eq!(store.len(), 1);
    }
}
