//! Factories that build/open each index structure over a store — the
//! engine's (and the benchmark harness's) point of index-agnosticism.

use siri_core::{ProofScheme, SiriIndex, StructureStats};
use siri_crypto::Hash;
use siri_mbt::{MbtProofScheme, MerkleBucketTree};
use siri_mpt::{MerklePatriciaTrie, MptProofScheme};
use siri_mvmb::{MvmbParams, MvmbProofScheme, MvmbTree};
use siri_pos_tree::{PosParams, PosProofScheme, PosTree};
use siri_store::SharedStore;

/// Construct or re-open a concrete index over a page store.
///
/// `Index` must also report its shape ([`StructureStats`]) so factory-
/// generic harness code can fill the BENCH report schema without knowing
/// which structure it drives.
pub trait IndexFactory: Clone + Send + Sync {
    type Index: SiriIndex + StructureStats;

    /// A human-readable structure name for reports.
    fn name(&self) -> &'static str;

    /// A fresh, empty index.
    fn empty(&self, store: SharedStore) -> Self::Index;

    /// Re-open an existing version by root digest.
    fn open(&self, store: SharedStore, root: Hash) -> Self::Index;

    /// The structure's proof-verification scheme — what a client that
    /// holds only a branch digest uses to check this factory's proofs
    /// (see `siri_core::verify_anchored_membership` and friends).
    fn scheme(&self) -> &'static dyn ProofScheme;
}

/// Look up a [`ProofScheme`] by the structure name a server reports
/// (factory [`IndexFactory::name`] / `SiriIndex::kind` spelling). How a
/// remote client picks the right verifier without compiling against the
/// concrete index type.
pub fn scheme_by_name(name: &str) -> Option<&'static dyn ProofScheme> {
    match name {
        "pos-tree" => Some(&PosProofScheme),
        "mpt" => Some(&MptProofScheme),
        "mbt" => Some(&MbtProofScheme),
        "mvmb+-tree" => Some(&MvmbProofScheme),
        _ => None,
    }
}

/// POS-Tree factory (also covers the Prolly variant via
/// [`PosParams::noms`]).
#[derive(Clone)]
pub struct PosFactory(pub PosParams);

impl IndexFactory for PosFactory {
    type Index = PosTree;

    fn name(&self) -> &'static str {
        "pos-tree"
    }

    fn empty(&self, store: SharedStore) -> PosTree {
        PosTree::new(store, self.0)
    }

    fn open(&self, store: SharedStore, root: Hash) -> PosTree {
        PosTree::open(store, self.0, root)
    }

    fn scheme(&self) -> &'static dyn ProofScheme {
        &PosProofScheme
    }
}

impl PosFactory {
    pub fn noms() -> Self {
        PosFactory(PosParams::noms())
    }
}

/// MPT factory.
#[derive(Clone)]
pub struct MptFactory;

impl IndexFactory for MptFactory {
    type Index = MerklePatriciaTrie;

    fn name(&self) -> &'static str {
        "mpt"
    }

    fn empty(&self, store: SharedStore) -> MerklePatriciaTrie {
        MerklePatriciaTrie::new(store)
    }

    fn open(&self, store: SharedStore, root: Hash) -> MerklePatriciaTrie {
        MerklePatriciaTrie::open(store, root)
    }

    fn scheme(&self) -> &'static dyn ProofScheme {
        &MptProofScheme
    }
}

/// MBT factory with fixed capacity/fanout.
#[derive(Clone)]
pub struct MbtFactory {
    pub buckets: usize,
    pub fanout: usize,
}

impl Default for MbtFactory {
    fn default() -> Self {
        MbtFactory { buckets: siri_mbt::DEFAULT_BUCKETS, fanout: siri_mbt::DEFAULT_FANOUT }
    }
}

impl IndexFactory for MbtFactory {
    type Index = MerkleBucketTree;

    fn name(&self) -> &'static str {
        "mbt"
    }

    fn empty(&self, store: SharedStore) -> MerkleBucketTree {
        MerkleBucketTree::new(store, self.buckets, self.fanout).expect("valid MBT parameters")
    }

    fn open(&self, store: SharedStore, root: Hash) -> MerkleBucketTree {
        MerkleBucketTree::open(store, self.buckets, self.fanout, root)
    }

    fn scheme(&self) -> &'static dyn ProofScheme {
        &MbtProofScheme
    }
}

/// MVMB+-Tree factory.
#[derive(Clone, Default)]
pub struct MvmbFactory(pub MvmbParams);

impl IndexFactory for MvmbFactory {
    type Index = MvmbTree;

    fn name(&self) -> &'static str {
        "mvmb+-tree"
    }

    fn empty(&self, store: SharedStore) -> MvmbTree {
        MvmbTree::new(store, self.0)
    }

    fn open(&self, store: SharedStore, root: Hash) -> MvmbTree {
        MvmbTree::open(store, self.0, root)
    }

    fn scheme(&self) -> &'static dyn ProofScheme {
        &MvmbProofScheme
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use siri_core::MemStore;

    fn exercise<F: IndexFactory>(factory: F) {
        let store = MemStore::new_shared();
        let mut idx = factory.empty(store.clone());
        idx.insert(b"factory-key", Bytes::from_static(b"v")).unwrap();
        let reopened = factory.open(store, idx.root());
        assert_eq!(reopened.get(b"factory-key").unwrap().unwrap().as_ref(), b"v");
        assert_eq!(reopened.root(), idx.root());
    }

    #[test]
    fn all_factories_round_trip() {
        exercise(PosFactory(PosParams::default()));
        exercise(MptFactory);
        exercise(MbtFactory { buckets: 64, fanout: 4 });
        exercise(MvmbFactory(MvmbParams::default()));
    }
}
