//! A Forkbase-style storage engine over any SIRI index (§5.6).
//!
//! Architecture (matching the paper's single-servlet setup, grown to many
//! concurrent clients):
//!
//! * **writes** execute entirely server-side against the shared page store
//!   ("the write operations will be performed on the server side
//!   completely");
//! * **reads** run client-side through a [`CachingStore`]: pages are pulled
//!   from the server once and cached, so throughput is governed by the
//!   cache hit ratio ("Forkbase caches the nodes at clients after retrieved
//!   from servers");
//! * **branches** are named heads over immutable roots, so forking is
//!   O(1) and history is always intact.
//!
//! ## Concurrency model
//!
//! Every operation takes `&self`: the engine is shared across threads by
//! reference (or `Arc`), not serialized behind one lock. The paper's
//! structures make this nearly free — all data is immutable and
//! content-addressed, so the only mutable state is a *tiny head table
//! per branch*:
//!
//! * the branch table is an `RwLock<HashMap<_, Arc<BranchSlot>>>` — taken
//!   briefly to resolve a name to its slot; commits and reads on
//!   *different* branches then proceed on disjoint per-slot locks;
//! * a branch head is a **shard table**: `N` per-key-range sub-roots
//!   behind their own CAS'd slots plus a [`ShardRouter`] describing the
//!   partition (`N = 1` — the default — is exactly the classic single
//!   mutable head). A multi-shard head is summarized by a
//!   content-addressed [`ShardManifest`] page, so the branch digest stays
//!   a single hash;
//! * same-branch commits are **optimistic**: the batch is routed by key
//!   range, each touched shard's next version is built against its
//!   observed sub-root (unlocked), then all touched sub-roots are
//!   compare-and-swapped together under the table's write lock — held
//!   only for the pointer swaps, never during tree building or fsync.
//!   Writers whose batches touch *disjoint shards* therefore never
//!   conflict: their parents still match at swap time and neither
//!   rebuilds. A genuinely lost race (same shard) re-applies only the
//!   mismatched slices on the fresher sub-roots, bounded by
//!   [`MAX_COMMIT_ATTEMPTS`]. Lost races surface in
//!   [`EngineStats::conflicts`] and per-shard in [`ShardStats`];
//! * with [`ShardingPolicy::adaptive`] the partition itself adapts at
//!   publish points: a shard absorbing conflicts splits at its median
//!   key, persistently cold adjacent shards merge back (the
//!   contention-adapting-tree idea applied to immutable sub-roots);
//! * client-side views (the decoded-node caches, one per shard) live
//!   behind a per-branch mutex, so concurrent readers of different
//!   branches never share a lock either. Cursors chain per-shard range
//!   scans in partition order, so `range`/`scan_prefix` see one logical
//!   tree.
//!
//! On a durable server store, commits fsync (per the store's
//! [`siri_store::FsyncPolicy`] — including group commit) *before*
//! publishing the new head: an observable head is always a durable head.
//! A multi-shard commit additionally flushes its manifest page before
//! acknowledging, so a returned digest is always re-openable.
//!
//! [`IndexFactory`] abstracts over which of the four structures backs the
//! store; [`NomsEngine`] wraps the same machinery with Noms' behaviour —
//! Prolly-tree chunking and unbatched, per-record writes — for the
//! Figure 22 comparison.

mod factory;

use std::collections::{HashMap, HashSet};
use std::ops::Bound;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use bytes::Bytes;
use parking_lot::{LockClass, Mutex, RwLock};
use siri_core::{
    chain_cursors, merge, merge_with_base, prefix_successor, CommitInfo, Entry, EntryCursor,
    IndexError, MergeOutcome, MergeStrategy, Proof, Result, Session, ShardCommit, ShardManifest,
    ShardRouter, SiriIndex, WriteBatch,
};
use siri_crypto::{sha256, Hash};
use siri_store::{
    CachingStore, FileStore, FileStoreOptions, MemStore, NodeStore, SharedStore, StoreError,
    StoreStats,
};

pub use factory::{scheme_by_name, IndexFactory, MbtFactory, MptFactory, MvmbFactory, PosFactory};

/// Default modelled cost of one client→server page fetch, in nanoseconds.
/// Roughly a small object read over 1 GbE with kernel overheads — the
/// absolute value only scales Figure 21's y-axis; the crossovers come from
/// hit ratios.
pub const DEFAULT_FETCH_COST_NANOS: u64 = 20_000;

/// Upper bound on optimistic-commit attempts before a commit gives up with
/// [`IndexError::CommitContention`]. Each lost race implies another
/// writer's commit was published, so reaching this bound means the branch
/// absorbed at least this many competing commits while one batch was
/// being rebuilt — pathological contention, not deadlock.
pub const MAX_COMMIT_ATTEMPTS: u32 = 1_000;

/// The effective commit-attempt bound: [`MAX_COMMIT_ATTEMPTS`] unless the
/// `SIRI_MAX_COMMIT_ATTEMPTS` env var overrides it (read once). The
/// override exists for tests that need to force
/// [`IndexError::CommitContention`] deterministically (e.g. with a bound
/// of 1) instead of spinning through a thousand raced rebuilds; values of
/// 0 or garbage fall back to the default.
pub fn max_commit_attempts() -> u32 {
    static BOUND: std::sync::OnceLock<u32> = std::sync::OnceLock::new();
    *BOUND.get_or_init(|| {
        std::env::var("SIRI_MAX_COMMIT_ATTEMPTS")
            .ok()
            .and_then(|v| v.parse::<u32>().ok())
            .filter(|&n| n > 0)
            .unwrap_or(MAX_COMMIT_ATTEMPTS)
    })
}

/// Lock classes for the runtime lock-order tracker (DESIGN.md §9): the
/// engine's documented acquisition order is branch map → slot head (the
/// shard table) → shard head → client view → store internals. Debug
/// builds with `SIRI_LOCK_ORDER=1` panic on any out-of-order acquisition.
static BRANCH_MAP_CLASS: LockClass = LockClass::new(10, "forkbase.branch-map");
static SLOT_HEAD_CLASS: LockClass = LockClass::new(20, "forkbase.slot-head");
static SHARD_HEAD_CLASS: LockClass = LockClass::new(25, "forkbase.shard-head");
static CLIENT_VIEW_CLASS: LockClass = LockClass::new(30, "forkbase.client-view");

/// Engine-level commit counters (monotone, relaxed atomics underneath).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Head publications: successful commits and merges across all
    /// branches.
    pub commits: u64,
    /// Optimistic-commit head races lost (each one triggered a rebuild of
    /// the mismatched batch slices against fresher sub-roots).
    /// `conflicts / commits` is the branch-contention ratio; it stays 0
    /// while writers touch disjoint branches *or disjoint shards*.
    pub conflicts: u64,
    /// Adaptive re-sharding: hot shards split at their median key.
    pub splits: u64,
    /// Adaptive re-sharding: cold adjacent shards merged back.
    pub merges: u64,
}

/// Per-shard commit/conflict counters for one branch, in partition order.
/// Disjoint writers are expected to drive `conflicts` of *their* shards to
/// zero; a hot shard's rising count is what trips an adaptive split.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// Sub-root publications routed into this shard.
    pub commits: u64,
    /// Sub-root CAS races lost on this shard.
    pub conflicts: u64,
}

/// How a branch's key space is partitioned into CAS slots, and whether the
/// partition adapts to observed contention.
///
/// The default ([`ShardingPolicy::single`]) is one shard — byte-for-byte
/// the classic single-head engine. `SIRI_SHARDS=N` pins a static count
/// (reproducible benchmarks); `SIRI_SHARDS=adaptive` lets conflict
/// counters drive splits and merges at publish points.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardingPolicy {
    /// Shard count for newly created branches (uniform byte-prefix
    /// boundaries). Forked branches inherit the source partition instead.
    pub initial: usize,
    /// Adapt the partition to contention at publish points.
    pub adaptive: bool,
    /// Conflicts observed on one shard (since it was created) before it is
    /// split at its median key.
    pub split_threshold: u64,
    /// A shard with at most this many commits counts as cold when a merge
    /// of adjacent shards is considered.
    pub merge_threshold: u64,
    /// Commits the branch must absorb before cold shards may merge —
    /// prevents collapsing a partition that simply has not seen traffic
    /// yet.
    pub observe_window: u64,
    /// Hard cap on shards per branch (splits stop here).
    pub max_shards: usize,
}

impl ShardingPolicy {
    /// One shard, no adaptation — the classic single-slot branch head.
    pub fn single() -> Self {
        ShardingPolicy {
            initial: 1,
            adaptive: false,
            split_threshold: 16,
            merge_threshold: 1,
            observe_window: 64,
            max_shards: 64,
        }
    }

    /// A static `n`-shard partition (uniform byte-prefix boundaries).
    pub fn pinned(n: usize) -> Self {
        ShardingPolicy { initial: n.clamp(1, 256), ..Self::single() }
    }

    /// Start unsharded and let conflict counters drive splits/merges.
    pub fn adaptive_default() -> Self {
        ShardingPolicy { adaptive: true, ..Self::single() }
    }

    /// Policy from the `SIRI_SHARDS` env var: unset → single (the
    /// default engine), `N` → pinned static count, `adaptive` → adaptive.
    pub fn from_env() -> Self {
        match std::env::var("SIRI_SHARDS") {
            Ok(v) if v.eq_ignore_ascii_case("adaptive") => Self::adaptive_default(),
            Ok(v) => v
                .parse::<usize>()
                .ok()
                .filter(|&n| n >= 1)
                .map(Self::pinned)
                .unwrap_or_else(Self::single),
            Err(_) => Self::single(),
        }
    }

    fn initial_router(&self) -> ShardRouter {
        if self.initial > 1 {
            ShardRouter::uniform(self.initial)
        } else {
            ShardRouter::single()
        }
    }
}

impl Default for ShardingPolicy {
    fn default() -> Self {
        Self::single()
    }
}

/// One CAS slot of a sharded branch head: the authoritative sub-root for
/// a key range, plus its commit/conflict scoreboard. The write lock is
/// held only to swap the pointer — never while building a version or
/// doing I/O — so readers sampling the sub-root are never blocked behind
/// a tree rebuild.
struct ShardSlot<I> {
    head: RwLock<I>,
    commits: AtomicU64,
    conflicts: AtomicU64,
}

impl<I: SiriIndex> ShardSlot<I> {
    fn new(head: I) -> Self {
        ShardSlot {
            head: RwLock::with_class(head, &SHARD_HEAD_CLASS),
            commits: AtomicU64::new(0),
            conflicts: AtomicU64::new(0),
        }
    }
}

/// A branch head: the partition, its per-shard slots, and the current
/// logical digest. Every *publication* (commit swap, merge, reshard)
/// happens under the enclosing [`BranchSlot`]'s write lock, so any reader
/// holding the read lock sees a consistent multi-shard snapshot. `epoch`
/// bumps whenever the partition shape changes, invalidating routed-but-
/// unpublished builds and cached client views.
struct ShardTable<I> {
    router: ShardRouter,
    shards: Vec<Arc<ShardSlot<I>>>,
    epoch: u64,
    /// The branch's logical head digest: the sole sub-root when `N = 1`,
    /// the manifest digest otherwise. Updated in the same critical
    /// section as the sub-root swaps.
    digest: Hash,
}

impl<I: SiriIndex> ShardTable<I> {
    fn single(index: I, epoch: u64) -> Self {
        let digest = index.root();
        ShardTable {
            router: ShardRouter::single(),
            shards: vec![Arc::new(ShardSlot::new(index))],
            epoch,
            digest,
        }
    }

    fn shard_count(&self) -> usize {
        self.router.shard_count()
    }

    /// Current sub-roots in partition order (consistent while the caller
    /// holds the table lock — publications need the write lock).
    fn roots(&self) -> Vec<Hash> {
        self.shards.iter().map(|s| s.head.read().root()).collect()
    }
}

/// The client-side face of a branch: one decoded-node-cache view per
/// shard, re-rooted in place as sub-roots move, rebuilt when the
/// partition shape changes.
struct ClientView<I> {
    epoch: u64,
    router: ShardRouter,
    views: Vec<I>,
}

impl<I: Clone> Clone for ClientView<I> {
    fn clone(&self) -> Self {
        ClientView { epoch: self.epoch, router: self.router.clone(), views: self.views.clone() }
    }
}

/// The per-branch mutable state: the shard table and a client-side view.
///
/// This is the whole trick from the paper's immutability argument: all
/// versions are immutable and shared, so concurrency control reduces to
/// a handful of tiny pointers, each behind branch-local locks. Slots are
/// handed out as `Arc`s — a commit holds the slot, not the branch table,
/// so renames/deletes/creates of *other* branches never block it.
struct BranchSlot<I> {
    /// The authoritative server-side head (partition + sub-root slots).
    /// Readers take it shared; every publication takes it exclusive for
    /// the duration of the pointer swaps only.
    head: RwLock<ShardTable<I>>,
    /// The persistent client-side views (decoded-node caches above the
    /// page cache), created lazily on first read. Per-branch on purpose:
    /// readers of different branches must not serialize on a shared map
    /// lock.
    view: Mutex<Option<ClientView<I>>>,
    /// Set (under the head write lock) by `delete_branch`: all shard
    /// slots are retired atomically and any in-flight commit fails its
    /// publication with [`IndexError::BranchDeleted`] instead of
    /// publishing into a dismantled head.
    retired: AtomicBool,
}

impl<I: SiriIndex> BranchSlot<I> {
    fn new(table: ShardTable<I>) -> Self {
        BranchSlot {
            head: RwLock::with_class(table, &SLOT_HEAD_CLASS),
            view: Mutex::with_class(None, &CLIENT_VIEW_CLASS),
            retired: AtomicBool::new(false),
        }
    }
}

/// One touched shard's unpublished next version during a commit attempt.
struct ShardBuild<I> {
    shard: usize,
    parent: Hash,
    root: Hash,
    next: I,
}

/// A Forkbase-style versioned KV engine backed by index `F::Index`.
///
/// The server-side page store is pluggable: the default is an in-memory
/// [`MemStore`] (the paper's experiments), while
/// [`Forkbase::new_durable`] runs the same engine over a [`FileStore`],
/// fsyncing acknowledged commits per that store's
/// [`siri_store::FsyncPolicy`].
///
/// All operations take `&self`; share the engine across writer and reader
/// threads freely (see the module docs for the locking discipline).
pub struct Forkbase<F: IndexFactory> {
    factory: F,
    server: SharedStore,
    /// Set when the server store is file-backed: the handle the engine
    /// drives durability (fsync-per-commit policy) through.
    durable: Option<Arc<FileStore>>,
    client_store: Arc<CachingStore>,
    /// Branch name → slot. The map lock is only for name resolution and
    /// branch creation/deletion; all per-branch state hides behind the
    /// slot's own locks.
    branches: RwLock<HashMap<String, Arc<BranchSlot<F::Index>>>>,
    policy: ShardingPolicy,
    commits: AtomicU64,
    conflicts: AtomicU64,
    splits: AtomicU64,
    merges: AtomicU64,
}

impl<F: IndexFactory> Forkbase<F> {
    /// Create an engine with one empty branch `"master"`. Sharding comes
    /// from the environment ([`ShardingPolicy::from_env`]): unsharded
    /// unless `SIRI_SHARDS` says otherwise.
    pub fn new(factory: F, fetch_cost_nanos: u64) -> Self {
        Self::with_server(
            factory,
            Arc::new(MemStore::new()),
            None,
            ShardingPolicy::from_env(),
            fetch_cost_nanos,
        )
    }

    /// An engine over a caller-supplied server store (e.g. the store
    /// `siri::env_store()` selected), with one empty branch `"master"`.
    /// No durability handle is attached — if the store is file-backed the
    /// caller owns the fsync cadence.
    pub fn with_store(factory: F, server: SharedStore, fetch_cost_nanos: u64) -> Self {
        Self::with_server(factory, server, None, ShardingPolicy::from_env(), fetch_cost_nanos)
    }

    /// [`Forkbase::with_store`] with an explicit [`ShardingPolicy`]
    /// (ignoring `SIRI_SHARDS`) — for tests and benchmarks that pin the
    /// partition regardless of the environment.
    pub fn with_sharding(
        factory: F,
        server: SharedStore,
        policy: ShardingPolicy,
        fetch_cost_nanos: u64,
    ) -> Self {
        Self::with_server(factory, server, None, policy, fetch_cost_nanos)
    }

    /// An engine whose server store persists to `path` (a [`FileStore`]
    /// directory). Commits are flushed per the options' fsync policy.
    /// Branch heads themselves are in-memory — callers that need them to
    /// survive a restart persist the roots (e.g. a sidecar file, as the
    /// `siri` CLI does) and re-attach with [`Forkbase::open_branch`].
    pub fn new_durable(
        factory: F,
        path: impl AsRef<std::path::Path>,
        opts: FileStoreOptions,
        fetch_cost_nanos: u64,
    ) -> std::io::Result<Self> {
        Self::new_durable_with_sharding(
            factory,
            path,
            opts,
            ShardingPolicy::from_env(),
            fetch_cost_nanos,
        )
    }

    /// [`Forkbase::new_durable`] with an explicit [`ShardingPolicy`].
    pub fn new_durable_with_sharding(
        factory: F,
        path: impl AsRef<std::path::Path>,
        opts: FileStoreOptions,
        policy: ShardingPolicy,
        fetch_cost_nanos: u64,
    ) -> std::io::Result<Self> {
        let (fs, _) = FileStore::open_with(path, opts)?;
        let fs = Arc::new(fs);
        Ok(Self::with_server(factory, fs.clone(), Some(fs), policy, fetch_cost_nanos))
    }

    fn with_server(
        factory: F,
        server: Arc<dyn NodeStore>,
        durable: Option<Arc<FileStore>>,
        policy: ShardingPolicy,
        fetch_cost_nanos: u64,
    ) -> Self {
        let server: SharedStore = server;
        let client_store = Arc::new(CachingStore::new(server.clone(), fetch_cost_nanos));
        let master = Self::fresh_table(&factory, &server, &policy.initial_router());
        let mut branches = HashMap::new();
        branches.insert("master".to_string(), Arc::new(BranchSlot::new(master)));
        Forkbase {
            factory,
            server,
            durable,
            client_store,
            branches: RwLock::with_class(branches, &BRANCH_MAP_CLASS),
            policy,
            commits: AtomicU64::new(0),
            conflicts: AtomicU64::new(0),
            splits: AtomicU64::new(0),
            merges: AtomicU64::new(0),
        }
    }

    /// A table of empty sub-roots over `router`'s partition.
    fn fresh_table(
        factory: &F,
        server: &SharedStore,
        router: &ShardRouter,
    ) -> ShardTable<F::Index> {
        let shards: Vec<Arc<ShardSlot<F::Index>>> = (0..router.shard_count())
            .map(|_| Arc::new(ShardSlot::new(factory.empty(server.clone()))))
            .collect();
        let digest = if shards.len() == 1 {
            shards[0].head.read().root()
        } else {
            let roots = shards.iter().map(|s| s.head.read().root()).collect();
            ShardManifest::new(router.boundaries().to_vec(), roots).digest()
        };
        ShardTable { router: router.clone(), shards, epoch: 0, digest }
    }

    /// Resolve a branch name to its slot. Holding the returned `Arc` keeps
    /// the slot alive even across a concurrent `delete_branch`.
    fn slot(&self, branch: &str) -> Result<Arc<BranchSlot<F::Index>>> {
        self.branches.read().get(branch).cloned().ok_or(IndexError::Unsupported("unknown branch"))
    }

    /// Attach a branch head at an existing root (e.g. one recovered from a
    /// durable store's sidecar after a restart). The root may be either a
    /// plain index root or a [`ShardManifest`] digest — manifests are
    /// detected in the store and re-open as a sharded head with the
    /// persisted partition. Replaces the branch if it exists.
    pub fn open_branch(&self, branch: &str, root: Hash) {
        let table = self.table_at(root);
        self.branches.write().insert(branch.to_string(), Arc::new(BranchSlot::new(table)));
    }

    fn table_at(&self, root: Hash) -> ShardTable<F::Index> {
        if let Ok(Some(page)) = self.server.try_get(&root) {
            if ShardManifest::is_manifest(&page) {
                if let Ok(m) = ShardManifest::decode(&page) {
                    let shards = m
                        .roots
                        .iter()
                        .map(|r| {
                            Arc::new(ShardSlot::new(self.factory.open(self.server.clone(), *r)))
                        })
                        .collect();
                    return ShardTable { router: m.router(), shards, epoch: 0, digest: root };
                }
            }
        }
        ShardTable::single(self.factory.open(self.server.clone(), root), 0)
    }

    /// Flush the durable store per its fsync policy; pages written by an
    /// un-flushed version are orphans for the next sweep.
    fn flush_durable(&self) -> Result<()> {
        if let Some(fs) = &self.durable {
            fs.note_commit().map_err(|e| IndexError::Store(StoreError::io("fsync", e)))?;
        }
        Ok(())
    }

    /// Persist the post-swap manifest (multi-shard heads only) and return
    /// the new logical digest. Called under the table write lock *before*
    /// any sub-root is swapped, so a failed store put aborts the commit
    /// with every head untouched.
    fn publish_manifest(
        &self,
        table: &ShardTable<F::Index>,
        builds: &[ShardBuild<F::Index>],
    ) -> Result<Hash> {
        let mut roots = table.roots();
        for b in builds {
            roots[b.shard] = b.root;
        }
        if roots.len() == 1 {
            return Ok(roots[0]);
        }
        let manifest = ShardManifest::new(table.router.boundaries().to_vec(), roots);
        Ok(self.server.try_put(Bytes::from(manifest.encode()))?)
    }

    /// Server-side atomic write batch (puts *and* deletes) to a branch;
    /// returns the new root digest. The primary write path — `put` and
    /// `delete` are sugar over it; [`Forkbase::commit_with_info`] exposes
    /// the full commit receipt.
    pub fn commit(&self, branch: &str, batch: WriteBatch) -> Result<Hash> {
        self.commit_with_info(branch, batch).map(|info| info.root)
    }

    /// [`Forkbase::commit`], returning the full [`CommitInfo`] receipt —
    /// the observed parent head, the published root, the per-shard
    /// sub-root edges, and how many head races were lost on the way.
    ///
    /// The sharded optimistic protocol, per attempt:
    ///
    /// 1. snapshot the partition (router, shard slots, epoch) under a
    ///    brief read lock;
    /// 2. route the normalized batch by key range and build every touched
    ///    shard's next version against its observed sub-root — fully
    ///    unlocked;
    /// 3. cheaply re-check the touched parents (an attempt that already
    ///    lost skips a doomed fsync), then flush durability;
    /// 4. take the table write lock: verify the epoch and every touched
    ///    parent, store the manifest page for the post-state, swap the
    ///    touched sub-roots, update the branch digest. The lock is held
    ///    for pointer swaps and one small page put — never tree builds or
    ///    fsync.
    ///
    /// Writers on disjoint shards interleave without ever mismatching, so
    /// they pay zero rebuilds; a genuine same-shard race re-applies only
    /// that slice. The fsync strictly precedes publication, so any
    /// sub-root a reader can observe is durable; the manifest page itself
    /// is flushed before the commit returns, so a returned digest is
    /// always re-openable.
    pub fn commit_with_info(&self, branch: &str, batch: WriteBatch) -> Result<CommitInfo> {
        let slot = self.slot(branch)?;
        self.commit_on_slot(&slot, batch)
    }

    fn commit_on_slot(
        &self,
        slot: &Arc<BranchSlot<F::Index>>,
        batch: WriteBatch,
    ) -> Result<CommitInfo> {
        let ops = batch.normalize();
        let mut attempts = 0u32;
        loop {
            // 1. Snapshot the partition without blocking other writers.
            let (router, shards, epoch) = {
                let t = slot.head.read();
                (t.router.clone(), t.shards.clone(), t.epoch)
            };
            // 2. Build every touched shard's next version, unlocked.
            let mut builds: Vec<ShardBuild<F::Index>> = Vec::new();
            for (si, run) in router.route_ops(ops.clone()) {
                let base = shards[si].head.read().clone();
                let parent = base.root();
                let mut work = base;
                let root = work.commit(WriteBatch::from_ops(run))?;
                builds.push(ShardBuild { shard: si, parent, root, next: work });
            }
            // 3. Cheap re-check before paying the fsync.
            let clean = {
                let t = slot.head.read();
                t.epoch == epoch
                    && builds.iter().all(|b| t.shards[b.shard].head.read().root() == b.parent)
            };
            if clean {
                self.flush_durable()?;
                let mut t = slot.head.write();
                let still = t.epoch == epoch
                    && builds.iter().all(|b| t.shards[b.shard].head.read().root() == b.parent);
                if still {
                    if slot.retired.load(Ordering::Acquire) {
                        return Err(IndexError::BranchDeleted);
                    }
                    // 4. Publish: manifest first (fallible, heads still
                    // untouched on error), then the infallible swaps.
                    let parent_digest = t.digest;
                    let new_digest = self.publish_manifest(&t, &builds)?;
                    let multi = t.shard_count() > 1;
                    let shard_infos: Vec<ShardCommit> = builds
                        .iter()
                        .map(|b| ShardCommit { shard: b.shard, parent: b.parent, root: b.root })
                        .collect();
                    for b in builds {
                        let shard = &t.shards[b.shard];
                        *shard.head.write() = b.next;
                        shard.commits.fetch_add(1, Ordering::Relaxed);
                    }
                    t.digest = new_digest;
                    self.commits.fetch_add(1, Ordering::Relaxed);
                    drop(t);
                    if multi {
                        // The manifest page itself must be durable before
                        // the digest is acknowledged to the caller.
                        self.flush_durable()?;
                    }
                    if self.policy.adaptive {
                        self.maybe_reshard(slot);
                    }
                    return Ok(CommitInfo {
                        parent: parent_digest,
                        root: new_digest,
                        retries: attempts,
                        shards: shard_infos,
                    });
                }
            }
            // Lost the race: someone else's publication moved a touched
            // sub-root (or resharded the partition) while we were
            // building. Rebuild on top of theirs; the losing attempt's
            // pages are unreferenced orphans for the next sweep. Score
            // the genuinely contended shards first — this is the signal
            // an adaptive policy splits on. (If the partition itself was
            // reshaped the old shard indexes are meaningless; skip.)
            {
                let t = slot.head.read();
                if t.epoch == epoch {
                    for b in &builds {
                        if t.shards[b.shard].head.read().root() != b.parent {
                            t.shards[b.shard].conflicts.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            }
            self.conflicts.fetch_add(1, Ordering::Relaxed);
            attempts += 1;
            if attempts >= max_commit_attempts() {
                return Err(IndexError::CommitContention { attempts });
            }
        }
    }

    /// The optimistic publish-retry loop for whole-branch operations
    /// (merges): `build` the next version against the *collapsed* logical
    /// head, flush durability, then install it as a fresh single-shard
    /// table if the branch digest is unchanged. Merging a sharded branch
    /// therefore resets its partition — under an adaptive policy the
    /// partition re-grows where contention returns.
    fn publish_whole<T>(
        &self,
        slot: &Arc<BranchSlot<F::Index>>,
        mut build: impl FnMut(&F::Index) -> Result<(F::Index, T)>,
    ) -> Result<(T, u32)> {
        let mut attempts = 0u32;
        loop {
            let (base, epoch, digest) = self.logical_head(slot)?;
            let (next, payload) = build(&base)?;
            let clean = {
                let t = slot.head.read();
                t.epoch == epoch && t.digest == digest
            };
            if clean {
                self.flush_durable()?;
                let mut t = slot.head.write();
                if t.epoch == epoch && t.digest == digest {
                    if slot.retired.load(Ordering::Acquire) {
                        return Err(IndexError::BranchDeleted);
                    }
                    let next_epoch = t.epoch + 1;
                    *t = ShardTable::single(next, next_epoch);
                    self.commits.fetch_add(1, Ordering::Relaxed);
                    return Ok((payload, attempts));
                }
            }
            self.conflicts.fetch_add(1, Ordering::Relaxed);
            attempts += 1;
            if attempts >= max_commit_attempts() {
                return Err(IndexError::CommitContention { attempts });
            }
        }
    }

    /// The branch's logical head as one index handle, plus the epoch and
    /// digest it corresponds to. Single-shard heads clone out for free;
    /// multi-shard heads collapse (a rebuild over the merged cursor) —
    /// whole-branch operations are the slow path by design.
    fn logical_head(&self, slot: &BranchSlot<F::Index>) -> Result<(F::Index, u64, Hash)> {
        let (heads, epoch, digest) = {
            let t = slot.head.read();
            if t.shard_count() == 1 {
                return Ok((t.shards[0].head.read().clone(), t.epoch, t.digest));
            }
            let heads: Vec<F::Index> = t.shards.iter().map(|s| s.head.read().clone()).collect();
            (heads, t.epoch, t.digest)
        };
        Ok((self.collapse(&heads)?, epoch, digest))
    }

    /// Rebuild the logical contents of per-shard sub-trees into one fresh
    /// index over the server store. For the structurally invariant
    /// structures the result's digest equals the unsharded build of the
    /// same surviving KV set.
    fn collapse(&self, heads: &[F::Index]) -> Result<F::Index> {
        let mut entries: Vec<Entry> = Vec::new();
        for head in heads {
            for entry in head.range(Bound::Unbounded, Bound::Unbounded) {
                entries.push(entry?);
            }
        }
        let mut index = self.factory.empty(self.server.clone());
        if !entries.is_empty() {
            index.batch_insert(entries)?;
        }
        Ok(index)
    }

    /// Server-side batched insert to a branch; returns the new root digest.
    pub fn put(&self, branch: &str, entries: Vec<Entry>) -> Result<Hash> {
        self.commit(branch, WriteBatch::from_entries(entries))
    }

    /// Delete keys from a branch; returns the new root digest.
    pub fn delete(
        &self,
        branch: &str,
        keys: impl IntoIterator<Item = impl Into<Bytes>>,
    ) -> Result<Hash> {
        let mut batch = WriteBatch::new();
        for key in keys {
            batch.delete(key);
        }
        self.commit(branch, batch)
    }

    /// Bulk-load `entries` into `branch` (replacing its contents), building
    /// the per-shard sub-trees on up to `threads` worker threads over an
    /// equal-count partition of the sorted data. The manifest is committed
    /// over the finished sub-roots and flushed before the digest is
    /// returned. Like [`Forkbase::open_branch`], the branch is (re)created
    /// at the loaded state.
    pub fn bulk_load(&self, branch: &str, entries: Vec<Entry>, threads: usize) -> Result<Hash> {
        // Sort + last-write-wins dedup, same as batch normalization.
        let mut entries = entries;
        entries.sort_by(|a, b| a.key.cmp(&b.key));
        let mut data: Vec<Entry> = Vec::with_capacity(entries.len());
        for e in entries {
            match data.last_mut() {
                Some(last) if last.key == e.key => *last = e,
                _ => data.push(e),
            }
        }
        let want = threads.clamp(1, self.policy.max_shards.max(1)).min(data.len().max(1));
        // Equal-count cut points; duplicate cuts collapse.
        let mut boundaries: Vec<Bytes> = Vec::new();
        for i in 1..want {
            let b = data[i * data.len() / want].key.clone();
            if boundaries.last().is_none_or(|p| *p < b) {
                boundaries.push(b);
            }
        }
        let router = ShardRouter::new(boundaries);
        let mut slices: Vec<Vec<Entry>> = (0..router.shard_count()).map(|_| Vec::new()).collect();
        for e in data {
            slices[router.shard_of(&e.key)].push(e);
        }
        // Parallel sub-tree builds: one worker per shard slice, all over
        // the shared (thread-safe) server store.
        let built: Vec<Result<F::Index>> = std::thread::scope(|scope| {
            let handles: Vec<_> = slices
                .into_iter()
                .map(|slice| {
                    scope.spawn(move || -> Result<F::Index> {
                        let mut index = self.factory.empty(self.server.clone());
                        if !slice.is_empty() {
                            index.batch_insert(slice)?;
                        }
                        Ok(index)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| {
                    h.join().unwrap_or_else(|_| {
                        Err(IndexError::CorruptStructure("bulk-load worker panicked"))
                    })
                })
                .collect()
        });
        let mut shards: Vec<Arc<ShardSlot<F::Index>>> = Vec::with_capacity(built.len());
        for b in built {
            shards.push(Arc::new(ShardSlot::new(b?)));
        }
        let digest = if shards.len() == 1 {
            shards[0].head.read().root()
        } else {
            let roots = shards.iter().map(|s| s.head.read().root()).collect();
            let manifest = ShardManifest::new(router.boundaries().to_vec(), roots);
            self.server.try_put(Bytes::from(manifest.encode()))?
        };
        // Manifest + sub-trees durable before the load is acknowledged.
        self.flush_durable()?;
        let table = ShardTable { router, shards, epoch: 0, digest };
        self.branches.write().insert(branch.to_string(), Arc::new(BranchSlot::new(table)));
        self.commits.fetch_add(1, Ordering::Relaxed);
        Ok(digest)
    }

    /// The persistent client-side views of a branch, read through the page
    /// cache *and* each shard view's decoded-node cache. When sub-roots
    /// have moved the views are re-rooted in place, keeping both caches
    /// warm (adjacent versions share most pages); a partition-shape change
    /// rebuilds them. The view lock is per-branch and held only to clone
    /// the handles out — never during traversal — so concurrent readers
    /// neither serialize across branches nor block each other for long
    /// within one.
    fn client_views(&self, branch: &str) -> Result<ClientView<F::Index>> {
        let slot = self.slot(branch)?;
        let (router, epoch, roots) = {
            let t = slot.head.read();
            (t.router.clone(), t.epoch, t.roots())
        };
        let mut view = slot.view.lock();
        match view.as_mut() {
            Some(v) if v.epoch == epoch && v.views.len() == roots.len() => {
                for (i, root) in roots.iter().enumerate() {
                    if v.views[i].root() != *root {
                        v.views[i] = v.views[i].at_root(*root);
                    }
                }
                Ok(v.clone())
            }
            _ => {
                let client_store: SharedStore = self.client_store.clone();
                let fresh = ClientView {
                    epoch,
                    router,
                    views: roots
                        .iter()
                        .map(|r| self.factory.open(client_store.clone(), *r))
                        .collect(),
                };
                *view = Some(fresh.clone());
                Ok(fresh)
            }
        }
    }

    /// Client-side point read through the persistent branch view's two
    /// cache layers (decoded nodes above, pages beneath). Routed to the
    /// one shard owning the key.
    pub fn get(&self, branch: &str, key: &[u8]) -> Result<Option<Bytes>> {
        let v = self.client_views(branch)?;
        v.views[v.router.shard_of(key)].get(key)
    }

    /// Client-side streaming range read: per-shard lazy cursors chained in
    /// partition order, so the caller sees one logical tree. Each cursor
    /// snapshots its sub-root at creation — concurrent writes to the
    /// branch do not disturb an open cursor (immutability in action).
    pub fn range(
        &self,
        branch: &str,
        start: Bound<&[u8]>,
        end: Bound<&[u8]>,
    ) -> Result<EntryCursor> {
        let v = self.client_views(branch)?;
        let (lo, hi) = v.router.covering(start, end);
        Ok(chain_cursors((lo..=hi).map(|i| v.views[i].range(start, end)).collect()))
    }

    /// Client-side prefix cursor (the prefix window of [`Forkbase::range`],
    /// restricted to the shards the prefix can touch).
    pub fn scan_prefix(&self, branch: &str, prefix: &[u8]) -> Result<EntryCursor> {
        let v = self.client_views(branch)?;
        let succ = prefix_successor(prefix);
        let end = match &succ {
            Some(s) => Bound::Excluded(s.as_slice()),
            None => Bound::Unbounded,
        };
        let (lo, hi) = v.router.covering(Bound::Included(prefix), end);
        Ok(chain_cursors((lo..=hi).map(|i| v.views[i].scan_prefix(prefix)).collect()))
    }

    /// Read bypassing the cache (server-side read, for comparisons).
    pub fn get_uncached(&self, branch: &str, key: &[u8]) -> Result<Option<Bytes>> {
        let slot = self.slot(branch)?;
        let head = {
            let t = slot.head.read();
            let snap = t.shards[t.router.shard_of(key)].head.read().clone();
            snap
        };
        head.get(key)
    }

    /// Fork `from` into a new branch `to` — O(#shards), pages fully
    /// shared. The fork inherits the source partition (with fresh
    /// per-shard counters). Replaces `to` if it exists.
    pub fn fork(&self, from: &str, to: &str) -> Result<()> {
        let src = self.slot(from)?;
        let table = {
            let t = src.head.read();
            let shards =
                t.shards.iter().map(|s| Arc::new(ShardSlot::new(s.head.read().clone()))).collect();
            ShardTable { router: t.router.clone(), shards, epoch: 0, digest: t.digest }
        };
        self.branches.write().insert(to.to_string(), Arc::new(BranchSlot::new(table)));
        Ok(())
    }

    /// Drop a branch head (and its client views). Pages stay in the
    /// store — they are content-addressed and may be shared with other
    /// branches; reclaiming unreachable ones is the offline GC's job.
    /// Other branches' page sets are untouched by construction.
    ///
    /// All of the branch's shard slots are retired **atomically**: the
    /// retire flag is set under the table's write lock, which excludes any
    /// in-flight publication. A commit racing the deletion either fully
    /// published before the retirement or fails cleanly with
    /// [`IndexError::BranchDeleted`] — never a partial multi-shard
    /// publish.
    pub fn delete_branch(&self, branch: &str) -> Result<()> {
        let slot = self
            .branches
            .write()
            .remove(branch)
            .ok_or(IndexError::Unsupported("unknown branch"))?;
        // The write lock drains any publication in its swap phase; the
        // flag then turns every later publication attempt away.
        let _table = slot.head.write();
        slot.retired.store(true, Ordering::Release);
        Ok(())
    }

    /// All branch names, sorted.
    pub fn branches(&self) -> Vec<String> {
        let mut names: Vec<String> = self.branches.read().keys().cloned().collect();
        names.sort_unstable();
        names
    }

    /// Merge branch `other` into `into` (paper §4.1.4 semantics). The
    /// merge is computed against a snapshot of both *logical* heads
    /// (sharded branches collapse first) and published with the same
    /// compare-and-swap as commits: a concurrent commit to `into` forces a
    /// re-merge rather than being silently overwritten. The published
    /// result is a single-shard head.
    pub fn merge_branches(
        &self,
        into: &str,
        other: &str,
        strategy: MergeStrategy,
    ) -> Result<MergeOutcome<F::Index>> {
        let into_slot = self.slot(into)?;
        let right = {
            let right_slot = self.slot(other)?;
            self.logical_head(&right_slot)?.0
        };
        let (outcome, _) = self.publish_whole(&into_slot, |left| {
            let outcome = merge(left, &right, strategy)?;
            Ok((outcome.merged.clone(), outcome))
        })?;
        Ok(outcome)
    }

    /// Three-way merge of `other` into `into` from a common base version —
    /// usually the root `other` was forked at. Unlike [`Forkbase::merge_branches`]
    /// (a two-way union), this sees deletions made on either branch since
    /// the base and propagates them (edit-vs-delete conflicts resolve per
    /// `strategy`).
    pub fn merge_branches_with_base(
        &self,
        into: &str,
        other: &str,
        base_root: Hash,
        strategy: MergeStrategy,
    ) -> Result<MergeOutcome<F::Index>> {
        let into_slot = self.slot(into)?;
        let right = {
            let right_slot = self.slot(other)?;
            self.logical_head(&right_slot)?.0
        };
        let (outcome, _) = self.publish_whole(&into_slot, |left| {
            // The base is just another version in the shared store;
            // re-rooting the left handle reads it through the same caches.
            let base = left.at_root(base_root);
            let outcome = merge_with_base(&base, left, &right, strategy)?;
            Ok((outcome.merged.clone(), outcome))
        })?;
        Ok(outcome)
    }

    /// The branch's current head handle (server-side view) — an owned
    /// snapshot: immutable versions make a clone of the handle a
    /// point-in-time view of the branch. A multi-shard head collapses into
    /// one fresh logical index (for the structurally invariant structures
    /// its digest equals the unsharded build of the same contents).
    pub fn head(&self, branch: &str) -> Option<F::Index> {
        let slot = self.branches.read().get(branch).cloned()?;
        let heads = {
            let t = slot.head.read();
            if t.shard_count() == 1 {
                return Some(t.shards[0].head.read().clone());
            }
            t.shards.iter().map(|s| s.head.read().clone()).collect::<Vec<F::Index>>()
        };
        self.collapse(&heads).ok()
    }

    /// The branch's published head digest: the sole sub-root when
    /// unsharded, the [`ShardManifest`] digest otherwise. This is the hash
    /// [`Forkbase::commit`] returns and [`Forkbase::open_branch`]
    /// re-attaches from.
    pub fn branch_digest(&self, branch: &str) -> Result<Hash> {
        Ok(self.slot(branch)?.head.read().digest)
    }

    /// The branch's current shard count.
    pub fn shard_count(&self, branch: &str) -> Result<usize> {
        Ok(self.slot(branch)?.head.read().shard_count())
    }

    /// Per-shard commit/conflict counters, in partition order. Counters
    /// reset when the partition is reshaped (fresh shards, fresh
    /// scoreboard).
    pub fn shard_stats(&self, branch: &str) -> Result<Vec<ShardStats>> {
        let slot = self.slot(branch)?;
        let t = slot.head.read();
        Ok(t.shards
            .iter()
            .map(|s| ShardStats {
                commits: s.commits.load(Ordering::Relaxed),
                conflicts: s.conflicts.load(Ordering::Relaxed),
            })
            .collect())
    }

    /// Adaptive policy hook, run after successful publications: split the
    /// hottest over-threshold shard, or merge the coldest adjacent pair
    /// once the branch has seen enough traffic to judge. Best-effort —
    /// a lost race simply leaves the partition for the next publish.
    fn maybe_reshard(&self, slot: &Arc<BranchSlot<F::Index>>) {
        let (split_at, merge_at) = {
            let t = slot.head.read();
            let n = t.shard_count();
            let mut split: Option<(usize, u64)> = None;
            if n < self.policy.max_shards {
                for (i, s) in t.shards.iter().enumerate() {
                    let c = s.conflicts.load(Ordering::Relaxed);
                    if c >= self.policy.split_threshold && split.is_none_or(|(_, best)| c > best) {
                        split = Some((i, c));
                    }
                }
            }
            let mut merge: Option<usize> = None;
            if split.is_none() && n > 1 {
                let total: u64 = t.shards.iter().map(|s| s.commits.load(Ordering::Relaxed)).sum();
                if total >= self.policy.observe_window {
                    for i in 0..n - 1 {
                        let cold = |s: &ShardSlot<F::Index>| {
                            s.commits.load(Ordering::Relaxed) <= self.policy.merge_threshold
                                && s.conflicts.load(Ordering::Relaxed) == 0
                        };
                        if cold(&t.shards[i]) && cold(&t.shards[i + 1]) {
                            merge = Some(i);
                            break;
                        }
                    }
                }
            }
            (split.map(|(i, _)| i), merge)
        };
        if let Some(i) = split_at {
            let _ = self.split_shard(slot, i);
        } else if let Some(i) = merge_at {
            let _ = self.merge_shards(slot, i);
        }
    }

    /// Split `branch`'s shard `shard` at its median key (deterministic
    /// hook for the adaptive policy; also usable directly in tests and
    /// tools). Returns `Ok(false)` when the split is not applicable (too
    /// few keys, shard cap, lost race).
    pub fn split_branch_shard(&self, branch: &str, shard: usize) -> Result<bool> {
        let slot = self.slot(branch)?;
        self.split_shard(&slot, shard)
    }

    /// Merge `branch`'s shards `left` and `left + 1` back into one
    /// (deterministic hook for the adaptive policy). Returns `Ok(false)`
    /// when not applicable.
    pub fn merge_branch_shards(&self, branch: &str, left: usize) -> Result<bool> {
        let slot = self.slot(branch)?;
        self.merge_shards(&slot, left)
    }

    fn split_shard(&self, slot: &Arc<BranchSlot<F::Index>>, shard: usize) -> Result<bool> {
        let (base, epoch) = {
            let t = slot.head.read();
            if shard >= t.shard_count() || t.shard_count() >= self.policy.max_shards {
                return Ok(false);
            }
            let snap = (t.shards[shard].head.read().clone(), t.epoch);
            snap
        };
        let parent = base.root();
        let mut entries: Vec<Entry> = Vec::new();
        for entry in base.range(Bound::Unbounded, Bound::Unbounded) {
            entries.push(entry?);
        }
        if entries.len() < 2 {
            return Ok(false);
        }
        let mid = entries.len() / 2;
        let median = entries[mid].key.clone();
        // Build both halves outside any lock.
        let mut left = self.factory.empty(self.server.clone());
        left.batch_insert(entries[..mid].to_vec())?;
        let mut right = self.factory.empty(self.server.clone());
        right.batch_insert(entries[mid..].to_vec())?;
        self.flush_durable()?;
        let mut t = slot.head.write();
        if t.epoch != epoch
            || t.shards[shard].head.read().root() != parent
            || slot.retired.load(Ordering::Acquire)
        {
            return Ok(false);
        }
        let mut boundaries = t.router.boundaries().to_vec();
        // The median must strictly refine the partition.
        if shard > 0 && median <= boundaries[shard - 1] {
            return Ok(false);
        }
        if boundaries.get(shard).is_some_and(|b| median >= *b) {
            return Ok(false);
        }
        boundaries.insert(shard, median);
        let router = ShardRouter::new(boundaries);
        let mut shards = t.shards.clone();
        shards[shard] = Arc::new(ShardSlot::new(left));
        shards.insert(shard + 1, Arc::new(ShardSlot::new(right)));
        let roots = shards.iter().map(|s| s.head.read().root()).collect();
        let manifest = ShardManifest::new(router.boundaries().to_vec(), roots);
        let digest = self.server.try_put(Bytes::from(manifest.encode()))?;
        let next_epoch = t.epoch + 1;
        *t = ShardTable { router, shards, epoch: next_epoch, digest };
        self.splits.fetch_add(1, Ordering::Relaxed);
        drop(t);
        self.flush_durable()?;
        Ok(true)
    }

    fn merge_shards(&self, slot: &Arc<BranchSlot<F::Index>>, left: usize) -> Result<bool> {
        let (lhs, rhs, epoch) = {
            let t = slot.head.read();
            if left + 1 >= t.shard_count() {
                return Ok(false);
            }
            let snap = (
                t.shards[left].head.read().clone(),
                t.shards[left + 1].head.read().clone(),
                t.epoch,
            );
            snap
        };
        let (lroot, rroot) = (lhs.root(), rhs.root());
        let merged = self.collapse(&[lhs, rhs])?;
        self.flush_durable()?;
        let mut t = slot.head.write();
        if t.epoch != epoch
            || t.shards[left].head.read().root() != lroot
            || t.shards[left + 1].head.read().root() != rroot
            || slot.retired.load(Ordering::Acquire)
        {
            return Ok(false);
        }
        let mut boundaries = t.router.boundaries().to_vec();
        boundaries.remove(left);
        let router = ShardRouter::new(boundaries);
        let mut shards = t.shards.clone();
        shards[left] = Arc::new(ShardSlot::new(merged));
        shards.remove(left + 1);
        let digest = if shards.len() == 1 {
            shards[0].head.read().root()
        } else {
            let roots = shards.iter().map(|s| s.head.read().root()).collect();
            let manifest = ShardManifest::new(router.boundaries().to_vec(), roots);
            self.server.try_put(Bytes::from(manifest.encode()))?
        };
        let multi = shards.len() > 1;
        let next_epoch = t.epoch + 1;
        *t = ShardTable { router, shards, epoch: next_epoch, digest };
        self.merges.fetch_add(1, Ordering::Relaxed);
        drop(t);
        if multi {
            self.flush_durable()?;
        }
        Ok(true)
    }

    /// Client cache statistics: (hits, remote fetches, synthetic
    /// nanoseconds charged).
    pub fn client_stats(&self) -> (u64, u64, u64) {
        (
            self.client_store.local_hits(),
            self.client_store.remote_fetches(),
            self.client_store.synthetic_nanos(),
        )
    }

    pub fn client_hit_ratio(&self) -> f64 {
        self.client_store.hit_ratio()
    }

    /// Engine-level commit/conflict/reshard counters (the optimistic-
    /// concurrency scoreboard).
    pub fn engine_stats(&self) -> EngineStats {
        EngineStats {
            commits: self.commits.load(Ordering::Relaxed),
            conflicts: self.conflicts.load(Ordering::Relaxed),
            splits: self.splits.load(Ordering::Relaxed),
            merges: self.merges.load(Ordering::Relaxed),
        }
    }

    /// The engine's sharding policy.
    pub fn sharding_policy(&self) -> ShardingPolicy {
        self.policy
    }

    /// Reset the client cache (a "fresh client"): drops the cached pages
    /// *and* the per-branch client views with their decoded-node caches.
    pub fn reset_client(&self) {
        self.client_store.clear();
        for slot in self.branches.read().values() {
            *slot.view.lock() = None;
        }
    }

    /// Consistent proof snapshot of a branch: the published digest, the
    /// partition router and an owned handle to every shard head — all read
    /// under one table read lock (publications swap sub-roots and the
    /// digest while holding it exclusively, so the three can never be
    /// observed torn).
    fn proof_snapshot(&self, branch: &str) -> Result<(Hash, ShardRouter, Vec<F::Index>)> {
        let slot = self.slot(branch)?;
        let t = slot.head.read();
        let heads = t.shards.iter().map(|s| s.head.read().clone()).collect();
        Ok((t.digest, t.router.clone(), heads))
    }

    /// Re-encode the shard manifest for a multi-shard snapshot — the first
    /// page of every sharded proof. Rebuilt from the snapshot rather than
    /// re-fetched so a proof never depends on the manifest page surviving
    /// GC; the debug assertion pins it to the published digest.
    fn manifest_page(&self, digest: Hash, router: &ShardRouter, heads: &[F::Index]) -> Bytes {
        let roots = heads.iter().map(|h| h.root()).collect();
        let manifest = ShardManifest::new(router.boundaries().to_vec(), roots);
        debug_assert_eq!(
            manifest.digest(),
            digest,
            "re-encoded manifest must hash to the published branch digest"
        );
        Bytes::from(manifest.encode())
    }

    /// Server storage counters.
    pub fn server_stats(&self) -> StoreStats {
        self.server.stats()
    }

    /// The shared server store every branch head lives in — the page
    /// source a network server hands to its sync/fetch handlers, and the
    /// sink an anti-entropy pull fills on the receiving site.
    pub fn server_store(&self) -> SharedStore {
        self.server.clone()
    }
}

/// The in-process side of the [`Session`] abstraction: the engine *is* a
/// session. `siri-client`'s `RemoteSession` implements the same trait over
/// the wire, so `Box<dyn Session>` callers (the CLI, the behavioral test
/// suites under `SIRI_REMOTE=1`) cannot tell the two apart.
impl<F: IndexFactory> Session for Forkbase<F> {
    fn commit(&self, branch: &str, batch: WriteBatch) -> Result<CommitInfo> {
        self.commit_with_info(branch, batch)
    }

    fn get(&self, branch: &str, key: &[u8]) -> Result<Option<Bytes>> {
        Forkbase::get(self, branch, key)
    }

    fn range(&self, branch: &str, start: Bound<&[u8]>, end: Bound<&[u8]>) -> Result<EntryCursor> {
        Forkbase::range(self, branch, start, end)
    }

    fn scan_prefix(&self, branch: &str, prefix: &[u8]) -> Result<EntryCursor> {
        Forkbase::scan_prefix(self, branch, prefix)
    }

    fn fork(&self, from: &str, to: &str) -> Result<()> {
        Forkbase::fork(self, from, to)
    }

    fn delete_branch(&self, branch: &str) -> Result<()> {
        Forkbase::delete_branch(self, branch)
    }

    fn branches(&self) -> Result<Vec<String>> {
        Ok(Forkbase::branches(self))
    }

    fn branch_digest(&self, branch: &str) -> Result<Hash> {
        Forkbase::branch_digest(self, branch)
    }

    fn prove(&self, branch: &str, key: &[u8]) -> Result<(Hash, Proof)> {
        // Anchor at the *published* branch digest — the hash `commit`
        // returned and `branch_digest` reports, i.e. the only one a light
        // client holds. (An earlier revision proved against the collapsed
        // logical head instead; on a sharded branch that root differs from
        // the published manifest digest — and for the MVMB+ baseline it is
        // not even derivable from the shard sub-roots — so those proofs
        // never verified against anything a client could trust.)
        let (digest, router, heads) = self.proof_snapshot(branch)?;
        if heads.len() == 1 {
            return Ok((digest, heads[0].prove(key)?));
        }
        let mut pages = vec![self.manifest_page(digest, &router, &heads)];
        pages.extend(heads[router.shard_of(key)].prove(key)?.into_pages());
        Ok((digest, Proof::new(pages)))
    }

    fn prove_range(
        &self,
        branch: &str,
        start: Bound<&[u8]>,
        end: Bound<&[u8]>,
    ) -> Result<(Hash, Proof)> {
        let (digest, router, heads) = self.proof_snapshot(branch)?;
        if heads.len() == 1 {
            return Ok((digest, heads[0].prove_range(start, end)?));
        }
        let mut pages = vec![self.manifest_page(digest, &router, &heads)];
        let mut seen = HashSet::new();
        let (lo, hi) = router.covering(start, end);
        for head in &heads[lo..=hi] {
            if head.root().is_zero() {
                continue; // the verifier skips zero sub-roots identically
            }
            for page in head.prove_range(start, end)?.into_pages() {
                if seen.insert(sha256(&page)) {
                    pages.push(page);
                }
            }
        }
        Ok((digest, Proof::new(pages)))
    }

    fn prove_batch(&self, branch: &str, keys: &[Bytes]) -> Result<(Hash, Proof)> {
        let (digest, router, heads) = self.proof_snapshot(branch)?;
        if keys.is_empty() {
            // Convention shared with the verifier: no keys, no pages.
            return Ok((digest, Proof::new(Vec::new())));
        }
        if heads.len() == 1 {
            return Ok((digest, heads[0].prove_batch(keys)?));
        }
        let mut pages = vec![self.manifest_page(digest, &router, &heads)];
        let mut seen = HashSet::new();
        for key in keys {
            let head = &heads[router.shard_of(key)];
            if head.root().is_zero() {
                continue; // zero sub-root proves absence with no pages
            }
            for page in head.prove(key)?.into_pages() {
                if seen.insert(sha256(&page)) {
                    pages.push(page);
                }
            }
        }
        Ok((digest, Proof::new(pages)))
    }
}

/// Noms-style engine: same client/server split, but writes are applied one
/// record at a time ("top-down building process" per §5.6.2 — no batch
/// amortization). Pair it with [`PosFactory::noms`] to get Prolly-tree
/// chunking with sliding-window hashing in internal layers.
pub struct NomsEngine<F: IndexFactory> {
    inner: Forkbase<F>,
}

impl<F: IndexFactory> NomsEngine<F> {
    pub fn new(factory: F, fetch_cost_nanos: u64) -> Self {
        NomsEngine { inner: Forkbase::new(factory, fetch_cost_nanos) }
    }

    /// Unbatched write path: one tree rebuild per record.
    pub fn put(&self, branch: &str, entries: Vec<Entry>) -> Result<Hash> {
        let mut root = Hash::ZERO;
        for e in entries {
            root = self.inner.put(branch, vec![e])?;
        }
        Ok(root)
    }

    pub fn get(&self, branch: &str, key: &[u8]) -> Result<Option<Bytes>> {
        self.inner.get(branch, key)
    }

    pub fn engine(&self) -> &Forkbase<F> {
        &self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use siri_pos_tree::PosParams;

    fn entries(range: std::ops::Range<usize>) -> Vec<Entry> {
        range
            .map(|i| Entry::new(format!("key{i:05}").into_bytes(), vec![(i % 251) as u8; 64]))
            .collect()
    }

    /// Engines under test pin their policy so `SIRI_SHARDS` in the
    /// environment (e.g. the sharded CI leg) cannot change what a test
    /// asserts about partition shape.
    fn single_engine() -> Forkbase<PosFactory> {
        Forkbase::with_sharding(
            PosFactory(PosParams::default()),
            Arc::new(MemStore::new()),
            ShardingPolicy::single(),
            0,
        )
    }

    fn sharded_engine(n: usize) -> Forkbase<PosFactory> {
        Forkbase::with_sharding(
            PosFactory(PosParams::default()),
            Arc::new(MemStore::new()),
            ShardingPolicy::pinned(n),
            0,
        )
    }

    #[test]
    fn put_get_round_trip() {
        let fb = Forkbase::new(PosFactory(PosParams::default()), 1_000);
        fb.put("master", entries(0..500)).unwrap();
        assert_eq!(fb.get("master", b"key00123").unwrap().unwrap().len(), 64);
        assert_eq!(fb.get("master", b"missing").unwrap(), None);
    }

    #[test]
    fn client_cache_warms_up() {
        let fb = Forkbase::new(PosFactory(PosParams::default()), 1_000);
        fb.put("master", entries(0..2000)).unwrap();
        fb.get("master", b"key00100").unwrap();
        let (_, misses_cold, nanos_cold) = fb.client_stats();
        assert!(misses_cold > 0, "cold read must fetch the path");
        assert_eq!(nanos_cold, misses_cold * 1_000);
        // Re-reading the same key costs nothing remotely — absorbed by the
        // client's caches (decoded nodes first, pages beneath).
        fb.get("master", b"key00100").unwrap();
        let (_, misses, nanos) = fb.client_stats();
        assert_eq!(misses, misses_cold, "second read must not fetch");
        assert_eq!(nanos, nanos_cold, "no synthetic cost on a warm read");
        // A key in a distant leaf shares the internal spine: only its
        // leaf-side pages are fetched, strictly fewer than the cold path.
        fb.get("master", b"key01900").unwrap();
        let (_, misses_2, _) = fb.client_stats();
        assert!(misses_2 > misses, "a new leaf must fetch");
        assert!(misses_2 - misses < misses_cold, "the shared spine must not refetch");
    }

    #[test]
    fn client_view_persists_across_reads() {
        let fb = Forkbase::new(PosFactory(PosParams::default()), 1_000);
        fb.put("master", entries(0..2000)).unwrap();
        fb.get("master", b"key00100").unwrap();
        let (hits_1, misses_1, _) = fb.client_stats();
        // The second identical read is served entirely by the persistent
        // view's decoded-node cache: it never reaches the page cache, so
        // neither page-cache counter moves.
        fb.get("master", b"key00100").unwrap();
        let (hits_2, misses_2, _) = fb.client_stats();
        assert_eq!((hits_1, misses_1), (hits_2, misses_2), "node cache must absorb the read");
        // A write moves the head; the re-rooted view still answers
        // correctly and reuses the shared spine.
        fb.put("master", entries(2000..2001)).unwrap();
        assert!(fb.get("master", b"key02000").unwrap().is_some());
        assert!(fb.get("master", b"key00100").unwrap().is_some());
        // A fresh client starts cold again.
        fb.reset_client();
        let (_, misses_before, _) = fb.client_stats();
        fb.get("master", b"key00100").unwrap();
        let (_, misses_after, _) = fb.client_stats();
        assert!(misses_after > misses_before, "reset must drop both cache layers");
    }

    #[test]
    fn forks_share_pages_and_diverge() {
        let fb = Forkbase::new(PosFactory(PosParams::default()), 0);
        fb.put("master", entries(0..300)).unwrap();
        fb.fork("master", "feature").unwrap();
        fb.put("feature", entries(300..350)).unwrap();
        assert_eq!(fb.get("master", b"key00320").unwrap(), None);
        assert!(fb.get("feature", b"key00320").unwrap().is_some());
        // Page sharing between branches.
        let m = fb.head("master").unwrap().page_set();
        let f = fb.head("feature").unwrap().page_set();
        assert!(!m.intersection(&f).is_empty());
    }

    #[test]
    fn merge_branches_combines_and_detects_conflicts() {
        let fb = Forkbase::new(PosFactory(PosParams::default()), 0);
        fb.put("master", entries(0..100)).unwrap();
        fb.fork("master", "other").unwrap();
        fb.put("other", entries(100..120)).unwrap();
        let outcome = fb.merge_branches("master", "other", MergeStrategy::Strict).unwrap();
        assert_eq!(outcome.added_from_right, 20);
        assert_eq!(fb.head("master").unwrap().len().unwrap(), 120);

        // Now a real conflict.
        fb.put("other", vec![Entry::new(b"key00005".to_vec(), b"theirs".to_vec())]).unwrap();
        fb.put("master", vec![Entry::new(b"key00005".to_vec(), b"ours".to_vec())]).unwrap();
        let err = fb.merge_branches("master", "other", MergeStrategy::Strict).unwrap_err();
        assert!(matches!(err, IndexError::MergeConflict { .. }));
        // Resolvable with a policy.
        let outcome = fb.merge_branches("master", "other", MergeStrategy::PreferRight).unwrap();
        assert_eq!(outcome.conflicts_resolved, 1);
        assert_eq!(fb.get_uncached("master", b"key00005").unwrap().unwrap().as_ref(), b"theirs");
    }

    #[test]
    fn unknown_branch_is_an_error() {
        let fb = Forkbase::new(PosFactory(PosParams::default()), 0);
        assert!(fb.put("ghost", entries(0..1)).is_err());
        assert!(fb.get("ghost", b"k").is_err());
        assert!(fb.delete_branch("ghost").is_err());
        assert!(fb.range("ghost", std::ops::Bound::Unbounded, std::ops::Bound::Unbounded).is_err());
    }

    #[test]
    fn branch_deletes_flow_through_write_batches() {
        let fb = Forkbase::new(PosFactory(PosParams::default()), 0);
        fb.put("master", entries(0..100)).unwrap();
        let before = fb.head("master").unwrap().root();
        fb.delete("master", [&b"key00042"[..]]).unwrap();
        assert_eq!(fb.get("master", b"key00042").unwrap(), None);
        assert_ne!(fb.head("master").unwrap().root(), before);
        // Mixed batch through commit.
        let mut batch = WriteBatch::new();
        batch.put(&b"zz-new"[..], &b"v"[..]).delete(&b"key00001"[..]);
        fb.commit("master", batch).unwrap();
        assert!(fb.get("master", b"zz-new").unwrap().is_some());
        assert_eq!(fb.get("master", b"key00001").unwrap(), None);
        // Put-back restores the original digest (structural invariance).
        let mut batch = WriteBatch::new();
        batch.delete(&b"zz-new"[..]);
        for i in [1usize, 42] {
            let e = &entries(i..i + 1)[0];
            batch.put(e.key.clone(), e.value.clone());
        }
        fb.commit("master", batch).unwrap();
        assert_eq!(fb.head("master").unwrap().root(), before);
    }

    #[test]
    fn three_way_merge_propagates_branch_deletions() {
        let fb = Forkbase::new(PosFactory(PosParams::default()), 0);
        fb.put("master", entries(0..100)).unwrap();
        let base_root = fb.head("master").unwrap().root();
        fb.fork("master", "cleaning").unwrap();
        // The branch deletes 10 records and edits one; master stays put.
        fb.delete("cleaning", (0..10).map(|i| format!("key{i:05}").into_bytes())).unwrap();
        fb.put("cleaning", vec![Entry::new(b"key00050".to_vec(), b"edited".to_vec())]).unwrap();

        // Three-way merge from the fork point propagates the deletions
        // (the two-way union merge, by documented construction, cannot).
        let outcome = fb
            .merge_branches_with_base("master", "cleaning", base_root, MergeStrategy::Strict)
            .unwrap();
        assert_eq!(outcome.removed_by_right, 10);
        assert_eq!(outcome.added_from_right, 1, "the edit applies cleanly");
        assert_eq!(fb.head("master").unwrap().len().unwrap(), 90);
        assert_eq!(fb.get_uncached("master", b"key00005").unwrap(), None);
        assert_eq!(fb.get_uncached("master", b"key00050").unwrap().unwrap().as_ref(), b"edited");

        // Edit-vs-delete is a conflict under Strict, resolvable by policy.
        let base2 = fb.head("master").unwrap().root();
        fb.fork("master", "hotfix").unwrap();
        fb.delete("hotfix", [&b"key00060"[..]]).unwrap();
        fb.put("master", vec![Entry::new(b"key00060".to_vec(), b"kept".to_vec())]).unwrap();
        let err = fb
            .merge_branches_with_base("master", "hotfix", base2, MergeStrategy::Strict)
            .unwrap_err();
        assert!(matches!(err, IndexError::MergeConflict { .. }));
        let outcome = fb
            .merge_branches_with_base("master", "hotfix", base2, MergeStrategy::PreferRight)
            .unwrap();
        assert_eq!(outcome.conflicts_resolved, 1);
        assert_eq!(fb.get_uncached("master", b"key00060").unwrap(), None, "delete won");
        // Both sides deleting the same key converges without conflict.
        let base3 = fb.head("master").unwrap().root();
        fb.fork("master", "twin").unwrap();
        fb.delete("twin", [&b"key00070"[..]]).unwrap();
        fb.delete("master", [&b"key00070"[..]]).unwrap();
        let outcome =
            fb.merge_branches_with_base("master", "twin", base3, MergeStrategy::Strict).unwrap();
        assert_eq!(outcome.conflicts_resolved, 0);
        assert_eq!(outcome.removed_by_right, 0, "already gone on the left");
    }

    #[test]
    fn delete_branch_leaves_other_branches_pages_intact() {
        let fb = Forkbase::new(PosFactory(PosParams::default()), 0);
        fb.put("master", entries(0..300)).unwrap();
        fb.fork("master", "doomed").unwrap();
        fb.put("doomed", entries(300..400)).unwrap();
        assert_eq!(fb.branches(), vec!["doomed".to_string(), "master".to_string()]);

        let master_pages = fb.head("master").unwrap().page_set();
        fb.delete_branch("doomed").unwrap();
        assert_eq!(fb.branches(), vec!["master".to_string()]);
        // The surviving branch's page set is bit-identical and fully
        // readable.
        let after = fb.head("master").unwrap().page_set();
        assert_eq!(master_pages.len(), after.len());
        assert_eq!(master_pages.intersection(&after).len(), after.len());
        assert!(fb.get("master", b"key00123").unwrap().is_some());
    }

    #[test]
    fn client_range_cursor_streams_in_key_order() {
        let fb = Forkbase::new(PosFactory(PosParams::default()), 1_000);
        fb.put("master", entries(0..2000)).unwrap();
        use std::ops::Bound;
        let window: Vec<Entry> = fb
            .range("master", Bound::Included(b"key00100"), Bound::Excluded(b"key00110"))
            .unwrap()
            .collect::<Result<_>>()
            .unwrap();
        assert_eq!(window.len(), 10);
        assert_eq!(window[0].key.as_ref(), b"key00100");
        // Prefix cursor.
        let pre: Vec<Entry> =
            fb.scan_prefix("master", b"key0003").unwrap().collect::<Result<_>>().unwrap();
        assert_eq!(pre.len(), 10, "key00030..key00039");
        // A bounded window must not pull the whole dataset through the
        // client cache: remote fetches stay far below the page count.
        let (_, fetches, _) = fb.client_stats();
        let total_pages = fb.head("master").unwrap().page_set().len() as u64;
        assert!(fetches < total_pages / 2, "cursor reads fetched {fetches} of {total_pages} pages");
        // An open cursor survives a concurrent branch write (it reads the
        // snapshot it was created on).
        let mut cursor =
            fb.range("master", Bound::Included(b"key01000"), Bound::Excluded(b"key01005")).unwrap();
        let first = cursor.next().unwrap().unwrap();
        fb.put("master", entries(2000..2001)).unwrap();
        let rest: Vec<Entry> = cursor.collect::<Result<_>>().unwrap();
        assert_eq!(first.key.as_ref(), b"key01000");
        assert_eq!(rest.len(), 4);
    }

    #[test]
    fn durable_engine_commits_survive_reopen() {
        use siri_store::FsyncPolicy;
        let dir = std::env::temp_dir()
            .join("siri-forkbase-tests")
            .join(format!("durable-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let opts = FileStoreOptions { fsync: FsyncPolicy::OnCommit, ..FileStoreOptions::default() };

        let root = {
            let fb =
                Forkbase::new_durable(PosFactory(PosParams::default()), &dir, opts, 0).unwrap();
            fb.put("master", entries(0..300)).unwrap()
        }; // "process exits" — the commit was fsynced before put returned

        let fb = Forkbase::new_durable(PosFactory(PosParams::default()), &dir, opts, 0).unwrap();
        fb.open_branch("master", root);
        assert_eq!(fb.head("master").unwrap().len().unwrap(), 300);
        assert_eq!(fb.get("master", b"key00123").unwrap().unwrap().len(), 64);
        // Writes keep flowing after the reopen.
        fb.put("master", entries(300..310)).unwrap();
        assert!(fb.get("master", b"key00305").unwrap().is_some());
    }

    #[test]
    fn concurrent_commits_to_disjoint_branches_never_conflict() {
        let fb = Arc::new(Forkbase::new(PosFactory(PosParams::default()), 0));
        for t in 0..4 {
            fb.fork("master", &format!("b{t}")).unwrap();
        }
        std::thread::scope(|s| {
            for t in 0..4usize {
                let fb = Arc::clone(&fb);
                s.spawn(move || {
                    let branch = format!("b{t}");
                    for k in 0..10usize {
                        let e = Entry::new(
                            format!("t{t}-k{k:03}").into_bytes(),
                            format!("v{t}-{k}").into_bytes(),
                        );
                        fb.put(&branch, vec![e]).unwrap();
                    }
                });
            }
        });
        let stats = fb.engine_stats();
        assert_eq!(stats.commits, 40);
        assert_eq!(stats.conflicts, 0, "disjoint branches must not contend");
        for t in 0..4 {
            assert_eq!(fb.head(&format!("b{t}")).unwrap().len().unwrap(), 10);
        }
    }

    #[test]
    fn contended_commits_all_land_exactly_once() {
        let fb = Arc::new(single_engine());
        std::thread::scope(|s| {
            for t in 0..4usize {
                let fb = Arc::clone(&fb);
                s.spawn(move || {
                    for k in 0..15usize {
                        let e = Entry::new(
                            format!("t{t}-k{k:03}").into_bytes(),
                            format!("v{t}-{k}").into_bytes(),
                        );
                        let info = fb.commit_with_info("master", WriteBatch::from_entries(vec![e]));
                        let info = info.unwrap();
                        assert_ne!(info.parent, info.root, "a put must move the head");
                        assert_eq!(info.shards.len(), 1, "single-shard receipt");
                        assert_eq!(info.shards[0].parent, info.parent);
                        assert_eq!(info.shards[0].root, info.root);
                    }
                });
            }
        });
        let stats = fb.engine_stats();
        assert_eq!(stats.commits, 60);
        let head = fb.head("master").unwrap();
        assert_eq!(head.len().unwrap(), 60, "every batch applied exactly once");
        for t in 0..4 {
            for k in 0..15 {
                let key = format!("t{t}-k{k:03}");
                assert_eq!(
                    fb.get_uncached("master", key.as_bytes()).unwrap().as_deref(),
                    Some(format!("v{t}-{k}").as_bytes()),
                );
            }
        }
    }

    #[test]
    fn disjoint_shard_writers_record_zero_conflicts() {
        // 4 writers on one branch, each confined to its own key-range
        // shard: per-shard CAS makes the branch behave like 4 disjoint
        // branches — zero conflicts, zero rebuilds.
        let fb = Arc::new(sharded_engine(4));
        assert_eq!(fb.shard_count("master").unwrap(), 4);
        std::thread::scope(|s| {
            for t in 0..4usize {
                let fb = Arc::clone(&fb);
                s.spawn(move || {
                    // First key byte pins the writer to shard t under the
                    // uniform single-byte partition.
                    let lead = (t * 64 + 10) as u8;
                    for k in 0..12usize {
                        let mut key = vec![lead];
                        key.extend_from_slice(format!("w{t}-k{k:03}").as_bytes());
                        let info = fb
                            .commit_with_info(
                                "master",
                                WriteBatch::from_entries(vec![Entry::new(
                                    key,
                                    format!("v{t}-{k}").into_bytes(),
                                )]),
                            )
                            .unwrap();
                        assert_eq!(info.retries, 0, "disjoint shards never race");
                        assert_eq!(info.shards.len(), 1);
                        assert_eq!(info.shards[0].shard, t);
                    }
                });
            }
        });
        let stats = fb.engine_stats();
        assert_eq!(stats.commits, 48);
        assert_eq!(stats.conflicts, 0, "disjoint shards must not contend");
        for s in fb.shard_stats("master").unwrap() {
            assert_eq!(s.commits, 12);
            assert_eq!(s.conflicts, 0);
        }
        // The logical tree is complete and ordered across shards.
        let all: Vec<Entry> = fb
            .range("master", Bound::Unbounded, Bound::Unbounded)
            .unwrap()
            .collect::<Result<_>>()
            .unwrap();
        assert_eq!(all.len(), 48);
        assert!(all.windows(2).all(|w| w[0].key < w[1].key), "chained cursors stay sorted");
    }

    #[test]
    fn sharded_head_digest_is_the_manifest_and_reopens() {
        let fb = sharded_engine(4);
        fb.put("master", entries(0..200)).unwrap();
        let digest = fb.branch_digest("master").unwrap();
        // The digest is a stored manifest page over 4 sub-roots.
        let page = fb.server_stats();
        assert!(page.puts > 0);
        // Reattach over the same store via a second engine.
        let fb2 = Forkbase::with_sharding(
            PosFactory(PosParams::default()),
            fb.server.clone(),
            ShardingPolicy::single(),
            0,
        );
        fb2.open_branch("restored", digest);
        assert_eq!(fb2.shard_count("restored").unwrap(), 4, "manifest partition restored");
        assert_eq!(fb2.branch_digest("restored").unwrap(), digest);
        assert_eq!(fb2.get("restored", b"key00123").unwrap().unwrap().len(), 64);
        // Logical contents equal the unsharded build (structural
        // invariance of the collapsed head).
        let single = single_engine();
        single.put("master", entries(0..200)).unwrap();
        assert_eq!(
            fb.head("master").unwrap().root(),
            single.head("master").unwrap().root(),
            "collapsed sharded head must match the unsharded digest"
        );
    }

    #[test]
    fn batches_spanning_shards_commit_atomically() {
        let fb = sharded_engine(4);
        // One batch across all four shards: every slice publishes in one
        // critical section, and the receipt carries all four edges.
        let data: Vec<Entry> =
            (0u16..256).step_by(16).map(|b| Entry::new(vec![b as u8, 1], vec![b as u8])).collect();
        let info = fb.commit_with_info("master", WriteBatch::from_entries(data.clone())).unwrap();
        assert_eq!(info.shards.len(), 4, "all four shards touched");
        assert!(info.shards.windows(2).all(|w| w[0].shard < w[1].shard));
        let all: Vec<Entry> = fb
            .range("master", Bound::Unbounded, Bound::Unbounded)
            .unwrap()
            .collect::<Result<_>>()
            .unwrap();
        assert_eq!(all.len(), data.len());
        // Deleting across shards works the same way.
        let mut batch = WriteBatch::new();
        for e in &data {
            batch.delete(e.key.clone());
        }
        let info = fb.commit_with_info("master", batch).unwrap();
        assert_eq!(info.shards.len(), 4);
        assert_eq!(fb.head("master").unwrap().len().unwrap(), 0);
    }

    #[test]
    fn racing_commit_into_deleted_branch_fails_cleanly() {
        let fb = single_engine();
        fb.fork("master", "doomed").unwrap();
        fb.put("doomed", entries(0..10)).unwrap();
        // A commit that resolved its slot before the delete must observe
        // the atomic retirement, not publish into the dismantled head.
        let slot = fb.slot("doomed").unwrap();
        fb.delete_branch("doomed").unwrap();
        let err = fb.commit_on_slot(&slot, WriteBatch::from_entries(entries(10..11))).unwrap_err();
        assert!(matches!(err, IndexError::BranchDeleted), "got {err:?}");
        // Same for the sharded head: every slot retires at once.
        let fbs = sharded_engine(4);
        fbs.fork("master", "doomed").unwrap();
        let slot = fbs.slot("doomed").unwrap();
        fbs.delete_branch("doomed").unwrap();
        let err = fbs.commit_on_slot(&slot, WriteBatch::from_entries(entries(0..50))).unwrap_err();
        assert!(matches!(err, IndexError::BranchDeleted), "got {err:?}");
    }

    #[test]
    fn split_and_merge_hooks_preserve_contents() {
        let fb = single_engine();
        fb.put("master", entries(0..300)).unwrap();
        let before = fb.head("master").unwrap().root();
        assert!(fb.split_branch_shard("master", 0).unwrap());
        assert_eq!(fb.shard_count("master").unwrap(), 2);
        assert!(fb.split_branch_shard("master", 1).unwrap());
        assert_eq!(fb.shard_count("master").unwrap(), 3);
        assert_eq!(fb.engine_stats().splits, 2);
        // Contents and collapsed digest survive the reshard.
        assert_eq!(fb.head("master").unwrap().root(), before);
        assert_eq!(fb.get("master", b"key00123").unwrap().unwrap().len(), 64);
        let all: Vec<Entry> = fb
            .range("master", Bound::Unbounded, Bound::Unbounded)
            .unwrap()
            .collect::<Result<_>>()
            .unwrap();
        assert_eq!(all.len(), 300);
        assert!(all.windows(2).all(|w| w[0].key < w[1].key));
        // Writes keep landing in the new partition.
        fb.put("master", entries(300..320)).unwrap();
        assert_eq!(fb.head("master").unwrap().len().unwrap(), 320);
        // Merge back down to one shard.
        assert!(fb.merge_branch_shards("master", 1).unwrap());
        assert!(fb.merge_branch_shards("master", 0).unwrap());
        assert_eq!(fb.shard_count("master").unwrap(), 1);
        assert_eq!(fb.engine_stats().merges, 2);
        assert_eq!(fb.head("master").unwrap().len().unwrap(), 320);
    }

    #[test]
    fn adaptive_policy_splits_hot_shard() {
        // Two writers fighting over one shard long enough trip the
        // adaptive split; the logical contents are untouched.
        let policy =
            ShardingPolicy { adaptive: true, split_threshold: 4, ..ShardingPolicy::single() };
        let fb = Arc::new(Forkbase::with_sharding(
            PosFactory(PosParams::default()),
            Arc::new(MemStore::new()),
            policy,
            0,
        ));
        fb.put("master", entries(0..200)).unwrap();
        std::thread::scope(|s| {
            for t in 0..4usize {
                let fb = Arc::clone(&fb);
                s.spawn(move || {
                    for k in 0..30usize {
                        fb.put(
                            "master",
                            vec![Entry::new(
                                format!("key{:05}", 1000 + t * 100 + k).into_bytes(),
                                vec![7u8; 16],
                            )],
                        )
                        .unwrap();
                    }
                });
            }
        });
        let stats = fb.engine_stats();
        if stats.conflicts >= 4 {
            assert!(stats.splits > 0, "sustained contention must split the hot shard");
            assert!(fb.shard_count("master").unwrap() > 1);
        }
        assert_eq!(fb.head("master").unwrap().len().unwrap(), 200 + 120);
    }

    #[test]
    fn bulk_load_parallel_build_matches_serial_digest() {
        let data = entries(0..2000);
        let fb = sharded_engine(1);
        let digest = fb.bulk_load("loaded", data.clone(), 4).unwrap();
        assert!(fb.shard_count("loaded").unwrap() > 1, "parallel load shards the branch");
        assert_eq!(fb.branch_digest("loaded").unwrap(), digest);
        assert_eq!(fb.get("loaded", b"key01234").unwrap().unwrap().len(), 64);
        // The collapsed logical tree equals the serial unsharded build
        // (structural invariance).
        let single = single_engine();
        single.put("master", data).unwrap();
        assert_eq!(fb.head("loaded").unwrap().root(), single.head("master").unwrap().root());
        // The manifest digest round-trips through open_branch.
        fb.open_branch("reloaded", digest);
        assert_eq!(fb.head("reloaded").unwrap().root(), single.head("master").unwrap().root());
        // Degenerate loads stay sane.
        let one = fb.bulk_load("tiny", entries(0..1), 8).unwrap();
        assert_eq!(fb.shard_count("tiny").unwrap(), 1);
        assert_ne!(one, Hash::ZERO);
        fb.bulk_load("empty", Vec::new(), 8).unwrap();
        assert_eq!(fb.head("empty").unwrap().len().unwrap(), 0);
    }

    #[test]
    fn noms_engine_writes_one_by_one_same_content() {
        let noms = NomsEngine::new(PosFactory(PosParams::noms()), 0);
        let fb = Forkbase::new(PosFactory(PosParams::noms()), 0);
        let data = entries(0..200);
        noms.put("master", data.clone()).unwrap();
        fb.put("master", data).unwrap();
        // Structural invariance ⇒ same root despite different batching…
        assert_eq!(noms.engine().head("master").unwrap().root(), fb.head("master").unwrap().root());
        // …but the unbatched path paid many more page writes.
        assert!(
            noms.engine().server_stats().puts > fb.server_stats().puts * 5,
            "noms {} vs forkbase {}",
            noms.engine().server_stats().puts,
            fb.server_stats().puts
        );
    }
}
