//! A Forkbase-style storage engine over any SIRI index (§5.6).
//!
//! Architecture (matching the paper's single-servlet/single-client setup):
//!
//! * **writes** execute entirely server-side against the shared page store
//!   ("the write operations will be performed on the server side
//!   completely");
//! * **reads** run client-side through a [`CachingStore`]: pages are pulled
//!   from the server once and cached, so throughput is governed by the
//!   cache hit ratio ("Forkbase caches the nodes at clients after retrieved
//!   from servers");
//! * **branches** are named heads over immutable roots, so forking is
//!   O(1) and history is always intact.
//!
//! [`IndexFactory`] abstracts over which of the four structures backs the
//! store; [`NomsEngine`] wraps the same machinery with Noms' behaviour —
//! Prolly-tree chunking and unbatched, per-record writes — for the
//! Figure 22 comparison.

mod factory;

use std::collections::HashMap;
use std::ops::Bound;
use std::sync::{Arc, Mutex};

use bytes::Bytes;
use siri_core::{
    merge, merge_with_base, Entry, EntryCursor, IndexError, MergeOutcome, MergeStrategy, Result,
    SiriIndex, WriteBatch,
};
use siri_crypto::Hash;
use siri_store::{
    CachingStore, FileStore, FileStoreOptions, MemStore, NodeStore, SharedStore, StoreError,
    StoreStats,
};

pub use factory::{IndexFactory, MbtFactory, MptFactory, MvmbFactory, PosFactory};

/// Default modelled cost of one client→server page fetch, in nanoseconds.
/// Roughly a small object read over 1 GbE with kernel overheads — the
/// absolute value only scales Figure 21's y-axis; the crossovers come from
/// hit ratios.
pub const DEFAULT_FETCH_COST_NANOS: u64 = 20_000;

/// A Forkbase-style versioned KV engine backed by index `F::Index`.
///
/// The server-side page store is pluggable: the default is an in-memory
/// [`MemStore`] (the paper's experiments), while
/// [`Forkbase::new_durable`] runs the same engine over a [`FileStore`],
/// fsyncing acknowledged commits per that store's
/// [`siri_store::FsyncPolicy`].
pub struct Forkbase<F: IndexFactory> {
    factory: F,
    server: SharedStore,
    /// Set when the server store is file-backed: the handle the engine
    /// drives durability (fsync-per-commit policy) through.
    durable: Option<Arc<FileStore>>,
    client_store: Arc<CachingStore>,
    branches: HashMap<String, F::Index>,
    /// Per-branch client-side handles, kept across reads so the decoded-
    /// node cache inside each handle survives and actually earns hits.
    /// Re-rooted (`SiriIndex::at_root`, cache preserved) when the branch
    /// head moves.
    client_views: Mutex<HashMap<String, F::Index>>,
}

impl<F: IndexFactory> Forkbase<F> {
    /// Create an engine with one empty branch `"master"`.
    pub fn new(factory: F, fetch_cost_nanos: u64) -> Self {
        Self::with_server(factory, Arc::new(MemStore::new()), None, fetch_cost_nanos)
    }

    /// An engine whose server store persists to `path` (a [`FileStore`]
    /// directory). Commits are flushed per the options' fsync policy.
    /// Branch heads themselves are in-memory — callers that need them to
    /// survive a restart persist the roots (e.g. a sidecar file, as the
    /// `siri` CLI does) and re-attach with [`Forkbase::open_branch`].
    pub fn new_durable(
        factory: F,
        path: impl AsRef<std::path::Path>,
        opts: FileStoreOptions,
        fetch_cost_nanos: u64,
    ) -> std::io::Result<Self> {
        let (fs, _) = FileStore::open_with(path, opts)?;
        let fs = Arc::new(fs);
        Ok(Self::with_server(factory, fs.clone(), Some(fs), fetch_cost_nanos))
    }

    fn with_server(
        factory: F,
        server: Arc<dyn NodeStore>,
        durable: Option<Arc<FileStore>>,
        fetch_cost_nanos: u64,
    ) -> Self {
        let server: SharedStore = server;
        let client_store = Arc::new(CachingStore::new(server.clone(), fetch_cost_nanos));
        let mut branches = HashMap::new();
        branches.insert("master".to_string(), factory.empty(server.clone()));
        Forkbase {
            factory,
            server,
            durable,
            client_store,
            branches,
            client_views: Mutex::new(HashMap::new()),
        }
    }

    /// Attach a branch head at an existing root (e.g. one recovered from a
    /// durable store's sidecar after a restart). Replaces the branch if it
    /// exists.
    pub fn open_branch(&mut self, branch: &str, root: Hash) {
        let index = self.factory.open(self.server.clone(), root);
        self.branches.insert(branch.to_string(), index);
        self.client_views.lock().unwrap_or_else(|e| e.into_inner()).remove(branch);
    }

    /// Server-side atomic write batch (puts *and* deletes) to a branch;
    /// returns the new root digest. The primary write path — `put` and
    /// `delete` are sugar over it.
    pub fn commit(&mut self, branch: &str, batch: WriteBatch) -> Result<Hash> {
        let index =
            self.branches.get_mut(branch).ok_or(IndexError::Unsupported("unknown branch"))?;
        let old_root = index.root();
        let root = index.commit(batch)?;
        // Acknowledge only once the fsync policy is satisfied: a durable
        // engine's returned root is a *durable* root. On fsync failure the
        // branch head rolls back — a failed commit must not be readable —
        // and the already-written pages are orphans for the next sweep.
        if let Some(fs) = &self.durable {
            if let Err(e) = fs.note_commit() {
                *index = index.at_root(old_root);
                return Err(IndexError::Store(StoreError::io("fsync", e)));
            }
        }
        Ok(root)
    }

    /// Server-side batched insert to a branch; returns the new root digest.
    pub fn put(&mut self, branch: &str, entries: Vec<Entry>) -> Result<Hash> {
        self.commit(branch, WriteBatch::from_entries(entries))
    }

    /// Delete keys from a branch; returns the new root digest.
    pub fn delete(
        &mut self,
        branch: &str,
        keys: impl IntoIterator<Item = impl Into<Bytes>>,
    ) -> Result<Hash> {
        let mut batch = WriteBatch::new();
        for key in keys {
            batch.delete(key);
        }
        self.commit(branch, batch)
    }

    /// The persistent client-side view of a branch, read through the page
    /// cache *and* the view's decoded-node cache. When the branch head has
    /// moved the view is re-rooted in place, keeping both caches warm
    /// (adjacent versions share most pages).
    fn client_view(&self, branch: &str) -> Result<F::Index> {
        let head = self.branches.get(branch).ok_or(IndexError::Unsupported("unknown branch"))?;
        let root = head.root();
        // Clone the handle out and drop the lock before traversing: handles
        // are cheap (store + root + Arc'd cache) and concurrent readers
        // must not serialize on the view map.
        let mut views = self.client_views.lock().unwrap_or_else(|e| e.into_inner());
        Ok(match views.get_mut(branch) {
            Some(view) => {
                if view.root() != root {
                    *view = view.at_root(root);
                }
                view.clone()
            }
            None => {
                let client_store: SharedStore = self.client_store.clone();
                let view = self.factory.open(client_store, root);
                views.insert(branch.to_string(), view.clone());
                view
            }
        })
    }

    /// Client-side point read through the persistent branch view's two
    /// cache layers (decoded nodes above, pages beneath).
    pub fn get(&self, branch: &str, key: &[u8]) -> Result<Option<Bytes>> {
        self.client_view(branch)?.get(key)
    }

    /// Client-side streaming range read: a lazy cursor over the branch
    /// head, walking leaf-by-leaf through the client's caches. The cursor
    /// snapshots the head root at creation — concurrent writes to the
    /// branch do not disturb an open cursor (immutability in action).
    pub fn range(
        &self,
        branch: &str,
        start: Bound<&[u8]>,
        end: Bound<&[u8]>,
    ) -> Result<EntryCursor> {
        Ok(self.client_view(branch)?.range(start, end))
    }

    /// Client-side prefix cursor (sugar over [`Forkbase::range`]).
    pub fn scan_prefix(&self, branch: &str, prefix: &[u8]) -> Result<EntryCursor> {
        Ok(self.client_view(branch)?.scan_prefix(prefix))
    }

    /// Read bypassing the cache (server-side read, for comparisons).
    pub fn get_uncached(&self, branch: &str, key: &[u8]) -> Result<Option<Bytes>> {
        let index = self.branches.get(branch).ok_or(IndexError::Unsupported("unknown branch"))?;
        index.get(key)
    }

    /// Fork `from` into a new branch `to` — O(1), pages fully shared.
    pub fn fork(&mut self, from: &str, to: &str) -> Result<()> {
        let index =
            self.branches.get(from).ok_or(IndexError::Unsupported("unknown branch"))?.clone();
        self.branches.insert(to.to_string(), index);
        Ok(())
    }

    /// Drop a branch head (and its client view). Pages stay in the store —
    /// they are content-addressed and may be shared with other branches;
    /// reclaiming unreachable ones is the offline GC's job. Other branches'
    /// page sets are untouched by construction.
    pub fn delete_branch(&mut self, branch: &str) -> Result<()> {
        self.branches.remove(branch).ok_or(IndexError::Unsupported("unknown branch"))?;
        self.client_views.lock().unwrap_or_else(|e| e.into_inner()).remove(branch);
        Ok(())
    }

    /// All branch names, sorted.
    pub fn branches(&self) -> Vec<String> {
        let mut names: Vec<String> = self.branches.keys().cloned().collect();
        names.sort_unstable();
        names
    }

    /// Merge branch `other` into `into` (paper §4.1.4 semantics).
    pub fn merge_branches(
        &mut self,
        into: &str,
        other: &str,
        strategy: MergeStrategy,
    ) -> Result<MergeOutcome<F::Index>> {
        let left = self.branches.get(into).ok_or(IndexError::Unsupported("unknown branch"))?;
        let right = self.branches.get(other).ok_or(IndexError::Unsupported("unknown branch"))?;
        let outcome = merge(left, right, strategy)?;
        self.branches.insert(into.to_string(), outcome.merged.clone());
        Ok(outcome)
    }

    /// Three-way merge of `other` into `into` from a common base version —
    /// usually the root `other` was forked at. Unlike [`Forkbase::merge_branches`]
    /// (a two-way union), this sees deletions made on either branch since
    /// the base and propagates them (edit-vs-delete conflicts resolve per
    /// `strategy`).
    pub fn merge_branches_with_base(
        &mut self,
        into: &str,
        other: &str,
        base_root: Hash,
        strategy: MergeStrategy,
    ) -> Result<MergeOutcome<F::Index>> {
        let left = self.branches.get(into).ok_or(IndexError::Unsupported("unknown branch"))?;
        let right = self.branches.get(other).ok_or(IndexError::Unsupported("unknown branch"))?;
        // The base is just another version in the shared store; re-rooting
        // the left handle reads it through the same caches.
        let base = left.at_root(base_root);
        let outcome = merge_with_base(&base, left, right, strategy)?;
        self.branches.insert(into.to_string(), outcome.merged.clone());
        Ok(outcome)
    }

    /// The branch's current index handle (server-side view).
    pub fn head(&self, branch: &str) -> Option<&F::Index> {
        self.branches.get(branch)
    }

    /// Client cache statistics: (hits, remote fetches, synthetic
    /// nanoseconds charged).
    pub fn client_stats(&self) -> (u64, u64, u64) {
        (
            self.client_store.local_hits(),
            self.client_store.remote_fetches(),
            self.client_store.synthetic_nanos(),
        )
    }

    pub fn client_hit_ratio(&self) -> f64 {
        self.client_store.hit_ratio()
    }

    /// Reset the client cache (a "fresh client"): drops the cached pages
    /// *and* the per-branch client views with their decoded-node caches.
    pub fn reset_client(&self) {
        self.client_store.clear();
        self.client_views.lock().unwrap_or_else(|e| e.into_inner()).clear();
    }

    /// Server storage counters.
    pub fn server_stats(&self) -> StoreStats {
        self.server.stats()
    }
}

/// Noms-style engine: same client/server split, but writes are applied one
/// record at a time ("top-down building process" per §5.6.2 — no batch
/// amortization). Pair it with [`PosFactory::noms`] to get Prolly-tree
/// chunking with sliding-window hashing in internal layers.
pub struct NomsEngine<F: IndexFactory> {
    inner: Forkbase<F>,
}

impl<F: IndexFactory> NomsEngine<F> {
    pub fn new(factory: F, fetch_cost_nanos: u64) -> Self {
        NomsEngine { inner: Forkbase::new(factory, fetch_cost_nanos) }
    }

    /// Unbatched write path: one tree rebuild per record.
    pub fn put(&mut self, branch: &str, entries: Vec<Entry>) -> Result<Hash> {
        let mut root = Hash::ZERO;
        for e in entries {
            root = self.inner.put(branch, vec![e])?;
        }
        Ok(root)
    }

    pub fn get(&self, branch: &str, key: &[u8]) -> Result<Option<Bytes>> {
        self.inner.get(branch, key)
    }

    pub fn engine(&self) -> &Forkbase<F> {
        &self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use siri_pos_tree::PosParams;

    fn entries(range: std::ops::Range<usize>) -> Vec<Entry> {
        range
            .map(|i| Entry::new(format!("key{i:05}").into_bytes(), vec![(i % 251) as u8; 64]))
            .collect()
    }

    #[test]
    fn put_get_round_trip() {
        let mut fb = Forkbase::new(PosFactory(PosParams::default()), 1_000);
        fb.put("master", entries(0..500)).unwrap();
        assert_eq!(fb.get("master", b"key00123").unwrap().unwrap().len(), 64);
        assert_eq!(fb.get("master", b"missing").unwrap(), None);
    }

    #[test]
    fn client_cache_warms_up() {
        let mut fb = Forkbase::new(PosFactory(PosParams::default()), 1_000);
        fb.put("master", entries(0..2000)).unwrap();
        fb.get("master", b"key00100").unwrap();
        let (_, misses_cold, nanos_cold) = fb.client_stats();
        assert!(misses_cold > 0, "cold read must fetch the path");
        assert_eq!(nanos_cold, misses_cold * 1_000);
        // Re-reading the same key costs nothing remotely — absorbed by the
        // client's caches (decoded nodes first, pages beneath).
        fb.get("master", b"key00100").unwrap();
        let (_, misses, nanos) = fb.client_stats();
        assert_eq!(misses, misses_cold, "second read must not fetch");
        assert_eq!(nanos, nanos_cold, "no synthetic cost on a warm read");
        // A key in a distant leaf shares the internal spine: only its
        // leaf-side pages are fetched, strictly fewer than the cold path.
        fb.get("master", b"key01900").unwrap();
        let (_, misses_2, _) = fb.client_stats();
        assert!(misses_2 > misses, "a new leaf must fetch");
        assert!(misses_2 - misses < misses_cold, "the shared spine must not refetch");
    }

    #[test]
    fn client_view_persists_across_reads() {
        let mut fb = Forkbase::new(PosFactory(PosParams::default()), 1_000);
        fb.put("master", entries(0..2000)).unwrap();
        fb.get("master", b"key00100").unwrap();
        let (hits_1, misses_1, _) = fb.client_stats();
        // The second identical read is served entirely by the persistent
        // view's decoded-node cache: it never reaches the page cache, so
        // neither page-cache counter moves.
        fb.get("master", b"key00100").unwrap();
        let (hits_2, misses_2, _) = fb.client_stats();
        assert_eq!((hits_1, misses_1), (hits_2, misses_2), "node cache must absorb the read");
        // A write moves the head; the re-rooted view still answers
        // correctly and reuses the shared spine.
        fb.put("master", entries(2000..2001)).unwrap();
        assert!(fb.get("master", b"key02000").unwrap().is_some());
        assert!(fb.get("master", b"key00100").unwrap().is_some());
        // A fresh client starts cold again.
        fb.reset_client();
        let (_, misses_before, _) = fb.client_stats();
        fb.get("master", b"key00100").unwrap();
        let (_, misses_after, _) = fb.client_stats();
        assert!(misses_after > misses_before, "reset must drop both cache layers");
    }

    #[test]
    fn forks_share_pages_and_diverge() {
        let mut fb = Forkbase::new(PosFactory(PosParams::default()), 0);
        fb.put("master", entries(0..300)).unwrap();
        fb.fork("master", "feature").unwrap();
        fb.put("feature", entries(300..350)).unwrap();
        assert_eq!(fb.get("master", b"key00320").unwrap(), None);
        assert!(fb.get("feature", b"key00320").unwrap().is_some());
        // Page sharing between branches.
        let m = fb.head("master").unwrap().page_set();
        let f = fb.head("feature").unwrap().page_set();
        assert!(!m.intersection(&f).is_empty());
    }

    #[test]
    fn merge_branches_combines_and_detects_conflicts() {
        let mut fb = Forkbase::new(PosFactory(PosParams::default()), 0);
        fb.put("master", entries(0..100)).unwrap();
        fb.fork("master", "other").unwrap();
        fb.put("other", entries(100..120)).unwrap();
        let outcome = fb.merge_branches("master", "other", MergeStrategy::Strict).unwrap();
        assert_eq!(outcome.added_from_right, 20);
        assert_eq!(fb.head("master").unwrap().len().unwrap(), 120);

        // Now a real conflict.
        fb.put("other", vec![Entry::new(b"key00005".to_vec(), b"theirs".to_vec())]).unwrap();
        fb.put("master", vec![Entry::new(b"key00005".to_vec(), b"ours".to_vec())]).unwrap();
        let err = fb.merge_branches("master", "other", MergeStrategy::Strict).unwrap_err();
        assert!(matches!(err, IndexError::MergeConflict { .. }));
        // Resolvable with a policy.
        let outcome = fb.merge_branches("master", "other", MergeStrategy::PreferRight).unwrap();
        assert_eq!(outcome.conflicts_resolved, 1);
        assert_eq!(fb.get_uncached("master", b"key00005").unwrap().unwrap().as_ref(), b"theirs");
    }

    #[test]
    fn unknown_branch_is_an_error() {
        let mut fb = Forkbase::new(PosFactory(PosParams::default()), 0);
        assert!(fb.put("ghost", entries(0..1)).is_err());
        assert!(fb.get("ghost", b"k").is_err());
        assert!(fb.delete_branch("ghost").is_err());
        assert!(fb.range("ghost", std::ops::Bound::Unbounded, std::ops::Bound::Unbounded).is_err());
    }

    #[test]
    fn branch_deletes_flow_through_write_batches() {
        let mut fb = Forkbase::new(PosFactory(PosParams::default()), 0);
        fb.put("master", entries(0..100)).unwrap();
        let before = fb.head("master").unwrap().root();
        fb.delete("master", [&b"key00042"[..]]).unwrap();
        assert_eq!(fb.get("master", b"key00042").unwrap(), None);
        assert_ne!(fb.head("master").unwrap().root(), before);
        // Mixed batch through commit.
        let mut batch = WriteBatch::new();
        batch.put(&b"zz-new"[..], &b"v"[..]).delete(&b"key00001"[..]);
        fb.commit("master", batch).unwrap();
        assert!(fb.get("master", b"zz-new").unwrap().is_some());
        assert_eq!(fb.get("master", b"key00001").unwrap(), None);
        // Put-back restores the original digest (structural invariance).
        let mut batch = WriteBatch::new();
        batch.delete(&b"zz-new"[..]);
        for i in [1usize, 42] {
            let e = &entries(i..i + 1)[0];
            batch.put(e.key.clone(), e.value.clone());
        }
        fb.commit("master", batch).unwrap();
        assert_eq!(fb.head("master").unwrap().root(), before);
    }

    #[test]
    fn three_way_merge_propagates_branch_deletions() {
        let mut fb = Forkbase::new(PosFactory(PosParams::default()), 0);
        fb.put("master", entries(0..100)).unwrap();
        let base_root = fb.head("master").unwrap().root();
        fb.fork("master", "cleaning").unwrap();
        // The branch deletes 10 records and edits one; master stays put.
        fb.delete("cleaning", (0..10).map(|i| format!("key{i:05}").into_bytes())).unwrap();
        fb.put("cleaning", vec![Entry::new(b"key00050".to_vec(), b"edited".to_vec())]).unwrap();

        // Three-way merge from the fork point propagates the deletions
        // (the two-way union merge, by documented construction, cannot).
        let outcome = fb
            .merge_branches_with_base("master", "cleaning", base_root, MergeStrategy::Strict)
            .unwrap();
        assert_eq!(outcome.removed_by_right, 10);
        assert_eq!(outcome.added_from_right, 1, "the edit applies cleanly");
        assert_eq!(fb.head("master").unwrap().len().unwrap(), 90);
        assert_eq!(fb.get_uncached("master", b"key00005").unwrap(), None);
        assert_eq!(fb.get_uncached("master", b"key00050").unwrap().unwrap().as_ref(), b"edited");

        // Edit-vs-delete is a conflict under Strict, resolvable by policy.
        let base2 = fb.head("master").unwrap().root();
        fb.fork("master", "hotfix").unwrap();
        fb.delete("hotfix", [&b"key00060"[..]]).unwrap();
        fb.put("master", vec![Entry::new(b"key00060".to_vec(), b"kept".to_vec())]).unwrap();
        let err = fb
            .merge_branches_with_base("master", "hotfix", base2, MergeStrategy::Strict)
            .unwrap_err();
        assert!(matches!(err, IndexError::MergeConflict { .. }));
        let outcome = fb
            .merge_branches_with_base("master", "hotfix", base2, MergeStrategy::PreferRight)
            .unwrap();
        assert_eq!(outcome.conflicts_resolved, 1);
        assert_eq!(fb.get_uncached("master", b"key00060").unwrap(), None, "delete won");
        // Both sides deleting the same key converges without conflict.
        let base3 = fb.head("master").unwrap().root();
        fb.fork("master", "twin").unwrap();
        fb.delete("twin", [&b"key00070"[..]]).unwrap();
        fb.delete("master", [&b"key00070"[..]]).unwrap();
        let outcome =
            fb.merge_branches_with_base("master", "twin", base3, MergeStrategy::Strict).unwrap();
        assert_eq!(outcome.conflicts_resolved, 0);
        assert_eq!(outcome.removed_by_right, 0, "already gone on the left");
    }

    #[test]
    fn delete_branch_leaves_other_branches_pages_intact() {
        let mut fb = Forkbase::new(PosFactory(PosParams::default()), 0);
        fb.put("master", entries(0..300)).unwrap();
        fb.fork("master", "doomed").unwrap();
        fb.put("doomed", entries(300..400)).unwrap();
        assert_eq!(fb.branches(), vec!["doomed".to_string(), "master".to_string()]);

        let master_pages = fb.head("master").unwrap().page_set();
        fb.delete_branch("doomed").unwrap();
        assert_eq!(fb.branches(), vec!["master".to_string()]);
        // The surviving branch's page set is bit-identical and fully
        // readable.
        let after = fb.head("master").unwrap().page_set();
        assert_eq!(master_pages.len(), after.len());
        assert_eq!(master_pages.intersection(&after).len(), after.len());
        assert!(fb.get("master", b"key00123").unwrap().is_some());
    }

    #[test]
    fn client_range_cursor_streams_in_key_order() {
        let mut fb = Forkbase::new(PosFactory(PosParams::default()), 1_000);
        fb.put("master", entries(0..2000)).unwrap();
        use std::ops::Bound;
        let window: Vec<Entry> = fb
            .range("master", Bound::Included(b"key00100"), Bound::Excluded(b"key00110"))
            .unwrap()
            .collect::<Result<_>>()
            .unwrap();
        assert_eq!(window.len(), 10);
        assert_eq!(window[0].key.as_ref(), b"key00100");
        // Prefix cursor.
        let pre: Vec<Entry> =
            fb.scan_prefix("master", b"key0003").unwrap().collect::<Result<_>>().unwrap();
        assert_eq!(pre.len(), 10, "key00030..key00039");
        // A bounded window must not pull the whole dataset through the
        // client cache: remote fetches stay far below the page count.
        let (_, fetches, _) = fb.client_stats();
        let total_pages = fb.head("master").unwrap().page_set().len() as u64;
        assert!(fetches < total_pages / 2, "cursor reads fetched {fetches} of {total_pages} pages");
        // An open cursor survives a concurrent branch write (it reads the
        // snapshot it was created on).
        let mut cursor =
            fb.range("master", Bound::Included(b"key01000"), Bound::Excluded(b"key01005")).unwrap();
        let first = cursor.next().unwrap().unwrap();
        fb.put("master", entries(2000..2001)).unwrap();
        let rest: Vec<Entry> = cursor.collect::<Result<_>>().unwrap();
        assert_eq!(first.key.as_ref(), b"key01000");
        assert_eq!(rest.len(), 4);
    }

    #[test]
    fn durable_engine_commits_survive_reopen() {
        use siri_store::FsyncPolicy;
        let dir = std::env::temp_dir()
            .join("siri-forkbase-tests")
            .join(format!("durable-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let opts = FileStoreOptions { fsync: FsyncPolicy::OnCommit, ..FileStoreOptions::default() };

        let root = {
            let mut fb =
                Forkbase::new_durable(PosFactory(PosParams::default()), &dir, opts, 0).unwrap();
            fb.put("master", entries(0..300)).unwrap()
        }; // "process exits" — the commit was fsynced before put returned

        let mut fb =
            Forkbase::new_durable(PosFactory(PosParams::default()), &dir, opts, 0).unwrap();
        fb.open_branch("master", root);
        assert_eq!(fb.head("master").unwrap().len().unwrap(), 300);
        assert_eq!(fb.get("master", b"key00123").unwrap().unwrap().len(), 64);
        // Writes keep flowing after the reopen.
        fb.put("master", entries(300..310)).unwrap();
        assert!(fb.get("master", b"key00305").unwrap().is_some());
    }

    #[test]
    fn noms_engine_writes_one_by_one_same_content() {
        let mut noms = NomsEngine::new(PosFactory(PosParams::noms()), 0);
        let mut fb = Forkbase::new(PosFactory(PosParams::noms()), 0);
        let data = entries(0..200);
        noms.put("master", data.clone()).unwrap();
        fb.put("master", data).unwrap();
        // Structural invariance ⇒ same root despite different batching…
        assert_eq!(noms.engine().head("master").unwrap().root(), fb.head("master").unwrap().root());
        // …but the unbatched path paid many more page writes.
        assert!(
            noms.engine().server_stats().puts > fb.server_stats().puts * 5,
            "noms {} vs forkbase {}",
            noms.engine().server_stats().puts,
            fb.server_stats().puts
        );
    }
}
