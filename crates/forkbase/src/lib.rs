//! A Forkbase-style storage engine over any SIRI index (§5.6).
//!
//! Architecture (matching the paper's single-servlet setup, grown to many
//! concurrent clients):
//!
//! * **writes** execute entirely server-side against the shared page store
//!   ("the write operations will be performed on the server side
//!   completely");
//! * **reads** run client-side through a [`CachingStore`]: pages are pulled
//!   from the server once and cached, so throughput is governed by the
//!   cache hit ratio ("Forkbase caches the nodes at clients after retrieved
//!   from servers");
//! * **branches** are named heads over immutable roots, so forking is
//!   O(1) and history is always intact.
//!
//! ## Concurrency model
//!
//! Every operation takes `&self`: the engine is shared across threads by
//! reference (or `Arc`), not serialized behind one lock. The paper's
//! structures make this nearly free — all data is immutable and
//! content-addressed, so the only mutable state is a *tiny head pointer
//! per branch*:
//!
//! * the branch table is an `RwLock<HashMap<_, Arc<BranchSlot>>>` — taken
//!   briefly to resolve a name to its slot; commits and reads on
//!   *different* branches then proceed on disjoint per-slot locks;
//! * same-branch commits are **optimistic**: build the new version against
//!   the observed head, then compare-and-swap the head under the slot's
//!   write lock (held only for the pointer swap, never during tree
//!   building or I/O). Losing the race re-applies the [`WriteBatch`] on
//!   the fresh head and retries; every lost race means another writer
//!   committed, so the engine is livelock-free by construction. Lost races
//!   surface in [`EngineStats::conflicts`];
//! * client-side views (the decoded-node caches) live one per slot behind
//!   a per-branch mutex, so concurrent readers of different branches never
//!   share a lock either.
//!
//! On a durable server store, commits fsync (per the store's
//! [`siri_store::FsyncPolicy`] — including group commit) *before*
//! publishing the new head: an observable head is always a durable head.
//!
//! [`IndexFactory`] abstracts over which of the four structures backs the
//! store; [`NomsEngine`] wraps the same machinery with Noms' behaviour —
//! Prolly-tree chunking and unbatched, per-record writes — for the
//! Figure 22 comparison.

mod factory;

use std::collections::HashMap;
use std::ops::Bound;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use bytes::Bytes;
use parking_lot::{LockClass, Mutex, RwLock};
use siri_core::{
    merge, merge_with_base, CommitInfo, Entry, EntryCursor, IndexError, MergeOutcome,
    MergeStrategy, Result, SiriIndex, WriteBatch,
};
use siri_crypto::Hash;
use siri_store::{
    CachingStore, FileStore, FileStoreOptions, MemStore, NodeStore, SharedStore, StoreError,
    StoreStats,
};

pub use factory::{IndexFactory, MbtFactory, MptFactory, MvmbFactory, PosFactory};

/// Default modelled cost of one client→server page fetch, in nanoseconds.
/// Roughly a small object read over 1 GbE with kernel overheads — the
/// absolute value only scales Figure 21's y-axis; the crossovers come from
/// hit ratios.
pub const DEFAULT_FETCH_COST_NANOS: u64 = 20_000;

/// Upper bound on optimistic-commit attempts before a commit gives up with
/// [`IndexError::CommitContention`]. Each lost race implies another
/// writer's commit was published, so reaching this bound means the branch
/// absorbed at least this many competing commits while one batch was
/// being rebuilt — pathological contention, not deadlock.
pub const MAX_COMMIT_ATTEMPTS: u32 = 1_000;

/// The effective commit-attempt bound: [`MAX_COMMIT_ATTEMPTS`] unless the
/// `SIRI_MAX_COMMIT_ATTEMPTS` env var overrides it (read once). The
/// override exists for tests that need to force
/// [`IndexError::CommitContention`] deterministically (e.g. with a bound
/// of 1) instead of spinning through a thousand raced rebuilds; values of
/// 0 or garbage fall back to the default.
pub fn max_commit_attempts() -> u32 {
    static BOUND: std::sync::OnceLock<u32> = std::sync::OnceLock::new();
    *BOUND.get_or_init(|| {
        std::env::var("SIRI_MAX_COMMIT_ATTEMPTS")
            .ok()
            .and_then(|v| v.parse::<u32>().ok())
            .filter(|&n| n > 0)
            .unwrap_or(MAX_COMMIT_ATTEMPTS)
    })
}

/// Lock classes for the runtime lock-order tracker (DESIGN.md §9): the
/// engine's documented acquisition order is branch map → slot head →
/// client view → store internals. Debug builds with `SIRI_LOCK_ORDER=1`
/// panic on any out-of-order acquisition.
static BRANCH_MAP_CLASS: LockClass = LockClass::new(10, "forkbase.branch-map");
static SLOT_HEAD_CLASS: LockClass = LockClass::new(20, "forkbase.slot-head");
static CLIENT_VIEW_CLASS: LockClass = LockClass::new(30, "forkbase.client-view");

/// Engine-level commit counters (monotone, relaxed atomics underneath).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Head publications: successful commits and merges across all
    /// branches.
    pub commits: u64,
    /// Optimistic-commit head races lost (each one triggered a rebuild of
    /// the batch against the fresher head). `conflicts / commits` is the
    /// branch-contention ratio; it stays 0 while writers touch disjoint
    /// branches.
    pub conflicts: u64,
}

/// The per-branch mutable state: a head pointer and a client-side view.
///
/// This is the whole trick from the paper's immutability argument: all
/// versions are immutable and shared, so concurrency control reduces to
/// these two tiny pointers, each behind its own branch-local lock. Slots
/// are handed out as `Arc`s — a commit holds the slot, not the branch
/// table, so renames/deletes/creates of *other* branches never block it.
struct BranchSlot<I> {
    /// The authoritative server-side head. The write lock is held only to
    /// compare-and-swap the pointer — never while building a version or
    /// doing I/O — so readers sampling the head are never blocked behind a
    /// tree rebuild.
    head: RwLock<I>,
    /// The persistent client-side view (decoded-node cache above the page
    /// cache), created lazily on first read and re-rooted in place when
    /// the head moves. Per-branch on purpose: readers of different
    /// branches must not serialize on a shared map lock.
    view: Mutex<Option<I>>,
}

impl<I: SiriIndex> BranchSlot<I> {
    fn new(head: I) -> Self {
        BranchSlot {
            head: RwLock::with_class(head, &SLOT_HEAD_CLASS),
            view: Mutex::with_class(None, &CLIENT_VIEW_CLASS),
        }
    }
}

/// A Forkbase-style versioned KV engine backed by index `F::Index`.
///
/// The server-side page store is pluggable: the default is an in-memory
/// [`MemStore`] (the paper's experiments), while
/// [`Forkbase::new_durable`] runs the same engine over a [`FileStore`],
/// fsyncing acknowledged commits per that store's
/// [`siri_store::FsyncPolicy`].
///
/// All operations take `&self`; share the engine across writer and reader
/// threads freely (see the module docs for the locking discipline).
pub struct Forkbase<F: IndexFactory> {
    factory: F,
    server: SharedStore,
    /// Set when the server store is file-backed: the handle the engine
    /// drives durability (fsync-per-commit policy) through.
    durable: Option<Arc<FileStore>>,
    client_store: Arc<CachingStore>,
    /// Branch name → slot. The map lock is only for name resolution and
    /// branch creation/deletion; all per-branch state hides behind the
    /// slot's own locks.
    branches: RwLock<HashMap<String, Arc<BranchSlot<F::Index>>>>,
    commits: AtomicU64,
    conflicts: AtomicU64,
}

impl<F: IndexFactory> Forkbase<F> {
    /// Create an engine with one empty branch `"master"`.
    pub fn new(factory: F, fetch_cost_nanos: u64) -> Self {
        Self::with_server(factory, Arc::new(MemStore::new()), None, fetch_cost_nanos)
    }

    /// An engine over a caller-supplied server store (e.g. the store
    /// `siri::env_store()` selected), with one empty branch `"master"`.
    /// No durability handle is attached — if the store is file-backed the
    /// caller owns the fsync cadence.
    pub fn with_store(factory: F, server: SharedStore, fetch_cost_nanos: u64) -> Self {
        Self::with_server(factory, server, None, fetch_cost_nanos)
    }

    /// An engine whose server store persists to `path` (a [`FileStore`]
    /// directory). Commits are flushed per the options' fsync policy.
    /// Branch heads themselves are in-memory — callers that need them to
    /// survive a restart persist the roots (e.g. a sidecar file, as the
    /// `siri` CLI does) and re-attach with [`Forkbase::open_branch`].
    pub fn new_durable(
        factory: F,
        path: impl AsRef<std::path::Path>,
        opts: FileStoreOptions,
        fetch_cost_nanos: u64,
    ) -> std::io::Result<Self> {
        let (fs, _) = FileStore::open_with(path, opts)?;
        let fs = Arc::new(fs);
        Ok(Self::with_server(factory, fs.clone(), Some(fs), fetch_cost_nanos))
    }

    fn with_server(
        factory: F,
        server: Arc<dyn NodeStore>,
        durable: Option<Arc<FileStore>>,
        fetch_cost_nanos: u64,
    ) -> Self {
        let server: SharedStore = server;
        let client_store = Arc::new(CachingStore::new(server.clone(), fetch_cost_nanos));
        let mut branches = HashMap::new();
        branches
            .insert("master".to_string(), Arc::new(BranchSlot::new(factory.empty(server.clone()))));
        Forkbase {
            factory,
            server,
            durable,
            client_store,
            branches: RwLock::with_class(branches, &BRANCH_MAP_CLASS),
            commits: AtomicU64::new(0),
            conflicts: AtomicU64::new(0),
        }
    }

    /// Resolve a branch name to its slot. Holding the returned `Arc` keeps
    /// the slot alive even across a concurrent `delete_branch`.
    fn slot(&self, branch: &str) -> Result<Arc<BranchSlot<F::Index>>> {
        self.branches.read().get(branch).cloned().ok_or(IndexError::Unsupported("unknown branch"))
    }

    /// Attach a branch head at an existing root (e.g. one recovered from a
    /// durable store's sidecar after a restart). Replaces the branch if it
    /// exists.
    pub fn open_branch(&self, branch: &str, root: Hash) {
        let index = self.factory.open(self.server.clone(), root);
        self.branches.write().insert(branch.to_string(), Arc::new(BranchSlot::new(index)));
    }

    /// Flush the durable store per its fsync policy; pages written by an
    /// un-flushed version are orphans for the next sweep.
    fn flush_durable(&self) -> Result<()> {
        if let Some(fs) = &self.durable {
            fs.note_commit().map_err(|e| IndexError::Store(StoreError::io("fsync", e)))?;
        }
        Ok(())
    }

    /// The one optimistic publish-retry loop behind commits *and* merges:
    /// `build` the next version against the observed head, flush
    /// durability, then compare-and-swap the head under the slot's write
    /// lock (held only for the pointer swap). A lost race re-`build`s
    /// against the fresher head, bounded by [`MAX_COMMIT_ATTEMPTS`].
    ///
    /// Two details worth their lines: the head is cheaply re-checked
    /// *before* the flush, so an attempt that already lost its race skips
    /// a doomed fsync (under contention that halves the flush traffic);
    /// and the fsync strictly precedes publication, so any head a reader
    /// can observe — and anything this method returns — is durable. A
    /// failed flush aborts with the head untouched.
    ///
    /// Returns `build`'s payload plus the number of races lost.
    fn publish<T>(
        &self,
        slot: &BranchSlot<F::Index>,
        mut build: impl FnMut(&F::Index) -> Result<(F::Index, T)>,
    ) -> Result<(T, u32)> {
        let mut attempts = 0u32;
        loop {
            let base = slot.head.read().clone();
            let parent = base.root();
            let (next, payload) = build(&base)?;
            if slot.head.read().root() == parent {
                self.flush_durable()?;
                let mut head = slot.head.write();
                if head.root() == parent {
                    *head = next;
                    self.commits.fetch_add(1, Ordering::Relaxed);
                    return Ok((payload, attempts));
                }
            }
            // Lost the race: someone else's publication moved the head
            // while we were building. Rebuild on top of theirs; the losing
            // attempt's pages are unreferenced orphans for the next sweep.
            self.conflicts.fetch_add(1, Ordering::Relaxed);
            attempts += 1;
            if attempts >= max_commit_attempts() {
                return Err(IndexError::CommitContention { attempts });
            }
        }
    }

    /// Server-side atomic write batch (puts *and* deletes) to a branch;
    /// returns the new root digest. The primary write path — `put` and
    /// `delete` are sugar over it; [`Forkbase::commit_with_info`] exposes
    /// the full commit receipt.
    pub fn commit(&self, branch: &str, batch: WriteBatch) -> Result<Hash> {
        self.commit_with_info(branch, batch).map(|info| info.root)
    }

    /// [`Forkbase::commit`], returning the full [`CommitInfo`] receipt —
    /// the observed parent head, the published root, and how many head
    /// races were lost on the way. The optimistic-concurrency mechanics
    /// (build → flush → CAS, with bounded re-apply on lost races) live in
    /// the shared publish loop; see its docs for the ordering guarantees.
    pub fn commit_with_info(&self, branch: &str, batch: WriteBatch) -> Result<CommitInfo> {
        let slot = self.slot(branch)?;
        let ((parent, root), retries) = self.publish(&slot, |base| {
            let parent = base.root();
            let mut work = base.clone();
            let root = work.commit(batch.clone())?;
            Ok((work, (parent, root)))
        })?;
        Ok(CommitInfo { parent, root, retries })
    }

    /// Server-side batched insert to a branch; returns the new root digest.
    pub fn put(&self, branch: &str, entries: Vec<Entry>) -> Result<Hash> {
        self.commit(branch, WriteBatch::from_entries(entries))
    }

    /// Delete keys from a branch; returns the new root digest.
    pub fn delete(
        &self,
        branch: &str,
        keys: impl IntoIterator<Item = impl Into<Bytes>>,
    ) -> Result<Hash> {
        let mut batch = WriteBatch::new();
        for key in keys {
            batch.delete(key);
        }
        self.commit(branch, batch)
    }

    /// The persistent client-side view of a branch, read through the page
    /// cache *and* the view's decoded-node cache. When the branch head has
    /// moved the view is re-rooted in place, keeping both caches warm
    /// (adjacent versions share most pages). The view lock is per-branch
    /// and held only to clone the handle out — never during traversal —
    /// so concurrent readers neither serialize across branches nor block
    /// each other for long within one.
    fn client_view(&self, branch: &str) -> Result<F::Index> {
        let slot = self.slot(branch)?;
        let root = slot.head.read().root();
        let mut view = slot.view.lock();
        Ok(match view.as_mut() {
            Some(v) => {
                if v.root() != root {
                    *v = v.at_root(root);
                }
                v.clone()
            }
            None => {
                let client_store: SharedStore = self.client_store.clone();
                let v = self.factory.open(client_store, root);
                *view = Some(v.clone());
                v
            }
        })
    }

    /// Client-side point read through the persistent branch view's two
    /// cache layers (decoded nodes above, pages beneath).
    pub fn get(&self, branch: &str, key: &[u8]) -> Result<Option<Bytes>> {
        self.client_view(branch)?.get(key)
    }

    /// Client-side streaming range read: a lazy cursor over the branch
    /// head, walking leaf-by-leaf through the client's caches. The cursor
    /// snapshots the head root at creation — concurrent writes to the
    /// branch do not disturb an open cursor (immutability in action).
    pub fn range(
        &self,
        branch: &str,
        start: Bound<&[u8]>,
        end: Bound<&[u8]>,
    ) -> Result<EntryCursor> {
        Ok(self.client_view(branch)?.range(start, end))
    }

    /// Client-side prefix cursor (sugar over [`Forkbase::range`]).
    pub fn scan_prefix(&self, branch: &str, prefix: &[u8]) -> Result<EntryCursor> {
        Ok(self.client_view(branch)?.scan_prefix(prefix))
    }

    /// Read bypassing the cache (server-side read, for comparisons).
    pub fn get_uncached(&self, branch: &str, key: &[u8]) -> Result<Option<Bytes>> {
        self.slot(branch)?.head.read().get(key)
    }

    /// Fork `from` into a new branch `to` — O(1), pages fully shared.
    /// Replaces `to` if it exists.
    pub fn fork(&self, from: &str, to: &str) -> Result<()> {
        let head = self.slot(from)?.head.read().clone();
        self.branches.write().insert(to.to_string(), Arc::new(BranchSlot::new(head)));
        Ok(())
    }

    /// Drop a branch head (and its client view). Pages stay in the store —
    /// they are content-addressed and may be shared with other branches;
    /// reclaiming unreachable ones is the offline GC's job. Other branches'
    /// page sets are untouched by construction. A commit racing the
    /// deletion may still publish into the orphaned slot; its version
    /// simply becomes unreachable with the branch, like a write to a file
    /// unlinked underneath it.
    pub fn delete_branch(&self, branch: &str) -> Result<()> {
        self.branches
            .write()
            .remove(branch)
            .map(drop)
            .ok_or(IndexError::Unsupported("unknown branch"))
    }

    /// All branch names, sorted.
    pub fn branches(&self) -> Vec<String> {
        let mut names: Vec<String> = self.branches.read().keys().cloned().collect();
        names.sort_unstable();
        names
    }

    /// Merge branch `other` into `into` (paper §4.1.4 semantics). The
    /// merge is computed against a snapshot of both heads and published
    /// with the same compare-and-swap as commits: a concurrent commit to
    /// `into` forces a re-merge rather than being silently overwritten.
    pub fn merge_branches(
        &self,
        into: &str,
        other: &str,
        strategy: MergeStrategy,
    ) -> Result<MergeOutcome<F::Index>> {
        let into_slot = self.slot(into)?;
        let right = self.slot(other)?.head.read().clone();
        let (outcome, _) = self.publish(&into_slot, |left| {
            let outcome = merge(left, &right, strategy)?;
            Ok((outcome.merged.clone(), outcome))
        })?;
        Ok(outcome)
    }

    /// Three-way merge of `other` into `into` from a common base version —
    /// usually the root `other` was forked at. Unlike [`Forkbase::merge_branches`]
    /// (a two-way union), this sees deletions made on either branch since
    /// the base and propagates them (edit-vs-delete conflicts resolve per
    /// `strategy`).
    pub fn merge_branches_with_base(
        &self,
        into: &str,
        other: &str,
        base_root: Hash,
        strategy: MergeStrategy,
    ) -> Result<MergeOutcome<F::Index>> {
        let into_slot = self.slot(into)?;
        let right = self.slot(other)?.head.read().clone();
        let (outcome, _) = self.publish(&into_slot, |left| {
            // The base is just another version in the shared store;
            // re-rooting the left handle reads it through the same caches.
            let base = left.at_root(base_root);
            let outcome = merge_with_base(&base, left, &right, strategy)?;
            Ok((outcome.merged.clone(), outcome))
        })?;
        Ok(outcome)
    }

    /// The branch's current head handle (server-side view) — an owned
    /// snapshot: immutable versions make a clone of the handle a
    /// point-in-time view of the branch.
    pub fn head(&self, branch: &str) -> Option<F::Index> {
        Some(self.branches.read().get(branch)?.head.read().clone())
    }

    /// Client cache statistics: (hits, remote fetches, synthetic
    /// nanoseconds charged).
    pub fn client_stats(&self) -> (u64, u64, u64) {
        (
            self.client_store.local_hits(),
            self.client_store.remote_fetches(),
            self.client_store.synthetic_nanos(),
        )
    }

    pub fn client_hit_ratio(&self) -> f64 {
        self.client_store.hit_ratio()
    }

    /// Engine-level commit/conflict counters (the optimistic-concurrency
    /// scoreboard).
    pub fn engine_stats(&self) -> EngineStats {
        EngineStats {
            commits: self.commits.load(Ordering::Relaxed),
            conflicts: self.conflicts.load(Ordering::Relaxed),
        }
    }

    /// Reset the client cache (a "fresh client"): drops the cached pages
    /// *and* the per-branch client views with their decoded-node caches.
    pub fn reset_client(&self) {
        self.client_store.clear();
        for slot in self.branches.read().values() {
            *slot.view.lock() = None;
        }
    }

    /// Server storage counters.
    pub fn server_stats(&self) -> StoreStats {
        self.server.stats()
    }
}

/// Noms-style engine: same client/server split, but writes are applied one
/// record at a time ("top-down building process" per §5.6.2 — no batch
/// amortization). Pair it with [`PosFactory::noms`] to get Prolly-tree
/// chunking with sliding-window hashing in internal layers.
pub struct NomsEngine<F: IndexFactory> {
    inner: Forkbase<F>,
}

impl<F: IndexFactory> NomsEngine<F> {
    pub fn new(factory: F, fetch_cost_nanos: u64) -> Self {
        NomsEngine { inner: Forkbase::new(factory, fetch_cost_nanos) }
    }

    /// Unbatched write path: one tree rebuild per record.
    pub fn put(&self, branch: &str, entries: Vec<Entry>) -> Result<Hash> {
        let mut root = Hash::ZERO;
        for e in entries {
            root = self.inner.put(branch, vec![e])?;
        }
        Ok(root)
    }

    pub fn get(&self, branch: &str, key: &[u8]) -> Result<Option<Bytes>> {
        self.inner.get(branch, key)
    }

    pub fn engine(&self) -> &Forkbase<F> {
        &self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use siri_pos_tree::PosParams;

    fn entries(range: std::ops::Range<usize>) -> Vec<Entry> {
        range
            .map(|i| Entry::new(format!("key{i:05}").into_bytes(), vec![(i % 251) as u8; 64]))
            .collect()
    }

    #[test]
    fn put_get_round_trip() {
        let fb = Forkbase::new(PosFactory(PosParams::default()), 1_000);
        fb.put("master", entries(0..500)).unwrap();
        assert_eq!(fb.get("master", b"key00123").unwrap().unwrap().len(), 64);
        assert_eq!(fb.get("master", b"missing").unwrap(), None);
    }

    #[test]
    fn client_cache_warms_up() {
        let fb = Forkbase::new(PosFactory(PosParams::default()), 1_000);
        fb.put("master", entries(0..2000)).unwrap();
        fb.get("master", b"key00100").unwrap();
        let (_, misses_cold, nanos_cold) = fb.client_stats();
        assert!(misses_cold > 0, "cold read must fetch the path");
        assert_eq!(nanos_cold, misses_cold * 1_000);
        // Re-reading the same key costs nothing remotely — absorbed by the
        // client's caches (decoded nodes first, pages beneath).
        fb.get("master", b"key00100").unwrap();
        let (_, misses, nanos) = fb.client_stats();
        assert_eq!(misses, misses_cold, "second read must not fetch");
        assert_eq!(nanos, nanos_cold, "no synthetic cost on a warm read");
        // A key in a distant leaf shares the internal spine: only its
        // leaf-side pages are fetched, strictly fewer than the cold path.
        fb.get("master", b"key01900").unwrap();
        let (_, misses_2, _) = fb.client_stats();
        assert!(misses_2 > misses, "a new leaf must fetch");
        assert!(misses_2 - misses < misses_cold, "the shared spine must not refetch");
    }

    #[test]
    fn client_view_persists_across_reads() {
        let fb = Forkbase::new(PosFactory(PosParams::default()), 1_000);
        fb.put("master", entries(0..2000)).unwrap();
        fb.get("master", b"key00100").unwrap();
        let (hits_1, misses_1, _) = fb.client_stats();
        // The second identical read is served entirely by the persistent
        // view's decoded-node cache: it never reaches the page cache, so
        // neither page-cache counter moves.
        fb.get("master", b"key00100").unwrap();
        let (hits_2, misses_2, _) = fb.client_stats();
        assert_eq!((hits_1, misses_1), (hits_2, misses_2), "node cache must absorb the read");
        // A write moves the head; the re-rooted view still answers
        // correctly and reuses the shared spine.
        fb.put("master", entries(2000..2001)).unwrap();
        assert!(fb.get("master", b"key02000").unwrap().is_some());
        assert!(fb.get("master", b"key00100").unwrap().is_some());
        // A fresh client starts cold again.
        fb.reset_client();
        let (_, misses_before, _) = fb.client_stats();
        fb.get("master", b"key00100").unwrap();
        let (_, misses_after, _) = fb.client_stats();
        assert!(misses_after > misses_before, "reset must drop both cache layers");
    }

    #[test]
    fn forks_share_pages_and_diverge() {
        let fb = Forkbase::new(PosFactory(PosParams::default()), 0);
        fb.put("master", entries(0..300)).unwrap();
        fb.fork("master", "feature").unwrap();
        fb.put("feature", entries(300..350)).unwrap();
        assert_eq!(fb.get("master", b"key00320").unwrap(), None);
        assert!(fb.get("feature", b"key00320").unwrap().is_some());
        // Page sharing between branches.
        let m = fb.head("master").unwrap().page_set();
        let f = fb.head("feature").unwrap().page_set();
        assert!(!m.intersection(&f).is_empty());
    }

    #[test]
    fn merge_branches_combines_and_detects_conflicts() {
        let fb = Forkbase::new(PosFactory(PosParams::default()), 0);
        fb.put("master", entries(0..100)).unwrap();
        fb.fork("master", "other").unwrap();
        fb.put("other", entries(100..120)).unwrap();
        let outcome = fb.merge_branches("master", "other", MergeStrategy::Strict).unwrap();
        assert_eq!(outcome.added_from_right, 20);
        assert_eq!(fb.head("master").unwrap().len().unwrap(), 120);

        // Now a real conflict.
        fb.put("other", vec![Entry::new(b"key00005".to_vec(), b"theirs".to_vec())]).unwrap();
        fb.put("master", vec![Entry::new(b"key00005".to_vec(), b"ours".to_vec())]).unwrap();
        let err = fb.merge_branches("master", "other", MergeStrategy::Strict).unwrap_err();
        assert!(matches!(err, IndexError::MergeConflict { .. }));
        // Resolvable with a policy.
        let outcome = fb.merge_branches("master", "other", MergeStrategy::PreferRight).unwrap();
        assert_eq!(outcome.conflicts_resolved, 1);
        assert_eq!(fb.get_uncached("master", b"key00005").unwrap().unwrap().as_ref(), b"theirs");
    }

    #[test]
    fn unknown_branch_is_an_error() {
        let fb = Forkbase::new(PosFactory(PosParams::default()), 0);
        assert!(fb.put("ghost", entries(0..1)).is_err());
        assert!(fb.get("ghost", b"k").is_err());
        assert!(fb.delete_branch("ghost").is_err());
        assert!(fb.range("ghost", std::ops::Bound::Unbounded, std::ops::Bound::Unbounded).is_err());
    }

    #[test]
    fn branch_deletes_flow_through_write_batches() {
        let fb = Forkbase::new(PosFactory(PosParams::default()), 0);
        fb.put("master", entries(0..100)).unwrap();
        let before = fb.head("master").unwrap().root();
        fb.delete("master", [&b"key00042"[..]]).unwrap();
        assert_eq!(fb.get("master", b"key00042").unwrap(), None);
        assert_ne!(fb.head("master").unwrap().root(), before);
        // Mixed batch through commit.
        let mut batch = WriteBatch::new();
        batch.put(&b"zz-new"[..], &b"v"[..]).delete(&b"key00001"[..]);
        fb.commit("master", batch).unwrap();
        assert!(fb.get("master", b"zz-new").unwrap().is_some());
        assert_eq!(fb.get("master", b"key00001").unwrap(), None);
        // Put-back restores the original digest (structural invariance).
        let mut batch = WriteBatch::new();
        batch.delete(&b"zz-new"[..]);
        for i in [1usize, 42] {
            let e = &entries(i..i + 1)[0];
            batch.put(e.key.clone(), e.value.clone());
        }
        fb.commit("master", batch).unwrap();
        assert_eq!(fb.head("master").unwrap().root(), before);
    }

    #[test]
    fn three_way_merge_propagates_branch_deletions() {
        let fb = Forkbase::new(PosFactory(PosParams::default()), 0);
        fb.put("master", entries(0..100)).unwrap();
        let base_root = fb.head("master").unwrap().root();
        fb.fork("master", "cleaning").unwrap();
        // The branch deletes 10 records and edits one; master stays put.
        fb.delete("cleaning", (0..10).map(|i| format!("key{i:05}").into_bytes())).unwrap();
        fb.put("cleaning", vec![Entry::new(b"key00050".to_vec(), b"edited".to_vec())]).unwrap();

        // Three-way merge from the fork point propagates the deletions
        // (the two-way union merge, by documented construction, cannot).
        let outcome = fb
            .merge_branches_with_base("master", "cleaning", base_root, MergeStrategy::Strict)
            .unwrap();
        assert_eq!(outcome.removed_by_right, 10);
        assert_eq!(outcome.added_from_right, 1, "the edit applies cleanly");
        assert_eq!(fb.head("master").unwrap().len().unwrap(), 90);
        assert_eq!(fb.get_uncached("master", b"key00005").unwrap(), None);
        assert_eq!(fb.get_uncached("master", b"key00050").unwrap().unwrap().as_ref(), b"edited");

        // Edit-vs-delete is a conflict under Strict, resolvable by policy.
        let base2 = fb.head("master").unwrap().root();
        fb.fork("master", "hotfix").unwrap();
        fb.delete("hotfix", [&b"key00060"[..]]).unwrap();
        fb.put("master", vec![Entry::new(b"key00060".to_vec(), b"kept".to_vec())]).unwrap();
        let err = fb
            .merge_branches_with_base("master", "hotfix", base2, MergeStrategy::Strict)
            .unwrap_err();
        assert!(matches!(err, IndexError::MergeConflict { .. }));
        let outcome = fb
            .merge_branches_with_base("master", "hotfix", base2, MergeStrategy::PreferRight)
            .unwrap();
        assert_eq!(outcome.conflicts_resolved, 1);
        assert_eq!(fb.get_uncached("master", b"key00060").unwrap(), None, "delete won");
        // Both sides deleting the same key converges without conflict.
        let base3 = fb.head("master").unwrap().root();
        fb.fork("master", "twin").unwrap();
        fb.delete("twin", [&b"key00070"[..]]).unwrap();
        fb.delete("master", [&b"key00070"[..]]).unwrap();
        let outcome =
            fb.merge_branches_with_base("master", "twin", base3, MergeStrategy::Strict).unwrap();
        assert_eq!(outcome.conflicts_resolved, 0);
        assert_eq!(outcome.removed_by_right, 0, "already gone on the left");
    }

    #[test]
    fn delete_branch_leaves_other_branches_pages_intact() {
        let fb = Forkbase::new(PosFactory(PosParams::default()), 0);
        fb.put("master", entries(0..300)).unwrap();
        fb.fork("master", "doomed").unwrap();
        fb.put("doomed", entries(300..400)).unwrap();
        assert_eq!(fb.branches(), vec!["doomed".to_string(), "master".to_string()]);

        let master_pages = fb.head("master").unwrap().page_set();
        fb.delete_branch("doomed").unwrap();
        assert_eq!(fb.branches(), vec!["master".to_string()]);
        // The surviving branch's page set is bit-identical and fully
        // readable.
        let after = fb.head("master").unwrap().page_set();
        assert_eq!(master_pages.len(), after.len());
        assert_eq!(master_pages.intersection(&after).len(), after.len());
        assert!(fb.get("master", b"key00123").unwrap().is_some());
    }

    #[test]
    fn client_range_cursor_streams_in_key_order() {
        let fb = Forkbase::new(PosFactory(PosParams::default()), 1_000);
        fb.put("master", entries(0..2000)).unwrap();
        use std::ops::Bound;
        let window: Vec<Entry> = fb
            .range("master", Bound::Included(b"key00100"), Bound::Excluded(b"key00110"))
            .unwrap()
            .collect::<Result<_>>()
            .unwrap();
        assert_eq!(window.len(), 10);
        assert_eq!(window[0].key.as_ref(), b"key00100");
        // Prefix cursor.
        let pre: Vec<Entry> =
            fb.scan_prefix("master", b"key0003").unwrap().collect::<Result<_>>().unwrap();
        assert_eq!(pre.len(), 10, "key00030..key00039");
        // A bounded window must not pull the whole dataset through the
        // client cache: remote fetches stay far below the page count.
        let (_, fetches, _) = fb.client_stats();
        let total_pages = fb.head("master").unwrap().page_set().len() as u64;
        assert!(fetches < total_pages / 2, "cursor reads fetched {fetches} of {total_pages} pages");
        // An open cursor survives a concurrent branch write (it reads the
        // snapshot it was created on).
        let mut cursor =
            fb.range("master", Bound::Included(b"key01000"), Bound::Excluded(b"key01005")).unwrap();
        let first = cursor.next().unwrap().unwrap();
        fb.put("master", entries(2000..2001)).unwrap();
        let rest: Vec<Entry> = cursor.collect::<Result<_>>().unwrap();
        assert_eq!(first.key.as_ref(), b"key01000");
        assert_eq!(rest.len(), 4);
    }

    #[test]
    fn durable_engine_commits_survive_reopen() {
        use siri_store::FsyncPolicy;
        let dir = std::env::temp_dir()
            .join("siri-forkbase-tests")
            .join(format!("durable-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let opts = FileStoreOptions { fsync: FsyncPolicy::OnCommit, ..FileStoreOptions::default() };

        let root = {
            let fb =
                Forkbase::new_durable(PosFactory(PosParams::default()), &dir, opts, 0).unwrap();
            fb.put("master", entries(0..300)).unwrap()
        }; // "process exits" — the commit was fsynced before put returned

        let fb = Forkbase::new_durable(PosFactory(PosParams::default()), &dir, opts, 0).unwrap();
        fb.open_branch("master", root);
        assert_eq!(fb.head("master").unwrap().len().unwrap(), 300);
        assert_eq!(fb.get("master", b"key00123").unwrap().unwrap().len(), 64);
        // Writes keep flowing after the reopen.
        fb.put("master", entries(300..310)).unwrap();
        assert!(fb.get("master", b"key00305").unwrap().is_some());
    }

    #[test]
    fn concurrent_commits_to_disjoint_branches_never_conflict() {
        let fb = Arc::new(Forkbase::new(PosFactory(PosParams::default()), 0));
        for t in 0..4 {
            fb.fork("master", &format!("b{t}")).unwrap();
        }
        std::thread::scope(|s| {
            for t in 0..4usize {
                let fb = Arc::clone(&fb);
                s.spawn(move || {
                    let branch = format!("b{t}");
                    for k in 0..10usize {
                        let e = Entry::new(
                            format!("t{t}-k{k:03}").into_bytes(),
                            format!("v{t}-{k}").into_bytes(),
                        );
                        fb.put(&branch, vec![e]).unwrap();
                    }
                });
            }
        });
        let stats = fb.engine_stats();
        assert_eq!(stats.commits, 40);
        assert_eq!(stats.conflicts, 0, "disjoint branches must not contend");
        for t in 0..4 {
            assert_eq!(fb.head(&format!("b{t}")).unwrap().len().unwrap(), 10);
        }
    }

    #[test]
    fn contended_commits_all_land_exactly_once() {
        let fb = Arc::new(Forkbase::new(PosFactory(PosParams::default()), 0));
        std::thread::scope(|s| {
            for t in 0..4usize {
                let fb = Arc::clone(&fb);
                s.spawn(move || {
                    for k in 0..15usize {
                        let e = Entry::new(
                            format!("t{t}-k{k:03}").into_bytes(),
                            format!("v{t}-{k}").into_bytes(),
                        );
                        let info = fb.commit_with_info("master", WriteBatch::from_entries(vec![e]));
                        let info = info.unwrap();
                        assert_ne!(info.parent, info.root, "a put must move the head");
                    }
                });
            }
        });
        let stats = fb.engine_stats();
        assert_eq!(stats.commits, 60);
        let head = fb.head("master").unwrap();
        assert_eq!(head.len().unwrap(), 60, "every batch applied exactly once");
        for t in 0..4 {
            for k in 0..15 {
                let key = format!("t{t}-k{k:03}");
                assert_eq!(
                    fb.get_uncached("master", key.as_bytes()).unwrap().as_deref(),
                    Some(format!("v{t}-{k}").as_bytes()),
                );
            }
        }
    }

    #[test]
    fn noms_engine_writes_one_by_one_same_content() {
        let noms = NomsEngine::new(PosFactory(PosParams::noms()), 0);
        let fb = Forkbase::new(PosFactory(PosParams::noms()), 0);
        let data = entries(0..200);
        noms.put("master", data.clone()).unwrap();
        fb.put("master", data).unwrap();
        // Structural invariance ⇒ same root despite different batching…
        assert_eq!(noms.engine().head("master").unwrap().root(), fb.head("master").unwrap().root());
        // …but the unbatched path paid many more page writes.
        assert!(
            noms.engine().server_stats().puts > fb.server_stats().puts * 5,
            "noms {} vs forkbase {}",
            noms.engine().server_stats().puts,
            fb.server_stats().puts
        );
    }
}
