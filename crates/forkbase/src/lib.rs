//! A Forkbase-style storage engine over any SIRI index (§5.6).
//!
//! Architecture (matching the paper's single-servlet/single-client setup):
//!
//! * **writes** execute entirely server-side against the shared page store
//!   ("the write operations will be performed on the server side
//!   completely");
//! * **reads** run client-side through a [`CachingStore`]: pages are pulled
//!   from the server once and cached, so throughput is governed by the
//!   cache hit ratio ("Forkbase caches the nodes at clients after retrieved
//!   from servers");
//! * **branches** are named heads over immutable roots, so forking is
//!   O(1) and history is always intact.
//!
//! [`IndexFactory`] abstracts over which of the four structures backs the
//! store; [`NomsEngine`] wraps the same machinery with Noms' behaviour —
//! Prolly-tree chunking and unbatched, per-record writes — for the
//! Figure 22 comparison.

mod factory;

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use bytes::Bytes;
use siri_core::{merge, Entry, IndexError, MergeOutcome, MergeStrategy, Result, SiriIndex};
use siri_crypto::Hash;
use siri_store::{CachingStore, MemStore, NodeStore, SharedStore, StoreStats};

pub use factory::{IndexFactory, MbtFactory, MptFactory, MvmbFactory, PosFactory};

/// Default modelled cost of one client→server page fetch, in nanoseconds.
/// Roughly a small object read over 1 GbE with kernel overheads — the
/// absolute value only scales Figure 21's y-axis; the crossovers come from
/// hit ratios.
pub const DEFAULT_FETCH_COST_NANOS: u64 = 20_000;

/// A Forkbase-style versioned KV engine backed by index `F::Index`.
pub struct Forkbase<F: IndexFactory> {
    factory: F,
    server: Arc<MemStore>,
    client_store: Arc<CachingStore>,
    branches: HashMap<String, F::Index>,
    /// Per-branch client-side handles, kept across reads so the decoded-
    /// node cache inside each handle survives and actually earns hits.
    /// Re-rooted (`SiriIndex::at_root`, cache preserved) when the branch
    /// head moves.
    client_views: Mutex<HashMap<String, F::Index>>,
}

impl<F: IndexFactory> Forkbase<F> {
    /// Create an engine with one empty branch `"master"`.
    pub fn new(factory: F, fetch_cost_nanos: u64) -> Self {
        let server = Arc::new(MemStore::new());
        let server_shared: SharedStore = server.clone();
        let client_store = Arc::new(CachingStore::new(server_shared.clone(), fetch_cost_nanos));
        let mut branches = HashMap::new();
        branches.insert("master".to_string(), factory.empty(server_shared));
        Forkbase {
            factory,
            server,
            client_store,
            branches,
            client_views: Mutex::new(HashMap::new()),
        }
    }

    /// Server-side batched write to a branch; returns the new root digest.
    pub fn put(&mut self, branch: &str, entries: Vec<Entry>) -> Result<Hash> {
        let index =
            self.branches.get_mut(branch).ok_or(IndexError::Unsupported("unknown branch"))?;
        index.batch_insert(entries)?;
        Ok(index.root())
    }

    /// Client-side read through the page cache *and* the client view's
    /// decoded-node cache. The view persists across reads; when the branch
    /// head has moved it is re-rooted in place, keeping both caches warm
    /// (adjacent versions share most pages).
    pub fn get(&self, branch: &str, key: &[u8]) -> Result<Option<Bytes>> {
        let head = self.branches.get(branch).ok_or(IndexError::Unsupported("unknown branch"))?;
        let root = head.root();
        // Clone the handle out and drop the lock before traversing: handles
        // are cheap (store + root + Arc'd cache) and concurrent readers
        // must not serialize on the view map.
        let view = {
            let mut views = self.client_views.lock().unwrap_or_else(|e| e.into_inner());
            match views.get_mut(branch) {
                Some(view) => {
                    if view.root() != root {
                        *view = view.at_root(root);
                    }
                    view.clone()
                }
                None => {
                    let client_store: SharedStore = self.client_store.clone();
                    let view = self.factory.open(client_store, root);
                    views.insert(branch.to_string(), view.clone());
                    view
                }
            }
        };
        view.get(key)
    }

    /// Read bypassing the cache (server-side read, for comparisons).
    pub fn get_uncached(&self, branch: &str, key: &[u8]) -> Result<Option<Bytes>> {
        let index = self.branches.get(branch).ok_or(IndexError::Unsupported("unknown branch"))?;
        index.get(key)
    }

    /// Fork `from` into a new branch `to` — O(1), pages fully shared.
    pub fn fork(&mut self, from: &str, to: &str) -> Result<()> {
        let index =
            self.branches.get(from).ok_or(IndexError::Unsupported("unknown branch"))?.clone();
        self.branches.insert(to.to_string(), index);
        Ok(())
    }

    /// Merge branch `other` into `into` (paper §4.1.4 semantics).
    pub fn merge_branches(
        &mut self,
        into: &str,
        other: &str,
        strategy: MergeStrategy,
    ) -> Result<MergeOutcome<F::Index>> {
        let left = self.branches.get(into).ok_or(IndexError::Unsupported("unknown branch"))?;
        let right = self.branches.get(other).ok_or(IndexError::Unsupported("unknown branch"))?;
        let outcome = merge(left, right, strategy)?;
        self.branches.insert(into.to_string(), outcome.merged.clone());
        Ok(outcome)
    }

    /// The branch's current index handle (server-side view).
    pub fn head(&self, branch: &str) -> Option<&F::Index> {
        self.branches.get(branch)
    }

    pub fn branch_names(&self) -> Vec<&str> {
        self.branches.keys().map(|s| s.as_str()).collect()
    }

    /// Client cache statistics: (hits, remote fetches, synthetic
    /// nanoseconds charged).
    pub fn client_stats(&self) -> (u64, u64, u64) {
        (
            self.client_store.local_hits(),
            self.client_store.remote_fetches(),
            self.client_store.synthetic_nanos(),
        )
    }

    pub fn client_hit_ratio(&self) -> f64 {
        self.client_store.hit_ratio()
    }

    /// Reset the client cache (a "fresh client"): drops the cached pages
    /// *and* the per-branch client views with their decoded-node caches.
    pub fn reset_client(&self) {
        self.client_store.clear();
        self.client_views.lock().unwrap_or_else(|e| e.into_inner()).clear();
    }

    /// Server storage counters.
    pub fn server_stats(&self) -> StoreStats {
        self.server.stats()
    }
}

/// Noms-style engine: same client/server split, but writes are applied one
/// record at a time ("top-down building process" per §5.6.2 — no batch
/// amortization). Pair it with [`PosFactory::noms`] to get Prolly-tree
/// chunking with sliding-window hashing in internal layers.
pub struct NomsEngine<F: IndexFactory> {
    inner: Forkbase<F>,
}

impl<F: IndexFactory> NomsEngine<F> {
    pub fn new(factory: F, fetch_cost_nanos: u64) -> Self {
        NomsEngine { inner: Forkbase::new(factory, fetch_cost_nanos) }
    }

    /// Unbatched write path: one tree rebuild per record.
    pub fn put(&mut self, branch: &str, entries: Vec<Entry>) -> Result<Hash> {
        let mut root = Hash::ZERO;
        for e in entries {
            root = self.inner.put(branch, vec![e])?;
        }
        Ok(root)
    }

    pub fn get(&self, branch: &str, key: &[u8]) -> Result<Option<Bytes>> {
        self.inner.get(branch, key)
    }

    pub fn engine(&self) -> &Forkbase<F> {
        &self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use siri_pos_tree::PosParams;

    fn entries(range: std::ops::Range<usize>) -> Vec<Entry> {
        range
            .map(|i| Entry::new(format!("key{i:05}").into_bytes(), vec![(i % 251) as u8; 64]))
            .collect()
    }

    #[test]
    fn put_get_round_trip() {
        let mut fb = Forkbase::new(PosFactory(PosParams::default()), 1_000);
        fb.put("master", entries(0..500)).unwrap();
        assert_eq!(fb.get("master", b"key00123").unwrap().unwrap().len(), 64);
        assert_eq!(fb.get("master", b"missing").unwrap(), None);
    }

    #[test]
    fn client_cache_warms_up() {
        let mut fb = Forkbase::new(PosFactory(PosParams::default()), 1_000);
        fb.put("master", entries(0..2000)).unwrap();
        fb.get("master", b"key00100").unwrap();
        let (_, misses_cold, nanos_cold) = fb.client_stats();
        assert!(misses_cold > 0, "cold read must fetch the path");
        assert_eq!(nanos_cold, misses_cold * 1_000);
        // Re-reading the same key costs nothing remotely — absorbed by the
        // client's caches (decoded nodes first, pages beneath).
        fb.get("master", b"key00100").unwrap();
        let (_, misses, nanos) = fb.client_stats();
        assert_eq!(misses, misses_cold, "second read must not fetch");
        assert_eq!(nanos, nanos_cold, "no synthetic cost on a warm read");
        // A key in a distant leaf shares the internal spine: only its
        // leaf-side pages are fetched, strictly fewer than the cold path.
        fb.get("master", b"key01900").unwrap();
        let (_, misses_2, _) = fb.client_stats();
        assert!(misses_2 > misses, "a new leaf must fetch");
        assert!(misses_2 - misses < misses_cold, "the shared spine must not refetch");
    }

    #[test]
    fn client_view_persists_across_reads() {
        let mut fb = Forkbase::new(PosFactory(PosParams::default()), 1_000);
        fb.put("master", entries(0..2000)).unwrap();
        fb.get("master", b"key00100").unwrap();
        let (hits_1, misses_1, _) = fb.client_stats();
        // The second identical read is served entirely by the persistent
        // view's decoded-node cache: it never reaches the page cache, so
        // neither page-cache counter moves.
        fb.get("master", b"key00100").unwrap();
        let (hits_2, misses_2, _) = fb.client_stats();
        assert_eq!((hits_1, misses_1), (hits_2, misses_2), "node cache must absorb the read");
        // A write moves the head; the re-rooted view still answers
        // correctly and reuses the shared spine.
        fb.put("master", entries(2000..2001)).unwrap();
        assert!(fb.get("master", b"key02000").unwrap().is_some());
        assert!(fb.get("master", b"key00100").unwrap().is_some());
        // A fresh client starts cold again.
        fb.reset_client();
        let (_, misses_before, _) = fb.client_stats();
        fb.get("master", b"key00100").unwrap();
        let (_, misses_after, _) = fb.client_stats();
        assert!(misses_after > misses_before, "reset must drop both cache layers");
    }

    #[test]
    fn forks_share_pages_and_diverge() {
        let mut fb = Forkbase::new(PosFactory(PosParams::default()), 0);
        fb.put("master", entries(0..300)).unwrap();
        fb.fork("master", "feature").unwrap();
        fb.put("feature", entries(300..350)).unwrap();
        assert_eq!(fb.get("master", b"key00320").unwrap(), None);
        assert!(fb.get("feature", b"key00320").unwrap().is_some());
        // Page sharing between branches.
        let m = fb.head("master").unwrap().page_set();
        let f = fb.head("feature").unwrap().page_set();
        assert!(!m.intersection(&f).is_empty());
    }

    #[test]
    fn merge_branches_combines_and_detects_conflicts() {
        let mut fb = Forkbase::new(PosFactory(PosParams::default()), 0);
        fb.put("master", entries(0..100)).unwrap();
        fb.fork("master", "other").unwrap();
        fb.put("other", entries(100..120)).unwrap();
        let outcome = fb.merge_branches("master", "other", MergeStrategy::Strict).unwrap();
        assert_eq!(outcome.added_from_right, 20);
        assert_eq!(fb.head("master").unwrap().len().unwrap(), 120);

        // Now a real conflict.
        fb.put("other", vec![Entry::new(b"key00005".to_vec(), b"theirs".to_vec())]).unwrap();
        fb.put("master", vec![Entry::new(b"key00005".to_vec(), b"ours".to_vec())]).unwrap();
        let err = fb.merge_branches("master", "other", MergeStrategy::Strict).unwrap_err();
        assert!(matches!(err, IndexError::MergeConflict { .. }));
        // Resolvable with a policy.
        let outcome = fb.merge_branches("master", "other", MergeStrategy::PreferRight).unwrap();
        assert_eq!(outcome.conflicts_resolved, 1);
        assert_eq!(fb.get_uncached("master", b"key00005").unwrap().unwrap().as_ref(), b"theirs");
    }

    #[test]
    fn unknown_branch_is_an_error() {
        let mut fb = Forkbase::new(PosFactory(PosParams::default()), 0);
        assert!(fb.put("ghost", entries(0..1)).is_err());
        assert!(fb.get("ghost", b"k").is_err());
    }

    #[test]
    fn noms_engine_writes_one_by_one_same_content() {
        let mut noms = NomsEngine::new(PosFactory(PosParams::noms()), 0);
        let mut fb = Forkbase::new(PosFactory(PosParams::noms()), 0);
        let data = entries(0..200);
        noms.put("master", data.clone()).unwrap();
        fb.put("master", data).unwrap();
        // Structural invariance ⇒ same root despite different batching…
        assert_eq!(noms.engine().head("master").unwrap().root(), fb.head("master").unwrap().root());
        // …but the unbatched path paid many more page writes.
        assert!(
            noms.engine().server_stats().puts > fb.server_stats().puts * 5,
            "noms {} vs forkbase {}",
            noms.engine().server_stats().puts,
            fb.server_stats().puts
        );
    }
}
