//! Multi-Version Merkle B+-Tree (MVMB+-Tree) — the paper's baseline (§5.2).
//!
//! An immutable B+-tree whose child pointers are content hashes, giving
//! tamper evidence and node-level copy-on-write like the SIRI structures —
//! but with classic, *order-dependent* node splits. Identical key sets
//! reached through different insertion histories generally produce
//! different trees (Figure 2), which is precisely the Structurally
//! Invariant property this baseline lacks; its diff therefore cannot rely
//! on positional hash comparison and falls back to scans (§5.3.2).
//!
//! ```
//! use siri_core::{MemStore, SiriIndex};
//! use siri_mvmb::MvmbTree;
//!
//! let mut t = MvmbTree::new(MemStore::new_shared(), Default::default());
//! t.insert(b"k", bytes::Bytes::from_static(b"v")).unwrap();
//! assert_eq!(t.get(b"k").unwrap().unwrap().as_ref(), b"v");
//! ```

mod cursor;
mod node;
mod proof;

use std::ops::Bound;
use std::sync::Arc;
use std::time::Instant;

use bytes::Bytes;
use siri_core::{
    apply_ops, own_bound, BatchOp, DiffEntry, Entry, EntryCursor, IndexError, LookupTrace, Proof,
    ProofVerdict, Result, SiriIndex, StructureReport, StructureStats, WriteBatch,
};
use siri_crypto::{FxHashSet, Hash};
use siri_store::{
    reachable_pages, CacheStats, NodeCache, PageSet, SharedStore, DEFAULT_NODE_CACHE_CAPACITY,
};

pub use cursor::RangeCursor;
pub use node::{route, ChildRef, Node};
pub use proof::MvmbProofScheme;

/// Node capacity limits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MvmbParams {
    /// Maximum entries per leaf before it splits.
    pub max_leaf_entries: usize,
    /// Maximum children per internal node before it splits.
    pub max_internal_children: usize,
}

impl Default for MvmbParams {
    fn default() -> Self {
        // Sized so pages land near the paper's ~1 KB with YCSB-like records
        // (≈256 B values) and ≈40 B routing entries.
        MvmbParams { max_leaf_entries: 4, max_internal_children: 24 }
    }
}

impl MvmbParams {
    /// Choose capacities so nodes are approximately `node_bytes` for the
    /// given average entry size — how the harness equalizes node sizes
    /// across structures ("we tune the size of each index node to be
    /// approximately 1 KB", §5).
    pub fn for_node_size(node_bytes: usize, avg_entry_bytes: usize, avg_key_bytes: usize) -> Self {
        let leaf = (node_bytes / avg_entry_bytes.max(1)).max(2);
        let internal = (node_bytes / (Hash::LEN + avg_key_bytes.max(1))).max(2);
        MvmbParams { max_leaf_entries: leaf, max_internal_children: internal }
    }
}

/// Handle to one MVMB+-Tree version. Clones share the decoded-node cache
/// (coherent for free under content addressing).
#[derive(Clone)]
pub struct MvmbTree {
    store: SharedStore,
    params: MvmbParams,
    root: Hash,
    cache: Arc<NodeCache<Node>>,
}

/// A rebuilt subtree piece handed back to the parent: (max key, page hash).
type Piece = (Bytes, Hash);

impl MvmbTree {
    /// An empty tree (root = zero hash).
    pub fn new(store: SharedStore, params: MvmbParams) -> Self {
        assert!(params.max_leaf_entries >= 2, "leaf capacity must be ≥ 2");
        assert!(params.max_internal_children >= 2, "fanout must be ≥ 2");
        MvmbTree {
            store,
            params,
            root: Hash::ZERO,
            cache: NodeCache::new_shared(DEFAULT_NODE_CACHE_CAPACITY),
        }
    }

    /// Re-open an existing version by root hash.
    pub fn open(store: SharedStore, params: MvmbParams, root: Hash) -> Self {
        MvmbTree { store, params, root, cache: NodeCache::new_shared(DEFAULT_NODE_CACHE_CAPACITY) }
    }

    pub fn params(&self) -> MvmbParams {
        self.params
    }

    /// Replace the node cache with one bounded to `capacity` decoded nodes
    /// (0 disables caching — every fetch decodes). Benchmarks use this for
    /// cache-size sweeps; clones made *after* this call share the new cache.
    pub fn with_node_cache_capacity(mut self, capacity: usize) -> Self {
        self.cache = NodeCache::new_shared(capacity);
        self
    }

    /// Hit/miss/eviction counters of the shared decoded-node cache.
    pub fn node_cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    fn fetch(&self, hash: &Hash) -> Result<Arc<Node>> {
        Ok(self.fetch_traced(hash)?.0)
    }

    /// Fetch a node through the cache; the flag reports whether it was a
    /// cache hit (no store access, no decode).
    fn fetch_traced(&self, hash: &Hash) -> Result<(Arc<Node>, bool)> {
        self.cache.get_or_load(hash, || {
            let page = self.store.try_get(hash)?.ok_or(IndexError::MissingPage(*hash))?;
            Node::decode_zc(&page)
        })
    }

    /// Split `items` into balanced chunks of at most `max` and emit one
    /// node per chunk via `build`. The chunk nodes are siblings, so they
    /// are persisted as one [`siri_store::NodeStore::try_put_many`] batch:
    /// the store digests them with the multi-lane hasher.
    fn emit_chunks<T: Clone>(
        &self,
        items: Vec<T>,
        max: usize,
        build: impl Fn(Vec<T>) -> Node,
    ) -> Result<Vec<Piece>> {
        if items.is_empty() {
            return Ok(Vec::new());
        }
        let parts = items.len().div_ceil(max);
        let per = items.len().div_ceil(parts);
        let mut max_keys = Vec::with_capacity(parts);
        let mut pages = Vec::with_capacity(parts);
        for chunk in items.chunks(per) {
            let node = build(chunk.to_vec());
            max_keys.push(node.max_key().expect("never store empty nodes"));
            pages.push(node.encode());
        }
        let hashes = self.store.try_put_many(&pages)?;
        Ok(max_keys.into_iter().zip(hashes).collect())
    }

    /// Recursive copy-on-write batch application. `ops` is normalized
    /// (sorted, key-unique, puts and deletes). Returns the replacement
    /// pieces for this subtree — possibly none, when deletes empty it
    /// (underflow handling: emptied nodes are pruned and their siblings
    /// re-chunked by the parent rebuild).
    fn apply_rec(&self, node_hash: Hash, ops: &[BatchOp]) -> Result<Vec<Piece>> {
        if ops.is_empty() {
            // Untouched subtree: reuse wholesale (Recursively Identical in
            // action). Need its max key for the parent rebuild.
            let node = self.fetch(&node_hash)?;
            let max = node.max_key().ok_or(IndexError::CorruptStructure("empty node"))?;
            return Ok(vec![(max, node_hash)]);
        }
        match &*self.fetch(&node_hash)? {
            Node::Leaf(old) => {
                let merged = apply_ops(old, ops);
                self.emit_chunks(merged, self.params.max_leaf_entries, Node::Leaf)
            }
            Node::Internal(children) => {
                // Partition the batch across children by routing range.
                let mut pieces: Vec<Piece> = Vec::with_capacity(children.len() + 2);
                let mut rest = ops;
                for (slot, child) in children.iter().enumerate() {
                    let is_last = slot + 1 == children.len();
                    let split = if is_last {
                        rest.len() // everything beyond the last max clamps right
                    } else {
                        rest.partition_point(|op| op.key <= child.max_key)
                    };
                    let (mine, remaining) = rest.split_at(split);
                    rest = remaining;
                    pieces.extend(self.apply_rec(child.child, mine)?);
                }
                debug_assert!(rest.is_empty());
                let refs: Vec<ChildRef> = pieces
                    .into_iter()
                    .map(|(max_key, child)| ChildRef { max_key, child })
                    .collect();
                self.emit_chunks(refs, self.params.max_internal_children, Node::Internal)
            }
        }
    }

    /// Deletions can leave a chain of single-child internal nodes above the
    /// surviving content; drop them so the tree height reflects the data
    /// (the B+-tree underflow rule, applied at the root).
    fn collapse_root(&self, mut root: Hash) -> Result<Hash> {
        loop {
            if root.is_zero() {
                return Ok(root);
            }
            match &*self.fetch(&root)? {
                Node::Internal(children) if children.len() == 1 => root = children[0].child,
                _ => return Ok(root),
            }
        }
    }

    /// Build a tree bottom-up from scratch for the first batch.
    fn build_fresh(&self, entries: Vec<Entry>) -> Result<Vec<Piece>> {
        let mut pieces = self.emit_chunks(entries, self.params.max_leaf_entries, Node::Leaf)?;
        while pieces.len() > 1 {
            let refs: Vec<ChildRef> =
                pieces.into_iter().map(|(max_key, child)| ChildRef { max_key, child }).collect();
            pieces = self.emit_chunks(refs, self.params.max_internal_children, Node::Internal)?;
        }
        Ok(pieces)
    }

    /// Number of levels (0 for an empty tree).
    pub fn height(&self) -> Result<usize> {
        if self.root.is_zero() {
            return Ok(0);
        }
        let mut h = 1;
        let mut hash = self.root;
        loop {
            match &*self.fetch(&hash)? {
                Node::Leaf(_) => return Ok(h),
                Node::Internal(children) => {
                    hash = children[0].child;
                    h += 1;
                }
            }
        }
    }
}

impl SiriIndex for MvmbTree {
    fn kind(&self) -> &'static str {
        "mvmb+-tree"
    }

    fn store(&self) -> &SharedStore {
        &self.store
    }

    fn root(&self) -> Hash {
        self.root
    }

    fn at_root(&self, root: Hash) -> Self {
        let mut handle = self.clone();
        handle.root = root;
        handle
    }

    fn get(&self, key: &[u8]) -> Result<Option<Bytes>> {
        Ok(self.get_traced(key)?.0)
    }

    fn get_traced(&self, key: &[u8]) -> Result<(Option<Bytes>, LookupTrace)> {
        let mut trace = LookupTrace::default();
        if self.root.is_zero() {
            return Ok((None, trace));
        }
        let mut hash = self.root;
        let load_start = Instant::now();
        loop {
            let (node, cached) = self.fetch_traced(&hash)?;
            trace.pages_loaded += 1;
            trace.height += 1;
            if cached {
                trace.cache_hits += 1;
            } else {
                trace.cache_misses += 1;
            }
            match &*node {
                Node::Internal(children) => {
                    if key > children.last().expect("non-empty").max_key.as_ref() {
                        trace.load_nanos = load_start.elapsed().as_nanos() as u64;
                        return Ok((None, trace));
                    }
                    hash = children[route(children, key)].child;
                }
                Node::Leaf(entries) => {
                    trace.load_nanos = load_start.elapsed().as_nanos() as u64;
                    let scan_start = Instant::now();
                    let (mut lo, mut hi) = (0usize, entries.len());
                    let mut found = None;
                    while lo < hi {
                        let mid = lo + (hi - lo) / 2;
                        trace.leaf_entries_scanned += 1;
                        match entries[mid].key.as_ref().cmp(key) {
                            std::cmp::Ordering::Equal => {
                                found = Some(entries[mid].value.clone());
                                break;
                            }
                            std::cmp::Ordering::Less => lo = mid + 1,
                            std::cmp::Ordering::Greater => hi = mid,
                        }
                    }
                    trace.scan_nanos = scan_start.elapsed().as_nanos() as u64;
                    return Ok((found, trace));
                }
            }
        }
    }

    fn commit(&mut self, batch: WriteBatch) -> Result<Hash> {
        let ops = batch.normalize();
        if ops.is_empty() {
            return Ok(self.root);
        }
        let mut pieces = if self.root.is_zero() {
            let puts: Vec<Entry> = ops.into_iter().filter_map(BatchOp::into_entry).collect();
            self.build_fresh(puts)?
        } else {
            self.apply_rec(self.root, &ops)?
        };
        // Grow upward while the top level overflows a single node.
        while pieces.len() > 1 {
            let refs: Vec<ChildRef> =
                pieces.into_iter().map(|(max_key, child)| ChildRef { max_key, child }).collect();
            pieces = self.emit_chunks(refs, self.params.max_internal_children, Node::Internal)?;
        }
        // Deletes may have emptied the tree entirely, or left a lone-child
        // chain at the top; prune both.
        self.root = match pieces.pop() {
            Some((_, hash)) => self.collapse_root(hash)?,
            None => Hash::ZERO,
        };
        Ok(self.root)
    }

    fn range(&self, start: Bound<&[u8]>, end: Bound<&[u8]>) -> EntryCursor {
        EntryCursor::new(cursor::RangeCursor::new(
            self.store.clone(),
            self.cache.clone(),
            self.root,
            own_bound(start),
            own_bound(end),
        ))
    }

    fn page_set(&self) -> PageSet {
        reachable_pages(self.store.as_ref(), self.root, Node::children_of_page)
    }

    fn diff(&self, other: &Self) -> Result<Vec<DiffEntry>> {
        // No structural invariance ⇒ positional hash comparison is unsound
        // across independently-built trees; the baseline diffs by scan
        // (§5.3.2 explains why the SIRI candidates beat it here).
        if self.root == other.root {
            return Ok(Vec::new());
        }
        siri_core::diff_by_scan(self, other)
    }

    fn prove(&self, key: &[u8]) -> Result<Proof> {
        let mut pages = Vec::new();
        if self.root.is_zero() {
            return Ok(Proof::new(pages));
        }
        let mut hash = self.root;
        loop {
            let page = self.store.try_get(&hash)?.ok_or(IndexError::MissingPage(hash))?;
            let node = Node::decode(&page)?;
            pages.push(page);
            match node {
                Node::Internal(children) => {
                    if key > children.last().expect("non-empty").max_key.as_ref() {
                        // This node already proves the key exceeds every
                        // stored key; the verifier re-derives the absence.
                        return Ok(Proof::new(pages));
                    }
                    hash = children[route(&children, key)].child;
                }
                Node::Leaf(_) => return Ok(Proof::new(pages)),
            }
        }
    }

    fn verify_proof(root: Hash, key: &[u8], proof: &Proof) -> ProofVerdict {
        proof::verify(root, key, proof)
    }

    fn prove_range(&self, start: Bound<&[u8]>, end: Bound<&[u8]>) -> Result<Proof> {
        let mut pages = Vec::new();
        let mut seen = std::collections::HashSet::new();
        if !self.root.is_zero() {
            self.collect_range_pages(self.root, start, end, &mut seen, &mut pages)?;
        }
        Ok(Proof::new(pages))
    }

    fn prove_batch(&self, keys: &[Bytes]) -> Result<Proof> {
        let mut pages = Vec::new();
        let mut seen = std::collections::HashSet::new();
        for key in keys {
            for page in self.prove(key)?.into_pages() {
                if seen.insert(siri_crypto::sha256(&page)) {
                    pages.push(page);
                }
            }
        }
        Ok(Proof::new(pages))
    }
}

impl MvmbTree {
    /// Prover-side range walk — same pruning predicate as the verifier,
    /// pages pushed once by content hash, descent never skipped.
    fn collect_range_pages(
        &self,
        hash: Hash,
        start: Bound<&[u8]>,
        end: Bound<&[u8]>,
        seen: &mut std::collections::HashSet<Hash>,
        pages: &mut Vec<Bytes>,
    ) -> Result<()> {
        let page = self.store.try_get(&hash)?.ok_or(IndexError::MissingPage(hash))?;
        let node = Node::decode(&page)?;
        if seen.insert(hash) {
            pages.push(page);
        }
        if let Node::Internal(children) = node {
            let mut prev: Option<Bytes> = None;
            for c in children {
                if siri_core::child_overlaps(prev.as_deref(), &c.max_key, start, end) {
                    self.collect_range_pages(c.child, start, end, seen, pages)?;
                }
                prev = Some(c.max_key);
            }
        }
        Ok(())
    }

    /// Verify a range proof against a trusted branch digest — see
    /// [`siri_core::verify_anchored_range`].
    pub fn verify_range(
        digest: Hash,
        start: Bound<&[u8]>,
        end: Bound<&[u8]>,
        proof: &Proof,
    ) -> siri_core::RangeVerdict {
        siri_core::verify_anchored_range(&proof::MvmbProofScheme, digest, start, end, proof)
    }

    /// Verify a batched multi-key proof against a trusted branch digest —
    /// see [`siri_core::verify_anchored_batch`].
    pub fn verify_batch(digest: Hash, keys: &[Bytes], proof: &Proof) -> siri_core::BatchVerdict {
        siri_core::verify_anchored_batch(&proof::MvmbProofScheme, digest, keys, proof)
    }
}

impl StructureStats for MvmbTree {
    fn structure_stats(&self) -> Result<StructureReport> {
        let pages = self.page_set();
        // Count distinct leaf pages (order-dependent splits can still
        // deduplicate identical leaves within one version).
        let mut leaves = 0u64;
        let mut entries = 0u64;
        let mut seen = FxHashSet::default();
        let mut stack = if self.root.is_zero() { Vec::new() } else { vec![self.root] };
        while let Some(h) = stack.pop() {
            if !seen.insert(h) {
                continue;
            }
            match &*self.fetch(&h)? {
                Node::Leaf(items) => {
                    leaves += 1;
                    entries += items.len() as u64;
                }
                Node::Internal(children) => stack.extend(children.iter().map(|c| c.child)),
            }
        }
        Ok(StructureReport {
            nodes: pages.len() as u64,
            bytes: pages.byte_size(),
            height: self.height()? as u32,
            entries,
            leaf_occupancy: if leaves == 0 { 0.0 } else { entries as f64 / leaves as f64 },
        })
    }

    fn node_cache_stats(&self) -> CacheStats {
        MvmbTree::node_cache_stats(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use siri_core::MemStore;

    fn make() -> MvmbTree {
        MvmbTree::new(MemStore::new_shared(), MvmbParams::default())
    }

    fn e(k: &str, v: &str) -> Entry {
        Entry::new(k.as_bytes().to_vec(), v.as_bytes().to_vec())
    }

    fn keys(n: usize) -> Vec<Entry> {
        (0..n).map(|i| e(&format!("key{i:05}"), &format!("val{i}"))).collect()
    }

    #[test]
    fn empty_tree() {
        let t = make();
        assert!(t.is_empty());
        assert_eq!(t.get(b"x").unwrap(), None);
        assert_eq!(t.height().unwrap(), 0);
        assert!(t.scan().unwrap().is_empty());
    }

    #[test]
    fn insert_lookup_roundtrip() {
        let mut t = make();
        t.batch_insert(keys(500)).unwrap();
        for i in (0..500).step_by(17) {
            let k = format!("key{i:05}");
            assert_eq!(
                t.get(k.as_bytes()).unwrap().unwrap().as_ref(),
                format!("val{i}").as_bytes(),
                "key {i}"
            );
        }
        assert_eq!(t.get(b"absent").unwrap(), None);
        assert_eq!(t.get(b"zzzzzz").unwrap(), None, "beyond max key");
        assert_eq!(t.len().unwrap(), 500);
    }

    #[test]
    fn scan_is_sorted() {
        let mut t = make();
        let mut entries = keys(300);
        entries.reverse();
        t.batch_insert(entries).unwrap();
        let s = t.scan().unwrap();
        assert_eq!(s.len(), 300);
        assert!(s.windows(2).all(|w| w[0].key < w[1].key));
    }

    #[test]
    fn tree_grows_and_stays_balanced_enough() {
        let mut t = make();
        t.batch_insert(keys(2000)).unwrap();
        let h = t.height().unwrap();
        // 2000/4 = 500 leaves; fanout 24 ⇒ height ≈ 1 + ceil(log24 500) + 1.
        assert!((3..=6).contains(&h), "height {h}");
    }

    #[test]
    fn incremental_inserts_preserve_old_versions() {
        let mut t = make();
        t.batch_insert(keys(100)).unwrap();
        let v1 = t.clone();
        t.batch_insert(vec![e("key00050", "rewritten")]).unwrap();
        assert_eq!(v1.get(b"key00050").unwrap().unwrap().as_ref(), b"val50");
        assert_eq!(t.get(b"key00050").unwrap().unwrap().as_ref(), b"rewritten");
        // Pages are shared between versions.
        let shared = t.page_set().intersection(&v1.page_set());
        assert!(!shared.is_empty(), "copy-on-write must share pages");
    }

    #[test]
    fn not_structurally_invariant_in_general() {
        // The defining deficiency (Figure 2): build the same key set in two
        // different orders/batchings and observe different roots. With
        // order-dependent splits this is overwhelmingly likely; we pick a
        // pattern that demonstrably diverges: bulk load vs incremental.
        let entries = keys(200);
        let mut bulk = make();
        bulk.batch_insert(entries.clone()).unwrap();
        let mut incremental = make();
        for chunk in entries.chunks(7) {
            incremental.batch_insert(chunk.to_vec()).unwrap();
        }
        // Same content either way…
        assert_eq!(bulk.scan().unwrap(), incremental.scan().unwrap());
        // …but (generally) different structure.
        assert_ne!(bulk.root(), incremental.root(), "baseline expected to be order-dependent");
    }

    #[test]
    fn diff_detects_changes_via_scan() {
        let mut a = make();
        a.batch_insert(keys(100)).unwrap();
        let mut b = a.clone();
        b.insert(b"key00007", Bytes::from_static(b"x")).unwrap();
        let d = a.diff(&b).unwrap();
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].key.as_ref(), b"key00007");
        assert!(a.diff(&a.clone()).unwrap().is_empty());
    }

    #[test]
    fn duplicate_keys_in_batch_last_wins() {
        let mut t = make();
        t.batch_insert(vec![e("k", "first"), e("k", "second")]).unwrap();
        assert_eq!(t.get(b"k").unwrap().unwrap().as_ref(), b"second");
        assert_eq!(t.len().unwrap(), 1);
    }

    #[test]
    fn empty_batch_is_noop() {
        let mut t = make();
        t.batch_insert(keys(10)).unwrap();
        let root = t.root();
        t.batch_insert(Vec::new()).unwrap();
        assert_eq!(t.root(), root);
    }

    #[test]
    fn range_cursor_returns_exactly_the_window() {
        let mut t = make();
        t.batch_insert(keys(1000)).unwrap();
        let window = |s: &[u8], e: &[u8]| {
            t.range(Bound::Included(s), Bound::Excluded(e)).collect_entries().unwrap()
        };
        let r = window(b"key00100", b"key00110");
        assert_eq!(r.len(), 10);
        assert_eq!(r[0].key.as_ref(), b"key00100");
        // End past the maximum; start between keys.
        let r = window(b"key00995a", b"zzz");
        assert_eq!(r.len(), 4);
        // Degenerate windows.
        assert!(window(b"key00100", b"key00100").is_empty());
        assert!(window(b"z", b"a").is_empty());
        // Unbounded cursor equals scan; exclusive/inclusive bounds work.
        let all = t.range(Bound::Unbounded, Bound::Unbounded).collect_entries().unwrap();
        assert_eq!(all, t.scan().unwrap());
        let r = t
            .range(Bound::Excluded(b"key00100"), Bound::Included(b"key00102"))
            .collect_entries()
            .unwrap();
        assert_eq!(r.len(), 2);
        assert_eq!(r[0].key.as_ref(), b"key00101");
        // Empty tree.
        assert_eq!(make().range(Bound::Included(b"a"), Bound::Excluded(b"z")).count(), 0);
    }

    #[test]
    fn delete_prunes_underflow_and_can_empty_the_tree() {
        let mut t = make();
        t.batch_insert(keys(500)).unwrap();
        t.delete(b"key00250").unwrap();
        assert_eq!(t.get(b"key00250").unwrap(), None);
        assert_eq!(t.len().unwrap(), 499);
        // Deleting a whole region forces leaf merges/prunes but content
        // stays consistent.
        let mut batch = WriteBatch::new();
        for i in 0..400 {
            batch.delete(format!("key{i:05}").into_bytes());
        }
        t.commit(batch).unwrap();
        assert_eq!(t.len().unwrap(), 100);
        assert_eq!(t.get(b"key00450").unwrap().unwrap().as_ref(), b"val450");
        let s = t.scan().unwrap();
        assert!(s.windows(2).all(|w| w[0].key < w[1].key));
        // Height shrinks back toward a small tree (no lone-child towers).
        let h = t.height().unwrap();
        assert!(h <= 4, "height {h} after mass delete");
        // Drain everything.
        let mut batch = WriteBatch::new();
        for i in 400..500 {
            batch.delete(format!("key{i:05}").into_bytes());
        }
        batch.delete(&b"key00250"[..]); // already gone: no-op
        t.commit(batch).unwrap();
        assert!(t.is_empty());
        assert_eq!(t.root(), Hash::ZERO);
        // And the tree is usable again afterwards.
        t.insert(b"fresh", Bytes::from_static(b"start")).unwrap();
        assert_eq!(t.get(b"fresh").unwrap().unwrap().as_ref(), b"start");
    }

    #[test]
    fn mixed_commit_resolves_in_one_pass() {
        let mut t = make();
        t.batch_insert(keys(50)).unwrap();
        let mut batch = WriteBatch::new();
        batch.delete(&b"key00010"[..]);
        batch.put(&b"key00010"[..], &b"back"[..]); // later op wins
        batch.delete(&b"key00020"[..]);
        t.commit(batch).unwrap();
        assert_eq!(t.get(b"key00010").unwrap().unwrap().as_ref(), b"back");
        assert_eq!(t.get(b"key00020").unwrap(), None);
        assert_eq!(t.len().unwrap(), 49);
    }

    #[test]
    fn params_for_node_size() {
        let p = MvmbParams::for_node_size(1024, 271, 15);
        assert!(p.max_leaf_entries >= 3 && p.max_leaf_entries <= 4);
        assert!(p.max_internal_children >= 20);
    }
}
