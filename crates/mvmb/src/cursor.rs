//! Streaming in-order range cursor over the MVMB+-Tree — leaf-by-leaf
//! B+-tree iteration with an O(log N) seek, mirroring the POS-Tree cursor
//! so the baseline pays the same per-entry costs in range benchmarks.

use std::ops::Bound;
use std::sync::Arc;

use siri_core::{before_start, past_end, Entry, IndexError, Result};
use siri_crypto::Hash;
use siri_store::{NodeCache, SharedStore};

use crate::node::Node;

struct Frame {
    /// Always an `Internal` node.
    node: Arc<Node>,
    idx: usize,
}

impl Frame {
    fn children(&self) -> &[crate::ChildRef] {
        match &*self.node {
            Node::Internal(children) => children,
            Node::Leaf(_) => unreachable!("frames hold internal nodes only"),
        }
    }
}

/// Bounded in-order cursor over one tree version. Owns `Arc` handles to
/// the store and the decoded-node cache, so it is `'static`.
pub struct RangeCursor {
    store: SharedStore,
    cache: Arc<NodeCache<Node>>,
    stack: Vec<Frame>,
    leaf: Option<Arc<Node>>,
    leaf_idx: usize,
    start: Bound<Vec<u8>>,
    end: Bound<Vec<u8>>,
    done: bool,
    /// Root still to be descended (deferred so constructor errors surface
    /// as stream items).
    pending_root: Option<Hash>,
    /// Error hit advancing past an already-read, in-bounds entry; yielded
    /// on the following call so the entry itself is not swallowed.
    pending_err: Option<IndexError>,
}

impl RangeCursor {
    pub fn new(
        store: SharedStore,
        cache: Arc<NodeCache<Node>>,
        root: Hash,
        start: Bound<Vec<u8>>,
        end: Bound<Vec<u8>>,
    ) -> Self {
        RangeCursor {
            store,
            cache,
            stack: Vec::new(),
            leaf: None,
            leaf_idx: 0,
            start,
            end,
            done: root.is_zero(),
            pending_root: (!root.is_zero()).then_some(root),
            pending_err: None,
        }
    }

    fn fetch(&self, hash: &Hash) -> Result<Arc<Node>> {
        self.cache
            .get_or_load(hash, || {
                let page = self.store.try_get(hash)?.ok_or(IndexError::MissingPage(*hash))?;
                Node::decode_zc(&page)
            })
            .map(|(node, _)| node)
    }

    fn leaf_entries(&self) -> &[Entry] {
        match self.leaf.as_deref() {
            Some(Node::Leaf(entries)) => entries,
            _ => &[],
        }
    }

    /// Descend to the first leaf that can hold a key ≥ the start bound,
    /// positioning `leaf_idx` by binary search.
    fn seek(&mut self, root: Hash) -> Result<()> {
        let key = siri_core::start_seek_key(&self.start).to_vec();
        let mut hash = root;
        loop {
            let node = self.fetch(&hash)?;
            match &*node {
                Node::Internal(children) => {
                    if children.is_empty() {
                        return Err(IndexError::CorruptStructure("empty internal node"));
                    }
                    // First child whose max_key ≥ key, clamped right so
                    // seeks past the maximum land at stream end.
                    let slot = children.partition_point(|c| c.max_key.as_ref() < key.as_slice());
                    let slot = slot.min(children.len() - 1);
                    let next = children[slot].child;
                    self.stack.push(Frame { node: node.clone(), idx: slot });
                    hash = next;
                }
                Node::Leaf(entries) => {
                    if entries.is_empty() {
                        return Err(IndexError::CorruptStructure("empty stored leaf"));
                    }
                    self.leaf_idx = entries.partition_point(|e| e.key.as_ref() < key.as_slice());
                    self.leaf = Some(node);
                    if self.leaf_idx >= self.leaf_entries().len() {
                        self.next_leaf()?;
                    }
                    return Ok(());
                }
            }
        }
    }

    fn next_leaf(&mut self) -> Result<()> {
        loop {
            let Some(frame) = self.stack.last_mut() else {
                self.done = true;
                return Ok(());
            };
            frame.idx += 1;
            if frame.idx < frame.children().len() {
                let mut hash = frame.children()[frame.idx].child;
                loop {
                    let node = self.fetch(&hash)?;
                    match &*node {
                        Node::Internal(children) => {
                            hash = children
                                .first()
                                .ok_or(IndexError::CorruptStructure("empty internal node"))?
                                .child;
                            self.stack.push(Frame { node: node.clone(), idx: 0 });
                        }
                        Node::Leaf(_) => {
                            self.leaf = Some(node);
                            self.leaf_idx = 0;
                            return Ok(());
                        }
                    }
                }
            }
            self.stack.pop();
        }
    }
}

impl Iterator for RangeCursor {
    type Item = Result<Entry>;

    fn next(&mut self) -> Option<Self::Item> {
        if let Some(root) = self.pending_root.take() {
            if let Err(e) = self.seek(root) {
                self.done = true;
                return Some(Err(e));
            }
        }
        if let Some(e) = self.pending_err.take() {
            self.done = true;
            return Some(Err(e));
        }
        loop {
            if self.done {
                return None;
            }
            let Some(entry) = self.leaf_entries().get(self.leaf_idx).cloned() else {
                self.done = true;
                return None;
            };
            if past_end(&self.end, &entry.key) {
                self.done = true;
                return None;
            }
            let skipped = before_start(&self.start, &entry.key);
            self.leaf_idx += 1;
            if self.leaf_idx >= self.leaf_entries().len() {
                if let Err(e) = self.next_leaf() {
                    if skipped {
                        self.done = true;
                        return Some(Err(e));
                    }
                    // Deliver the entry now, the error on the next call.
                    self.pending_err = Some(e);
                    return Some(Ok(entry));
                }
            }
            if skipped {
                continue; // exclusive start: skip the seeked-to match
            }
            return Some(Ok(entry));
        }
    }
}
