//! MVMB+-Tree page codec.
//!
//! Internal nodes route by the *maximum key* of each child subtree (the
//! same split-key convention POS-Tree uses, Figure 5), so the two
//! structures differ only in how node boundaries are chosen — exactly the
//! comparison the paper draws. Children are referenced by content hash
//! instead of pointers; "we replace the pointers stored in index nodes
//! with the hash of their immediate children" (§5.2).

use bytes::Bytes;
use siri_core::{entry_codec, Entry, IndexError, Result};
use siri_crypto::Hash;
use siri_encoding::{ByteReader, ByteWriter, CodecError};

const TAG_INTERNAL: u8 = 0x11;
const TAG_LEAF: u8 = 0x12;

/// Routing entry of an internal node: the maximum key in `child`'s subtree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChildRef {
    pub max_key: Bytes,
    pub child: Hash,
}

/// Decoded MVMB+-Tree page.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Node {
    Internal(Vec<ChildRef>),
    Leaf(Vec<Entry>),
}

impl Node {
    pub fn encode(&self) -> Bytes {
        let mut w = ByteWriter::with_capacity(self.encoded_len());
        self.encode_into(&mut w);
        debug_assert_eq!(w.len(), self.encoded_len());
        Bytes::from(w.into_vec())
    }

    /// Exact byte length of [`Node::encode`]'s output — pages are sized to
    /// their final length in one allocation.
    pub fn encoded_len(&self) -> usize {
        use siri_encoding::varint;
        match self {
            Node::Internal(children) => {
                1 + varint::len(children.len() as u64)
                    + children
                        .iter()
                        .map(|c| varint::len(c.max_key.len() as u64) + c.max_key.len() + Hash::LEN)
                        .sum::<usize>()
            }
            Node::Leaf(entries) => 1 + entry_codec::entries_encoded_len(entries),
        }
    }

    /// Serialize into an existing writer — entries stream straight into the
    /// page buffer instead of transiting a temporary `Vec`.
    pub fn encode_into(&self, w: &mut ByteWriter) {
        match self {
            Node::Internal(children) => {
                w.put_u8(TAG_INTERNAL);
                w.put_varint(children.len() as u64);
                for c in children {
                    w.put_bytes(&c.max_key);
                    w.put_raw(c.child.as_bytes());
                }
            }
            Node::Leaf(entries) => {
                w.put_u8(TAG_LEAF);
                entry_codec::encode_entries_into(w, entries);
            }
        }
    }

    /// Copying decode (tests, diagnostics, store walks).
    pub fn decode(page: &[u8]) -> Result<Node> {
        Self::decode_zc(&Bytes::copy_from_slice(page))
    }

    /// Zero-copy decode: keys and values are refcounted slices of the page
    /// — the hot read path.
    pub fn decode_zc(page: &Bytes) -> Result<Node> {
        let mut r = ByteReader::new(page);
        match r.get_u8()? {
            TAG_INTERNAL => {
                let count = r.get_varint()?;
                if count == 0 || count > page.len() as u64 {
                    return Err(CodecError::BadLength { what: "child count" }.into());
                }
                let mut children = Vec::with_capacity(count as usize);
                for _ in 0..count {
                    let klen = r.get_varint()? as usize;
                    let koff = r.offset();
                    r.get_raw(klen)?;
                    let max_key = page.slice(koff..koff + klen);
                    let child = Hash::from_slice(r.get_raw(Hash::LEN)?)
                        .ok_or(IndexError::CorruptStructure("bad child digest length"))?;
                    children.push(ChildRef { max_key, child });
                }
                r.finish()?;
                if children.windows(2).any(|w| w[0].max_key >= w[1].max_key) {
                    return Err(IndexError::CorruptStructure("unsorted internal node"));
                }
                Ok(Node::Internal(children))
            }
            TAG_LEAF => {
                let entries = entry_codec::decode_entries_zc(page, r.offset())?;
                if entries.windows(2).any(|w| w[0].key >= w[1].key) {
                    return Err(IndexError::CorruptStructure("unsorted leaf"));
                }
                Ok(Node::Leaf(entries))
            }
            other => Err(CodecError::BadTag(other).into()),
        }
    }

    /// Child hashes referenced by a page — the store-walk decoder.
    pub fn children_of_page(page: &[u8]) -> Vec<Hash> {
        match Node::decode(page) {
            Ok(Node::Internal(children)) => children.into_iter().map(|c| c.child).collect(),
            _ => Vec::new(),
        }
    }

    /// Max key of this node's content (used when building parents).
    pub fn max_key(&self) -> Option<Bytes> {
        match self {
            Node::Internal(children) => children.last().map(|c| c.max_key.clone()),
            Node::Leaf(entries) => entries.last().map(|e| e.key.clone()),
        }
    }
}

/// Route a key to a child slot: the first child whose `max_key >= key`,
/// clamping overlarge keys to the rightmost child (so inserts of new
/// maxima descend correctly).
pub fn route(children: &[ChildRef], key: &[u8]) -> usize {
    match children.binary_search_by(|c| c.max_key.as_ref().cmp(key)) {
        Ok(i) => i,
        Err(i) => i.min(children.len() - 1),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use siri_crypto::sha256;

    fn e(k: &str, v: &str) -> Entry {
        Entry::new(k.as_bytes().to_vec(), v.as_bytes().to_vec())
    }

    fn cr(k: &str, seed: &str) -> ChildRef {
        ChildRef { max_key: Bytes::copy_from_slice(k.as_bytes()), child: sha256(seed.as_bytes()) }
    }

    #[test]
    fn round_trips() {
        let leaf = Node::Leaf(vec![e("a", "1"), e("b", "2")]);
        assert_eq!(Node::decode(&leaf.encode()).unwrap(), leaf);
        let internal = Node::Internal(vec![cr("m", "c1"), cr("z", "c2")]);
        assert_eq!(Node::decode(&internal.encode()).unwrap(), internal);
    }

    #[test]
    fn max_key() {
        assert_eq!(Node::Leaf(vec![e("a", "1"), e("q", "2")]).max_key().unwrap().as_ref(), b"q");
        assert_eq!(
            Node::Internal(vec![cr("m", "x"), cr("z", "y")]).max_key().unwrap().as_ref(),
            b"z"
        );
        assert!(Node::Leaf(Vec::new()).max_key().is_none());
    }

    #[test]
    fn routing() {
        let children = vec![cr("f", "1"), cr("m", "2"), cr("t", "3")];
        assert_eq!(route(&children, b"a"), 0);
        assert_eq!(route(&children, b"f"), 0, "boundary key belongs left");
        assert_eq!(route(&children, b"g"), 1);
        assert_eq!(route(&children, b"m"), 1);
        assert_eq!(route(&children, b"t"), 2);
        assert_eq!(route(&children, b"zz"), 2, "beyond max clamps right");
    }

    #[test]
    fn decode_rejects_disorder_and_bad_tags() {
        let bad_leaf = Node::Leaf(vec![e("b", "1"), e("a", "1")]);
        assert!(Node::decode(&bad_leaf.encode()).is_err());
        let bad_internal = Node::Internal(vec![cr("z", "1"), cr("a", "2")]);
        assert!(Node::decode(&bad_internal.encode()).is_err());
        assert!(Node::decode(&[0x55]).is_err());
        assert!(Node::decode(&[TAG_INTERNAL, 0]).is_err(), "zero children");
    }
}
