//! MVMB+-Tree proof verification: re-hash every page, re-run the routing
//! decision at every level, and only then trust the leaf's answer. Also
//! the [`PagePool`] walkers behind range/batched proofs and the
//! [`MvmbProofScheme`] glue into the anchored verifiers — the baseline
//! gets the same verified-read surface as the SIRI structures, which is
//! essential on sharded branches (its collapsed root is not derivable
//! from the shard sub-roots, so manifest-anchored proofs are the *only*
//! sound ones).

use std::ops::Bound;

use bytes::Bytes;
use siri_core::{
    bounds_contain, child_overlaps, Entry, PagePool, Proof, ProofScheme, ProofVerdict,
};
use siri_crypto::{sha256, Hash};

use crate::node::{route, Node};

pub(crate) fn verify(root: Hash, key: &[u8], proof: &Proof) -> ProofVerdict {
    if root.is_zero() {
        return if proof.is_empty() {
            ProofVerdict::Absent
        } else {
            ProofVerdict::Invalid("non-empty proof for empty tree")
        };
    }
    let pages = proof.pages();
    if pages.is_empty() {
        return ProofVerdict::Invalid("empty proof for non-empty tree");
    }
    let mut expected = root;
    for (depth, page) in pages.iter().enumerate() {
        if sha256(page) != expected {
            return ProofVerdict::Invalid("broken hash link");
        }
        match Node::decode(page) {
            Ok(Node::Internal(children)) => {
                if key > children.last().expect("non-empty").max_key.as_ref() {
                    // This (digest-checked) node already proves the key is
                    // larger than everything stored below it.
                    return if depth + 1 == pages.len() {
                        ProofVerdict::Absent
                    } else {
                        ProofVerdict::Invalid("pages after proven absence")
                    };
                }
                if depth + 1 == pages.len() {
                    return ProofVerdict::Invalid("proof ends at internal node");
                }
                expected = children[route(&children, key)].child;
            }
            Ok(Node::Leaf(entries)) => {
                if depth + 1 != pages.len() {
                    return ProofVerdict::Invalid("leaf before end of proof");
                }
                return match entries.binary_search_by(|e| e.key.as_ref().cmp(key)) {
                    Ok(i) => ProofVerdict::Present(Bytes::copy_from_slice(&entries[i].value)),
                    Err(_) => ProofVerdict::Absent,
                };
            }
            Err(_) => return ProofVerdict::Invalid("page undecodable"),
        }
    }
    ProofVerdict::Invalid("proof exhausted before a leaf")
}

/// One key's root→leaf re-walk through a shared page pool. Cycle-free by
/// construction: each fetched page hashes to the digest that referenced it.
pub(crate) fn verify_key_pages(root: Hash, key: &[u8], pool: &mut PagePool) -> ProofVerdict {
    if root.is_zero() {
        return ProofVerdict::Absent;
    }
    let mut expected = root;
    loop {
        let Some(page) = pool.get(&expected) else {
            return ProofVerdict::Invalid("missing page in proof");
        };
        match Node::decode_zc(&page) {
            Ok(Node::Internal(children)) => {
                if key > children.last().expect("non-empty").max_key.as_ref() {
                    return ProofVerdict::Absent;
                }
                expected = children[route(&children, key)].child;
            }
            Ok(Node::Leaf(entries)) => {
                return match entries.binary_search_by(|e| e.key.as_ref().cmp(key)) {
                    Ok(i) => ProofVerdict::Present(entries[i].value.clone()),
                    Err(_) => ProofVerdict::Absent,
                };
            }
            Err(_) => return ProofVerdict::Invalid("page undecodable"),
        }
    }
}

/// Re-walk every subtree overlapping the bounds through the pool,
/// appending in-bounds entries in key order — pruning via the same
/// [`child_overlaps`] predicate the prover uses.
pub(crate) fn verify_range_pages(
    root: Hash,
    start: Bound<&[u8]>,
    end: Bound<&[u8]>,
    pool: &mut PagePool,
    out: &mut Vec<Entry>,
) -> Result<(), &'static str> {
    if root.is_zero() {
        return Ok(());
    }
    let Some(page) = pool.get(&root) else {
        return Err("missing page in proof");
    };
    match Node::decode_zc(&page).map_err(|_| "page undecodable")? {
        Node::Leaf(entries) => {
            out.extend(entries.into_iter().filter(|e| bounds_contain(start, end, &e.key)));
            Ok(())
        }
        Node::Internal(children) => {
            let mut prev: Option<Bytes> = None;
            for c in children {
                if child_overlaps(prev.as_deref(), &c.max_key, start, end) {
                    verify_range_pages(c.child, start, end, pool, out)?;
                }
                prev = Some(c.max_key);
            }
            Ok(())
        }
    }
}

/// MVMB+-Tree's [`ProofScheme`].
pub struct MvmbProofScheme;

impl ProofScheme for MvmbProofScheme {
    fn structure(&self) -> &'static str {
        "mvmb+-tree"
    }

    fn verify_membership(&self, root: Hash, key: &[u8], proof: &Proof) -> ProofVerdict {
        verify(root, key, proof)
    }

    fn verify_key_pages(&self, root: Hash, key: &[u8], pool: &mut PagePool) -> ProofVerdict {
        verify_key_pages(root, key, pool)
    }

    fn verify_range_pages(
        &self,
        root: Hash,
        start: Bound<&[u8]>,
        end: Bound<&[u8]>,
        pool: &mut PagePool,
        out: &mut Vec<Entry>,
    ) -> Result<(), &'static str> {
        verify_range_pages(root, start, end, pool, out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MvmbParams, MvmbTree};
    use siri_core::{Entry, MemStore, SiriIndex};

    fn tree() -> MvmbTree {
        let mut t = MvmbTree::new(MemStore::new_shared(), MvmbParams::default());
        t.batch_insert(
            (0..200)
                .map(|i| {
                    Entry::new(format!("key{i:04}").into_bytes(), format!("v{i}").into_bytes())
                })
                .collect(),
        )
        .unwrap();
        t
    }

    #[test]
    fn presence_and_absence() {
        let t = tree();
        let p = t.prove(b"key0123").unwrap();
        assert_eq!(
            MvmbTree::verify_proof(t.root(), b"key0123", &p),
            ProofVerdict::Present(Bytes::from_static(b"v123"))
        );
        let p = t.prove(b"key0123a").unwrap();
        assert_eq!(MvmbTree::verify_proof(t.root(), b"key0123a", &p), ProofVerdict::Absent);
    }

    #[test]
    fn tampering_detected_at_every_level() {
        let t = tree();
        let proof = t.prove(b"key0050").unwrap();
        assert!(proof.len() >= 2, "need a multi-level tree");
        for page in 0..proof.len() {
            let mut p = proof.clone();
            p.tamper(page, 7);
            assert!(!MvmbTree::verify_proof(t.root(), b"key0050", &p).is_valid());
        }
    }

    #[test]
    fn empty_tree_proofs() {
        let t = MvmbTree::new(MemStore::new_shared(), MvmbParams::default());
        let p = t.prove(b"anything").unwrap();
        assert_eq!(MvmbTree::verify_proof(t.root(), b"anything", &p), ProofVerdict::Absent);
        // Forged non-empty proof against the empty root:
        let forged = Proof::new(vec![Bytes::from_static(b"junk")]);
        assert!(!MvmbTree::verify_proof(t.root(), b"anything", &forged).is_valid());
    }

    #[test]
    fn proof_bound_to_queried_key() {
        let t = tree();
        let p = t.prove(b"key0002").unwrap();
        // Verifying a different key against this path must not produce a
        // false Present.
        let verdict = MvmbTree::verify_proof(t.root(), b"key0199", &p);
        assert!(verdict.value().is_none());
    }
}
