//! Minimal hex codec (lowercase), enough for digests, debugging and tests.

const ALPHABET: &[u8; 16] = b"0123456789abcdef";

/// Encode `bytes` as lowercase hex.
pub fn encode(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len() * 2);
    for &b in bytes {
        out.push(ALPHABET[(b >> 4) as usize] as char);
        out.push(ALPHABET[(b & 0x0f) as usize] as char);
    }
    out
}

/// Decode a hex string (case-insensitive). Returns `None` on odd length or a
/// non-hex character.
pub fn decode(s: &str) -> Option<Vec<u8>> {
    if !s.len().is_multiple_of(2) {
        return None;
    }
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(s.len() / 2);
    for pair in bytes.chunks_exact(2) {
        out.push(nibble(pair[0])? << 4 | nibble(pair[1])?);
    }
    Some(out)
}

fn nibble(c: u8) -> Option<u8> {
    match c {
        b'0'..=b'9' => Some(c - b'0'),
        b'a'..=b'f' => Some(c - b'a' + 10),
        b'A'..=b'F' => Some(c - b'A' + 10),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_known() {
        assert_eq!(encode(&[0x00, 0xff, 0x10]), "00ff10");
        assert_eq!(encode(&[]), "");
    }

    #[test]
    fn decode_known() {
        assert_eq!(decode("00ff10").unwrap(), vec![0x00, 0xff, 0x10]);
        assert_eq!(decode("DEADbeef").unwrap(), vec![0xde, 0xad, 0xbe, 0xef]);
        assert_eq!(decode("").unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn decode_rejects_bad_input() {
        assert!(decode("abc").is_none(), "odd length");
        assert!(decode("zz").is_none(), "non-hex");
        assert!(decode("0g").is_none(), "non-hex second nibble");
    }

    #[test]
    fn round_trip_all_bytes() {
        let all: Vec<u8> = (0..=255).collect();
        assert_eq!(decode(&encode(&all)).unwrap(), all);
    }
}
