//! Cryptographic and non-cryptographic hash primitives for the SIRI index
//! family.
//!
//! Everything in this crate is implemented from scratch so the repository has
//! no external cryptography dependencies:
//!
//! * [`sha256()`] — FIPS 180-4 SHA-256, the content address of every index
//!   page, with runtime-dispatched hardware backends (SHA-NI / NEON) and a
//!   multi-lane [`hash_many`] for batches of sibling pages.
//! * [`struct@Hash`] — a 32-byte digest with hex formatting and ordering.
//! * [`rolling`] — a Rabin-style rolling fingerprint over a sliding window,
//!   the boundary detector used by POS-Tree leaf chunking (§3.4.3 of the
//!   paper).
//! * [`fasthash`] — an FxHash-style multiplicative hasher used where HashDoS
//!   resistance is irrelevant: MBT bucket placement and internal hash maps.
//! * [`hex`] — minimal hex encode/decode used by displays and tests.

pub mod fasthash;
pub mod hex;
pub mod rolling;
pub mod sha256;

mod digest;

pub use digest::Hash;
pub use fasthash::{fx_hash_bytes, FxHashMap, FxHashSet, FxHasher};
pub use rolling::{GearHash, RollingHash, DEFAULT_WINDOW, GEAR_WINDOW};
pub use sha256::{
    active_backend, available_backends, digest_with, hash_many, hash_many_with, sha256, Sha256,
    Sha256Backend,
};
