//! SHA-256 as specified in FIPS 180-4, with hardware-accelerated backends.
//!
//! This is the content-addressing hash for every index page in the
//! repository, and therefore the single hottest primitive on the write
//! path. Three backends implement the same compression function:
//!
//! * **scalar** — the portable FIPS 180-4 compressor, always compiled and
//!   always correct. It is the reference the other backends are tested
//!   against, and the fallback on machines without crypto extensions.
//! * **sha-ni** — x86_64 SHA New Instructions (`sha256rnds2` /
//!   `sha256msg1` / `sha256msg2`), selected at runtime via
//!   `is_x86_feature_detected!`.
//! * **neon** — aarch64 SHA2 crypto extensions (`vsha256hq_u32` family),
//!   selected at runtime via `is_aarch64_feature_detected!`.
//!
//! Backend choice never changes a digest: all backends compute the same
//! function, block for block, and the differential tests in this module
//! and in `tests/hash_backends.rs` pin that. The `SIRI_SHA256` environment
//! variable overrides detection for testing and benchmarking:
//! `SIRI_SHA256=scalar` forces the portable path, `SIRI_SHA256=accel`
//! asks for the fastest available (falling back to scalar when the CPU
//! has no crypto extensions). Any other value panics — a silent typo here
//! would invalidate benchmark comparisons.
//!
//! [`hash_many`] hashes a batch of independent buffers ("sibling pages"
//! in index-commit terms). On the scalar path it interleaves two
//! compressions instruction-by-instruction, which buys instruction-level
//! parallelism the serial dependency chain of a single SHA-256 forbids;
//! on accelerated paths each lane is already near port-saturation, so
//! lanes run back to back.

use crate::digest::Hash;

/// Initial hash values: first 32 bits of the fractional parts of the square
/// roots of the first 8 primes.
const H0: [u32; 8] = [
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
];

/// Round constants: first 32 bits of the fractional parts of the cube roots
/// of the first 64 primes.
const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

/// Which compression-function implementation is in use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sha256Backend {
    /// Portable FIPS 180-4 compressor.
    Scalar,
    /// x86_64 SHA New Instructions.
    ShaNi,
    /// aarch64 SHA2 crypto extensions.
    Neon,
}

impl Sha256Backend {
    /// Stable name stamped into BENCH_*.json artifacts (`scalar`,
    /// `sha-ni`, `neon`).
    pub fn name(self) -> &'static str {
        match self {
            Sha256Backend::Scalar => "scalar",
            Sha256Backend::ShaNi => "sha-ni",
            Sha256Backend::Neon => "neon",
        }
    }
}

/// Fastest backend the current CPU supports.
fn detect_backend() -> Sha256Backend {
    #[cfg(target_arch = "x86_64")]
    {
        if is_x86_feature_detected!("sha")
            && is_x86_feature_detected!("ssse3")
            && is_x86_feature_detected!("sse4.1")
        {
            return Sha256Backend::ShaNi;
        }
    }
    #[cfg(target_arch = "aarch64")]
    {
        if std::arch::is_aarch64_feature_detected!("sha2") {
            return Sha256Backend::Neon;
        }
    }
    Sha256Backend::Scalar
}

/// The backend all digests in this process use, resolved once from CPU
/// detection and the `SIRI_SHA256` override.
pub fn active_backend() -> Sha256Backend {
    use std::sync::OnceLock;
    static ACTIVE: OnceLock<Sha256Backend> = OnceLock::new();
    *ACTIVE.get_or_init(|| match std::env::var("SIRI_SHA256") {
        Ok(v) if v == "scalar" => Sha256Backend::Scalar,
        Ok(v) if v == "accel" || v.is_empty() => detect_backend(),
        Ok(v) => panic!("SIRI_SHA256 must be `scalar` or `accel`, got `{v}`"),
        Err(_) => detect_backend(),
    })
}

/// Every backend this binary can run on this machine. Scalar is always
/// present; an accelerated backend is added when the CPU supports it.
/// The differential tests iterate this so accelerated paths are exercised
/// exactly where they can be.
pub fn available_backends() -> Vec<Sha256Backend> {
    let mut v = vec![Sha256Backend::Scalar];
    if detect_backend() != Sha256Backend::Scalar {
        v.push(detect_backend());
    }
    v
}

/// Compress a run of whole 64-byte blocks (`data.len() % 64 == 0`) with
/// the given backend. The single dispatch point: everything else in this
/// module funnels through here.
#[inline]
fn compress_blocks(backend: Sha256Backend, state: &mut [u32; 8], data: &[u8]) {
    debug_assert_eq!(data.len() % 64, 0);
    match backend {
        Sha256Backend::Scalar => {
            for block in data.chunks_exact(64) {
                compress_scalar(state, block);
            }
        }
        #[cfg(target_arch = "x86_64")]
        // SAFETY: the `ShaNi` variant is only ever produced by
        // `detect_backend` after `is_x86_feature_detected!` confirmed the
        // `sha`, `ssse3` and `sse4.1` features on this CPU, which is
        // exactly the kernel's `#[target_feature]` precondition. `state`
        // is a valid `&mut [u32; 8]` and `data.len() % 64 == 0` (asserted
        // above), so every 16-byte intrinsic load stays in bounds.
        Sha256Backend::ShaNi => unsafe { sha_ni::compress(state, data) },
        #[cfg(target_arch = "aarch64")]
        // SAFETY: the `Neon` variant is only produced by `detect_backend`
        // after runtime detection confirmed the `sha2` crypto extension,
        // matching the kernel's `#[target_feature]` precondition. `state`
        // is a valid `&mut [u32; 8]` and `data.len() % 64 == 0` (asserted
        // above), so every 16-byte vector load stays in bounds.
        Sha256Backend::Neon => unsafe { neon::compress(state, data) },
        #[allow(unreachable_patterns)]
        _ => unreachable!("backend unavailable on this architecture"),
    }
}

/// Portable FIPS 180-4 compression of one 64-byte block.
fn compress_scalar(state: &mut [u32; 8], block: &[u8]) {
    debug_assert_eq!(block.len(), 64);
    let mut w = [0u32; 64];
    for (i, chunk) in block.chunks_exact(4).enumerate() {
        w[i] = u32::from_be_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
    }
    for i in 16..64 {
        let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
        let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
        w[i] = w[i - 16].wrapping_add(s0).wrapping_add(w[i - 7]).wrapping_add(s1);
    }
    let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = *state;
    for i in 0..64 {
        let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
        let ch = (e & f) ^ (!e & g);
        let t1 = h.wrapping_add(s1).wrapping_add(ch).wrapping_add(K[i]).wrapping_add(w[i]);
        let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
        let maj = (a & b) ^ (a & c) ^ (b & c);
        let t2 = s0.wrapping_add(maj);
        h = g;
        g = f;
        f = e;
        e = d.wrapping_add(t1);
        d = c;
        c = b;
        b = a;
        a = t1.wrapping_add(t2);
    }
    state[0] = state[0].wrapping_add(a);
    state[1] = state[1].wrapping_add(b);
    state[2] = state[2].wrapping_add(c);
    state[3] = state[3].wrapping_add(d);
    state[4] = state[4].wrapping_add(e);
    state[5] = state[5].wrapping_add(f);
    state[6] = state[6].wrapping_add(g);
    state[7] = state[7].wrapping_add(h);
}

/// Two independent block compressions, interleaved instruction by
/// instruction. SHA-256 rounds form a serial dependency chain, so a single
/// compression leaves most execution ports idle; two chains fill them.
/// This is what makes scalar [`hash_many`] faster than a sequential loop.
fn compress2_scalar(sa: &mut [u32; 8], block_a: &[u8], sb: &mut [u32; 8], block_b: &[u8]) {
    debug_assert_eq!(block_a.len(), 64);
    debug_assert_eq!(block_b.len(), 64);
    let mut wa = [0u32; 64];
    let mut wb = [0u32; 64];
    for i in 0..16 {
        wa[i] = u32::from_be_bytes(block_a[i * 4..i * 4 + 4].try_into().unwrap());
        wb[i] = u32::from_be_bytes(block_b[i * 4..i * 4 + 4].try_into().unwrap());
    }
    for i in 16..64 {
        let sa0 = wa[i - 15].rotate_right(7) ^ wa[i - 15].rotate_right(18) ^ (wa[i - 15] >> 3);
        let sb0 = wb[i - 15].rotate_right(7) ^ wb[i - 15].rotate_right(18) ^ (wb[i - 15] >> 3);
        let sa1 = wa[i - 2].rotate_right(17) ^ wa[i - 2].rotate_right(19) ^ (wa[i - 2] >> 10);
        let sb1 = wb[i - 2].rotate_right(17) ^ wb[i - 2].rotate_right(19) ^ (wb[i - 2] >> 10);
        wa[i] = wa[i - 16].wrapping_add(sa0).wrapping_add(wa[i - 7]).wrapping_add(sa1);
        wb[i] = wb[i - 16].wrapping_add(sb0).wrapping_add(wb[i - 7]).wrapping_add(sb1);
    }
    let [mut a0, mut b0, mut c0, mut d0, mut e0, mut f0, mut g0, mut h0] = *sa;
    let [mut a1, mut b1, mut c1, mut d1, mut e1, mut f1, mut g1, mut h1] = *sb;
    for i in 0..64 {
        let t1a = h0
            .wrapping_add(e0.rotate_right(6) ^ e0.rotate_right(11) ^ e0.rotate_right(25))
            .wrapping_add((e0 & f0) ^ (!e0 & g0))
            .wrapping_add(K[i])
            .wrapping_add(wa[i]);
        let t1b = h1
            .wrapping_add(e1.rotate_right(6) ^ e1.rotate_right(11) ^ e1.rotate_right(25))
            .wrapping_add((e1 & f1) ^ (!e1 & g1))
            .wrapping_add(K[i])
            .wrapping_add(wb[i]);
        let t2a = (a0.rotate_right(2) ^ a0.rotate_right(13) ^ a0.rotate_right(22))
            .wrapping_add((a0 & b0) ^ (a0 & c0) ^ (b0 & c0));
        let t2b = (a1.rotate_right(2) ^ a1.rotate_right(13) ^ a1.rotate_right(22))
            .wrapping_add((a1 & b1) ^ (a1 & c1) ^ (b1 & c1));
        h0 = g0;
        h1 = g1;
        g0 = f0;
        g1 = f1;
        f0 = e0;
        f1 = e1;
        e0 = d0.wrapping_add(t1a);
        e1 = d1.wrapping_add(t1b);
        d0 = c0;
        d1 = c1;
        c0 = b0;
        c1 = b1;
        b0 = a0;
        b1 = a1;
        a0 = t1a.wrapping_add(t2a);
        a1 = t1b.wrapping_add(t2b);
    }
    for (s, v) in sa.iter_mut().zip([a0, b0, c0, d0, e0, f0, g0, h0]) {
        *s = s.wrapping_add(v);
    }
    for (s, v) in sb.iter_mut().zip([a1, b1, c1, d1, e1, f1, g1, h1]) {
        *s = s.wrapping_add(v);
    }
}

#[cfg(target_arch = "x86_64")]
mod sha_ni {
    //! SHA-NI compressor, a faithful translation of the canonical
    //! intrinsics sequence (Gulley et al., "Intel SHA Extensions").
    //! `sha256rnds2` advances two rounds over an (ABEF, CDGH) register
    //! split; the message schedule rotates through four xmm registers with
    //! `sha256msg1`/`sha256msg2` doing the W-extension.

    use super::K;
    use core::arch::x86_64::*;

    /// # Safety
    ///
    /// * The caller must have verified the `sha`, `ssse3` and `sse4.1`
    ///   CPU features at runtime (`is_x86_feature_detected!`); calling
    ///   this on a CPU without them is immediate undefined behavior.
    /// * `data.len()` must be a multiple of 64: the block loop issues
    ///   four unchecked 16-byte `_mm_loadu_si128` loads per block, so a
    ///   ragged tail would read out of bounds.
    /// * `state` is a plain `&mut` reference — validity and aliasing are
    ///   guaranteed by the borrow checker; both 16-byte halves are read
    ///   and written through unaligned intrinsics, so no alignment
    ///   precondition beyond the reference itself.
    #[target_feature(enable = "sha,sse2,ssse3,sse4.1")]
    pub unsafe fn compress(state: &mut [u32; 8], data: &[u8]) {
        debug_assert_eq!(data.len() % 64, 0);
        // Byte shuffle turning 16 little-endian loaded bytes into 4
        // big-endian u32 lanes.
        let mask = _mm_set_epi64x(0x0c0d0e0f08090a0bu64 as i64, 0x0405060700010203u64 as i64);

        // Repack [a,b,c,d],[e,f,g,h] into the (ABEF, CDGH) order the
        // rnds2 instruction wants.
        let tmp = _mm_loadu_si128(state.as_ptr() as *const __m128i);
        let mut state1 = _mm_loadu_si128(state.as_ptr().add(4) as *const __m128i);
        let tmp = _mm_shuffle_epi32::<0xB1>(tmp); // CDAB
        state1 = _mm_shuffle_epi32::<0x1B>(state1); // EFGH
        let mut state0 = _mm_alignr_epi8::<8>(tmp, state1); // ABEF
        state1 = _mm_blend_epi16::<0xF0>(state1, tmp); // CDGH

        for block in data.chunks_exact(64) {
            let save0 = state0;
            let save1 = state1;
            let mut msgs = [_mm_setzero_si128(); 4];
            for i in 0..16 {
                let m = if i < 4 {
                    let raw = _mm_loadu_si128(block.as_ptr().add(16 * i) as *const __m128i);
                    let m = _mm_shuffle_epi8(raw, mask);
                    msgs[i] = m;
                    m
                } else {
                    msgs[i % 4]
                };
                let mut msg =
                    _mm_add_epi32(m, _mm_loadu_si128(K.as_ptr().add(4 * i) as *const __m128i));
                state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
                if (3..=14).contains(&i) {
                    // Begin extending the schedule quad that will be
                    // consumed four quads from now.
                    let tmp = _mm_alignr_epi8::<4>(m, msgs[(i + 3) % 4]);
                    let j = (i + 1) % 4;
                    msgs[j] = _mm_add_epi32(msgs[j], tmp);
                    msgs[j] = _mm_sha256msg2_epu32(msgs[j], m);
                }
                msg = _mm_shuffle_epi32::<0x0E>(msg);
                state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
                if (1..=12).contains(&i) {
                    let j = (i + 3) % 4;
                    msgs[j] = _mm_sha256msg1_epu32(msgs[j], m);
                }
            }
            state0 = _mm_add_epi32(state0, save0);
            state1 = _mm_add_epi32(state1, save1);
        }

        // Unpack (ABEF, CDGH) back to [a..d],[e..h].
        let tmp = _mm_shuffle_epi32::<0x1B>(state0); // FEBA
        state1 = _mm_shuffle_epi32::<0xB1>(state1); // DCHG
        state0 = _mm_blend_epi16::<0xF0>(tmp, state1); // DCBA
        state1 = _mm_alignr_epi8::<8>(state1, tmp); // HGFE
        _mm_storeu_si128(state.as_mut_ptr() as *mut __m128i, state0);
        _mm_storeu_si128(state.as_mut_ptr().add(4) as *mut __m128i, state1);
    }
}

#[cfg(target_arch = "aarch64")]
mod neon {
    //! aarch64 SHA2 crypto-extension compressor. `vsha256hq`/`vsha256h2q`
    //! advance four rounds over the (abcd, efgh) halves; `vsha256su0q` /
    //! `vsha256su1q` extend the message schedule.

    use super::K;
    use core::arch::aarch64::*;

    /// # Safety
    ///
    /// * The caller must have verified the `sha2` crypto extension at
    ///   runtime (`std::arch::is_aarch64_feature_detected!`); executing
    ///   the SHA instructions without it is undefined behavior.
    /// * `data.len()` must be a multiple of 64: each block iteration
    ///   issues four unchecked 16-byte `vld1q_u8` loads, so a ragged
    ///   tail would read out of bounds.
    /// * `state` is a plain `&mut` reference — validity and aliasing are
    ///   guaranteed by the borrow checker; `vld1q_u32`/`vst1q_u32` have
    ///   no alignment requirement beyond the element type.
    #[target_feature(enable = "sha2")]
    pub unsafe fn compress(state: &mut [u32; 8], data: &[u8]) {
        debug_assert_eq!(data.len() % 64, 0);
        let mut abcd = vld1q_u32(state.as_ptr());
        let mut efgh = vld1q_u32(state.as_ptr().add(4));
        for block in data.chunks_exact(64) {
            let save_abcd = abcd;
            let save_efgh = efgh;
            let mut msgs = [
                vreinterpretq_u32_u8(vrev32q_u8(vld1q_u8(block.as_ptr()))),
                vreinterpretq_u32_u8(vrev32q_u8(vld1q_u8(block.as_ptr().add(16)))),
                vreinterpretq_u32_u8(vrev32q_u8(vld1q_u8(block.as_ptr().add(32)))),
                vreinterpretq_u32_u8(vrev32q_u8(vld1q_u8(block.as_ptr().add(48)))),
            ];
            let mut wk = vaddq_u32(msgs[0], vld1q_u32(K.as_ptr()));
            for i in 0..16 {
                let abcd_prev = abcd;
                if i < 12 {
                    msgs[i % 4] = vsha256su0q_u32(msgs[i % 4], msgs[(i + 1) % 4]);
                }
                abcd = vsha256hq_u32(abcd, efgh, wk);
                efgh = vsha256h2q_u32(efgh, abcd_prev, wk);
                if i < 12 {
                    msgs[i % 4] =
                        vsha256su1q_u32(msgs[i % 4], msgs[(i + 2) % 4], msgs[(i + 3) % 4]);
                }
                if i < 15 {
                    wk = vaddq_u32(msgs[(i + 1) % 4], vld1q_u32(K.as_ptr().add(4 * (i + 1))));
                }
            }
            abcd = vaddq_u32(abcd, save_abcd);
            efgh = vaddq_u32(efgh, save_efgh);
        }
        vst1q_u32(state.as_mut_ptr(), abcd);
        vst1q_u32(state.as_mut_ptr().add(4), efgh);
    }
}

/// The 1–2 padding-bearing final blocks of a message of length `len` whose
/// last `len % 64` bytes are `tail`: 0x80 terminator, zeros, 8-byte
/// big-endian bit length.
fn pad_tail(tail: &[u8], len: u64) -> ([u8; 128], usize) {
    debug_assert!(tail.len() < 64);
    let mut buf = [0u8; 128];
    buf[..tail.len()].copy_from_slice(tail);
    buf[tail.len()] = 0x80;
    let blocks = if tail.len() < 56 { 1 } else { 2 };
    buf[blocks * 64 - 8..blocks * 64].copy_from_slice(&len.wrapping_mul(8).to_be_bytes());
    (buf, blocks)
}

fn state_to_hash(state: [u32; 8]) -> Hash {
    let mut out = [0u8; 32];
    for (i, word) in state.iter().enumerate() {
        out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
    }
    Hash::from_bytes(out)
}

/// One-shot digest with an explicit backend. Diagnostic/testing surface:
/// production code uses [`Sha256::digest`], which picks the active backend.
pub fn digest_with(backend: Sha256Backend, data: &[u8]) -> Hash {
    let mut state = H0;
    let full = data.len() - data.len() % 64;
    compress_blocks(backend, &mut state, &data[..full]);
    let (pad, blocks) = pad_tail(&data[full..], data.len() as u64);
    compress_blocks(backend, &mut state, &pad[..blocks * 64]);
    state_to_hash(state)
}

/// A message viewed as its exact padded block sequence, without copying the
/// body: whole blocks come from the message, the final 1–2 from the pad
/// buffer. Lets the multi-lane scalar path walk two messages of different
/// lengths block-aligned.
struct PaddedBlocks<'a> {
    body: &'a [u8],
    pad: [u8; 128],
    blocks: usize,
}

impl<'a> PaddedBlocks<'a> {
    fn new(data: &'a [u8]) -> Self {
        let full = data.len() - data.len() % 64;
        let (pad, pad_blocks) = pad_tail(&data[full..], data.len() as u64);
        PaddedBlocks { body: &data[..full], pad, blocks: full / 64 + pad_blocks }
    }

    fn len(&self) -> usize {
        self.blocks
    }

    fn block(&self, i: usize) -> &[u8] {
        let body_blocks = self.body.len() / 64;
        if i < body_blocks {
            &self.body[i * 64..i * 64 + 64]
        } else {
            let j = i - body_blocks;
            &self.pad[j * 64..j * 64 + 64]
        }
    }
}

/// Hash a batch of independent buffers with an explicit backend.
pub fn hash_many_with(backend: Sha256Backend, inputs: &[&[u8]]) -> Vec<Hash> {
    if backend != Sha256Backend::Scalar {
        // Hardware rounds already saturate the relevant ports; lanes run
        // back to back.
        return inputs.iter().map(|d| digest_with(backend, d)).collect();
    }
    let mut out = Vec::with_capacity(inputs.len());
    let mut pairs = inputs.chunks_exact(2);
    for pair in &mut pairs {
        let pa = PaddedBlocks::new(pair[0]);
        let pb = PaddedBlocks::new(pair[1]);
        let mut sa = H0;
        let mut sb = H0;
        let common = pa.len().min(pb.len());
        for i in 0..common {
            compress2_scalar(&mut sa, pa.block(i), &mut sb, pb.block(i));
        }
        for i in common..pa.len() {
            compress_scalar(&mut sa, pa.block(i));
        }
        for i in common..pb.len() {
            compress_scalar(&mut sb, pb.block(i));
        }
        out.push(state_to_hash(sa));
        out.push(state_to_hash(sb));
    }
    if let [last] = pairs.remainder() {
        out.push(digest_with(Sha256Backend::Scalar, last));
    }
    out
}

/// Hash a batch of independent buffers — sibling pages of one index
/// commit — returning one digest per input, identical to hashing each
/// input alone.
pub fn hash_many(inputs: &[&[u8]]) -> Vec<Hash> {
    hash_many_with(active_backend(), inputs)
}

/// Streaming SHA-256 state.
///
/// ```
/// use siri_crypto::Sha256;
/// let mut h = Sha256::new();
/// h.update(b"hello ");
/// h.update(b"world");
/// assert_eq!(
///     h.finalize().to_hex(),
///     "b94d27b9934d3e08a52e52d7da7dabfac484efe37a5380ee9088f7ace2efcde9"
/// );
/// ```
#[derive(Clone)]
pub struct Sha256 {
    state: [u32; 8],
    /// Bytes processed so far (for the length suffix).
    len: u64,
    buf: [u8; 64],
    buf_len: usize,
    backend: Sha256Backend,
}

impl Default for Sha256 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha256 {
    pub fn new() -> Self {
        Self::with_backend(active_backend())
    }

    /// Streaming state pinned to an explicit backend (testing surface).
    pub fn with_backend(backend: Sha256Backend) -> Self {
        Sha256 { state: H0, len: 0, buf: [0u8; 64], buf_len: 0, backend }
    }

    /// One-shot digest of a single slice. Prefer this over
    /// `new`/`update`/`finalize` when the whole message is in hand: it
    /// skips the streaming buffer entirely and feeds the backend maximal
    /// block runs.
    pub fn digest(data: &[u8]) -> Hash {
        digest_with(active_backend(), data)
    }

    /// Absorb `data` into the hash state.
    pub fn update(&mut self, data: &[u8]) {
        self.len = self.len.wrapping_add(data.len() as u64);
        let mut rest = data;
        if self.buf_len > 0 {
            let take = (64 - self.buf_len).min(rest.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&rest[..take]);
            self.buf_len += take;
            rest = &rest[take..];
            if self.buf_len == 64 {
                let block = self.buf;
                compress_blocks(self.backend, &mut self.state, &block);
                self.buf_len = 0;
            } else {
                // Input fit entirely in the partial buffer; nothing more to do.
                return;
            }
        }
        let full = rest.len() - rest.len() % 64;
        compress_blocks(self.backend, &mut self.state, &rest[..full]);
        let tail = &rest[full..];
        self.buf[..tail.len()].copy_from_slice(tail);
        self.buf_len = tail.len();
    }

    /// Finish the computation and return the digest.
    pub fn finalize(mut self) -> Hash {
        let (pad, blocks) = pad_tail(&self.buf[..self.buf_len], self.len);
        compress_blocks(self.backend, &mut self.state, &pad[..blocks * 64]);
        state_to_hash(self.state)
    }
}

/// One-shot SHA-256 of `data`.
pub fn sha256(data: &[u8]) -> Hash {
    Sha256::digest(data)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// NIST / well-known vectors.
    const VECTORS: &[(&[u8], &str)] = &[
        (b"", "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"),
        (b"abc", "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"),
        (
            b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1",
        ),
        (
            b"abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmnhijklmnoijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu",
            "cf5b16a778af8380036ce59e7b0492370b249b11e8f07a51afac45037afee9d1",
        ),
        (b"hello world", "b94d27b9934d3e08a52e52d7da7dabfac484efe37a5380ee9088f7ace2efcde9"),
    ];

    #[test]
    fn nist_vectors_every_backend() {
        for backend in available_backends() {
            for (msg, want) in VECTORS {
                assert_eq!(
                    digest_with(backend, msg).to_hex(),
                    *want,
                    "backend {backend:?} message {msg:?}"
                );
                let mut h = Sha256::with_backend(backend);
                h.update(msg);
                assert_eq!(h.finalize().to_hex(), *want, "streaming {backend:?}");
            }
        }
    }

    #[test]
    fn million_a_every_backend() {
        for backend in available_backends() {
            let mut h = Sha256::with_backend(backend);
            let chunk = [b'a'; 1000];
            for _ in 0..1000 {
                h.update(&chunk);
            }
            assert_eq!(
                h.finalize().to_hex(),
                "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0",
                "backend {backend:?}"
            );
        }
    }

    #[test]
    fn streaming_matches_oneshot_at_all_split_points() {
        let data: Vec<u8> = (0..257u16).map(|i| (i % 251) as u8).collect();
        let want = sha256(&data);
        for split in 0..=data.len() {
            let mut h = Sha256::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize(), want, "split {}", split);
        }
    }

    #[test]
    fn length_boundaries_around_block_size_every_backend() {
        // Exercise messages whose padded length straddles one vs two blocks,
        // on every backend, streamed byte by byte vs one-shot.
        for backend in available_backends() {
            for len in 54..=66usize {
                let data = vec![0xABu8; len];
                let a = digest_with(backend, &data);
                let mut h = Sha256::with_backend(backend);
                for b in &data {
                    h.update(std::slice::from_ref(b));
                }
                assert_eq!(h.finalize(), a, "backend {backend:?} len {}", len);
            }
        }
    }

    #[test]
    fn backends_agree_on_block_boundary_lengths() {
        let backends = available_backends();
        let data: Vec<u8> = (0..1024usize).map(|i| (i * 31 % 251) as u8).collect();
        for len in [0, 1, 55, 56, 57, 63, 64, 65, 119, 120, 127, 128, 129, 256, 1000, 1024] {
            let want = digest_with(Sha256Backend::Scalar, &data[..len]);
            for &b in &backends {
                assert_eq!(digest_with(b, &data[..len]), want, "backend {b:?} len {len}");
            }
        }
    }

    #[test]
    fn hash_many_matches_sequential_every_backend() {
        // Lengths chosen to hit unequal block counts within a pair, empty
        // inputs, and the odd-count remainder lane.
        let bufs: Vec<Vec<u8>> = [0usize, 1, 55, 64, 65, 119, 128, 200, 1024, 3]
            .iter()
            .map(|&n| (0..n).map(|i| (i * 7 % 256) as u8).collect())
            .collect();
        let views: Vec<&[u8]> = bufs.iter().map(|b| b.as_slice()).collect();
        for backend in available_backends() {
            // Every prefix size exercises even and odd batch sizes.
            for take in 0..=views.len() {
                let got = hash_many_with(backend, &views[..take]);
                let want: Vec<Hash> =
                    views[..take].iter().map(|d| digest_with(backend, d)).collect();
                assert_eq!(got, want, "backend {backend:?} take {take}");
            }
        }
    }

    #[test]
    fn backend_names_are_stable() {
        assert_eq!(Sha256Backend::Scalar.name(), "scalar");
        assert_eq!(Sha256Backend::ShaNi.name(), "sha-ni");
        assert_eq!(Sha256Backend::Neon.name(), "neon");
        // The active backend is always one of the available ones.
        assert!(available_backends().contains(&active_backend()));
    }

    #[test]
    fn distinct_inputs_distinct_digests() {
        assert_ne!(sha256(b"a"), sha256(b"b"));
        assert_ne!(sha256(b""), sha256(b"\0"));
        assert_ne!(sha256(b"ab"), sha256(b"a\0b"));
    }
}
