//! The 32-byte content address used throughout the repository.

use std::fmt;

use crate::hex;

/// A 32-byte SHA-256 digest identifying an index page (or any other blob) in
/// the content-addressed store.
///
/// `Hash` is `Copy` on purpose: page identifiers flow through every layer of
/// the system and are far cheaper to copy than to reference-count.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Hash([u8; 32]);

impl Hash {
    /// The all-zero digest, used as the root of an empty index.
    pub const ZERO: Hash = Hash([0u8; 32]);

    pub const LEN: usize = 32;

    #[inline]
    pub const fn from_bytes(bytes: [u8; 32]) -> Self {
        Hash(bytes)
    }

    #[inline]
    pub fn as_bytes(&self) -> &[u8; 32] {
        &self.0
    }

    /// Parse from a slice; returns `None` unless exactly 32 bytes long.
    pub fn from_slice(slice: &[u8]) -> Option<Self> {
        let arr: [u8; 32] = slice.try_into().ok()?;
        Some(Hash(arr))
    }

    /// True for the sentinel root of an empty index.
    #[inline]
    pub fn is_zero(&self) -> bool {
        self.0 == [0u8; 32]
    }

    pub fn to_hex(&self) -> String {
        hex::encode(&self.0)
    }

    pub fn from_hex(s: &str) -> Option<Self> {
        let bytes = hex::decode(s)?;
        Self::from_slice(&bytes)
    }

    /// The low 64 bits of the digest, used by POS-Tree internal layers to
    /// test the boundary pattern directly on child hashes (§3.4.3).
    #[inline]
    pub fn low64(&self) -> u64 {
        let [.., b0, b1, b2, b3, b4, b5, b6, b7] = self.0;
        u64::from_le_bytes([b0, b1, b2, b3, b4, b5, b6, b7])
    }
}

impl fmt::Debug for Hash {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Hash({}..)", &self.to_hex()[..12])
    }
}

impl fmt::Display for Hash {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_hex())
    }
}

impl AsRef<[u8]> for Hash {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<[u8; 32]> for Hash {
    fn from(b: [u8; 32]) -> Self {
        Hash(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hex_round_trip() {
        let h = crate::sha256(b"round trip");
        let parsed = Hash::from_hex(&h.to_hex()).unwrap();
        assert_eq!(h, parsed);
    }

    #[test]
    fn from_slice_rejects_wrong_lengths() {
        assert!(Hash::from_slice(&[0u8; 31]).is_none());
        assert!(Hash::from_slice(&[0u8; 33]).is_none());
        assert!(Hash::from_slice(&[0u8; 32]).is_some());
    }

    #[test]
    fn zero_sentinel() {
        assert!(Hash::ZERO.is_zero());
        assert!(!crate::sha256(b"x").is_zero());
    }

    #[test]
    fn ordering_is_bytewise() {
        let a = Hash::from_bytes([0u8; 32]);
        let mut b_raw = [0u8; 32];
        b_raw[0] = 1;
        let b = Hash::from_bytes(b_raw);
        assert!(a < b);
    }

    #[test]
    fn low64_reads_trailing_bytes() {
        let mut raw = [0u8; 32];
        raw[24..32].copy_from_slice(&0xDEAD_BEEF_u64.to_le_bytes());
        assert_eq!(Hash::from_bytes(raw).low64(), 0xDEAD_BEEF);
    }
}
