//! Rabin-style rolling fingerprint over a fixed-size sliding window.
//!
//! POS-Tree partitions its bottom (data) layer with content-defined chunking:
//! a window slides over the serialized record stream and a node boundary is
//! declared wherever the window fingerprint matches a pattern such as "the
//! last q bits are all ones" (§3.4.3 of the paper). Content-defined chunking
//! avoids the boundary-shifting problem of fixed-size chunking [Eshghi &
//! Tang 2005].
//!
//! The fingerprint here is a *buzhash* (cyclic polynomial): each byte is
//! mapped through a fixed random table and combined with rotations. Like a
//! true Rabin polynomial fingerprint it supports O(1) slide (add one byte,
//! expel the oldest) and has uniformly distributed low bits, which is the
//! only property chunking needs.

/// Window size used when callers do not choose one. 67 bytes matches the
/// Noms default quoted in §5.6.2 of the paper.
pub const DEFAULT_WINDOW: usize = 67;

/// 256 pseudo-random 64-bit values, one per byte value. Generated once from
/// a SplitMix64 sequence with a fixed seed so chunk boundaries are stable
/// across runs and platforms (structural invariance depends on this).
fn byte_table() -> &'static [u64; 256] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u64; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut state: u64 = 0x9E37_79B9_7F4A_7C15;
        let mut table = [0u64; 256];
        for slot in table.iter_mut() {
            // SplitMix64 step.
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            *slot = z ^ (z >> 31);
        }
        table
    })
}

/// A rolling fingerprint over the last `window` bytes fed in.
///
/// ```
/// use siri_crypto::RollingHash;
/// let mut r = RollingHash::new(4);
/// for b in b"abcdef" {
///     r.push(*b);
/// }
/// // The fingerprint depends only on the final window ("cdef"):
/// let mut fresh = RollingHash::new(4);
/// for b in b"cdef" {
///     fresh.push(*b);
/// }
/// assert_eq!(r.fingerprint(), fresh.fingerprint());
/// ```
#[derive(Clone)]
pub struct RollingHash {
    window: usize,
    ring: Vec<u8>,
    head: usize,
    filled: usize,
    value: u64,
}

impl RollingHash {
    /// Create a roller with the given window size (must be > 0).
    pub fn new(window: usize) -> Self {
        assert!(window > 0, "rolling hash window must be positive");
        RollingHash { window, ring: vec![0; window], head: 0, filled: 0, value: 0 }
    }

    pub fn with_default_window() -> Self {
        Self::new(DEFAULT_WINDOW)
    }

    pub fn window(&self) -> usize {
        self.window
    }

    /// Slide the window forward by one byte.
    #[inline]
    pub fn push(&mut self, byte: u8) {
        let table = byte_table();
        let outgoing = self.ring[self.head];
        self.ring[self.head] = byte;
        self.head = (self.head + 1) % self.window;
        if self.filled < self.window {
            self.filled += 1;
            self.value = self.value.rotate_left(1) ^ table[byte as usize];
        } else {
            // Remove the contribution of the byte leaving the window: it has
            // been rotated `window` times since insertion.
            let w = (self.window % 64) as u32;
            self.value = self.value.rotate_left(1)
                ^ table[outgoing as usize].rotate_left(w)
                ^ table[byte as usize];
        }
    }

    /// Feed a whole slice.
    #[inline]
    pub fn push_slice(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.push(b);
        }
    }

    /// Current window fingerprint. Only meaningful once at least `window`
    /// bytes have been pushed, but it is defined (and deterministic) before
    /// that too.
    #[inline]
    pub fn fingerprint(&self) -> u64 {
        self.value
    }

    /// Whether the window is fully populated.
    #[inline]
    pub fn is_warm(&self) -> bool {
        self.filled >= self.window
    }

    /// Reset to the empty state, keeping the window size *and the ring
    /// allocation*. O(1): stale ring contents need no clearing because
    /// `push` only reads an expelled byte once `filled == window`, by which
    /// point every slot has been freshly written. Chunkers reset at every
    /// node boundary, so this runs once per chunk on the build hot path.
    pub fn reset(&mut self) {
        self.head = 0;
        self.filled = 0;
        self.value = 0;
    }
}

/// Gear rolling hash — the fast content-defined-chunking fingerprint
/// (Xia et al., FastCDC): one table lookup, one shift, one add per byte,
/// and no ring buffer at all. The window is implicit: after `k` pushes,
/// bit `b` of the value depends only on the last `b + 1` bytes, so the
/// *high* bits carry a ~64-byte effective window while the low bits
/// remember almost nothing. Boundary tests against a gear fingerprint must
/// therefore mask the **top** bits ([`GearHash::mask_high`]), unlike the
/// buzhash whose cyclic rotation keeps all 64 bits uniform.
///
/// Chunk boundaries produced by gear differ from buzhash boundaries, so
/// the POS-Tree exposes the chunker choice as an explicit parameter
/// (`ChunkerKind`): existing trees keep buzhash and their digests; gear is
/// opt-in for new trees.
#[derive(Clone, Default)]
pub struct GearHash {
    value: u64,
    /// Bytes pushed since the last reset, saturating at the warm-up point.
    fed: u32,
}

/// Effective window of the gear fingerprint's top bit, and hence the
/// warm-up length before boundary tests are meaningful. Public so chunkers
/// can compute skip-ahead distances (bytes further than this before the
/// first tested position cannot influence any tested fingerprint).
pub const GEAR_WINDOW: u32 = 64;

impl GearHash {
    pub fn new() -> Self {
        GearHash { value: 0, fed: 0 }
    }

    /// Mask selecting the top `bits` bits — the boundary test for an
    /// expected chunk size of 2^bits bytes is
    /// `fingerprint & mask == mask`.
    pub fn mask_high(bits: u32) -> u64 {
        debug_assert!(bits > 0 && bits < 64);
        ((1u64 << bits) - 1) << (64 - bits)
    }

    /// Slide forward by one byte.
    #[inline]
    pub fn push(&mut self, byte: u8) {
        self.value = (self.value << 1).wrapping_add(gear_table()[byte as usize]);
        self.fed = (self.fed + 1).min(GEAR_WINDOW);
    }

    #[inline]
    pub fn push_slice(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.push(b);
        }
    }

    #[inline]
    pub fn fingerprint(&self) -> u64 {
        self.value
    }

    /// Whether enough bytes have been pushed for the high bits to carry a
    /// full window of history.
    #[inline]
    pub fn is_warm(&self) -> bool {
        self.fed >= GEAR_WINDOW
    }

    pub fn reset(&mut self) {
        self.value = 0;
        self.fed = 0;
    }
}

/// Gear byte table: independent of the buzhash table (different SplitMix64
/// seed) so the two chunkers cannot accidentally correlate. Fixed seed ⇒
/// boundaries stable across runs and platforms.
fn gear_table() -> &'static [u64; 256] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u64; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut state: u64 = 0xD1B5_4A32_D192_ED03;
        let mut table = [0u64; 256];
        for slot in table.iter_mut() {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            *slot = z ^ (z >> 31);
        }
        table
    })
}

/// Convenience: fingerprint of the last `window` bytes of `data` (or of all
/// of `data` when shorter).
pub fn fingerprint(data: &[u8], window: usize) -> u64 {
    let mut r = RollingHash::new(window);
    r.push_slice(data);
    r.fingerprint()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn depends_only_on_window_contents() {
        let window = 16;
        let long: Vec<u8> = (0..200u8).collect();
        let mut a = RollingHash::new(window);
        a.push_slice(&long);
        let mut b = RollingHash::new(window);
        b.push_slice(&long[long.len() - window..]);
        assert_eq!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn different_windows_differ() {
        assert_ne!(fingerprint(b"the quick brown fox", 4), fingerprint(b"the quick brown fix", 4));
    }

    #[test]
    fn reset_restores_initial_state() {
        let mut r = RollingHash::new(8);
        r.push_slice(b"some data here");
        r.reset();
        let fresh = RollingHash::new(8);
        assert_eq!(r.fingerprint(), fresh.fingerprint());
        assert!(!r.is_warm());
    }

    #[test]
    fn warm_flag() {
        let mut r = RollingHash::new(4);
        r.push_slice(b"abc");
        assert!(!r.is_warm());
        r.push(b'd');
        assert!(r.is_warm());
    }

    #[test]
    fn low_bits_are_roughly_uniform() {
        // Chunking quality depends on the low bits behaving uniformly: count
        // how often the low 6 bits are all ones over a pseudo-random stream.
        // Expectation is 1/64; allow a generous band.
        let mut r = RollingHash::new(32);
        let mut hits = 0u32;
        let mut x: u64 = 42;
        const N: u32 = 200_000;
        for _ in 0..N {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            r.push((x >> 33) as u8);
            if r.is_warm() && r.fingerprint() & 0x3f == 0x3f {
                hits += 1;
            }
        }
        let rate = hits as f64 / N as f64;
        assert!((rate - 1.0 / 64.0).abs() < 0.006, "boundary rate {rate} too far from 1/64");
    }

    #[test]
    fn gear_high_bits_are_roughly_uniform() {
        // The gear boundary test uses the top bits; their hit rate over a
        // pseudo-random stream must sit near the design probability.
        let mut g = GearHash::new();
        let mask = GearHash::mask_high(6);
        let mut hits = 0u32;
        let mut x: u64 = 42;
        const N: u32 = 200_000;
        for _ in 0..N {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            g.push((x >> 33) as u8);
            if g.is_warm() && g.fingerprint() & mask == mask {
                hits += 1;
            }
        }
        let rate = hits as f64 / N as f64;
        assert!((rate - 1.0 / 64.0).abs() < 0.006, "gear boundary rate {rate} too far from 1/64");
    }

    #[test]
    fn gear_depends_only_on_recent_bytes() {
        // Two streams sharing their last 64 bytes must agree on the
        // fingerprint's top bits (the only bits boundary tests consult).
        let tail: Vec<u8> = (0..64u8).map(|i| i.wrapping_mul(37)).collect();
        let mut a = GearHash::new();
        a.push_slice(b"a completely different long prefix stream 123456");
        a.push_slice(&tail);
        let mut b = GearHash::new();
        b.push_slice(&tail);
        let mask = GearHash::mask_high(12);
        assert_eq!(a.fingerprint() & mask, b.fingerprint() & mask);
    }

    #[test]
    fn gear_reset_restores_initial_state() {
        let mut g = GearHash::new();
        g.push_slice(b"warm me up with plenty of bytes to cross the window mark....1234");
        assert!(g.is_warm());
        g.reset();
        assert_eq!(g.fingerprint(), 0);
        assert!(!g.is_warm());
    }

    #[test]
    fn buzhash_reset_is_equivalent_to_fresh_state() {
        // reset() no longer zeroes the ring; the stale contents must be
        // invisible: a reset roller must produce identical fingerprints to
        // a brand-new one on every prefix.
        let mut used = RollingHash::new(16);
        used.push_slice(&(0..200u8).collect::<Vec<_>>());
        used.reset();
        let mut fresh = RollingHash::new(16);
        for b in 0..100u8 {
            used.push(b);
            fresh.push(b);
            assert_eq!(used.fingerprint(), fresh.fingerprint(), "after byte {b}");
        }
    }

    #[test]
    fn window_of_64_and_65_edge_cases() {
        // rotate_left(window % 64) must still cancel correctly at the
        // wrap-around sizes.
        for window in [63usize, 64, 65, 128] {
            let data: Vec<u8> = (0..255u8).cycle().take(window * 3).collect();
            let mut a = RollingHash::new(window);
            a.push_slice(&data);
            let mut b = RollingHash::new(window);
            b.push_slice(&data[data.len() - window..]);
            assert_eq!(a.fingerprint(), b.fingerprint(), "window {window}");
        }
    }
}
