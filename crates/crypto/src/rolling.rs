//! Rabin-style rolling fingerprint over a fixed-size sliding window.
//!
//! POS-Tree partitions its bottom (data) layer with content-defined chunking:
//! a window slides over the serialized record stream and a node boundary is
//! declared wherever the window fingerprint matches a pattern such as "the
//! last q bits are all ones" (§3.4.3 of the paper). Content-defined chunking
//! avoids the boundary-shifting problem of fixed-size chunking [Eshghi &
//! Tang 2005].
//!
//! The fingerprint here is a *buzhash* (cyclic polynomial): each byte is
//! mapped through a fixed random table and combined with rotations. Like a
//! true Rabin polynomial fingerprint it supports O(1) slide (add one byte,
//! expel the oldest) and has uniformly distributed low bits, which is the
//! only property chunking needs.

/// Window size used when callers do not choose one. 67 bytes matches the
/// Noms default quoted in §5.6.2 of the paper.
pub const DEFAULT_WINDOW: usize = 67;

/// 256 pseudo-random 64-bit values, one per byte value. Generated once from
/// a SplitMix64 sequence with a fixed seed so chunk boundaries are stable
/// across runs and platforms (structural invariance depends on this).
fn byte_table() -> &'static [u64; 256] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u64; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut state: u64 = 0x9E37_79B9_7F4A_7C15;
        let mut table = [0u64; 256];
        for slot in table.iter_mut() {
            // SplitMix64 step.
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            *slot = z ^ (z >> 31);
        }
        table
    })
}

/// A rolling fingerprint over the last `window` bytes fed in.
///
/// ```
/// use siri_crypto::RollingHash;
/// let mut r = RollingHash::new(4);
/// for b in b"abcdef" {
///     r.push(*b);
/// }
/// // The fingerprint depends only on the final window ("cdef"):
/// let mut fresh = RollingHash::new(4);
/// for b in b"cdef" {
///     fresh.push(*b);
/// }
/// assert_eq!(r.fingerprint(), fresh.fingerprint());
/// ```
#[derive(Clone)]
pub struct RollingHash {
    window: usize,
    ring: Vec<u8>,
    head: usize,
    filled: usize,
    value: u64,
}

impl RollingHash {
    /// Create a roller with the given window size (must be > 0).
    pub fn new(window: usize) -> Self {
        assert!(window > 0, "rolling hash window must be positive");
        RollingHash { window, ring: vec![0; window], head: 0, filled: 0, value: 0 }
    }

    pub fn with_default_window() -> Self {
        Self::new(DEFAULT_WINDOW)
    }

    pub fn window(&self) -> usize {
        self.window
    }

    /// Slide the window forward by one byte.
    #[inline]
    pub fn push(&mut self, byte: u8) {
        let table = byte_table();
        let outgoing = self.ring[self.head];
        self.ring[self.head] = byte;
        self.head = (self.head + 1) % self.window;
        if self.filled < self.window {
            self.filled += 1;
            self.value = self.value.rotate_left(1) ^ table[byte as usize];
        } else {
            // Remove the contribution of the byte leaving the window: it has
            // been rotated `window` times since insertion.
            let w = (self.window % 64) as u32;
            self.value = self.value.rotate_left(1)
                ^ table[outgoing as usize].rotate_left(w)
                ^ table[byte as usize];
        }
    }

    /// Feed a whole slice.
    #[inline]
    pub fn push_slice(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.push(b);
        }
    }

    /// Current window fingerprint. Only meaningful once at least `window`
    /// bytes have been pushed, but it is defined (and deterministic) before
    /// that too.
    #[inline]
    pub fn fingerprint(&self) -> u64 {
        self.value
    }

    /// Whether the window is fully populated.
    #[inline]
    pub fn is_warm(&self) -> bool {
        self.filled >= self.window
    }

    /// Reset to the empty state, keeping the window size.
    pub fn reset(&mut self) {
        self.ring.iter_mut().for_each(|b| *b = 0);
        self.head = 0;
        self.filled = 0;
        self.value = 0;
    }
}

/// Convenience: fingerprint of the last `window` bytes of `data` (or of all
/// of `data` when shorter).
pub fn fingerprint(data: &[u8], window: usize) -> u64 {
    let mut r = RollingHash::new(window);
    r.push_slice(data);
    r.fingerprint()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn depends_only_on_window_contents() {
        let window = 16;
        let long: Vec<u8> = (0..200u8).collect();
        let mut a = RollingHash::new(window);
        a.push_slice(&long);
        let mut b = RollingHash::new(window);
        b.push_slice(&long[long.len() - window..]);
        assert_eq!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn different_windows_differ() {
        assert_ne!(fingerprint(b"the quick brown fox", 4), fingerprint(b"the quick brown fix", 4));
    }

    #[test]
    fn reset_restores_initial_state() {
        let mut r = RollingHash::new(8);
        r.push_slice(b"some data here");
        r.reset();
        let fresh = RollingHash::new(8);
        assert_eq!(r.fingerprint(), fresh.fingerprint());
        assert!(!r.is_warm());
    }

    #[test]
    fn warm_flag() {
        let mut r = RollingHash::new(4);
        r.push_slice(b"abc");
        assert!(!r.is_warm());
        r.push(b'd');
        assert!(r.is_warm());
    }

    #[test]
    fn low_bits_are_roughly_uniform() {
        // Chunking quality depends on the low bits behaving uniformly: count
        // how often the low 6 bits are all ones over a pseudo-random stream.
        // Expectation is 1/64; allow a generous band.
        let mut r = RollingHash::new(32);
        let mut hits = 0u32;
        let mut x: u64 = 42;
        const N: u32 = 200_000;
        for _ in 0..N {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            r.push((x >> 33) as u8);
            if r.is_warm() && r.fingerprint() & 0x3f == 0x3f {
                hits += 1;
            }
        }
        let rate = hits as f64 / N as f64;
        assert!((rate - 1.0 / 64.0).abs() < 0.006, "boundary rate {rate} too far from 1/64");
    }

    #[test]
    fn window_of_64_and_65_edge_cases() {
        // rotate_left(window % 64) must still cancel correctly at the
        // wrap-around sizes.
        for window in [63usize, 64, 65, 128] {
            let data: Vec<u8> = (0..255u8).cycle().take(window * 3).collect();
            let mut a = RollingHash::new(window);
            a.push_slice(&data);
            let mut b = RollingHash::new(window);
            b.push_slice(&data[data.len() - window..]);
            assert_eq!(a.fingerprint(), b.fingerprint(), "window {window}");
        }
    }
}
