//! A fast, non-cryptographic hasher (FxHash-style multiplicative mixing).
//!
//! Used in two places where HashDoS resistance is irrelevant:
//!
//! * MBT bucket placement — the paper's `hash(key) % B` (§3.4.2); the
//!   distribution over buckets only needs to be uniform, not adversarially
//!   robust, and determinism across runs keeps experiments reproducible.
//! * Internal hash maps keyed by [`crate::Hash`] — digests are already
//!   uniformly distributed, so SipHash would be pure overhead (see the Rust
//!   Performance Book's hashing chapter).

use std::hash::{BuildHasherDefault, Hasher};

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// FxHash-style word-at-a-time multiplicative hasher.
#[derive(Default, Clone)]
pub struct FxHasher {
    state: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.state = (self.state.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        // Multiplicative mixing leaves the low bits under-diffused, and MBT
        // takes `hash % B`. A murmur3-style finalizer spreads entropy into
        // the low bits at negligible cost.
        let mut h = self.state;
        h ^= h >> 33;
        h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
        h ^= h >> 33;
        h = h.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
        h ^ (h >> 33)
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let tail = chunks.remainder();
        if !tail.is_empty() {
            let mut buf = [0u8; 8];
            buf[..tail.len()].copy_from_slice(tail);
            // Fold in the length so "ab" and "ab\0" differ.
            self.add_to_hash(u64::from_le_bytes(buf) ^ (tail.len() as u64) << 56);
        }
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add_to_hash(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add_to_hash(v as u64);
    }
}

/// `HashMap` with the fast hasher.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, BuildHasherDefault<FxHasher>>;
/// `HashSet` with the fast hasher.
pub type FxHashSet<T> = std::collections::HashSet<T, BuildHasherDefault<FxHasher>>;

/// One-shot hash of a byte string. This is the `hash(key)` used for MBT
/// bucket placement; it is fixed for the lifetime of the repository because
/// changing it would silently re-shuffle every MBT experiment.
#[inline]
pub fn fx_hash_bytes(bytes: &[u8]) -> u64 {
    let mut h = FxHasher::default();
    h.write(bytes);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        assert_eq!(fx_hash_bytes(b"key-1"), fx_hash_bytes(b"key-1"));
        assert_ne!(fx_hash_bytes(b"key-1"), fx_hash_bytes(b"key-2"));
    }

    #[test]
    fn length_matters() {
        assert_ne!(fx_hash_bytes(b"ab"), fx_hash_bytes(b"ab\0"));
        assert_ne!(fx_hash_bytes(b""), fx_hash_bytes(b"\0"));
    }

    #[test]
    fn bucket_distribution_is_roughly_uniform() {
        // The MBT experiments rely on even bucket fill (§3.4.2 "the data
        // entries can be evenly distributed"). Chi-squared-style sanity
        // check over sequential string keys, the worst realistic case.
        const BUCKETS: usize = 64;
        const KEYS: usize = 64_000;
        let mut counts = [0usize; BUCKETS];
        for i in 0..KEYS {
            let key = format!("user{i:08}");
            counts[(fx_hash_bytes(key.as_bytes()) % BUCKETS as u64) as usize] += 1;
        }
        let expected = KEYS / BUCKETS;
        for (b, &c) in counts.iter().enumerate() {
            assert!(
                c > expected / 2 && c < expected * 2,
                "bucket {b} holds {c}, expected ~{expected}"
            );
        }
    }

    #[test]
    fn fxhashmap_basic() {
        let mut m: FxHashMap<u64, u64> = FxHashMap::default();
        for i in 0..100 {
            m.insert(i, i * 2);
        }
        assert_eq!(m.get(&7), Some(&14));
        assert_eq!(m.len(), 100);
    }
}
