//! Workload-generator contracts the experiment grid depends on:
//! determinism under a fixed seed (BENCH artifacts must be reproducible),
//! the Zipfian rank-frequency shape at the paper's three θ settings, and
//! the wiki/eth size distributions staying within ±10% of the documented
//! averages.

use rand::rngs::StdRng;
use rand::SeedableRng;
use siri_workloads::eth::EthConfig;
use siri_workloads::wiki::WikiConfig;
use siri_workloads::ycsb::{Op, OpMix, YcsbConfig};
use siri_workloads::zipf::Zipfian;

// ---------------------------------------------------------------------------
// Determinism under a fixed seed
// ---------------------------------------------------------------------------

#[test]
fn ycsb_streams_are_deterministic_under_a_seed() {
    let cfg = YcsbConfig::default();
    assert_eq!(cfg.dataset(2_000), cfg.dataset(2_000));
    let mix = OpMix::crud_scan(70, 15, 5, 10);
    let a = cfg.operations_mix(2_000, 1_000, mix, 0.9, 77);
    let b = cfg.operations_mix(2_000, 1_000, mix, 0.9, 77);
    // Op carries Bytes; compare via Debug form (Op is not PartialEq).
    assert_eq!(format!("{a:?}"), format!("{b:?}"));
    // A different stream seed must actually change the stream.
    let c = cfg.operations_mix(2_000, 1_000, mix, 0.9, 78);
    assert_ne!(format!("{a:?}"), format!("{c:?}"));
}

#[test]
fn ycsb_different_seed_different_dataset() {
    let a = YcsbConfig::default();
    let b = YcsbConfig { seed: a.seed + 1, ..a };
    assert_ne!(a.dataset(100), b.dataset(100));
}

#[test]
fn wiki_corpus_is_deterministic_under_a_seed() {
    let cfg = WikiConfig { pages: 2_000, ..Default::default() };
    assert_eq!(cfg.initial_dump(), cfg.initial_dump());
    assert_eq!(cfg.version_delta(3), cfg.version_delta(3));
    let other = WikiConfig { seed: cfg.seed + 1, ..cfg };
    assert_ne!(cfg.initial_dump(), other.initial_dump());
}

#[test]
fn eth_blocks_are_deterministic_under_a_seed() {
    let cfg = EthConfig::default();
    assert_eq!(cfg.block_entries(5), cfg.block_entries(5));
    let other = EthConfig { seed: cfg.seed + 1, ..cfg };
    assert_ne!(cfg.block_entries(5), other.block_entries(5));
}

// ---------------------------------------------------------------------------
// Zipf rank-frequency shape, θ ∈ {0, 0.5, 0.9}
// ---------------------------------------------------------------------------

fn rank_histogram(theta: f64, n: usize, draws: usize) -> Vec<u64> {
    let z = Zipfian::new(n, theta);
    let mut rng = StdRng::seed_from_u64(1234);
    let mut h = vec![0u64; n];
    for _ in 0..draws {
        h[z.next_rank(&mut rng) as usize] += 1;
    }
    h
}

#[test]
fn zipf_theta_zero_is_flat() {
    let h = rank_histogram(0.0, 1_000, 400_000);
    let expected = 400.0;
    for (rank, count) in h.iter().enumerate() {
        let dev = (*count as f64 - expected).abs() / expected;
        assert!(dev < 0.35, "rank {rank}: count {count} deviates {dev:.2} from uniform");
    }
}

/// Under Zipf, freq(rank) ∝ 1/(rank+1)^θ, so freq(0)/freq(r) ≈ (r+1)^θ.
/// Assert the measured ratios at ranks 9 and 99 within ±30% — wide enough
/// for the YCSB/Gray approximation and sampling noise, tight enough to
/// distinguish the three θ settings from each other.
#[test]
fn zipf_rank_frequency_follows_power_law() {
    for &theta in &[0.5, 0.9] {
        let h = rank_histogram(theta, 1_000, 400_000);
        for &rank in &[9usize, 99] {
            let measured = h[0] as f64 / h[rank].max(1) as f64;
            let expected = ((rank + 1) as f64).powf(theta);
            let rel = measured / expected;
            assert!(
                (0.7..=1.3).contains(&rel),
                "θ={theta} rank {rank}: measured ratio {measured:.2}, expected {expected:.2}"
            );
        }
        // Frequencies must be (noisily) decreasing in rank overall.
        assert!(h[0] > h[9] && h[9] > h[99], "θ={theta}: {} {} {}", h[0], h[9], h[99]);
    }
}

#[test]
fn zipf_thetas_are_mutually_distinguishable() {
    let top_share = |theta: f64| {
        let h = rank_histogram(theta, 1_000, 200_000);
        h[..10].iter().sum::<u64>() as f64 / 200_000.0
    };
    let (t0, t5, t9) = (top_share(0.0), top_share(0.5), top_share(0.9));
    assert!(t0 < 0.02, "uniform top-10 share {t0:.3}");
    assert!(t5 > 2.0 * t0, "θ=0.5 must concentrate over uniform: {t5:.3} vs {t0:.3}");
    assert!(t9 > 2.0 * t5, "θ=0.9 must concentrate over θ=0.5: {t9:.3} vs {t5:.3}");
}

#[test]
fn zipf_scrambling_spreads_hot_keys() {
    // next() scrambles ranks across the keyspace: the hottest *index*
    // should not simply be 0..10, yet the overall skew must survive.
    let z = Zipfian::new(1_000, 0.9);
    let mut rng = StdRng::seed_from_u64(9);
    let mut h = vec![0u64; 1_000];
    for _ in 0..200_000 {
        h[z.next(&mut rng)] += 1;
    }
    let low_ids_share = h[..10].iter().sum::<u64>() as f64 / 200_000.0;
    assert!(low_ids_share < 0.2, "ids 0..10 hold {low_ids_share:.3} — scrambling broken?");
    let mut sorted = h.clone();
    sorted.sort_unstable_by(|a, b| b.cmp(a));
    let hot_share = sorted[..10].iter().sum::<u64>() as f64 / 200_000.0;
    assert!(hot_share > 0.3, "hottest 10 ids hold only {hot_share:.3} — skew lost");
}

// ---------------------------------------------------------------------------
// Size distributions vs documented averages (±10%)
// ---------------------------------------------------------------------------

#[test]
fn wiki_url_lengths_match_documented_average() {
    let cfg = WikiConfig::default();
    let lens: Vec<usize> = (0..20_000u64).map(|i| cfg.url(i).len()).collect();
    let mean = lens.iter().sum::<usize>() as f64 / lens.len() as f64;
    // Documented (§5.1.2 / module docs): 31–298 bytes, average ≈50.
    assert!((45.0..=55.0).contains(&mean), "mean URL length {mean:.1} outside 50±10%");
    assert!(lens.iter().all(|l| (31..=298).contains(l)));
}

#[test]
fn wiki_abstract_lengths_match_documented_average() {
    let cfg = WikiConfig::default();
    let lens: Vec<usize> = (0..20_000u64).map(|i| cfg.abstract_text(i, 0).len()).collect();
    let mean = lens.iter().sum::<usize>() as f64 / lens.len() as f64;
    // Documented: 1–1036 bytes, average ≈96.
    assert!((86.4..=105.6).contains(&mean), "mean abstract length {mean:.1} outside 96±10%");
    assert!(lens.iter().all(|l| (1..=1036).contains(l)));
}

#[test]
fn eth_tx_sizes_match_documented_average() {
    let cfg = EthConfig::default();
    let mut lens = Vec::new();
    for b in 0..60u64 {
        lens.extend(cfg.block_entries(b).iter().map(|e| e.value.len()));
    }
    let mean = lens.iter().sum::<usize>() as f64 / lens.len() as f64;
    // Documented (§5.1.3 / module docs): average ≈532 B, 100 B–57 KB.
    assert!((478.8..=585.2).contains(&mean), "mean raw tx size {mean:.1} outside 532±10%");
    assert!(lens.iter().all(|l| (100..=57_738).contains(l)));
}

#[test]
fn ycsb_value_lengths_match_documented_average() {
    let cfg = YcsbConfig::default();
    let lens: Vec<usize> = (0..20_000u64).map(|i| cfg.value(i, 0).len()).collect();
    let mean = lens.iter().sum::<usize>() as f64 / lens.len() as f64;
    // Documented (§5.1.1): values average 256 bytes (uniform ±50%).
    assert!((230.4..=281.6).contains(&mean), "mean value length {mean:.1} outside 256±10%");
}

// ---------------------------------------------------------------------------
// Op-stream composition sanity (feeds the BENCH verb percentiles)
// ---------------------------------------------------------------------------

#[test]
fn mixed_stream_produces_every_verb_for_the_grid() {
    let cfg = YcsbConfig::default();
    let mix = OpMix::crud_scan(70, 15, 5, 10).with_scan_limit(20);
    let ops = cfg.operations_mix(1_000, 4_000, mix, 0.5, 42);
    let count = |f: fn(&Op) -> bool| ops.iter().filter(|o| f(o)).count();
    assert!(count(|o| matches!(o, Op::Read(_))) > 2_000);
    assert!(count(|o| matches!(o, Op::Write(_))) > 300);
    assert!(count(|o| matches!(o, Op::Delete(_))) > 80);
    assert!(count(|o| matches!(o, Op::Scan { .. })) > 200);
}
