//! Workload generators for the experimental evaluation (§5.1).
//!
//! Three dataset families, all deterministic under a seed:
//!
//! * [`ycsb`] — YCSB-style key-value records (keys 5–15 B, values ≈256 B)
//!   with uniform or Zipfian (θ ∈ {0, 0.5, 0.9}) access skew, read/write/
//!   mixed operation streams, and the overlap-ratio / batch-size
//!   collaboration workloads of §5.4.2 (Table 2 parameters).
//! * [`wiki`] — synthetic Wikipedia abstract dumps: URL keys (avg ≈50 B),
//!   plain-text abstract values (avg ≈96 B), evolved over versions
//!   (§5.1.2).
//! * [`eth`] — synthetic Ethereum blocks: RLP-encoded transactions
//!   (avg ≈532 B, heavy right tail) keyed by 64-byte hex transaction
//!   hashes, one version per block (§5.1.3).
//!
//! Substitution note (DESIGN.md §2): the real Wikipedia/Ethereum corpora
//! are replaced by generators matching their published size distributions;
//! everything the indexes *see* (key/value lengths, version deltas,
//! skew) follows the paper.

pub mod eth;
pub mod wiki;
pub mod ycsb;
pub mod zipf;

pub use ycsb::{Op, OpMix, YcsbConfig};

/// Table 2 — the experiment parameter grid, kept here as named constants
/// so harness code reads like the paper.
pub mod params {
    /// Dataset sizes ×10⁴: 1, 2, 4, … 256.
    pub const DATASET_SIZES: &[usize] =
        &[10_000, 20_000, 40_000, 80_000, 160_000, 320_000, 640_000, 1_280_000, 2_560_000];
    /// Batch sizes ×10³.
    pub const BATCH_SIZES: &[usize] = &[1_000, 2_000, 4_000, 8_000, 16_000];
    /// Overlap ratios (%).
    pub const OVERLAP_RATIOS: &[u32] = &[0, 10, 20, 30, 40, 50, 60, 70, 80, 90, 100];
    /// Write ratios (%).
    pub const WRITE_RATIOS: &[u32] = &[0, 50, 100];
    /// Zipfian θ.
    pub const THETAS: &[f64] = &[0.0, 0.5, 0.9];
    /// The paper tunes every index node to ≈1 KB.
    pub const NODE_BYTES: usize = 1024;
}

#[cfg(test)]
mod tests {
    #[test]
    fn parameter_grid_matches_table_2() {
        use super::params::*;
        assert_eq!(DATASET_SIZES.len(), 9);
        assert_eq!(BATCH_SIZES, &[1000, 2000, 4000, 8000, 16000]);
        assert_eq!(OVERLAP_RATIOS.len(), 11);
        assert_eq!(WRITE_RATIOS, &[0, 50, 100]);
        assert_eq!(THETAS, &[0.0, 0.5, 0.9]);
    }
}
