//! Synthetic Ethereum transaction blocks (§5.1.3).
//!
//! Each transaction is RLP-encoded exactly as a legacy Ethereum
//! transaction (nonce, gas price, gas limit, recipient, value, payload,
//! v/r/s) and keyed by the 64-byte *hex-encoded* hash of its RLP bytes —
//! the paper's "64-bytes block hash" key. Raw sizes span 100 B–57 KB with
//! an average near 532 B, reproducing the published distribution's heavy
//! right tail. Each block is one version.

use bytes::Bytes;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use siri_core::Entry;
use siri_crypto::sha256;
use siri_encoding::RlpItem;

/// One synthetic legacy transaction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Transaction {
    pub nonce: u64,
    pub gas_price: u64,
    pub gas_limit: u64,
    pub to: [u8; 20],
    pub value: u64,
    pub payload: Vec<u8>,
    pub v: u64,
    pub r: [u8; 32],
    pub s: [u8; 32],
}

impl Transaction {
    /// RLP encoding, the serialization Ethereum uses for raw transactions.
    pub fn rlp_encode(&self) -> Vec<u8> {
        RlpItem::list(vec![
            RlpItem::uint(self.nonce),
            RlpItem::uint(self.gas_price),
            RlpItem::uint(self.gas_limit),
            RlpItem::bytes(self.to.to_vec()),
            RlpItem::uint(self.value),
            RlpItem::bytes(self.payload.clone()),
            RlpItem::uint(self.v),
            RlpItem::bytes(self.r.to_vec()),
            RlpItem::bytes(self.s.to_vec()),
        ])
        .encode()
    }

    /// Transaction hash: hex-encoded digest of the RLP bytes — a 64-byte
    /// index key.
    pub fn hash_key(&self) -> Bytes {
        Bytes::from(sha256(&self.rlp_encode()).to_hex().into_bytes())
    }
}

/// Block generator.
#[derive(Debug, Clone, Copy)]
pub struct EthConfig {
    /// Transactions per block (Ethereum averages ~150–200 in the sampled
    /// range).
    pub txs_per_block: usize,
    pub seed: u64,
}

impl Default for EthConfig {
    fn default() -> Self {
        EthConfig { txs_per_block: 150, seed: 99 }
    }
}

impl EthConfig {
    /// Deterministic transaction for (block, index).
    pub fn transaction(&self, block: u64, index: u32) -> Transaction {
        let mut rng =
            StdRng::seed_from_u64(self.seed ^ block.rotate_left(19) ^ (index as u64) << 1);
        // Payload distribution: most transfers are tiny (empty payload);
        // contract calls carry a few hundred bytes; rare deployments reach
        // tens of KB. Tuned for a ≈532 B raw-transaction average.
        let roll = rng.gen_range(0..1000);
        let payload_len = if roll < 450 {
            0 // plain transfer
        } else if roll < 930 {
            rng.gen_range(4..500) // contract call
        } else if roll < 997 {
            rng.gen_range(500..4_000) // heavy call data
        } else {
            rng.gen_range(8_000..57_000) // contract deployment
        };
        let mut payload = vec![0u8; payload_len];
        rng.fill(&mut payload[..]);
        let mut to = [0u8; 20];
        rng.fill(&mut to[..]);
        let mut r = [0u8; 32];
        rng.fill(&mut r[..]);
        let mut s = [0u8; 32];
        rng.fill(&mut s[..]);
        Transaction {
            nonce: rng.gen_range(0..500_000),
            gas_price: rng.gen_range(1..300) * 1_000_000_000,
            gas_limit: rng.gen_range(21_000..8_000_000),
            to,
            value: rng.gen(),
            payload,
            v: 27 + rng.gen_range(0..2),
            r,
            s,
        }
    }

    /// All (tx-hash → raw RLP) entries of one block — the per-block index
    /// content of §5.3.1's Ethereum experiment.
    pub fn block_entries(&self, block: u64) -> Vec<Entry> {
        (0..self.txs_per_block as u32)
            .map(|i| {
                let tx = self.transaction(block, i);
                Entry { key: tx.hash_key(), value: Bytes::from(tx.rlp_encode()) }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_are_64_byte_hex() {
        let cfg = EthConfig::default();
        for e in cfg.block_entries(1) {
            assert_eq!(e.key.len(), 64);
            assert!(e.key.iter().all(|c| c.is_ascii_hexdigit()));
        }
    }

    #[test]
    fn sizes_match_published_distribution() {
        let cfg = EthConfig { txs_per_block: 200, seed: 5 };
        let mut lens = Vec::new();
        for b in 0..25u64 {
            lens.extend(cfg.block_entries(b).iter().map(|e| e.value.len()));
        }
        let avg = lens.iter().sum::<usize>() / lens.len();
        assert!((380..=700).contains(&avg), "avg raw tx size {avg}");
        assert!(*lens.iter().min().unwrap() >= 100, "min {}", lens.iter().min().unwrap());
        assert!(*lens.iter().max().unwrap() <= 57_738);
    }

    #[test]
    fn rlp_decodes_back() {
        let tx = EthConfig::default().transaction(3, 7);
        let enc = tx.rlp_encode();
        let item = RlpItem::decode_all(&enc).unwrap();
        let fields = item.as_list().unwrap();
        assert_eq!(fields.len(), 9);
        assert_eq!(fields[0].as_uint().unwrap(), tx.nonce);
        assert_eq!(fields[3].as_bytes().unwrap(), &tx.to);
        assert_eq!(fields[5].as_bytes().unwrap(), &tx.payload);
    }

    #[test]
    fn blocks_are_deterministic_and_distinct() {
        let cfg = EthConfig::default();
        assert_eq!(cfg.block_entries(10), cfg.block_entries(10));
        assert_ne!(cfg.block_entries(10), cfg.block_entries(11));
    }

    #[test]
    fn tx_hash_is_bound_to_content() {
        let cfg = EthConfig::default();
        let mut tx = cfg.transaction(0, 0);
        let h1 = tx.hash_key();
        tx.nonce += 1;
        assert_ne!(tx.hash_key(), h1);
    }
}
