//! Synthetic Wikipedia abstract dumps (§5.1.2).
//!
//! Keys are page URLs (31–298 bytes, average ≈50); values are plain-text
//! abstracts (1–1036 bytes, average ≈96). The corpus evolves over
//! versions: each version rewrites a fraction of abstracts and adds a few
//! pages, mimicking the three months of real dumps the paper divides into
//! 300 versions.

use bytes::Bytes;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use siri_core::Entry;

const URL_PREFIX: &str = "https://en.wikipedia.org/wiki/";

/// A compact word pool; titles and abstracts are drawn from it so the text
/// is compressible and plausibly token-shaped, like real abstracts.
const WORDS: &[&str] = &[
    "history",
    "system",
    "theory",
    "music",
    "river",
    "language",
    "science",
    "world",
    "city",
    "county",
    "island",
    "battle",
    "church",
    "school",
    "station",
    "album",
    "species",
    "film",
    "village",
    "football",
    "railway",
    "museum",
    "national",
    "american",
    "german",
    "french",
    "ancient",
    "modern",
    "northern",
    "southern",
    "empire",
    "university",
    "population",
    "district",
    "region",
    "century",
    "company",
    "family",
    "player",
    "season",
    "government",
    "building",
    "mountain",
    "valley",
    "bridge",
    "castle",
    "temple",
    "garden",
    "festival",
    "library",
];

/// Wiki corpus generator.
#[derive(Debug, Clone, Copy)]
pub struct WikiConfig {
    /// Pages in the initial dump.
    pub pages: usize,
    /// Fraction (percent) of pages whose abstract changes each version.
    pub update_pct: u32,
    /// New pages added each version.
    pub new_pages_per_version: usize,
    pub seed: u64,
}

impl Default for WikiConfig {
    fn default() -> Self {
        WikiConfig { pages: 10_000, update_pct: 1, new_pages_per_version: 20, seed: 77 }
    }
}

impl WikiConfig {
    /// URL key for page `i` — length distribution matching the paper
    /// (31–298 bytes, mean ≈50).
    pub fn url(&self, i: u64) -> Bytes {
        let mut rng = StdRng::seed_from_u64(self.seed ^ i.wrapping_mul(0xA076_1D64_78BD_642F));
        // Mean title+suffix ≈20 bytes ⇒ mean URL ≈50; occasionally very
        // long.
        let words = if rng.gen_range(0..100) < 3 {
            rng.gen_range(8..30) // rare long titles (up to ~298 B URLs)
        } else {
            rng.gen_range(1..3)
        };
        let mut title = String::new();
        for w in 0..words {
            if w > 0 {
                title.push('_');
            }
            title.push_str(WORDS[rng.gen_range(0..WORDS.len())]);
        }
        // Unique suffix to avoid collisions between pages, then clamp to
        // the paper's 298-byte URL maximum.
        title.push_str(&format!("_({i})"));
        let mut url = format!("{URL_PREFIX}{title}").into_bytes();
        url.truncate(298);
        Bytes::from(url)
    }

    /// Abstract text for page `i` as of `version` — 1–1036 bytes, mean
    /// ≈96.
    pub fn abstract_text(&self, i: u64, version: u32) -> Bytes {
        let mut rng = StdRng::seed_from_u64(
            self.seed ^ i.rotate_left(23) ^ (version as u64).wrapping_mul(0x2545_F491_4F6C_DD1D),
        );
        // Mean ≈12.5 words × ~7.7 bytes ≈ 96; geometric-ish tail to 1036.
        let mut words = rng.gen_range(1..=21);
        while rng.gen_range(0..100) < 12 && words < 160 {
            words += rng.gen_range(4..24);
        }
        let mut text = String::new();
        for w in 0..words {
            if w > 0 {
                text.push(' ');
            }
            text.push_str(WORDS[rng.gen_range(0..WORDS.len())]);
        }
        text.truncate(1036);
        Bytes::from(text.into_bytes())
    }

    pub fn page(&self, i: u64, version: u32) -> Entry {
        Entry { key: self.url(i), value: self.abstract_text(i, version) }
    }

    /// The initial dump (version 0).
    pub fn initial_dump(&self) -> Vec<Entry> {
        (0..self.pages as u64).map(|i| self.page(i, 0)).collect()
    }

    /// The batch of changes for `version` (≥1): rewritten abstracts for a
    /// deterministic pseudo-random subset, plus a few new pages.
    pub fn version_delta(&self, version: u32) -> Vec<Entry> {
        assert!(version >= 1);
        let mut rng = StdRng::seed_from_u64(self.seed ^ (version as u64) << 32);
        let updates = (self.pages as u64 * self.update_pct as u64 / 100).max(1);
        let mut out = Vec::with_capacity(updates as usize + self.new_pages_per_version);
        for _ in 0..updates {
            let page = rng.gen_range(0..self.pages as u64);
            out.push(self.page(page, version));
        }
        for n in 0..self.new_pages_per_version as u64 {
            let id =
                self.pages as u64 + (version as u64 - 1) * self.new_pages_per_version as u64 + n;
            out.push(self.page(id, version));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn url_lengths_match_paper_band() {
        let cfg = WikiConfig::default();
        let lens: Vec<usize> = (0..5000u64).map(|i| cfg.url(i).len()).collect();
        let avg = lens.iter().sum::<usize>() / lens.len();
        assert!((40..=70).contains(&avg), "avg URL length {avg}");
        assert!(*lens.iter().max().unwrap() <= 298);
        assert!(*lens.iter().min().unwrap() >= 31);
    }

    #[test]
    fn abstract_lengths_match_paper_band() {
        let cfg = WikiConfig::default();
        let lens: Vec<usize> = (0..5000u64).map(|i| cfg.abstract_text(i, 0).len()).collect();
        let avg = lens.iter().sum::<usize>() / lens.len();
        assert!((70..=140).contains(&avg), "avg abstract length {avg}");
        assert!(*lens.iter().max().unwrap() <= 1036);
        assert!(*lens.iter().min().unwrap() >= 1);
    }

    #[test]
    fn urls_unique() {
        let cfg = WikiConfig { pages: 3000, ..Default::default() };
        let dump = cfg.initial_dump();
        let keys: std::collections::HashSet<_> = dump.iter().map(|e| e.key.clone()).collect();
        assert_eq!(keys.len(), dump.len());
    }

    #[test]
    fn deltas_change_content_deterministically() {
        let cfg = WikiConfig { pages: 1000, update_pct: 2, ..Default::default() };
        let d1 = cfg.version_delta(1);
        let d1_again = cfg.version_delta(1);
        assert_eq!(d1, d1_again);
        assert!(d1.len() >= 20, "updates + new pages");
        // An updated page's text differs from version 0.
        let updated = &d1[0];
        let page_v0 = cfg.initial_dump().iter().find(|e| e.key == updated.key).cloned();
        if let Some(orig) = page_v0 {
            assert_ne!(orig.value, updated.value);
        }
    }
}
