//! Zipfian rank generator (the YCSB / Gray et al. construction).
//!
//! θ = 0 degenerates to the uniform distribution; θ = 0.9 is the paper's
//! "highly skewed" setting. Ranks are scrambled through a fast hash so the
//! hot keys are spread across the keyspace, as YCSB's scrambled-Zipfian
//! does — otherwise skew would also mean key-locality, which the paper's
//! workloads do not imply.

use rand::Rng;
use siri_crypto::fx_hash_bytes;

/// Zipfian distribution over `0..n`.
pub struct Zipfian {
    n: u64,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
    zeta2: f64,
}

impl Zipfian {
    pub fn new(n: usize, theta: f64) -> Self {
        assert!(n > 0, "empty support");
        assert!((0.0..1.0).contains(&theta), "theta must be in [0, 1)");
        let n = n as u64;
        if theta == 0.0 {
            // Uniform: the zeta machinery is unused.
            return Zipfian { n, theta, alpha: 0.0, zetan: 0.0, eta: 0.0, zeta2: 0.0 };
        }
        let zetan = Self::zeta(n, theta);
        let zeta2 = Self::zeta(2, theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan);
        Zipfian { n, theta, alpha, zetan, eta, zeta2 }
    }

    fn zeta(n: u64, theta: f64) -> f64 {
        (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum()
    }

    /// Draw a rank in `0..n` (0 = hottest before scrambling).
    pub fn next_rank<R: Rng>(&self, rng: &mut R) -> u64 {
        if self.theta == 0.0 {
            return rng.gen_range(0..self.n);
        }
        let u: f64 = rng.gen();
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        let _ = self.zeta2;
        ((self.n as f64) * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64 % self.n
    }

    /// Draw a scrambled index in `0..n`.
    pub fn next<R: Rng>(&self, rng: &mut R) -> usize {
        let rank = self.next_rank(rng);
        if self.theta == 0.0 {
            rank as usize
        } else {
            (fx_hash_bytes(&rank.to_le_bytes()) % self.n) as usize
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn histogram(theta: f64, n: usize, draws: usize) -> Vec<usize> {
        let z = Zipfian::new(n, theta);
        let mut rng = StdRng::seed_from_u64(7);
        let mut h = vec![0usize; n];
        for _ in 0..draws {
            h[(z.next_rank(&mut rng) as usize).min(n - 1)] += 1;
        }
        h
    }

    #[test]
    fn uniform_when_theta_zero() {
        let h = histogram(0.0, 100, 100_000);
        let (min, max) = (h.iter().min().unwrap(), h.iter().max().unwrap());
        assert!(*max < *min * 2, "uniform histogram too skewed: {min}..{max}");
    }

    #[test]
    fn high_theta_concentrates_mass() {
        let h = histogram(0.9, 1000, 100_000);
        let top10: usize = {
            let mut s = h.clone();
            s.sort_unstable_by(|a, b| b.cmp(a));
            s[..10].iter().sum()
        };
        assert!(
            top10 as f64 > 0.3 * 100_000.0,
            "θ=0.9 should put >30% of mass on the top-10 ranks, got {top10}"
        );
    }

    #[test]
    fn moderate_theta_in_between() {
        let h0 = histogram(0.0, 1000, 100_000);
        let h5 = histogram(0.5, 1000, 100_000);
        let h9 = histogram(0.9, 1000, 100_000);
        let max = |h: &[usize]| *h.iter().max().unwrap();
        assert!(max(&h5) > max(&h0));
        assert!(max(&h9) > max(&h5));
    }

    #[test]
    fn all_draws_in_range() {
        let z = Zipfian::new(50, 0.9);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            assert!(z.next(&mut rng) < 50);
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let z = Zipfian::new(500, 0.5);
        let a: Vec<usize> = {
            let mut rng = StdRng::seed_from_u64(11);
            (0..100).map(|_| z.next(&mut rng)).collect()
        };
        let b: Vec<usize> = {
            let mut rng = StdRng::seed_from_u64(11);
            (0..100).map(|_| z.next(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }
}
