//! YCSB-style key-value workloads (§5.1.1, Table 2).
//!
//! Keys are alphanumeric, 5–15 bytes; values average 256 bytes. Operation
//! streams mix reads and writes at a configurable ratio and select keys
//! uniformly or Zipfian-skewed. The §5.4.2 collaboration scenarios build
//! per-party workloads whose key/value sets overlap by a controlled ratio.

use bytes::Bytes;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use siri_core::Entry;

use crate::zipf::Zipfian;

const KEY_ALPHABET: &[u8] = b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789";

/// Key/value generation parameters (defaults follow §5.1.1).
#[derive(Debug, Clone, Copy)]
pub struct YcsbConfig {
    pub key_len_min: usize,
    pub key_len_max: usize,
    /// Average value length; actual lengths are uniform in ±50%.
    pub value_len_avg: usize,
    pub seed: u64,
}

impl Default for YcsbConfig {
    fn default() -> Self {
        YcsbConfig { key_len_min: 5, key_len_max: 15, value_len_avg: 256, seed: 42 }
    }
}

/// One operation of a workload stream.
#[derive(Debug, Clone)]
pub enum Op {
    Read(Bytes),
    Write(Entry),
    /// Remove a record (YCSB's delete verb; the paper's `del`, §3.1).
    Delete(Bytes),
    /// Short range scan: stream up to `limit` entries starting at `start`
    /// (YCSB workload E's shape).
    Scan {
        start: Bytes,
        limit: usize,
    },
}

/// Operation percentages of a mixed stream; must sum to 100.
#[derive(Debug, Clone, Copy)]
pub struct OpMix {
    pub read_pct: u32,
    pub write_pct: u32,
    pub delete_pct: u32,
    pub scan_pct: u32,
    /// Entries per scan op (YCSB E defaults to short scans).
    pub scan_limit: usize,
}

impl OpMix {
    /// The legacy two-verb mix: `write_ratio`% writes, the rest reads.
    pub fn read_write(write_ratio: u32) -> Self {
        OpMix {
            read_pct: 100 - write_ratio,
            write_pct: write_ratio,
            delete_pct: 0,
            scan_pct: 0,
            scan_limit: 50,
        }
    }

    /// A CRUD + scan mix exercising every verb of the redesigned API.
    pub fn crud_scan(read: u32, write: u32, delete: u32, scan: u32) -> Self {
        assert_eq!(read + write + delete + scan, 100, "mix must sum to 100");
        OpMix {
            read_pct: read,
            write_pct: write,
            delete_pct: delete,
            scan_pct: scan,
            scan_limit: 50,
        }
    }

    pub fn with_scan_limit(mut self, limit: usize) -> Self {
        self.scan_limit = limit;
        self
    }
}

impl YcsbConfig {
    /// Deterministic key for record id `i` — stable across calls so reads
    /// and writes can reference dataset records by id.
    pub fn key(&self, i: u64) -> Bytes {
        let mut rng = StdRng::seed_from_u64(self.seed ^ i.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let len = rng.gen_range(self.key_len_min..=self.key_len_max);
        // Prefix with a base62 rendering of i to guarantee uniqueness, then
        // pad with random alphanumerics to the drawn length.
        let mut key = Vec::with_capacity(len.max(11));
        let mut v = i;
        loop {
            key.push(KEY_ALPHABET[(v % 62) as usize]);
            v /= 62;
            if v == 0 {
                break;
            }
        }
        while key.len() < len {
            key.push(KEY_ALPHABET[rng.gen_range(0..62)]);
        }
        Bytes::from(key)
    }

    /// Deterministic value for record id `i` at write-version `version`.
    pub fn value(&self, i: u64, version: u32) -> Bytes {
        let mut rng = StdRng::seed_from_u64(
            self.seed ^ i.rotate_left(17) ^ (version as u64).wrapping_mul(0xDEAD_BEEF_CAFE_F00D),
        );
        let half = self.value_len_avg / 2;
        let len = rng.gen_range(self.value_len_avg - half..=self.value_len_avg + half);
        let mut value = vec![0u8; len];
        rng.fill(&mut value[..]);
        Bytes::from(value)
    }

    pub fn entry(&self, i: u64, version: u32) -> Entry {
        Entry { key: self.key(i), value: self.value(i, version) }
    }

    /// The initial dataset: records `0..n` at version 0.
    pub fn dataset(&self, n: usize) -> Vec<Entry> {
        (0..n as u64).map(|i| self.entry(i, 0)).collect()
    }

    /// An operation stream over an `n`-record dataset.
    ///
    /// `write_ratio` ∈ 0..=100 is the percentage of writes; `theta` the
    /// Zipfian parameter (0 = uniform). Writes bump the record's version so
    /// they change real bytes.
    pub fn operations(
        &self,
        n: usize,
        ops: usize,
        write_ratio: u32,
        theta: f64,
        stream_seed: u64,
    ) -> Vec<Op> {
        self.operations_mix(n, ops, OpMix::read_write(write_ratio), theta, stream_seed)
    }

    /// An operation stream with a full CRUD + scan [`OpMix`]. Deletes pick
    /// dataset records like reads do (deleting an already-deleted record is
    /// a legal no-op, as in YCSB); scans start at a dataset key and request
    /// `mix.scan_limit` entries.
    pub fn operations_mix(
        &self,
        n: usize,
        ops: usize,
        mix: OpMix,
        theta: f64,
        stream_seed: u64,
    ) -> Vec<Op> {
        // OpMix fields are public; re-validate here so hand-built mixes
        // cannot silently skew the stream (reads are the 100-sum remainder,
        // so an inconsistent read_pct would otherwise go unnoticed).
        assert_eq!(
            mix.read_pct + mix.write_pct + mix.delete_pct + mix.scan_pct,
            100,
            "mix must sum to 100"
        );
        let zipf = Zipfian::new(n, theta);
        let mut rng = StdRng::seed_from_u64(self.seed ^ stream_seed);
        (0..ops)
            .map(|op_idx| {
                let id = zipf.next(&mut rng) as u64;
                let dice = rng.gen_range(0..100);
                if dice < mix.write_pct {
                    Op::Write(self.entry(id, 1 + (op_idx / n.max(1)) as u32))
                } else if dice < mix.write_pct + mix.delete_pct {
                    Op::Delete(self.key(id))
                } else if dice < mix.write_pct + mix.delete_pct + mix.scan_pct {
                    Op::Scan { start: self.key(id), limit: mix.scan_limit }
                } else {
                    Op::Read(self.key(id))
                }
            })
            .collect()
    }

    /// §5.4.2 collaboration workload: `parties` streams of `ops` writes
    /// each, in which `overlap_pct`% of records are identical (same key
    /// and value) across all parties and the rest are party-private.
    ///
    /// Each party executes its stream in its own order (deterministic
    /// per-party shuffle): Structurally Invariant indexes still converge
    /// on identical pages for the shared content, order-dependent ones do
    /// not — which is exactly what the §5.5.1 ablation measures.
    pub fn collaboration(&self, parties: usize, ops: usize, overlap_pct: u32) -> Vec<Vec<Entry>> {
        use rand::seq::SliceRandom;
        let shared = (ops as u64 * overlap_pct as u64 / 100) as usize;
        (0..parties)
            .map(|p| {
                let mut out = Vec::with_capacity(ops);
                for i in 0..ops as u64 {
                    if (i as usize) < shared {
                        // Common pool: identical records for every party.
                        out.push(self.entry(1_000_000 + i, 0));
                    } else {
                        // Private records, disjoint id ranges per party.
                        out.push(self.entry(2_000_000 + (p as u64) * 10_000_000 + i, 0));
                    }
                }
                let mut rng = StdRng::seed_from_u64(self.seed ^ (p as u64) << 17);
                out.shuffle(&mut rng);
                out
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_are_unique_and_sized_per_paper() {
        let cfg = YcsbConfig::default();
        let mut seen = std::collections::HashSet::new();
        for i in 0..20_000u64 {
            let k = cfg.key(i);
            assert!(k.len() >= 2 && k.len() <= 15, "key length {}", k.len());
            assert!(seen.insert(k), "duplicate key for id {i}");
        }
    }

    #[test]
    fn values_average_near_256() {
        let cfg = YcsbConfig::default();
        let total: usize = (0..2000u64).map(|i| cfg.value(i, 0).len()).sum();
        let avg = total / 2000;
        assert!((200..=312).contains(&avg), "avg value length {avg}");
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = YcsbConfig::default();
        assert_eq!(cfg.entry(7, 0), cfg.entry(7, 0));
        assert_ne!(cfg.value(7, 0), cfg.value(7, 1), "versions must differ");
    }

    #[test]
    fn write_ratio_respected() {
        let cfg = YcsbConfig::default();
        let ops = cfg.operations(1000, 10_000, 50, 0.0, 1);
        let writes = ops.iter().filter(|o| matches!(o, Op::Write(_))).count();
        assert!((4000..6000).contains(&writes), "writes {writes}");
        let all_reads = cfg.operations(1000, 1000, 0, 0.0, 2);
        assert!(all_reads.iter().all(|o| matches!(o, Op::Read(_))));
        let all_writes = cfg.operations(1000, 1000, 100, 0.0, 3);
        assert!(all_writes.iter().all(|o| matches!(o, Op::Write(_))));
    }

    #[test]
    fn crud_scan_mix_respected() {
        let cfg = YcsbConfig::default();
        let mix = OpMix::crud_scan(60, 20, 10, 10).with_scan_limit(25);
        let ops = cfg.operations_mix(1000, 10_000, mix, 0.0, 9);
        let deletes = ops.iter().filter(|o| matches!(o, Op::Delete(_))).count();
        let scans = ops.iter().filter(|o| matches!(o, Op::Scan { .. })).count();
        let reads = ops.iter().filter(|o| matches!(o, Op::Read(_))).count();
        assert!((700..1300).contains(&deletes), "deletes {deletes}");
        assert!((700..1300).contains(&scans), "scans {scans}");
        assert!((5200..6800).contains(&reads), "reads {reads}");
        assert!(ops.iter().all(|o| !matches!(o, Op::Scan { limit, .. } if *limit != 25)));
        // The legacy wrapper still produces a pure read/write stream.
        let rw = cfg.operations(1000, 1000, 30, 0.0, 4);
        assert!(rw.iter().all(|o| matches!(o, Op::Read(_) | Op::Write(_))));
    }

    #[test]
    #[should_panic(expected = "mix must sum to 100")]
    fn crud_scan_mix_must_sum_to_100() {
        let _ = OpMix::crud_scan(50, 20, 10, 10);
    }

    #[test]
    fn collaboration_overlap_is_exact() {
        let cfg = YcsbConfig::default();
        let parties = cfg.collaboration(3, 1000, 40);
        assert_eq!(parties.len(), 3);
        let a: std::collections::HashSet<_> = parties[0].iter().map(|e| e.key.clone()).collect();
        let b: std::collections::HashSet<_> = parties[1].iter().map(|e| e.key.clone()).collect();
        let common = a.intersection(&b).count();
        assert_eq!(common, 400, "40% of 1000 must be shared");
    }

    #[test]
    fn zero_and_full_overlap_edges() {
        let cfg = YcsbConfig::default();
        let p = cfg.collaboration(2, 100, 0);
        let a: std::collections::HashSet<_> = p[0].iter().map(|e| e.key.clone()).collect();
        assert!(p[1].iter().all(|e| !a.contains(&e.key)));
        let p = cfg.collaboration(2, 100, 100);
        // Same record *set* — but each party applies it in its own order.
        let sort = |v: &[Entry]| {
            let mut s = v.to_vec();
            s.sort();
            s
        };
        assert_eq!(sort(&p[0]), sort(&p[1]));
        assert_ne!(p[0], p[1], "parties must execute in different orders");
    }
}
