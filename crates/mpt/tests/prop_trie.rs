//! MPT-specific property tests with adversarial key shapes: shared
//! prefixes, keys that are prefixes of other keys, empty keys, and
//! high-nibble/low-nibble boundary patterns — everything that stresses
//! branch/extension/leaf restructuring.

use std::collections::BTreeMap;

use proptest::prelude::*;
use siri_core::{Entry, MemStore, SiriIndex};
use siri_mpt::MerklePatriciaTrie;

/// Keys drawn from a tiny alphabet with short lengths — maximizes prefix
/// collisions and extension splits.
fn arb_prefixy_entries() -> impl Strategy<Value = Vec<(Vec<u8>, Vec<u8>)>> {
    proptest::collection::vec(
        (
            proptest::collection::vec(
                prop_oneof![Just(0x00u8), Just(0x01), Just(0x10), Just(0xff)],
                0..5,
            ),
            proptest::collection::vec(proptest::num::u8::ANY, 1..8),
        ),
        1..60,
    )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn trie_matches_model_under_prefix_stress(raw in arb_prefixy_entries()) {
        let model: BTreeMap<Vec<u8>, Vec<u8>> = raw.iter().cloned().collect();
        let mut trie = MerklePatriciaTrie::new(MemStore::new_shared());
        trie.batch_insert(raw.iter().map(|(k, v)| Entry::new(k.clone(), v.clone())).collect())
            .unwrap();
        prop_assert_eq!(trie.len().unwrap(), model.len());
        for (k, v) in &model {
            let got = trie.get(k).unwrap();
            prop_assert_eq!(got.as_deref(), Some(v.as_slice()));
        }
        // Scan equals the model, sorted.
        let scan = trie.scan().unwrap();
        let expect: Vec<Entry> =
            model.iter().map(|(k, v)| Entry::new(k.clone(), v.clone())).collect();
        prop_assert_eq!(scan, expect);
    }

    #[test]
    fn trie_root_is_insertion_order_invariant(raw in arb_prefixy_entries(), seed in 0u64..500) {
        let model: BTreeMap<Vec<u8>, Vec<u8>> = raw.iter().cloned().collect();
        let entries: Vec<Entry> =
            model.iter().map(|(k, v)| Entry::new(k.clone(), v.clone())).collect();
        let mut shuffled = entries.clone();
        let n = shuffled.len();
        for i in (1..n).rev() {
            let j = (seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(i as u64)
                % (i as u64 + 1)) as usize;
            shuffled.swap(i, j);
        }
        let mut a = MerklePatriciaTrie::new(MemStore::new_shared());
        a.batch_insert(entries).unwrap();
        let mut b = MerklePatriciaTrie::new(MemStore::new_shared());
        for e in shuffled {
            b.insert(&e.key, e.value).unwrap();
        }
        prop_assert_eq!(a.root(), b.root());
    }

    #[test]
    fn proofs_hold_under_prefix_stress(raw in arb_prefixy_entries()) {
        let model: BTreeMap<Vec<u8>, Vec<u8>> = raw.iter().cloned().collect();
        let mut trie = MerklePatriciaTrie::new(MemStore::new_shared());
        trie.batch_insert(raw.iter().map(|(k, v)| Entry::new(k.clone(), v.clone())).collect())
            .unwrap();
        let root = trie.root();
        for (k, v) in model.iter().take(8) {
            let proof = trie.prove(k).unwrap();
            let verdict = MerklePatriciaTrie::verify_proof(root, k, &proof);
            prop_assert_eq!(verdict.value().map(|b| b.as_ref()), Some(v.as_slice()));
        }
        // A key guaranteed absent (longer than any generated key).
        let absent = vec![0x42u8; 9];
        let proof = trie.prove(&absent).unwrap();
        prop_assert!(matches!(
            MerklePatriciaTrie::verify_proof(root, &absent, &proof),
            siri_core::ProofVerdict::Absent
        ));
    }

    #[test]
    fn structural_diff_equals_reference(l in arb_prefixy_entries(), r in arb_prefixy_entries()) {
        let store = MemStore::new_shared();
        let mut a = MerklePatriciaTrie::new(store.clone());
        a.batch_insert(l.iter().map(|(k, v)| Entry::new(k.clone(), v.clone())).collect()).unwrap();
        let mut b = MerklePatriciaTrie::new(store);
        b.batch_insert(r.iter().map(|(k, v)| Entry::new(k.clone(), v.clone())).collect()).unwrap();
        let structural = a.diff(&b).unwrap();
        let reference = siri_core::diff_by_scan(&a, &b).unwrap();
        prop_assert_eq!(structural, reference);
    }
}
