//! Merkle Patricia Trie (MPT) — §3.4.1 of the paper.
//!
//! A radix-16 trie with path compaction and cryptographic authentication,
//! modelled on Ethereum's state trie (the paper ports Ethereum's
//! implementation, §5.2). Keys are split into nibbles; shared runs are
//! compacted into extension nodes; every node is RLP-encoded and referenced
//! by its SHA-256 digest, so the root digest authenticates the entire
//! key/value set.
//!
//! MPT is *Structurally Invariant by construction*: "the position of the
//! node only depends on the sequence of the stored key bytes" (§3.3), so
//! any insertion order of the same records yields the same root.
//!
//! ```
//! use siri_core::{MemStore, SiriIndex};
//! use siri_mpt::MerklePatriciaTrie;
//!
//! let mut t = MerklePatriciaTrie::new(MemStore::new_shared());
//! t.insert(b"key", bytes::Bytes::from_static(b"value")).unwrap();
//! assert_eq!(t.get(b"key").unwrap().unwrap().as_ref(), b"value");
//! ```

mod cursor;
mod diff;
mod mem;
mod node;
mod proof;

use std::ops::Bound;
use std::sync::Arc;
use std::time::Instant;

use bytes::Bytes;
use siri_core::{
    own_bound, DiffEntry, EntryCursor, IndexError, LookupTrace, Proof, ProofVerdict, Result,
    SiriIndex, StructureReport, StructureStats, WriteBatch,
};
use siri_crypto::Hash;
use siri_encoding::Nibbles;
use siri_store::{
    reachable_pages, CacheStats, NodeCache, PageSet, SharedStore, DEFAULT_NODE_CACHE_CAPACITY,
};

pub use cursor::RangeCursor;
pub use node::Node;
pub use proof::MptProofScheme;

/// Handle to one MPT version: `(store, root digest)` plus the decoded-node
/// cache every clone of this handle shares. Content addressing keeps the
/// cache coherent across versions for free: a digest names one immutable
/// node forever, so snapshots and their successors warm each other.
#[derive(Clone)]
pub struct MerklePatriciaTrie {
    store: SharedStore,
    root: Hash,
    cache: Arc<NodeCache<Node>>,
}

impl MerklePatriciaTrie {
    /// An empty trie (root = zero digest, the paper's *null* node).
    pub fn new(store: SharedStore) -> Self {
        MerklePatriciaTrie {
            store,
            root: Hash::ZERO,
            cache: NodeCache::new_shared(DEFAULT_NODE_CACHE_CAPACITY),
        }
    }

    /// Re-open an existing version by root digest.
    pub fn open(store: SharedStore, root: Hash) -> Self {
        MerklePatriciaTrie {
            store,
            root,
            cache: NodeCache::new_shared(DEFAULT_NODE_CACHE_CAPACITY),
        }
    }

    /// Replace the node cache with one bounded to `capacity` decoded nodes
    /// (0 disables caching — every fetch decodes). Benchmarks use this for
    /// cache-size sweeps; clones made *after* this call share the new cache.
    pub fn with_node_cache_capacity(mut self, capacity: usize) -> Self {
        self.cache = NodeCache::new_shared(capacity);
        self
    }

    /// Hit/miss/eviction counters of the shared decoded-node cache.
    pub fn node_cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    pub(crate) fn fetch(&self, hash: &Hash) -> Result<Arc<Node>> {
        Ok(self.fetch_traced(hash)?.0)
    }

    /// Fetch a node through the cache; the flag reports whether it was a
    /// cache hit (no store access, no decode).
    fn fetch_traced(&self, hash: &Hash) -> Result<(Arc<Node>, bool)> {
        self.cache.get_or_load(hash, || {
            let page = self.store.try_get(hash)?.ok_or(IndexError::MissingPage(*hash))?;
            Node::decode_zc(&page)
        })
    }

    /// Depth statistics over all leaf positions: (average, maximum), in
    /// *nodes traversed*. Drives the L̄ term of the §4.2.2 MPT analysis and
    /// Table 3's key-length sweep.
    pub fn depth_stats(&self) -> Result<(f64, u32)> {
        if self.root.is_zero() {
            return Ok((0.0, 0));
        }
        let mut total = 0u64;
        let mut count = 0u64;
        let mut max = 0u32;
        let mut stack: Vec<(Hash, u32)> = vec![(self.root, 1)];
        while let Some((h, depth)) = stack.pop() {
            match &*self.fetch(&h)? {
                Node::Leaf { .. } => {
                    total += depth as u64;
                    count += 1;
                    max = max.max(depth);
                }
                Node::Extension { child, .. } => stack.push((*child, depth + 1)),
                Node::Branch { children, value } => {
                    if value.is_some() {
                        total += depth as u64;
                        count += 1;
                        max = max.max(depth);
                    }
                    for c in children.iter().flatten() {
                        stack.push((*c, depth + 1));
                    }
                }
            }
        }
        Ok((total as f64 / count.max(1) as f64, max))
    }
}

/// Nibble path → byte key; keys always have even nibble length because they
/// are built from whole bytes.
pub(crate) fn nibbles_to_key(nibbles: &[u8]) -> Result<Bytes> {
    if !nibbles.len().is_multiple_of(2) {
        return Err(IndexError::CorruptStructure("odd-length key path"));
    }
    Ok(Bytes::from(nibbles.chunks_exact(2).map(|p| p[0] << 4 | p[1]).collect::<Vec<u8>>()))
}

impl SiriIndex for MerklePatriciaTrie {
    fn kind(&self) -> &'static str {
        "mpt"
    }

    fn store(&self) -> &SharedStore {
        &self.store
    }

    fn root(&self) -> Hash {
        self.root
    }

    fn at_root(&self, root: Hash) -> Self {
        let mut handle = self.clone();
        handle.root = root;
        handle
    }

    fn get(&self, key: &[u8]) -> Result<Option<Bytes>> {
        Ok(self.get_traced(key)?.0)
    }

    fn get_traced(&self, key: &[u8]) -> Result<(Option<Bytes>, LookupTrace)> {
        let mut trace = LookupTrace::default();
        if self.root.is_zero() {
            return Ok((None, trace));
        }
        let nibbles = Nibbles::from_key(key);
        let mut offset = 0usize;
        let mut hash = self.root;
        let started = Instant::now();
        loop {
            let (node, cached) = self.fetch_traced(&hash)?;
            trace.pages_loaded += 1;
            trace.height += 1;
            if cached {
                trace.cache_hits += 1;
            } else {
                trace.cache_misses += 1;
            }
            match &*node {
                Node::Leaf { path, value } => {
                    trace.load_nanos = started.elapsed().as_nanos() as u64;
                    trace.leaf_entries_scanned = 1;
                    let rest = nibbles.suffix(offset);
                    return Ok(((rest == *path).then(|| value.clone()), trace));
                }
                Node::Extension { path, child } => {
                    if !nibbles.suffix(offset).starts_with(path) {
                        trace.load_nanos = started.elapsed().as_nanos() as u64;
                        return Ok((None, trace));
                    }
                    offset += path.len();
                    hash = *child;
                }
                Node::Branch { children, value } => {
                    if offset == nibbles.len() {
                        trace.load_nanos = started.elapsed().as_nanos() as u64;
                        return Ok((value.clone(), trace));
                    }
                    match children[nibbles.at(offset) as usize] {
                        Some(child) => {
                            offset += 1;
                            hash = child;
                        }
                        None => {
                            trace.load_nanos = started.elapsed().as_nanos() as u64;
                            return Ok((None, trace));
                        }
                    }
                }
            }
        }
    }

    fn commit(&mut self, batch: WriteBatch) -> Result<Hash> {
        let ops = batch.normalize();
        if ops.is_empty() {
            return Ok(self.root);
        }
        let mut overlay =
            if self.root.is_zero() { None } else { Some(mem::MemNode::Stored(self.root)) };
        for op in ops {
            let suffix = Nibbles::from_key(&op.key);
            overlay = match op.value {
                Some(value) => Some(mem::MemNode::insert(overlay, self, suffix, value)?),
                None => mem::MemNode::remove(overlay, self, suffix)?,
            };
        }
        self.root = match overlay {
            Some(overlay) => {
                // One scratch buffer serves every node this commit encodes.
                let mut scratch = siri_encoding::Scratch::new();
                overlay.commit(&self.store, &mut scratch)?
            }
            None => Hash::ZERO, // every record deleted
        };
        Ok(self.root)
    }

    fn range(&self, start: Bound<&[u8]>, end: Bound<&[u8]>) -> EntryCursor {
        EntryCursor::new(cursor::RangeCursor::new(self.clone(), own_bound(start), own_bound(end)))
    }

    fn page_set(&self) -> PageSet {
        reachable_pages(self.store.as_ref(), self.root, Node::children_of_page)
    }

    fn diff(&self, other: &Self) -> Result<Vec<DiffEntry>> {
        diff::diff(self, other)
    }

    fn prove(&self, key: &[u8]) -> Result<Proof> {
        proof::prove(self, key)
    }

    fn verify_proof(root: Hash, key: &[u8], proof: &Proof) -> ProofVerdict {
        proof::verify(root, key, proof)
    }

    fn prove_range(&self, start: Bound<&[u8]>, end: Bound<&[u8]>) -> Result<Proof> {
        let mut pages = Vec::new();
        let mut seen = std::collections::HashSet::new();
        if !self.root.is_zero() {
            proof::collect_range_pages(
                self,
                self.root,
                siri_encoding::Nibbles::empty(),
                start,
                end,
                &mut seen,
                &mut pages,
            )?;
        }
        Ok(Proof::new(pages))
    }

    fn prove_batch(&self, keys: &[Bytes]) -> Result<Proof> {
        let mut pages = Vec::new();
        let mut seen = std::collections::HashSet::new();
        for key in keys {
            for page in self.prove(key)?.into_pages() {
                if seen.insert(siri_crypto::sha256(&page)) {
                    pages.push(page);
                }
            }
        }
        Ok(Proof::new(pages))
    }
}

impl MerklePatriciaTrie {
    /// Verify a range proof against a trusted branch digest — see
    /// [`siri_core::verify_anchored_range`].
    pub fn verify_range(
        digest: Hash,
        start: Bound<&[u8]>,
        end: Bound<&[u8]>,
        proof: &Proof,
    ) -> siri_core::RangeVerdict {
        siri_core::verify_anchored_range(&proof::MptProofScheme, digest, start, end, proof)
    }

    /// Verify a batched multi-key proof against a trusted branch digest —
    /// see [`siri_core::verify_anchored_batch`].
    pub fn verify_batch(digest: Hash, keys: &[Bytes], proof: &Proof) -> siri_core::BatchVerdict {
        siri_core::verify_anchored_batch(&proof::MptProofScheme, digest, keys, proof)
    }
}

impl StructureStats for MerklePatriciaTrie {
    fn structure_stats(&self) -> Result<StructureReport> {
        let pages = self.page_set();
        let (_, height) = self.depth_stats()?;
        let entries = self.len()? as u64;
        let nodes = pages.len() as u64;
        Ok(StructureReport {
            nodes,
            bytes: pages.byte_size(),
            height,
            entries,
            // MPT leaves hold one key suffix each; entries-per-node is the
            // meaningful density (path compaction pushes it toward 1).
            leaf_occupancy: if nodes == 0 { 0.0 } else { entries as f64 / nodes as f64 },
        })
    }

    fn node_cache_stats(&self) -> CacheStats {
        MerklePatriciaTrie::node_cache_stats(self)
    }
}

pub(crate) use nibbles_to_key as nibbles_to_key_for_diff;

#[cfg(test)]
mod tests {
    use super::*;
    use siri_core::{Entry, MemStore};

    fn make() -> MerklePatriciaTrie {
        MerklePatriciaTrie::new(MemStore::new_shared())
    }

    fn e(k: &str, v: &str) -> Entry {
        Entry::new(k.as_bytes().to_vec(), v.as_bytes().to_vec())
    }

    #[test]
    fn empty_trie() {
        let t = make();
        assert!(t.is_empty());
        assert_eq!(t.get(b"x").unwrap(), None);
        assert!(t.scan().unwrap().is_empty());
        assert_eq!(t.page_set().len(), 0);
    }

    #[test]
    fn paper_example_keys() {
        // The Figure 3 walkthrough: keys "1", "8", then "10" diverging at a
        // leaf and splitting it.
        let mut t = make();
        t.insert(b"8", Bytes::from_static(b"v8")).unwrap();
        t.insert(b"1", Bytes::from_static(b"v1")).unwrap();
        t.insert(b"10", Bytes::from_static(b"v10")).unwrap();
        assert_eq!(t.get(b"8").unwrap().unwrap().as_ref(), b"v8");
        assert_eq!(t.get(b"1").unwrap().unwrap().as_ref(), b"v1");
        assert_eq!(t.get(b"10").unwrap().unwrap().as_ref(), b"v10");
        assert_eq!(t.get(b"9").unwrap(), None);
        assert_eq!(t.len().unwrap(), 3);
    }

    #[test]
    fn prefix_keys_coexist() {
        // "a" is a strict prefix of "ab": the shorter key's value lands in
        // a branch value slot.
        let mut t = make();
        t.insert(b"a", Bytes::from_static(b"short")).unwrap();
        t.insert(b"ab", Bytes::from_static(b"long")).unwrap();
        t.insert(b"abc", Bytes::from_static(b"longer")).unwrap();
        assert_eq!(t.get(b"a").unwrap().unwrap().as_ref(), b"short");
        assert_eq!(t.get(b"ab").unwrap().unwrap().as_ref(), b"long");
        assert_eq!(t.get(b"abc").unwrap().unwrap().as_ref(), b"longer");
        assert_eq!(t.get(b"abcd").unwrap(), None);
        let scan = t.scan().unwrap();
        assert_eq!(scan.len(), 3);
        assert!(scan.windows(2).all(|w| w[0].key < w[1].key));
    }

    #[test]
    fn structurally_invariant_under_insertion_order() {
        let entries: Vec<Entry> =
            (0..300).map(|i| e(&format!("user{i:04}"), &format!("profile-{i}"))).collect();
        let mut forward = make();
        forward.batch_insert(entries.clone()).unwrap();
        let mut backward = make();
        for en in entries.iter().rev() {
            backward.insert(&en.key, en.value.clone()).unwrap();
        }
        let mut chunked = make();
        for c in entries.chunks(37) {
            chunked.batch_insert(c.to_vec()).unwrap();
        }
        assert_eq!(forward.root(), backward.root());
        assert_eq!(forward.root(), chunked.root());
    }

    #[test]
    fn overwrite_changes_digest_and_keeps_history() {
        let mut t = make();
        t.insert(b"acct", Bytes::from_static(b"100")).unwrap();
        let v1 = t.clone();
        t.insert(b"acct", Bytes::from_static(b"250")).unwrap();
        assert_ne!(v1.root(), t.root());
        assert_eq!(v1.get(b"acct").unwrap().unwrap().as_ref(), b"100");
        assert_eq!(t.get(b"acct").unwrap().unwrap().as_ref(), b"250");
    }

    #[test]
    fn update_rewrites_only_the_path() {
        let mut t = make();
        t.batch_insert((0..200).map(|i| e(&format!("key{i:03}"), "v")).collect()).unwrap();
        let before = t.page_set();
        let mut v2 = t.clone();
        v2.insert(b"key100", Bytes::from_static(b"changed")).unwrap();
        let fresh = v2.page_set().difference(&before);
        let (_, max_depth) = t.depth_stats().unwrap();
        assert!(
            fresh.len() as u32 <= max_depth + 1,
            "one path only: {} new pages vs depth {}",
            fresh.len(),
            max_depth
        );
    }

    #[test]
    fn scan_round_trips_binary_keys() {
        let mut t = make();
        let entries: Vec<Entry> =
            (0..=255u8).map(|b| Entry::new(vec![b, b ^ 0x5a], vec![b])).collect();
        t.batch_insert(entries.clone()).unwrap();
        let mut expected = entries;
        expected.sort();
        assert_eq!(t.scan().unwrap(), expected);
    }

    #[test]
    fn depth_grows_with_record_count_not_shared_prefixes() {
        // Path compaction folds long shared prefixes into one extension
        // node, so depth is driven by the number of divergence points —
        // i.e. by N — not by raw key length.
        let mut small = make();
        small.batch_insert((0..16).map(|i| e(&format!("k{i:04}"), "v")).collect()).unwrap();
        let mut large = make();
        large.batch_insert((0..4096).map(|i| e(&format!("k{i:04}"), "v")).collect()).unwrap();
        let (avg_small, _) = small.depth_stats().unwrap();
        let (avg_large, _) = large.depth_stats().unwrap();
        assert!(avg_large > avg_small, "large {avg_large} vs small {avg_small}");

        // And a single long-shared-prefix cluster stays shallow thanks to
        // compaction.
        let mut clustered = make();
        clustered
            .batch_insert((0..16).map(|i| e(&format!("shared/deep/prefix/{i:04}"), "v")).collect())
            .unwrap();
        let (avg_clustered, _) = clustered.depth_stats().unwrap();
        assert!(avg_clustered <= avg_small + 2.0, "compaction keeps it shallow");
    }

    #[test]
    fn trace_counts_path_nodes() {
        let mut t = make();
        t.batch_insert((0..100).map(|i| e(&format!("k{i:02}"), "v")).collect()).unwrap();
        let (v, trace) = t.get_traced(b"k42").unwrap();
        assert!(v.is_some());
        assert!(trace.height >= 2);
        assert_eq!(trace.pages_loaded, trace.height);
    }

    #[test]
    fn scan_prefix_returns_exactly_the_subtree() {
        let mut t = make();
        t.batch_insert(vec![
            e("app/alpha", "1"),
            e("app/beta", "2"),
            e("app", "3"),
            e("apple", "4"),
            e("banana", "5"),
        ])
        .unwrap();
        let r = t.scan_prefix(b"app/").collect_entries().unwrap();
        assert_eq!(r.len(), 2);
        assert_eq!(r[0].key.as_ref(), b"app/alpha");
        let r = t.scan_prefix(b"app").collect_entries().unwrap();
        assert_eq!(r.len(), 4, "app, app/*, apple");
        assert_eq!(t.scan_prefix(b"zzz").count(), 0);
        assert_eq!(t.scan_prefix(b"").count(), 5, "empty prefix = full scan");
        assert_eq!(t.scan_prefix(b"banana").count(), 1);
        assert_eq!(t.scan_prefix(b"bananas").count(), 0);
    }

    #[test]
    fn range_cursor_respects_bounds_and_is_lazy() {
        let mut t = make();
        t.batch_insert((0..300).map(|i| e(&format!("k{i:03}"), "v")).collect()).unwrap();
        let r =
            t.range(Bound::Included(b"k100"), Bound::Excluded(b"k110")).collect_entries().unwrap();
        assert_eq!(r.len(), 10);
        assert_eq!(r[0].key.as_ref(), b"k100");
        assert_eq!(r[9].key.as_ref(), b"k109");
        // Exclusive start, inclusive end.
        let r =
            t.range(Bound::Excluded(b"k100"), Bound::Included(b"k103")).collect_entries().unwrap();
        assert_eq!(r.len(), 3);
        assert_eq!(r[0].key.as_ref(), b"k101");
        // A narrow window must not walk the whole trie.
        let gets_before = t.store().stats().gets + t.node_cache_stats().hits;
        let _ =
            t.range(Bound::Included(b"k200"), Bound::Excluded(b"k202")).collect_entries().unwrap();
        let touched = t.store().stats().gets + t.node_cache_stats().hits - gets_before;
        assert!(touched < 40, "narrow range touched {touched} nodes");
        // Inverted and empty windows.
        assert_eq!(t.range(Bound::Included(b"z"), Bound::Excluded(b"a")).count(), 0);
        assert_eq!(t.range(Bound::Included(b"k100"), Bound::Excluded(b"k100")).count(), 0);
    }

    #[test]
    fn delete_removes_and_restores_root() {
        let mut t = make();
        t.batch_insert((0..100).map(|i| e(&format!("user{i:03}"), "v")).collect()).unwrap();
        let full_root = t.root();
        t.delete(b"user042").unwrap();
        assert_eq!(t.get(b"user042").unwrap(), None);
        assert_eq!(t.len().unwrap(), 99);
        assert_ne!(t.root(), full_root);
        // Structural invariance: reinserting restores the identical digest.
        t.insert(b"user042", Bytes::from_static(b"v")).unwrap();
        assert_eq!(t.root(), full_root);
        // And the deleted-only set matches a fresh build.
        let mut fresh = make();
        fresh
            .batch_insert(
                (0..100).filter(|i| *i != 42).map(|i| e(&format!("user{i:03}"), "v")).collect(),
            )
            .unwrap();
        t.delete(b"user042").unwrap();
        assert_eq!(t.root(), fresh.root());
    }

    #[test]
    fn delete_collapses_branches_and_extensions() {
        let mut t = make();
        // "a" sits in a branch value slot above "ab"/"ac"; deleting "ab"
        // then "ac" must collapse the branch back into a leaf for "a".
        t.insert(b"a", Bytes::from_static(b"va")).unwrap();
        let only_a = t.root();
        t.insert(b"ab", Bytes::from_static(b"vab")).unwrap();
        t.insert(b"ac", Bytes::from_static(b"vac")).unwrap();
        t.delete(b"ab").unwrap();
        t.delete(b"ac").unwrap();
        assert_eq!(t.root(), only_a, "collapse must re-compact to the single-leaf trie");
        assert_eq!(t.get(b"a").unwrap().unwrap().as_ref(), b"va");
        // Deleting the last key empties the trie entirely.
        t.delete(b"a").unwrap();
        assert!(t.is_empty());
        assert_eq!(t.root(), Hash::ZERO);
    }

    #[test]
    fn delete_branch_value_keeps_subtree() {
        let mut t = make();
        t.insert(b"a", Bytes::from_static(b"short")).unwrap();
        t.insert(b"ab", Bytes::from_static(b"long")).unwrap();
        t.insert(b"ac", Bytes::from_static(b"other")).unwrap();
        t.delete(b"a").unwrap();
        assert_eq!(t.get(b"a").unwrap(), None);
        assert_eq!(t.get(b"ab").unwrap().unwrap().as_ref(), b"long");
        assert_eq!(t.get(b"ac").unwrap().unwrap().as_ref(), b"other");
        let mut fresh = make();
        fresh.insert(b"ab", Bytes::from_static(b"long")).unwrap();
        fresh.insert(b"ac", Bytes::from_static(b"other")).unwrap();
        assert_eq!(t.root(), fresh.root());
    }

    #[test]
    fn mixed_batch_resolves_per_key() {
        let mut t = make();
        t.insert(b"keep", Bytes::from_static(b"1")).unwrap();
        t.insert(b"drop", Bytes::from_static(b"2")).unwrap();
        let mut batch = WriteBatch::new();
        batch.delete(&b"drop"[..]);
        batch.put(&b"new"[..], &b"3"[..]);
        batch.delete(&b"new"[..]); // later op wins: never lands
        batch.put(&b"drop"[..], &b"2'"[..]); // resurrect in the same batch
        t.commit(batch).unwrap();
        assert_eq!(t.get(b"drop").unwrap().unwrap().as_ref(), b"2'");
        assert_eq!(t.get(b"new").unwrap(), None);
        assert_eq!(t.len().unwrap(), 2);
        // Deleting an absent key is a no-op on the digest.
        let root = t.root();
        t.delete(b"ghost").unwrap();
        assert_eq!(t.root(), root);
    }

    #[test]
    fn values_at_branch_slots_survive_deep_inserts() {
        let mut t = make();
        t.insert(b"", Bytes::from_static(b"empty-key")).unwrap();
        t.insert(b"x", Bytes::from_static(b"x")).unwrap();
        assert_eq!(t.get(b"").unwrap().unwrap().as_ref(), b"empty-key");
        assert_eq!(t.get(b"x").unwrap().unwrap().as_ref(), b"x");
        assert_eq!(t.len().unwrap(), 2);
    }
}
