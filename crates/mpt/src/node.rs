//! MPT node codec — the four node kinds of §3.4.1, RLP-encoded as in
//! Ethereum.
//!
//! * **branch** — 16 child slots (one per nibble) plus an optional value;
//! * **extension** — a compacted shared path and one child;
//! * **leaf** — a compacted terminal path and a value;
//! * **null** — represented by [`Hash::ZERO`], never stored.
//!
//! Wire format: branch = RLP list of 17 strings (empty string for an absent
//! child; 32-byte digest otherwise; slot 16 holds the value, marker-
//! prefixed); extension/leaf = RLP list of 2 strings (hex-prefix path,
//! then digest/value). One deviation from Ethereum, documented in
//! DESIGN.md: children are always referenced by digest — nodes under 32
//! bytes are not inlined into their parents.

use bytes::Bytes;
use siri_core::{IndexError, Result};
use siri_crypto::Hash;
use siri_encoding::{rlp, Nibbles, RlpItem};

/// A decoded MPT node.
///
/// The Branch variant is much larger than the others (16 optional child
/// digests); nodes are short-lived decode products on the read path, so
/// boxing the array would add an allocation per branch visit for no
/// footprint win.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Node {
    /// 16 children (by nibble) and an optional value terminating exactly
    /// at this position.
    Branch { children: [Option<Hash>; 16], value: Option<Bytes> },
    /// A run of nibbles shared by every key below, then one child.
    Extension { path: Nibbles, child: Hash },
    /// A terminal run of nibbles and the value.
    Leaf { path: Nibbles, value: Bytes },
}

/// Branch value slots need "absent" ≠ "empty value": absent encodes as the
/// empty string, present values carry a 0x01 marker byte.
fn encode_value_slot(value: &Option<Bytes>) -> RlpItem {
    match value {
        None => RlpItem::bytes(Vec::new()),
        Some(v) => {
            let mut out = Vec::with_capacity(v.len() + 1);
            out.push(0x01);
            out.extend_from_slice(v);
            RlpItem::bytes(out)
        }
    }
}

fn decode_value_slot(raw: &[u8]) -> Result<Option<Bytes>> {
    match raw.split_first() {
        None => Ok(None),
        Some((0x01, rest)) => Ok(Some(Bytes::copy_from_slice(rest))),
        Some(_) => Err(IndexError::CorruptStructure("bad branch value marker")),
    }
}

impl Node {
    pub fn encode(&self) -> Bytes {
        let item = match self {
            Node::Branch { children, value } => {
                let mut items = Vec::with_capacity(17);
                for child in children {
                    items.push(match child {
                        Some(h) => RlpItem::bytes(h.as_bytes().to_vec()),
                        None => RlpItem::bytes(Vec::new()),
                    });
                }
                items.push(encode_value_slot(value));
                RlpItem::list(items)
            }
            Node::Extension { path, child } => RlpItem::list(vec![
                RlpItem::bytes(path.hex_prefix_encode(false)),
                RlpItem::bytes(child.as_bytes().to_vec()),
            ]),
            Node::Leaf { path, value } => RlpItem::list(vec![
                RlpItem::bytes(path.hex_prefix_encode(true)),
                RlpItem::bytes(value.to_vec()),
            ]),
        };
        Bytes::from(item.encode())
    }

    /// Zero-copy decode: branch/leaf values are refcounted slices of the
    /// page — the hot read path, mirroring POS-Tree's `decode_zc`. A cache
    /// hit downstream therefore shares the page allocation instead of
    /// re-copying values out of it. Validation is byte-for-byte identical
    /// to [`Node::decode`] (both reject the same corrupt inputs).
    pub fn decode_zc(page: &Bytes) -> Result<Node> {
        let ranges = rlp::flat_list_ranges(page)?;
        match ranges.len() {
            17 => {
                let mut children: [Option<Hash>; 16] = Default::default();
                for (i, range) in ranges[..16].iter().enumerate() {
                    let raw = &page[range.clone()];
                    children[i] = if raw.is_empty() {
                        None
                    } else {
                        Some(
                            Hash::from_slice(raw)
                                .ok_or(IndexError::CorruptStructure("bad child digest length"))?,
                        )
                    };
                }
                let vr = &ranges[16];
                let value = match page[vr.clone()].split_first() {
                    None => None,
                    Some((0x01, _)) => Some(page.slice(vr.start + 1..vr.end)),
                    Some(_) => return Err(IndexError::CorruptStructure("bad branch value marker")),
                };
                if value.is_none() && children.iter().all(Option::is_none) {
                    return Err(IndexError::CorruptStructure("empty branch node"));
                }
                Ok(Node::Branch { children, value })
            }
            2 => {
                let (path, is_leaf) = Nibbles::hex_prefix_decode(&page[ranges[0].clone()])
                    .ok_or(IndexError::CorruptStructure("bad hex-prefix path"))?;
                if is_leaf {
                    Ok(Node::Leaf { path, value: page.slice(ranges[1].clone()) })
                } else {
                    if path.is_empty() {
                        return Err(IndexError::CorruptStructure("empty extension path"));
                    }
                    let child = Hash::from_slice(&page[ranges[1].clone()])
                        .ok_or(IndexError::CorruptStructure("bad extension child digest"))?;
                    Ok(Node::Extension { path, child })
                }
            }
            _ => Err(IndexError::CorruptStructure("MPT node is neither branch nor pair")),
        }
    }

    pub fn decode(page: &[u8]) -> Result<Node> {
        let item = RlpItem::decode_all(page)?;
        let list = item.as_list()?;
        match list.len() {
            17 => {
                let mut children: [Option<Hash>; 16] = Default::default();
                for (i, slot) in list[..16].iter().enumerate() {
                    let raw = slot.as_bytes()?;
                    children[i] = if raw.is_empty() {
                        None
                    } else {
                        Some(
                            Hash::from_slice(raw)
                                .ok_or(IndexError::CorruptStructure("bad child digest length"))?,
                        )
                    };
                }
                let value = decode_value_slot(list[16].as_bytes()?)?;
                if value.is_none() && children.iter().all(Option::is_none) {
                    return Err(IndexError::CorruptStructure("empty branch node"));
                }
                Ok(Node::Branch { children, value })
            }
            2 => {
                let (path, is_leaf) = Nibbles::hex_prefix_decode(list[0].as_bytes()?)
                    .ok_or(IndexError::CorruptStructure("bad hex-prefix path"))?;
                let payload = list[1].as_bytes()?;
                if is_leaf {
                    Ok(Node::Leaf { path, value: Bytes::copy_from_slice(payload) })
                } else {
                    if path.is_empty() {
                        return Err(IndexError::CorruptStructure("empty extension path"));
                    }
                    let child = Hash::from_slice(payload)
                        .ok_or(IndexError::CorruptStructure("bad extension child digest"))?;
                    Ok(Node::Extension { path, child })
                }
            }
            _ => Err(IndexError::CorruptStructure("MPT node is neither branch nor pair")),
        }
    }

    /// Child digests referenced by a page — the store-walk decoder.
    pub fn children_of_page(page: &[u8]) -> Vec<Hash> {
        match Node::decode(page) {
            Ok(Node::Branch { children, .. }) => children.into_iter().flatten().collect(),
            Ok(Node::Extension { child, .. }) => vec![child],
            _ => Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use siri_crypto::sha256;

    fn nib(raw: &[u8]) -> Nibbles {
        Nibbles::from_raw(raw.to_vec())
    }

    #[test]
    fn leaf_round_trip() {
        let node = Node::Leaf { path: nib(&[1, 2, 3]), value: Bytes::from_static(b"val") };
        assert_eq!(Node::decode(&node.encode()).unwrap(), node);
        // Empty path and empty value are legal leaves.
        let node = Node::Leaf { path: Nibbles::empty(), value: Bytes::new() };
        assert_eq!(Node::decode(&node.encode()).unwrap(), node);
    }

    #[test]
    fn extension_round_trip() {
        let node = Node::Extension { path: nib(&[0xa]), child: sha256(b"child") };
        assert_eq!(Node::decode(&node.encode()).unwrap(), node);
    }

    #[test]
    fn branch_round_trip_with_and_without_value() {
        let mut children: [Option<Hash>; 16] = Default::default();
        children[3] = Some(sha256(b"c3"));
        children[15] = Some(sha256(b"c15"));
        for value in [None, Some(Bytes::from_static(b"v")), Some(Bytes::new())] {
            let node = Node::Branch { children, value: value.clone() };
            assert_eq!(Node::decode(&node.encode()).unwrap(), node, "value {value:?}");
        }
    }

    #[test]
    fn empty_value_distinct_from_absent() {
        let mut children: [Option<Hash>; 16] = Default::default();
        children[0] = Some(sha256(b"c"));
        let absent = Node::Branch { children, value: None }.encode();
        let empty = Node::Branch { children, value: Some(Bytes::new()) }.encode();
        assert_ne!(absent, empty);
    }

    #[test]
    fn rejects_malformed() {
        assert!(Node::decode(b"not rlp").is_err());
        // A 3-element list is no MPT node.
        let bad =
            RlpItem::list(vec![RlpItem::uint(1), RlpItem::uint(2), RlpItem::uint(3)]).encode();
        assert!(Node::decode(&bad).is_err());
        // Extension with empty path.
        let bad = RlpItem::list(vec![
            RlpItem::bytes(Nibbles::empty().hex_prefix_encode(false)),
            RlpItem::bytes(sha256(b"c").as_bytes().to_vec()),
        ])
        .encode();
        assert!(Node::decode(&bad).is_err());
        // Branch with all slots empty.
        let mut items = vec![RlpItem::bytes(Vec::new()); 16];
        items.push(RlpItem::bytes(Vec::new()));
        assert!(Node::decode(&RlpItem::list(items).encode()).is_err());
    }

    #[test]
    fn zero_copy_decode_matches_copying_decode() {
        let mut children: [Option<Hash>; 16] = Default::default();
        children[2] = Some(sha256(b"c2"));
        children[9] = Some(sha256(b"c9"));
        let nodes = vec![
            Node::Leaf { path: nib(&[1, 2, 3]), value: Bytes::from_static(b"value bytes") },
            Node::Leaf { path: Nibbles::empty(), value: Bytes::new() },
            Node::Extension { path: nib(&[0xa, 0xb]), child: sha256(b"child") },
            Node::Branch { children, value: Some(Bytes::from_static(b"bv")) },
            Node::Branch { children, value: None },
        ];
        for node in nodes {
            let page = node.encode();
            assert_eq!(Node::decode_zc(&page).unwrap(), node);
            assert_eq!(Node::decode(&page).unwrap(), node);
        }
        // Values are slices of the page (no copy).
        let leaf = Node::Leaf { path: nib(&[1]), value: Bytes::from_static(b"shared-payload") };
        let page = leaf.encode();
        let Node::Leaf { value, .. } = Node::decode_zc(&page).unwrap() else { panic!() };
        let base = page.as_ptr() as usize;
        let v = value.as_ptr() as usize;
        assert!(v > base && v < base + page.len(), "value must point into the page");
    }

    #[test]
    fn zero_copy_decode_rejects_what_decode_rejects() {
        let bad_inputs: Vec<Vec<u8>> = vec![
            b"not rlp".to_vec(),
            RlpItem::list(vec![RlpItem::uint(1), RlpItem::uint(2), RlpItem::uint(3)]).encode(),
            {
                // Branch with a non-0x01 value marker.
                let mut items = vec![RlpItem::bytes(sha256(b"c").as_bytes().to_vec())];
                items.extend(std::iter::repeat_n(RlpItem::bytes(Vec::new()), 15));
                items.push(RlpItem::bytes(vec![0x02, 0xff]));
                RlpItem::list(items).encode()
            },
        ];
        for raw in bad_inputs {
            let page = Bytes::from(raw.clone());
            assert!(Node::decode_zc(&page).is_err(), "input {raw:?}");
            assert!(Node::decode(&raw).is_err());
        }
    }

    #[test]
    fn children_decoder() {
        let ext = Node::Extension { path: nib(&[1]), child: sha256(b"c") };
        assert_eq!(Node::children_of_page(&ext.encode()), vec![sha256(b"c")]);
        let leaf = Node::Leaf { path: nib(&[1]), value: Bytes::from_static(b"v") };
        assert!(Node::children_of_page(&leaf.encode()).is_empty());
    }
}
