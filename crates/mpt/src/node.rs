//! MPT node codec — the four node kinds of §3.4.1, RLP-encoded as in
//! Ethereum.
//!
//! * **branch** — 16 child slots (one per nibble) plus an optional value;
//! * **extension** — a compacted shared path and one child;
//! * **leaf** — a compacted terminal path and a value;
//! * **null** — represented by [`Hash::ZERO`], never stored.
//!
//! Wire format: branch = RLP list of 17 strings (empty string for an absent
//! child; 32-byte digest otherwise; slot 16 holds the value, marker-
//! prefixed); extension/leaf = RLP list of 2 strings (hex-prefix path,
//! then digest/value). One deviation from Ethereum, documented in
//! DESIGN.md: children are always referenced by digest — nodes under 32
//! bytes are not inlined into their parents.

use bytes::Bytes;
use siri_core::{IndexError, Result};
use siri_crypto::Hash;
use siri_encoding::{rlp, Nibbles, RlpItem};

/// A decoded MPT node.
///
/// The Branch variant is much larger than the others (16 optional child
/// digests); nodes are short-lived decode products on the read path, so
/// boxing the array would add an allocation per branch visit for no
/// footprint win.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Node {
    /// 16 children (by nibble) and an optional value terminating exactly
    /// at this position.
    Branch { children: [Option<Hash>; 16], value: Option<Bytes> },
    /// A run of nibbles shared by every key below, then one child.
    Extension { path: Nibbles, child: Hash },
    /// A terminal run of nibbles and the value.
    Leaf { path: Nibbles, value: Bytes },
}

/// Branch value slots need "absent" ≠ "empty value": absent encodes as the
/// empty string, present values carry a 0x01 marker byte.
fn value_slot_len(value: &Option<Bytes>) -> usize {
    match value {
        None => 1,                    // empty string: 0x80
        Some(v) if v.is_empty() => 1, // lone marker byte: single-byte literal
        Some(v) => rlp::str_header_len(v.len() + 1) + v.len() + 1,
    }
}

/// Stream the value slot: the marker byte and the borrowed value land in
/// `out` directly — no `0x01 ++ value` temporary.
fn write_value_slot(out: &mut Vec<u8>, value: &Option<Bytes>) {
    match value {
        None => rlp::write_str(out, &[]),
        Some(v) if v.is_empty() => out.push(0x01),
        Some(v) => {
            rlp::write_str_header(out, v.len() + 1);
            out.push(0x01);
            out.extend_from_slice(v);
        }
    }
}

/// Encoded length of a hex-prefix path as an RLP string. A one-byte
/// encoding starts with the flag nibble (≤ 0x3f), so it always takes the
/// single-byte literal form.
fn hp_str_len(path: &Nibbles) -> usize {
    let hp = path.hex_prefix_encoded_len();
    if hp == 1 {
        1
    } else {
        rlp::str_header_len(hp) + hp
    }
}

/// Stream a hex-prefix path as an RLP string, headerless when it is the
/// single-byte literal form.
fn write_hp_str(out: &mut Vec<u8>, path: &Nibbles, is_leaf: bool) {
    let hp = path.hex_prefix_encoded_len();
    if hp > 1 {
        rlp::write_str_header(out, hp);
    }
    path.hex_prefix_encode_into(is_leaf, out);
}

fn decode_value_slot(raw: &[u8]) -> Result<Option<Bytes>> {
    match raw.split_first() {
        None => Ok(None),
        Some((0x01, rest)) => Ok(Some(Bytes::copy_from_slice(rest))),
        Some(_) => Err(IndexError::CorruptStructure("bad branch value marker")),
    }
}

impl Node {
    pub fn encode(&self) -> Bytes {
        let mut out = Vec::with_capacity(self.encoded_len());
        self.encode_into(&mut out);
        debug_assert_eq!(out.len(), self.encoded_len());
        Bytes::from(out)
    }

    /// RLP payload length (list items only, excluding the list header).
    fn payload_len(&self) -> usize {
        match self {
            Node::Branch { children, value } => {
                // Occupied child: 0xa0 header + 32-byte digest. Empty: 0x80.
                let kids: usize = children.iter().map(|c| if c.is_some() { 33 } else { 1 }).sum();
                kids + value_slot_len(value)
            }
            Node::Extension { path, .. } => hp_str_len(path) + 33,
            Node::Leaf { path, value } => hp_str_len(path) + rlp::str_encoded_len(value),
        }
    }

    /// Exact byte length of [`Node::encode`]'s output, computed without
    /// serializing — commit paths pre-size page buffers to it.
    pub fn encoded_len(&self) -> usize {
        let payload = self.payload_len();
        rlp::list_header_len(payload) + payload
    }

    /// Stream the canonical encoding into `out` — byte-identical to
    /// [`Node::encode`] but with zero intermediate allocations, so a commit
    /// can serialize every node into one reusable scratch buffer. (The old
    /// encoder built an [`RlpItem`] tree: ~18 short-lived `Vec`s per
    /// branch page.)
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        rlp::write_list_header(out, self.payload_len());
        match self {
            Node::Branch { children, value } => {
                for child in children {
                    match child {
                        Some(h) => rlp::write_str(out, h.as_bytes()),
                        None => rlp::write_str(out, &[]),
                    }
                }
                write_value_slot(out, value);
            }
            Node::Extension { path, child } => {
                write_hp_str(out, path, false);
                rlp::write_str(out, child.as_bytes());
            }
            Node::Leaf { path, value } => {
                write_hp_str(out, path, true);
                rlp::write_str(out, value);
            }
        }
    }

    /// Zero-copy decode: branch/leaf values are refcounted slices of the
    /// page — the hot read path, mirroring POS-Tree's `decode_zc`. A cache
    /// hit downstream therefore shares the page allocation instead of
    /// re-copying values out of it. Validation is byte-for-byte identical
    /// to [`Node::decode`] (both reject the same corrupt inputs).
    pub fn decode_zc(page: &Bytes) -> Result<Node> {
        let ranges = rlp::flat_list_ranges(page)?;
        match ranges.len() {
            17 => {
                let mut children: [Option<Hash>; 16] = Default::default();
                for (i, range) in ranges[..16].iter().enumerate() {
                    let raw = &page[range.clone()];
                    children[i] = if raw.is_empty() {
                        None
                    } else {
                        Some(
                            Hash::from_slice(raw)
                                .ok_or(IndexError::CorruptStructure("bad child digest length"))?,
                        )
                    };
                }
                let vr = &ranges[16];
                let value = match page[vr.clone()].split_first() {
                    None => None,
                    Some((0x01, _)) => Some(page.slice(vr.start + 1..vr.end)),
                    Some(_) => return Err(IndexError::CorruptStructure("bad branch value marker")),
                };
                if value.is_none() && children.iter().all(Option::is_none) {
                    return Err(IndexError::CorruptStructure("empty branch node"));
                }
                Ok(Node::Branch { children, value })
            }
            2 => {
                let (path, is_leaf) = Nibbles::hex_prefix_decode(&page[ranges[0].clone()])
                    .ok_or(IndexError::CorruptStructure("bad hex-prefix path"))?;
                if is_leaf {
                    Ok(Node::Leaf { path, value: page.slice(ranges[1].clone()) })
                } else {
                    if path.is_empty() {
                        return Err(IndexError::CorruptStructure("empty extension path"));
                    }
                    let child = Hash::from_slice(&page[ranges[1].clone()])
                        .ok_or(IndexError::CorruptStructure("bad extension child digest"))?;
                    Ok(Node::Extension { path, child })
                }
            }
            _ => Err(IndexError::CorruptStructure("MPT node is neither branch nor pair")),
        }
    }

    pub fn decode(page: &[u8]) -> Result<Node> {
        let item = RlpItem::decode_all(page)?;
        let list = item.as_list()?;
        match list.len() {
            17 => {
                let mut children: [Option<Hash>; 16] = Default::default();
                for (i, slot) in list[..16].iter().enumerate() {
                    let raw = slot.as_bytes()?;
                    children[i] = if raw.is_empty() {
                        None
                    } else {
                        Some(
                            Hash::from_slice(raw)
                                .ok_or(IndexError::CorruptStructure("bad child digest length"))?,
                        )
                    };
                }
                let value = decode_value_slot(list[16].as_bytes()?)?;
                if value.is_none() && children.iter().all(Option::is_none) {
                    return Err(IndexError::CorruptStructure("empty branch node"));
                }
                Ok(Node::Branch { children, value })
            }
            2 => {
                let (path, is_leaf) = Nibbles::hex_prefix_decode(list[0].as_bytes()?)
                    .ok_or(IndexError::CorruptStructure("bad hex-prefix path"))?;
                let payload = list[1].as_bytes()?;
                if is_leaf {
                    Ok(Node::Leaf { path, value: Bytes::copy_from_slice(payload) })
                } else {
                    if path.is_empty() {
                        return Err(IndexError::CorruptStructure("empty extension path"));
                    }
                    let child = Hash::from_slice(payload)
                        .ok_or(IndexError::CorruptStructure("bad extension child digest"))?;
                    Ok(Node::Extension { path, child })
                }
            }
            _ => Err(IndexError::CorruptStructure("MPT node is neither branch nor pair")),
        }
    }

    /// Child digests referenced by a page — the store-walk decoder.
    pub fn children_of_page(page: &[u8]) -> Vec<Hash> {
        match Node::decode(page) {
            Ok(Node::Branch { children, .. }) => children.into_iter().flatten().collect(),
            Ok(Node::Extension { child, .. }) => vec![child],
            _ => Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use siri_crypto::sha256;

    fn nib(raw: &[u8]) -> Nibbles {
        Nibbles::from_raw(raw.to_vec())
    }

    #[test]
    fn leaf_round_trip() {
        let node = Node::Leaf { path: nib(&[1, 2, 3]), value: Bytes::from_static(b"val") };
        assert_eq!(Node::decode(&node.encode()).unwrap(), node);
        // Empty path and empty value are legal leaves.
        let node = Node::Leaf { path: Nibbles::empty(), value: Bytes::new() };
        assert_eq!(Node::decode(&node.encode()).unwrap(), node);
    }

    #[test]
    fn extension_round_trip() {
        let node = Node::Extension { path: nib(&[0xa]), child: sha256(b"child") };
        assert_eq!(Node::decode(&node.encode()).unwrap(), node);
    }

    #[test]
    fn branch_round_trip_with_and_without_value() {
        let mut children: [Option<Hash>; 16] = Default::default();
        children[3] = Some(sha256(b"c3"));
        children[15] = Some(sha256(b"c15"));
        for value in [None, Some(Bytes::from_static(b"v")), Some(Bytes::new())] {
            let node = Node::Branch { children, value: value.clone() };
            assert_eq!(Node::decode(&node.encode()).unwrap(), node, "value {value:?}");
        }
    }

    /// The streamed encoder must be byte-identical to a reference encoding
    /// built through the generic [`RlpItem`] tree — this is the
    /// digest-stability contract: a codec change that alters one byte
    /// changes every page address above it.
    #[test]
    fn streamed_encode_matches_rlp_item_reference() {
        fn reference(node: &Node) -> Vec<u8> {
            let item = match node {
                Node::Branch { children, value } => {
                    let mut items: Vec<RlpItem> = children
                        .iter()
                        .map(|c| match c {
                            Some(h) => RlpItem::bytes(h.as_bytes().to_vec()),
                            None => RlpItem::bytes(Vec::new()),
                        })
                        .collect();
                    items.push(match value {
                        None => RlpItem::bytes(Vec::new()),
                        Some(v) => {
                            let mut out = vec![0x01];
                            out.extend_from_slice(v);
                            RlpItem::bytes(out)
                        }
                    });
                    RlpItem::list(items)
                }
                Node::Extension { path, child } => RlpItem::list(vec![
                    RlpItem::bytes(path.hex_prefix_encode(false)),
                    RlpItem::bytes(child.as_bytes().to_vec()),
                ]),
                Node::Leaf { path, value } => RlpItem::list(vec![
                    RlpItem::bytes(path.hex_prefix_encode(true)),
                    RlpItem::bytes(value.to_vec()),
                ]),
            };
            item.encode()
        }
        let mut children: [Option<Hash>; 16] = Default::default();
        children[0] = Some(sha256(b"a"));
        children[7] = Some(sha256(b"b"));
        let full: [Option<Hash>; 16] = std::array::from_fn(|i| Some(sha256(&[i as u8])));
        let nodes = vec![
            Node::Leaf { path: Nibbles::empty(), value: Bytes::new() },
            Node::Leaf { path: nib(&[5]), value: Bytes::from_static(b"v") }, // 1-byte hex-prefix
            Node::Leaf { path: nib(&[1, 2]), value: Bytes::from(vec![0x7fu8]) }, // 1-byte literal value
            Node::Leaf { path: nib(&[1, 2, 3]), value: Bytes::from(vec![9u8; 300]) }, // long string
            Node::Extension { path: nib(&[0xf]), child: sha256(b"c") },
            Node::Extension { path: nib(&[1, 2, 3, 4]), child: sha256(b"c") },
            Node::Branch { children, value: None },
            Node::Branch { children, value: Some(Bytes::new()) },
            Node::Branch { children, value: Some(Bytes::from_static(b"value")) },
            Node::Branch { children: full, value: Some(Bytes::from(vec![3u8; 100])) },
        ];
        for node in nodes {
            let streamed = node.encode();
            assert_eq!(streamed.as_ref(), reference(&node).as_slice(), "{node:?}");
            assert_eq!(streamed.len(), node.encoded_len());
        }
    }

    #[test]
    fn empty_value_distinct_from_absent() {
        let mut children: [Option<Hash>; 16] = Default::default();
        children[0] = Some(sha256(b"c"));
        let absent = Node::Branch { children, value: None }.encode();
        let empty = Node::Branch { children, value: Some(Bytes::new()) }.encode();
        assert_ne!(absent, empty);
    }

    #[test]
    fn rejects_malformed() {
        assert!(Node::decode(b"not rlp").is_err());
        // A 3-element list is no MPT node.
        let bad =
            RlpItem::list(vec![RlpItem::uint(1), RlpItem::uint(2), RlpItem::uint(3)]).encode();
        assert!(Node::decode(&bad).is_err());
        // Extension with empty path.
        let bad = RlpItem::list(vec![
            RlpItem::bytes(Nibbles::empty().hex_prefix_encode(false)),
            RlpItem::bytes(sha256(b"c").as_bytes().to_vec()),
        ])
        .encode();
        assert!(Node::decode(&bad).is_err());
        // Branch with all slots empty.
        let mut items = vec![RlpItem::bytes(Vec::new()); 16];
        items.push(RlpItem::bytes(Vec::new()));
        assert!(Node::decode(&RlpItem::list(items).encode()).is_err());
    }

    #[test]
    fn zero_copy_decode_matches_copying_decode() {
        let mut children: [Option<Hash>; 16] = Default::default();
        children[2] = Some(sha256(b"c2"));
        children[9] = Some(sha256(b"c9"));
        let nodes = vec![
            Node::Leaf { path: nib(&[1, 2, 3]), value: Bytes::from_static(b"value bytes") },
            Node::Leaf { path: Nibbles::empty(), value: Bytes::new() },
            Node::Extension { path: nib(&[0xa, 0xb]), child: sha256(b"child") },
            Node::Branch { children, value: Some(Bytes::from_static(b"bv")) },
            Node::Branch { children, value: None },
        ];
        for node in nodes {
            let page = node.encode();
            assert_eq!(Node::decode_zc(&page).unwrap(), node);
            assert_eq!(Node::decode(&page).unwrap(), node);
        }
        // Values are slices of the page (no copy).
        let leaf = Node::Leaf { path: nib(&[1]), value: Bytes::from_static(b"shared-payload") };
        let page = leaf.encode();
        let Node::Leaf { value, .. } = Node::decode_zc(&page).unwrap() else { panic!() };
        let base = page.as_ptr() as usize;
        let v = value.as_ptr() as usize;
        assert!(v > base && v < base + page.len(), "value must point into the page");
    }

    #[test]
    fn zero_copy_decode_rejects_what_decode_rejects() {
        let bad_inputs: Vec<Vec<u8>> = vec![
            b"not rlp".to_vec(),
            RlpItem::list(vec![RlpItem::uint(1), RlpItem::uint(2), RlpItem::uint(3)]).encode(),
            {
                // Branch with a non-0x01 value marker.
                let mut items = vec![RlpItem::bytes(sha256(b"c").as_bytes().to_vec())];
                items.extend(std::iter::repeat_n(RlpItem::bytes(Vec::new()), 15));
                items.push(RlpItem::bytes(vec![0x02, 0xff]));
                RlpItem::list(items).encode()
            },
        ];
        for raw in bad_inputs {
            let page = Bytes::from(raw.clone());
            assert!(Node::decode_zc(&page).is_err(), "input {raw:?}");
            assert!(Node::decode(&raw).is_err());
        }
    }

    #[test]
    fn children_decoder() {
        let ext = Node::Extension { path: nib(&[1]), child: sha256(b"c") };
        assert_eq!(Node::children_of_page(&ext.encode()), vec![sha256(b"c")]);
        let leaf = Node::Leaf { path: nib(&[1]), value: Bytes::from_static(b"v") };
        assert!(Node::children_of_page(&leaf.encode()).is_empty());
    }
}
