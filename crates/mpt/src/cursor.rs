//! Lazy in-order range traversal of the trie — the MPT engine behind
//! [`siri_core::SiriIndex::range`].
//!
//! The cursor keeps an explicit DFS stack of `(node, nibble-prefix)` work
//! items and yields entries one at a time, fetching nodes through the
//! trie's decoded-node cache only as the walk reaches them. Subtrees whose
//! nibble prefix falls entirely outside the requested bounds are pruned
//! without being fetched: every key below a prefix `p` extends `p`, so a
//! strict difference between `p` and a bound's nibbles on their common
//! length decides the whole subtree. Traversal order is nibble-
//! lexicographic, which for whole-byte keys is byte-lexicographic — branch
//! values (keys that are strict prefixes of deeper keys) are emitted before
//! the subtree below them.

use std::ops::Bound;

use siri_core::{before_start, past_end, Entry, Result};
use siri_crypto::Hash;
use siri_encoding::Nibbles;

use crate::node::Node;
use crate::{nibbles_to_key, MerklePatriciaTrie};

enum Work {
    /// Visit the node at `hash`; every key below shares the nibble prefix.
    Node(Hash, Vec<u8>),
    /// A branch value ready to yield (already bounds-unchecked).
    Emit(Entry),
}

/// Streaming `[start, end)`-style cursor over one trie version. The cursor
/// owns a cheap handle clone (store + root + shared node cache), so it is
/// `'static` and survives the handle it was created from.
pub struct RangeCursor {
    trie: MerklePatriciaTrie,
    stack: Vec<Work>,
    start: Bound<Vec<u8>>,
    end: Bound<Vec<u8>>,
    /// `start`/`end` keys unpacked to nibbles, for subtree pruning.
    start_nibs: Option<Vec<u8>>,
    end_nibs: Option<Vec<u8>>,
    done: bool,
}

fn bound_nibbles(bound: &Bound<Vec<u8>>) -> Option<Vec<u8>> {
    match bound {
        Bound::Included(k) | Bound::Excluded(k) => Some(Nibbles::from_key(k).as_slice().to_vec()),
        Bound::Unbounded => None,
    }
}

impl RangeCursor {
    pub fn new(trie: MerklePatriciaTrie, start: Bound<Vec<u8>>, end: Bound<Vec<u8>>) -> Self {
        let root = trie.root;
        let mut stack = Vec::new();
        if !root.is_zero() {
            stack.push(Work::Node(root, Vec::new()));
        }
        RangeCursor {
            trie,
            stack,
            start_nibs: bound_nibbles(&start),
            end_nibs: bound_nibbles(&end),
            start,
            end,
            done: false,
        }
    }

    /// Could any key with nibble prefix `p` fall inside the bounds? A key
    /// under `p` differs from a bound key at the first position where `p`
    /// itself differs, so comparing the common-length prefixes decides the
    /// subtree wholesale; ties stay conservative (descend).
    fn may_intersect(&self, p: &[u8]) -> bool {
        if let Some(s) = &self.start_nibs {
            let l = p.len().min(s.len());
            if p[..l] < s[..l] {
                return false; // every key under p precedes start
            }
        }
        if let Some(e) = &self.end_nibs {
            let l = p.len().min(e.len());
            if p[..l] > e[..l] {
                return false; // every key under p follows end
            }
        }
        true
    }
}

impl Iterator for RangeCursor {
    type Item = Result<Entry>;

    fn next(&mut self) -> Option<Self::Item> {
        while !self.done {
            let Some(work) = self.stack.pop() else {
                self.done = true;
                return None;
            };
            let (hash, prefix) = match work {
                Work::Emit(entry) => {
                    if past_end(&self.end, &entry.key) {
                        self.done = true;
                        return None;
                    }
                    if before_start(&self.start, &entry.key) {
                        continue;
                    }
                    return Some(Ok(entry));
                }
                Work::Node(hash, prefix) => (hash, prefix),
            };
            let node = match self.trie.fetch(&hash) {
                Ok(node) => node,
                Err(e) => {
                    self.done = true;
                    return Some(Err(e));
                }
            };
            match &*node {
                Node::Leaf { path, value } => {
                    let mut full = prefix;
                    full.extend_from_slice(path.as_slice());
                    match nibbles_to_key(&full) {
                        Ok(key) => self.stack.push(Work::Emit(Entry { key, value: value.clone() })),
                        Err(e) => {
                            self.done = true;
                            return Some(Err(e));
                        }
                    }
                }
                Node::Extension { path, child } => {
                    let mut full = prefix;
                    full.extend_from_slice(path.as_slice());
                    if self.may_intersect(&full) {
                        self.stack.push(Work::Node(*child, full));
                    }
                }
                Node::Branch { children, value } => {
                    // Children pushed high-nibble-first so nibble 0 pops
                    // first; the branch value (shortest key) pops before
                    // any of them.
                    for (nib, child) in children.iter().enumerate().rev() {
                        if let Some(child) = child {
                            let mut p = prefix.clone();
                            p.push(nib as u8);
                            if self.may_intersect(&p) {
                                self.stack.push(Work::Node(*child, p));
                            }
                        }
                    }
                    if let Some(v) = value {
                        match nibbles_to_key(&prefix) {
                            Ok(key) => self.stack.push(Work::Emit(Entry { key, value: v.clone() })),
                            Err(e) => {
                                self.done = true;
                                return Some(Err(e));
                            }
                        }
                    }
                }
            }
        }
        None
    }
}
