//! MPT proofs: the node path from the root toward the key, as in §2.3
//! ("a proof of data, which contains the nodes on the path to the root").
//!
//! Absence is provable too: the path ends at the node that demonstrates
//! divergence (a leaf with a different tail, a branch with an empty slot,
//! or an extension whose run the key does not share).

use bytes::Bytes;
use siri_core::{IndexError, Proof, ProofVerdict, Result, SiriIndex};
use siri_crypto::{sha256, Hash};
use siri_encoding::Nibbles;

use crate::node::Node;
use crate::MerklePatriciaTrie;

pub(crate) fn prove(trie: &MerklePatriciaTrie, key: &[u8]) -> Result<Proof> {
    let mut pages = Vec::new();
    if trie.root().is_zero() {
        return Ok(Proof::new(pages));
    }
    let nibbles = Nibbles::from_key(key);
    let mut offset = 0usize;
    let mut hash = trie.root();
    loop {
        let page = trie.store().try_get(&hash)?.ok_or(IndexError::MissingPage(hash))?;
        let node = Node::decode(&page)?;
        pages.push(page);
        match node {
            Node::Leaf { .. } => return Ok(Proof::new(pages)),
            Node::Extension { path, child } => {
                if !nibbles.suffix(offset).starts_with(&path) {
                    return Ok(Proof::new(pages)); // divergence proves absence
                }
                offset += path.len();
                hash = child;
            }
            Node::Branch { children, .. } => {
                if offset == nibbles.len() {
                    return Ok(Proof::new(pages));
                }
                match children[nibbles.at(offset) as usize] {
                    Some(child) => {
                        offset += 1;
                        hash = child;
                    }
                    None => return Ok(Proof::new(pages)), // empty slot proves absence
                }
            }
        }
    }
}

pub(crate) fn verify(root: Hash, key: &[u8], proof: &Proof) -> ProofVerdict {
    if root.is_zero() {
        return if proof.is_empty() {
            ProofVerdict::Absent
        } else {
            ProofVerdict::Invalid("non-empty proof for empty trie")
        };
    }
    let pages = proof.pages();
    if pages.is_empty() {
        return ProofVerdict::Invalid("empty proof for non-empty trie");
    }
    let nibbles = Nibbles::from_key(key);
    let mut offset = 0usize;
    let mut expected = root;
    for (i, page) in pages.iter().enumerate() {
        if sha256(page) != expected {
            return ProofVerdict::Invalid("broken hash link");
        }
        let node = match Node::decode(page) {
            Ok(n) => n,
            Err(_) => return ProofVerdict::Invalid("page undecodable"),
        };
        let is_last = i + 1 == pages.len();
        match node {
            Node::Leaf { path, value } => {
                if !is_last {
                    return ProofVerdict::Invalid("pages after a leaf");
                }
                return if nibbles.suffix(offset) == path {
                    ProofVerdict::Present(Bytes::copy_from_slice(&value))
                } else {
                    ProofVerdict::Absent
                };
            }
            Node::Extension { path, child } => {
                if !nibbles.suffix(offset).starts_with(&path) {
                    return if is_last {
                        ProofVerdict::Absent
                    } else {
                        ProofVerdict::Invalid("pages after proven divergence")
                    };
                }
                offset += path.len();
                expected = child;
            }
            Node::Branch { children, value } => {
                if offset == nibbles.len() {
                    if !is_last {
                        return ProofVerdict::Invalid("pages after terminal branch");
                    }
                    return match value {
                        Some(v) => ProofVerdict::Present(v),
                        None => ProofVerdict::Absent,
                    };
                }
                match children[nibbles.at(offset) as usize] {
                    Some(child) => {
                        if is_last {
                            return ProofVerdict::Invalid("proof stops mid-path");
                        }
                        offset += 1;
                        expected = child;
                    }
                    None => {
                        return if is_last {
                            ProofVerdict::Absent
                        } else {
                            ProofVerdict::Invalid("pages after empty slot")
                        };
                    }
                }
            }
        }
    }
    ProofVerdict::Invalid("proof exhausted before a terminal node")
}

#[cfg(test)]
mod tests {
    use super::*;
    use siri_core::{Entry, MemStore};

    fn trie() -> MerklePatriciaTrie {
        let mut t = MerklePatriciaTrie::new(MemStore::new_shared());
        t.batch_insert(
            (0..150)
                .map(|i| {
                    Entry::new(format!("addr{i:03}").into_bytes(), format!("bal{i}").into_bytes())
                })
                .collect(),
        )
        .unwrap();
        t
    }

    #[test]
    fn presence() {
        let t = trie();
        let p = t.prove(b"addr099").unwrap();
        assert_eq!(
            MerklePatriciaTrie::verify_proof(t.root(), b"addr099", &p),
            ProofVerdict::Present(Bytes::from_static(b"bal99"))
        );
    }

    #[test]
    fn absence_variants() {
        let t = trie();
        for key in [&b"addr999"[..], b"zzz", b"addr0991", b"addr09"] {
            let p = t.prove(key).unwrap();
            assert_eq!(
                MerklePatriciaTrie::verify_proof(t.root(), key, &p),
                ProofVerdict::Absent,
                "key {:?}",
                String::from_utf8_lossy(key)
            );
        }
    }

    #[test]
    fn every_page_is_tamper_sensitive() {
        let t = trie();
        let proof = t.prove(b"addr077").unwrap();
        for page in 0..proof.len() {
            let mut p = proof.clone();
            p.tamper(page, 11);
            assert!(
                !MerklePatriciaTrie::verify_proof(t.root(), b"addr077", &p).is_valid(),
                "page {page}"
            );
        }
    }

    #[test]
    fn proof_not_transferable_to_other_keys() {
        let t = trie();
        let p = t.prove(b"addr001").unwrap();
        let verdict = MerklePatriciaTrie::verify_proof(t.root(), b"addr002", &p);
        assert!(verdict.value().is_none(), "must not prove a different key present");
    }

    #[test]
    fn empty_trie_proof() {
        let t = MerklePatriciaTrie::new(MemStore::new_shared());
        let p = t.prove(b"k").unwrap();
        assert_eq!(MerklePatriciaTrie::verify_proof(t.root(), b"k", &p), ProofVerdict::Absent);
    }

    #[test]
    fn truncated_proof_rejected() {
        let t = trie();
        let p = t.prove(b"addr077").unwrap();
        assert!(p.len() >= 2);
        let truncated = Proof::new(p.pages()[..p.len() - 1].to_vec());
        assert!(!MerklePatriciaTrie::verify_proof(t.root(), b"addr077", &truncated).is_valid());
    }
}
