//! MPT proofs: the node path from the root toward the key, as in §2.3
//! ("a proof of data, which contains the nodes on the path to the root").
//!
//! Absence is provable too: the path ends at the node that demonstrates
//! divergence (a leaf with a different tail, a branch with an empty slot,
//! or an extension whose run the key does not share).

use std::ops::Bound;

use bytes::Bytes;
use siri_core::{
    bounds_contain, Entry, IndexError, PagePool, Proof, ProofScheme, ProofVerdict, Result,
    SiriIndex,
};
use siri_crypto::{sha256, Hash};
use siri_encoding::Nibbles;

use crate::node::Node;
use crate::MerklePatriciaTrie;

pub(crate) fn prove(trie: &MerklePatriciaTrie, key: &[u8]) -> Result<Proof> {
    let mut pages = Vec::new();
    if trie.root().is_zero() {
        return Ok(Proof::new(pages));
    }
    let nibbles = Nibbles::from_key(key);
    let mut offset = 0usize;
    let mut hash = trie.root();
    loop {
        let page = trie.store().try_get(&hash)?.ok_or(IndexError::MissingPage(hash))?;
        let node = Node::decode(&page)?;
        pages.push(page);
        match node {
            Node::Leaf { .. } => return Ok(Proof::new(pages)),
            Node::Extension { path, child } => {
                if !nibbles.suffix(offset).starts_with(&path) {
                    return Ok(Proof::new(pages)); // divergence proves absence
                }
                offset += path.len();
                hash = child;
            }
            Node::Branch { children, .. } => {
                if offset == nibbles.len() {
                    return Ok(Proof::new(pages));
                }
                match children[nibbles.at(offset) as usize] {
                    Some(child) => {
                        offset += 1;
                        hash = child;
                    }
                    None => return Ok(Proof::new(pages)), // empty slot proves absence
                }
            }
        }
    }
}

pub(crate) fn verify(root: Hash, key: &[u8], proof: &Proof) -> ProofVerdict {
    if root.is_zero() {
        return if proof.is_empty() {
            ProofVerdict::Absent
        } else {
            ProofVerdict::Invalid("non-empty proof for empty trie")
        };
    }
    let pages = proof.pages();
    if pages.is_empty() {
        return ProofVerdict::Invalid("empty proof for non-empty trie");
    }
    let nibbles = Nibbles::from_key(key);
    let mut offset = 0usize;
    let mut expected = root;
    for (i, page) in pages.iter().enumerate() {
        if sha256(page) != expected {
            return ProofVerdict::Invalid("broken hash link");
        }
        let node = match Node::decode(page) {
            Ok(n) => n,
            Err(_) => return ProofVerdict::Invalid("page undecodable"),
        };
        let is_last = i + 1 == pages.len();
        match node {
            Node::Leaf { path, value } => {
                if !is_last {
                    return ProofVerdict::Invalid("pages after a leaf");
                }
                return if nibbles.suffix(offset) == path {
                    ProofVerdict::Present(Bytes::copy_from_slice(&value))
                } else {
                    ProofVerdict::Absent
                };
            }
            Node::Extension { path, child } => {
                if !nibbles.suffix(offset).starts_with(&path) {
                    return if is_last {
                        ProofVerdict::Absent
                    } else {
                        ProofVerdict::Invalid("pages after proven divergence")
                    };
                }
                offset += path.len();
                expected = child;
            }
            Node::Branch { children, value } => {
                if offset == nibbles.len() {
                    if !is_last {
                        return ProofVerdict::Invalid("pages after terminal branch");
                    }
                    return match value {
                        Some(v) => ProofVerdict::Present(v),
                        None => ProofVerdict::Absent,
                    };
                }
                match children[nibbles.at(offset) as usize] {
                    Some(child) => {
                        if is_last {
                            return ProofVerdict::Invalid("proof stops mid-path");
                        }
                        offset += 1;
                        expected = child;
                    }
                    None => {
                        return if is_last {
                            ProofVerdict::Absent
                        } else {
                            ProofVerdict::Invalid("pages after empty slot")
                        };
                    }
                }
            }
        }
    }
    ProofVerdict::Invalid("proof exhausted before a terminal node")
}

/// The shared range-pruning predicate: does the subtree at nibble-path
/// `prefix` overlap `[start, end)`? Both the prover (deciding which pages
/// to ship) and the verifier (deciding which children to demand) call
/// this, so a boundary subtree can never be included by one side and
/// skipped by the other. Nibble order equals byte order, so slicing both
/// the prefix and the bound key to their common length decides
/// entirely-below / entirely-above; ties are conservatively included —
/// over-inclusion costs proof bytes, never soundness.
pub(crate) fn subtree_overlaps(prefix: &Nibbles, start: Bound<&[u8]>, end: Bound<&[u8]>) -> bool {
    let p = prefix.as_slice();
    if let Bound::Included(a) | Bound::Excluded(a) = start {
        let na = Nibbles::from_key(a);
        let m = p.len().min(na.len());
        if p[..m] < na.as_slice()[..m] {
            return false; // diverges below the start key: every key is < a
        }
    }
    if let Bound::Included(b) | Bound::Excluded(b) = end {
        let nb = Nibbles::from_key(b);
        let m = p.len().min(nb.len());
        if p[..m] > nb.as_slice()[..m] {
            return false; // diverges above the end key: every key is > b
        }
        if m == nb.len() && p.len() > m && p[..m] == nb.as_slice()[..m] {
            // The prefix strictly extends the end key: every key below is
            // a proper extension of `b`, hence sorts after it.
            return false;
        }
    }
    true
}

/// One key's root→terminal re-walk through a shared page pool. Terminates
/// without a depth counter: extensions have non-empty paths (the decoder
/// enforces it) and branches consume a nibble, so the offset strictly
/// grows toward the key's length.
pub(crate) fn verify_key_pages(root: Hash, key: &[u8], pool: &mut PagePool) -> ProofVerdict {
    if root.is_zero() {
        return ProofVerdict::Absent;
    }
    let nibbles = Nibbles::from_key(key);
    let mut offset = 0usize;
    let mut expected = root;
    loop {
        let Some(page) = pool.get(&expected) else {
            return ProofVerdict::Invalid("missing page in proof");
        };
        match Node::decode(&page) {
            Ok(Node::Leaf { path, value }) => {
                return if nibbles.suffix(offset) == path {
                    ProofVerdict::Present(value)
                } else {
                    ProofVerdict::Absent
                };
            }
            Ok(Node::Extension { path, child }) => {
                if !nibbles.suffix(offset).starts_with(&path) {
                    return ProofVerdict::Absent;
                }
                offset += path.len();
                expected = child;
            }
            Ok(Node::Branch { children, value }) => {
                if offset == nibbles.len() {
                    return match value {
                        Some(v) => ProofVerdict::Present(v),
                        None => ProofVerdict::Absent,
                    };
                }
                match children[nibbles.at(offset) as usize] {
                    Some(child) => {
                        offset += 1;
                        expected = child;
                    }
                    None => return ProofVerdict::Absent,
                }
            }
            Err(_) => return ProofVerdict::Invalid("page undecodable"),
        }
    }
}

/// Re-walk every subtree overlapping the bounds through the pool,
/// appending in-bounds entries in key order (a branch's own value sorts
/// before all of its children's keys; children walk in nibble order).
pub(crate) fn verify_range_pages(
    root: Hash,
    start: Bound<&[u8]>,
    end: Bound<&[u8]>,
    pool: &mut PagePool,
    out: &mut Vec<Entry>,
) -> core::result::Result<(), &'static str> {
    if root.is_zero() {
        return Ok(());
    }
    walk_range(root, Nibbles::empty(), start, end, pool, out)
}

fn walk_range(
    hash: Hash,
    prefix: Nibbles,
    start: Bound<&[u8]>,
    end: Bound<&[u8]>,
    pool: &mut PagePool,
    out: &mut Vec<Entry>,
) -> core::result::Result<(), &'static str> {
    let Some(page) = pool.get(&hash) else {
        return Err("missing page in proof");
    };
    match Node::decode(&page).map_err(|_| "page undecodable")? {
        Node::Leaf { path, value } => {
            let key = prefix.concat(&path).to_key().ok_or("odd-length key in leaf")?;
            if bounds_contain(start, end, &key) {
                out.push(Entry::new(key, value));
            }
            Ok(())
        }
        Node::Extension { path, child } => {
            let cp = prefix.concat(&path);
            if subtree_overlaps(&cp, start, end) {
                walk_range(child, cp, start, end, pool, out)?;
            }
            Ok(())
        }
        Node::Branch { children, value } => {
            if let Some(v) = value {
                let key = prefix.to_key().ok_or("branch value at odd nibble position")?;
                if bounds_contain(start, end, &key) {
                    out.push(Entry::new(key, v));
                }
            }
            for (i, child) in children.iter().enumerate() {
                if let Some(child) = child {
                    let cp = prefix.join(i as u8, &Nibbles::empty());
                    if subtree_overlaps(&cp, start, end) {
                        walk_range(*child, cp, start, end, pool, out)?;
                    }
                }
            }
            Ok(())
        }
    }
}

/// Prover-side range walk: same traversal as [`walk_range`] reading from
/// the store, pushing each page once by content hash. Descent is never
/// skipped for already-pushed pages — an identical page can recur at a
/// different nibble prefix where the pruning decisions differ.
pub(crate) fn collect_range_pages(
    trie: &MerklePatriciaTrie,
    hash: Hash,
    prefix: Nibbles,
    start: Bound<&[u8]>,
    end: Bound<&[u8]>,
    seen: &mut std::collections::HashSet<Hash>,
    pages: &mut Vec<Bytes>,
) -> Result<()> {
    let page = trie.store().try_get(&hash)?.ok_or(IndexError::MissingPage(hash))?;
    let node = Node::decode(&page)?;
    if seen.insert(hash) {
        pages.push(page);
    }
    match node {
        Node::Leaf { .. } => Ok(()),
        Node::Extension { path, child } => {
            let cp = prefix.concat(&path);
            if subtree_overlaps(&cp, start, end) {
                collect_range_pages(trie, child, cp, start, end, seen, pages)?;
            }
            Ok(())
        }
        Node::Branch { children, .. } => {
            for (i, child) in children.iter().enumerate() {
                if let Some(child) = child {
                    let cp = prefix.join(i as u8, &Nibbles::empty());
                    if subtree_overlaps(&cp, start, end) {
                        collect_range_pages(trie, *child, cp, start, end, seen, pages)?;
                    }
                }
            }
            Ok(())
        }
    }
}

/// MPT's [`ProofScheme`].
pub struct MptProofScheme;

impl ProofScheme for MptProofScheme {
    fn structure(&self) -> &'static str {
        "mpt"
    }

    fn verify_membership(&self, root: Hash, key: &[u8], proof: &Proof) -> ProofVerdict {
        verify(root, key, proof)
    }

    fn verify_key_pages(&self, root: Hash, key: &[u8], pool: &mut PagePool) -> ProofVerdict {
        verify_key_pages(root, key, pool)
    }

    fn verify_range_pages(
        &self,
        root: Hash,
        start: Bound<&[u8]>,
        end: Bound<&[u8]>,
        pool: &mut PagePool,
        out: &mut Vec<Entry>,
    ) -> core::result::Result<(), &'static str> {
        verify_range_pages(root, start, end, pool, out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use siri_core::{Entry, MemStore};

    fn trie() -> MerklePatriciaTrie {
        let mut t = MerklePatriciaTrie::new(MemStore::new_shared());
        t.batch_insert(
            (0..150)
                .map(|i| {
                    Entry::new(format!("addr{i:03}").into_bytes(), format!("bal{i}").into_bytes())
                })
                .collect(),
        )
        .unwrap();
        t
    }

    #[test]
    fn presence() {
        let t = trie();
        let p = t.prove(b"addr099").unwrap();
        assert_eq!(
            MerklePatriciaTrie::verify_proof(t.root(), b"addr099", &p),
            ProofVerdict::Present(Bytes::from_static(b"bal99"))
        );
    }

    #[test]
    fn absence_variants() {
        let t = trie();
        for key in [&b"addr999"[..], b"zzz", b"addr0991", b"addr09"] {
            let p = t.prove(key).unwrap();
            assert_eq!(
                MerklePatriciaTrie::verify_proof(t.root(), key, &p),
                ProofVerdict::Absent,
                "key {:?}",
                String::from_utf8_lossy(key)
            );
        }
    }

    #[test]
    fn every_page_is_tamper_sensitive() {
        let t = trie();
        let proof = t.prove(b"addr077").unwrap();
        for page in 0..proof.len() {
            let mut p = proof.clone();
            p.tamper(page, 11);
            assert!(
                !MerklePatriciaTrie::verify_proof(t.root(), b"addr077", &p).is_valid(),
                "page {page}"
            );
        }
    }

    #[test]
    fn proof_not_transferable_to_other_keys() {
        let t = trie();
        let p = t.prove(b"addr001").unwrap();
        let verdict = MerklePatriciaTrie::verify_proof(t.root(), b"addr002", &p);
        assert!(verdict.value().is_none(), "must not prove a different key present");
    }

    #[test]
    fn empty_trie_proof() {
        let t = MerklePatriciaTrie::new(MemStore::new_shared());
        let p = t.prove(b"k").unwrap();
        assert_eq!(MerklePatriciaTrie::verify_proof(t.root(), b"k", &p), ProofVerdict::Absent);
    }

    #[test]
    fn truncated_proof_rejected() {
        let t = trie();
        let p = t.prove(b"addr077").unwrap();
        assert!(p.len() >= 2);
        let truncated = Proof::new(p.pages()[..p.len() - 1].to_vec());
        assert!(!MerklePatriciaTrie::verify_proof(t.root(), b"addr077", &truncated).is_valid());
    }
}
