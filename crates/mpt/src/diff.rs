//! Structure-aware MPT diff.
//!
//! Because MPT is Structurally Invariant, equal subtree digests imply equal
//! key/value content under the same prefix, so the diff walks the two
//! tries in lockstep and prunes every shared subtree — the O(δ·L) bound of
//! §4.1.3. Extension nodes make the two sides structurally misaligned
//! (a one-nibble branch edge on one side can face a multi-nibble extension
//! on the other), so the walk is phrased over *cursors* that consume one
//! nibble at a time, materializing nodes only when the digests differ.

use bytes::Bytes;
use siri_core::{DiffEntry, Result, SiriIndex};
use siri_crypto::Hash;
use siri_encoding::Nibbles;

use crate::node::Node;
use crate::MerklePatriciaTrie;

/// A position in a (possibly virtual) subtree: `path` nibbles still to be
/// consumed before reaching `target`.
#[derive(Clone, PartialEq, Eq)]
enum Cursor {
    /// A stored subtree.
    Node { path: Nibbles, hash: Hash },
    /// The tail of a leaf already being traversed.
    Value { path: Nibbles, value: Bytes },
}

type Slots = Box<[Option<Cursor>; 16]>;

fn empty_slots() -> Slots {
    Box::default()
}

/// One step of the lockstep walk: the value terminating exactly at the
/// current prefix, plus per-nibble child cursors.
fn expand(trie: &MerklePatriciaTrie, cursor: Cursor) -> Result<(Option<Bytes>, Slots)> {
    let mut slots = empty_slots();
    match cursor {
        Cursor::Value { path, value } => {
            if path.is_empty() {
                return Ok((Some(value), slots));
            }
            let head = path.at(0) as usize;
            slots[head] = Some(Cursor::Value { path: path.suffix(1), value });
            Ok((None, slots))
        }
        Cursor::Node { path, hash } if !path.is_empty() => {
            let head = path.at(0) as usize;
            slots[head] = Some(Cursor::Node { path: path.suffix(1), hash });
            Ok((None, slots))
        }
        Cursor::Node { hash, .. } => {
            // Through the trie's node cache: diffing adjacent versions
            // re-visits the shared spine, which the cache serves for free.
            match &*trie.fetch(&hash)? {
                Node::Leaf { path, value } => {
                    if path.is_empty() {
                        return Ok((Some(value.clone()), slots));
                    }
                    let head = path.at(0) as usize;
                    slots[head] =
                        Some(Cursor::Value { path: path.suffix(1), value: value.clone() });
                    Ok((None, slots))
                }
                Node::Extension { path, child } => {
                    let head = path.at(0) as usize;
                    slots[head] = Some(Cursor::Node { path: path.suffix(1), hash: *child });
                    Ok((None, slots))
                }
                Node::Branch { children, value } => {
                    for (i, c) in children.iter().enumerate() {
                        slots[i] = c.map(|h| Cursor::Node { path: Nibbles::empty(), hash: h });
                    }
                    Ok((value.clone(), slots))
                }
            }
        }
    }
}

fn diff_rec(
    a_trie: &MerklePatriciaTrie,
    b_trie: &MerklePatriciaTrie,
    a: Option<Cursor>,
    b: Option<Cursor>,
    prefix: &mut Vec<u8>,
    out: &mut Vec<DiffEntry>,
) -> Result<()> {
    if a == b {
        // Equal digests (or equal leaf tails) at the same position: the
        // whole subtree is shared — prune. This is where structural
        // invariance pays off.
        return Ok(());
    }
    let (va, slots_a) = match a {
        Some(c) => expand(a_trie, c)?,
        None => (None, empty_slots()),
    };
    let (vb, slots_b) = match b {
        Some(c) => expand(b_trie, c)?,
        None => (None, empty_slots()),
    };
    if va != vb {
        out.push(DiffEntry { key: crate::nibbles_to_key_for_diff(prefix)?, left: va, right: vb });
    }
    for (i, (ca, cb)) in slots_a.into_iter().zip(*slots_b).enumerate() {
        if ca.is_none() && cb.is_none() {
            continue;
        }
        prefix.push(i as u8);
        diff_rec(a_trie, b_trie, ca, cb, prefix, out)?;
        prefix.pop();
    }
    Ok(())
}

pub(crate) fn diff(a: &MerklePatriciaTrie, b: &MerklePatriciaTrie) -> Result<Vec<DiffEntry>> {
    let cursor = |t: &MerklePatriciaTrie| {
        (!t.root().is_zero()).then(|| Cursor::Node { path: Nibbles::empty(), hash: t.root() })
    };
    let mut out = Vec::new();
    let mut prefix = Vec::new();
    diff_rec(a, b, cursor(a), cursor(b), &mut prefix, &mut out)?;
    out.sort_by(|x, y| x.key.cmp(&y.key));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MerklePatriciaTrie;
    use siri_core::{DiffSide, Entry, MemStore, SiriIndex};

    fn populated(n: usize) -> MerklePatriciaTrie {
        let mut t = MerklePatriciaTrie::new(MemStore::new_shared());
        t.batch_insert(
            (0..n)
                .map(|i| {
                    Entry::new(format!("key{i:04}").into_bytes(), format!("v{i}").into_bytes())
                })
                .collect(),
        )
        .unwrap();
        t
    }

    #[test]
    fn identical_tries_diff_empty() {
        let a = populated(100);
        let b = a.clone();
        assert!(diff(&a, &b).unwrap().is_empty());
    }

    #[test]
    fn finds_changes_additions_removals() {
        let a = populated(100);
        let mut b = a.clone();
        b.insert(b"key0042", bytes::Bytes::from_static(b"changed")).unwrap();
        b.insert(b"brand-new", bytes::Bytes::from_static(b"x")).unwrap();
        let d = a.diff(&b).unwrap();
        assert_eq!(d.len(), 2);
        assert_eq!(d[0].key.as_ref(), b"brand-new");
        assert_eq!(d[0].side(), DiffSide::RightOnly);
        assert_eq!(d[1].key.as_ref(), b"key0042");
        assert_eq!(d[1].side(), DiffSide::Changed);
        // Reverse direction flips sides.
        let d = b.diff(&a).unwrap();
        assert_eq!(d[0].side(), DiffSide::LeftOnly);
    }

    #[test]
    fn diff_against_empty_lists_everything() {
        let a = populated(25);
        let empty = MerklePatriciaTrie::new(MemStore::new_shared());
        let d = a.diff(&empty).unwrap();
        assert_eq!(d.len(), 25);
        assert!(d.iter().all(|x| x.side() == DiffSide::LeftOnly));
    }

    #[test]
    fn matches_scan_reference_on_misaligned_structures() {
        // Different key shapes on each side: extensions vs branches differ
        // structurally; the cursor walk must still align by prefix.
        let store = MemStore::new_shared();
        let mut a = MerklePatriciaTrie::new(store.clone());
        a.batch_insert(vec![
            Entry::new(b"a".to_vec(), b"1".to_vec()),
            Entry::new(b"ab".to_vec(), b"2".to_vec()),
            Entry::new(b"abc".to_vec(), b"3".to_vec()),
            Entry::new(b"xyz".to_vec(), b"4".to_vec()),
        ])
        .unwrap();
        let mut b = MerklePatriciaTrie::new(store);
        b.batch_insert(vec![
            Entry::new(b"ab".to_vec(), b"2".to_vec()),
            Entry::new(b"abd".to_vec(), b"5".to_vec()),
            Entry::new(b"x".to_vec(), b"6".to_vec()),
        ])
        .unwrap();
        let structural = a.diff(&b).unwrap();
        let reference = siri_core::diff_by_scan(&a, &b).unwrap();
        assert_eq!(structural, reference);
    }
}
