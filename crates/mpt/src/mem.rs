//! In-memory overlay used for batched copy-on-write commits.
//!
//! A batch is applied to a tree of [`MemNode`]s: stored pages are pulled in
//! lazily (one fetch per touched node) and stay as [`MemNode::Stored`]
//! stubs when untouched, so committing writes exactly one new page per
//! modified node — the copy-on-write cost the paper's update bound counts
//! (§4.1.2).
//!
//! Deletion ([`MemNode::remove`]) maintains the trie's canonical form so
//! Structural Invariance survives: a branch left with a lone child (or only
//! its value) collapses, and the freed nibble run re-compacts into the
//! surrounding extension/leaf paths — delete-then-reinsert restores the
//! identical root digest.

use bytes::Bytes;
use siri_core::Result;
use siri_crypto::Hash;
use siri_encoding::{Nibbles, Scratch};
use siri_store::{NodeStore, SharedStore};

use crate::node::Node;
use crate::MerklePatriciaTrie;

/// A node in the mutable overlay.
pub(crate) enum MemNode {
    /// An untouched subtree, by page digest.
    Stored(Hash),
    Branch {
        children: Box<[Option<MemNode>; 16]>,
        value: Option<Bytes>,
    },
    Extension {
        path: Nibbles,
        child: Box<MemNode>,
    },
    Leaf {
        path: Nibbles,
        value: Bytes,
    },
}

fn empty_children() -> Box<[Option<MemNode>; 16]> {
    Box::default()
}

impl MemNode {
    /// Materialize a stored page as a shallow overlay node (children remain
    /// `Stored` stubs). Loads go through the trie's node cache, so batched
    /// updates re-walking a hot spine skip the store and the decode.
    fn load(trie: &MerklePatriciaTrie, hash: Hash) -> Result<MemNode> {
        Ok(match &*trie.fetch(&hash)? {
            Node::Branch { children, value } => {
                let mut slots = empty_children();
                for (i, c) in children.iter().enumerate() {
                    slots[i] = c.map(MemNode::Stored);
                }
                MemNode::Branch { children: slots, value: value.clone() }
            }
            Node::Extension { path, child } => {
                MemNode::Extension { path: path.clone(), child: Box::new(MemNode::Stored(*child)) }
            }
            Node::Leaf { path, value } => {
                MemNode::Leaf { path: path.clone(), value: value.clone() }
            }
        })
    }

    /// Insert `(suffix → value)` into the subtree, consuming and returning
    /// the rebuilt overlay. Standard MPT insertion (§3.4.1's description of
    /// branch creation at diverging bytes).
    pub(crate) fn insert(
        this: Option<MemNode>,
        trie: &MerklePatriciaTrie,
        suffix: Nibbles,
        value: Bytes,
    ) -> Result<MemNode> {
        let node = match this {
            None => return Ok(MemNode::Leaf { path: suffix, value }),
            Some(MemNode::Stored(h)) => Self::load(trie, h)?,
            Some(other) => other,
        };
        match node {
            MemNode::Leaf { path, value: old_value } => {
                let common = suffix.common_prefix_len(&path);
                if common == path.len() && common == suffix.len() {
                    return Ok(MemNode::Leaf { path, value });
                }
                let mut children = empty_children();
                let mut branch_value = None;
                // Park the existing leaf below the divergence…
                if common == path.len() {
                    branch_value = Some(old_value);
                } else {
                    children[path.at(common) as usize] =
                        Some(MemNode::Leaf { path: path.suffix(common + 1), value: old_value });
                }
                // …and the new entry beside it.
                if common == suffix.len() {
                    branch_value = Some(value);
                } else {
                    children[suffix.at(common) as usize] =
                        Some(MemNode::Leaf { path: suffix.suffix(common + 1), value });
                }
                let branch = MemNode::Branch { children, value: branch_value };
                Ok(wrap_extension(path.slice(0, common), branch))
            }
            MemNode::Extension { path, child } => {
                let common = suffix.common_prefix_len(&path);
                if common == path.len() {
                    let new_child = Self::insert(Some(*child), trie, suffix.suffix(common), value)?;
                    return Ok(MemNode::Extension { path, child: Box::new(new_child) });
                }
                // Diverged inside the compacted run: split it with a branch
                // (the "new branch node at diverging byte" of §3.4.1).
                let mut children = empty_children();
                let mut branch_value = None;
                let below = if path.len() == common + 1 {
                    *child
                } else {
                    MemNode::Extension { path: path.suffix(common + 1), child }
                };
                children[path.at(common) as usize] = Some(below);
                if common == suffix.len() {
                    branch_value = Some(value);
                } else {
                    children[suffix.at(common) as usize] =
                        Some(MemNode::Leaf { path: suffix.suffix(common + 1), value });
                }
                let branch = MemNode::Branch { children, value: branch_value };
                Ok(wrap_extension(path.slice(0, common), branch))
            }
            MemNode::Branch { mut children, value: branch_value } => {
                if suffix.is_empty() {
                    return Ok(MemNode::Branch { children, value: Some(value) });
                }
                let slot = suffix.at(0) as usize;
                let taken = children[slot].take();
                children[slot] = Some(Self::insert(taken, trie, suffix.suffix(1), value)?);
                Ok(MemNode::Branch { children, value: branch_value })
            }
            MemNode::Stored(_) => unreachable!("materialized above"),
        }
    }

    /// Remove `suffix` from the subtree, consuming the overlay and
    /// returning its replacement (`None` when the subtree vanishes).
    /// Deleting an absent key returns the subtree unchanged. The returned
    /// overlay is re-canonicalized: no single-child branches, no
    /// extension-of-extension chains.
    pub(crate) fn remove(
        this: Option<MemNode>,
        trie: &MerklePatriciaTrie,
        suffix: Nibbles,
    ) -> Result<Option<MemNode>> {
        let node = match this {
            None => return Ok(None),
            Some(MemNode::Stored(h)) => Self::load(trie, h)?,
            Some(other) => other,
        };
        match node {
            MemNode::Leaf { path, value } => {
                if path == suffix {
                    Ok(None)
                } else {
                    Ok(Some(MemNode::Leaf { path, value }))
                }
            }
            MemNode::Extension { path, child } => {
                if !suffix.starts_with(&path) {
                    return Ok(Some(MemNode::Extension { path, child }));
                }
                let rest = suffix.suffix(path.len());
                match Self::remove(Some(*child), trie, rest)? {
                    None => Ok(None),
                    Some(new_child) => Ok(Some(recompact_extension(path, new_child))),
                }
            }
            MemNode::Branch { mut children, value } => {
                if suffix.is_empty() {
                    // The key terminates here: drop the branch value.
                    return collapse_branch(trie, children, None);
                }
                let slot = suffix.at(0) as usize;
                let taken = children[slot].take();
                children[slot] = Self::remove(taken, trie, suffix.suffix(1))?;
                collapse_branch(trie, children, value)
            }
            MemNode::Stored(_) => unreachable!("materialized above"),
        }
    }

    /// Persist the overlay, returning the subtree digest. Untouched
    /// `Stored` stubs cost nothing. A store fault propagates without
    /// touching the handle's root — the half-written subtree is garbage a
    /// future sweep reclaims, never a visible version.
    ///
    /// Dirty branch children are persisted as one sibling batch through
    /// [`siri_store::NodeStore::try_put_many`], so the store digests them
    /// with the multi-lane hasher; the node itself is encoded into the
    /// commit's reusable `scratch` and put as a borrowed slice (a
    /// deduplicated page then allocates nothing).
    pub(crate) fn commit(self, store: &SharedStore, scratch: &mut Scratch) -> Result<Hash> {
        match self {
            MemNode::Stored(h) => Ok(h),
            dirty => {
                let node = dirty.into_committed_node(store, scratch)?;
                let w = scratch.start();
                w.reserve_total(node.encoded_len());
                node.encode_into(w.buf_mut());
                Ok(store.try_put_raw(scratch.bytes())?)
            }
        }
    }

    /// Commit every descendant, turning this materialized overlay node into
    /// a codec [`Node`] whose child references are digests. Branch children
    /// that are dirty encode into owned pages and land in the store as one
    /// `try_put_many` batch; an extension's lone child commits on its own.
    fn into_committed_node(self, store: &SharedStore, scratch: &mut Scratch) -> Result<Node> {
        Ok(match self {
            MemNode::Stored(_) => unreachable!("commit resolves stored stubs"),
            MemNode::Leaf { path, value } => Node::Leaf { path, value },
            MemNode::Extension { path, child } => {
                let child = child.commit(store, scratch)?;
                Node::Extension { path, child }
            }
            MemNode::Branch { children, value } => {
                let mut slots: [Option<Hash>; 16] = Default::default();
                let mut batch: Vec<Bytes> = Vec::new();
                let mut batch_slots: Vec<usize> = Vec::new();
                for (i, c) in children.into_iter().enumerate() {
                    match c {
                        None => {}
                        Some(MemNode::Stored(h)) => slots[i] = Some(h),
                        Some(dirty) => {
                            // Batch members must coexist, so each gets an
                            // owned page (exact-sized, single allocation).
                            let node = dirty.into_committed_node(store, scratch)?;
                            batch.push(node.encode());
                            batch_slots.push(i);
                        }
                    }
                }
                if !batch.is_empty() {
                    let hashes = store.try_put_many(&batch)?;
                    for (slot, h) in batch_slots.into_iter().zip(hashes) {
                        slots[slot] = Some(h);
                    }
                }
                Node::Branch { children: slots, value }
            }
        })
    }
}

/// Wrap `node` in an extension for `path`, unless the path is empty.
/// Extensions with empty paths are illegal (and pointless).
fn wrap_extension(path: Nibbles, node: MemNode) -> MemNode {
    if path.is_empty() {
        node
    } else {
        MemNode::Extension { path, child: Box::new(node) }
    }
}

/// Re-attach `path` above a child that deletion may have collapsed: merge
/// into the child's own path when the child is a leaf or extension, keep a
/// plain extension above a branch. The child must be materialized (remove
/// always returns materialized overlays).
fn recompact_extension(path: Nibbles, child: MemNode) -> MemNode {
    match child {
        MemNode::Leaf { path: rest, value } => MemNode::Leaf { path: path.concat(&rest), value },
        MemNode::Extension { path: rest, child } => {
            MemNode::Extension { path: path.concat(&rest), child }
        }
        branch @ MemNode::Branch { .. } => wrap_extension(path, branch),
        MemNode::Stored(_) => unreachable!("remove returns materialized overlays"),
    }
}

/// Restore a branch to canonical form after one of its slots (or its
/// value) was removed:
///
/// * value + no children → the branch *is* the record: a leaf with an
///   empty path;
/// * no value + no children → the subtree vanished;
/// * no value + exactly one child → the branch is a useless fork: collapse
///   into the child, prepending the child's nibble (path re-compaction);
/// * otherwise the branch genuinely still forks — keep it.
fn collapse_branch(
    trie: &MerklePatriciaTrie,
    mut children: Box<[Option<MemNode>; 16]>,
    value: Option<Bytes>,
) -> Result<Option<MemNode>> {
    let occupied: Vec<usize> =
        children.iter().enumerate().filter(|(_, c)| c.is_some()).map(|(i, _)| i).collect();
    if let Some(v) = value {
        return Ok(Some(if occupied.is_empty() {
            MemNode::Leaf { path: Nibbles::empty(), value: v }
        } else {
            MemNode::Branch { children, value: Some(v) }
        }));
    }
    match occupied.as_slice() {
        [] => Ok(None),
        [nib] => {
            let lone = children[*nib].take().expect("slot is occupied");
            // The lone survivor may be an untouched stub: materialize it so
            // its path can absorb the branch's nibble.
            let lone = match lone {
                MemNode::Stored(h) => MemNode::load(trie, h)?,
                other => other,
            };
            let prefix = Nibbles::from_raw(vec![*nib as u8]);
            Ok(Some(recompact_extension(prefix, lone)))
        }
        _ => Ok(Some(MemNode::Branch { children, value: None })),
    }
}
