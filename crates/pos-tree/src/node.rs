//! POS-Tree page codec.
//!
//! * **Leaf** (level 0): a run of sorted entries — one pattern-aware
//!   partition of the bottom data layer (Figure 5).
//! * **Internal**: a run of `(split key, child digest)` pairs, where the
//!   split key is the maximum key of the child's subtree, "a sequence of
//!   split keys and cryptographic hashes of the nodes in the lower layer".
//!
//! Every page carries the tree level (so equal content at different heights
//! cannot collide) and a `salt` that is 0 in normal operation. The salt
//! exists solely for the §5.5.2 ablation: bumping it per version makes
//! every page byte-unique, which is exactly "forcibly copying all nodes in
//! the tree" under content addressing.

use bytes::Bytes;
use siri_core::{entry_codec, Entry, IndexError, Result};
use siri_crypto::Hash;
use siri_encoding::{ByteReader, ByteWriter, CodecError};

const TAG_LEAF: u8 = 0x21;
const TAG_INTERNAL: u8 = 0x22;

/// Reference to a child node: the maximum key in its subtree + its digest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Piece {
    pub max_key: Bytes,
    pub hash: Hash,
}

/// Decoded POS-Tree page.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Node {
    Leaf { salt: u64, entries: Vec<Entry> },
    Internal { salt: u64, level: u32, children: Vec<Piece> },
}

impl Node {
    pub fn encode(&self) -> Bytes {
        let mut w = ByteWriter::with_capacity(self.encoded_len());
        self.encode_into(&mut w);
        debug_assert_eq!(w.len(), self.encoded_len());
        Bytes::from(w.into_vec())
    }

    /// Exact byte length of [`Node::encode`]'s output — pages are sized to
    /// their final length in one allocation.
    pub fn encoded_len(&self) -> usize {
        use siri_encoding::varint;
        match self {
            Node::Leaf { salt, entries } => {
                1 + varint::len(*salt) + entry_codec::entries_encoded_len(entries)
            }
            Node::Internal { salt, level, children } => {
                1 + varint::len(*salt)
                    + varint::len(*level as u64)
                    + varint::len(children.len() as u64)
                    + children
                        .iter()
                        .map(|c| varint::len(c.max_key.len() as u64) + c.max_key.len() + Hash::LEN)
                        .sum::<usize>()
            }
        }
    }

    /// Serialize into an existing writer — entries stream straight into the
    /// page buffer instead of transiting a temporary `Vec`.
    pub fn encode_into(&self, w: &mut ByteWriter) {
        match self {
            Node::Leaf { salt, entries } => {
                w.put_u8(TAG_LEAF);
                w.put_varint(*salt);
                entry_codec::encode_entries_into(w, entries);
            }
            Node::Internal { salt, level, children } => {
                w.put_u8(TAG_INTERNAL);
                w.put_varint(*salt);
                w.put_varint(*level as u64);
                w.put_varint(children.len() as u64);
                for c in children {
                    w.put_bytes(&c.max_key);
                    w.put_raw(c.hash.as_bytes());
                }
            }
        }
    }

    /// Copying decode (tests, diagnostics, store walks).
    pub fn decode(page: &[u8]) -> Result<Node> {
        Self::decode_zc(&Bytes::copy_from_slice(page))
    }

    /// Zero-copy decode: keys and values are refcounted slices of the page
    /// — the hot read path.
    pub fn decode_zc(page: &Bytes) -> Result<Node> {
        let mut r = ByteReader::new(page);
        match r.get_u8()? {
            TAG_LEAF => {
                let salt = r.get_varint()?;
                let entries = entry_codec::decode_entries_zc(page, r.offset())?;
                if entries.windows(2).any(|w| w[0].key >= w[1].key) {
                    return Err(IndexError::CorruptStructure("unsorted leaf"));
                }
                Ok(Node::Leaf { salt, entries })
            }
            TAG_INTERNAL => {
                let salt = r.get_varint()?;
                let level = r.get_varint()? as u32;
                let count = r.get_varint()?;
                if count == 0 || count > page.len() as u64 {
                    return Err(CodecError::BadLength { what: "child count" }.into());
                }
                let mut children = Vec::with_capacity(count as usize);
                for _ in 0..count {
                    let klen = r.get_varint()? as usize;
                    let koff = r.offset();
                    r.get_raw(klen)?;
                    let max_key = page.slice(koff..koff + klen);
                    let hash = Hash::from_slice(r.get_raw(Hash::LEN)?)
                        .ok_or(IndexError::CorruptStructure("bad child digest length"))?;
                    children.push(Piece { max_key, hash });
                }
                r.finish()?;
                if children.windows(2).any(|w| w[0].max_key >= w[1].max_key) {
                    return Err(IndexError::CorruptStructure("unsorted internal node"));
                }
                Ok(Node::Internal { salt, level, children })
            }
            other => Err(CodecError::BadTag(other).into()),
        }
    }

    /// Child digests referenced by a page — the store-walk decoder.
    pub fn children_of_page(page: &[u8]) -> Vec<Hash> {
        match Node::decode(page) {
            Ok(Node::Internal { children, .. }) => children.into_iter().map(|c| c.hash).collect(),
            _ => Vec::new(),
        }
    }

    pub fn max_key(&self) -> Option<Bytes> {
        match self {
            Node::Leaf { entries, .. } => entries.last().map(|e| e.key.clone()),
            Node::Internal { children, .. } => children.last().map(|c| c.max_key.clone()),
        }
    }
}

/// Route a key to a child slot: first child with `max_key >= key`, clamping
/// beyond-max keys to the rightmost child.
pub fn route(children: &[Piece], key: &[u8]) -> usize {
    match children.binary_search_by(|c| c.max_key.as_ref().cmp(key)) {
        Ok(i) => i,
        Err(i) => i.min(children.len() - 1),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use siri_crypto::sha256;

    fn e(k: &str, v: &str) -> Entry {
        Entry::new(k.as_bytes().to_vec(), v.as_bytes().to_vec())
    }

    fn p(k: &str, s: &str) -> Piece {
        Piece { max_key: Bytes::copy_from_slice(k.as_bytes()), hash: sha256(s.as_bytes()) }
    }

    #[test]
    fn round_trips() {
        let leaf = Node::Leaf { salt: 0, entries: vec![e("a", "1"), e("b", "2")] };
        assert_eq!(Node::decode(&leaf.encode()).unwrap(), leaf);
        let internal =
            Node::Internal { salt: 3, level: 2, children: vec![p("m", "x"), p("z", "y")] };
        assert_eq!(Node::decode(&internal.encode()).unwrap(), internal);
    }

    #[test]
    fn salt_changes_bytes() {
        let a = Node::Leaf { salt: 0, entries: vec![e("a", "1")] }.encode();
        let b = Node::Leaf { salt: 1, entries: vec![e("a", "1")] }.encode();
        assert_ne!(a, b, "salted pages must not deduplicate");
    }

    #[test]
    fn level_distinguishes_pages() {
        let a = Node::Internal { salt: 0, level: 1, children: vec![p("k", "c")] }.encode();
        let b = Node::Internal { salt: 0, level: 2, children: vec![p("k", "c")] }.encode();
        assert_ne!(a, b);
    }

    #[test]
    fn rejects_corruption() {
        assert!(Node::decode(&[0x99]).is_err());
        let unsorted = Node::Leaf { salt: 0, entries: vec![e("b", "1"), e("a", "2")] };
        assert!(Node::decode(&unsorted.encode()).is_err());
        let internal = Node::Internal { salt: 0, level: 1, children: vec![p("a", "x")] };
        let enc = internal.encode();
        assert!(Node::decode(&enc[..enc.len() - 2]).is_err());
    }

    #[test]
    fn routing_clamps() {
        let children = vec![p("f", "1"), p("m", "2")];
        assert_eq!(route(&children, b"a"), 0);
        assert_eq!(route(&children, b"f"), 0);
        assert_eq!(route(&children, b"zzz"), 1);
    }
}
