//! In-order cursor over a POS-Tree — the engine behind scans, bounded
//! range reads and the subtree-skipping diff.

use std::ops::Bound;
use std::sync::Arc;

use siri_core::{before_start, past_end, Entry, IndexError, Result};
use siri_crypto::Hash;
use siri_store::{NodeCache, SharedStore};

use crate::node::{Node, Piece};

struct Frame {
    /// Always an `Internal` node.
    node: Arc<Node>,
    idx: usize,
}

impl Frame {
    fn children(&self) -> &[Piece] {
        match &*self.node {
            Node::Internal { children, .. } => children,
            Node::Leaf { .. } => unreachable!("frames hold internal nodes only"),
        }
    }
}

/// Iterates entries in key order while exposing the node boundaries the
/// current position sits on, so callers can skip whole shared subtrees.
///
/// Nodes are held as `Arc`s straight out of the tree's decoded-node cache
/// (when one is supplied): advancing across a leaf boundary on a warm
/// cache costs a shard probe, not a store fetch + decode.
pub struct Cursor {
    store: SharedStore,
    cache: Option<Arc<NodeCache<Node>>>,
    /// Internal-node frames from the root down; empty when the root is a
    /// leaf.
    stack: Vec<Frame>,
    /// Hash of the leaf currently being read.
    leaf_hash: Hash,
    /// The current leaf node; `None` before the first descent / when done.
    leaf: Option<Arc<Node>>,
    leaf_idx: usize,
    done: bool,
}

impl Cursor {
    pub fn new(store: SharedStore, root: Hash) -> Result<Self> {
        Self::with_cache(store, None, root)
    }

    /// A cursor whose node loads go through `cache`. The cursor owns its
    /// store and cache handles (both are `Arc`s), so it is `'static` and
    /// can outlive the index handle that spawned it.
    pub fn with_cache(
        store: SharedStore,
        cache: Option<Arc<NodeCache<Node>>>,
        root: Hash,
    ) -> Result<Self> {
        let mut c = Cursor {
            store,
            cache,
            stack: Vec::new(),
            leaf_hash: Hash::ZERO,
            leaf: None,
            leaf_idx: 0,
            done: root.is_zero(),
        };
        if !c.done {
            c.descend_to_first_leaf(root)?;
        }
        Ok(c)
    }

    fn fetch(&self, hash: &Hash) -> Result<Arc<Node>> {
        let load = || {
            let page = self.store.try_get(hash)?.ok_or(IndexError::MissingPage(*hash))?;
            Node::decode_zc(&page)
        };
        match &self.cache {
            Some(cache) => cache.get_or_load(hash, load).map(|(node, _)| node),
            None => load().map(Arc::new),
        }
    }

    fn leaf_entries(&self) -> &[Entry] {
        match self.leaf.as_deref() {
            Some(Node::Leaf { entries, .. }) => entries,
            _ => &[],
        }
    }

    fn descend_to_first_leaf(&mut self, mut hash: Hash) -> Result<()> {
        loop {
            let node = self.fetch(&hash)?;
            match &*node {
                Node::Leaf { entries, .. } => {
                    if entries.is_empty() {
                        return Err(IndexError::CorruptStructure("empty stored leaf"));
                    }
                    self.leaf_hash = hash;
                    self.leaf = Some(node);
                    self.leaf_idx = 0;
                    return Ok(());
                }
                Node::Internal { children, .. } => {
                    hash = children[0].hash;
                    self.stack.push(Frame { node: node.clone(), idx: 0 });
                }
            }
        }
    }

    /// The entry at the current position.
    pub fn peek(&self) -> Option<&Entry> {
        if self.done {
            None
        } else {
            self.leaf_entries().get(self.leaf_idx)
        }
    }

    /// Move to the next entry.
    pub fn advance(&mut self) -> Result<()> {
        if self.done {
            return Ok(());
        }
        self.leaf_idx += 1;
        if self.leaf_idx >= self.leaf_entries().len() {
            self.move_to_next_leaf()?;
        }
        Ok(())
    }

    fn move_to_next_leaf(&mut self) -> Result<()> {
        loop {
            let Some(frame) = self.stack.last_mut() else {
                self.done = true;
                return Ok(());
            };
            frame.idx += 1;
            if frame.idx < frame.children().len() {
                let hash = frame.children()[frame.idx].hash;
                return self.descend_to_first_leaf(hash);
            }
            self.stack.pop();
        }
    }

    /// Hashes of every node whose *first* entry is the current position,
    /// innermost (leaf) first. Non-empty only at leaf starts.
    pub fn start_hashes(&self) -> Vec<Hash> {
        let mut out = Vec::new();
        if self.done || self.leaf_idx != 0 {
            return out;
        }
        out.push(self.leaf_hash);
        // Walking outward, the node at depth i starts here iff every deeper
        // frame sits on its first child. (The root itself is excluded:
        // callers compare roots before cursoring.)
        for i in (1..self.stack.len()).rev() {
            if self.stack[i].idx != 0 {
                break;
            }
            let f = &self.stack[i - 1];
            out.push(f.children()[f.idx].hash);
        }
        out
    }

    /// Skip the subtree whose root has `hash`, which must be one of
    /// [`Cursor::start_hashes`]. Positions the cursor at the first entry
    /// after that subtree.
    pub fn skip_subtree(&mut self, hash: Hash) -> Result<()> {
        debug_assert!(!self.done);
        if self.leaf_hash == hash {
            self.move_to_next_leaf()?;
            return Ok(());
        }
        // Find the frame whose current child is the subtree.
        let Some(depth) = self.stack.iter().position(|f| f.children()[f.idx].hash == hash) else {
            return Err(IndexError::CorruptStructure("skip target not on cursor path"));
        };
        self.stack.truncate(depth + 1);
        let frame = self.stack.last_mut().expect("non-empty");
        frame.idx += 1;
        if frame.idx < frame.children().len() {
            let next = frame.children()[frame.idx].hash;
            self.descend_to_first_leaf(next)
        } else {
            self.stack.pop();
            self.move_up_and_descend()
        }
    }

    fn move_up_and_descend(&mut self) -> Result<()> {
        loop {
            let Some(frame) = self.stack.last_mut() else {
                self.done = true;
                return Ok(());
            };
            frame.idx += 1;
            if frame.idx < frame.children().len() {
                let hash = frame.children()[frame.idx].hash;
                return self.descend_to_first_leaf(hash);
            }
            self.stack.pop();
        }
    }

    pub fn is_done(&self) -> bool {
        self.done
    }

    /// Position the cursor at the first entry with key ≥ `key`
    /// (or exhaust it if no such entry exists). O(log N).
    pub fn seek(store: SharedStore, root: Hash, key: &[u8]) -> Result<Self> {
        Self::seek_with_cache(store, None, root, key)
    }

    /// [`Cursor::seek`] with node loads through `cache`.
    pub fn seek_with_cache(
        store: SharedStore,
        cache: Option<Arc<NodeCache<Node>>>,
        root: Hash,
        key: &[u8],
    ) -> Result<Self> {
        let mut c = Cursor {
            store,
            cache,
            stack: Vec::new(),
            leaf_hash: Hash::ZERO,
            leaf: None,
            leaf_idx: 0,
            done: root.is_zero(),
        };
        if c.done {
            return Ok(c);
        }
        let mut hash = root;
        loop {
            let node = c.fetch(&hash)?;
            match &*node {
                Node::Leaf { entries, .. } => {
                    if entries.is_empty() {
                        return Err(IndexError::CorruptStructure("empty stored leaf"));
                    }
                    let idx = entries.partition_point(|e| e.key.as_ref() < key);
                    c.leaf_hash = hash;
                    c.leaf = Some(node.clone());
                    c.leaf_idx = idx;
                    if c.leaf_idx >= c.leaf_entries().len() {
                        // Key is beyond this leaf (can only happen on the
                        // rightmost spine): move on.
                        c.move_to_next_leaf()?;
                    }
                    return Ok(c);
                }
                Node::Internal { children, .. } => {
                    // First child whose max_key ≥ key; clamp to the right
                    // so seeks past the maximum land at stream end.
                    let slot = children.partition_point(|p| p.max_key.as_ref() < key);
                    let slot = slot.min(children.len() - 1);
                    hash = children[slot].hash;
                    c.stack.push(Frame { node: node.clone(), idx: slot });
                }
            }
        }
    }
}

/// Bound-checking iterator adapter over a seeked [`Cursor`] — what
/// [`crate::PosTree`]'s `range` hands to [`siri_core::EntryCursor`]. The
/// cursor arrives positioned at the first key ≥ the start bound; this
/// wrapper skips an exclusive-start match and stops at the end bound
/// (entries stream in key order, so the first out-of-window key finishes
/// the iteration).
pub(crate) struct RangeIter {
    pub(crate) cursor: Cursor,
    pub(crate) start: Bound<Vec<u8>>,
    pub(crate) end: Bound<Vec<u8>>,
    /// Error hit while advancing *past* an entry that was already read and
    /// in bounds; delivered on the call after that entry, so a failing
    /// next-leaf fetch never swallows the last readable entry.
    pub(crate) pending_err: Option<siri_core::IndexError>,
    pub(crate) done: bool,
}

impl Iterator for RangeIter {
    type Item = Result<Entry>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        if let Some(e) = self.pending_err.take() {
            self.done = true;
            return Some(Err(e));
        }
        loop {
            let Some(entry) = self.cursor.peek().cloned() else {
                self.done = true;
                return None;
            };
            if past_end(&self.end, &entry.key) {
                self.done = true;
                return None;
            }
            let skipped = before_start(&self.start, &entry.key);
            if let Err(e) = self.cursor.advance() {
                if skipped {
                    self.done = true;
                    return Some(Err(e));
                }
                self.pending_err = Some(e);
                return Some(Ok(entry));
            }
            if skipped {
                continue; // exclusive start: skip the seeked-to match
            }
            return Some(Ok(entry));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::update::build_from_entries;
    use crate::PosParams;
    use siri_core::MemStore;

    fn entries(n: usize) -> Vec<Entry> {
        (0..n)
            .map(|i| Entry::new(format!("key{i:05}").into_bytes(), vec![(i % 251) as u8; 100]))
            .collect()
    }

    #[test]
    fn iterates_all_entries_in_order() {
        let store = MemStore::new_shared();
        let es = entries(2500);
        let root = build_from_entries(&store, &PosParams::default(), 0, &es).unwrap().unwrap();
        let mut c = Cursor::new(store.clone(), root.hash).unwrap();
        let mut seen = Vec::new();
        while let Some(e) = c.peek() {
            seen.push(e.clone());
            c.advance().unwrap();
        }
        assert_eq!(seen, es);
        assert!(c.is_done());
    }

    #[test]
    fn cached_cursor_agrees_and_hits() {
        let store = MemStore::new_shared();
        let es = entries(2500);
        let root = build_from_entries(&store, &PosParams::default(), 0, &es).unwrap().unwrap();
        let cache = NodeCache::new_shared(4096);
        let collect = |cache: Option<Arc<NodeCache<Node>>>| {
            let mut c = Cursor::with_cache(store.clone(), cache, root.hash).unwrap();
            let mut seen = Vec::new();
            while let Some(e) = c.peek() {
                seen.push(e.clone());
                c.advance().unwrap();
            }
            seen
        };
        assert_eq!(collect(Some(cache.clone())), es, "cold cached scan");
        let misses_after_first = cache.stats().misses;
        assert_eq!(collect(Some(cache.clone())), es, "warm cached scan");
        assert_eq!(cache.stats().misses, misses_after_first, "second scan must be all cache hits");
        assert_eq!(collect(None), es, "uncached scan agrees");
    }

    #[test]
    fn empty_tree_cursor() {
        let store = MemStore::new_shared();
        let c = Cursor::new(store, Hash::ZERO).unwrap();
        assert!(c.peek().is_none());
        assert!(c.is_done());
    }

    #[test]
    fn start_hashes_at_boundaries() {
        let store = MemStore::new_shared();
        let es = entries(2500);
        let root = build_from_entries(&store, &PosParams::default(), 0, &es).unwrap().unwrap();
        let mut c = Cursor::new(store.clone(), root.hash).unwrap();
        // At position 0 the leaf (and possibly enclosing nodes) start here.
        let starts = c.start_hashes();
        assert!(!starts.is_empty());
        c.advance().unwrap();
        assert!(c.start_hashes().is_empty(), "mid-leaf positions are not starts");
    }

    #[test]
    fn skip_subtree_jumps_exactly_past_it() {
        let store = MemStore::new_shared();
        let es = entries(2500);
        let root = build_from_entries(&store, &PosParams::default(), 0, &es).unwrap().unwrap();
        // Reference iteration to know leaf extents.
        let mut reference = Cursor::new(store.clone(), root.hash).unwrap();
        let leaf_hash = reference.start_hashes()[0];
        let mut leaf_len = 0;
        while reference.peek().is_some() {
            if reference.start_hashes().first() == Some(&leaf_hash) && leaf_len > 0 {
                break;
            }
            leaf_len += 1;
            reference.advance().unwrap();
            if !reference.start_hashes().is_empty() {
                break; // reached the next leaf start
            }
        }
        // Now skip that first leaf with a fresh cursor and compare.
        let mut c = Cursor::new(store.clone(), root.hash).unwrap();
        c.skip_subtree(leaf_hash).unwrap();
        assert_eq!(c.peek().map(|e| e.key.clone()), Some(es[leaf_len].key.clone()));
    }
}
