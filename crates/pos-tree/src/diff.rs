//! Structure-aware POS-Tree diff.
//!
//! Thanks to structural invariance, any shared run of records shows up as a
//! shared subtree with an identical digest. The diff runs two in-order
//! cursors and, whenever both sit on the first entry of subtrees with equal
//! digests, skips those subtrees wholesale — the identical runs consume
//! each other, so only the δ differing regions are ever materialized
//! (§4.1.3's O(δ·log N)).

use siri_core::{DiffEntry, Result, SiriIndex};
use siri_crypto::FxHashSet;

use crate::cursor::Cursor;
use crate::PosTree;

pub(crate) fn diff(a: &PosTree, b: &PosTree) -> Result<Vec<DiffEntry>> {
    let mut out = Vec::new();
    if a.root() == b.root() {
        return Ok(out);
    }
    let mut ca = Cursor::with_cache(a.store().clone(), Some(a.cache.clone()), a.root())?;
    let mut cb = Cursor::with_cache(b.store().clone(), Some(b.cache.clone()), b.root())?;

    loop {
        // Subtree skipping: only meaningful when both cursors are at node
        // starts. Pick the largest shared subtree (outermost match).
        if !ca.is_done() && !cb.is_done() {
            let sa = ca.start_hashes();
            if !sa.is_empty() {
                let sb = cb.start_hashes();
                if !sb.is_empty() {
                    let set: FxHashSet<_> = sa.iter().copied().collect();
                    if let Some(shared) = sb.iter().rev().find(|h| set.contains(h)) {
                        let shared = *shared;
                        ca.skip_subtree(shared)?;
                        cb.skip_subtree(shared)?;
                        continue;
                    }
                }
            }
        }
        match (ca.peek().cloned(), cb.peek().cloned()) {
            (None, None) => break,
            (Some(ea), None) => {
                out.push(DiffEntry { key: ea.key, left: Some(ea.value), right: None });
                ca.advance()?;
            }
            (None, Some(eb)) => {
                out.push(DiffEntry { key: eb.key, left: None, right: Some(eb.value) });
                cb.advance()?;
            }
            (Some(ea), Some(eb)) => match ea.key.cmp(&eb.key) {
                std::cmp::Ordering::Less => {
                    out.push(DiffEntry { key: ea.key, left: Some(ea.value), right: None });
                    ca.advance()?;
                }
                std::cmp::Ordering::Greater => {
                    out.push(DiffEntry { key: eb.key, left: None, right: Some(eb.value) });
                    cb.advance()?;
                }
                std::cmp::Ordering::Equal => {
                    if ea.value != eb.value {
                        out.push(DiffEntry {
                            key: ea.key,
                            left: Some(ea.value),
                            right: Some(eb.value),
                        });
                    }
                    ca.advance()?;
                    cb.advance()?;
                }
            },
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use siri_core::{DiffSide, Entry, MemStore};
    use siri_store::NodeStore;

    fn tree(n: usize) -> PosTree {
        let mut t = PosTree::new(MemStore::new_shared(), crate::PosParams::default());
        t.batch_insert(
            (0..n)
                .map(|i| Entry::new(format!("key{i:05}").into_bytes(), vec![(i % 251) as u8; 100]))
                .collect(),
        )
        .unwrap();
        t
    }

    #[test]
    fn identical_trees_diff_empty() {
        let a = tree(1000);
        let b = a.clone();
        assert!(diff(&a, &b).unwrap().is_empty());
    }

    #[test]
    fn small_delta_found_and_few_pages_read() {
        let a = tree(5000);
        let mut b = a.clone();
        b.insert(b"key02500", Bytes::from_static(b"changed")).unwrap();
        b.insert(b"new-key-x", Bytes::from_static(b"added")).unwrap();

        let gets_before = a.store().stats().gets;
        let d = a.diff(&b).unwrap();
        let gets = a.store().stats().gets - gets_before;

        assert_eq!(d.len(), 2);
        assert_eq!(d[0].key.as_ref(), b"key02500");
        assert_eq!(d[0].side(), DiffSide::Changed);
        assert_eq!(d[1].side(), DiffSide::RightOnly);
        // Shared subtrees must be pruned: far fewer page reads than the
        // ~700 pages of either tree.
        assert!(gets < 200, "diff read {gets} pages");
    }

    #[test]
    fn matches_scan_reference() {
        let a = tree(800);
        let mut b = tree(0);
        // Rebuild b with overlapping-but-different content.
        b.batch_insert(
            (400..1200)
                .map(|i| {
                    Entry::new(
                        format!("key{i:05}").into_bytes(),
                        vec![(i % 251) as u8; if i < 800 { 100 } else { 60 }],
                    )
                })
                .collect(),
        )
        .unwrap();
        let structural = diff(&a, &b).unwrap();
        let reference = siri_core::diff_by_scan(&a, &b).unwrap();
        assert_eq!(structural, reference);
    }

    #[test]
    fn diff_against_empty() {
        let a = tree(100);
        let empty = PosTree::new(MemStore::new_shared(), crate::PosParams::default());
        let d = diff(&a, &empty).unwrap();
        assert_eq!(d.len(), 100);
        assert!(d.iter().all(|x| x.side() == DiffSide::LeftOnly));
        let d = diff(&empty, &a).unwrap();
        assert!(d.iter().all(|x| x.side() == DiffSide::RightOnly));
    }
}
