//! Pattern-Oriented-Split Tree (POS-Tree) — §3.4.3 of the paper, the
//! structure the paper ultimately recommends for indexing immutable data.
//!
//! POS-Tree is "a probabilistically balanced search tree … a customized
//! Merkle tree built upon pattern-aware partitions of the dataset". The
//! bottom layer is the sorted record sequence, chunked by a rolling-hash
//! boundary pattern (content-defined chunking); internal layers hold
//! `(split key, child digest)` runs chunked by testing the boundary pattern
//! directly on the child digests. The node layout is B+-tree-like, so
//! lookups are ordinary `O(log_m N)` descents; the chunking makes the
//! structure a pure function of its content — Structurally Invariant —
//! which is what buys cheap diff/merge and high deduplication.
//!
//! This crate also houses:
//! * the §5.5 ablations — [`PosTree::new_forced_split`] (disables
//!   Structural Invariance) and [`PosTree::new_copy_all`] (disables
//!   Recursive Identity);
//! * the Noms/Prolly-tree variant ([`PosParams::noms`]) whose internal
//!   layers pay sliding-window hashing, used by the §5.6.2 comparison.
//!
//! ```
//! use siri_core::{MemStore, SiriIndex};
//! use siri_pos_tree::{PosParams, PosTree};
//!
//! let mut t = PosTree::new(MemStore::new_shared(), PosParams::default());
//! t.insert(b"key", bytes::Bytes::from_static(b"value")).unwrap();
//! assert_eq!(t.get(b"key").unwrap().unwrap().as_ref(), b"value");
//! ```

mod builder;
mod cursor;
mod diff;
mod node;
mod params;
mod proof;
mod update;

use std::ops::Bound;
use std::sync::Arc;
use std::time::Instant;

use bytes::Bytes;
use siri_core::{
    apply_ops, own_bound, DiffEntry, EntryCursor, IndexError, LookupTrace, Proof, ProofVerdict,
    Result, SiriIndex, StructureReport, StructureStats, WriteBatch,
};
use siri_crypto::Hash;
use siri_store::{
    reachable_pages, CacheStats, NodeCache, PageSet, SharedStore, DEFAULT_NODE_CACHE_CAPACITY,
};

pub use builder::{Builders, DeferredSeal, Item, LevelBuilder};
pub use cursor::Cursor;
pub use node::{route, Node, Piece};
pub use params::{ChunkerKind, InternalChunking, PosParams, SplitPolicy};
pub use proof::PosProofScheme;

/// Handle to one POS-Tree version. Clones (= version snapshots) share the
/// decoded-node cache: content addressing keeps it coherent across
/// versions, and the shared spine of adjacent versions warms it for free.
#[derive(Clone)]
pub struct PosTree {
    store: SharedStore,
    params: PosParams,
    root: Hash,
    /// Per-version page salt; stays 0 unless `copy_all` is set.
    salt: u64,
    /// §5.5.2 ablation: rebuild every page on every batch so no page is
    /// ever shared between versions.
    copy_all: bool,
    cache: Arc<NodeCache<Node>>,
}

impl PosTree {
    /// An empty tree with the given chunking parameters.
    pub fn new(store: SharedStore, params: PosParams) -> Self {
        PosTree {
            store,
            params,
            root: Hash::ZERO,
            salt: 0,
            copy_all: false,
            cache: NodeCache::new_shared(DEFAULT_NODE_CACHE_CAPACITY),
        }
    }

    /// Re-open an existing version by root digest.
    pub fn open(store: SharedStore, params: PosParams, root: Hash) -> Self {
        PosTree {
            store,
            params,
            root,
            salt: 0,
            copy_all: false,
            cache: NodeCache::new_shared(DEFAULT_NODE_CACHE_CAPACITY),
        }
    }

    /// §5.5.1 ablation: forced splits + leaf-local splice updates. The
    /// resulting structure depends on insertion order (non-SI).
    pub fn new_forced_split(store: SharedStore) -> Self {
        Self::new(store, PosParams::forced_split())
    }

    /// §5.5.2 ablation: every batch rewrites every node (with a version
    /// salt), so consecutive versions share zero pages (non-RI).
    /// `namespace` seeds the salt so that *instances* (e.g. different
    /// collaborating parties) cannot share pages either — under content
    /// addressing, un-salted identical pages would still deduplicate,
    /// which is exactly the property this ablation removes.
    pub fn new_copy_all(store: SharedStore, params: PosParams, namespace: u64) -> Self {
        PosTree {
            store,
            params,
            root: Hash::ZERO,
            salt: namespace << 20,
            copy_all: true,
            cache: NodeCache::new_shared(DEFAULT_NODE_CACHE_CAPACITY),
        }
    }

    pub fn params(&self) -> &PosParams {
        &self.params
    }

    /// Replace the node cache with one bounded to `capacity` decoded nodes
    /// (0 disables caching — every fetch decodes). Benchmarks use this for
    /// cache-size sweeps; clones made *after* this call share the new cache.
    pub fn with_node_cache_capacity(mut self, capacity: usize) -> Self {
        self.cache = NodeCache::new_shared(capacity);
        self
    }

    /// Hit/miss/eviction counters of the shared decoded-node cache.
    pub fn node_cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    fn fetch(&self, hash: &Hash) -> Result<Arc<Node>> {
        Ok(self.fetch_traced(hash)?.0)
    }

    /// Fetch a node through the cache; the flag reports whether it was a
    /// cache hit (no store access, no decode).
    fn fetch_traced(&self, hash: &Hash) -> Result<(Arc<Node>, bool)> {
        self.cache.get_or_load(hash, || {
            let page = self.store.try_get(hash)?.ok_or(IndexError::MissingPage(*hash))?;
            Node::decode_zc(&page)
        })
    }

    /// Per-level statistics: for each level from the leaves up,
    /// (node count, total bytes). The Table 3 diagnostic for how the
    /// boundary pattern shapes the tree.
    pub fn level_stats(&self) -> Result<Vec<(usize, u64)>> {
        let mut levels: Vec<(usize, u64)> = Vec::new();
        if self.root.is_zero() {
            return Ok(levels);
        }
        let mut stack = vec![self.root];
        let mut seen = siri_crypto::FxHashSet::default();
        while let Some(h) = stack.pop() {
            if !seen.insert(h) {
                continue;
            }
            let page = self.store.try_get(&h)?.ok_or(IndexError::MissingPage(h))?;
            let node = Node::decode_zc(&page)?;
            let level = match &node {
                Node::Leaf { .. } => 0usize,
                Node::Internal { level, children, .. } => {
                    stack.extend(children.iter().map(|c| c.hash));
                    *level as usize
                }
            };
            if levels.len() <= level {
                levels.resize(level + 1, (0, 0));
            }
            levels[level].0 += 1;
            levels[level].1 += page.len() as u64;
        }
        Ok(levels)
    }

    /// Number of levels (0 for an empty tree).
    pub fn height(&self) -> Result<u32> {
        if self.root.is_zero() {
            return Ok(0);
        }
        Ok(match &*self.fetch(&self.root)? {
            Node::Leaf { .. } => 1,
            Node::Internal { level, .. } => level + 1,
        })
    }
}

impl SiriIndex for PosTree {
    fn kind(&self) -> &'static str {
        match (self.copy_all, self.params.split_policy) {
            (true, _) => "pos-tree(non-ri)",
            (false, SplitPolicy::ForcedSplice { .. }) => "pos-tree(non-si)",
            (false, SplitPolicy::Pattern) => match self.params.internal_chunking {
                InternalChunking::HashPattern => "pos-tree",
                InternalChunking::RollingWindow => "prolly-tree",
            },
        }
    }

    fn store(&self) -> &SharedStore {
        &self.store
    }

    fn root(&self) -> Hash {
        self.root
    }

    fn at_root(&self, root: Hash) -> Self {
        let mut handle = self.clone();
        handle.root = root;
        handle
    }

    fn get(&self, key: &[u8]) -> Result<Option<Bytes>> {
        Ok(self.get_traced(key)?.0)
    }

    fn get_traced(&self, key: &[u8]) -> Result<(Option<Bytes>, LookupTrace)> {
        let mut trace = LookupTrace::default();
        if self.root.is_zero() {
            return Ok((None, trace));
        }
        let mut hash = self.root;
        let load_start = Instant::now();
        loop {
            let (node, cached) = self.fetch_traced(&hash)?;
            trace.pages_loaded += 1;
            trace.height += 1;
            if cached {
                trace.cache_hits += 1;
            } else {
                trace.cache_misses += 1;
            }
            match &*node {
                Node::Internal { children, .. } => {
                    if key > children.last().expect("non-empty").max_key.as_ref() {
                        trace.load_nanos = load_start.elapsed().as_nanos() as u64;
                        return Ok((None, trace));
                    }
                    hash = children[route(children, key)].hash;
                }
                Node::Leaf { entries, .. } => {
                    trace.load_nanos = load_start.elapsed().as_nanos() as u64;
                    let scan_start = Instant::now();
                    let (mut lo, mut hi) = (0usize, entries.len());
                    let mut found = None;
                    while lo < hi {
                        let mid = lo + (hi - lo) / 2;
                        trace.leaf_entries_scanned += 1;
                        match entries[mid].key.as_ref().cmp(key) {
                            std::cmp::Ordering::Equal => {
                                found = Some(entries[mid].value.clone());
                                break;
                            }
                            std::cmp::Ordering::Less => lo = mid + 1,
                            std::cmp::Ordering::Greater => hi = mid,
                        }
                    }
                    trace.scan_nanos = scan_start.elapsed().as_nanos() as u64;
                    return Ok((found, trace));
                }
            }
        }
    }

    fn commit(&mut self, batch: WriteBatch) -> Result<Hash> {
        let ops = batch.normalize();
        if ops.is_empty() {
            return Ok(self.root);
        }
        if self.copy_all {
            // "Forcibly copying all nodes in the tree": merge, bump the
            // salt, rebuild everything — zero page sharing with the
            // previous version.
            let merged = apply_ops(&self.scan()?, &ops);
            self.salt += 1;
            self.root = update::build_from_entries(&self.store, &self.params, self.salt, &merged)?
                .map(|p| p.hash)
                .unwrap_or(Hash::ZERO);
            return Ok(self.root);
        }
        let piece = match self.params.split_policy {
            SplitPolicy::Pattern => {
                update::streaming_update(&self.store, &self.params, self.salt, self.root, &ops)?
            }
            SplitPolicy::ForcedSplice { .. } => {
                update::splice_update(&self.store, &self.params, self.salt, self.root, &ops)?
            }
        };
        self.root = piece.map(|p| p.hash).unwrap_or(Hash::ZERO);
        Ok(self.root)
    }

    fn range(&self, start: Bound<&[u8]>, end: Bound<&[u8]>) -> EntryCursor {
        let start = own_bound(start);
        let cursor = match &start {
            Bound::Unbounded => {
                Cursor::with_cache(self.store.clone(), Some(self.cache.clone()), self.root)
            }
            Bound::Included(k) | Bound::Excluded(k) => {
                Cursor::seek_with_cache(self.store.clone(), Some(self.cache.clone()), self.root, k)
            }
        };
        match cursor {
            Ok(cursor) => EntryCursor::new(cursor::RangeIter {
                cursor,
                start,
                end: own_bound(end),
                pending_err: None,
                done: false,
            }),
            Err(e) => EntryCursor::fail(e),
        }
    }

    /// Counting walks the leaves and sums their entry counts; the interior
    /// descent reuses cached nodes and nothing is cloned or sorted.
    fn len(&self) -> Result<usize> {
        if self.root.is_zero() {
            return Ok(0);
        }
        let mut n = 0usize;
        let mut stack = vec![self.root];
        while let Some(h) = stack.pop() {
            match &*self.fetch(&h)? {
                Node::Leaf { entries, .. } => n += entries.len(),
                Node::Internal { children, .. } => stack.extend(children.iter().map(|c| c.hash)),
            }
        }
        Ok(n)
    }

    fn page_set(&self) -> PageSet {
        reachable_pages(self.store.as_ref(), self.root, Node::children_of_page)
    }

    fn diff(&self, other: &Self) -> Result<Vec<DiffEntry>> {
        diff::diff(self, other)
    }

    fn prove(&self, key: &[u8]) -> Result<Proof> {
        let mut pages = Vec::new();
        if self.root.is_zero() {
            return Ok(Proof::new(pages));
        }
        let mut hash = self.root;
        loop {
            let page = self.store.try_get(&hash)?.ok_or(IndexError::MissingPage(hash))?;
            let node = Node::decode(&page)?;
            pages.push(page);
            match node {
                Node::Internal { children, .. } => {
                    if key > children.last().expect("non-empty").max_key.as_ref() {
                        // The node itself proves the key exceeds every
                        // stored key; stop here (the verifier re-derives
                        // this absence from the max key).
                        return Ok(Proof::new(pages));
                    }
                    hash = children[route(&children, key)].hash;
                }
                Node::Leaf { .. } => return Ok(Proof::new(pages)),
            }
        }
    }

    fn verify_proof(root: Hash, key: &[u8], proof: &Proof) -> ProofVerdict {
        proof::verify(root, key, proof)
    }

    fn prove_range(&self, start: Bound<&[u8]>, end: Bound<&[u8]>) -> Result<Proof> {
        let mut pages = Vec::new();
        let mut seen = std::collections::HashSet::new();
        if !self.root.is_zero() {
            self.collect_range_pages(self.root, start, end, &mut seen, &mut pages)?;
        }
        Ok(Proof::new(pages))
    }

    fn prove_batch(&self, keys: &[Bytes]) -> Result<Proof> {
        let mut pages = Vec::new();
        let mut seen = std::collections::HashSet::new();
        for key in keys {
            for page in self.prove(key)?.into_pages() {
                if seen.insert(siri_crypto::sha256(&page)) {
                    pages.push(page);
                }
            }
        }
        Ok(Proof::new(pages))
    }
}

impl PosTree {
    /// Prover-side range walk: descend every subtree overlapping the
    /// bounds (same [`siri_core::child_overlaps`] predicate the verifier
    /// uses), pushing each page once by content hash. Descent is *not*
    /// skipped for already-pushed pages — dedup applies to the page list
    /// only, so the walk shape stays identical to the verifier's.
    fn collect_range_pages(
        &self,
        hash: Hash,
        start: Bound<&[u8]>,
        end: Bound<&[u8]>,
        seen: &mut std::collections::HashSet<Hash>,
        pages: &mut Vec<Bytes>,
    ) -> Result<()> {
        let page = self.store.try_get(&hash)?.ok_or(IndexError::MissingPage(hash))?;
        let node = Node::decode(&page)?;
        if seen.insert(hash) {
            pages.push(page);
        }
        if let Node::Internal { children, .. } = node {
            let mut prev: Option<Bytes> = None;
            for c in children {
                if siri_core::child_overlaps(prev.as_deref(), &c.max_key, start, end) {
                    self.collect_range_pages(c.hash, start, end, seen, pages)?;
                }
                prev = Some(c.max_key);
            }
        }
        Ok(())
    }

    /// Verify a range proof against a trusted branch digest (manifest or
    /// bare root) — see [`siri_core::verify_anchored_range`].
    pub fn verify_range(
        digest: Hash,
        start: Bound<&[u8]>,
        end: Bound<&[u8]>,
        proof: &Proof,
    ) -> siri_core::RangeVerdict {
        siri_core::verify_anchored_range(&proof::PosProofScheme, digest, start, end, proof)
    }

    /// Verify a batched multi-key proof against a trusted branch digest —
    /// see [`siri_core::verify_anchored_batch`].
    pub fn verify_batch(digest: Hash, keys: &[Bytes], proof: &Proof) -> siri_core::BatchVerdict {
        siri_core::verify_anchored_batch(&proof::PosProofScheme, digest, keys, proof)
    }
}

impl StructureStats for PosTree {
    fn structure_stats(&self) -> Result<StructureReport> {
        let levels = self.level_stats()?;
        let nodes: u64 = levels.iter().map(|(n, _)| *n as u64).sum();
        let bytes: u64 = levels.iter().map(|(_, b)| *b).sum();
        let leaves = levels.first().map(|(n, _)| *n as u64).unwrap_or(0);
        let entries = self.len()? as u64;
        Ok(StructureReport {
            nodes,
            bytes,
            height: self.height()?,
            entries,
            leaf_occupancy: if leaves == 0 { 0.0 } else { entries as f64 / leaves as f64 },
        })
    }

    fn node_cache_stats(&self) -> CacheStats {
        PosTree::node_cache_stats(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use siri_core::{Entry, MemStore};

    fn e(i: usize) -> Entry {
        Entry::new(format!("key{i:05}").into_bytes(), vec![(i % 251) as u8; 100])
    }

    fn make() -> PosTree {
        PosTree::new(MemStore::new_shared(), PosParams::default())
    }

    #[test]
    fn empty_tree() {
        let t = make();
        assert!(t.is_empty());
        assert_eq!(t.get(b"x").unwrap(), None);
        assert_eq!(t.height().unwrap(), 0);
    }

    #[test]
    fn insert_lookup_scan() {
        let mut t = make();
        t.batch_insert((0..3000).map(e).collect()).unwrap();
        assert_eq!(t.get(b"key01500").unwrap().unwrap().len(), 100);
        assert_eq!(t.get(b"nope").unwrap(), None);
        let s = t.scan().unwrap();
        assert_eq!(s.len(), 3000);
        assert!(s.windows(2).all(|w| w[0].key < w[1].key));
        assert!(t.height().unwrap() >= 2);
    }

    #[test]
    fn structurally_invariant_across_orders_and_batchings() {
        let entries: Vec<Entry> = (0..1500).map(e).collect();
        let mut bulk = make();
        bulk.batch_insert(entries.clone()).unwrap();
        let mut reversed = make();
        reversed.batch_insert(entries.iter().rev().cloned().collect()).unwrap();
        let mut trickled = make();
        for chunk in entries.chunks(101) {
            trickled.batch_insert(chunk.to_vec()).unwrap();
        }
        assert_eq!(bulk.root(), reversed.root());
        assert_eq!(bulk.root(), trickled.root(), "incremental must equal bulk");
    }

    #[test]
    fn versions_share_pages() {
        let mut t = make();
        t.batch_insert((0..2000).map(e).collect()).unwrap();
        let v1 = t.clone();
        t.insert(b"key01000", Bytes::from_static(b"next")).unwrap();
        let p1 = v1.page_set();
        let p2 = t.page_set();
        let shared = p1.intersection(&p2);
        // Recursively Identical: shared pages dominate replaced ones.
        assert!(shared.len() >= p2.difference(&p1).len());
        assert_eq!(v1.get(b"key01000").unwrap().unwrap().len(), 100);
        assert_eq!(t.get(b"key01000").unwrap().unwrap().as_ref(), b"next");
    }

    #[test]
    fn forced_split_variant_is_order_dependent_but_correct() {
        let store = MemStore::new_shared();
        let entries: Vec<Entry> = (0..600).map(e).collect();
        let mut bulk = PosTree::new_forced_split(store.clone());
        bulk.batch_insert(entries.clone()).unwrap();
        // Insert evens first, then odds: mid-stream inserts shift the
        // forced boundaries, which splice updates never re-align.
        let mut trickled = PosTree::new_forced_split(store);
        let (evens, odds): (Vec<Entry>, Vec<Entry>) =
            entries.iter().cloned().partition(|en| en.key[en.key.len() - 1] % 2 == 0);
        trickled.batch_insert(evens).unwrap();
        trickled.batch_insert(odds).unwrap();
        assert_eq!(bulk.scan().unwrap(), trickled.scan().unwrap(), "content equal");
        assert_ne!(bulk.root(), trickled.root(), "structure order-dependent");
        assert_eq!(trickled.get(b"key00300").unwrap().unwrap().len(), 100);
    }

    #[test]
    fn copy_all_variant_shares_nothing_between_versions_or_instances() {
        let store = MemStore::new_shared();
        let mut t = PosTree::new_copy_all(store.clone(), PosParams::default(), 1);
        t.batch_insert((0..500).map(e).collect()).unwrap();
        let v1 = t.clone();
        t.batch_insert(vec![e(100)]).unwrap();
        let shared = v1.page_set().intersection(&t.page_set());
        assert_eq!(shared.len(), 0, "non-RI ablation must share zero pages");
        // Content is still correct.
        assert_eq!(t.len().unwrap(), 500);
        // A second instance with identical content shares nothing either.
        let mut other = PosTree::new_copy_all(store, PosParams::default(), 2);
        other.batch_insert((0..500).map(e).collect()).unwrap();
        assert_eq!(other.page_set().intersection(&v1.page_set()).len(), 0);
    }

    #[test]
    fn prolly_variant_builds_and_reads() {
        let mut t = PosTree::new(MemStore::new_shared(), PosParams::noms());
        t.batch_insert((0..2000).map(e).collect()).unwrap();
        assert_eq!(t.kind(), "prolly-tree");
        assert_eq!(t.get(b"key00042").unwrap().unwrap().len(), 100);
        // Prolly is also structurally invariant.
        let mut other = PosTree::new(MemStore::new_shared(), PosParams::noms());
        for chunk in (0..2000).map(e).collect::<Vec<_>>().chunks(77) {
            other.batch_insert(chunk.to_vec()).unwrap();
        }
        assert_eq!(t.root(), other.root());
    }

    #[test]
    fn range_cursor_returns_exactly_the_window() {
        let mut t = make();
        t.batch_insert((0..3000).map(e).collect()).unwrap();
        let window = |s: &[u8], e: &[u8]| {
            t.range(Bound::Included(s), Bound::Excluded(e)).collect_entries().unwrap()
        };
        let r = window(b"key01000", b"key01010");
        assert_eq!(r.len(), 10);
        assert_eq!(r[0].key.as_ref(), b"key01000");
        assert_eq!(r[9].key.as_ref(), b"key01009");
        // Start between keys, end past the maximum.
        let r = window(b"key02995x", b"zzz");
        assert_eq!(r.len(), 4, "key02996..key02999");
        // Empty window and window before all keys.
        assert!(window(b"key01000", b"key01000").is_empty());
        assert_eq!(window(b"", b"key00002").len(), 2);
        // Unbounded cursor equals scan().
        let all = t.range(Bound::Unbounded, Bound::Unbounded).collect_entries().unwrap();
        assert_eq!(all, t.scan().unwrap());
        // Exclusive start / inclusive end.
        let r = t
            .range(Bound::Excluded(b"key01000"), Bound::Included(b"key01003"))
            .collect_entries()
            .unwrap();
        assert_eq!(r.len(), 3);
        assert_eq!(r[0].key.as_ref(), b"key01001");
        // A bounded window must not read the whole tree.
        let gets_before = t.store().stats().gets;
        let _ = window(b"key02000", b"key02005");
        let gets = t.store().stats().gets - gets_before;
        assert!(gets < 30, "bounded range fetched {gets} pages");
    }

    #[test]
    fn delete_restores_root_and_prefix_scans_work() {
        let mut t = make();
        t.batch_insert((0..2000).map(e).collect()).unwrap();
        let full_root = t.root();
        // Delete a cluster spanning leaf boundaries.
        let mut batch = WriteBatch::new();
        for i in 700..760 {
            batch.delete(format!("key{i:05}").into_bytes());
        }
        t.commit(batch).unwrap();
        assert_eq!(t.len().unwrap(), 1940);
        assert_eq!(t.get(b"key00730").unwrap(), None);
        // Deleted content equals a fresh build of the remainder.
        let mut fresh = make();
        fresh.batch_insert((0..2000).filter(|i| !(700..760).contains(i)).map(e).collect()).unwrap();
        assert_eq!(t.root(), fresh.root(), "delete must re-chunk canonically");
        // Reinsert: identical root again.
        t.batch_insert((700..760).map(e).collect()).unwrap();
        assert_eq!(t.root(), full_root);
        // Prefix cursor.
        let r = t.scan_prefix(b"key0010").collect_entries().unwrap();
        assert_eq!(r.len(), 10, "key00100..key00109");
        // Drain the whole tree.
        let mut batch = WriteBatch::new();
        for i in 0..2000 {
            batch.delete(format!("key{i:05}").into_bytes());
        }
        t.commit(batch).unwrap();
        assert!(t.is_empty());
        assert_eq!(t.root(), Hash::ZERO);
    }

    #[test]
    fn level_stats_describe_the_tree() {
        let mut t = make();
        t.batch_insert((0..3000).map(e).collect()).unwrap();
        let levels = t.level_stats().unwrap();
        assert_eq!(levels.len() as u32, t.height().unwrap());
        // Node counts shrink going up; the top level has exactly one node.
        assert!(levels.windows(2).all(|w| w[0].0 >= w[1].0));
        assert_eq!(levels.last().unwrap().0, 1);
        // Level sizes sum to the instance's page-set size.
        let total_pages: usize = levels.iter().map(|l| l.0).sum();
        assert_eq!(total_pages, t.page_set().len());
        assert!(t.clone().level_stats().unwrap() == levels, "deterministic");
        assert!(make().level_stats().unwrap().is_empty());
    }

    #[test]
    fn range_on_empty_tree() {
        let t = make();
        assert_eq!(t.range(Bound::Included(b"a"), Bound::Excluded(b"z")).count(), 0);
    }

    #[test]
    fn node_size_parameter_shifts_page_sizes() {
        let small_store = MemStore::new_shared();
        let mut small =
            PosTree::new(small_store.clone(), PosParams::default().with_node_bytes(512));
        small.batch_insert((0..2000).map(e).collect()).unwrap();
        let large_store = MemStore::new_shared();
        let mut large =
            PosTree::new(large_store.clone(), PosParams::default().with_node_bytes(4096));
        large.batch_insert((0..2000).map(e).collect()).unwrap();
        let avg = |s: &siri_store::StoreStats| s.unique_bytes as f64 / s.unique_pages as f64;
        assert!(
            avg(&large_store.stats()) > avg(&small_store.stats()) * 1.5,
            "larger pattern must give larger pages"
        );
    }
}
