//! POS-Tree configuration.

/// How internal layers detect node boundaries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InternalChunking {
    /// POS-Tree proper: "directly use the hashes to match the boundary
    /// pattern instead of repeatedly computing the hashes within a sliding
    /// window" (§3.4.3) — one AND per child.
    HashPattern,
    /// Prolly-tree / Noms style: roll a sliding window over the serialized
    /// (key, hash) items, recomputing hashes per byte. "Such computational
    /// overhead causes inefficiency of its write operations" (§5.6.2).
    RollingWindow,
}

/// Which rolling fingerprint drives sliding-window boundary detection.
///
/// The chunker is part of a tree's identity: gear and buzhash place
/// boundaries differently, so the same entries produce different pages and
/// different root digests. Existing trees therefore stay on [`Buzhash`]
/// (the seed algorithm — every root ever produced used it) and [`Gear`]
/// is opt-in for new trees that want the cheaper per-byte step (one table
/// lookup + shift + add, no ring buffer, plus min-chunk skip-ahead).
///
/// [`Buzhash`]: ChunkerKind::Buzhash
/// [`Gear`]: ChunkerKind::Gear
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ChunkerKind {
    /// Cyclic-polynomial buzhash over an explicit window — digest-stable
    /// default.
    #[default]
    Buzhash,
    /// Gear hash (FastCDC-style), implicit 64-byte window, boundary tested
    /// on the fingerprint's *high* bits.
    Gear,
}

impl ChunkerKind {
    /// Stable lowercase name, stamped into benchmark reports.
    pub fn name(self) -> &'static str {
        match self {
            ChunkerKind::Buzhash => "buzhash",
            ChunkerKind::Gear => "gear",
        }
    }
}

/// How node boundaries are chosen.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SplitPolicy {
    /// Pure content-defined chunking — the configuration that makes the
    /// tree Structurally Invariant.
    Pattern,
    /// §5.5.1 ablation: force a split when a node reaches `max_node_bytes`
    /// without finding the pattern, and splice updates leaf-locally. The
    /// resulting structure depends on insertion order (non-SI).
    ForcedSplice { max_node_bytes: usize },
}

/// Full parameter set of one POS-Tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PosParams {
    /// q: a leaf boundary fires when the low `q` bits of the rolling
    /// fingerprint are all ones. Expected leaf size ≈ 2^q bytes.
    pub leaf_pattern_bits: u32,
    /// Internal boundary: low bits of the child digest (HashPattern) or of
    /// the rolling fingerprint (RollingWindow). Expected fanout ≈ 2^bits.
    pub internal_pattern_bits: u32,
    /// Sliding-window size in bytes (the Noms default of 67 per §5.6.2).
    /// Only consulted by the buzhash chunker; gear's window is implicit.
    pub window: usize,
    pub internal_chunking: InternalChunking,
    pub split_policy: SplitPolicy,
    pub chunker: ChunkerKind,
}

impl Default for PosParams {
    fn default() -> Self {
        // ≈1 KB leaves (2^10) and ≈2^5 = 32-way internal fanout: the
        // paper's §5 node-size tuning.
        PosParams {
            leaf_pattern_bits: 10,
            internal_pattern_bits: 5,
            window: 67,
            internal_chunking: InternalChunking::HashPattern,
            split_policy: SplitPolicy::Pattern,
            chunker: ChunkerKind::Buzhash,
        }
    }
}

impl PosParams {
    /// Target a different expected node size (Table 3 sweeps 512–4096 B).
    pub fn with_node_bytes(mut self, bytes: usize) -> Self {
        self.leaf_pattern_bits = (bytes.max(2) as f64).log2().round() as u32;
        self
    }

    /// Switch the sliding-window chunker. Changes every boundary and hence
    /// every digest — a tree must keep one chunker for its whole life.
    pub fn with_chunker(mut self, chunker: ChunkerKind) -> Self {
        self.chunker = chunker;
        self
    }

    /// Noms/Prolly configuration used in the §5.6.2 comparison: 4 KB nodes,
    /// 67-byte window, sliding-window hashing in internal layers.
    pub fn noms() -> Self {
        PosParams {
            leaf_pattern_bits: 12,
            internal_pattern_bits: 7,
            window: 67,
            internal_chunking: InternalChunking::RollingWindow,
            split_policy: SplitPolicy::Pattern,
            chunker: ChunkerKind::Buzhash,
        }
    }

    /// §5.5.1 non-structurally-invariant ablation: high pattern bits so the
    /// pattern rarely fires, low forced maximum.
    pub fn forced_split() -> Self {
        PosParams {
            leaf_pattern_bits: 13,
            internal_pattern_bits: 5,
            window: 67,
            internal_chunking: InternalChunking::HashPattern,
            split_policy: SplitPolicy::ForcedSplice { max_node_bytes: 2048 },
            chunker: ChunkerKind::Buzhash,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_target_1kb() {
        let p = PosParams::default();
        assert_eq!(p.leaf_pattern_bits, 10);
        assert_eq!(p.window, 67);
        assert_eq!(p.split_policy, SplitPolicy::Pattern);
    }

    #[test]
    fn node_size_mapping() {
        assert_eq!(PosParams::default().with_node_bytes(512).leaf_pattern_bits, 9);
        assert_eq!(PosParams::default().with_node_bytes(4096).leaf_pattern_bits, 12);
    }

    #[test]
    fn ablation_uses_forced_splits() {
        assert!(matches!(PosParams::forced_split().split_policy, SplitPolicy::ForcedSplice { .. }));
    }

    #[test]
    fn chunker_defaults_to_buzhash_everywhere() {
        // Digest stability: every pre-existing constructor must keep the
        // seed chunker.
        assert_eq!(PosParams::default().chunker, ChunkerKind::Buzhash);
        assert_eq!(PosParams::noms().chunker, ChunkerKind::Buzhash);
        assert_eq!(PosParams::forced_split().chunker, ChunkerKind::Buzhash);
        let gear = PosParams::default().with_chunker(ChunkerKind::Gear);
        assert_eq!(gear.chunker, ChunkerKind::Gear);
        assert_eq!(gear.chunker.name(), "gear");
    }
}
