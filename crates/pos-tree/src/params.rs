//! POS-Tree configuration.

/// How internal layers detect node boundaries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InternalChunking {
    /// POS-Tree proper: "directly use the hashes to match the boundary
    /// pattern instead of repeatedly computing the hashes within a sliding
    /// window" (§3.4.3) — one AND per child.
    HashPattern,
    /// Prolly-tree / Noms style: roll a sliding window over the serialized
    /// (key, hash) items, recomputing hashes per byte. "Such computational
    /// overhead causes inefficiency of its write operations" (§5.6.2).
    RollingWindow,
}

/// How node boundaries are chosen.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SplitPolicy {
    /// Pure content-defined chunking — the configuration that makes the
    /// tree Structurally Invariant.
    Pattern,
    /// §5.5.1 ablation: force a split when a node reaches `max_node_bytes`
    /// without finding the pattern, and splice updates leaf-locally. The
    /// resulting structure depends on insertion order (non-SI).
    ForcedSplice { max_node_bytes: usize },
}

/// Full parameter set of one POS-Tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PosParams {
    /// q: a leaf boundary fires when the low `q` bits of the rolling
    /// fingerprint are all ones. Expected leaf size ≈ 2^q bytes.
    pub leaf_pattern_bits: u32,
    /// Internal boundary: low bits of the child digest (HashPattern) or of
    /// the rolling fingerprint (RollingWindow). Expected fanout ≈ 2^bits.
    pub internal_pattern_bits: u32,
    /// Sliding-window size in bytes (the Noms default of 67 per §5.6.2).
    pub window: usize,
    pub internal_chunking: InternalChunking,
    pub split_policy: SplitPolicy,
}

impl Default for PosParams {
    fn default() -> Self {
        // ≈1 KB leaves (2^10) and ≈2^5 = 32-way internal fanout: the
        // paper's §5 node-size tuning.
        PosParams {
            leaf_pattern_bits: 10,
            internal_pattern_bits: 5,
            window: 67,
            internal_chunking: InternalChunking::HashPattern,
            split_policy: SplitPolicy::Pattern,
        }
    }
}

impl PosParams {
    /// Target a different expected node size (Table 3 sweeps 512–4096 B).
    pub fn with_node_bytes(mut self, bytes: usize) -> Self {
        self.leaf_pattern_bits = (bytes.max(2) as f64).log2().round() as u32;
        self
    }

    /// Noms/Prolly configuration used in the §5.6.2 comparison: 4 KB nodes,
    /// 67-byte window, sliding-window hashing in internal layers.
    pub fn noms() -> Self {
        PosParams {
            leaf_pattern_bits: 12,
            internal_pattern_bits: 7,
            window: 67,
            internal_chunking: InternalChunking::RollingWindow,
            split_policy: SplitPolicy::Pattern,
        }
    }

    /// §5.5.1 non-structurally-invariant ablation: high pattern bits so the
    /// pattern rarely fires, low forced maximum.
    pub fn forced_split() -> Self {
        PosParams {
            leaf_pattern_bits: 13,
            internal_pattern_bits: 5,
            window: 67,
            internal_chunking: InternalChunking::HashPattern,
            split_policy: SplitPolicy::ForcedSplice { max_node_bytes: 2048 },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_target_1kb() {
        let p = PosParams::default();
        assert_eq!(p.leaf_pattern_bits, 10);
        assert_eq!(p.window, 67);
        assert_eq!(p.split_policy, SplitPolicy::Pattern);
    }

    #[test]
    fn node_size_mapping() {
        assert_eq!(PosParams::default().with_node_bytes(512).leaf_pattern_bits, 9);
        assert_eq!(PosParams::default().with_node_bytes(4096).leaf_pattern_bits, 12);
    }

    #[test]
    fn ablation_uses_forced_splits() {
        assert!(matches!(PosParams::forced_split().split_policy, SplitPolicy::ForcedSplice { .. }));
    }
}
