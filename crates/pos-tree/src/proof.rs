//! POS-Tree Merkle proofs: the root→leaf page path under max-key routing,
//! plus the [`PagePool`] walkers behind range and batched proofs and the
//! [`PosProofScheme`] glue that plugs them into the anchored verifiers.

use std::ops::Bound;

use bytes::Bytes;
use siri_core::{
    bounds_contain, child_overlaps, Entry, PagePool, Proof, ProofScheme, ProofVerdict,
};
use siri_crypto::{sha256, Hash};

use crate::node::{route, Node};

pub(crate) fn verify(root: Hash, key: &[u8], proof: &Proof) -> ProofVerdict {
    if root.is_zero() {
        return if proof.is_empty() {
            ProofVerdict::Absent
        } else {
            ProofVerdict::Invalid("non-empty proof for empty tree")
        };
    }
    let pages = proof.pages();
    if pages.is_empty() {
        return ProofVerdict::Invalid("empty proof for non-empty tree");
    }
    let mut expected = root;
    for (depth, page) in pages.iter().enumerate() {
        if sha256(page) != expected {
            return ProofVerdict::Invalid("broken hash link");
        }
        let is_last = depth + 1 == pages.len();
        match Node::decode(page) {
            Ok(Node::Internal { children, .. }) => {
                if key > children.last().expect("non-empty").max_key.as_ref() {
                    // This (digest-checked) node already proves the key is
                    // larger than everything stored below it.
                    return if is_last {
                        ProofVerdict::Absent
                    } else {
                        ProofVerdict::Invalid("pages after proven absence")
                    };
                }
                if is_last {
                    return ProofVerdict::Invalid("proof ends at internal node");
                }
                expected = children[route(&children, key)].hash;
            }
            Ok(Node::Leaf { entries, .. }) => {
                if !is_last {
                    return ProofVerdict::Invalid("leaf before end of proof");
                }
                return match entries.binary_search_by(|e| e.key.as_ref().cmp(key)) {
                    Ok(i) => ProofVerdict::Present(Bytes::copy_from_slice(&entries[i].value)),
                    Err(_) => ProofVerdict::Absent,
                };
            }
            Err(_) => return ProofVerdict::Invalid("page undecodable"),
        }
    }
    ProofVerdict::Invalid("proof exhausted before a leaf")
}

/// One key's root→leaf re-walk through a shared page pool — the batched-
/// proof primitive. Termination needs no depth counter: every fetched page
/// hashes to the digest that referenced it, so a cycle would be a SHA-256
/// fixpoint.
pub(crate) fn verify_key_pages(root: Hash, key: &[u8], pool: &mut PagePool) -> ProofVerdict {
    if root.is_zero() {
        return ProofVerdict::Absent;
    }
    let mut expected = root;
    loop {
        let Some(page) = pool.get(&expected) else {
            return ProofVerdict::Invalid("missing page in proof");
        };
        match Node::decode_zc(&page) {
            Ok(Node::Internal { children, .. }) => {
                if key > children.last().expect("non-empty").max_key.as_ref() {
                    return ProofVerdict::Absent;
                }
                expected = children[route(&children, key)].hash;
            }
            Ok(Node::Leaf { entries, .. }) => {
                return match entries.binary_search_by(|e| e.key.as_ref().cmp(key)) {
                    Ok(i) => ProofVerdict::Present(entries[i].value.clone()),
                    Err(_) => ProofVerdict::Absent,
                };
            }
            Err(_) => return ProofVerdict::Invalid("page undecodable"),
        }
    }
}

/// Re-walk every subtree of `root` overlapping the bounds through the
/// pool, appending in-bounds entries in key order. Mirrors the prover's
/// pruning exactly via the shared [`child_overlaps`] predicate.
pub(crate) fn verify_range_pages(
    root: Hash,
    start: Bound<&[u8]>,
    end: Bound<&[u8]>,
    pool: &mut PagePool,
    out: &mut Vec<Entry>,
) -> Result<(), &'static str> {
    if root.is_zero() {
        return Ok(());
    }
    let Some(page) = pool.get(&root) else {
        return Err("missing page in proof");
    };
    match Node::decode_zc(&page).map_err(|_| "page undecodable")? {
        Node::Leaf { entries, .. } => {
            out.extend(entries.into_iter().filter(|e| bounds_contain(start, end, &e.key)));
            Ok(())
        }
        Node::Internal { children, .. } => {
            let mut prev: Option<Bytes> = None;
            for c in children {
                if child_overlaps(prev.as_deref(), &c.max_key, start, end) {
                    verify_range_pages(c.hash, start, end, pool, out)?;
                }
                prev = Some(c.max_key);
            }
            Ok(())
        }
    }
}

/// POS-Tree's [`ProofScheme`] — the dyn-safe handle clients verify with.
pub struct PosProofScheme;

impl ProofScheme for PosProofScheme {
    fn structure(&self) -> &'static str {
        "pos-tree"
    }

    fn verify_membership(&self, root: Hash, key: &[u8], proof: &Proof) -> ProofVerdict {
        verify(root, key, proof)
    }

    fn verify_key_pages(&self, root: Hash, key: &[u8], pool: &mut PagePool) -> ProofVerdict {
        verify_key_pages(root, key, pool)
    }

    fn verify_range_pages(
        &self,
        root: Hash,
        start: Bound<&[u8]>,
        end: Bound<&[u8]>,
        pool: &mut PagePool,
        out: &mut Vec<Entry>,
    ) -> Result<(), &'static str> {
        verify_range_pages(root, start, end, pool, out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{PosParams, PosTree};
    use siri_core::{Entry, MemStore, SiriIndex};

    fn tree() -> PosTree {
        let mut t = PosTree::new(MemStore::new_shared(), PosParams::default());
        t.batch_insert(
            (0..2000)
                .map(|i| Entry::new(format!("key{i:05}").into_bytes(), vec![(i % 251) as u8; 100]))
                .collect(),
        )
        .unwrap();
        t
    }

    #[test]
    fn presence_and_absence() {
        let t = tree();
        let p = t.prove(b"key01234").unwrap();
        match PosTree::verify_proof(t.root(), b"key01234", &p) {
            ProofVerdict::Present(v) => assert_eq!(v.len(), 100),
            other => panic!("expected Present, got {other:?}"),
        }
        let p = t.prove(b"key01234x").unwrap();
        assert_eq!(PosTree::verify_proof(t.root(), b"key01234x", &p), ProofVerdict::Absent);
    }

    #[test]
    fn tamper_detection_everywhere() {
        let t = tree();
        let proof = t.prove(b"key00999").unwrap();
        assert!(proof.len() >= 2);
        for page in 0..proof.len() {
            let mut p = proof.clone();
            p.tamper(page, 21);
            assert!(!PosTree::verify_proof(t.root(), b"key00999", &p).is_valid(), "page {page}");
        }
    }

    #[test]
    fn proofs_bound_to_root_version() {
        let t = tree();
        let v1 = t.clone();
        let mut v2 = t;
        v2.insert(b"key00999", bytes::Bytes::from_static(b"new")).unwrap();
        let p1 = v1.prove(b"key00999").unwrap();
        // The old proof must not verify the key against the *new* root.
        let verdict = PosTree::verify_proof(v2.root(), b"key00999", &p1);
        assert!(!verdict.is_valid());
    }

    #[test]
    fn empty_tree_proofs() {
        let t = PosTree::new(MemStore::new_shared(), PosParams::default());
        let p = t.prove(b"any").unwrap();
        assert_eq!(PosTree::verify_proof(t.root(), b"any", &p), ProofVerdict::Absent);
    }
}
