//! POS-Tree Merkle proofs: the root→leaf page path under max-key routing.

use bytes::Bytes;
use siri_core::{Proof, ProofVerdict};
use siri_crypto::{sha256, Hash};

use crate::node::{route, Node};

pub(crate) fn verify(root: Hash, key: &[u8], proof: &Proof) -> ProofVerdict {
    if root.is_zero() {
        return if proof.is_empty() {
            ProofVerdict::Absent
        } else {
            ProofVerdict::Invalid("non-empty proof for empty tree")
        };
    }
    let pages = proof.pages();
    if pages.is_empty() {
        return ProofVerdict::Invalid("empty proof for non-empty tree");
    }
    let mut expected = root;
    for (depth, page) in pages.iter().enumerate() {
        if sha256(page) != expected {
            return ProofVerdict::Invalid("broken hash link");
        }
        let is_last = depth + 1 == pages.len();
        match Node::decode(page) {
            Ok(Node::Internal { children, .. }) => {
                if key > children.last().expect("non-empty").max_key.as_ref() {
                    // This (digest-checked) node already proves the key is
                    // larger than everything stored below it.
                    return if is_last {
                        ProofVerdict::Absent
                    } else {
                        ProofVerdict::Invalid("pages after proven absence")
                    };
                }
                if is_last {
                    return ProofVerdict::Invalid("proof ends at internal node");
                }
                expected = children[route(&children, key)].hash;
            }
            Ok(Node::Leaf { entries, .. }) => {
                if !is_last {
                    return ProofVerdict::Invalid("leaf before end of proof");
                }
                return match entries.binary_search_by(|e| e.key.as_ref().cmp(key)) {
                    Ok(i) => ProofVerdict::Present(Bytes::copy_from_slice(&entries[i].value)),
                    Err(_) => ProofVerdict::Absent,
                };
            }
            Err(_) => return ProofVerdict::Invalid("page undecodable"),
        }
    }
    ProofVerdict::Invalid("proof exhausted before a leaf")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{PosParams, PosTree};
    use siri_core::{Entry, MemStore, SiriIndex};

    fn tree() -> PosTree {
        let mut t = PosTree::new(MemStore::new_shared(), PosParams::default());
        t.batch_insert(
            (0..2000)
                .map(|i| Entry::new(format!("key{i:05}").into_bytes(), vec![(i % 251) as u8; 100]))
                .collect(),
        )
        .unwrap();
        t
    }

    #[test]
    fn presence_and_absence() {
        let t = tree();
        let p = t.prove(b"key01234").unwrap();
        match PosTree::verify_proof(t.root(), b"key01234", &p) {
            ProofVerdict::Present(v) => assert_eq!(v.len(), 100),
            other => panic!("expected Present, got {other:?}"),
        }
        let p = t.prove(b"key01234x").unwrap();
        assert_eq!(PosTree::verify_proof(t.root(), b"key01234x", &p), ProofVerdict::Absent);
    }

    #[test]
    fn tamper_detection_everywhere() {
        let t = tree();
        let proof = t.prove(b"key00999").unwrap();
        assert!(proof.len() >= 2);
        for page in 0..proof.len() {
            let mut p = proof.clone();
            p.tamper(page, 21);
            assert!(!PosTree::verify_proof(t.root(), b"key00999", &p).is_valid(), "page {page}");
        }
    }

    #[test]
    fn proofs_bound_to_root_version() {
        let t = tree();
        let v1 = t.clone();
        let mut v2 = t;
        v2.insert(b"key00999", bytes::Bytes::from_static(b"new")).unwrap();
        let p1 = v1.prove(b"key00999").unwrap();
        // The old proof must not verify the key against the *new* root.
        let verdict = PosTree::verify_proof(v2.root(), b"key00999", &p1);
        assert!(!verdict.is_valid());
    }

    #[test]
    fn empty_tree_proofs() {
        let t = PosTree::new(MemStore::new_shared(), PosParams::default());
        let p = t.prove(b"any").unwrap();
        assert_eq!(PosTree::verify_proof(t.root(), b"any", &p), ProofVerdict::Absent);
    }
}
