//! Tree construction and incremental copy-on-write commits.
//!
//! Two update paths, both consuming normalized [`BatchOp`]s (puts *and*
//! deletes):
//!
//! * [`streaming_update`] — the sound POS-Tree algorithm. The old tree is
//!   walked in key order; untouched nodes *pass through* wholesale whenever
//!   every builder at their level and below sits on a node boundary, and
//!   are re-chunked item-by-item otherwise (the resync staircase around
//!   each edit cluster). Because boundary decisions reset at node starts,
//!   the result is bit-identical to a from-scratch build of the merged
//!   content — Structurally Invariant, at O(edit-clusters × fanout ×
//!   height) cost instead of O(N). This mirrors §3.4.3's insert: "starts
//!   the boundary detection from the first byte of the leaf node, and stops
//!   when detecting an existing boundary". Deletion needs no extra
//!   machinery: the removed entry's bytes simply never feed the chunker, so
//!   the boundary pattern re-synchronizes across the removed entry's old
//!   node boundary exactly as it does for an overwrite — and
//!   delete-then-reinsert reproduces the original chunks bit-for-bit.
//!
//! * [`splice_update`] — the §5.5.1 ablation. Edits are applied leaf-
//!   locally and nodes are re-chunked only within their old extent, so
//!   boundaries never migrate across old node ends. Cheap, but the
//!   structure now depends on insertion history — deliberately non-SI.

use siri_core::{apply_ops, BatchOp, Entry, IndexError, Result};
use siri_crypto::Hash;
use siri_store::SharedStore;

use crate::builder::{Builders, Item, LevelBuilder};
use crate::node::{Node, Piece};
use crate::params::PosParams;

fn fetch(store: &SharedStore, hash: &Hash) -> Result<Node> {
    let page = store.try_get(hash)?.ok_or(IndexError::MissingPage(*hash))?;
    Node::decode_zc(&page)
}

/// Level of a node (0 = leaf).
fn node_level(node: &Node) -> u32 {
    match node {
        Node::Leaf { .. } => 0,
        Node::Internal { level, .. } => *level,
    }
}

/// Build a tree from scratch out of sorted unique entries.
pub(crate) fn build_from_entries(
    store: &SharedStore,
    params: &PosParams,
    salt: u64,
    entries: &[Entry],
) -> Result<Option<Piece>> {
    let mut builders = Builders::new(store, params, salt);
    for e in entries {
        builders.push(0, Item::Entry(e.clone()))?;
    }
    builders.finalize()
}

/// Streaming update: walk the old tree, replaying content through the
/// builder pipeline with pass-through. `edits` must be normalized (sorted,
/// key-unique); deletes drop entries from the replay stream.
pub(crate) fn streaming_update(
    store: &SharedStore,
    params: &PosParams,
    salt: u64,
    root: Hash,
    edits: &[BatchOp],
) -> Result<Option<Piece>> {
    if root.is_zero() {
        return build_from_entries(store, params, salt, &apply_ops(&[], edits));
    }
    if edits.is_empty() {
        let node = fetch(store, &root)?;
        let max_key = node.max_key().ok_or(IndexError::CorruptStructure("empty root"))?;
        return Ok(Some(Piece { max_key, hash: root }));
    }
    let mut builders = Builders::new(store, params, salt);
    let root_node = fetch(store, &root)?;
    process(store, &mut builders, &root_node, edits, true)?;
    builders.finalize()
}

/// Feed one old subtree (with its pending edits) into the builders.
///
/// `rightmost` marks the old tree's rightmost spine: those nodes were
/// closed by end-of-stream rather than by the pattern, so re-feeding their
/// content would *not* reproduce a boundary at their end — they must never
/// pass through mid-stream.
fn process(
    store: &SharedStore,
    builders: &mut Builders<'_>,
    node: &Node,
    edits: &[BatchOp],
    rightmost: bool,
) -> Result<()> {
    match node {
        Node::Leaf { entries, .. } => {
            for e in apply_ops(entries, edits) {
                builders.push(0, Item::Entry(e))?;
            }
            Ok(())
        }
        Node::Internal { children, level, .. } => {
            let mut rest = edits;
            for (slot, piece) in children.iter().enumerate() {
                let last = slot + 1 == children.len();
                let split = if last {
                    rest.len() // clamp beyond-max edits into the last child
                } else {
                    rest.partition_point(|e| e.key <= piece.max_key)
                };
                let (mine, remaining) = rest.split_at(split);
                rest = remaining;

                let child_rightmost = rightmost && last;
                let child_level = level - 1;
                if mine.is_empty() && !child_rightmost && builders.clean_below(child_level)? {
                    // Untouched, pattern-closed, and the pipeline is on a
                    // boundary: reuse the node wholesale.
                    builders.pass_through(child_level, piece.clone())?;
                } else {
                    let child = fetch(store, &piece.hash)?;
                    if node_level(&child) != child_level {
                        return Err(IndexError::CorruptStructure("level mismatch"));
                    }
                    process(store, builders, &child, mine, child_rightmost)?;
                }
            }
            debug_assert!(rest.is_empty());
            Ok(())
        }
    }
}

/// §5.5.1 splice update: rebuild only within old node extents.
pub(crate) fn splice_update(
    store: &SharedStore,
    params: &PosParams,
    salt: u64,
    root: Hash,
    edits: &[BatchOp],
) -> Result<Option<Piece>> {
    if root.is_zero() {
        return build_from_entries(store, params, salt, &apply_ops(&[], edits));
    }
    if edits.is_empty() {
        let node = fetch(store, &root)?;
        let max_key = node.max_key().ok_or(IndexError::CorruptStructure("empty root"))?;
        return Ok(Some(Piece { max_key, hash: root }));
    }
    let root_node = fetch(store, &root)?;
    let mut pieces = splice_rec(store, params, salt, &root_node, edits)?;
    // If the root burst into several pieces, grow extra levels locally.
    let mut level = node_level(&root_node);
    while pieces.len() > 1 {
        level += 1;
        pieces = chunk_pieces(store, params, salt, level, pieces)?;
    }
    Ok(pieces.pop())
}

fn splice_rec(
    store: &SharedStore,
    params: &PosParams,
    salt: u64,
    node: &Node,
    edits: &[BatchOp],
) -> Result<Vec<Piece>> {
    match node {
        Node::Leaf { entries, .. } => {
            let merged = apply_ops(entries, edits);
            let mut b = LevelBuilder::new(0, salt, params);
            let mut out = Vec::new();
            for e in merged {
                if let Some(p) = b.push(Item::Entry(e), store)? {
                    out.push(p);
                }
            }
            if let Some(p) = b.finish(store)? {
                out.push(p);
            }
            Ok(out)
        }
        Node::Internal { children, level, .. } => {
            let mut rest = edits;
            let mut new_children: Vec<Piece> = Vec::with_capacity(children.len() + 2);
            for (slot, piece) in children.iter().enumerate() {
                let last = slot + 1 == children.len();
                let split = if last {
                    rest.len()
                } else {
                    rest.partition_point(|e| e.key <= piece.max_key)
                };
                let (mine, remaining) = rest.split_at(split);
                rest = remaining;
                if mine.is_empty() {
                    new_children.push(piece.clone());
                } else {
                    let child = fetch(store, &piece.hash)?;
                    new_children.extend(splice_rec(store, params, salt, &child, mine)?);
                }
            }
            chunk_pieces(store, params, salt, *level, new_children)
        }
    }
}

/// Chunk a list of pieces into internal nodes of `level` with a local
/// builder (splice semantics: no spill beyond this list).
fn chunk_pieces(
    store: &SharedStore,
    params: &PosParams,
    salt: u64,
    level: u32,
    pieces: Vec<Piece>,
) -> Result<Vec<Piece>> {
    let mut b = LevelBuilder::new(level, salt, params);
    let mut out = Vec::new();
    for p in pieces {
        if let Some(sealed) = b.push(Item::Ref(p), store)? {
            out.push(sealed);
        }
    }
    if let Some(sealed) = b.finish(store)? {
        out.push(sealed);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use siri_core::MemStore;

    fn entries(range: std::ops::Range<usize>) -> Vec<Entry> {
        range
            .map(|i| Entry::new(format!("key{i:06}").into_bytes(), vec![(i % 251) as u8; 120]))
            .collect()
    }

    /// Same keys, different payloads — real overwrites, not no-ops.
    fn edits(range: std::ops::Range<usize>) -> Vec<Entry> {
        range.map(|i| Entry::new(format!("key{i:06}").into_bytes(), vec![0xEE; 90])).collect()
    }

    /// Entries → normalized put ops.
    fn puts(entries: &[Entry]) -> Vec<BatchOp> {
        entries
            .iter()
            .map(|e| BatchOp { key: e.key.clone(), value: Some(e.value.clone()) })
            .collect()
    }

    /// Keys → normalized delete ops.
    fn dels(range: std::ops::Range<usize>) -> Vec<BatchOp> {
        range
            .map(|i| BatchOp { key: format!("key{i:06}").into_bytes().into(), value: None })
            .collect()
    }

    #[test]
    fn streaming_update_equals_fresh_build() {
        let store = MemStore::new_shared();
        let params = PosParams::default();
        let base = entries(0..3000);
        let root = build_from_entries(&store, &params, 0, &base).unwrap().unwrap();

        // Three very different edit shapes: point overwrite, cluster
        // overwrite, appended tail — each with changed payloads.
        for edit_range in [100..101, 1500..1540, 3000..3100] {
            let delta = puts(&edits(edit_range.clone()));
            let updated = streaming_update(&store, &params, 0, root.hash, &delta).unwrap().unwrap();
            let merged = apply_ops(&base, &delta);
            let fresh = build_from_entries(&store, &params, 0, &merged).unwrap().unwrap();
            assert_ne!(updated.hash, root.hash, "edits must change the digest");
            assert_eq!(
                updated.hash, fresh.hash,
                "structural invariance broken for edits {edit_range:?}"
            );
        }
    }

    #[test]
    fn chained_updates_remain_invariant() {
        let store = MemStore::new_shared();
        let params = PosParams::default();
        let mut root =
            build_from_entries(&store, &params, 0, &entries(0..1000)).unwrap().unwrap().hash;
        let mut all = entries(0..1000);
        for step in 0..5 {
            let delta = puts(&edits(step * 400..step * 400 + 37));
            root = streaming_update(&store, &params, 0, root, &delta).unwrap().unwrap().hash;
            all = apply_ops(&all, &delta);
        }
        let fresh = build_from_entries(&store, &params, 0, &all).unwrap().unwrap();
        assert_eq!(root, fresh.hash);
    }

    #[test]
    fn update_touches_few_pages() {
        let store = MemStore::new_shared();
        let params = PosParams::default();
        let base = entries(0..20_000);
        let root = build_from_entries(&store, &params, 0, &base).unwrap().unwrap();
        let puts_before = store.stats().puts;
        let delta = puts(&edits(7000..7001));
        streaming_update(&store, &params, 0, root.hash, &delta).unwrap();
        let puts = store.stats().puts - puts_before;
        // One edit must rewrite O(resync-window × height) pages, far fewer
        // than the ~2400 pages of the whole tree.
        assert!(puts < 200, "point update wrote {puts} pages");
    }

    #[test]
    fn update_into_empty_tree_builds() {
        let store = MemStore::new_shared();
        let params = PosParams::default();
        let piece = streaming_update(&store, &params, 0, Hash::ZERO, &puts(&entries(0..10)))
            .unwrap()
            .unwrap();
        assert_eq!(piece.max_key.as_ref(), b"key000009");
    }

    #[test]
    fn empty_edit_batch_is_identity() {
        let store = MemStore::new_shared();
        let params = PosParams::default();
        let root = build_from_entries(&store, &params, 0, &entries(0..500)).unwrap().unwrap();
        let same = streaming_update(&store, &params, 0, root.hash, &[]).unwrap().unwrap();
        assert_eq!(same.hash, root.hash);
    }

    #[test]
    fn streaming_delete_re_chunks_to_the_fresh_build() {
        let store = MemStore::new_shared();
        let params = PosParams::default();
        let base = entries(0..3000);
        let root = build_from_entries(&store, &params, 0, &base).unwrap().unwrap();

        // Delete shapes: a point, a cluster spanning node boundaries, the
        // tail, and a no-op (absent keys).
        for del_range in [100..101, 1500..1560, 2900..3000, 5000..5010] {
            let delta = dels(del_range.clone());
            let updated = streaming_update(&store, &params, 0, root.hash, &delta).unwrap();
            let remaining = apply_ops(&base, &delta);
            let fresh = build_from_entries(&store, &params, 0, &remaining).unwrap();
            assert_eq!(
                updated.map(|p| p.hash),
                fresh.map(|p| p.hash),
                "delete re-chunking broken for {del_range:?}"
            );
        }

        // Deleting everything collapses to the empty tree.
        let all_deleted = streaming_update(&store, &params, 0, root.hash, &dels(0..3000)).unwrap();
        assert!(all_deleted.is_none());
    }

    #[test]
    fn gear_chunker_is_structurally_invariant_and_distinct() {
        use crate::params::ChunkerKind;
        let store = MemStore::new_shared();
        let gear = PosParams::default().with_chunker(ChunkerKind::Gear);
        let base = entries(0..3000);

        // Gear trees must be SI exactly like buzhash trees: streaming
        // updates land on the fresh-build digest.
        let root = build_from_entries(&store, &gear, 0, &base).unwrap().unwrap();
        for edit_range in [100..101, 1500..1540, 3000..3100] {
            let delta = puts(&edits(edit_range.clone()));
            let updated = streaming_update(&store, &gear, 0, root.hash, &delta).unwrap().unwrap();
            let merged = apply_ops(&base, &delta);
            let fresh = build_from_entries(&store, &gear, 0, &merged).unwrap().unwrap();
            assert_eq!(updated.hash, fresh.hash, "gear SI broken for edits {edit_range:?}");
        }

        // Different chunker ⇒ different boundaries ⇒ different digests —
        // which is why gear is opt-in, not a drop-in swap.
        let buz = build_from_entries(&store, &PosParams::default(), 0, &base).unwrap().unwrap();
        assert_ne!(root.hash, buz.hash, "gear and buzhash trees must not collide");

        // And gear builds are deterministic across stores.
        let other = MemStore::new_shared();
        let again = build_from_entries(&other, &gear, 0, &base).unwrap().unwrap();
        assert_eq!(root.hash, again.hash);
    }

    #[test]
    fn gear_delete_re_chunks_to_the_fresh_build() {
        use crate::params::ChunkerKind;
        let store = MemStore::new_shared();
        let gear = PosParams::default().with_chunker(ChunkerKind::Gear);
        let base = entries(0..2000);
        let root = build_from_entries(&store, &gear, 0, &base).unwrap().unwrap();
        for del_range in [50..51, 900..960, 1900..2000] {
            let delta = dels(del_range.clone());
            let updated = streaming_update(&store, &gear, 0, root.hash, &delta).unwrap();
            let remaining = apply_ops(&base, &delta);
            let fresh = build_from_entries(&store, &gear, 0, &remaining).unwrap();
            assert_eq!(
                updated.map(|p| p.hash),
                fresh.map(|p| p.hash),
                "gear delete re-chunking broken for {del_range:?}"
            );
        }
    }

    #[test]
    fn splice_update_is_correct_but_order_dependent() {
        let store = MemStore::new_shared();
        let params = PosParams::forced_split();
        let base = entries(0..800);
        let root = build_from_entries(&store, &params, 0, &base).unwrap().unwrap();

        // Content correctness: updated tree contains the merged entries.
        let delta = puts(&edits(100..140));
        let updated = splice_update(&store, &params, 0, root.hash, &delta).unwrap().unwrap();
        let merged = apply_ops(&base, &delta);
        let fresh = build_from_entries(&store, &params, 0, &merged).unwrap().unwrap();
        // Order dependence: incremental generally ≠ fresh for forced splits.
        // (Not guaranteed for every dataset, but engineered to hold here:
        // forced boundaries dominate with these parameters.)
        assert_ne!(updated.hash, fresh.hash, "ablation must break structural invariance");
    }
}
