//! Bottom-up tree construction: boundary judges and the per-level builder
//! pipeline.
//!
//! Each level of the tree has a [`LevelBuilder`] holding the items of the
//! node currently being formed. When the boundary judge fires (or the
//! forced maximum is hit), the node is sealed, stored, and its
//! [`Piece`] cascades as an item into the builder one level up — the
//! "bottom-up build order" whose batching advantage §5.2/§5.3.1 highlight.
//!
//! Builders also support *pass-through*: an untouched old node can be
//! re-used wholesale when every builder at its level and below is sitting
//! exactly on a node boundary. Because chunking state resets at node
//! starts, the chunker would provably reproduce the same node — this is
//! what makes incremental updates O(polylog) instead of O(N) while keeping
//! the tree Structurally Invariant.

use bytes::Bytes;
use siri_core::{entry_codec, Entry, Result};
use siri_crypto::{GearHash, Hash, RollingHash, GEAR_WINDOW};
use siri_encoding::{ByteWriter, Scratch};
use siri_store::SharedStore;

use crate::node::{Node, Piece};
use crate::params::{ChunkerKind, InternalChunking, PosParams, SplitPolicy};

/// Leaves queued for one multi-lane hash+store round. Small enough that a
/// resync flush mid-update wastes little batching, large enough to fill the
/// SHA-256 lanes on a fresh build.
const LEAF_BATCH: usize = 8;

/// An item flowing through a level: an entry (level 0) or a child piece.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Item {
    Entry(Entry),
    Ref(Piece),
}

impl Item {
    pub fn key(&self) -> &Bytes {
        match self {
            Item::Entry(e) => &e.key,
            Item::Ref(p) => &p.max_key,
        }
    }
}

/// Content-defined boundary detector for one level.
enum Judge {
    /// Roll a window over item bytes; fire when the low `bits` of the
    /// fingerprint are all ones (the paper's example pattern).
    Roller { roller: RollingHash, mask: u64 },
    /// Gear fast path: implicit 64-byte window, one table lookup + shift +
    /// add per byte, boundary tested on the fingerprint's *high* bits, and
    /// min-chunk cut-point skipping (FastCDC): no byte before `min_test`
    /// can end a node, so bytes more than a gear window before it are not
    /// even hashed. `fed` counts bytes since the node start, which keeps the
    /// decision a pure function of the node-local stream — the structural-
    /// invariance requirement.
    Gear { gear: GearHash, mask: u64, min_test: usize, fed: usize },
    /// Test the low bits of the child digest directly (§3.4.3's
    /// optimization for internal layers).
    HashBits { mask: u64 },
}

impl Judge {
    fn leaf(params: &PosParams) -> Judge {
        Judge::rolling(params, params.leaf_pattern_bits)
    }

    fn internal(params: &PosParams) -> Judge {
        match params.internal_chunking {
            InternalChunking::HashPattern => {
                Judge::HashBits { mask: (1u64 << params.internal_pattern_bits) - 1 }
            }
            InternalChunking::RollingWindow => Judge::rolling(params, params.internal_pattern_bits),
        }
    }

    /// Sliding-window judge firing with probability 2^-bits per byte.
    fn rolling(params: &PosParams, bits: u32) -> Judge {
        match params.chunker {
            ChunkerKind::Buzhash => {
                Judge::Roller { roller: RollingHash::new(params.window), mask: (1u64 << bits) - 1 }
            }
            ChunkerKind::Gear => Judge::Gear {
                gear: GearHash::new(),
                mask: GearHash::mask_high(bits),
                // Expected node 2^bits bytes; skip the first quarter (but
                // never less than the warm-up window).
                min_test: ((1usize << bits) / 4).max(GEAR_WINDOW as usize),
                fed: 0,
            },
        }
    }

    /// Feed one item; true if a boundary fires at (or within) it.
    /// `buf` is a caller-owned scratch for item serialization, reused
    /// across every item of the level.
    fn feed(&mut self, item: &Item, buf: &mut ByteWriter) -> bool {
        if let Judge::HashBits { mask } = self {
            return match item {
                Item::Ref(p) => p.hash.low64() & *mask == *mask,
                Item::Entry(_) => unreachable!("hash judge on leaf level"),
            };
        }
        // Serialize once; both rolling judges consume the same byte stream
        // (entry framing for leaves, max_key ++ digest for refs — exactly
        // the bytes the node codec will emit).
        buf.clear();
        match item {
            Item::Entry(e) => entry_codec::write_entry(buf, e),
            Item::Ref(p) => {
                buf.put_raw(&p.max_key);
                buf.put_raw(p.hash.as_bytes());
            }
        }
        let mut fired = false;
        match self {
            Judge::Roller { roller, mask } => {
                for &b in buf.as_slice() {
                    roller.push(b);
                    // Only a fully-populated window counts: a cold
                    // window right after a node boundary would make the
                    // decision depend on too few bytes — in the worst
                    // case firing deterministically inside a repeated
                    // max-key prefix and growing an unbounded tower of
                    // single-child nodes.
                    if roller.is_warm() && roller.fingerprint() & *mask == *mask {
                        fired = true;
                    }
                }
            }
            Judge::Gear { gear, mask, min_test, fed } => {
                for &b in buf.as_slice() {
                    *fed += 1;
                    // Bytes ending more than a gear window before the first
                    // testable position can never influence a tested
                    // fingerprint — skip the hash entirely.
                    if *fed + GEAR_WINDOW as usize <= *min_test {
                        continue;
                    }
                    gear.push(b);
                    if *fed >= *min_test && gear.is_warm() && gear.fingerprint() & *mask == *mask {
                        fired = true;
                    }
                }
            }
            Judge::HashBits { .. } => unreachable!("handled above"),
        }
        fired
    }

    fn reset(&mut self) {
        match self {
            Judge::Roller { roller, .. } => roller.reset(),
            Judge::Gear { gear, fed, .. } => {
                gear.reset();
                *fed = 0;
            }
            Judge::HashBits { .. } => {}
        }
    }
}

/// A node sealed by the chunker but not yet hashed or stored: its encoded
/// page plus the max key its parent reference needs. Queued so sibling
/// leaves can be hashed together through the multi-lane SHA-256 backend.
pub struct DeferredSeal {
    pub max_key: Bytes,
    pub page: Bytes,
}

/// Builds the nodes of one level.
pub struct LevelBuilder {
    level: u32,
    salt: u64,
    judge: Judge,
    items: Vec<Item>,
    bytes_in_node: usize,
    forced_max: Option<usize>,
    /// Judge serialization scratch, reused across items (no per-entry
    /// allocation on the feed path).
    feed_buf: ByteWriter,
    /// Page encoding scratch for immediate seals: dedup hits never
    /// materialize an owned page at all.
    page_buf: Scratch,
}

impl LevelBuilder {
    pub fn new(level: u32, salt: u64, params: &PosParams) -> Self {
        let judge = if level == 0 { Judge::leaf(params) } else { Judge::internal(params) };
        let forced_max = match params.split_policy {
            SplitPolicy::Pattern => None,
            SplitPolicy::ForcedSplice { max_node_bytes } => Some(max_node_bytes),
        };
        LevelBuilder {
            level,
            salt,
            judge,
            items: Vec::new(),
            bytes_in_node: 0,
            forced_max,
            feed_buf: ByteWriter::new(),
            page_buf: Scratch::new(),
        }
    }

    /// No node currently under construction.
    pub fn at_boundary(&self) -> bool {
        self.items.is_empty()
    }

    pub fn pending_items(&self) -> &[Item] {
        &self.items
    }

    /// Feed and buffer one item; true when a boundary fires at it.
    fn absorb(&mut self, item: Item) -> bool {
        let fired = self.judge.feed(&item, &mut self.feed_buf);
        self.bytes_in_node += match &item {
            Item::Entry(e) => entry_codec::entry_encoded_len(e),
            Item::Ref(p) => p.max_key.len() + Hash::LEN,
        };
        self.items.push(item);
        fired || self.forced_max.is_some_and(|max| self.bytes_in_node >= max)
    }

    /// Push one item; returns the sealed node's piece if a boundary fired.
    pub fn push(&mut self, item: Item, store: &SharedStore) -> Result<Option<Piece>> {
        if self.absorb(item) {
            Ok(Some(self.seal(store)?))
        } else {
            Ok(None)
        }
    }

    /// Push one item, deferring storage: a fired boundary yields the
    /// encoded page for the caller to hash/store in a batch.
    pub fn push_deferred(&mut self, item: Item) -> Option<DeferredSeal> {
        if self.absorb(item) {
            Some(self.seal_deferred())
        } else {
            None
        }
    }

    /// Seal the trailing node at end of stream, if any.
    pub fn finish(&mut self, store: &SharedStore) -> Result<Option<Piece>> {
        if self.items.is_empty() {
            Ok(None)
        } else {
            Ok(Some(self.seal(store)?))
        }
    }

    /// Deferred-storage counterpart of [`LevelBuilder::finish`].
    pub fn finish_deferred(&mut self) -> Option<DeferredSeal> {
        if self.items.is_empty() {
            None
        } else {
            Some(self.seal_deferred())
        }
    }

    /// Drain the buffered items into a node and reset chunker state.
    fn take_node(&mut self) -> Node {
        let items = std::mem::take(&mut self.items);
        self.bytes_in_node = 0;
        self.judge.reset();
        if self.level == 0 {
            let entries = items
                .into_iter()
                .map(|i| match i {
                    Item::Entry(e) => e,
                    Item::Ref(_) => unreachable!("ref at leaf level"),
                })
                .collect();
            Node::Leaf { salt: self.salt, entries }
        } else {
            let children = items
                .into_iter()
                .map(|i| match i {
                    Item::Ref(p) => p,
                    Item::Entry(_) => unreachable!("entry at internal level"),
                })
                .collect();
            Node::Internal { salt: self.salt, level: self.level, children }
        }
    }

    fn seal(&mut self, store: &SharedStore) -> Result<Piece> {
        let node = self.take_node();
        let max_key = node.max_key().expect("sealed nodes are non-empty");
        let w = self.page_buf.start();
        w.reserve_total(node.encoded_len());
        node.encode_into(w);
        let hash = store.try_put_raw(self.page_buf.bytes())?;
        Ok(Piece { max_key, hash })
    }

    fn seal_deferred(&mut self) -> DeferredSeal {
        let node = self.take_node();
        let max_key = node.max_key().expect("sealed nodes are non-empty");
        DeferredSeal { max_key, page: node.encode() }
    }
}

/// The full builder pipeline, one [`LevelBuilder`] per level, with cascade
/// and pass-through plumbing.
pub struct Builders<'a> {
    store: &'a SharedStore,
    params: &'a PosParams,
    salt: u64,
    levels: Vec<LevelBuilder>,
    /// Leaves sealed by the chunker but not yet hashed/stored. Drained in
    /// stream order through one `try_put_many` per batch so sibling pages
    /// hit the multi-lane SHA-256 backend together.
    pending_leaves: Vec<DeferredSeal>,
}

impl<'a> Builders<'a> {
    pub fn new(store: &'a SharedStore, params: &'a PosParams, salt: u64) -> Self {
        Builders { store, params, salt, levels: Vec::new(), pending_leaves: Vec::new() }
    }

    fn ensure_level(&mut self, level: u32) {
        while self.levels.len() <= level as usize {
            self.levels.push(LevelBuilder::new(self.levels.len() as u32, self.salt, self.params));
        }
    }

    /// Feed one item into `level`, cascading sealed nodes upward. Sealed
    /// leaves queue for batched hashing; anything entering level 1 or above
    /// drains the queue first so items arrive in stream order.
    pub fn push(&mut self, level: u32, item: Item) -> Result<()> {
        if level == 0 {
            self.ensure_level(0);
            if let Some(sealed) = self.levels[0].push_deferred(item) {
                self.pending_leaves.push(sealed);
                if self.pending_leaves.len() >= LEAF_BATCH {
                    self.flush_leaves()?;
                }
            }
            return Ok(());
        }
        self.flush_leaves()?;
        self.ensure_level(level);
        if let Some(piece) = self.levels[level as usize].push(item, self.store)? {
            self.push(level + 1, Item::Ref(piece))?;
        }
        Ok(())
    }

    /// Hash and store every queued leaf in one multi-lane round, then
    /// cascade their references upward in stream order.
    fn flush_leaves(&mut self) -> Result<()> {
        if self.pending_leaves.is_empty() {
            return Ok(());
        }
        let batch = std::mem::take(&mut self.pending_leaves);
        let pages: Vec<Bytes> = batch.iter().map(|s| s.page.clone()).collect();
        let hashes = self.store.try_put_many(&pages)?;
        for (sealed, hash) in batch.into_iter().zip(hashes) {
            // Re-entrant push(1, ..) sees an empty queue, so this cannot
            // loop.
            self.push(1, Item::Ref(Piece { max_key: sealed.max_key, hash }))?;
        }
        Ok(())
    }

    /// Non-mutating boundary check; only meaningful once queued leaves have
    /// been drained (their cascade can still close or reopen upper nodes).
    fn boundaries_clean(&self, level: u32) -> bool {
        self.levels.iter().take(level as usize + 1).all(LevelBuilder::at_boundary)
    }

    /// All builders at `level` and below sit exactly on node boundaries —
    /// the pass-through precondition. Drains the leaf queue first so the
    /// answer reflects the true pipeline state.
    pub fn clean_below(&mut self, level: u32) -> Result<bool> {
        self.flush_leaves()?;
        Ok(self.boundaries_clean(level))
    }

    /// Re-use an untouched old node of `level` wholesale. Caller must have
    /// checked [`Builders::clean_below`]`(level)`.
    pub fn pass_through(&mut self, level: u32, piece: Piece) -> Result<()> {
        self.flush_leaves()?;
        debug_assert!(self.boundaries_clean(level), "pass-through requires clean builders");
        self.push(level + 1, Item::Ref(piece))
    }

    /// Seal every trailing node bottom-up and collapse to the root piece.
    /// `None` means the tree is empty.
    ///
    /// Invariant exploited: whenever the *top* builder holds exactly one
    /// pending child reference once all lower levels are sealed, that child
    /// is the root — wrapping it would create a useless single-child chain
    /// (and break structural invariance, since chain length would depend on
    /// history).
    pub fn finalize(mut self) -> Result<Option<Piece>> {
        // Seal the trailing leaf and drain the queue so level 1 holds every
        // leaf reference before the upward sweep.
        if let Some(l0) = self.levels.first_mut() {
            if let Some(sealed) = l0.finish_deferred() {
                self.pending_leaves.push(sealed);
            }
        }
        self.flush_leaves()?;
        let mut level = 1usize;
        while level < self.levels.len() {
            let is_top = level + 1 == self.levels.len();
            if is_top {
                if let [Item::Ref(piece)] = self.levels[level].pending_items() {
                    return Ok(Some(piece.clone()));
                }
            }
            if let Some(piece) = self.levels[level].finish(self.store)? {
                self.push(level as u32 + 1, Item::Ref(piece))?;
            }
            level += 1;
        }
        Ok(None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use siri_core::MemStore;

    fn entries(n: usize) -> Vec<Entry> {
        (0..n).map(|i| Entry::new(format!("key{i:06}").into_bytes(), vec![0xAB; 100])).collect()
    }

    fn build(store: &SharedStore, params: &PosParams, es: &[Entry]) -> Option<Piece> {
        let mut b = Builders::new(store, params, 0);
        for e in es {
            b.push(0, Item::Entry(e.clone())).unwrap();
        }
        b.finalize().unwrap()
    }

    #[test]
    fn empty_build_yields_none() {
        let store = MemStore::new_shared();
        assert!(build(&store, &PosParams::default(), &[]).is_none());
    }

    #[test]
    fn single_entry_yields_single_leaf_root() {
        let store = MemStore::new_shared();
        let es = entries(1);
        let piece = build(&store, &PosParams::default(), &es).unwrap();
        let node = Node::decode(&store.get(&piece.hash).unwrap()).unwrap();
        assert!(matches!(node, Node::Leaf { .. }));
    }

    #[test]
    fn large_build_produces_multiple_levels_with_expected_node_sizes() {
        let store = MemStore::new_shared();
        let es = entries(4000); // ~430 KB of payload, ~1 KB target nodes
        let root = build(&store, &PosParams::default(), &es).unwrap();
        let root_node = Node::decode(&store.get(&root.hash).unwrap()).unwrap();
        assert!(matches!(root_node, Node::Internal { .. }));

        // Expected leaf size 2^10 = 1024 bytes; check the average is within
        // a loose band (probabilistic balance, §3.4.3).
        let stats = store.stats();
        let avg_page = stats.unique_bytes as f64 / stats.unique_pages as f64;
        assert!(
            avg_page > 300.0 && avg_page < 4000.0,
            "average page size {avg_page} outside sanity band"
        );
    }

    #[test]
    fn builds_are_deterministic() {
        let s1 = MemStore::new_shared();
        let s2 = MemStore::new_shared();
        let es = entries(2000);
        let r1 = build(&s1, &PosParams::default(), &es).unwrap();
        let r2 = build(&s2, &PosParams::default(), &es).unwrap();
        assert_eq!(r1.hash, r2.hash);
    }

    #[test]
    fn forced_split_caps_node_size() {
        let store = MemStore::new_shared();
        let params = PosParams::forced_split();
        let es = entries(500);
        let root = build(&store, &params, &es).unwrap();
        // Walk all leaves; none may exceed max_node_bytes by more than one
        // entry's worth.
        let SplitPolicy::ForcedSplice { max_node_bytes } = params.split_policy else {
            unreachable!()
        };
        let mut stack = vec![root.hash];
        while let Some(h) = stack.pop() {
            let page = store.get(&h).unwrap();
            match Node::decode(&page).unwrap() {
                Node::Internal { children, .. } => stack.extend(children.iter().map(|c| c.hash)),
                Node::Leaf { entries, .. } => {
                    let bytes: usize =
                        entries.iter().map(siri_core::entry_codec::entry_encoded_len).sum();
                    assert!(bytes <= max_node_bytes + 200, "leaf overflow: {bytes}");
                }
            }
        }
    }

    #[test]
    fn gear_chunker_produces_sane_node_sizes() {
        use crate::params::ChunkerKind;
        let store = MemStore::new_shared();
        let es = entries(4000);
        let params = PosParams::default().with_chunker(ChunkerKind::Gear);
        let root = build(&store, &params, &es).unwrap();
        let root_node = Node::decode(&store.get(&root.hash).unwrap()).unwrap();
        assert!(matches!(root_node, Node::Internal { .. }));
        // Same 2^10 expected leaf size as buzhash (the skip-ahead removes
        // sub-minimum chunks but the boundary probability is unchanged).
        let stats = store.stats();
        let avg_page = stats.unique_bytes as f64 / stats.unique_pages as f64;
        assert!(
            avg_page > 300.0 && avg_page < 4000.0,
            "gear average page size {avg_page} outside sanity band"
        );
    }

    #[test]
    fn gear_with_rolling_window_internals_builds() {
        use crate::params::ChunkerKind;
        let store = MemStore::new_shared();
        let es = entries(3000);
        let params = PosParams::noms().with_chunker(ChunkerKind::Gear);
        let root = build(&store, &params, &es).unwrap();
        let node = Node::decode(&store.get(&root.hash).unwrap()).unwrap();
        assert!(matches!(node, Node::Internal { .. }));
    }

    #[test]
    fn rolling_window_internal_chunking_also_builds() {
        let store = MemStore::new_shared();
        let es = entries(3000);
        let root = build(&store, &PosParams::noms(), &es).unwrap();
        let node = Node::decode(&store.get(&root.hash).unwrap()).unwrap();
        assert!(matches!(node, Node::Internal { .. }));
    }
}
