//! Bottom-up tree construction: boundary judges and the per-level builder
//! pipeline.
//!
//! Each level of the tree has a [`LevelBuilder`] holding the items of the
//! node currently being formed. When the boundary judge fires (or the
//! forced maximum is hit), the node is sealed, stored, and its
//! [`Piece`] cascades as an item into the builder one level up — the
//! "bottom-up build order" whose batching advantage §5.2/§5.3.1 highlight.
//!
//! Builders also support *pass-through*: an untouched old node can be
//! re-used wholesale when every builder at its level and below is sitting
//! exactly on a node boundary. Because chunking state resets at node
//! starts, the chunker would provably reproduce the same node — this is
//! what makes incremental updates O(polylog) instead of O(N) while keeping
//! the tree Structurally Invariant.

use bytes::Bytes;
use siri_core::{entry_codec, Entry, Result};
use siri_crypto::{Hash, RollingHash};
use siri_encoding::ByteWriter;
use siri_store::SharedStore;

use crate::node::{Node, Piece};
use crate::params::{InternalChunking, PosParams, SplitPolicy};

/// An item flowing through a level: an entry (level 0) or a child piece.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Item {
    Entry(Entry),
    Ref(Piece),
}

impl Item {
    pub fn key(&self) -> &Bytes {
        match self {
            Item::Entry(e) => &e.key,
            Item::Ref(p) => &p.max_key,
        }
    }
}

/// Content-defined boundary detector for one level.
enum Judge {
    /// Roll a window over item bytes; fire when the low `bits` of the
    /// fingerprint are all ones (the paper's example pattern).
    Roller { roller: RollingHash, mask: u64 },
    /// Test the low bits of the child digest directly (§3.4.3's
    /// optimization for internal layers).
    HashBits { mask: u64 },
}

impl Judge {
    fn leaf(params: &PosParams) -> Judge {
        Judge::Roller {
            roller: RollingHash::new(params.window),
            mask: (1u64 << params.leaf_pattern_bits) - 1,
        }
    }

    fn internal(params: &PosParams) -> Judge {
        match params.internal_chunking {
            InternalChunking::HashPattern => {
                Judge::HashBits { mask: (1u64 << params.internal_pattern_bits) - 1 }
            }
            InternalChunking::RollingWindow => Judge::Roller {
                roller: RollingHash::new(params.window),
                mask: (1u64 << params.internal_pattern_bits) - 1,
            },
        }
    }

    /// Feed one item; true if a boundary fires at (or within) it.
    fn feed(&mut self, item: &Item) -> bool {
        match self {
            Judge::HashBits { mask } => match item {
                Item::Ref(p) => p.hash.low64() & *mask == *mask,
                Item::Entry(_) => unreachable!("hash judge on leaf level"),
            },
            Judge::Roller { roller, mask } => {
                let mut fired = false;
                let mut feed_bytes = |bytes: &[u8]| {
                    for &b in bytes {
                        roller.push(b);
                        // Only a fully-populated window counts: a cold
                        // window right after a node boundary would make the
                        // decision depend on too few bytes — in the worst
                        // case firing deterministically inside a repeated
                        // max-key prefix and growing an unbounded tower of
                        // single-child nodes.
                        if roller.is_warm() && roller.fingerprint() & *mask == *mask {
                            fired = true;
                        }
                    }
                };
                match item {
                    Item::Entry(e) => {
                        let mut w = ByteWriter::with_capacity(entry_codec::entry_encoded_len(e));
                        entry_codec::write_entry(&mut w, e);
                        feed_bytes(&w.into_vec());
                    }
                    Item::Ref(p) => {
                        feed_bytes(&p.max_key);
                        feed_bytes(p.hash.as_bytes());
                    }
                }
                fired
            }
        }
    }

    fn reset(&mut self) {
        if let Judge::Roller { roller, .. } = self {
            roller.reset();
        }
    }
}

/// Builds the nodes of one level.
pub struct LevelBuilder {
    level: u32,
    salt: u64,
    judge: Judge,
    items: Vec<Item>,
    bytes_in_node: usize,
    forced_max: Option<usize>,
}

impl LevelBuilder {
    pub fn new(level: u32, salt: u64, params: &PosParams) -> Self {
        let judge = if level == 0 { Judge::leaf(params) } else { Judge::internal(params) };
        let forced_max = match params.split_policy {
            SplitPolicy::Pattern => None,
            SplitPolicy::ForcedSplice { max_node_bytes } => Some(max_node_bytes),
        };
        LevelBuilder { level, salt, judge, items: Vec::new(), bytes_in_node: 0, forced_max }
    }

    /// No node currently under construction.
    pub fn at_boundary(&self) -> bool {
        self.items.is_empty()
    }

    pub fn pending_items(&self) -> &[Item] {
        &self.items
    }

    /// Push one item; returns the sealed node's piece if a boundary fired.
    pub fn push(&mut self, item: Item, store: &SharedStore) -> Result<Option<Piece>> {
        let fired = self.judge.feed(&item);
        self.bytes_in_node += match &item {
            Item::Entry(e) => entry_codec::entry_encoded_len(e),
            Item::Ref(p) => p.max_key.len() + Hash::LEN,
        };
        self.items.push(item);
        let forced = self.forced_max.is_some_and(|max| self.bytes_in_node >= max);
        if fired || forced {
            Ok(Some(self.seal(store)?))
        } else {
            Ok(None)
        }
    }

    /// Seal the trailing node at end of stream, if any.
    pub fn finish(&mut self, store: &SharedStore) -> Result<Option<Piece>> {
        if self.items.is_empty() {
            Ok(None)
        } else {
            Ok(Some(self.seal(store)?))
        }
    }

    fn seal(&mut self, store: &SharedStore) -> Result<Piece> {
        let items = std::mem::take(&mut self.items);
        self.bytes_in_node = 0;
        self.judge.reset();
        let node = if self.level == 0 {
            let entries = items
                .into_iter()
                .map(|i| match i {
                    Item::Entry(e) => e,
                    Item::Ref(_) => unreachable!("ref at leaf level"),
                })
                .collect();
            Node::Leaf { salt: self.salt, entries }
        } else {
            let children = items
                .into_iter()
                .map(|i| match i {
                    Item::Ref(p) => p,
                    Item::Entry(_) => unreachable!("entry at internal level"),
                })
                .collect();
            Node::Internal { salt: self.salt, level: self.level, children }
        };
        let max_key = node.max_key().expect("sealed nodes are non-empty");
        let hash = store.try_put(node.encode())?;
        Ok(Piece { max_key, hash })
    }
}

/// The full builder pipeline, one [`LevelBuilder`] per level, with cascade
/// and pass-through plumbing.
pub struct Builders<'a> {
    store: &'a SharedStore,
    params: &'a PosParams,
    salt: u64,
    levels: Vec<LevelBuilder>,
}

impl<'a> Builders<'a> {
    pub fn new(store: &'a SharedStore, params: &'a PosParams, salt: u64) -> Self {
        Builders { store, params, salt, levels: Vec::new() }
    }

    fn ensure_level(&mut self, level: u32) {
        while self.levels.len() <= level as usize {
            self.levels.push(LevelBuilder::new(self.levels.len() as u32, self.salt, self.params));
        }
    }

    /// Feed one item into `level`, cascading sealed nodes upward.
    pub fn push(&mut self, level: u32, item: Item) -> Result<()> {
        self.ensure_level(level);
        if let Some(piece) = self.levels[level as usize].push(item, self.store)? {
            self.push(level + 1, Item::Ref(piece))?;
        }
        Ok(())
    }

    /// All builders at `level` and below sit exactly on node boundaries —
    /// the pass-through precondition.
    pub fn clean_below(&self, level: u32) -> bool {
        self.levels.iter().take(level as usize + 1).all(LevelBuilder::at_boundary)
    }

    /// Re-use an untouched old node of `level` wholesale. Caller must have
    /// checked [`Builders::clean_below`]`(level)`.
    pub fn pass_through(&mut self, level: u32, piece: Piece) -> Result<()> {
        debug_assert!(self.clean_below(level), "pass-through requires clean builders");
        self.push(level + 1, Item::Ref(piece))
    }

    /// Seal every trailing node bottom-up and collapse to the root piece.
    /// `None` means the tree is empty.
    ///
    /// Invariant exploited: whenever the *top* builder holds exactly one
    /// pending child reference once all lower levels are sealed, that child
    /// is the root — wrapping it would create a useless single-child chain
    /// (and break structural invariance, since chain length would depend on
    /// history).
    pub fn finalize(mut self) -> Result<Option<Piece>> {
        let mut level = 0usize;
        while level < self.levels.len() {
            let is_top = level + 1 == self.levels.len();
            if is_top {
                if let [Item::Ref(piece)] = self.levels[level].pending_items() {
                    return Ok(Some(piece.clone()));
                }
            }
            if let Some(piece) = self.levels[level].finish(self.store)? {
                self.push(level as u32 + 1, Item::Ref(piece))?;
            }
            level += 1;
        }
        Ok(None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use siri_core::MemStore;

    fn entries(n: usize) -> Vec<Entry> {
        (0..n).map(|i| Entry::new(format!("key{i:06}").into_bytes(), vec![0xAB; 100])).collect()
    }

    fn build(store: &SharedStore, params: &PosParams, es: &[Entry]) -> Option<Piece> {
        let mut b = Builders::new(store, params, 0);
        for e in es {
            b.push(0, Item::Entry(e.clone())).unwrap();
        }
        b.finalize().unwrap()
    }

    #[test]
    fn empty_build_yields_none() {
        let store = MemStore::new_shared();
        assert!(build(&store, &PosParams::default(), &[]).is_none());
    }

    #[test]
    fn single_entry_yields_single_leaf_root() {
        let store = MemStore::new_shared();
        let es = entries(1);
        let piece = build(&store, &PosParams::default(), &es).unwrap();
        let node = Node::decode(&store.get(&piece.hash).unwrap()).unwrap();
        assert!(matches!(node, Node::Leaf { .. }));
    }

    #[test]
    fn large_build_produces_multiple_levels_with_expected_node_sizes() {
        let store = MemStore::new_shared();
        let es = entries(4000); // ~430 KB of payload, ~1 KB target nodes
        let root = build(&store, &PosParams::default(), &es).unwrap();
        let root_node = Node::decode(&store.get(&root.hash).unwrap()).unwrap();
        assert!(matches!(root_node, Node::Internal { .. }));

        // Expected leaf size 2^10 = 1024 bytes; check the average is within
        // a loose band (probabilistic balance, §3.4.3).
        let stats = store.stats();
        let avg_page = stats.unique_bytes as f64 / stats.unique_pages as f64;
        assert!(
            avg_page > 300.0 && avg_page < 4000.0,
            "average page size {avg_page} outside sanity band"
        );
    }

    #[test]
    fn builds_are_deterministic() {
        let s1 = MemStore::new_shared();
        let s2 = MemStore::new_shared();
        let es = entries(2000);
        let r1 = build(&s1, &PosParams::default(), &es).unwrap();
        let r2 = build(&s2, &PosParams::default(), &es).unwrap();
        assert_eq!(r1.hash, r2.hash);
    }

    #[test]
    fn forced_split_caps_node_size() {
        let store = MemStore::new_shared();
        let params = PosParams::forced_split();
        let es = entries(500);
        let root = build(&store, &params, &es).unwrap();
        // Walk all leaves; none may exceed max_node_bytes by more than one
        // entry's worth.
        let SplitPolicy::ForcedSplice { max_node_bytes } = params.split_policy else {
            unreachable!()
        };
        let mut stack = vec![root.hash];
        while let Some(h) = stack.pop() {
            let page = store.get(&h).unwrap();
            match Node::decode(&page).unwrap() {
                Node::Internal { children, .. } => stack.extend(children.iter().map(|c| c.hash)),
                Node::Leaf { entries, .. } => {
                    let bytes: usize =
                        entries.iter().map(siri_core::entry_codec::entry_encoded_len).sum();
                    assert!(bytes <= max_node_bytes + 200, "leaf overflow: {bytes}");
                }
            }
        }
    }

    #[test]
    fn rolling_window_internal_chunking_also_builds() {
        let store = MemStore::new_shared();
        let es = entries(3000);
        let root = build(&store, &PosParams::noms(), &es).unwrap();
        let node = Node::decode(&store.get(&root.hash).unwrap()).unwrap();
        assert!(matches!(node, Node::Internal { .. }));
    }
}
