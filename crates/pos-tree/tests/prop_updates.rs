//! The POS-Tree killer invariant, fuzzed: an incremental streaming update
//! must be bit-identical to a from-scratch build of the merged content —
//! for any base set, any edit batch, any parameterisation.

use proptest::prelude::*;
use siri_core::{Entry, MemStore, SiriIndex};
use siri_pos_tree::{PosParams, PosTree};

fn arb_kv(max: usize) -> impl Strategy<Value = Vec<(u16, u8)>> {
    // Compact id/value pairs keep the search space dense enough to hit
    // leaf-boundary edge cases (same leaf, adjacent leaves, appends).
    proptest::collection::vec((proptest::num::u16::ANY, proptest::num::u8::ANY), 0..max)
}

fn entries(raw: &[(u16, u8)], value_len: usize) -> Vec<Entry> {
    raw.iter()
        .map(|(id, v)| Entry::new(format!("key{id:05}").into_bytes(), vec![*v; value_len]))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    #[test]
    fn incremental_equals_fresh_build(
        base in arb_kv(300),
        edits in arb_kv(60),
        value_len in 1usize..150,
    ) {
        let store = MemStore::new_shared();
        let params = PosParams::default().with_node_bytes(512); // small nodes → more boundaries
        let base_entries = entries(&base, value_len);
        let edit_entries = entries(&edits, value_len.saturating_sub(1).max(1));

        // Incremental: build base, then apply edits as one batch.
        let mut incremental = PosTree::new(store.clone(), params);
        incremental.batch_insert(base_entries.clone()).unwrap();
        incremental.batch_insert(edit_entries.clone()).unwrap();

        // Fresh: single build over the merged multiset (edits win).
        let mut merged = base_entries;
        merged.extend(edit_entries);
        let mut fresh = PosTree::new(store, params);
        fresh.batch_insert(merged).unwrap();

        prop_assert_eq!(
            incremental.root(),
            fresh.root(),
            "structural invariance violated"
        );
    }

    #[test]
    fn many_small_batches_equal_one_big_batch(
        raw in arb_kv(250),
        chunk in 1usize..40,
    ) {
        let params = PosParams::default().with_node_bytes(512);
        let all = entries(&raw, 60);
        let mut big = PosTree::new(MemStore::new_shared(), params);
        big.batch_insert(all.clone()).unwrap();
        let mut small = PosTree::new(MemStore::new_shared(), params);
        for c in all.chunks(chunk) {
            small.batch_insert(c.to_vec()).unwrap();
        }
        prop_assert_eq!(big.root(), small.root());
        prop_assert_eq!(big.scan().unwrap(), small.scan().unwrap());
    }

    #[test]
    fn lookups_match_model_after_updates(
        base in arb_kv(200),
        edits in arb_kv(50),
    ) {
        let mut model = std::collections::BTreeMap::new();
        for (id, v) in base.iter().chain(edits.iter()) {
            model.insert(format!("key{id:05}").into_bytes(), vec![*v; 40]);
        }
        let mut t = PosTree::new(MemStore::new_shared(), PosParams::default());
        t.batch_insert(entries(&base, 40)).unwrap();
        t.batch_insert(entries(&edits, 40)).unwrap();
        prop_assert_eq!(t.len().unwrap(), model.len());
        for (k, v) in model.iter().take(20) {
            let got = t.get(k).unwrap();
            prop_assert_eq!(got.as_deref(), Some(v.as_slice()));
        }
    }
}
