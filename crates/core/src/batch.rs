//! Write batches — the atomic unit of mutation (paper §3.1's `put`/`del`).
//!
//! A [`WriteBatch`] collects puts and deletes and is applied in **one**
//! copy-on-write pass by [`crate::SiriIndex::commit`], producing exactly one
//! new version. Batching is not just ergonomics: the paper's bottom-up
//! builders amortize path rewrites across a batch (§5.3.1), and a mixed
//! put/delete batch must resolve per key *before* touching the tree so the
//! structures stay canonical (Structurally Invariant).

use bytes::Bytes;
use siri_crypto::Hash;

use crate::Entry;

/// One mutation in a [`WriteBatch`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Op {
    /// Insert or overwrite a record.
    Put(Entry),
    /// Remove a record by key. Deleting an absent key is a no-op.
    Delete(Bytes),
}

impl Op {
    pub fn key(&self) -> &Bytes {
        match self {
            Op::Put(e) => &e.key,
            Op::Delete(k) => k,
        }
    }
}

/// An ordered collection of puts and deletes applied atomically by
/// [`crate::SiriIndex::commit`].
///
/// Later operations on the same key win (write order semantics), exactly as
/// if the operations were applied one by one — but the whole batch costs a
/// single copy-on-write pass.
///
/// ```
/// use siri_core::WriteBatch;
///
/// let mut batch = WriteBatch::new();
/// batch.put(&b"alice"[..], &b"100"[..]);
/// batch.delete(&b"mallory"[..]);
/// assert_eq!(batch.len(), 2);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WriteBatch {
    ops: Vec<Op>,
}

impl WriteBatch {
    pub fn new() -> Self {
        WriteBatch { ops: Vec::new() }
    }

    /// A batch of puts, one per entry — the `batch_insert` compatibility
    /// shape.
    pub fn from_entries(entries: Vec<Entry>) -> Self {
        WriteBatch { ops: entries.into_iter().map(Op::Put).collect() }
    }

    /// Rebuild a batch from normalized ops — the inverse of
    /// [`WriteBatch::normalize`], used when a router has already resolved
    /// and partitioned a batch (normalizing again is a no-op).
    pub fn from_ops(ops: Vec<BatchOp>) -> Self {
        WriteBatch {
            ops: ops
                .into_iter()
                .map(|op| match op.value {
                    Some(value) => Op::Put(Entry { key: op.key, value }),
                    None => Op::Delete(op.key),
                })
                .collect(),
        }
    }

    /// Queue an insert-or-overwrite.
    pub fn put(&mut self, key: impl Into<Bytes>, value: impl Into<Bytes>) -> &mut Self {
        self.ops.push(Op::Put(Entry { key: key.into(), value: value.into() }));
        self
    }

    /// Queue a deletion. Deleting an absent key is a no-op at commit time.
    pub fn delete(&mut self, key: impl Into<Bytes>) -> &mut Self {
        self.ops.push(Op::Delete(key.into()));
        self
    }

    pub fn push(&mut self, op: Op) -> &mut Self {
        self.ops.push(op);
        self
    }

    pub fn len(&self) -> usize {
        self.ops.len()
    }

    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    pub fn ops(&self) -> &[Op] {
        &self.ops
    }

    /// Resolve the batch into sorted, key-unique operations (the last
    /// operation on a key wins). This is the form every index's `commit`
    /// consumes: one decision per key, in key order.
    pub fn normalize(self) -> Vec<BatchOp> {
        let mut ops: Vec<BatchOp> = self
            .ops
            .into_iter()
            .map(|op| match op {
                Op::Put(e) => BatchOp { key: e.key, value: Some(e.value) },
                Op::Delete(k) => BatchOp { key: k, value: None },
            })
            .collect();
        // Stable sort keeps equal keys in write order, so keeping the last
        // duplicate preserves last-write-wins.
        ops.sort_by(|a, b| a.key.cmp(&b.key));
        let mut out: Vec<BatchOp> = Vec::with_capacity(ops.len());
        for op in ops {
            match out.last_mut() {
                Some(last) if last.key == op.key => *last = op,
                _ => out.push(op),
            }
        }
        out
    }
}

impl FromIterator<Op> for WriteBatch {
    fn from_iter<T: IntoIterator<Item = Op>>(iter: T) -> Self {
        WriteBatch { ops: iter.into_iter().collect() }
    }
}

/// One normalized batch operation: `value: Some` upserts, `None` deletes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchOp {
    pub key: Bytes,
    pub value: Option<Bytes>,
}

impl BatchOp {
    pub fn is_delete(&self) -> bool {
        self.value.is_none()
    }

    /// The entry this op writes, if it is a put.
    pub fn into_entry(self) -> Option<Entry> {
        self.value.map(|value| Entry { key: self.key, value })
    }
}

/// The receipt of one optimistic (compare-and-swap) branch commit.
///
/// Engines that publish batches against a shared branch head return one of
/// these per acknowledged commit: the head the winning version was built
/// on (`parent`), the head it produced (`root`), and how many races it
/// lost on the way (`retries` — each one a full rebuild of the batch
/// against a fresher head). On a single-shard branch the `parent → root`
/// edges of a branch's commits form a chain, which is what makes
/// concurrent commit histories auditable: replaying the batches in chain
/// order on a sequential model must reproduce every `root` digest exactly.
///
/// On a **sharded** branch (see [`crate::ShardRouter`]) `parent`/`root`
/// are manifest digests and `shards` carries the per-range sub-root edges
/// this commit published — the chain property then holds per shard, over
/// the `shards[i].parent → shards[i].root` edges.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommitInfo {
    /// The branch head this commit's version was built against.
    pub parent: Hash,
    /// The new branch head this commit published.
    pub root: Hash,
    /// Head races lost before publication (0 = won on the first try).
    pub retries: u32,
    /// Per-shard sub-root edges published by this commit, in shard order.
    /// A single-shard commit carries exactly one edge equal to
    /// `parent → root`.
    pub shards: Vec<crate::ShardCommit>,
}

/// Apply sorted key-unique `ops` to a sorted key-unique entry run by
/// merge-join: puts overwrite or insert, deletes drop the key (silently
/// no-op when absent). The shared leaf/bucket rewrite primitive of every
/// structure's `commit`.
pub fn apply_ops(old: &[Entry], ops: &[BatchOp]) -> Vec<Entry> {
    debug_assert!(ops.windows(2).all(|w| w[0].key < w[1].key), "ops must be normalized");
    let mut out = Vec::with_capacity(old.len() + ops.len());
    let (mut i, mut j) = (0, 0);
    while i < old.len() && j < ops.len() {
        match old[i].key.cmp(&ops[j].key) {
            std::cmp::Ordering::Less => {
                out.push(old[i].clone());
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                if let Some(v) = &ops[j].value {
                    out.push(Entry { key: ops[j].key.clone(), value: v.clone() });
                }
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                if let Some(v) = &ops[j].value {
                    out.push(Entry { key: ops[j].key.clone(), value: v.clone() });
                }
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&old[i..]);
    for op in &ops[j..] {
        if let Some(v) = &op.value {
            out.push(Entry { key: op.key.clone(), value: v.clone() });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(k: &str, v: &str) -> Entry {
        Entry::new(k.as_bytes().to_vec(), v.as_bytes().to_vec())
    }

    #[test]
    fn normalize_sorts_and_last_op_wins() {
        let mut b = WriteBatch::new();
        b.put(&b"b"[..], &b"1"[..]);
        b.put(&b"a"[..], &b"1"[..]);
        b.delete(&b"b"[..]);
        b.put(&b"a"[..], &b"2"[..]);
        let norm = b.normalize();
        assert_eq!(norm.len(), 2);
        assert_eq!(norm[0].key.as_ref(), b"a");
        assert_eq!(norm[0].value.as_deref(), Some(&b"2"[..]));
        assert_eq!(norm[1].key.as_ref(), b"b");
        assert!(norm[1].is_delete());
    }

    #[test]
    fn put_after_delete_reinstates() {
        let mut b = WriteBatch::new();
        b.delete(&b"k"[..]);
        b.put(&b"k"[..], &b"v"[..]);
        let norm = b.normalize();
        assert_eq!(norm.len(), 1);
        assert_eq!(norm[0].value.as_deref(), Some(&b"v"[..]));
    }

    #[test]
    fn from_entries_is_all_puts() {
        let b = WriteBatch::from_entries(vec![e("x", "1"), e("y", "2")]);
        assert_eq!(b.len(), 2);
        assert!(b.ops().iter().all(|op| matches!(op, Op::Put(_))));
    }

    #[test]
    fn apply_ops_merges_puts_and_deletes() {
        let old = vec![e("a", "1"), e("c", "3"), e("e", "5")];
        let ops = vec![
            BatchOp { key: Bytes::from_static(b"a"), value: None },
            BatchOp { key: Bytes::from_static(b"b"), value: Some(Bytes::from_static(b"2")) },
            BatchOp { key: Bytes::from_static(b"c"), value: Some(Bytes::from_static(b"3'")) },
            BatchOp { key: Bytes::from_static(b"d"), value: None }, // absent: no-op
            BatchOp { key: Bytes::from_static(b"f"), value: Some(Bytes::from_static(b"6")) },
        ];
        let merged = apply_ops(&old, &ops);
        let keys: Vec<&[u8]> = merged.iter().map(|x| x.key.as_ref()).collect();
        assert_eq!(keys, vec![b"b".as_ref(), b"c", b"e", b"f"]);
        assert_eq!(merged[1].value.as_ref(), b"3'");
    }

    #[test]
    fn apply_ops_on_empty_old_keeps_only_puts() {
        let ops = vec![
            BatchOp { key: Bytes::from_static(b"a"), value: Some(Bytes::from_static(b"1")) },
            BatchOp { key: Bytes::from_static(b"b"), value: None },
        ];
        let merged = apply_ops(&[], &ops);
        assert_eq!(merged.len(), 1);
        assert_eq!(merged[0].key.as_ref(), b"a");
    }
}
