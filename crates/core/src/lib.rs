//! The SIRI framework — *Structurally Invariant and Reusable Indexes*.
//!
//! This crate is the paper's analytical lens turned into code. It defines:
//!
//! * [`SiriIndex`] — the unified interface all four index structures
//!   implement: atomic [`WriteBatch`] commits (put + delete), point lookup,
//!   streaming [`EntryCursor`] range scans, diff, merge, proofs, page sets;
//! * [`Entry`]/[`entry_codec`] — the canonical record representation shared
//!   by leaf codecs;
//! * [`Proof`] — Merkle proofs and the tamper-evidence contract;
//! * [`metrics`] — the deduplication ratio η(S) of §4.2 and the node
//!   sharing ratio of §5.4.2;
//! * [`merge`] — two-way, conflict-aware merge built on structural diff
//!   (§4.1.4);
//! * [`VersionStore`] — a branching version manager over any index;
//! * [`cost_model`] — the closed-form operation bounds of §4.1, used to
//!   cross-check measured asymptotics;
//! * [`siri_properties`] — executable checks of the three SIRI properties
//!   from Definition 3.1.

mod batch;
mod cursor;
mod diff;
mod entry;
mod error;
mod index;
mod proof;
mod session;
mod shard;
mod structure;
mod verify;
mod version;

pub mod cost_model;
pub mod entry_codec;
pub mod metrics;
pub mod siri_properties;

pub use batch::{apply_ops, BatchOp, CommitInfo, Op, WriteBatch};
pub use cursor::{
    before_start, own_bound, past_end, prefix_successor, start_seek_key, EntryCursor,
};
pub use diff::{
    diff_by_scan, diff_sorted_entries, merge, merge_with_base, DiffEntry, DiffSide, MergeOutcome,
    MergeStrategy,
};
pub use entry::Entry;
pub use error::{IndexError, Result};
pub use index::{LookupTrace, SiriIndex};
pub use proof::{Proof, ProofVerdict, MAX_PROOF_PAGES};
pub use session::Session;
pub use shard::{chain_cursors, ShardCommit, ShardManifest, ShardRouter, MANIFEST_MAGIC};
pub use structure::{StructureReport, StructureStats};
pub use verify::{
    bounds_contain, child_overlaps, verify_anchored_batch, verify_anchored_membership,
    verify_anchored_range, BatchVerdict, PagePool, ProofScheme, RangeVerdict,
};
pub use version::{VersionStore, VersionTag};

// Re-exports so downstream crates (and examples) need only `siri_core`.
pub use bytes::Bytes;
pub use siri_crypto::Hash;
pub use siri_store::{
    CacheStats, FileStore, FsyncPolicy, MemStore, NodeCache, NodeStore, PageSet, Reclaim,
    SharedStore, StoreError, StoreResult, StoreStats, DEFAULT_NODE_CACHE_CAPACITY,
};
