//! Diff and merge — the paper's "comparison" and "merge" operations
//! (§4.1.3, §4.1.4).

use bytes::Bytes;

use crate::{Entry, IndexError, Result, SiriIndex};

/// One differing key between two index instances.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DiffEntry {
    pub key: Bytes,
    /// Value on the left side, if present.
    pub left: Option<Bytes>,
    /// Value on the right side, if present.
    pub right: Option<Bytes>,
}

/// Classification of a [`DiffEntry`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiffSide {
    LeftOnly,
    RightOnly,
    /// Present on both sides with different values — a merge conflict
    /// candidate.
    Changed,
}

impl DiffEntry {
    pub fn side(&self) -> DiffSide {
        match (&self.left, &self.right) {
            (Some(_), None) => DiffSide::LeftOnly,
            (None, Some(_)) => DiffSide::RightOnly,
            _ => DiffSide::Changed,
        }
    }
}

/// Reference diff over sorted scans — the fallback used by tests to check
/// the structure-aware `diff` implementations, and by structures while a
/// subtree has to be enumerated anyway.
pub fn diff_by_scan<I: SiriIndex>(left: &I, right: &I) -> Result<Vec<DiffEntry>> {
    let l = left.scan()?;
    let r = right.scan()?;
    Ok(diff_sorted_entries(&l, &r))
}

/// Merge-join two sorted entry lists into diff records.
pub fn diff_sorted_entries(l: &[Entry], r: &[Entry]) -> Vec<DiffEntry> {
    let mut out = Vec::new();
    let (mut i, mut j) = (0, 0);
    while i < l.len() && j < r.len() {
        match l[i].key.cmp(&r[j].key) {
            std::cmp::Ordering::Less => {
                out.push(DiffEntry {
                    key: l[i].key.clone(),
                    left: Some(l[i].value.clone()),
                    right: None,
                });
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(DiffEntry {
                    key: r[j].key.clone(),
                    left: None,
                    right: Some(r[j].value.clone()),
                });
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                if l[i].value != r[j].value {
                    out.push(DiffEntry {
                        key: l[i].key.clone(),
                        left: Some(l[i].value.clone()),
                        right: Some(r[j].value.clone()),
                    });
                }
                i += 1;
                j += 1;
            }
        }
    }
    for e in &l[i..] {
        out.push(DiffEntry { key: e.key.clone(), left: Some(e.value.clone()), right: None });
    }
    for e in &r[j..] {
        out.push(DiffEntry { key: e.key.clone(), left: None, right: Some(e.value.clone()) });
    }
    out
}

/// Conflict policy for [`merge`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MergeStrategy {
    /// Fail with [`IndexError::MergeConflict`] if any key differs on both
    /// sides — the paper's default ("the process must be interrupted and a
    /// selection strategy must be given by the end user", §4.1.4).
    #[default]
    Strict,
    /// Keep the left value on conflicts.
    PreferLeft,
    /// Take the right value on conflicts.
    PreferRight,
}

/// Result of a successful [`merge`].
pub struct MergeOutcome<I> {
    /// The merged index: all records from either input.
    pub merged: I,
    /// Records imported from the right side.
    pub added_from_right: usize,
    /// Conflicting keys resolved by a non-strict strategy.
    pub conflicts_resolved: usize,
}

impl<I> std::fmt::Debug for MergeOutcome<I> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MergeOutcome")
            .field("added_from_right", &self.added_from_right)
            .field("conflicts_resolved", &self.conflicts_resolved)
            .finish_non_exhaustive()
    }
}

/// Combine all records from both indexes (§4.1.4). The merge runs as the
/// paper describes: a structural diff marks differing records, then the
/// right-side-only (and, per strategy, conflicting) records are applied on
/// top of a copy-on-write snapshot of the left side.
pub fn merge<I: SiriIndex>(
    left: &I,
    right: &I,
    strategy: MergeStrategy,
) -> Result<MergeOutcome<I>> {
    let diffs = left.diff(right)?;
    let mut to_apply: Vec<Entry> = Vec::new();
    let mut conflicts: Vec<DiffEntry> = Vec::new();
    let mut conflicts_resolved = 0usize;
    let mut added_from_right = 0usize;

    for d in diffs {
        match d.side() {
            DiffSide::RightOnly => {
                added_from_right += 1;
                to_apply.push(Entry { key: d.key, value: d.right.expect("right-only has value") });
            }
            DiffSide::LeftOnly => {} // already in the base snapshot
            DiffSide::Changed => match strategy {
                MergeStrategy::Strict => conflicts.push(d),
                MergeStrategy::PreferLeft => conflicts_resolved += 1,
                MergeStrategy::PreferRight => {
                    conflicts_resolved += 1;
                    to_apply.push(Entry { key: d.key, value: d.right.expect("changed has right") });
                }
            },
        }
    }

    if !conflicts.is_empty() {
        return Err(IndexError::MergeConflict { conflicts });
    }

    let mut merged = left.clone();
    merged.batch_insert(to_apply)?;
    Ok(MergeOutcome { merged, added_from_right, conflicts_resolved })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(k: &str, v: &str) -> Entry {
        Entry::new(k.as_bytes().to_vec(), v.as_bytes().to_vec())
    }

    #[test]
    fn diff_sorted_classifies_sides() {
        let l = vec![e("a", "1"), e("b", "1"), e("c", "1")];
        let r = vec![e("b", "2"), e("c", "1"), e("d", "9")];
        let d = diff_sorted_entries(&l, &r);
        assert_eq!(d.len(), 3);
        assert_eq!(d[0].side(), DiffSide::LeftOnly); // a
        assert_eq!(d[1].side(), DiffSide::Changed); // b
        assert_eq!(d[2].side(), DiffSide::RightOnly); // d
    }

    #[test]
    fn diff_of_identical_lists_is_empty() {
        let l = vec![e("a", "1"), e("b", "2")];
        assert!(diff_sorted_entries(&l, &l).is_empty());
    }

    #[test]
    fn diff_with_empty_side() {
        let l = vec![e("a", "1")];
        let d = diff_sorted_entries(&l, &[]);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].side(), DiffSide::LeftOnly);
        let d = diff_sorted_entries(&[], &l);
        assert_eq!(d[0].side(), DiffSide::RightOnly);
    }
}
