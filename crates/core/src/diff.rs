//! Diff and merge — the paper's "comparison" and "merge" operations
//! (§4.1.3, §4.1.4).

use bytes::Bytes;

use crate::{Entry, IndexError, Result, SiriIndex, WriteBatch};

/// One differing key between two index instances.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DiffEntry {
    pub key: Bytes,
    /// Value on the left side, if present.
    pub left: Option<Bytes>,
    /// Value on the right side, if present.
    pub right: Option<Bytes>,
}

/// Classification of a [`DiffEntry`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiffSide {
    LeftOnly,
    RightOnly,
    /// Present on both sides with different values — a merge conflict
    /// candidate.
    Changed,
}

impl DiffEntry {
    pub fn side(&self) -> DiffSide {
        match (&self.left, &self.right) {
            (Some(_), None) => DiffSide::LeftOnly,
            (None, Some(_)) => DiffSide::RightOnly,
            _ => DiffSide::Changed,
        }
    }
}

/// Reference diff over sorted scans — the fallback used by tests to check
/// the structure-aware `diff` implementations, and by structures while a
/// subtree has to be enumerated anyway.
pub fn diff_by_scan<I: SiriIndex>(left: &I, right: &I) -> Result<Vec<DiffEntry>> {
    let l = left.scan()?;
    let r = right.scan()?;
    Ok(diff_sorted_entries(&l, &r))
}

/// Merge-join two sorted entry lists into diff records.
pub fn diff_sorted_entries(l: &[Entry], r: &[Entry]) -> Vec<DiffEntry> {
    let mut out = Vec::new();
    let (mut i, mut j) = (0, 0);
    while i < l.len() && j < r.len() {
        match l[i].key.cmp(&r[j].key) {
            std::cmp::Ordering::Less => {
                out.push(DiffEntry {
                    key: l[i].key.clone(),
                    left: Some(l[i].value.clone()),
                    right: None,
                });
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(DiffEntry {
                    key: r[j].key.clone(),
                    left: None,
                    right: Some(r[j].value.clone()),
                });
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                if l[i].value != r[j].value {
                    out.push(DiffEntry {
                        key: l[i].key.clone(),
                        left: Some(l[i].value.clone()),
                        right: Some(r[j].value.clone()),
                    });
                }
                i += 1;
                j += 1;
            }
        }
    }
    for e in &l[i..] {
        out.push(DiffEntry { key: e.key.clone(), left: Some(e.value.clone()), right: None });
    }
    for e in &r[j..] {
        out.push(DiffEntry { key: e.key.clone(), left: None, right: Some(e.value.clone()) });
    }
    out
}

/// Conflict policy for [`merge`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MergeStrategy {
    /// Fail with [`IndexError::MergeConflict`] if any key differs on both
    /// sides — the paper's default ("the process must be interrupted and a
    /// selection strategy must be given by the end user", §4.1.4).
    #[default]
    Strict,
    /// Keep the left value on conflicts.
    PreferLeft,
    /// Take the right value on conflicts.
    PreferRight,
}

/// Result of a successful [`merge`] / [`merge_with_base`].
pub struct MergeOutcome<I> {
    /// The merged index.
    pub merged: I,
    /// Records imported from the right side (adds and, for three-way
    /// merges, edits applied cleanly).
    pub added_from_right: usize,
    /// Records removed because the right side deleted them since the base
    /// (always 0 for the two-way [`merge`], which cannot see deletions).
    pub removed_by_right: usize,
    /// Conflicting keys resolved by a non-strict strategy.
    pub conflicts_resolved: usize,
}

impl<I> std::fmt::Debug for MergeOutcome<I> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MergeOutcome")
            .field("added_from_right", &self.added_from_right)
            .field("removed_by_right", &self.removed_by_right)
            .field("conflicts_resolved", &self.conflicts_resolved)
            .finish_non_exhaustive()
    }
}

/// Combine all records from both indexes (§4.1.4). The merge runs as the
/// paper describes: a structural diff marks differing records, then the
/// right-side-only (and, per strategy, conflicting) records are applied on
/// top of a copy-on-write snapshot of the left side.
///
/// This two-way merge is a **union**: with only two snapshots, "present on
/// the left, absent on the right" is indistinguishable from "deleted on
/// the right", so deletions cannot propagate and left-only records always
/// survive. When branch histories contain deletes, merge from a common
/// ancestor with [`merge_with_base`] instead.
pub fn merge<I: SiriIndex>(
    left: &I,
    right: &I,
    strategy: MergeStrategy,
) -> Result<MergeOutcome<I>> {
    let diffs = left.diff(right)?;
    let mut to_apply: Vec<Entry> = Vec::new();
    let mut conflicts: Vec<DiffEntry> = Vec::new();
    let mut conflicts_resolved = 0usize;
    let mut added_from_right = 0usize;

    for d in diffs {
        match d.side() {
            DiffSide::RightOnly => {
                added_from_right += 1;
                to_apply.push(Entry { key: d.key, value: d.right.expect("right-only has value") });
            }
            DiffSide::LeftOnly => {} // already in the base snapshot
            DiffSide::Changed => match strategy {
                MergeStrategy::Strict => conflicts.push(d),
                MergeStrategy::PreferLeft => conflicts_resolved += 1,
                MergeStrategy::PreferRight => {
                    conflicts_resolved += 1;
                    to_apply.push(Entry { key: d.key, value: d.right.expect("changed has right") });
                }
            },
        }
    }

    if !conflicts.is_empty() {
        return Err(IndexError::MergeConflict { conflicts });
    }

    let mut merged = left.clone();
    merged.batch_insert(to_apply)?;
    Ok(MergeOutcome { merged, added_from_right, removed_by_right: 0, conflicts_resolved })
}

/// Three-way merge from a common ancestor — the deletion-aware variant the
/// write-batch API makes necessary. `base` is the snapshot both branches
/// forked from; diffing each side against it makes deletions observable:
/// a key in `base` missing from one side was deleted there, and the
/// deletion propagates into the result unless the *other* side also
/// changed the key (edit-vs-delete is a conflict, resolved per strategy;
/// both sides converging on the same final state — including both
/// deleting — is not a conflict).
///
/// The result is built by committing one [`WriteBatch`] of the right
/// side's effective changes (puts *and* deletes) onto a copy-on-write
/// snapshot of `left`, so a merge still costs O(δ) and one version.
pub fn merge_with_base<I: SiriIndex>(
    base: &I,
    left: &I,
    right: &I,
    strategy: MergeStrategy,
) -> Result<MergeOutcome<I>> {
    use std::collections::BTreeMap;
    // For each changed key, the side's *final* state: Some(v) = added or
    // edited to v, None = deleted (diff is against base, so `d.right` is
    // the side's value and its absence means the side dropped the key).
    let left_changes: BTreeMap<Bytes, Option<Bytes>> =
        base.diff(left)?.into_iter().map(|d| (d.key, d.right)).collect();

    let mut batch = WriteBatch::new();
    let mut conflicts: Vec<DiffEntry> = Vec::new();
    let mut added_from_right = 0usize;
    let mut removed_by_right = 0usize;
    let mut conflicts_resolved = 0usize;

    for d in base.diff(right)? {
        let right_final = d.right;
        match left_changes.get(&d.key) {
            // Untouched on the left: the right side's change applies.
            None => match right_final {
                Some(v) => {
                    added_from_right += 1;
                    batch.put(d.key, v);
                }
                None => {
                    removed_by_right += 1;
                    batch.delete(d.key);
                }
            },
            // Both sides changed it identically (same edit, or both
            // deleted): converged, nothing to do and nothing to flag.
            Some(left_final) if *left_final == right_final => {}
            // Genuine divergence since the base.
            Some(left_final) => match strategy {
                MergeStrategy::Strict => {
                    conflicts.push(DiffEntry {
                        key: d.key,
                        left: left_final.clone(),
                        right: right_final,
                    });
                }
                MergeStrategy::PreferLeft => conflicts_resolved += 1,
                MergeStrategy::PreferRight => {
                    conflicts_resolved += 1;
                    match right_final {
                        Some(v) => batch.put(d.key, v),
                        None => batch.delete(d.key),
                    };
                }
            },
        }
    }

    if !conflicts.is_empty() {
        return Err(IndexError::MergeConflict { conflicts });
    }

    let mut merged = left.clone();
    merged.commit(batch)?;
    Ok(MergeOutcome { merged, added_from_right, removed_by_right, conflicts_resolved })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(k: &str, v: &str) -> Entry {
        Entry::new(k.as_bytes().to_vec(), v.as_bytes().to_vec())
    }

    #[test]
    fn diff_sorted_classifies_sides() {
        let l = vec![e("a", "1"), e("b", "1"), e("c", "1")];
        let r = vec![e("b", "2"), e("c", "1"), e("d", "9")];
        let d = diff_sorted_entries(&l, &r);
        assert_eq!(d.len(), 3);
        assert_eq!(d[0].side(), DiffSide::LeftOnly); // a
        assert_eq!(d[1].side(), DiffSide::Changed); // b
        assert_eq!(d[2].side(), DiffSide::RightOnly); // d
    }

    #[test]
    fn diff_of_identical_lists_is_empty() {
        let l = vec![e("a", "1"), e("b", "2")];
        assert!(diff_sorted_entries(&l, &l).is_empty());
    }

    #[test]
    fn diff_with_empty_side() {
        let l = vec![e("a", "1")];
        let d = diff_sorted_entries(&l, &[]);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].side(), DiffSide::LeftOnly);
        let d = diff_sorted_entries(&[], &l);
        assert_eq!(d[0].side(), DiffSide::RightOnly);
    }
}
