//! Merkle proofs — the tamper-evidence contract.
//!
//! A proof is the ordered list of raw pages on the path from the root to
//! the queried position ("the nodes on the path to the root", §2.3). A
//! verifier holding only the trusted root digest re-hashes each page,
//! checks that each parent references the child by that digest, and walks
//! the same navigation logic as the index — so a forged or tampered page
//! anywhere on the path is detected.

use bytes::Bytes;

use siri_crypto::{sha256, Hash};
use siri_encoding::{ByteReader, ByteWriter, CodecError};

/// Serialized-proof codec version byte.
const PROOF_CODEC_VERSION: u8 = 1;

/// Upper bound on pages per serialized proof — a decode-time cap, far
/// above any honest proof (a full MBT walk over the default 1024-bucket
/// skeleton is ~2k pages).
pub const MAX_PROOF_PAGES: usize = 1 << 16;

/// An ordered path of raw pages, root first.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Proof {
    pages: Vec<Bytes>,
}

impl Proof {
    pub fn new(pages: Vec<Bytes>) -> Self {
        Proof { pages }
    }

    pub fn pages(&self) -> &[Bytes] {
        &self.pages
    }

    pub fn len(&self) -> usize {
        self.pages.len()
    }

    pub fn is_empty(&self) -> bool {
        self.pages.is_empty()
    }

    /// Total byte size — the "proof size" verifiers ship over the network.
    pub fn byte_size(&self) -> usize {
        self.pages.iter().map(|p| p.len()).sum()
    }

    /// Check that the first page hashes to `root`. The per-index verifiers
    /// start from this and then validate parent→child digests.
    pub fn root_page_matches(&self, root: Hash) -> bool {
        match self.pages.first() {
            Some(first) => sha256(first) == root,
            None => root.is_zero(),
        }
    }

    /// Consume the proof, yielding its pages.
    pub fn into_pages(self) -> Vec<Bytes> {
        self.pages
    }

    /// Failure-injection helper for tests: flip bit `bit` of page
    /// `page_idx`, addressing bits linearly (`bit / 8` is the byte offset,
    /// `bit % 8` the bit within it). Returns `true` iff a bit was actually
    /// flipped; a missing page, an empty page, or a bit offset past the end
    /// of the page leaves the proof untouched and returns `false` — so a
    /// tamper matrix can tell "this flip is checked by the verifier" from
    /// "this flip never happened".
    pub fn tamper(&mut self, page_idx: usize, bit: usize) -> bool {
        let Some(page) = self.pages.get_mut(page_idx) else {
            return false;
        };
        let byte = bit / 8;
        if byte >= page.len() {
            return false;
        }
        let mut raw = page.to_vec();
        raw[byte] ^= 1 << (bit % 8);
        *page = Bytes::from(raw);
        true
    }

    /// Compact serialized form: version byte, varint page count, then
    /// length-prefixed pages. This is the artifact/CLI representation; the
    /// wire protocol frames pages itself.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = ByteWriter::with_capacity(1 + 4 + self.byte_size() + self.pages.len() * 4);
        w.put_u8(PROOF_CODEC_VERSION);
        w.put_varint(self.pages.len() as u64);
        for p in &self.pages {
            w.put_bytes(p);
        }
        w.into_vec()
    }

    /// Decode [`Proof::encode`] output. Total and allocation-capped:
    /// malformed input — truncation, trailing bytes, an implausible page
    /// count, or a length prefix past the buffer — is a [`CodecError`],
    /// never a panic or an attacker-sized allocation.
    pub fn decode(raw: &[u8]) -> Result<Proof, CodecError> {
        let mut r = ByteReader::new(raw);
        let version = r.get_u8()?;
        if version != PROOF_CODEC_VERSION {
            return Err(CodecError::BadTag(version));
        }
        let count = r.get_varint()? as usize;
        if count > MAX_PROOF_PAGES {
            return Err(CodecError::BadLength { what: "proof page count" });
        }
        let mut pages = Vec::with_capacity(count.min(1024));
        for _ in 0..count {
            pages.push(Bytes::copy_from_slice(r.get_bytes()?));
        }
        r.finish()?;
        Ok(Proof::new(pages))
    }
}

/// Outcome of verifying a [`Proof`] against a trusted root digest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProofVerdict {
    /// The proof is valid and shows `key → value`.
    Present(Bytes),
    /// The proof is valid and shows the key is absent.
    Absent,
    /// The proof does not verify against the root (tampering, truncation,
    /// or a path that does not actually lead to the key).
    Invalid(&'static str),
}

impl ProofVerdict {
    pub fn is_valid(&self) -> bool {
        !matches!(self, ProofVerdict::Invalid(_))
    }

    pub fn value(&self) -> Option<&Bytes> {
        match self {
            ProofVerdict::Present(v) => Some(v),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn root_page_check() {
        let page = Bytes::from_static(b"root page bytes");
        let proof = Proof::new(vec![page.clone()]);
        assert!(proof.root_page_matches(sha256(&page)));
        assert!(!proof.root_page_matches(sha256(b"other")));
    }

    #[test]
    fn empty_proof_matches_only_zero_root() {
        let proof = Proof::new(Vec::new());
        assert!(proof.root_page_matches(Hash::ZERO));
        assert!(!proof.root_page_matches(sha256(b"x")));
    }

    #[test]
    fn tamper_changes_hash() {
        let page = Bytes::from_static(b"page");
        let mut proof = Proof::new(vec![page.clone()]);
        assert!(proof.tamper(0, 5));
        assert!(!proof.root_page_matches(sha256(&page)));
        assert_eq!(proof.byte_size(), 4);
    }

    #[test]
    fn tamper_bits_address_linearly_and_never_alias() {
        // Flipping two distinct in-range bits must touch two distinct
        // positions (the old `(bit / 8) % len` mapping aliased them).
        let page = Bytes::from_static(b"abcd");
        let mut a = Proof::new(vec![page.clone()]);
        let mut b = Proof::new(vec![page.clone()]);
        assert!(a.tamper(0, 0));
        assert!(b.tamper(0, 8));
        assert_ne!(a.pages()[0], b.pages()[0], "distinct bits must hit distinct bytes");
        // Flip-twice restores the page: the mapping is deterministic.
        assert!(a.tamper(0, 0));
        assert_eq!(a.pages()[0], page);
    }

    #[test]
    fn tamper_out_of_range_is_a_detectable_noop() {
        let page = Bytes::from_static(b"pg");
        let mut proof = Proof::new(vec![page.clone(), Bytes::new()]);
        assert!(!proof.tamper(0, 16), "bit past the page must not wrap");
        assert!(!proof.tamper(1, 0), "empty page cannot be tampered");
        assert!(!proof.tamper(9, 0), "missing page cannot be tampered");
        assert_eq!(proof.pages()[0], page, "failed tampers leave the proof untouched");
    }

    #[test]
    fn serialized_form_round_trips() {
        for proof in [
            Proof::new(Vec::new()),
            Proof::new(vec![
                Bytes::from_static(b"a page"),
                Bytes::new(),
                Bytes::from(vec![7; 300]),
            ]),
        ] {
            let raw = proof.encode();
            assert_eq!(Proof::decode(&raw).unwrap(), proof);
        }
    }

    #[test]
    fn decode_is_total() {
        let good =
            Proof::new(vec![Bytes::from_static(b"page one"), Bytes::from_static(b"two")]).encode();
        for cut in 0..good.len() {
            assert!(Proof::decode(&good[..cut]).is_err(), "cut at {cut}");
        }
        let mut trailing = good.clone();
        trailing.push(0);
        assert!(matches!(Proof::decode(&trailing), Err(CodecError::TrailingBytes)));
        // Wrong version byte.
        let mut bad_ver = good.clone();
        bad_ver[0] = 9;
        assert!(Proof::decode(&bad_ver).is_err());
        // An implausible page count is rejected before any allocation.
        let mut w = ByteWriter::with_capacity(10);
        w.put_u8(1);
        w.put_varint(u64::MAX);
        assert!(Proof::decode(w.as_slice()).is_err());
    }

    #[test]
    fn verdict_accessors() {
        let v = ProofVerdict::Present(Bytes::from_static(b"v"));
        assert!(v.is_valid());
        assert_eq!(v.value().unwrap(), &Bytes::from_static(b"v"));
        assert!(ProofVerdict::Absent.is_valid());
        assert!(ProofVerdict::Absent.value().is_none());
        assert!(!ProofVerdict::Invalid("bad").is_valid());
    }
}
