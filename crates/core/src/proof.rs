//! Merkle proofs — the tamper-evidence contract.
//!
//! A proof is the ordered list of raw pages on the path from the root to
//! the queried position ("the nodes on the path to the root", §2.3). A
//! verifier holding only the trusted root digest re-hashes each page,
//! checks that each parent references the child by that digest, and walks
//! the same navigation logic as the index — so a forged or tampered page
//! anywhere on the path is detected.

use bytes::Bytes;

use siri_crypto::{sha256, Hash};

/// An ordered path of raw pages, root first.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Proof {
    pages: Vec<Bytes>,
}

impl Proof {
    pub fn new(pages: Vec<Bytes>) -> Self {
        Proof { pages }
    }

    pub fn pages(&self) -> &[Bytes] {
        &self.pages
    }

    pub fn len(&self) -> usize {
        self.pages.len()
    }

    pub fn is_empty(&self) -> bool {
        self.pages.is_empty()
    }

    /// Total byte size — the "proof size" verifiers ship over the network.
    pub fn byte_size(&self) -> usize {
        self.pages.iter().map(|p| p.len()).sum()
    }

    /// Check that the first page hashes to `root`. The per-index verifiers
    /// start from this and then validate parent→child digests.
    pub fn root_page_matches(&self, root: Hash) -> bool {
        match self.pages.first() {
            Some(first) => sha256(first) == root,
            None => root.is_zero(),
        }
    }

    /// Failure-injection helper for tests: flip one bit in page `page_idx`.
    pub fn tamper(&mut self, page_idx: usize, bit: usize) {
        if let Some(page) = self.pages.get_mut(page_idx) {
            let mut raw = page.to_vec();
            if raw.is_empty() {
                return;
            }
            let byte = (bit / 8) % raw.len();
            raw[byte] ^= 1 << (bit % 8);
            *page = Bytes::from(raw);
        }
    }
}

/// Outcome of verifying a [`Proof`] against a trusted root digest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProofVerdict {
    /// The proof is valid and shows `key → value`.
    Present(Bytes),
    /// The proof is valid and shows the key is absent.
    Absent,
    /// The proof does not verify against the root (tampering, truncation,
    /// or a path that does not actually lead to the key).
    Invalid(&'static str),
}

impl ProofVerdict {
    pub fn is_valid(&self) -> bool {
        !matches!(self, ProofVerdict::Invalid(_))
    }

    pub fn value(&self) -> Option<&Bytes> {
        match self {
            ProofVerdict::Present(v) => Some(v),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn root_page_check() {
        let page = Bytes::from_static(b"root page bytes");
        let proof = Proof::new(vec![page.clone()]);
        assert!(proof.root_page_matches(sha256(&page)));
        assert!(!proof.root_page_matches(sha256(b"other")));
    }

    #[test]
    fn empty_proof_matches_only_zero_root() {
        let proof = Proof::new(Vec::new());
        assert!(proof.root_page_matches(Hash::ZERO));
        assert!(!proof.root_page_matches(sha256(b"x")));
    }

    #[test]
    fn tamper_changes_hash() {
        let page = Bytes::from_static(b"page");
        let mut proof = Proof::new(vec![page.clone()]);
        proof.tamper(0, 5);
        assert!(!proof.root_page_matches(sha256(&page)));
        assert_eq!(proof.byte_size(), 4);
    }

    #[test]
    fn verdict_accessors() {
        let v = ProofVerdict::Present(Bytes::from_static(b"v"));
        assert!(v.is_valid());
        assert_eq!(v.value().unwrap(), &Bytes::from_static(b"v"));
        assert!(ProofVerdict::Absent.is_valid());
        assert!(ProofVerdict::Absent.value().is_none());
        assert!(!ProofVerdict::Invalid("bad").is_valid());
    }
}
