//! The canonical key/value record.

use std::cmp::Ordering;

use bytes::Bytes;

/// One key/value record stored in an index.
///
/// Keys and values are opaque byte strings (`bytes::Bytes`, so cloning an
/// entry never copies payloads). Ordering is by key only — the order used
/// by every sorted structure in the repository.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Entry {
    pub key: Bytes,
    pub value: Bytes,
}

impl Entry {
    pub fn new(key: impl Into<Bytes>, value: impl Into<Bytes>) -> Self {
        Entry { key: key.into(), value: value.into() }
    }

    /// Byte footprint of the record itself (the `r` of the paper's cost
    /// model, §4).
    pub fn payload_size(&self) -> usize {
        self.key.len() + self.value.len()
    }
}

impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        self.key.cmp(&other.key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(k: &str, v: &str) -> Entry {
        Entry::new(k.as_bytes().to_vec(), v.as_bytes().to_vec())
    }

    #[test]
    fn ordering_is_by_key() {
        assert!(e("a", "zzz") < e("b", "aaa"));
        assert_eq!(e("a", "1").cmp(&e("a", "2")), Ordering::Equal);
    }

    #[test]
    fn payload_size() {
        assert_eq!(e("key", "value").payload_size(), 8);
    }
}
