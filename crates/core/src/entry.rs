//! The canonical key/value record.

use std::cmp::Ordering;

use bytes::Bytes;

/// One key/value record stored in an index.
///
/// Keys and values are opaque byte strings (`bytes::Bytes`, so cloning an
/// entry never copies payloads). Ordering is by key only — the order used
/// by every sorted structure in the repository.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Entry {
    pub key: Bytes,
    pub value: Bytes,
}

impl Entry {
    pub fn new(key: impl Into<Bytes>, value: impl Into<Bytes>) -> Self {
        Entry { key: key.into(), value: value.into() }
    }

    /// Byte footprint of the record itself (the `r` of the paper's cost
    /// model, §4).
    pub fn payload_size(&self) -> usize {
        self.key.len() + self.value.len()
    }
}

impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        self.key.cmp(&other.key)
    }
}

/// Sort entries by key and drop duplicate keys keeping the *last*
/// occurrence — the batch-update convention (later writes win) shared by
/// every index's `batch_insert`.
pub fn normalize_batch(mut entries: Vec<Entry>) -> Vec<Entry> {
    // Stable sort keeps the original order of equal keys, so keeping the
    // last duplicate preserves write order semantics.
    entries.sort_by(|a, b| a.key.cmp(&b.key));
    let mut out: Vec<Entry> = Vec::with_capacity(entries.len());
    for e in entries {
        match out.last_mut() {
            Some(last) if last.key == e.key => *last = e,
            _ => out.push(e),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(k: &str, v: &str) -> Entry {
        Entry::new(k.as_bytes().to_vec(), v.as_bytes().to_vec())
    }

    #[test]
    fn ordering_is_by_key() {
        assert!(e("a", "zzz") < e("b", "aaa"));
        assert_eq!(e("a", "1").cmp(&e("a", "2")), Ordering::Equal);
    }

    #[test]
    fn normalize_sorts_and_keeps_last_write() {
        let batch = vec![e("b", "1"), e("a", "1"), e("b", "2"), e("c", "1"), e("a", "2")];
        let norm = normalize_batch(batch);
        assert_eq!(norm.len(), 3);
        assert_eq!(norm[0], e("a", "2"));
        assert_eq!(norm[1], e("b", "2"));
        assert_eq!(norm[2], e("c", "1"));
    }

    #[test]
    fn normalize_empty_and_singleton() {
        assert!(normalize_batch(Vec::new()).is_empty());
        assert_eq!(normalize_batch(vec![e("x", "y")]), vec![e("x", "y")]);
    }

    #[test]
    fn payload_size() {
        assert_eq!(e("key", "value").payload_size(), 8);
    }
}
