//! Executable checks of the three SIRI properties (Definition 3.1).
//!
//! Each check is generic over [`SiriIndex`] and takes a factory for fresh
//! (empty) instances over a shared store. Index crates call these from
//! their test suites, and the `repro` harness uses them in the breakdown
//! analysis (§5.5) to demonstrate that the ablated POS-Tree variants lose
//! the corresponding property.

use crate::{Entry, Result, SiriIndex};

/// Deterministic Fisher–Yates shuffle driven by a SplitMix64 stream, so the
/// property checks are reproducible without a `rand` dependency.
fn shuffle<T>(items: &mut [T], seed: u64) {
    let mut state = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut next = || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    for i in (1..items.len()).rev() {
        let j = (next() % (i as u64 + 1)) as usize;
        items.swap(i, j);
    }
}

/// **Structurally Invariant** (Def. 3.1-1): the same record set must yield
/// the same page set — here checked via root hashes, which content
/// addressing makes equivalent. Builds the index `rounds` times with
/// different insertion orders *and* different batch splits; returns Ok(true)
/// iff all roots agree.
pub fn check_structurally_invariant<I, F>(
    make_empty: F,
    entries: &[Entry],
    rounds: usize,
) -> Result<bool>
where
    I: SiriIndex,
    F: Fn() -> I,
{
    let mut reference: Option<crate::Hash> = None;
    for round in 0..rounds.max(1) {
        let mut order: Vec<Entry> = entries.to_vec();
        shuffle(&mut order, 0xC0FFEE ^ round as u64);
        let mut idx = make_empty();
        // Vary the batching too: round 0 one big batch, round 1 singletons,
        // later rounds random-ish chunks.
        let chunk = match round {
            0 => order.len().max(1),
            1 => 1,
            r => (r * 7 % 13) + 2,
        };
        for batch in order.chunks(chunk) {
            idx.batch_insert(batch.to_vec())?;
        }
        match reference {
            None => reference = Some(idx.root()),
            Some(r) if r != idx.root() => return Ok(false),
            _ => {}
        }
    }
    Ok(true)
}

/// **Recursively Identical** (Def. 3.1-2): adding one record to I′ must
/// reuse at least as many pages as it replaces:
/// |P(I) ∩ P(I′)| ≥ |P(I) − P(I′)|. Checked on the given dataset by
/// growing the index one entry at a time and testing every consecutive
/// pair. Returns the fraction of steps that satisfy the inequality (1.0 =
/// the property holds everywhere). Trees shorter than the dataset's growth
/// horizon can violate it during the first few inserts (a 2-page tree
/// replaces both pages), so callers assert against a threshold.
pub fn recursively_identical_score<I, F>(make_empty: F, entries: &[Entry]) -> Result<f64>
where
    I: SiriIndex,
    F: Fn() -> I,
{
    let mut idx = make_empty();
    let mut prev_pages = idx.page_set();
    let mut satisfied = 0usize;
    let mut steps = 0usize;
    for e in entries {
        idx.insert(&e.key, e.value.clone())?;
        let pages = idx.page_set();
        let shared = pages.intersection(&prev_pages).len();
        let replaced = pages.difference(&prev_pages).len();
        if shared >= replaced {
            satisfied += 1;
        }
        steps += 1;
        prev_pages = pages;
    }
    Ok(if steps == 0 { 1.0 } else { satisfied as f64 / steps as f64 })
}

/// **Universally Reusable** (Def. 3.1-3): for an instance I there exists a
/// larger instance I′ sharing at least one page. Checked constructively by
/// extending a copy of the index with `extra` and testing that the page
/// sets intersect while I′ is strictly larger. "Larger" is measured in
/// bytes rather than page count because MBT's page count is capped by its
/// fixed bucket capacity (its pages grow instead, §3.4.2).
pub fn check_universally_reusable<I>(index: &I, extra: &[Entry]) -> Result<bool>
where
    I: SiriIndex,
{
    let before = index.page_set();
    if before.is_empty() {
        return Ok(false);
    }
    let mut bigger = index.clone();
    bigger.batch_insert(extra.to_vec())?;
    let after = bigger.page_set();
    Ok(after.byte_size() > before.byte_size() && !after.intersection(&before).is_empty())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shuffle_is_deterministic_and_permutes() {
        let mut a: Vec<u32> = (0..100).collect();
        let mut b: Vec<u32> = (0..100).collect();
        shuffle(&mut a, 42);
        shuffle(&mut b, 42);
        assert_eq!(a, b);
        let mut c: Vec<u32> = (0..100).collect();
        shuffle(&mut c, 43);
        assert_ne!(a, c, "different seeds should differ");
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>(), "must stay a permutation");
    }
}
