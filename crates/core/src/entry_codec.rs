//! Canonical byte encoding of entries inside leaf pages.
//!
//! MBT buckets, POS-Tree leaves and MVMB+-Tree leaves all serialize runs of
//! entries with this codec, so their `byte(p)` page sizes are directly
//! comparable in the deduplication metrics. (MPT stores values at trie
//! positions derived from the key, so it only uses the value half.)
//!
//! Layout per entry: `varint(key_len) key varint(value_len) value`.

use bytes::Bytes;
use siri_encoding::{ByteReader, ByteWriter, CodecError};

use crate::Entry;

/// Append one entry to `w`.
pub fn write_entry(w: &mut ByteWriter, entry: &Entry) {
    w.put_bytes(&entry.key);
    w.put_bytes(&entry.value);
}

/// Read one entry.
pub fn read_entry(r: &mut ByteReader<'_>) -> Result<Entry, CodecError> {
    let key = Bytes::copy_from_slice(r.get_bytes()?);
    let value = Bytes::copy_from_slice(r.get_bytes()?);
    Ok(Entry { key, value })
}

/// Exact encoded size of an entry, used to pre-size buffers and by the
/// chunker to reason about byte offsets without serializing twice.
pub fn entry_encoded_len(entry: &Entry) -> usize {
    siri_encoding::varint::len(entry.key.len() as u64)
        + entry.key.len()
        + siri_encoding::varint::len(entry.value.len() as u64)
        + entry.value.len()
}

/// Exact encoded size of [`encode_entries`]' output — used to pre-size
/// node buffers to their final length in one allocation.
pub fn entries_encoded_len(entries: &[Entry]) -> usize {
    siri_encoding::varint::len(entries.len() as u64)
        + entries.iter().map(entry_encoded_len).sum::<usize>()
}

/// Serialize a run of entries (count-prefixed) into an existing writer —
/// the allocation-free path node codecs use: the run lands directly in the
/// node's page buffer instead of transiting a temporary `Vec`.
pub fn encode_entries_into(w: &mut ByteWriter, entries: &[Entry]) {
    w.put_varint(entries.len() as u64);
    for e in entries {
        write_entry(w, e);
    }
}

/// Serialize a run of entries (count-prefixed).
pub fn encode_entries(entries: &[Entry]) -> Vec<u8> {
    let mut w = ByteWriter::with_capacity(entries_encoded_len(entries));
    encode_entries_into(&mut w, entries);
    w.into_vec()
}

/// Zero-copy decode of a run serialized by [`encode_entries`] that lives
/// inside `page` starting at byte `body_start`.
///
/// Keys and values are `Bytes::slice`s of the page — no payload copies.
/// Pages are immutable and refcounted, so decoded entries stay valid for
/// as long as anyone holds them; this is the hot read path for every
/// leaf/bucket decode.
pub fn decode_entries_zc(page: &Bytes, body_start: usize) -> Result<Vec<Entry>, CodecError> {
    let body = page.get(body_start..).ok_or(CodecError::Truncated)?;
    let mut r = ByteReader::new(body);
    let count = r.get_varint()?;
    if count > body.len() as u64 {
        return Err(CodecError::BadLength { what: "entry count" });
    }
    let mut out = Vec::with_capacity(count as usize);
    for _ in 0..count {
        let klen = r.get_varint()? as usize;
        let koff = body_start + r.offset();
        r.get_raw(klen)?;
        let vlen = r.get_varint()? as usize;
        let voff = body_start + r.offset();
        r.get_raw(vlen)?;
        out.push(Entry {
            key: page.slice(koff..koff + klen),
            value: page.slice(voff..voff + vlen),
        });
    }
    r.finish()?;
    Ok(out)
}

/// Decode a run serialized by [`encode_entries`].
pub fn decode_entries(input: &[u8]) -> Result<Vec<Entry>, CodecError> {
    let mut r = ByteReader::new(input);
    let count = r.get_varint()?;
    if count > input.len() as u64 {
        // Each entry costs at least 2 bytes; a count beyond the input size
        // is certainly corrupt. Guards against huge pre-allocations.
        return Err(CodecError::BadLength { what: "entry count" });
    }
    let mut out = Vec::with_capacity(count as usize);
    for _ in 0..count {
        out.push(read_entry(&mut r)?);
    }
    r.finish()?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(k: &[u8], v: &[u8]) -> Entry {
        Entry::new(k.to_vec(), v.to_vec())
    }

    #[test]
    fn round_trip() {
        let entries = vec![e(b"alpha", b"1"), e(b"beta", &[0u8; 300]), e(b"", b"")];
        let enc = encode_entries(&entries);
        assert_eq!(decode_entries(&enc).unwrap(), entries);
    }

    #[test]
    fn encoded_len_is_exact() {
        let entry = e(b"some-key", &[7u8; 200]);
        let mut w = ByteWriter::new();
        write_entry(&mut w, &entry);
        assert_eq!(w.len(), entry_encoded_len(&entry));
    }

    #[test]
    fn entries_encoded_len_is_exact() {
        for run in [vec![], vec![e(b"k", b"v")], vec![e(b"alpha", &[1u8; 300]), e(b"", b"")]] {
            assert_eq!(encode_entries(&run).len(), entries_encoded_len(&run));
        }
    }

    #[test]
    fn zero_copy_decode_matches_copying_decode() {
        let entries = vec![e(b"alpha", b"1"), e(b"beta", &[9u8; 300]), e(b"", b"")];
        let mut page = vec![0xFFu8; 7]; // simulated node header
        page.extend_from_slice(&encode_entries(&entries));
        let page = Bytes::from(page);
        let zc = decode_entries_zc(&page, 7).unwrap();
        assert_eq!(zc, entries);
        // Slices point into the page (no copy): same allocation.
        assert!(zc[1].value.as_ptr() as usize - page.as_ptr() as usize > 0);
        // Corruption and truncation still rejected.
        assert!(decode_entries_zc(&page, 8).is_err());
        assert!(decode_entries_zc(&page.slice(..page.len() - 1), 7).is_err());
        assert!(decode_entries_zc(&page, page.len() + 10).is_err());
    }

    #[test]
    fn rejects_corrupt_counts_and_truncation() {
        let entries = vec![e(b"k", b"v")];
        let mut enc = encode_entries(&entries);
        enc[0] = 0xff; // count now huge/truncated varint
        assert!(decode_entries(&enc).is_err());

        let enc = encode_entries(&entries);
        assert!(decode_entries(&enc[..enc.len() - 1]).is_err());
    }

    #[test]
    fn rejects_trailing_bytes() {
        let mut enc = encode_entries(&[e(b"k", b"v")]);
        enc.push(0);
        assert!(matches!(decode_entries(&enc), Err(CodecError::TrailingBytes)));
    }
}
