//! Structure-level instrumentation — the per-index shape counters behind
//! the BENCH report schema (node count, height, occupancy).
//!
//! [`crate::SiriIndex`] deliberately stays free of reporting concerns;
//! the four index crates implement [`StructureStats`] alongside it so the
//! experiment runner can ask any structure "what do you look like right
//! now" without knowing which structure it is. The numbers feed the
//! paper's storage figures (node counts of Figures 14–16) and the §4.1
//! height terms the cost model predicts.

use crate::Result;
use siri_store::CacheStats;

/// A snapshot of one index version's physical shape.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct StructureReport {
    /// Distinct pages reachable from the root (the |P(I)| of §4.2).
    pub nodes: u64,
    /// Total encoded bytes of those pages.
    pub bytes: u64,
    /// Tree height in levels, counting root and leaf; 0 when empty. For
    /// the MPT this is the *maximum* leaf depth (paths vary per key).
    pub height: u32,
    /// Records stored in this version.
    pub entries: u64,
    /// Mean entries per leaf (POS-Tree/MVMB+) or per bucket (MBT); for the
    /// MPT, whose leaves hold one suffix each, the mean entries per *node*
    /// — a density measure in every case.
    pub leaf_occupancy: f64,
}

impl StructureReport {
    /// Mean encoded page size — the tuning target of the §5 "node size
    /// ≈ 1 KB" rule.
    pub fn avg_node_bytes(&self) -> f64 {
        if self.nodes == 0 {
            0.0
        } else {
            self.bytes as f64 / self.nodes as f64
        }
    }
}

/// Shape reporting implemented by all four index structures.
pub trait StructureStats {
    /// Walk the current version and report its shape. O(nodes): intended
    /// for checkpoints, not per-operation use.
    fn structure_stats(&self) -> Result<StructureReport>;

    /// Decoded-node cache counters of this handle (hits, misses,
    /// evictions) — the client-side half of the §5.6.1 hit-ratio story.
    fn node_cache_stats(&self) -> CacheStats;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn avg_node_bytes_edge_cases() {
        assert_eq!(StructureReport::default().avg_node_bytes(), 0.0);
        let r = StructureReport { nodes: 4, bytes: 4096, ..Default::default() };
        assert!((r.avg_node_bytes() - 1024.0).abs() < 1e-12);
    }
}
