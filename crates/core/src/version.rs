//! A branching version manager over any [`SiriIndex`].
//!
//! Immutability makes versioning trivial — a version is just a retained
//! index handle (root hash). This module adds the bookkeeping that
//! collaborative applications need (§2.1's "non-linear" management à la
//! git): named branches, commit history, branching from any commit, and
//! rollback. It is used by the examples and the Wiki/collaboration
//! experiments.

use std::collections::HashMap;

use crate::{Result, SiriIndex};

/// Identifier of a committed version.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VersionTag(pub u64);

/// One committed version.
#[derive(Debug, Clone)]
pub struct Commit<I> {
    pub tag: VersionTag,
    pub parent: Option<VersionTag>,
    pub message: String,
    pub index: I,
}

/// Branching commit graph over index snapshots.
pub struct VersionStore<I> {
    commits: Vec<Commit<I>>,
    branches: HashMap<String, VersionTag>,
}

impl<I: SiriIndex> Default for VersionStore<I> {
    fn default() -> Self {
        Self::new()
    }
}

impl<I: SiriIndex> VersionStore<I> {
    pub fn new() -> Self {
        VersionStore { commits: Vec::new(), branches: HashMap::new() }
    }

    /// Record `index` as the new head of `branch` (creating the branch if
    /// needed). Cloning the handle is O(1); pages are shared in the store.
    pub fn commit(&mut self, branch: &str, index: &I, message: impl Into<String>) -> VersionTag {
        let tag = VersionTag(self.commits.len() as u64);
        let parent = self.branches.get(branch).copied();
        self.commits.push(Commit { tag, parent, message: message.into(), index: index.clone() });
        self.branches.insert(branch.to_string(), tag);
        tag
    }

    /// The head commit of a branch.
    pub fn head(&self, branch: &str) -> Option<&Commit<I>> {
        self.branches.get(branch).map(|t| &self.commits[t.0 as usize])
    }

    /// Any commit by tag.
    pub fn get(&self, tag: VersionTag) -> Option<&Commit<I>> {
        self.commits.get(tag.0 as usize)
    }

    /// Create `new_branch` pointing at the head of `from` (or at a specific
    /// commit). Returns false if the source does not exist.
    pub fn branch(&mut self, new_branch: &str, from: &str) -> bool {
        match self.branches.get(from).copied() {
            Some(tag) => {
                self.branches.insert(new_branch.to_string(), tag);
                true
            }
            None => false,
        }
    }

    /// Move a branch head back `n` commits along its parent chain.
    /// Returns the new head tag, or `None` if the chain is shorter than `n`.
    pub fn rollback(&mut self, branch: &str, n: usize) -> Option<VersionTag> {
        let mut tag = self.branches.get(branch).copied()?;
        for _ in 0..n {
            tag = self.commits[tag.0 as usize].parent?;
        }
        self.branches.insert(branch.to_string(), tag);
        Some(tag)
    }

    /// Walk a branch's history from head to root.
    pub fn history(&self, branch: &str) -> Vec<&Commit<I>> {
        let mut out = Vec::new();
        let mut cur = self.branches.get(branch).copied();
        while let Some(tag) = cur {
            let commit = &self.commits[tag.0 as usize];
            out.push(commit);
            cur = commit.parent;
        }
        out
    }

    /// All commits, in commit order.
    pub fn commits(&self) -> &[Commit<I>] {
        &self.commits
    }

    /// Names of all branches.
    pub fn branch_names(&self) -> Vec<&str> {
        self.branches.keys().map(|s| s.as_str()).collect()
    }

    /// Diff the heads of two branches (paper §4.1.3 applied at the version
    /// level).
    pub fn diff_branches(&self, a: &str, b: &str) -> Result<Vec<crate::DiffEntry>> {
        match (self.head(a), self.head(b)) {
            (Some(ca), Some(cb)) => ca.index.diff(&cb.index),
            _ => Ok(Vec::new()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DiffEntry, Entry, EntryCursor, LookupTrace, Proof, ProofVerdict, WriteBatch};
    use bytes::Bytes;
    use siri_crypto::{sha256, Hash};
    use siri_store::{MemStore, PageSet, SharedStore};
    use std::collections::BTreeMap;
    use std::ops::Bound;

    /// Minimal in-memory SiriIndex for exercising the version manager
    /// without pulling an index crate into a dev-dependency cycle.
    #[derive(Clone)]
    struct FakeIndex {
        store: SharedStore,
        map: BTreeMap<Bytes, Bytes>,
    }

    impl FakeIndex {
        fn new() -> Self {
            FakeIndex { store: MemStore::new_shared(), map: BTreeMap::new() }
        }
    }

    impl crate::SiriIndex for FakeIndex {
        fn kind(&self) -> &'static str {
            "fake"
        }
        fn store(&self) -> &SharedStore {
            &self.store
        }
        fn root(&self) -> Hash {
            if self.map.is_empty() {
                return Hash::ZERO;
            }
            let mut bytes = Vec::new();
            for (k, v) in &self.map {
                bytes.extend_from_slice(k);
                bytes.push(0);
                bytes.extend_from_slice(v);
                bytes.push(1);
            }
            sha256(&bytes)
        }
        fn at_root(&self, _root: Hash) -> Self {
            // FakeIndex carries its content in the handle itself; version
            // tests only re-root to the current head, so a clone suffices.
            self.clone()
        }
        fn get(&self, key: &[u8]) -> crate::Result<Option<Bytes>> {
            Ok(self.map.get(key).cloned())
        }
        fn get_traced(&self, key: &[u8]) -> crate::Result<(Option<Bytes>, LookupTrace)> {
            Ok((self.map.get(key).cloned(), LookupTrace::default()))
        }
        fn commit(&mut self, batch: WriteBatch) -> crate::Result<Hash> {
            for op in batch.normalize() {
                match op.value {
                    Some(v) => self.map.insert(op.key, v),
                    None => self.map.remove(&op.key),
                };
            }
            Ok(self.root())
        }
        fn range(&self, start: Bound<&[u8]>, end: Bound<&[u8]>) -> EntryCursor {
            let start = crate::own_bound(start).map(Bytes::from);
            let end = crate::own_bound(end).map(Bytes::from);
            let entries: Vec<_> = self
                .map
                .range((start, end))
                .map(|(k, v)| Ok(Entry { key: k.clone(), value: v.clone() }))
                .collect();
            EntryCursor::new(entries.into_iter())
        }
        fn page_set(&self) -> PageSet {
            PageSet::new()
        }
        fn diff(&self, other: &Self) -> crate::Result<Vec<DiffEntry>> {
            crate::diff_by_scan(self, other)
        }
        fn prove(&self, _key: &[u8]) -> crate::Result<Proof> {
            Ok(Proof::new(Vec::new()))
        }
        fn verify_proof(_root: Hash, _key: &[u8], _proof: &Proof) -> ProofVerdict {
            ProofVerdict::Absent
        }
    }

    fn e(k: &str, v: &str) -> Entry {
        Entry::new(k.as_bytes().to_vec(), v.as_bytes().to_vec())
    }

    #[test]
    fn commit_head_and_history() {
        let mut idx = FakeIndex::new();
        let mut vs = VersionStore::new();
        idx.batch_insert(vec![e("a", "1")]).unwrap();
        let t0 = vs.commit("main", &idx, "first");
        idx.batch_insert(vec![e("b", "2")]).unwrap();
        let t1 = vs.commit("main", &idx, "second");
        assert_eq!(vs.head("main").unwrap().tag, t1);
        assert_eq!(vs.get(t0).unwrap().message, "first");
        let hist = vs.history("main");
        assert_eq!(hist.len(), 2);
        assert_eq!(hist[0].tag, t1, "newest first");
        assert_eq!(hist[1].parent, None);
    }

    #[test]
    fn branch_and_rollback_do_not_disturb_main() {
        let mut idx = FakeIndex::new();
        let mut vs = VersionStore::new();
        for i in 0..5 {
            idx.batch_insert(vec![e("k", &format!("v{i}"))]).unwrap();
            vs.commit("main", &idx, format!("c{i}"));
        }
        assert!(vs.branch("fix", "main"));
        assert!(!vs.branch("x", "no-such-branch"));
        let tag = vs.rollback("fix", 2).unwrap();
        assert_eq!(vs.get(tag).unwrap().index.get(b"k").unwrap().unwrap().as_ref(), b"v2");
        assert_eq!(vs.head("main").unwrap().index.get(b"k").unwrap().unwrap().as_ref(), b"v4");
        // Rolling back past the root returns None and leaves the head alone.
        assert!(vs.rollback("fix", 99).is_none());
    }

    #[test]
    fn diff_branches_reports_divergence() {
        let mut idx = FakeIndex::new();
        let mut vs = VersionStore::new();
        idx.batch_insert(vec![e("shared", "x")]).unwrap();
        vs.commit("main", &idx, "base");
        vs.branch("feature", "main");
        let mut feature_idx = vs.head("feature").unwrap().index.clone();
        feature_idx.batch_insert(vec![e("only-here", "y")]).unwrap();
        vs.commit("feature", &feature_idx, "feature work");
        let d = vs.diff_branches("main", "feature").unwrap();
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].key.as_ref(), b"only-here");
        assert!(vs.diff_branches("main", "ghost").unwrap().is_empty());
    }

    #[test]
    fn branch_names_listed() {
        let idx = FakeIndex::new();
        let mut vs = VersionStore::new();
        vs.commit("main", &idx, "init");
        vs.branch("dev", "main");
        let mut names = vs.branch_names();
        names.sort_unstable();
        assert_eq!(names, vec!["dev", "main"]);
        assert_eq!(vs.commits().len(), 1);
    }
}
