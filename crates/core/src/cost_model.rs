//! The closed-form operation bounds of §4.1 and the deduplication-ratio
//! predictions of §4.2, as executable formulas.
//!
//! These are used two ways: the `repro bounds` harness fits measured step
//! counts against them, and unit/integration tests assert that measured
//! lookup paths track the predicted growth (shape, not constants).

/// Parameters of the cost model (Table 1 of the paper).
#[derive(Debug, Clone, Copy)]
pub struct ModelParams {
    /// N — total number of records.
    pub n: f64,
    /// m — fanout of POS-Tree/MBT internal nodes (entries per page).
    pub m: f64,
    /// B — number of MBT buckets (its fixed capacity).
    pub b: f64,
    /// L — key length in nibbles (MPT path length upper bound).
    pub l: f64,
}

fn log_base(base: f64, x: f64) -> f64 {
    if x <= 1.0 {
        0.0
    } else {
        x.ln() / base.ln()
    }
}

/// MPT lookup cost: max(O(L), O(log_m N)) — §4.1.1. In practice L wins
/// ("L is often larger than log_m N in the real systems").
pub fn mpt_lookup(p: ModelParams) -> f64 {
    p.l.max(log_base(p.m, p.n))
}

/// MBT lookup cost: O(log_m B + log₂(N/B)) — tree traversal plus binary
/// search inside a bucket of expected size N/B.
pub fn mbt_lookup(p: ModelParams) -> f64 {
    log_base(p.m, p.b) + log_base(2.0, (p.n / p.b).max(1.0))
}

/// POS-Tree lookup cost: O(log_m N).
pub fn pos_lookup(p: ModelParams) -> f64 {
    log_base(p.m, p.n)
}

/// MVMB+-Tree lookup cost: O(log_m N) — a balanced B+-tree.
pub fn mvmb_lookup(p: ModelParams) -> f64 {
    log_base(p.m, p.n)
}

/// MPT update cost — same order as lookup (§4.1.2).
pub fn mpt_update(p: ModelParams) -> f64 {
    mpt_lookup(p)
}

/// MBT update cost: O(log_m B + N/B). The linear N/B term is the bucket
/// copy + re-hash, which dominates when N ≫ B — the effect behind MBT's
/// write-throughput collapse in Figure 6.
pub fn mbt_update(p: ModelParams) -> f64 {
    log_base(p.m, p.b) + p.n / p.b
}

/// POS-Tree update cost: O(log_m N) (rolling hash per touched node is
/// constant).
pub fn pos_update(p: ModelParams) -> f64 {
    pos_lookup(p)
}

/// MVMB+-Tree update cost: O(log_m N).
pub fn mvmb_update(p: ModelParams) -> f64 {
    mvmb_lookup(p)
}

/// Diff cost with δ differing records: δ × per-structure lookup-ish factor
/// (§4.1.3). Merge is bounded by the same expression (§4.1.4).
pub fn diff_cost(per_record: f64, delta: f64) -> f64 {
    delta * per_record
}

/// Predicted deduplication ratio for MBT and POS-Tree under the continuous
/// differential analysis of §4.2.2: η ≈ 1/2 − α/2 for two sequential
/// versions differing in an α fraction of records. (Remarkably independent
/// of B and m.)
pub fn eta_sequential(alpha: f64) -> f64 {
    0.5 - alpha / 2.0
}

/// Predicted MPT deduplication ratio, §4.2.2: η = 1/2 − α·N·(L·c + r) /
/// (2·(N·r + N·L̄·c)), where `l` is the full key length, `l_bar` the average
/// populated path length, `r` the record size and `c` the hash size. When
/// L ≥ L̄ this is ≥ the MBT/POS bound.
pub fn eta_mpt(alpha: f64, l: f64, l_bar: f64, r: f64, c: f64) -> f64 {
    0.5 - alpha * (l * c + r) / (2.0 * (r + l_bar * c))
}

#[cfg(test)]
mod tests {
    use super::*;

    const P: ModelParams = ModelParams { n: 1_000_000.0, m: 16.0, b: 10_000.0, l: 32.0 };

    #[test]
    fn mpt_lookup_is_key_length_bound_for_realistic_sizes() {
        // L = 32 nibbles vs log_16(1e6) ≈ 5: L dominates, as the paper notes.
        assert_eq!(mpt_lookup(P), 32.0);
    }

    #[test]
    fn mbt_update_grows_linearly_in_n_over_b() {
        let small = mbt_update(ModelParams { n: 100_000.0, ..P });
        let big = mbt_update(ModelParams { n: 1_600_000.0, ..P });
        // 16x data → bucket-copy term scales 16x.
        assert!(big > small * 10.0, "big={big} small={small}");
    }

    #[test]
    fn pos_scales_logarithmically() {
        let small = pos_update(ModelParams { n: 10_000.0, ..P });
        let big = pos_update(ModelParams { n: 2_560_000.0, ..P });
        assert!(big < small * 2.0, "256x data must cost < 2x steps");
    }

    #[test]
    fn mbt_lookup_beats_pos_when_buckets_fit() {
        // With N == B the bucket scan is O(1) and MBT's path is the shortest.
        let p = ModelParams { n: 10_000.0, b: 10_000.0, ..P };
        assert!(mbt_lookup(p) <= pos_lookup(p));
    }

    #[test]
    fn eta_predictions_match_paper_endpoints() {
        assert!((eta_sequential(0.0) - 0.5).abs() < 1e-12);
        assert!((eta_sequential(1.0) - 0.0).abs() < 1e-12);
        // MPT with L == L̄ and negligible hash overhead degenerates to the
        // same 1/2 − α/2 line.
        let e = eta_mpt(0.4, 10.0, 10.0, 256.0, 0.0);
        assert!((e - eta_sequential(0.4)).abs() < 1e-12);
        // Longer actual keys (L > L̄) reduce MPT's predicted ratio per the
        // paper's inequality.
        assert!(eta_mpt(0.4, 20.0, 10.0, 256.0, 32.0) < eta_mpt(0.4, 10.0, 10.0, 256.0, 32.0));
    }

    #[test]
    fn diff_cost_scales_with_delta() {
        assert_eq!(diff_cost(5.0, 10.0), 50.0);
    }
}
