//! The unified index interface — one API over MPT, MBT, POS-Tree and the
//! MVMB+-Tree baseline, mirroring the paper's operation set (§3.1, §4.1):
//! `put`/`del` via atomic [`WriteBatch`] commits, `get`, streaming range
//! scans, comparison (diff), merge, plus the page-set accessor feeding the
//! deduplication metrics.

use std::ops::Bound;

use bytes::Bytes;

use siri_crypto::Hash;
use siri_store::{PageSet, SharedStore};

use crate::cursor::{prefix_successor, EntryCursor};
use crate::{DiffEntry, Entry, IndexError, Proof, ProofVerdict, Result, WriteBatch};

/// Instrumentation captured by [`SiriIndex::get_traced`].
///
/// Feeds two of the paper's plots directly: the traversed-height histogram
/// (Figure 9) and the MBT load-vs-scan breakdown (Figure 13).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LookupTrace {
    /// Pages fetched from the store along the path (tree height, counting
    /// the leaf/bucket page). Node-cache hits count too: the page was
    /// *needed*, it just wasn't re-fetched (see `cache_hits`).
    pub pages_loaded: u32,
    /// Levels traversed root→leaf, counting both ends.
    pub height: u32,
    /// Entries examined inside the final leaf/bucket (binary search probes
    /// count the entries they touch).
    pub leaf_entries_scanned: u32,
    /// Nanoseconds spent fetching + decoding pages ("load time", Fig. 13).
    pub load_nanos: u64,
    /// Nanoseconds spent searching within the leaf ("scan time", Fig. 13).
    pub scan_nanos: u64,
    /// Path nodes served from the index's decoded-node cache — no store
    /// access, no decode (the §5.6.1 hit-ratio lever, per lookup).
    pub cache_hits: u32,
    /// Path nodes that had to be fetched from the store and decoded.
    pub cache_misses: u32,
}

/// The SIRI index interface (paper §3, §4).
///
/// # Versioning model
///
/// A value implementing `SiriIndex` is a lightweight *handle*:
/// `(store, root hash, parameters)`. Updates rewrite the copy-on-write
/// spine inside the shared store and swap the handle's root. Cloning a
/// handle therefore snapshots a version for free, and any number of
/// versions coexist in one store, sharing pages — the paper's immutability
/// model.
///
/// # Write model
///
/// All mutation flows through [`SiriIndex::commit`]: a [`WriteBatch`] of
/// puts and deletes is resolved per key (last op wins) and applied in one
/// copy-on-write pass, yielding exactly one new version. `insert`,
/// `delete` and `batch_insert` are thin single-op / puts-only wrappers.
///
/// # Read model
///
/// All enumeration flows through [`SiriIndex::range`]: a lazy
/// [`EntryCursor`] that walks the tree leaf-by-leaf through the decoded-
/// node cache and yields entries in key order. `scan` and `scan_prefix`
/// are bound-sugar over it; nothing in the read path materializes the
/// dataset.
///
/// # Contract
///
/// * `commit` with batch `B` must leave the index equal to applying `B`'s
///   operations one by one (later operations on a key win); deleting an
///   absent key is a no-op.
/// * For the three SIRI structures (MPT, MBT, POS-Tree), the root hash must
///   be a pure function of the *surviving* key/value set — *Structurally
///   Invariant*. In particular, delete-then-reinsert restores the identical
///   root. The MVMB+ baseline deliberately violates this.
/// * `range` yields entries sorted by key (MBT merge-sorts its buckets on
///   the fly, reflecting that hashing destroys global order).
pub trait SiriIndex: Clone + Send + Sync {
    /// Short structure name, e.g. `"pos-tree"` — used in reports.
    fn kind(&self) -> &'static str;

    /// The shared page store this handle operates on.
    fn store(&self) -> &SharedStore;

    /// Content address of the root page; [`Hash::ZERO`] for an empty index.
    /// This is the tamper-evident digest of the entire dataset.
    fn root(&self) -> Hash;

    /// A handle to a *different version* of this index sharing everything
    /// else — store, parameters and the decoded-node cache. Cheaper than
    /// a factory `open` (which allocates a fresh cache) and the right way
    /// to follow a moving head: versions of one lineage share most pages,
    /// so re-rooting keeps the cache warm.
    fn at_root(&self, root: Hash) -> Self;

    /// Point lookup.
    fn get(&self, key: &[u8]) -> Result<Option<Bytes>>;

    /// Point lookup with instrumentation (Figures 9 and 13).
    fn get_traced(&self, key: &[u8]) -> Result<(Option<Bytes>, LookupTrace)>;

    /// Apply a [`WriteBatch`] of puts and deletes atomically in one
    /// copy-on-write pass, returning the new root digest. Operations on the
    /// same key resolve to the last occurrence; deleting an absent key is a
    /// no-op. Clone the handle first to keep the old version.
    fn commit(&mut self, batch: WriteBatch) -> Result<Hash>;

    /// Insert or overwrite one record — a one-put [`WriteBatch`].
    fn insert(&mut self, key: &[u8], value: Bytes) -> Result<()> {
        let mut batch = WriteBatch::new();
        batch.put(Bytes::copy_from_slice(key), value);
        self.commit(batch).map(drop)
    }

    /// Remove one record — a one-delete [`WriteBatch`]. Removing an absent
    /// key leaves the root unchanged.
    fn delete(&mut self, key: &[u8]) -> Result<()> {
        let mut batch = WriteBatch::new();
        batch.delete(Bytes::copy_from_slice(key));
        self.commit(batch).map(drop)
    }

    /// Insert or overwrite a batch of records — a puts-only [`WriteBatch`].
    /// Duplicate keys inside the batch resolve to the last occurrence.
    fn batch_insert(&mut self, entries: Vec<Entry>) -> Result<()> {
        self.commit(WriteBatch::from_entries(entries)).map(drop)
    }

    /// Stream all entries with keys inside `(start, end)` in key order,
    /// lazily — the unified read path behind `scan` and `scan_prefix`.
    /// The cursor walks leaf-by-leaf through the decoded-node cache; errors
    /// surface as `Err` items.
    fn range(&self, start: Bound<&[u8]>, end: Bound<&[u8]>) -> EntryCursor;

    /// All entries whose keys start with `prefix`, in key order — sugar for
    /// [`SiriIndex::range`] over `[prefix, prefix-successor)`.
    fn scan_prefix(&self, prefix: &[u8]) -> EntryCursor {
        match prefix_successor(prefix) {
            Some(end) => self.range(Bound::Included(prefix), Bound::Excluded(&end)),
            None => self.range(Bound::Included(prefix), Bound::Unbounded),
        }
    }

    /// All entries, sorted by key, materialized. Prefer iterating
    /// [`SiriIndex::range`] when the result does not need to be held whole.
    fn scan(&self) -> Result<Vec<Entry>> {
        self.range(Bound::Unbounded, Bound::Unbounded).collect()
    }

    /// Number of records. The default drains a cursor (no sort, but still
    /// O(N) page walks); implementations override when they can count from
    /// node metadata or leaf traversal without decoding values.
    fn len(&self) -> Result<usize> {
        let mut n = 0usize;
        for entry in self.range(Bound::Unbounded, Bound::Unbounded) {
            entry?;
            n += 1;
        }
        Ok(n)
    }

    fn is_empty(&self) -> bool {
        self.root().is_zero()
    }

    /// The page set P(I) reachable from the root — input to the
    /// deduplication metrics (§4.2).
    fn page_set(&self) -> PageSet;

    /// Structural diff (paper §4.1.3): every key present in exactly one
    /// side or with different values on the two sides. Implementations
    /// exploit structural invariance by skipping identical subtree hashes.
    fn diff(&self, other: &Self) -> Result<Vec<DiffEntry>>;

    /// Produce a Merkle proof for `key` (present or absent).
    fn prove(&self, key: &[u8]) -> Result<Proof>;

    /// Produce a range proof: the page set whose verification yields
    /// *exactly* the entries in `[start, end)` (see
    /// [`crate::verify_anchored_range`]). Pages are deduplicated by
    /// content hash. The default refuses — the four real structures
    /// override it.
    fn prove_range(&self, start: Bound<&[u8]>, end: Bound<&[u8]>) -> Result<Proof> {
        let _ = (start, end);
        Err(IndexError::Unsupported("range proofs"))
    }

    /// Produce one proof for many keys, deduplicating the interior pages
    /// their paths share (see [`crate::verify_anchored_batch`]). The
    /// default refuses — the four real structures override it.
    fn prove_batch(&self, keys: &[Bytes]) -> Result<Proof> {
        let _ = keys;
        Err(IndexError::Unsupported("batched proofs"))
    }

    /// Verify a proof against a trusted root digest. An associated function
    /// on purpose: verifiers hold only the digest, not the store.
    fn verify_proof(root: Hash, key: &[u8], proof: &Proof) -> ProofVerdict
    where
        Self: Sized;
}
