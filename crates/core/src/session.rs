//! The engine-or-wire session abstraction.
//!
//! [`Session`] is the narrow waist between *what a Forkbase client does*
//! (commit batches, read keys, stream ranges, manage branches, ask for
//! proofs) and *where the engine runs*. The in-process engine implements
//! it directly; `siri-client`'s `RemoteSession` implements it over the
//! length-prefixed wire protocol — so the CLI, the examples and the
//! behavioral test suites run unchanged against either side of a network
//! boundary (toggled by `SIRI_REMOTE=1` in the integration suites).
//!
//! The trait is deliberately object-safe: callers hold a
//! `Box<dyn Session>` and never learn which transport answered them. It
//! also deliberately excludes engine-operator surface (sharding control,
//! GC, cache statistics) — those stay on the concrete engine type, because
//! a remote client has no business resizing a server's shards.

use std::ops::Bound;

use siri_crypto::Hash;

use crate::{CommitInfo, EntryCursor, Proof, Result, WriteBatch};

/// One client's view of a versioned, branching key-value engine — local or
/// remote.
///
/// All methods take `&self`: sessions are shared across threads the same
/// way the engine itself is (the remote implementation serializes wire
/// round-trips internally).
///
/// # Contract
///
/// * [`commit`](Session::commit) is atomic per branch and returns a
///   [`CommitInfo`] receipt naming the parent and new head digests (and
///   per-shard receipts when the branch is sharded server-side).
/// * [`range`](Session::range)/[`scan_prefix`](Session::scan_prefix)
///   cursors are snapshots: entries observed come from one head version
///   even if the branch advances mid-scan. A remote cursor pages lazily,
///   but each page re-anchors at the *same* bounds after the last key
///   delivered, so a concurrent writer can at worst splice newer values
///   into not-yet-visited keys — never duplicate or reorder them.
/// * [`prove`](Session::prove)/[`prove_range`](Session::prove_range)/
///   [`prove_batch`](Session::prove_batch) return the anchor digest
///   alongside the proof. The digest is always the branch's *published
///   head digest* — identical to [`branch_digest`](Session::branch_digest)
///   — so a caller holding that digest from out of band verifies offline
///   with `siri_core::verify_anchored_*`. On a sharded branch the first
///   proof page is the shard manifest and each per-shard sub-proof anchors
///   at the sub-root the manifest names.
pub trait Session: Send + Sync {
    /// Apply one atomic batch to `branch`; returns the commit receipt.
    fn commit(&self, branch: &str, batch: WriteBatch) -> Result<CommitInfo>;

    /// Point lookup on the branch head.
    fn get(&self, branch: &str, key: &[u8]) -> Result<Option<bytes::Bytes>>;

    /// Streaming ordered range scan over `[start, end]` on the branch head.
    fn range(&self, branch: &str, start: Bound<&[u8]>, end: Bound<&[u8]>) -> Result<EntryCursor>;

    /// Streaming scan of every key starting with `prefix`.
    fn scan_prefix(&self, branch: &str, prefix: &[u8]) -> Result<EntryCursor> {
        let succ = crate::prefix_successor(prefix);
        let end = match &succ {
            Some(s) => Bound::Excluded(s.as_slice()),
            None => Bound::Unbounded,
        };
        self.range(branch, Bound::Included(prefix), end)
    }

    /// Create branch `to` at the current head of `from`.
    fn fork(&self, from: &str, to: &str) -> Result<()>;

    /// Delete a branch (its versions remain in the store until GC).
    fn delete_branch(&self, branch: &str) -> Result<()>;

    /// All live branch names, sorted.
    fn branches(&self) -> Result<Vec<String>>;

    /// The branch's published head digest (shard-manifest digest when the
    /// server keeps the branch sharded).
    fn branch_digest(&self, branch: &str) -> Result<Hash>;

    /// A Merkle proof for `key` on the branch head, plus the digest it
    /// verifies against — always the branch's published head digest
    /// ([`branch_digest`](Session::branch_digest)). On a sharded branch
    /// the first proof page is the [`crate::ShardManifest`] and the
    /// per-shard sub-proof anchors at its sub-root; verify with
    /// [`crate::verify_anchored_membership`].
    fn prove(&self, branch: &str, key: &[u8]) -> Result<(Hash, Proof)>;

    /// A range proof for `[start, end)` on the branch head, plus the
    /// digest it verifies against. Verification
    /// ([`crate::verify_anchored_range`]) yields exactly the entries in
    /// the range — a verified scan.
    fn prove_range(
        &self,
        branch: &str,
        start: Bound<&[u8]>,
        end: Bound<&[u8]>,
    ) -> Result<(Hash, Proof)>;

    /// One proof covering every key in `keys` on the branch head (shared
    /// interior pages deduplicated), plus the digest it verifies against.
    /// Verify with [`crate::verify_anchored_batch`].
    fn prove_batch(&self, branch: &str, keys: &[bytes::Bytes]) -> Result<(Hash, Proof)>;
}
