//! Key-range sharding of a branch head: the router, the content-addressed
//! shard manifest, and the cursor merge that keeps reads logical.
//!
//! A sharded branch replaces its single mutable head with `N` per-range
//! sub-roots plus one tiny **manifest** page describing the partition.
//! The manifest is encoded canonically and stored like any other node, so
//! a sharded branch head is still *one* content address: equal partitions
//! over equal sub-roots hash identically, commits can exchange or persist
//! the digest, and tamper evidence covers the partition itself.
//!
//! Three pieces live here because they are engine-agnostic:
//!
//! * [`ShardRouter`] — maps keys (and whole normalized batches) to shard
//!   indexes given the sorted boundary list;
//! * [`ShardManifest`] — the boundary list plus per-shard sub-roots, with
//!   its canonical codec ([`ShardManifest::encode`] /
//!   [`ShardManifest::decode`]);
//! * [`chain_cursors`] — the k-way merge across per-shard range cursors.
//!   Because shards partition the key space into *disjoint, ordered*
//!   ranges, the merge degenerates into ordered concatenation: cursor `i`
//!   is exhausted strictly before cursor `i+1` begins.

use std::ops::Bound;

use bytes::Bytes;
use siri_crypto::{sha256, Hash};
use siri_encoding::{ByteReader, ByteWriter, CodecError};

use crate::cursor::EntryCursor;
use crate::{BatchOp, WriteBatch};

/// Magic prefix distinguishing a shard manifest page from every node
/// encoding (all node codecs start with a small tag byte; `b'S'` = 0x53
/// followed by three more magic bytes makes an accidental match require a
/// forged page).
pub const MANIFEST_MAGIC: [u8; 4] = *b"SiMF";

/// Manifest codec version.
const MANIFEST_VERSION: u8 = 1;

/// Routes keys to shards over a sorted list of boundary keys.
///
/// `boundaries` holds `N-1` strictly ascending split points defining `N`
/// half-open ranges: shard `0` covers `[.., b0)`, shard `i` covers
/// `[b(i-1), b(i))`, and the last shard covers `[b(N-2), ..)`. An empty
/// boundary list is the unsharded (single-range) router.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardRouter {
    boundaries: Vec<Bytes>,
}

impl ShardRouter {
    /// A single-shard router (the unsharded degenerate case).
    pub fn single() -> Self {
        ShardRouter { boundaries: Vec::new() }
    }

    /// A router over explicit split points. Boundaries must be strictly
    /// ascending; violations are an internal bug, guarded in debug builds.
    pub fn new(boundaries: Vec<Bytes>) -> Self {
        debug_assert!(
            boundaries.windows(2).all(|w| w[0] < w[1]),
            "shard boundaries must be strictly ascending"
        );
        ShardRouter { boundaries }
    }

    /// A router splitting the key space into `n` ranges at uniform
    /// single-byte prefixes (`n` clamped to `1..=256`). With keys spread
    /// over the byte space this balances load without knowing the data.
    pub fn uniform(n: usize) -> Self {
        let n = n.clamp(1, 256);
        let boundaries = (1..n).map(|i| Bytes::from(vec![(i * 256 / n) as u8])).collect();
        ShardRouter { boundaries }
    }

    pub fn shard_count(&self) -> usize {
        self.boundaries.len() + 1
    }

    pub fn boundaries(&self) -> &[Bytes] {
        &self.boundaries
    }

    /// The shard owning `key`: the number of boundaries ≤ `key`.
    pub fn shard_of(&self, key: &[u8]) -> usize {
        self.boundaries.partition_point(|b| b.as_ref() <= key)
    }

    /// The half-open key range shard `i` owns, as cursor bounds.
    pub fn shard_range(&self, i: usize) -> (Bound<Bytes>, Bound<Bytes>) {
        let start =
            if i == 0 { Bound::Unbounded } else { Bound::Included(self.boundaries[i - 1].clone()) };
        let end = match self.boundaries.get(i) {
            Some(b) => Bound::Excluded(b.clone()),
            None => Bound::Unbounded,
        };
        (start, end)
    }

    /// The inclusive span of shard indexes a range query can touch.
    /// Conservative on exclusive bounds that land exactly on a boundary
    /// (the extra shard's cursor is simply empty).
    pub fn covering(&self, start: Bound<&[u8]>, end: Bound<&[u8]>) -> (usize, usize) {
        let lo = match start {
            Bound::Unbounded => 0,
            Bound::Included(k) | Bound::Excluded(k) => self.shard_of(k),
        };
        let hi = match end {
            Bound::Unbounded => self.shard_count() - 1,
            Bound::Included(k) | Bound::Excluded(k) => self.shard_of(k),
        };
        (lo, hi.max(lo))
    }

    /// Split a batch by shard: normalize once, then group the sorted ops
    /// into per-shard runs. Only touched shards appear in the result; an
    /// empty batch routes to shard 0 with an empty op list so an
    /// empty commit still publishes exactly one (unchanged) sub-root.
    pub fn route(&self, batch: WriteBatch) -> Vec<(usize, Vec<BatchOp>)> {
        self.route_ops(batch.normalize())
    }

    /// [`ShardRouter::route`] over already-normalized (sorted, key-unique)
    /// ops.
    pub fn route_ops(&self, ops: Vec<BatchOp>) -> Vec<(usize, Vec<BatchOp>)> {
        if ops.is_empty() {
            return vec![(0, Vec::new())];
        }
        let mut out: Vec<(usize, Vec<BatchOp>)> = Vec::new();
        for op in ops {
            let shard = self.shard_of(&op.key);
            match out.last_mut() {
                Some((s, run)) if *s == shard => run.push(op),
                _ => out.push((shard, vec![op])),
            }
        }
        out
    }
}

/// The content-addressed description of a sharded branch head: the
/// partition boundaries and one sub-root per shard. Encoded canonically,
/// its SHA-256 *is* the branch head digest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardManifest {
    /// `N-1` strictly ascending split points (see [`ShardRouter`]).
    pub boundaries: Vec<Bytes>,
    /// `N` sub-roots, one per key range, in range order.
    pub roots: Vec<Hash>,
}

impl ShardManifest {
    pub fn new(boundaries: Vec<Bytes>, roots: Vec<Hash>) -> Self {
        debug_assert_eq!(boundaries.len() + 1, roots.len(), "N ranges need N roots");
        ShardManifest { boundaries, roots }
    }

    pub fn shard_count(&self) -> usize {
        self.roots.len()
    }

    pub fn router(&self) -> ShardRouter {
        ShardRouter::new(self.boundaries.clone())
    }

    /// Canonical encoding: magic, version, shard count, boundaries
    /// (length-prefixed), then the raw 32-byte sub-roots.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = ByteWriter::with_capacity(
            MANIFEST_MAGIC.len() + 2 + self.roots.len() * 33 + self.boundaries.len() * 8,
        );
        w.put_raw(&MANIFEST_MAGIC);
        w.put_u8(MANIFEST_VERSION);
        w.put_varint(self.roots.len() as u64);
        for b in &self.boundaries {
            w.put_bytes(b);
        }
        for r in &self.roots {
            w.put_raw(r.as_bytes());
        }
        w.into_vec()
    }

    /// The digest of the canonical encoding — the branch head address.
    pub fn digest(&self) -> Hash {
        sha256(&self.encode())
    }

    /// Decode a manifest page, validating magic, version, boundary order
    /// and exact length. Total: malformed input is a [`CodecError`], never
    /// a panic.
    pub fn decode(page: &[u8]) -> Result<Self, CodecError> {
        let mut r = ByteReader::new(page);
        if r.get_raw(MANIFEST_MAGIC.len())? != MANIFEST_MAGIC {
            return Err(CodecError::BadTag(page.first().copied().unwrap_or(0)));
        }
        let version = r.get_u8()?;
        if version != MANIFEST_VERSION {
            return Err(CodecError::BadTag(version));
        }
        let n = r.get_varint()? as usize;
        if n == 0 || n > 1 << 20 {
            return Err(CodecError::BadLength { what: "manifest shard count" });
        }
        let mut boundaries = Vec::with_capacity(n - 1);
        for _ in 0..n - 1 {
            boundaries.push(Bytes::copy_from_slice(r.get_bytes()?));
        }
        if !boundaries.windows(2).all(|w| w[0] < w[1]) {
            return Err(CodecError::BadLength { what: "manifest boundaries" });
        }
        let mut roots = Vec::with_capacity(n);
        for _ in 0..n {
            let raw = r.get_raw(32)?;
            let mut arr = [0u8; 32];
            arr.copy_from_slice(raw);
            roots.push(Hash::from_bytes(arr));
        }
        r.finish()?;
        Ok(ShardManifest { boundaries, roots })
    }

    /// Cheap shape test: does this page look like a manifest? (Full
    /// validation still happens in [`ShardManifest::decode`].)
    pub fn is_manifest(page: &[u8]) -> bool {
        page.len() > MANIFEST_MAGIC.len() && page[..MANIFEST_MAGIC.len()] == MANIFEST_MAGIC
    }
}

/// Merge per-shard cursors into one logical stream. Shards partition the
/// key space into disjoint ascending ranges, so the k-way merge reduces to
/// ordered concatenation — zero comparisons, zero buffering. Cursors must
/// be passed in shard (range) order.
pub fn chain_cursors(cursors: Vec<EntryCursor>) -> EntryCursor {
    let mut iter = cursors.into_iter();
    match (iter.next(), iter.len()) {
        (Some(only), 0) => only,
        (Some(first), _) => EntryCursor::new(std::iter::once(first).chain(iter).flatten()),
        (None, _) => EntryCursor::empty(),
    }
}

/// The per-shard slice of one sharded commit receipt: which shard moved,
/// from which sub-root to which.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardCommit {
    /// Shard index within the branch's partition at publish time.
    pub shard: usize,
    /// The shard's sub-root the batch slice was built against.
    pub parent: Hash,
    /// The sub-root the slice published.
    pub root: Hash,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Entry;

    fn b(s: &str) -> Bytes {
        Bytes::copy_from_slice(s.as_bytes())
    }

    #[test]
    fn shard_of_respects_boundaries() {
        let r = ShardRouter::new(vec![b("g"), b("p")]);
        assert_eq!(r.shard_count(), 3);
        assert_eq!(r.shard_of(b"a"), 0);
        assert_eq!(r.shard_of(b"fzz"), 0);
        assert_eq!(r.shard_of(b"g"), 1, "boundary key belongs to the right shard");
        assert_eq!(r.shard_of(b"m"), 1);
        assert_eq!(r.shard_of(b"p"), 2);
        assert_eq!(r.shard_of(b"zzz"), 2);
    }

    #[test]
    fn single_router_routes_everything_to_shard_zero() {
        let r = ShardRouter::single();
        assert_eq!(r.shard_count(), 1);
        assert_eq!(r.shard_of(b""), 0);
        assert_eq!(r.shard_of(&[0xff; 40]), 0);
        let (lo, hi) = r.covering(Bound::Unbounded, Bound::Unbounded);
        assert_eq!((lo, hi), (0, 0));
    }

    #[test]
    fn uniform_router_covers_the_byte_space() {
        let r = ShardRouter::uniform(4);
        assert_eq!(r.shard_count(), 4);
        let expect: Vec<Bytes> =
            [0x40u8, 0x80, 0xc0].iter().map(|&x| Bytes::from(vec![x])).collect();
        assert_eq!(r.boundaries(), &expect[..]);
        assert_eq!(r.shard_of(&[0x00]), 0);
        assert_eq!(r.shard_of(&[0x40]), 1);
        assert_eq!(r.shard_of(&[0x7f, 0xff]), 1);
        assert_eq!(r.shard_of(&[0xc0, 0x01]), 3);
        // Degenerate and clamped sizes.
        assert_eq!(ShardRouter::uniform(0).shard_count(), 1);
        assert_eq!(ShardRouter::uniform(1).shard_count(), 1);
        assert_eq!(ShardRouter::uniform(1000).shard_count(), 256);
    }

    #[test]
    fn route_groups_sorted_runs_and_keeps_empty_batch() {
        let r = ShardRouter::new(vec![b("g"), b("p")]);
        let mut batch = WriteBatch::new();
        batch.put(b("zebra"), b("1"));
        batch.put(b("apple"), b("2"));
        batch.delete(b("hippo"));
        batch.put(b("ant"), b("3"));
        let routed = r.route(batch);
        let shards: Vec<usize> = routed.iter().map(|(s, _)| *s).collect();
        assert_eq!(shards, vec![0, 1, 2], "sorted ops group into ascending runs");
        assert_eq!(routed[0].1.len(), 2);
        assert_eq!(routed[1].1.len(), 1);
        assert!(routed[1].1[0].is_delete());
        // Empty batches still route (to shard 0) so empty commits publish.
        assert_eq!(r.route(WriteBatch::new()), vec![(0, Vec::new())]);
    }

    #[test]
    fn covering_brackets_range_bounds() {
        let r = ShardRouter::new(vec![b("g"), b("p")]);
        assert_eq!(r.covering(Bound::Included(b"a"), Bound::Excluded(b"f")), (0, 0));
        assert_eq!(r.covering(Bound::Included(b"a"), Bound::Included(b"m")), (0, 1));
        assert_eq!(r.covering(Bound::Excluded(b"h"), Bound::Unbounded), (1, 2));
        assert_eq!(r.covering(Bound::Unbounded, Bound::Unbounded), (0, 2));
        // Inverted-looking bounds still produce a non-empty (clamped) span.
        assert_eq!(r.covering(Bound::Included(b"z"), Bound::Excluded(b"a")), (2, 2));
    }

    #[test]
    fn shard_range_tiles_the_key_space() {
        let r = ShardRouter::new(vec![b("g"), b("p")]);
        assert_eq!(r.shard_range(0), (Bound::Unbounded, Bound::Excluded(b("g"))));
        assert_eq!(r.shard_range(1), (Bound::Included(b("g")), Bound::Excluded(b("p"))));
        assert_eq!(r.shard_range(2), (Bound::Included(b("p")), Bound::Unbounded));
    }

    #[test]
    fn manifest_round_trips_and_is_canonical() {
        let m = ShardManifest::new(
            vec![b("g"), b("p")],
            vec![sha256(b"a"), sha256(b"b"), sha256(b"c")],
        );
        let page = m.encode();
        assert!(ShardManifest::is_manifest(&page));
        let back = ShardManifest::decode(&page).unwrap();
        assert_eq!(back, m);
        assert_eq!(back.digest(), m.digest());
        // Different partitions or roots ⇒ different digests.
        let m2 = ShardManifest::new(
            vec![b("g"), b("q")],
            vec![sha256(b"a"), sha256(b"b"), sha256(b"c")],
        );
        assert_ne!(m2.digest(), m.digest());
        let m3 = ShardManifest::new(
            vec![b("g"), b("p")],
            vec![sha256(b"a"), sha256(b"b"), sha256(b"d")],
        );
        assert_ne!(m3.digest(), m.digest());
    }

    #[test]
    fn manifest_decode_is_total() {
        let good = ShardManifest::new(vec![b("m")], vec![sha256(b"l"), sha256(b"r")]).encode();
        // Truncations never panic.
        for cut in 0..good.len() {
            assert!(ShardManifest::decode(&good[..cut]).is_err(), "cut at {cut}");
        }
        // Trailing garbage is rejected.
        let mut long = good.clone();
        long.push(0);
        assert!(matches!(ShardManifest::decode(&long), Err(CodecError::TrailingBytes)));
        // Wrong magic / version / order are rejected.
        assert!(ShardManifest::decode(b"nope").is_err());
        let mut bad_ver = good.clone();
        bad_ver[4] = 99;
        assert!(ShardManifest::decode(&bad_ver).is_err());
        let unsorted =
            ShardManifest { boundaries: vec![b("p"), b("g")], roots: vec![sha256(b"x"); 3] }
                .encode();
        assert!(ShardManifest::decode(&unsorted).is_err());
        // A node-looking page is not a manifest.
        assert!(!ShardManifest::is_manifest(&[0x01, 0x02, 0x03]));
    }

    #[test]
    fn chain_cursors_concatenates_in_order() {
        let mk = |lo: u8, hi: u8| {
            EntryCursor::new(
                (lo..hi).map(|i| Ok(Entry::new(vec![i], vec![i]))).collect::<Vec<_>>().into_iter(),
            )
        };
        let merged = chain_cursors(vec![mk(0, 3), mk(3, 5), mk(5, 9)]);
        let keys: Vec<u8> = merged.map(|e| e.unwrap().key[0]).collect();
        assert_eq!(keys, (0..9).collect::<Vec<u8>>());
        assert_eq!(chain_cursors(Vec::new()).count(), 0);
    }
}
