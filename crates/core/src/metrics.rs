//! Space-efficiency metrics: the deduplication ratio η(S) of §4.2 and the
//! node sharing ratio of §5.4.2.

use siri_store::PageSet;

/// η(S) = 1 − byte(P₁ ∪ … ∪ P_k) / Σ byte(P_j)  — §4.2.1.
///
/// Quantifies page-level *byte* sharing across a set of index instances: 0
/// means nothing is shared, and the value approaches 1 − 1/k when the k
/// instances are identical.
pub fn deduplication_ratio(sets: &[PageSet]) -> f64 {
    let total: u64 = sets.iter().map(|s| s.byte_size()).sum();
    if total == 0 {
        return 0.0;
    }
    let union = PageSet::union_of(sets);
    1.0 - union.byte_size() as f64 / total as f64
}

/// Node sharing ratio = 1 − |P₁ ∪ … ∪ P_k| / Σ |P_j|  — §5.4.2.
///
/// The count-based companion of [`deduplication_ratio`]: "how many
/// duplicate nodes have been eliminated", independent of page sizes.
pub fn node_sharing_ratio(sets: &[PageSet]) -> f64 {
    let total: usize = sets.iter().map(|s| s.len()).sum();
    if total == 0 {
        return 0.0;
    }
    let union = PageSet::union_of(sets);
    1.0 - union.len() as f64 / total as f64
}

/// Aggregate storage view over a set of instances, as used by the storage
/// plots (Figures 14–18).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StorageReport {
    /// Bytes actually stored (union of all page sets).
    pub stored_bytes: u64,
    /// Pages actually stored.
    pub stored_pages: usize,
    /// Bytes if every instance kept private copies (Σ byte(P_j)).
    pub logical_bytes: u64,
    /// Pages if every instance kept private copies.
    pub logical_pages: usize,
    /// η(S).
    pub deduplication_ratio: f64,
    /// Node sharing ratio.
    pub node_sharing_ratio: f64,
}

/// Compute all storage metrics in one pass over the page sets.
pub fn storage_report(sets: &[PageSet]) -> StorageReport {
    let union = PageSet::union_of(sets);
    let logical_bytes: u64 = sets.iter().map(|s| s.byte_size()).sum();
    let logical_pages: usize = sets.iter().map(|s| s.len()).sum();
    StorageReport {
        stored_bytes: union.byte_size(),
        stored_pages: union.len(),
        logical_bytes,
        logical_pages,
        deduplication_ratio: if logical_bytes == 0 {
            0.0
        } else {
            1.0 - union.byte_size() as f64 / logical_bytes as f64
        },
        node_sharing_ratio: if logical_pages == 0 {
            0.0
        } else {
            1.0 - union.len() as f64 / logical_pages as f64
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use siri_crypto::sha256;

    fn set(pages: &[(&str, u64)]) -> PageSet {
        pages.iter().map(|(n, b)| (sha256(n.as_bytes()), *b)).collect()
    }

    #[test]
    fn disjoint_sets_share_nothing() {
        let a = set(&[("a1", 100), ("a2", 100)]);
        let b = set(&[("b1", 100), ("b2", 100)]);
        assert_eq!(deduplication_ratio(&[a.clone(), b.clone()]), 0.0);
        assert_eq!(node_sharing_ratio(&[a, b]), 0.0);
    }

    #[test]
    fn identical_sets_approach_one_minus_one_over_k() {
        let a = set(&[("p", 100), ("q", 50)]);
        let sets = vec![a.clone(), a.clone(), a.clone(), a];
        assert!((deduplication_ratio(&sets) - 0.75).abs() < 1e-12);
        assert!((node_sharing_ratio(&sets) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn byte_vs_count_metrics_diverge_on_skewed_sizes() {
        // One huge shared page, many small private ones: byte ratio high,
        // count ratio low.
        let a = set(&[("shared", 10_000), ("a1", 1), ("a2", 1), ("a3", 1)]);
        let b = set(&[("shared", 10_000), ("b1", 1), ("b2", 1), ("b3", 1)]);
        let dedup = deduplication_ratio(&[a.clone(), b.clone()]);
        let share = node_sharing_ratio(&[a, b]);
        assert!(dedup > 0.49, "byte ratio {dedup}");
        assert!(share < 0.2, "count ratio {share}");
    }

    #[test]
    fn empty_input_is_zero() {
        assert_eq!(deduplication_ratio(&[]), 0.0);
        assert_eq!(node_sharing_ratio(&[PageSet::new()]), 0.0);
    }

    #[test]
    fn storage_report_consistency() {
        let a = set(&[("s", 10), ("x", 5)]);
        let b = set(&[("s", 10), ("y", 5)]);
        let r = storage_report(&[a, b]);
        assert_eq!(r.stored_bytes, 20);
        assert_eq!(r.logical_bytes, 30);
        assert_eq!(r.stored_pages, 3);
        assert_eq!(r.logical_pages, 4);
        assert!((r.deduplication_ratio - 1.0 / 3.0).abs() < 1e-12);
        assert!((r.node_sharing_ratio - 0.25).abs() < 1e-12);
    }
}
