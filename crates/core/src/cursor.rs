//! The unified streaming read side: [`EntryCursor`] and range-bound
//! helpers.
//!
//! Every structure's `scan`, prefix scan and bounded range scan route
//! through one lazy cursor type. A cursor walks the tree leaf-by-leaf
//! through the structure's decoded-node cache and yields entries in key
//! order — nothing materializes the whole dataset. Errors discovered
//! mid-walk (missing or corrupt pages) surface as `Err` items in the
//! stream.

use std::ops::Bound;

use crate::{Entry, IndexError, Result};

/// A lazy, sorted stream of entries — the return type of
/// [`crate::SiriIndex::range`].
///
/// `EntryCursor` is an ordinary iterator over `Result<Entry>`; use iterator
/// adapters (`take`, `map`, …) freely, or [`EntryCursor::collect_entries`]
/// to drain it into a `Vec` with the first error propagated.
pub struct EntryCursor {
    inner: Box<dyn Iterator<Item = Result<Entry>> + Send>,
}

impl EntryCursor {
    /// Wrap any entry iterator. Implementations hand in their tree-walking
    /// state machine; the box erases the per-structure type.
    pub fn new(inner: impl Iterator<Item = Result<Entry>> + Send + 'static) -> Self {
        EntryCursor { inner: Box::new(inner) }
    }

    /// A cursor over nothing (empty index or empty window).
    pub fn empty() -> Self {
        EntryCursor { inner: Box::new(std::iter::empty()) }
    }

    /// A cursor that yields one error and stops — how constructors report
    /// failures discovered during the initial descent.
    pub fn fail(err: IndexError) -> Self {
        EntryCursor { inner: Box::new(std::iter::once(Err(err))) }
    }

    /// Drain into a vector, propagating the first error.
    pub fn collect_entries(self) -> Result<Vec<Entry>> {
        self.collect()
    }
}

impl Iterator for EntryCursor {
    type Item = Result<Entry>;

    fn next(&mut self) -> Option<Self::Item> {
        self.inner.next()
    }
}

impl std::fmt::Debug for EntryCursor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EntryCursor").finish_non_exhaustive()
    }
}

/// Convert a borrowed range bound into an owned one a cursor can keep.
pub fn own_bound(bound: Bound<&[u8]>) -> Bound<Vec<u8>> {
    match bound {
        Bound::Included(k) => Bound::Included(k.to_vec()),
        Bound::Excluded(k) => Bound::Excluded(k.to_vec()),
        Bound::Unbounded => Bound::Unbounded,
    }
}

/// The key a seek-style cursor should position at for `start` (the least
/// possibly-matching key); exclusive starts are resolved by
/// [`before_start`] filtering at the first position.
pub fn start_seek_key(start: &Bound<Vec<u8>>) -> &[u8] {
    match start {
        Bound::Included(k) | Bound::Excluded(k) => k,
        Bound::Unbounded => &[],
    }
}

/// `key` sits before the start bound (must be skipped).
pub fn before_start(start: &Bound<Vec<u8>>, key: &[u8]) -> bool {
    match start {
        Bound::Included(s) => key < s.as_slice(),
        Bound::Excluded(s) => key <= s.as_slice(),
        Bound::Unbounded => false,
    }
}

/// `key` sits past the end bound (the stream is finished: entries arrive
/// in key order).
pub fn past_end(end: &Bound<Vec<u8>>, key: &[u8]) -> bool {
    match end {
        Bound::Included(e) => key > e.as_slice(),
        Bound::Excluded(e) => key >= e.as_slice(),
        Bound::Unbounded => false,
    }
}

/// The least key strictly greater than every key starting with `prefix` —
/// i.e. keys matching `prefix` are exactly `[prefix, successor)`. `None`
/// when no such key exists (empty prefix or all-0xff): the range is then
/// unbounded above.
pub fn prefix_successor(prefix: &[u8]) -> Option<Vec<u8>> {
    let mut out = prefix.to_vec();
    while let Some(last) = out.last_mut() {
        if *last < 0xff {
            *last += 1;
            return Some(out);
        }
        out.pop();
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cursor_collects_and_propagates_errors() {
        let ok = EntryCursor::new(vec![Ok(Entry::new(&b"a"[..], &b"1"[..]))].into_iter());
        assert_eq!(ok.collect_entries().unwrap().len(), 1);
        let bad = EntryCursor::fail(IndexError::CorruptStructure("boom"));
        assert!(bad.collect_entries().is_err());
        assert_eq!(EntryCursor::empty().count(), 0);
    }

    #[test]
    fn bound_checks() {
        let start: Bound<Vec<u8>> = Bound::Included(b"b".to_vec());
        assert!(before_start(&start, b"a"));
        assert!(!before_start(&start, b"b"));
        let start: Bound<Vec<u8>> = Bound::Excluded(b"b".to_vec());
        assert!(before_start(&start, b"b"));
        assert!(!before_start(&start, b"ba"));
        assert!(!before_start(&Bound::Unbounded, b""));

        let end: Bound<Vec<u8>> = Bound::Excluded(b"m".to_vec());
        assert!(past_end(&end, b"m"));
        assert!(!past_end(&end, b"lz"));
        let end: Bound<Vec<u8>> = Bound::Included(b"m".to_vec());
        assert!(!past_end(&end, b"m"));
        assert!(past_end(&end, b"m\x00"));
        assert!(!past_end(&Bound::Unbounded, b"\xff\xff"));
    }

    #[test]
    fn prefix_successor_edges() {
        assert_eq!(prefix_successor(b"app").unwrap(), b"apq".to_vec());
        assert_eq!(prefix_successor(b"a\xff").unwrap(), b"b".to_vec());
        assert_eq!(prefix_successor(b"\xff\xff"), None);
        assert_eq!(prefix_successor(b""), None);
    }
}
