//! Anchored proof verification — the structure-agnostic half of the
//! verified-read contract.
//!
//! The per-index crates know how to walk their own page encodings; this
//! module knows what every proof shares:
//!
//! * **Anchoring** — the first proof page must hash to the trusted branch
//!   digest. On a sharded branch that digest addresses a
//!   [`ShardManifest`] page, so the manifest *is* the first page and each
//!   per-shard sub-proof anchors at the sub-root the (now-verified)
//!   manifest names. An unsharded digest addresses an index root page
//!   directly and the walk starts there.
//! * **The page pool** — range and batch proofs are page *sets*, not
//!   single paths: interior pages shared by several keys (or several
//!   shards — MBT's empty-bucket pages are byte-identical across shards)
//!   appear once. [`PagePool`] indexes pages by content hash, lets walks
//!   fetch the same page repeatedly, and tracks usage: a proof is complete
//!   iff every page a walk needs is present *and* every supplied page was
//!   used at least once. Under that rule any single-bit flip is fatal —
//!   the flipped page both breaks the hash link that referenced it and
//!   becomes an unreferenced leftover.
//! * **Global ordering** — range results must be strictly ascending across
//!   shard sub-walks, which also rejects duplicated or reordered entries.
//!
//! Provers and verifiers must agree on which subtrees a range touches;
//! [`child_overlaps`] is that shared pruning predicate for max-key-routed
//! structures (POS-Tree, MVMB+). It is deliberately conservative on
//! boundaries: an over-included subtree costs proof bytes, never
//! soundness, as long as both sides over-include identically.

use std::collections::HashMap;
use std::ops::Bound;

use bytes::Bytes;
use siri_crypto::{sha256, Hash};

use crate::shard::ShardManifest;
use crate::{Entry, Proof, ProofVerdict};

/// Content-addressed page set built from a proof's pages, with per-page
/// usage tracking (see the module docs for the completeness rule).
pub struct PagePool {
    pages: HashMap<Hash, (Bytes, bool)>,
}

impl PagePool {
    /// Index `pages` by content hash. Duplicate pages are rejected —
    /// honest provers deduplicate, so a repeat is either waste or padding
    /// smuggled past the all-used check.
    pub fn build(pages: &[Bytes]) -> Result<PagePool, &'static str> {
        let mut map = HashMap::with_capacity(pages.len());
        for p in pages {
            if map.insert(sha256(p), (p.clone(), false)).is_some() {
                return Err("duplicate page in proof");
            }
        }
        Ok(PagePool { pages: map })
    }

    /// Fetch a page by content hash, marking it used. Repeated fetches are
    /// fine — identical pages legitimately recur at different tree
    /// positions. The returned page is guaranteed to hash to `hash` (that
    /// is its index), so callers never re-hash.
    pub fn get(&mut self, hash: &Hash) -> Option<Bytes> {
        self.pages.get_mut(hash).map(|(page, used)| {
            *used = true;
            page.clone()
        })
    }

    /// Did every supplied page participate in some walk?
    pub fn all_used(&self) -> bool {
        self.pages.values().all(|(_, used)| *used)
    }

    pub fn len(&self) -> usize {
        self.pages.len()
    }

    pub fn is_empty(&self) -> bool {
        self.pages.is_empty()
    }
}

/// The structure-specific verification walks, behind a dyn-safe trait so a
/// client can verify proofs for whatever structure the server runs without
/// compiling against it generically. Implementations are stateless unit
/// structs (`MptProofScheme`, `MbtProofScheme`, …), one per index crate.
pub trait ProofScheme: Send + Sync {
    /// Structure name as reported by `SiriIndex::kind` / factory `name`.
    fn structure(&self) -> &'static str;

    /// Verify a single-key path proof against an (unsharded) index root —
    /// the classic membership/non-membership check.
    fn verify_membership(&self, root: Hash, key: &[u8], proof: &Proof) -> ProofVerdict;

    /// Re-walk one key's root→leaf path through a [`PagePool`] — the
    /// batched-proof primitive, where paths share interior pages.
    fn verify_key_pages(&self, root: Hash, key: &[u8], pool: &mut PagePool) -> ProofVerdict;

    /// Re-walk every subtree of `root` overlapping `[start, end)` through
    /// a [`PagePool`], appending the in-bounds entries in key order. A
    /// missing or undecodable page is an error; bounds filtering and
    /// ordering of `out` across calls is the caller's (the anchored
    /// verifier's) concern.
    fn verify_range_pages(
        &self,
        root: Hash,
        start: Bound<&[u8]>,
        end: Bound<&[u8]>,
        pool: &mut PagePool,
        out: &mut Vec<Entry>,
    ) -> Result<(), &'static str>;
}

/// Outcome of verifying a range proof: either the *complete* entry set of
/// `[start, end)` under the trusted digest, or a reason the proof is bad.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RangeVerdict {
    /// The proof is valid: these are exactly the entries in the range.
    Complete(Vec<Entry>),
    /// The proof does not verify against the digest.
    Invalid(&'static str),
}

impl RangeVerdict {
    pub fn is_valid(&self) -> bool {
        matches!(self, RangeVerdict::Complete(_))
    }

    pub fn entries(&self) -> Option<&[Entry]> {
        match self {
            RangeVerdict::Complete(entries) => Some(entries),
            RangeVerdict::Invalid(_) => None,
        }
    }

    pub fn into_entries(self) -> Option<Vec<Entry>> {
        match self {
            RangeVerdict::Complete(entries) => Some(entries),
            RangeVerdict::Invalid(_) => None,
        }
    }
}

/// Outcome of verifying a batched multi-key proof: one per-key verdict in
/// input order, or a reason the shared page set is bad. Per-key verdicts
/// are only `Present`/`Absent` — any structural invalidity rejects the
/// whole proof.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BatchVerdict {
    Verified(Vec<ProofVerdict>),
    Invalid(&'static str),
}

impl BatchVerdict {
    pub fn is_valid(&self) -> bool {
        matches!(self, BatchVerdict::Verified(_))
    }

    pub fn verdicts(&self) -> Option<&[ProofVerdict]> {
        match self {
            BatchVerdict::Verified(v) => Some(v),
            BatchVerdict::Invalid(_) => None,
        }
    }
}

/// Is `key` inside `[start, end)`-style bounds?
pub fn bounds_contain(start: Bound<&[u8]>, end: Bound<&[u8]>, key: &[u8]) -> bool {
    let after_start = match start {
        Bound::Unbounded => true,
        Bound::Included(a) => key >= a,
        Bound::Excluded(a) => key > a,
    };
    let before_end = match end {
        Bound::Unbounded => true,
        Bound::Included(b) => key <= b,
        Bound::Excluded(b) => key < b,
    };
    after_start && before_end
}

/// Shared range-pruning predicate for max-key-routed structures: does the
/// child subtree covering keys in `(prev_max, max_key]` overlap the query
/// bounds? Both the prover (deciding which pages to ship) and the verifier
/// (deciding which children to demand) call this, so they can never
/// disagree about a boundary subtree.
pub fn child_overlaps(
    prev_max: Option<&[u8]>,
    max_key: &[u8],
    start: Bound<&[u8]>,
    end: Bound<&[u8]>,
) -> bool {
    let below_start = match start {
        Bound::Unbounded => false,
        Bound::Included(a) => max_key < a,
        Bound::Excluded(a) => max_key <= a,
    };
    let above_end = match end {
        Bound::Unbounded => false,
        Bound::Included(b) | Bound::Excluded(b) => prev_max.is_some_and(|p| p >= b),
    };
    !below_start && !above_end
}

/// Anchor check shared by the three anchored verifiers: hash the first
/// page against the trusted digest, then classify it — a manifest page
/// (sharded branch: route sub-walks at the manifest's sub-roots over the
/// remaining pages) or an index root page (unsharded: walk everything from
/// the digest itself).
fn anchor(digest: Hash, proof: &Proof) -> Result<Option<(ShardManifest, &[Bytes])>, &'static str> {
    let pages = proof.pages();
    let Some(first) = pages.first() else {
        return Err("empty proof for a non-empty digest");
    };
    if sha256(first) != digest {
        return Err("proof does not anchor at the trusted digest");
    }
    if ShardManifest::is_manifest(first) {
        let manifest = ShardManifest::decode(first).map_err(|_| "manifest page undecodable")?;
        Ok(Some((manifest, &pages[1..])))
    } else {
        Ok(None)
    }
}

/// Verify a membership/non-membership proof against a trusted *branch
/// digest* — manifest or bare root, the caller does not need to know which
/// (that is the point: `branch_digest` is the only hash a light client
/// holds).
pub fn verify_anchored_membership(
    scheme: &dyn ProofScheme,
    digest: Hash,
    key: &[u8],
    proof: &Proof,
) -> ProofVerdict {
    if digest.is_zero() {
        return if proof.is_empty() {
            ProofVerdict::Absent
        } else {
            ProofVerdict::Invalid("non-empty proof for an empty digest")
        };
    }
    match anchor(digest, proof) {
        Err(why) => ProofVerdict::Invalid(why),
        Ok(None) => scheme.verify_membership(digest, key, proof),
        Ok(Some((manifest, rest))) => {
            let shard = manifest.router().shard_of(key);
            let sub = Proof::new(rest.to_vec());
            scheme.verify_membership(manifest.roots[shard], key, &sub)
        }
    }
}

/// Verify a range proof against a trusted branch digest: on success the
/// verdict carries *exactly* the entries of `[start, end)` — nothing
/// missing (every needed page must be present and every supplied page
/// used), nothing extra (bounds filtering + strict global ordering).
pub fn verify_anchored_range(
    scheme: &dyn ProofScheme,
    digest: Hash,
    start: Bound<&[u8]>,
    end: Bound<&[u8]>,
    proof: &Proof,
) -> RangeVerdict {
    if digest.is_zero() {
        return if proof.is_empty() {
            RangeVerdict::Complete(Vec::new())
        } else {
            RangeVerdict::Invalid("non-empty proof for an empty digest")
        };
    }
    let mut out = Vec::new();
    let walked = match anchor(digest, proof) {
        Err(why) => Err(why),
        Ok(None) => PagePool::build(proof.pages()).and_then(|mut pool| {
            scheme.verify_range_pages(digest, start, end, &mut pool, &mut out)?;
            pool.all_used().then_some(()).ok_or("unused pages in proof")
        }),
        Ok(Some((manifest, rest))) => PagePool::build(rest).and_then(|mut pool| {
            let router = manifest.router();
            let (lo, hi) = router.covering(start, end);
            for root in &manifest.roots[lo..=hi] {
                if root.is_zero() {
                    continue;
                }
                scheme.verify_range_pages(*root, start, end, &mut pool, &mut out)?;
            }
            pool.all_used().then_some(()).ok_or("unused pages in proof")
        }),
    };
    match walked {
        Err(why) => RangeVerdict::Invalid(why),
        Ok(()) => {
            if out.windows(2).any(|w| w[0].key >= w[1].key) {
                return RangeVerdict::Invalid("range entries out of order");
            }
            RangeVerdict::Complete(out)
        }
    }
}

/// Verify a batched multi-key proof against a trusted branch digest. The
/// page set is shared: each key's path re-walks through the pool, and the
/// all-used rule rejects padding. Verdicts come back in `keys` order.
pub fn verify_anchored_batch(
    scheme: &dyn ProofScheme,
    digest: Hash,
    keys: &[Bytes],
    proof: &Proof,
) -> BatchVerdict {
    if keys.is_empty() {
        return if proof.is_empty() {
            BatchVerdict::Verified(Vec::new())
        } else {
            BatchVerdict::Invalid("pages for an empty key set")
        };
    }
    if digest.is_zero() {
        return if proof.is_empty() {
            BatchVerdict::Verified(vec![ProofVerdict::Absent; keys.len()])
        } else {
            BatchVerdict::Invalid("non-empty proof for an empty digest")
        };
    }
    let (manifest, rest) = match anchor(digest, proof) {
        Err(why) => return BatchVerdict::Invalid(why),
        Ok(None) => (None, proof.pages()),
        Ok(Some((m, rest))) => (Some(m), rest),
    };
    let mut pool = match PagePool::build(rest) {
        Ok(pool) => pool,
        Err(why) => return BatchVerdict::Invalid(why),
    };
    let router = manifest.as_ref().map(|m| m.router());
    let mut verdicts = Vec::with_capacity(keys.len());
    for key in keys {
        let root = match (&manifest, &router) {
            (Some(m), Some(r)) => m.roots[r.shard_of(key)],
            _ => digest,
        };
        let verdict = if root.is_zero() {
            ProofVerdict::Absent
        } else {
            scheme.verify_key_pages(root, key, &mut pool)
        };
        if let ProofVerdict::Invalid(why) = verdict {
            return BatchVerdict::Invalid(why);
        }
        verdicts.push(verdict);
    }
    if !pool.all_used() {
        return BatchVerdict::Invalid("unused pages in proof");
    }
    BatchVerdict::Verified(verdicts)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_tracks_usage_and_rejects_duplicates() {
        let a = Bytes::from_static(b"page a");
        let b = Bytes::from_static(b"page b");
        let mut pool = PagePool::build(&[a.clone(), b.clone()]).unwrap();
        assert_eq!(pool.len(), 2);
        assert!(!pool.all_used());
        assert_eq!(pool.get(&sha256(&a)).unwrap(), a);
        // Repeated gets are allowed (identical pages recur across shards).
        assert_eq!(pool.get(&sha256(&a)).unwrap(), a);
        assert!(!pool.all_used());
        assert_eq!(pool.get(&sha256(&b)).unwrap(), b);
        assert!(pool.all_used());
        assert!(pool.get(&sha256(b"absent")).is_none());
        assert!(PagePool::build(&[a.clone(), a]).is_err(), "duplicates rejected");
    }

    #[test]
    fn bounds_contain_matches_range_semantics() {
        use Bound::*;
        assert!(bounds_contain(Unbounded, Unbounded, b"k"));
        assert!(bounds_contain(Included(b"k"), Excluded(b"m"), b"k"));
        assert!(!bounds_contain(Excluded(b"k"), Unbounded, b"k"));
        assert!(!bounds_contain(Unbounded, Excluded(b"k"), b"k"));
        assert!(bounds_contain(Unbounded, Included(b"k"), b"k"));
    }

    #[test]
    fn child_overlap_is_conservative_on_boundaries() {
        use Bound::*;
        // Subtree covers (None, "m"]: overlaps anything not strictly above.
        assert!(child_overlaps(None, b"m", Unbounded, Unbounded));
        assert!(child_overlaps(None, b"m", Included(b"m"), Unbounded));
        assert!(!child_overlaps(None, b"m", Excluded(b"m"), Unbounded));
        assert!(!child_overlaps(None, b"m", Included(b"n"), Unbounded));
        // Subtree covers ("m", "z"]: starts after the end bound ⇒ skip.
        assert!(!child_overlaps(Some(b"m"), b"z", Unbounded, Excluded(b"m")));
        assert!(!child_overlaps(Some(b"m"), b"z", Unbounded, Included(b"m")));
        assert!(child_overlaps(Some(b"m"), b"z", Unbounded, Included(b"n")));
    }

    #[test]
    fn zero_digest_anchoring() {
        struct NoScheme;
        impl ProofScheme for NoScheme {
            fn structure(&self) -> &'static str {
                "none"
            }
            fn verify_membership(&self, _: Hash, _: &[u8], _: &Proof) -> ProofVerdict {
                unreachable!("zero digests never reach the scheme")
            }
            fn verify_key_pages(&self, _: Hash, _: &[u8], _: &mut PagePool) -> ProofVerdict {
                unreachable!()
            }
            fn verify_range_pages(
                &self,
                _: Hash,
                _: Bound<&[u8]>,
                _: Bound<&[u8]>,
                _: &mut PagePool,
                _: &mut Vec<Entry>,
            ) -> Result<(), &'static str> {
                unreachable!()
            }
        }
        let empty = Proof::new(Vec::new());
        let junk = Proof::new(vec![Bytes::from_static(b"junk")]);
        assert_eq!(
            verify_anchored_membership(&NoScheme, Hash::ZERO, b"k", &empty),
            ProofVerdict::Absent
        );
        assert!(!verify_anchored_membership(&NoScheme, Hash::ZERO, b"k", &junk).is_valid());
        assert_eq!(
            verify_anchored_range(
                &NoScheme,
                Hash::ZERO,
                Bound::Unbounded,
                Bound::Unbounded,
                &empty
            ),
            RangeVerdict::Complete(Vec::new())
        );
        let keys = vec![Bytes::from_static(b"k")];
        assert_eq!(
            verify_anchored_batch(&NoScheme, Hash::ZERO, &keys, &empty),
            BatchVerdict::Verified(vec![ProofVerdict::Absent])
        );
        assert!(!verify_anchored_batch(&NoScheme, Hash::ZERO, &keys, &junk).is_valid());
        assert_eq!(
            verify_anchored_batch(&NoScheme, Hash::ZERO, &[], &empty),
            BatchVerdict::Verified(Vec::new())
        );
    }
}
