//! Unified error type for index operations.

use std::fmt;

use siri_crypto::Hash;
use siri_encoding::CodecError;
use siri_store::StoreError;

/// Everything that can go wrong inside an index operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IndexError {
    /// A page referenced by the structure is missing from the store — a
    /// *definitive* miss (dangling reference), distinct from
    /// [`IndexError::Store`], where the page may exist but could not be
    /// read or written.
    MissingPage(Hash),
    /// The backing store failed (I/O fault on a durable backend). Not a
    /// key-not-found: traversal stops because storage misbehaved.
    Store(StoreError),
    /// A page failed to decode (corruption or version skew).
    Codec(CodecError),
    /// A page's content does not match its content address — tampering.
    TamperDetected { expected: Hash },
    /// Merge found keys with conflicting values under [`crate::MergeStrategy::Strict`].
    MergeConflict { conflicts: Vec<crate::DiffEntry> },
    /// An optimistic (compare-and-swap) branch commit kept losing the head
    /// race and gave up after `attempts` rebuilds. Every lost race means
    /// *another* writer committed — the system made progress — so hitting
    /// this bound signals pathological contention on one branch, not a
    /// deadlock. The batch was **not** applied; retrying is safe.
    CommitContention { attempts: u32 },
    /// The target branch was deleted while the commit was in flight. All
    /// of the branch's shard head slots are retired atomically by
    /// `delete_branch`, so a racing sharded commit observes this clean
    /// error instead of publishing into a half-dismantled head. The batch
    /// was **not** applied (not even partially).
    BranchDeleted,
    /// Structural invariant violated (internal bug guard, e.g. unsorted
    /// leaf discovered during a scan).
    CorruptStructure(&'static str),
    /// Operation is not meaningful for this index (e.g. range scan on MBT).
    Unsupported(&'static str),
    /// A remote peer reported a failure that has no structural equivalent
    /// on this side (an engine error whose payload cannot round-trip the
    /// wire, or a server-side fault). The string is the peer's rendering
    /// of the original error.
    Remote(String),
    /// A proof returned by an untrusted party failed local verification
    /// against the trusted branch digest. Distinct from
    /// [`IndexError::TamperDetected`] (a store page failing its content
    /// address): here the *peer's evidence* is bad — a doctored page, a
    /// wrong anchor, or a truncated path — and the value never reaches the
    /// caller.
    ProofRejected(&'static str),
}

impl fmt::Display for IndexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IndexError::MissingPage(h) => write!(f, "missing page {h:?}"),
            IndexError::Store(e) => write!(f, "{e}"),
            IndexError::Codec(e) => write!(f, "page decode failed: {e}"),
            IndexError::TamperDetected { expected } => {
                write!(f, "page content does not match address {expected:?} (tampering)")
            }
            IndexError::MergeConflict { conflicts } => {
                write!(f, "merge conflict on {} key(s)", conflicts.len())
            }
            IndexError::CommitContention { attempts } => {
                write!(f, "commit lost the branch-head race {attempts} times (batch not applied)")
            }
            IndexError::BranchDeleted => {
                write!(f, "branch was deleted during the commit (batch not applied)")
            }
            IndexError::CorruptStructure(what) => write!(f, "corrupt structure: {what}"),
            IndexError::Unsupported(what) => write!(f, "unsupported operation: {what}"),
            IndexError::Remote(what) => write!(f, "remote error: {what}"),
            IndexError::ProofRejected(why) => {
                write!(f, "proof failed local verification: {why}")
            }
        }
    }
}

impl std::error::Error for IndexError {}

impl From<CodecError> for IndexError {
    fn from(e: CodecError) -> Self {
        IndexError::Codec(e)
    }
}

impl From<siri_encoding::RlpError> for IndexError {
    fn from(e: siri_encoding::RlpError) -> Self {
        IndexError::Codec(CodecError::Rlp(e))
    }
}

impl From<StoreError> for IndexError {
    fn from(e: StoreError) -> Self {
        IndexError::Store(e)
    }
}

pub type Result<T> = std::result::Result<T, IndexError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = IndexError::MissingPage(siri_crypto::sha256(b"x"));
        assert!(e.to_string().contains("missing page"));
        let e: IndexError = CodecError::Truncated.into();
        assert!(e.to_string().contains("truncated"));
    }
}
