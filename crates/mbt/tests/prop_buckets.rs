//! MBT-specific property tests: arbitrary shapes (B, fanout), model
//! equivalence, order invariance, and topology laws.

use std::collections::BTreeMap;

use proptest::prelude::*;
use siri_core::{Entry, MemStore, SiriIndex};
use siri_mbt::{MerkleBucketTree, Topology};

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    #[test]
    fn topology_laws(buckets in 1usize..500, fanout in 2usize..12) {
        let t = Topology::new(buckets, fanout);
        // Level sizes shrink by ~fanout and end at 1.
        prop_assert_eq!(t.nodes_on_level(0), buckets);
        prop_assert_eq!(t.nodes_on_level(t.height() - 1), 1);
        for level in 1..t.height() {
            prop_assert_eq!(
                t.nodes_on_level(level),
                t.nodes_on_level(level - 1).div_ceil(fanout)
            );
        }
        // Every bucket's path is consistent with parent/child arithmetic.
        for bucket in [0, buckets / 2, buckets - 1] {
            let path = t.path_to_bucket(bucket);
            prop_assert_eq!(path.len(), t.height());
            for pair in path.windows(2) {
                prop_assert_eq!(t.parent(pair[1]), Some(pair[0]));
                let (first, count) = t.children_span(pair[0]);
                let slot = t.slot_in_parent(pair[1]);
                prop_assert!(slot < count);
                prop_assert_eq!(first + slot, pair[1].1);
            }
        }
    }

    #[test]
    fn mbt_matches_model_for_arbitrary_shapes(
        raw in proptest::collection::vec(
            (proptest::collection::vec(proptest::num::u8::ANY, 1..8),
             proptest::collection::vec(proptest::num::u8::ANY, 0..16)),
            1..80,
        ),
        buckets in 1usize..40,
        fanout in 2usize..6,
    ) {
        let model: BTreeMap<Vec<u8>, Vec<u8>> = raw.iter().cloned().collect();
        let mut t = MerkleBucketTree::new(MemStore::new_shared(), buckets, fanout).unwrap();
        t.batch_insert(raw.iter().map(|(k, v)| Entry::new(k.clone(), v.clone())).collect())
            .unwrap();
        prop_assert_eq!(t.len().unwrap(), model.len());
        for (k, v) in &model {
            let got = t.get(k).unwrap();
            prop_assert_eq!(got.as_deref(), Some(v.as_slice()));
        }
    }

    #[test]
    fn mbt_root_is_order_invariant(
        raw in proptest::collection::vec(
            (proptest::collection::vec(proptest::num::u8::ANY, 1..6),
             proptest::collection::vec(proptest::num::u8::ANY, 1..8)),
            1..50,
        ),
        seed in 0u64..500,
    ) {
        let model: BTreeMap<Vec<u8>, Vec<u8>> = raw.iter().cloned().collect();
        let entries: Vec<Entry> =
            model.iter().map(|(k, v)| Entry::new(k.clone(), v.clone())).collect();
        let mut shuffled = entries.clone();
        let n = shuffled.len();
        for i in (1..n).rev() {
            let j = (seed.wrapping_add(i as u64 * 2654435761) % (i as u64 + 1)) as usize;
            shuffled.swap(i, j);
        }
        let mut a = MerkleBucketTree::new(MemStore::new_shared(), 16, 4).unwrap();
        a.batch_insert(entries).unwrap();
        let mut b = MerkleBucketTree::new(MemStore::new_shared(), 16, 4).unwrap();
        for chunk in shuffled.chunks(7) {
            b.batch_insert(chunk.to_vec()).unwrap();
        }
        prop_assert_eq!(a.root(), b.root());
    }
}
