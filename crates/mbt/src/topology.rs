//! Topology of the complete m-ary Merkle tree over B buckets.
//!
//! MBT's shape is fixed at construction: "capacity and fanout are
//! pre-defined and cannot be changed in its life cycle" (§3.4.2). Because
//! the shape is arithmetic, the lookup path is *derived*, not searched —
//! "a trivial reverse simulation of the complete multi-way search tree
//! search algorithm".

use siri_crypto::fx_hash_bytes;

/// Node coordinates: level 0 is the bucket level; the highest level holds
/// the single root.
pub type NodeId = (usize, usize);

/// The arithmetic shape of one MBT instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Topology {
    buckets: usize,
    fanout: usize,
    /// Node counts per level, `levels[0] == buckets`, `levels.last() == 1`.
    levels: Vec<usize>,
}

impl Topology {
    pub fn new(buckets: usize, fanout: usize) -> Self {
        assert!(buckets >= 1, "MBT needs at least one bucket");
        assert!(fanout >= 2, "MBT fanout must be at least 2");
        let mut levels = vec![buckets];
        let mut width = buckets;
        while width > 1 {
            width = width.div_ceil(fanout);
            levels.push(width);
        }
        Topology { buckets, fanout, levels }
    }

    pub fn buckets(&self) -> usize {
        self.buckets
    }

    pub fn fanout(&self) -> usize {
        self.fanout
    }

    /// Number of levels including the bucket level. A single-bucket tree
    /// has height 1: the bucket is the root.
    pub fn height(&self) -> usize {
        self.levels.len()
    }

    /// Nodes on `level`.
    pub fn nodes_on_level(&self, level: usize) -> usize {
        self.levels[level]
    }

    /// Total number of nodes in the tree (buckets + internal).
    pub fn total_nodes(&self) -> usize {
        self.levels.iter().sum()
    }

    /// The bucket a key hashes to: `hash(key) % B` (§3.4.2).
    pub fn bucket_of(&self, key: &[u8]) -> usize {
        (fx_hash_bytes(key) % self.buckets as u64) as usize
    }

    /// Parent coordinates of a node.
    pub fn parent(&self, (level, idx): NodeId) -> Option<NodeId> {
        if level + 1 >= self.height() {
            None
        } else {
            Some((level + 1, idx / self.fanout))
        }
    }

    /// Children of an internal node, as (first_child_index, count).
    pub fn children_span(&self, (level, idx): NodeId) -> (usize, usize) {
        assert!(level > 0, "buckets have no children");
        let first = idx * self.fanout;
        let below = self.levels[level - 1];
        let count = self.fanout.min(below - first);
        (first, count)
    }

    /// Which child slot of its parent a node occupies.
    pub fn slot_in_parent(&self, (_, idx): NodeId) -> usize {
        idx % self.fanout
    }

    /// The root→bucket path for a bucket index, starting at the root.
    pub fn path_to_bucket(&self, bucket: usize) -> Vec<NodeId> {
        assert!(bucket < self.buckets);
        let mut path: Vec<NodeId> = Vec::with_capacity(self.height());
        let mut idx = bucket;
        for level in 0..self.height() {
            path.push((level, idx));
            idx /= self.fanout;
        }
        path.reverse();
        path
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_sizes_for_eight_buckets_fanout_two() {
        // The Figure 4 configuration: 8 buckets, fanout 2 → 8,4,2,1.
        let t = Topology::new(8, 2);
        assert_eq!(t.height(), 4);
        assert_eq!(
            (0..t.height()).map(|l| t.nodes_on_level(l)).collect::<Vec<_>>(),
            vec![8, 4, 2, 1]
        );
        assert_eq!(t.total_nodes(), 15);
    }

    #[test]
    fn ragged_last_parent() {
        let t = Topology::new(10, 4); // levels 10, 3, 1
        assert_eq!(t.nodes_on_level(1), 3);
        assert_eq!(t.children_span((1, 2)), (8, 2), "last parent has 2 children");
        assert_eq!(t.children_span((1, 0)), (0, 4));
    }

    #[test]
    fn single_bucket_tree() {
        let t = Topology::new(1, 4);
        assert_eq!(t.height(), 1);
        assert_eq!(t.path_to_bucket(0), vec![(0, 0)]);
    }

    #[test]
    fn path_is_root_first_and_consistent_with_parent() {
        let t = Topology::new(64, 4);
        for bucket in [0usize, 17, 63] {
            let path = t.path_to_bucket(bucket);
            assert_eq!(path.first().unwrap(), &(t.height() - 1, 0), "starts at root");
            assert_eq!(path.last().unwrap(), &(0, bucket), "ends at the bucket");
            for pair in path.windows(2) {
                assert_eq!(t.parent(pair[1]), Some(pair[0]));
                let (first, count) = t.children_span(pair[0]);
                let slot = t.slot_in_parent(pair[1]);
                assert!(slot < count);
                assert_eq!(first + slot, pair[1].1);
            }
        }
    }

    #[test]
    fn bucket_of_is_stable_and_in_range() {
        let t = Topology::new(1000, 8);
        for i in 0..100 {
            let key = format!("key{i}");
            let b = t.bucket_of(key.as_bytes());
            assert!(b < 1000);
            assert_eq!(b, t.bucket_of(key.as_bytes()));
        }
    }
}
