//! MBT proof verification.
//!
//! A proof is the root→bucket page path. The verifier holds only the
//! trusted digest: it reads B and fanout from the (digest-checked) root
//! page, re-derives the bucket index and slot path arithmetically, and
//! checks every parent→child link by re-hashing, so any tampered page or
//! wrong-path proof is rejected.

use std::ops::Bound;

use bytes::Bytes;
use siri_core::{bounds_contain, Entry, PagePool, Proof, ProofScheme, ProofVerdict};
use siri_crypto::{sha256, Hash};

use crate::node::Node;
use crate::topology::Topology;

pub(crate) fn verify(root: Hash, key: &[u8], proof: &Proof) -> ProofVerdict {
    let pages = proof.pages();
    let Some(first) = pages.first() else {
        return ProofVerdict::Invalid("empty proof");
    };
    if sha256(first) != root {
        return ProofVerdict::Invalid("root page does not match digest");
    }
    let Ok(root_node) = Node::decode(first) else {
        return ProofVerdict::Invalid("root page undecodable");
    };
    let (b, m) = root_node.params();
    if b == 0 || m < 2 {
        return ProofVerdict::Invalid("implausible parameters");
    }
    let topo = Topology::new(b as usize, m as usize);
    let path = topo.path_to_bucket(topo.bucket_of(key));
    if pages.len() != path.len() {
        return ProofVerdict::Invalid("proof length does not match tree height");
    }

    let mut current = root_node;
    for step in 1..path.len() {
        let Node::Internal { children, buckets, fanout } = current else {
            return ProofVerdict::Invalid("bucket page at internal level");
        };
        if (buckets, fanout) != (b, m) {
            return ProofVerdict::Invalid("parameter mismatch along path");
        }
        let slot = topo.slot_in_parent(path[step]);
        let Some(expected) = children.get(slot) else {
            return ProofVerdict::Invalid("path slot out of range");
        };
        if sha256(&pages[step]) != *expected {
            return ProofVerdict::Invalid("broken hash link");
        }
        match Node::decode(&pages[step]) {
            Ok(node) => current = node,
            Err(_) => return ProofVerdict::Invalid("page undecodable"),
        }
    }

    match current {
        Node::Bucket { entries, buckets, fanout } => {
            if (buckets, fanout) != (b, m) {
                return ProofVerdict::Invalid("parameter mismatch at bucket");
            }
            match entries.binary_search_by(|e| e.key.as_ref().cmp(key)) {
                Ok(i) => ProofVerdict::Present(Bytes::copy_from_slice(&entries[i].value)),
                Err(_) => ProofVerdict::Absent,
            }
        }
        Node::Internal { .. } => ProofVerdict::Invalid("proof ends at internal node"),
    }
}

/// One key's root→bucket re-walk through a shared page pool, deriving the
/// path arithmetically from the (digest-checked) root page's parameters.
pub(crate) fn verify_key_pages(root: Hash, key: &[u8], pool: &mut PagePool) -> ProofVerdict {
    if root.is_zero() {
        return ProofVerdict::Absent;
    }
    let Some(first) = pool.get(&root) else {
        return ProofVerdict::Invalid("missing page in proof");
    };
    let Ok(mut current) = Node::decode_zc(&first) else {
        return ProofVerdict::Invalid("root page undecodable");
    };
    let (b, m) = current.params();
    if b == 0 || m < 2 {
        return ProofVerdict::Invalid("implausible parameters");
    }
    let topo = Topology::new(b as usize, m as usize);
    let path = topo.path_to_bucket(topo.bucket_of(key));
    for node_id in path.iter().skip(1) {
        let Node::Internal { children, buckets, fanout } = current else {
            return ProofVerdict::Invalid("bucket page at internal level");
        };
        if (buckets, fanout) != (b, m) {
            return ProofVerdict::Invalid("parameter mismatch along path");
        }
        let slot = topo.slot_in_parent(*node_id);
        let Some(expected) = children.get(slot) else {
            return ProofVerdict::Invalid("path slot out of range");
        };
        let Some(page) = pool.get(expected) else {
            return ProofVerdict::Invalid("missing page in proof");
        };
        match Node::decode_zc(&page) {
            Ok(node) => current = node,
            Err(_) => return ProofVerdict::Invalid("page undecodable"),
        }
    }
    match current {
        Node::Bucket { entries, buckets, fanout } => {
            if (buckets, fanout) != (b, m) {
                return ProofVerdict::Invalid("parameter mismatch at bucket");
            }
            match entries.binary_search_by(|e| e.key.as_ref().cmp(key)) {
                Ok(i) => ProofVerdict::Present(entries[i].value.clone()),
                Err(_) => ProofVerdict::Absent,
            }
        }
        Node::Internal { .. } => ProofVerdict::Invalid("proof ends at internal node"),
    }
}

/// Re-walk the *entire* tree through the pool — hashing destroys key
/// order, so an MBT range proof is the whole page set and the range is
/// filtered + sorted afterwards. Every page is checked against the
/// arithmetic topology (level, child count, parameters) so a reshaped
/// tree cannot masquerade as complete.
pub(crate) fn verify_range_pages(
    root: Hash,
    start: Bound<&[u8]>,
    end: Bound<&[u8]>,
    pool: &mut PagePool,
    out: &mut Vec<Entry>,
) -> Result<(), &'static str> {
    if root.is_zero() {
        return Ok(());
    }
    let Some(first) = pool.get(&root) else {
        return Err("missing page in proof");
    };
    let root_node = Node::decode_zc(&first).map_err(|_| "root page undecodable")?;
    let (b, m) = root_node.params();
    if b == 0 || m < 2 {
        return Err("implausible parameters");
    }
    let topo = Topology::new(b as usize, m as usize);
    let mut collected = Vec::new();
    walk_full(root_node, (topo.height() - 1, 0), &topo, (b, m), pool, &mut collected)?;
    collected.retain(|e| bounds_contain(start, end, &e.key));
    collected.sort_by(|x, y| x.key.cmp(&y.key));
    out.extend(collected);
    Ok(())
}

fn walk_full(
    node: Node,
    id: crate::topology::NodeId,
    topo: &Topology,
    params: (u64, u64),
    pool: &mut PagePool,
    out: &mut Vec<Entry>,
) -> Result<(), &'static str> {
    match node {
        Node::Bucket { entries, buckets, fanout } => {
            if (buckets, fanout) != params {
                return Err("parameter mismatch along walk");
            }
            if id.0 != 0 {
                return Err("bucket page at internal level");
            }
            out.extend(entries);
            Ok(())
        }
        Node::Internal { children, buckets, fanout } => {
            if (buckets, fanout) != params {
                return Err("parameter mismatch along walk");
            }
            if id.0 == 0 {
                return Err("internal page at bucket level");
            }
            let (first, count) = topo.children_span(id);
            if children.len() != count {
                return Err("child count does not match topology");
            }
            for (j, h) in children.iter().enumerate() {
                let page = pool.get(h).ok_or("missing page in proof")?;
                let child = Node::decode_zc(&page).map_err(|_| "page undecodable")?;
                walk_full(child, (id.0 - 1, first + j), topo, params, pool, out)?;
            }
            Ok(())
        }
    }
}

/// MBT's [`ProofScheme`].
pub struct MbtProofScheme;

impl ProofScheme for MbtProofScheme {
    fn structure(&self) -> &'static str {
        "mbt"
    }

    fn verify_membership(&self, root: Hash, key: &[u8], proof: &Proof) -> ProofVerdict {
        verify(root, key, proof)
    }

    fn verify_key_pages(&self, root: Hash, key: &[u8], pool: &mut PagePool) -> ProofVerdict {
        verify_key_pages(root, key, pool)
    }

    fn verify_range_pages(
        &self,
        root: Hash,
        start: Bound<&[u8]>,
        end: Bound<&[u8]>,
        pool: &mut PagePool,
        out: &mut Vec<Entry>,
    ) -> Result<(), &'static str> {
        verify_range_pages(root, start, end, pool, out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MerkleBucketTree;
    use siri_core::{Entry, MemStore, SiriIndex};

    fn tree_with_data() -> MerkleBucketTree {
        let mut t = MerkleBucketTree::new(MemStore::new_shared(), 32, 4).unwrap();
        let entries: Vec<Entry> = (0..100)
            .map(|i| {
                Entry::new(format!("key{i:03}").into_bytes(), format!("value{i}").into_bytes())
            })
            .collect();
        t.batch_insert(entries).unwrap();
        t
    }

    #[test]
    fn proves_presence() {
        let t = tree_with_data();
        let proof = t.prove(b"key042").unwrap();
        match MerkleBucketTree::verify_proof(t.root(), b"key042", &proof) {
            ProofVerdict::Present(v) => assert_eq!(v.as_ref(), b"value42"),
            other => panic!("expected Present, got {other:?}"),
        }
    }

    #[test]
    fn proves_absence() {
        let t = tree_with_data();
        let proof = t.prove(b"missing-key").unwrap();
        assert_eq!(
            MerkleBucketTree::verify_proof(t.root(), b"missing-key", &proof),
            ProofVerdict::Absent
        );
    }

    #[test]
    fn tampered_page_is_rejected() {
        let t = tree_with_data();
        let mut proof = t.prove(b"key042").unwrap();
        for page in 0..proof.len() {
            let mut p = proof.clone();
            p.tamper(page, 13);
            assert!(
                !MerkleBucketTree::verify_proof(t.root(), b"key042", &p).is_valid(),
                "tampering page {page} must invalidate the proof"
            );
        }
        // Untampered control.
        proof.tamper(usize::MAX, 0); // no-op
        assert!(MerkleBucketTree::verify_proof(t.root(), b"key042", &proof).is_valid());
    }

    #[test]
    fn proof_for_wrong_key_is_rejected() {
        let t = tree_with_data();
        let proof = t.prove(b"key001").unwrap();
        // key in a different bucket: the arithmetic path will not match.
        let verdict = MerkleBucketTree::verify_proof(t.root(), b"key002", &proof);
        // Either invalid (different path length impossible here, so link
        // check fails) or a *correct* Absent — never a false Present.
        assert!(verdict.value().is_none());
    }

    #[test]
    fn wrong_root_rejected() {
        let t = tree_with_data();
        let proof = t.prove(b"key001").unwrap();
        let wrong = siri_crypto::sha256(b"forged root");
        assert!(!MerkleBucketTree::verify_proof(wrong, b"key001", &proof).is_valid());
    }

    #[test]
    fn truncated_proof_rejected() {
        let t = tree_with_data();
        let proof = t.prove(b"key001").unwrap();
        let truncated = Proof::new(proof.pages()[..proof.len() - 1].to_vec());
        assert!(!MerkleBucketTree::verify_proof(t.root(), b"key001", &truncated).is_valid());
    }
}
