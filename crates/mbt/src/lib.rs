//! Merkle Bucket Tree (MBT) — §3.4.2 of the paper.
//!
//! A hash table of `B` buckets under a complete Merkle tree of fanout `m`,
//! modelled on Hyperledger Fabric 0.6's bucket tree and made immutable with
//! node-level copy-on-write (the paper's §5.2 porting notes). Keys hash to
//! buckets; entries within a bucket are kept sorted; internal nodes are the
//! cryptographic fan-in of their children. The shape is fixed for the life
//! of the index: updates rewrite exactly the path from the touched bucket
//! to the root.
//!
//! ```
//! use siri_core::{MemStore, SiriIndex};
//! use siri_mbt::MerkleBucketTree;
//!
//! let store = MemStore::new_shared();
//! let mut mbt = MerkleBucketTree::new(store, 64, 4).unwrap();
//! mbt.insert(b"key", bytes::Bytes::from_static(b"value")).unwrap();
//! assert_eq!(mbt.get(b"key").unwrap().unwrap().as_ref(), b"value");
//! ```

mod cursor;
mod node;
mod proof;
mod topology;

use std::collections::BTreeMap;
use std::ops::Bound;
use std::sync::Arc;
use std::time::Instant;

use bytes::Bytes;
use siri_core::{
    apply_ops, diff_sorted_entries, entry_codec, own_bound, BatchOp, DiffEntry, Entry, EntryCursor,
    IndexError, LookupTrace, Proof, ProofVerdict, Result, SiriIndex, StructureReport,
    StructureStats, WriteBatch,
};
use siri_crypto::{FxHashMap, Hash};
use siri_store::{
    reachable_pages, CacheStats, NodeCache, PageSet, SharedStore, DEFAULT_NODE_CACHE_CAPACITY,
};

pub use cursor::RangeCursor;
pub use node::Node;
pub use proof::MbtProofScheme;
pub use topology::Topology;

/// Default bucket count used by the experiments (§5.4.3 sweeps 4000–10000).
pub const DEFAULT_BUCKETS: usize = 1024;
/// Default fanout, sized so internal pages are ≈1 KB as in §5's setup.
pub const DEFAULT_FANOUT: usize = 32;

/// Handle to one MBT version: `(store, topology, root hash)` plus the
/// decoded-node cache every clone shares. MBT benefits doubly from the
/// cache: its shape is fixed, so the root-side internal nodes are revisited
/// by *every* lookup and pin themselves at the LRU front.
#[derive(Clone)]
pub struct MerkleBucketTree {
    store: SharedStore,
    topo: Topology,
    root: Hash,
    cache: Arc<NodeCache<Node>>,
}

/// A decoded root→bucket path plus the cache traffic loading it caused.
struct LoadedPath {
    nodes: Vec<(Hash, Arc<Node>)>,
    cache_hits: u32,
    cache_misses: u32,
}

impl MerkleBucketTree {
    /// Build an empty tree with the given capacity (`buckets`) and fanout.
    /// The full skeleton exists from birth; content addressing collapses
    /// the B identical empty buckets to a single stored page.
    pub fn new(store: SharedStore, buckets: usize, fanout: usize) -> Result<Self> {
        let topo = Topology::new(buckets, fanout);
        let (b, m) = (buckets as u64, fanout as u64);

        let empty_bucket = Node::Bucket { buckets: b, fanout: m, entries: Vec::new() }.encode();
        let bucket_hash = store.try_put(empty_bucket)?;
        let mut level: Vec<Hash> = vec![bucket_hash; buckets];

        while level.len() > 1 {
            // Lower levels repeat a handful of distinct child runs (full
            // nodes plus ragged tails), so memoize pages by their *content*
            // and persist the distinct ones as a single multi-lane batch.
            // (An earlier revision keyed the memo by chunk length, which
            // conflates e.g. [full, full] with [full, tail] on ragged
            // shapes like 9 buckets × fanout 2.)
            let mut memo: FxHashMap<&[Hash], usize> = FxHashMap::default();
            let mut pages: Vec<Bytes> = Vec::new();
            let mut slots = Vec::with_capacity(level.len().div_ceil(fanout));
            for chunk in level.chunks(fanout) {
                let slot = *memo.entry(chunk).or_insert_with(|| {
                    let node = Node::Internal { buckets: b, fanout: m, children: chunk.to_vec() };
                    pages.push(node.encode());
                    pages.len() - 1
                });
                slots.push(slot);
            }
            let hashes = store.try_put_many(&pages)?;
            level = slots.into_iter().map(|s| hashes[s]).collect();
        }
        let root = level[0];
        Ok(MerkleBucketTree {
            store,
            topo,
            root,
            cache: NodeCache::new_shared(DEFAULT_NODE_CACHE_CAPACITY),
        })
    }

    /// Re-open an existing version by root hash. The parameters must match
    /// those the tree was built with; they are validated against the root
    /// page on first access.
    pub fn open(store: SharedStore, buckets: usize, fanout: usize, root: Hash) -> Self {
        MerkleBucketTree {
            store,
            topo: Topology::new(buckets, fanout),
            root,
            cache: NodeCache::new_shared(DEFAULT_NODE_CACHE_CAPACITY),
        }
    }

    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Replace the node cache with one bounded to `capacity` decoded nodes
    /// (0 disables caching — every fetch decodes). Benchmarks use this for
    /// cache-size sweeps; clones made *after* this call share the new cache.
    pub fn with_node_cache_capacity(mut self, capacity: usize) -> Self {
        self.cache = NodeCache::new_shared(capacity);
        self
    }

    /// Hit/miss/eviction counters of the shared decoded-node cache.
    pub fn node_cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    fn fetch(&self, hash: &Hash) -> Result<Arc<Node>> {
        Ok(self.fetch_traced(hash)?.0)
    }

    /// Fetch a node through the cache; the flag reports whether it was a
    /// cache hit (no store access, no decode).
    fn fetch_traced(&self, hash: &Hash) -> Result<(Arc<Node>, bool)> {
        self.cache.get_or_load(hash, || {
            let page = self.store.try_get(hash)?.ok_or(IndexError::MissingPage(*hash))?;
            Node::decode_zc(&page)
        })
    }

    /// Decoded nodes along the root→bucket path.
    fn load_path(&self, bucket: usize) -> Result<LoadedPath> {
        let path = self.topo.path_to_bucket(bucket);
        let mut out =
            LoadedPath { nodes: Vec::with_capacity(path.len()), cache_hits: 0, cache_misses: 0 };
        let mut hash = self.root;
        for (i, id) in path.iter().enumerate() {
            let (node, cached) = self.fetch_traced(&hash)?;
            if cached {
                out.cache_hits += 1;
            } else {
                out.cache_misses += 1;
            }
            if i + 1 < path.len() {
                let next = match &*node {
                    Node::Internal { children, .. } => {
                        let slot = self.topo.slot_in_parent(path[i + 1]);
                        *children
                            .get(slot)
                            .ok_or(IndexError::CorruptStructure("missing child slot"))?
                    }
                    Node::Bucket { .. } => {
                        return Err(IndexError::CorruptStructure("bucket above leaf level"))
                    }
                };
                out.nodes.push((hash, node));
                hash = next;
            } else {
                out.nodes.push((hash, node));
            }
            let _ = id;
        }
        Ok(out)
    }

    /// The decoded bucket node at `bucket`, shared out of the node cache —
    /// how the cursor pins buckets without copying their entries.
    pub(crate) fn bucket_node(&self, bucket: usize) -> Result<Arc<Node>> {
        let path = self.load_path(bucket)?;
        match path.nodes.last() {
            Some((_, node)) if matches!(&**node, Node::Bucket { .. }) => Ok(node.clone()),
            _ => Err(IndexError::CorruptStructure("path did not end in a bucket")),
        }
    }

    /// Entries of one bucket by index (copied; write path only).
    fn bucket_entries(&self, bucket: usize) -> Result<Vec<Entry>> {
        match &*self.bucket_node(bucket)? {
            Node::Bucket { entries, .. } => Ok(entries.clone()),
            _ => Err(IndexError::CorruptStructure("path did not end in a bucket")),
        }
    }

    /// Bucket fill statistics: (min, max, mean entries per bucket) — the
    /// diagnostic for tuning B against N (§4.1's N/B term, Table 3's
    /// bucket-count sweep).
    pub fn bucket_fill_stats(&self) -> Result<(usize, usize, f64)> {
        let mut min = usize::MAX;
        let mut max = 0usize;
        let mut total = 0usize;
        for bucket in 0..self.topo.buckets() {
            let n = self.bucket_entries(bucket)?.len();
            min = min.min(n);
            max = max.max(n);
            total += n;
        }
        Ok((min, max, total as f64 / self.topo.buckets() as f64))
    }

    /// Structure-aware recursive diff of two subtrees at the same position.
    fn diff_rec(
        &self,
        other: &Self,
        id: topology::NodeId,
        ha: Hash,
        hb: Hash,
        out: &mut Vec<DiffEntry>,
    ) -> Result<()> {
        if ha == hb {
            // Identical digest ⇒ identical subtree: Structurally Invariant
            // makes this the common fast path ("comparing the hash of the
            // nodes at the corresponding position", §5.3.2).
            return Ok(());
        }
        let na = self.fetch(&ha)?;
        let nb = other.fetch(&hb)?;
        match (&*na, &*nb) {
            (Node::Internal { children: ca, .. }, Node::Internal { children: cb, .. }) => {
                if ca.len() != cb.len() {
                    return Err(IndexError::CorruptStructure("fan-in mismatch in diff"));
                }
                let (first, _) = self.topo.children_span(id);
                for (slot, (a, b)) in ca.iter().zip(cb.iter()).enumerate() {
                    self.diff_rec(other, (id.0 - 1, first + slot), *a, *b, out)?;
                }
                Ok(())
            }
            (Node::Bucket { entries: ea, .. }, Node::Bucket { entries: eb, .. }) => {
                out.extend(diff_sorted_entries(ea, eb));
                Ok(())
            }
            _ => Err(IndexError::CorruptStructure("node kind mismatch in diff")),
        }
    }
}

impl SiriIndex for MerkleBucketTree {
    fn kind(&self) -> &'static str {
        "mbt"
    }

    fn store(&self) -> &SharedStore {
        &self.store
    }

    fn root(&self) -> Hash {
        self.root
    }

    fn at_root(&self, root: Hash) -> Self {
        let mut handle = self.clone();
        handle.root = root;
        handle
    }

    fn get(&self, key: &[u8]) -> Result<Option<Bytes>> {
        // Through get_traced: it searches the bucket by reference out of
        // the cached Arc<Node> instead of cloning the entry Vec.
        Ok(self.get_traced(key)?.0)
    }

    fn get_traced(&self, key: &[u8]) -> Result<(Option<Bytes>, LookupTrace)> {
        let mut trace = LookupTrace::default();
        let load_start = Instant::now();
        let path = self.load_path(self.topo.bucket_of(key))?;
        trace.load_nanos = load_start.elapsed().as_nanos() as u64;
        trace.pages_loaded = path.nodes.len() as u32;
        trace.height = path.nodes.len() as u32;
        trace.cache_hits = path.cache_hits;
        trace.cache_misses = path.cache_misses;

        let entries = match &*path.nodes.last().expect("non-empty path").1 {
            Node::Bucket { entries, .. } => entries,
            _ => return Err(IndexError::CorruptStructure("path did not end in a bucket")),
        };
        let scan_start = Instant::now();
        // Manual binary search so we can count probed entries (Fig. 13's
        // "scan time" companion metric).
        let (mut lo, mut hi) = (0usize, entries.len());
        let mut found = None;
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            trace.leaf_entries_scanned += 1;
            match entries[mid].key.as_ref().cmp(key) {
                std::cmp::Ordering::Equal => {
                    found = Some(entries[mid].value.clone());
                    break;
                }
                std::cmp::Ordering::Less => lo = mid + 1,
                std::cmp::Ordering::Greater => hi = mid,
            }
        }
        trace.scan_nanos = scan_start.elapsed().as_nanos() as u64;
        Ok((found, trace))
    }

    fn commit(&mut self, batch: WriteBatch) -> Result<Hash> {
        let ops = batch.normalize();
        if ops.is_empty() {
            return Ok(self.root);
        }
        let (b, m) = (self.topo.buckets() as u64, self.topo.fanout() as u64);

        // Group operations by destination bucket; normalization ordered
        // them by key, and grouping preserves that per-bucket order.
        let mut per_bucket: BTreeMap<usize, Vec<BatchOp>> = BTreeMap::new();
        for op in ops {
            per_bucket.entry(self.topo.bucket_of(&op.key)).or_default().push(op);
        }

        // Rewrite affected buckets. A bucket emptied by deletes re-encodes
        // as the canonical empty-bucket page (the skeleton's shape is fixed
        // for life), so content addressing collapses it back onto the page
        // every empty bucket shares — delete-then-reinsert restores the
        // identical root.
        // All rewritten buckets are persisted as one sibling batch: the
        // store digests the batch with the multi-lane hasher before taking
        // any shard lock.
        let mut changed: FxHashMap<topology::NodeId, Hash> = FxHashMap::default();
        let mut bucket_pages = Vec::with_capacity(per_bucket.len());
        for (bucket, bucket_ops) in &per_bucket {
            let old = self.bucket_entries(*bucket)?;
            let merged = apply_ops(&old, bucket_ops);
            bucket_pages.push(Node::Bucket { buckets: b, fanout: m, entries: merged }.encode());
        }
        let hashes = self.store.try_put_many(&bucket_pages)?;
        for (bucket, h) in per_bucket.keys().zip(hashes) {
            changed.insert((0, *bucket), h);
        }

        // Propagate new hashes level by level ("the hashes of the bucket
        // and the nodes are recalculated recursively", §3.4.2).
        for level in 1..self.topo.height() {
            let parents: std::collections::BTreeSet<usize> = changed
                .keys()
                .filter(|(l, _)| *l == level - 1)
                .map(|(_, idx)| idx / self.topo.fanout())
                .collect();
            // Parents on one level are siblings of each other: encode them
            // all, then put them as one batch.
            let mut parent_ids = Vec::with_capacity(parents.len());
            let mut parent_pages = Vec::with_capacity(parents.len());
            for parent in parents {
                let id = (level, parent);
                // Load the old parent via the path of its leftmost bucket.
                let leftmost_bucket = parent * self.topo.fanout().pow(level as u32);
                let path = self.load_path(leftmost_bucket.min(self.topo.buckets() - 1))?;
                let depth_from_root = self.topo.height() - 1 - level;
                let (_, old_node) = &path.nodes[depth_from_root];
                let mut children = match &**old_node {
                    Node::Internal { children, .. } => children.clone(),
                    Node::Bucket { .. } => {
                        return Err(IndexError::CorruptStructure("bucket at internal level"))
                    }
                };
                let (first, count) = self.topo.children_span(id);
                for (slot, child) in children.iter_mut().enumerate().take(count) {
                    if let Some(h) = changed.get(&(level - 1, first + slot)) {
                        *child = *h;
                    }
                }
                parent_pages.push(Node::Internal { buckets: b, fanout: m, children }.encode());
                parent_ids.push(id);
            }
            let hashes = self.store.try_put_many(&parent_pages)?;
            for (id, h) in parent_ids.into_iter().zip(hashes) {
                changed.insert(id, h);
            }
        }

        let root_id = (self.topo.height() - 1, 0);
        self.root = *changed.get(&root_id).expect("root must change when buckets change");
        Ok(self.root)
    }

    fn range(&self, start: Bound<&[u8]>, end: Bound<&[u8]>) -> EntryCursor {
        EntryCursor::new(cursor::RangeCursor::new(self.clone(), own_bound(start), own_bound(end)))
    }

    /// Counting needs only each bucket's entry count — no collation, no
    /// sort, and the bucket nodes come shared out of the node cache.
    fn len(&self) -> Result<usize> {
        let mut n = 0;
        for bucket in 0..self.topo.buckets() {
            if let Node::Bucket { entries, .. } = &*self.bucket_node(bucket)? {
                n += entries.len();
            }
        }
        Ok(n)
    }

    fn is_empty(&self) -> bool {
        // MBT's root is never the zero hash (the skeleton always exists),
        // so emptiness means "no entries".
        // Fail safe: an unreadable store must not masquerade as an empty
        // index (callers branch on emptiness to skip work).
        self.len().map(|n| n == 0).unwrap_or(false)
    }

    fn page_set(&self) -> PageSet {
        reachable_pages(self.store.as_ref(), self.root, Node::children_of_page)
    }

    fn diff(&self, other: &Self) -> Result<Vec<DiffEntry>> {
        if self.topo != other.topo {
            // Different shapes have no positional correspondence; fall back
            // to the scan-based reference diff.
            return siri_core::diff_by_scan(self, other);
        }
        let mut out = Vec::new();
        let root_id = (self.topo.height() - 1, 0);
        self.diff_rec(other, root_id, self.root, other.root, &mut out)?;
        out.sort_by(|a, b| a.key.cmp(&b.key));
        Ok(out)
    }

    fn prove(&self, key: &[u8]) -> Result<Proof> {
        let bucket = self.topo.bucket_of(key);
        let path = self.topo.path_to_bucket(bucket);
        let mut pages = Vec::with_capacity(path.len());
        let mut hash = self.root;
        for (i, _) in path.iter().enumerate() {
            let page = self.store.try_get(&hash)?.ok_or(IndexError::MissingPage(hash))?;
            let node = Node::decode(&page)?;
            pages.push(page);
            if i + 1 < path.len() {
                match node {
                    Node::Internal { children, .. } => {
                        let slot = self.topo.slot_in_parent(path[i + 1]);
                        hash = *children
                            .get(slot)
                            .ok_or(IndexError::CorruptStructure("missing child slot"))?;
                    }
                    Node::Bucket { .. } => {
                        return Err(IndexError::CorruptStructure("bucket above leaf level"))
                    }
                }
            }
        }
        Ok(Proof::new(pages))
    }

    fn verify_proof(root: Hash, key: &[u8], proof: &Proof) -> ProofVerdict {
        proof::verify(root, key, proof)
    }

    fn prove_range(&self, _start: Bound<&[u8]>, _end: Bound<&[u8]>) -> Result<Proof> {
        // Hashing destroys key order: any range may touch any bucket, so
        // the complete (deduplicated) page set *is* the range proof. The
        // skeleton's identical pages — empty buckets above all — collapse
        // to one copy each, so sparse trees stay cheap to prove.
        let mut pages = Vec::new();
        let mut seen = std::collections::HashSet::new();
        let mut stack = vec![self.root];
        while let Some(hash) = stack.pop() {
            let page = self.store.try_get(&hash)?.ok_or(IndexError::MissingPage(hash))?;
            let node = Node::decode(&page)?;
            if !seen.insert(hash) {
                continue; // identical subtree: identical page set
            }
            pages.push(page);
            if let Node::Internal { children, .. } = node {
                stack.extend(children);
            }
        }
        Ok(Proof::new(pages))
    }

    fn prove_batch(&self, keys: &[Bytes]) -> Result<Proof> {
        let mut pages = Vec::new();
        let mut seen = std::collections::HashSet::new();
        for key in keys {
            for page in self.prove(key)?.into_pages() {
                if seen.insert(siri_crypto::sha256(&page)) {
                    pages.push(page);
                }
            }
        }
        Ok(Proof::new(pages))
    }
}

impl MerkleBucketTree {
    /// Verify a range proof against a trusted branch digest — see
    /// [`siri_core::verify_anchored_range`].
    pub fn verify_range(
        digest: Hash,
        start: Bound<&[u8]>,
        end: Bound<&[u8]>,
        proof: &Proof,
    ) -> siri_core::RangeVerdict {
        siri_core::verify_anchored_range(&proof::MbtProofScheme, digest, start, end, proof)
    }

    /// Verify a batched multi-key proof against a trusted branch digest —
    /// see [`siri_core::verify_anchored_batch`].
    pub fn verify_batch(digest: Hash, keys: &[Bytes], proof: &Proof) -> siri_core::BatchVerdict {
        siri_core::verify_anchored_batch(&proof::MbtProofScheme, digest, keys, proof)
    }
}

impl StructureStats for MerkleBucketTree {
    fn structure_stats(&self) -> Result<StructureReport> {
        let pages = self.page_set();
        let (_, _, mean_fill) = self.bucket_fill_stats()?;
        let entries = self.len()? as u64;
        Ok(StructureReport {
            nodes: pages.len() as u64,
            bytes: pages.byte_size(),
            // The skeleton has a fixed logical height regardless of how
            // many of its pages deduplicate into one stored copy.
            height: self.topo.height() as u32,
            entries,
            leaf_occupancy: mean_fill,
        })
    }

    fn node_cache_stats(&self) -> CacheStats {
        MerkleBucketTree::node_cache_stats(self)
    }
}

// Re-export the entry codec length so benches can size workloads; keeps the
// dependency graph one-directional.
pub use entry_codec::entry_encoded_len;

#[cfg(test)]
mod tests {
    use super::*;
    use siri_core::MemStore;

    fn make(buckets: usize, fanout: usize) -> MerkleBucketTree {
        MerkleBucketTree::new(MemStore::new_shared(), buckets, fanout).unwrap()
    }

    fn e(k: &str, v: &str) -> Entry {
        Entry::new(k.as_bytes().to_vec(), v.as_bytes().to_vec())
    }

    #[test]
    fn empty_tree_lookups_miss() {
        let t = make(8, 2);
        assert_eq!(t.get(b"nothing").unwrap(), None);
        assert!(t.is_empty());
        assert_eq!(t.len().unwrap(), 0);
    }

    #[test]
    fn insert_then_get() {
        let mut t = make(16, 4);
        t.insert(b"alpha", Bytes::from_static(b"1")).unwrap();
        t.insert(b"beta", Bytes::from_static(b"2")).unwrap();
        assert_eq!(t.get(b"alpha").unwrap().unwrap().as_ref(), b"1");
        assert_eq!(t.get(b"beta").unwrap().unwrap().as_ref(), b"2");
        assert_eq!(t.get(b"gamma").unwrap(), None);
        assert_eq!(t.len().unwrap(), 2);
    }

    #[test]
    fn overwrite_updates_value() {
        let mut t = make(8, 2);
        t.insert(b"k", Bytes::from_static(b"v1")).unwrap();
        let old_root = t.root();
        t.insert(b"k", Bytes::from_static(b"v2")).unwrap();
        assert_eq!(t.get(b"k").unwrap().unwrap().as_ref(), b"v2");
        assert_ne!(t.root(), old_root, "digest must change on update");
        assert_eq!(t.len().unwrap(), 1);
    }

    #[test]
    fn old_version_remains_readable_after_update() {
        let mut t = make(8, 2);
        t.insert(b"k", Bytes::from_static(b"v1")).unwrap();
        let snapshot = t.clone();
        t.insert(b"k", Bytes::from_static(b"v2")).unwrap();
        assert_eq!(snapshot.get(b"k").unwrap().unwrap().as_ref(), b"v1");
        assert_eq!(t.get(b"k").unwrap().unwrap().as_ref(), b"v2");
    }

    #[test]
    fn batch_equals_singles() {
        let entries: Vec<Entry> =
            (0..200).map(|i| e(&format!("key{i:04}"), &format!("val{i}"))).collect();
        let mut batched = make(32, 4);
        batched.batch_insert(entries.clone()).unwrap();
        let mut singles = make(32, 4);
        for en in &entries {
            singles.insert(&en.key, en.value.clone()).unwrap();
        }
        assert_eq!(batched.root(), singles.root(), "structurally invariant");
        assert_eq!(batched.scan().unwrap(), singles.scan().unwrap());
    }

    #[test]
    fn scan_is_sorted_and_complete() {
        let mut t = make(16, 4);
        let entries: Vec<Entry> = (0..100).rev().map(|i| e(&format!("k{i:03}"), "v")).collect();
        t.batch_insert(entries).unwrap();
        let scanned = t.scan().unwrap();
        assert_eq!(scanned.len(), 100);
        assert!(scanned.windows(2).all(|w| w[0].key < w[1].key));
    }

    #[test]
    fn trace_height_matches_topology() {
        let mut t = make(64, 4); // levels 64,16,4,1 → height 4
        t.insert(b"probe", Bytes::from_static(b"v")).unwrap();
        let (v, trace) = t.get_traced(b"probe").unwrap();
        assert!(v.is_some());
        assert_eq!(trace.height, 4);
        assert_eq!(trace.pages_loaded, 4);
        assert!(trace.leaf_entries_scanned >= 1);
    }

    #[test]
    fn diff_finds_exactly_the_changes() {
        let mut a = make(32, 4);
        a.batch_insert((0..50).map(|i| e(&format!("k{i:02}"), "base")).collect()).unwrap();
        let mut b = a.clone();
        b.insert(b"k07", Bytes::from_static(b"changed")).unwrap();
        b.insert(b"new-key", Bytes::from_static(b"added")).unwrap();
        let d = a.diff(&b).unwrap();
        assert_eq!(d.len(), 2);
        let keys: Vec<&[u8]> = d.iter().map(|x| x.key.as_ref()).collect();
        assert!(keys.contains(&b"k07".as_ref()));
        assert!(keys.contains(&b"new-key".as_ref()));
    }

    #[test]
    fn diff_of_identical_trees_is_empty_and_fast() {
        let mut a = make(32, 4);
        a.batch_insert((0..50).map(|i| e(&format!("k{i}"), "v")).collect()).unwrap();
        let b = a.clone();
        assert!(a.diff(&b).unwrap().is_empty());
    }

    #[test]
    fn single_bucket_degenerate_tree() {
        let mut t = make(1, 2);
        t.insert(b"only", Bytes::from_static(b"v")).unwrap();
        assert_eq!(t.get(b"only").unwrap().unwrap().as_ref(), b"v");
        let (_, trace) = t.get_traced(b"only").unwrap();
        assert_eq!(trace.height, 1, "bucket is the root");
    }

    #[test]
    fn page_set_counts_skeleton_shared_pages_once() {
        let t = make(8, 2);
        // Empty skeleton: 1 shared bucket page + 1 shared node per level
        // (all parents identical) = 1 + 3 = 4 distinct pages.
        assert_eq!(t.page_set().len(), 4);
    }

    #[test]
    fn bucket_fill_stats_reflect_uniform_hashing() {
        let mut t = make(64, 4);
        t.batch_insert((0..640).map(|i| e(&format!("key{i:04}"), "v")).collect()).unwrap();
        let (min, max, mean) = t.bucket_fill_stats().unwrap();
        assert!((mean - 10.0).abs() < 1e-9, "640 entries / 64 buckets");
        assert!(min >= 1 && max <= 30, "uniform-ish fill: min={min} max={max}");
    }

    #[test]
    fn delete_restores_root_and_prunes_to_empty_bucket_page() {
        let mut t = make(16, 4);
        t.batch_insert((0..50).map(|i| e(&format!("key{i:02}"), "v")).collect()).unwrap();
        let full_root = t.root();
        t.delete(b"key25").unwrap();
        assert_eq!(t.get(b"key25").unwrap(), None);
        assert_eq!(t.len().unwrap(), 49);
        assert_ne!(t.root(), full_root);
        // Reinsert: Structurally Invariant ⇒ identical root.
        t.insert(b"key25", Bytes::from_static(b"v")).unwrap();
        assert_eq!(t.root(), full_root);
        // Deleting everything re-canonicalizes to the empty skeleton.
        let empty = make(16, 4);
        let mut batch = WriteBatch::new();
        for i in 0..50 {
            batch.delete(format!("key{i:02}").into_bytes());
        }
        t.commit(batch).unwrap();
        assert!(t.is_empty());
        assert_eq!(t.root(), empty.root(), "empty buckets must dedupe to the shared page");
        // Deleting from an empty tree is a no-op.
        let root = t.root();
        t.delete(b"ghost").unwrap();
        assert_eq!(t.root(), root);
    }

    #[test]
    fn ragged_skeleton_shapes_are_well_formed() {
        // 9 buckets × fanout 2 gives a level shaped [F, F, F, F, T]: two
        // same-length parent chunks with *different* contents ([F,F] vs
        // [F,T]). A content-keyed skeleton memo must keep them distinct —
        // an earlier revision keyed by chunk length and conflated them.
        for (buckets, fanout) in [(9usize, 2usize), (10, 4), (23, 3), (5, 2)] {
            let mut t = make(buckets, fanout);
            let entries: Vec<Entry> =
                (0..200).map(|i| e(&format!("key{i:03}"), &format!("v{i}"))).collect();
            t.batch_insert(entries.clone()).unwrap();
            for en in &entries {
                assert_eq!(
                    t.get(&en.key).unwrap().as_deref(),
                    Some(en.value.as_ref()),
                    "({buckets},{fanout}) key {:?}",
                    en.key
                );
            }
            assert_eq!(t.len().unwrap(), 200);
            assert_eq!(t.scan().unwrap(), entries);
        }
    }

    #[test]
    fn range_cursor_merges_buckets_in_key_order() {
        let mut t = make(16, 4);
        t.batch_insert((0..200).map(|i| e(&format!("k{i:03}"), "v")).collect()).unwrap();
        let r =
            t.range(Bound::Included(b"k050"), Bound::Excluded(b"k060")).collect_entries().unwrap();
        assert_eq!(r.len(), 10);
        assert_eq!(r[0].key.as_ref(), b"k050");
        assert!(r.windows(2).all(|w| w[0].key < w[1].key), "cursor must merge sorted");
        // Full cursor equals the materialized scan.
        let all: Vec<Entry> =
            t.range(Bound::Unbounded, Bound::Unbounded).collect_entries().unwrap();
        assert_eq!(all, t.scan().unwrap());
        assert_eq!(all.len(), 200);
        // Exclusive/inclusive bound mix.
        let r =
            t.range(Bound::Excluded(b"k100"), Bound::Included(b"k102")).collect_entries().unwrap();
        assert_eq!(r.len(), 2);
        assert_eq!(r[0].key.as_ref(), b"k101");
        // An inverted window yields nothing and skips the O(B) bucket pin.
        let gets_before = t.store().stats().gets;
        assert_eq!(t.range(Bound::Included(b"z"), Bound::Excluded(b"a")).count(), 0);
        assert_eq!(t.store().stats().gets, gets_before, "empty window must not touch the store");
    }

    #[test]
    fn mixed_commit_applies_puts_and_deletes_atomically() {
        let mut t = make(8, 2);
        t.insert(b"stay", Bytes::from_static(b"1")).unwrap();
        t.insert(b"go", Bytes::from_static(b"2")).unwrap();
        let mut batch = WriteBatch::new();
        batch.delete(&b"go"[..]).put(&b"come"[..], &b"3"[..]);
        let root = t.commit(batch).unwrap();
        assert_eq!(root, t.root());
        assert_eq!(t.get(b"go").unwrap(), None);
        assert_eq!(t.get(b"come").unwrap().unwrap().as_ref(), b"3");
        assert_eq!(t.len().unwrap(), 2);
    }

    #[test]
    fn update_cost_touches_one_path() {
        let mut t = make(64, 4);
        t.batch_insert((0..500).map(|i| e(&format!("k{i}"), "v")).collect()).unwrap();
        let before = t.page_set();
        let mut v2 = t.clone();
        v2.insert(b"k123", Bytes::from_static(b"changed")).unwrap();
        let after = v2.page_set();
        let fresh = after.difference(&before);
        // Exactly one path is rewritten: height 4 → ≤4 new pages.
        assert!(fresh.len() <= 4, "expected ≤4 new pages, got {}", fresh.len());
    }
}
