//! Streaming sorted range cursor over the bucket tree.
//!
//! Hashing destroys global key order (§3.4.2), so a sorted scan cannot
//! walk the MBT left-to-right the way the ordered structures do. Instead
//! the cursor performs an on-the-fly k-way merge: it pins the decoded
//! bucket nodes (B `Arc`s out of the shared node cache — pages, not
//! copies) and repeatedly pops the globally smallest remaining entry from
//! a min-heap of per-bucket positions. Entries stream out one at a time;
//! the dataset is never collated into a vector and never re-sorted.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::ops::Bound;
use std::sync::Arc;

use bytes::Bytes;
use siri_core::{before_start, past_end, Entry, IndexError, Result};

use crate::node::Node;
use crate::MerkleBucketTree;

/// One per-bucket merge position, ordered by its current key (heap ties
/// broken by bucket index for determinism).
#[derive(PartialEq, Eq)]
struct Pos {
    key: Bytes,
    bucket: usize,
    idx: usize,
}

impl Ord for Pos {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (&self.key, self.bucket, self.idx).cmp(&(&other.key, other.bucket, other.idx))
    }
}

impl PartialOrd for Pos {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

enum State {
    /// Buckets not yet pinned; done lazily so constructor failures surface
    /// as stream errors.
    Pending,
    Running,
    Done,
}

/// Streaming sorted cursor over one MBT version. Owns a cheap handle clone
/// (store + topology + root + shared node cache), so it is `'static`.
pub struct RangeCursor {
    tree: MerkleBucketTree,
    start: Bound<Vec<u8>>,
    end: Bound<Vec<u8>>,
    /// Decoded bucket nodes, pinned for the cursor's lifetime.
    buckets: Vec<Arc<Node>>,
    heap: BinaryHeap<Reverse<Pos>>,
    state: State,
}

impl RangeCursor {
    pub fn new(tree: MerkleBucketTree, start: Bound<Vec<u8>>, end: Bound<Vec<u8>>) -> Self {
        RangeCursor {
            tree,
            start,
            end,
            buckets: Vec::new(),
            heap: BinaryHeap::new(),
            state: State::Pending,
        }
    }

    fn entries_of(&self, bucket: usize) -> &[Entry] {
        match &*self.buckets[bucket] {
            Node::Bucket { entries, .. } => entries,
            Node::Internal { .. } => &[],
        }
    }

    /// The window is provably empty (start past end), so the O(B) bucket
    /// pinning can be skipped entirely.
    fn window_is_empty(&self) -> bool {
        match (&self.start, &self.end) {
            (Bound::Included(s) | Bound::Excluded(s), Bound::Included(e) | Bound::Excluded(e)) => {
                if matches!((&self.start, &self.end), (Bound::Included(_), Bound::Included(_))) {
                    s > e
                } else {
                    s >= e
                }
            }
            _ => false,
        }
    }

    /// Pin every bucket node and seed the heap at the first in-bounds
    /// position of each.
    fn init(&mut self) -> Result<()> {
        if self.window_is_empty() {
            return Ok(());
        }
        let count = self.tree.topology().buckets();
        self.buckets.reserve(count);
        for bucket in 0..count {
            let node = self.tree.bucket_node(bucket)?;
            if !matches!(&*node, Node::Bucket { .. }) {
                return Err(IndexError::CorruptStructure("path did not end in a bucket"));
            }
            self.buckets.push(node);
            let entries = self.entries_of(bucket);
            let idx = entries.partition_point(|e| before_start(&self.start, &e.key));
            if idx < entries.len() && !past_end(&self.end, &entries[idx].key) {
                self.heap.push(Reverse(Pos { key: entries[idx].key.clone(), bucket, idx }));
            }
        }
        Ok(())
    }
}

impl Iterator for RangeCursor {
    type Item = Result<Entry>;

    fn next(&mut self) -> Option<Self::Item> {
        match self.state {
            State::Done => return None,
            State::Pending => {
                if let Err(e) = self.init() {
                    self.state = State::Done;
                    return Some(Err(e));
                }
                self.state = State::Running;
            }
            State::Running => {}
        }
        let Reverse(pos) = self.heap.pop()?;
        let entries = self.entries_of(pos.bucket);
        let entry = entries[pos.idx].clone();
        // Advance this bucket's position; drop it once it leaves the window
        // (its entries are sorted, so nothing further can qualify).
        let next_idx = pos.idx + 1;
        if next_idx < entries.len() && !past_end(&self.end, &entries[next_idx].key) {
            self.heap.push(Reverse(Pos {
                key: entries[next_idx].key.clone(),
                bucket: pos.bucket,
                idx: next_idx,
            }));
        }
        Some(Ok(entry))
    }
}
