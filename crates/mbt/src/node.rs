//! MBT page codec.
//!
//! Two page kinds:
//!
//! * **Internal** — the Merkle fan-in: child hashes in slot order.
//! * **Bucket** — sorted entries ("the entries within each bucket are
//!   arranged in sorted order", §3.4.2).
//!
//! Every page embeds the structure parameters (B, fanout) so that proof
//! verification needs nothing beyond the trusted digest, and so that pages
//! from differently-parameterised MBTs can never be confused.

use bytes::Bytes;
use siri_core::{entry_codec, Entry, IndexError, Result};
use siri_crypto::Hash;
use siri_encoding::{ByteReader, ByteWriter, CodecError};

const TAG_INTERNAL: u8 = 0x01;
const TAG_BUCKET: u8 = 0x02;

/// Decoded MBT page.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Node {
    Internal { buckets: u64, fanout: u64, children: Vec<Hash> },
    Bucket { buckets: u64, fanout: u64, entries: Vec<Entry> },
}

impl Node {
    pub fn params(&self) -> (u64, u64) {
        match self {
            Node::Internal { buckets, fanout, .. } | Node::Bucket { buckets, fanout, .. } => {
                (*buckets, *fanout)
            }
        }
    }

    pub fn encode(&self) -> Bytes {
        let mut w = ByteWriter::with_capacity(self.encoded_len());
        self.encode_into(&mut w);
        debug_assert_eq!(w.len(), self.encoded_len());
        Bytes::from(w.into_vec())
    }

    /// Exact byte length of [`Node::encode`]'s output — pages are sized to
    /// their final length in one allocation.
    pub fn encoded_len(&self) -> usize {
        use siri_encoding::varint;
        match self {
            Node::Internal { buckets, fanout, children } => {
                1 + varint::len(*buckets)
                    + varint::len(*fanout)
                    + varint::len(children.len() as u64)
                    + children.len() * Hash::LEN
            }
            Node::Bucket { buckets, fanout, entries } => {
                1 + varint::len(*buckets)
                    + varint::len(*fanout)
                    + entry_codec::entries_encoded_len(entries)
            }
        }
    }

    /// Serialize into an existing writer — entries stream straight into the
    /// page buffer instead of transiting a temporary `Vec`.
    pub fn encode_into(&self, w: &mut ByteWriter) {
        match self {
            Node::Internal { buckets, fanout, children } => {
                w.put_u8(TAG_INTERNAL);
                w.put_varint(*buckets);
                w.put_varint(*fanout);
                w.put_varint(children.len() as u64);
                for c in children {
                    w.put_raw(c.as_bytes());
                }
            }
            Node::Bucket { buckets, fanout, entries } => {
                w.put_u8(TAG_BUCKET);
                w.put_varint(*buckets);
                w.put_varint(*fanout);
                entry_codec::encode_entries_into(w, entries);
            }
        }
    }

    /// Copying decode (tests, diagnostics, store walks).
    pub fn decode(page: &[u8]) -> Result<Node> {
        Self::decode_zc(&Bytes::copy_from_slice(page))
    }

    /// Zero-copy decode — the hot read path.
    pub fn decode_zc(page: &Bytes) -> Result<Node> {
        let mut r = ByteReader::new(page);
        let tag = r.get_u8()?;
        let buckets = r.get_varint()?;
        let fanout = r.get_varint()?;
        match tag {
            TAG_INTERNAL => {
                let count = r.get_varint()?;
                if count > page.len() as u64 / Hash::LEN as u64 + 1 {
                    return Err(CodecError::BadLength { what: "child count" }.into());
                }
                let mut children = Vec::with_capacity(count as usize);
                for _ in 0..count {
                    let raw = r.get_raw(Hash::LEN)?;
                    let child = Hash::from_slice(raw)
                        .ok_or(IndexError::CorruptStructure("bad child digest length"))?;
                    children.push(child);
                }
                r.finish()?;
                Ok(Node::Internal { buckets, fanout, children })
            }
            TAG_BUCKET => {
                let entries = entry_codec::decode_entries_zc(page, r.offset())?;
                // Buckets must be sorted for binary search; enforce on
                // decode so corrupted pages cannot produce wrong lookups.
                if entries.windows(2).any(|w| w[0].key >= w[1].key) {
                    return Err(IndexError::CorruptStructure("unsorted bucket"));
                }
                Ok(Node::Bucket { buckets, fanout, entries })
            }
            other => Err(CodecError::BadTag(other).into()),
        }
    }

    /// Child hashes referenced by a page — the store-walk decoder.
    pub fn children_of_page(page: &[u8]) -> Vec<Hash> {
        match Node::decode(page) {
            Ok(Node::Internal { children, .. }) => children,
            _ => Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use siri_crypto::sha256;

    fn e(k: &str, v: &str) -> Entry {
        Entry::new(k.as_bytes().to_vec(), v.as_bytes().to_vec())
    }

    #[test]
    fn internal_round_trip() {
        let node = Node::Internal {
            buckets: 1000,
            fanout: 4,
            children: vec![sha256(b"a"), sha256(b"b"), sha256(b"c")],
        };
        let enc = node.encode();
        assert_eq!(Node::decode(&enc).unwrap(), node);
    }

    #[test]
    fn bucket_round_trip() {
        let node = Node::Bucket { buckets: 8, fanout: 2, entries: vec![e("a", "1"), e("b", "2")] };
        let enc = node.encode();
        assert_eq!(Node::decode(&enc).unwrap(), node);
    }

    #[test]
    fn empty_bucket_pages_are_identical() {
        // All-empty buckets must share one page — this is what makes the
        // fixed MBT skeleton cheap under content addressing.
        let a = Node::Bucket { buckets: 8, fanout: 2, entries: Vec::new() }.encode();
        let b = Node::Bucket { buckets: 8, fanout: 2, entries: Vec::new() }.encode();
        assert_eq!(a, b);
    }

    #[test]
    fn decode_rejects_unsorted_bucket() {
        let node = Node::Bucket { buckets: 8, fanout: 2, entries: vec![e("b", "2"), e("a", "1")] };
        // encode() doesn't sort; decode must reject.
        assert!(matches!(Node::decode(&node.encode()), Err(IndexError::CorruptStructure(_))));
    }

    #[test]
    fn decode_rejects_bad_tag_and_truncation() {
        assert!(Node::decode(&[0x77, 0, 0]).is_err());
        let node = Node::Internal { buckets: 4, fanout: 2, children: vec![sha256(b"x")] };
        let enc = node.encode();
        assert!(Node::decode(&enc[..enc.len() - 1]).is_err());
    }

    #[test]
    fn children_decoder_for_walks() {
        let inner = Node::Internal { buckets: 4, fanout: 2, children: vec![sha256(b"x")] };
        assert_eq!(Node::children_of_page(&inner.encode()), vec![sha256(b"x")]);
        let bucket = Node::Bucket { buckets: 4, fanout: 2, entries: Vec::new() };
        assert!(Node::children_of_page(&bucket.encode()).is_empty());
    }
}
