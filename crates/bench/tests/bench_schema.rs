//! Schema check for the BENCH artifacts: emit a real report per grid
//! workload, round-trip it through the JSON file on disk, and assert the
//! required fields — so the artifact format cannot silently drift out
//! from under `bench-diff` and the CI gate.

use siri_bench::table::Json;
use siri_bench::{grid, Backend, Report, RunConfig, BENCH_SCHEMA_VERSION};

fn tiny() -> RunConfig {
    RunConfig { scale: 0.001, ops: 100, ..Default::default() }
}

/// Every field the schema (v3) requires per index entry, by section.
const REQUIRED_LOAD: &[&str] = &[
    "entries",
    "commits",
    "entries_per_sec",
    "payload_bytes",
    "bytes_written",
    "write_amplification",
    "bytes_written_per_commit",
];
const REQUIRED_RUN: &[&str] = &["ops", "ops_per_sec", "latency_us"];
const REQUIRED_STRUCTURE: &[&str] =
    &["nodes", "height", "entries", "leaf_occupancy", "avg_node_bytes"];
const REQUIRED_STORAGE: &[&str] = &[
    "logical_bytes",
    "unique_bytes",
    "unique_pages",
    "share_ratio",
    "dedup_savings",
    "bytes_written",
];
const REQUIRED_CACHES: &[&str] = &["node_cache_hit_rate", "store_hit_rate", "page_cache_hit_rate"];

fn assert_schema(doc: &Json, experiment: &str) {
    for field in [
        "schema_version",
        "experiment",
        "workload",
        "backend",
        "scale",
        "records",
        "ops",
        "seed",
        "node_bytes",
        "calibration_hash_mbps",
        "shards",
        "adaptive_sharding",
        "indexes",
    ] {
        assert!(doc.get(field).is_some(), "{experiment}: missing top-level `{field}`");
    }
    assert_eq!(
        doc.get("schema_version").and_then(Json::as_u64),
        Some(BENCH_SCHEMA_VERSION),
        "{experiment}"
    );
    let indexes = doc.get("indexes").and_then(Json::as_arr).expect("indexes array");
    assert_eq!(indexes.len(), 4, "{experiment}: all four structures must report");
    for ix in indexes {
        let name = ix.get("index").and_then(Json::as_str).expect("index name");
        for (section, fields) in [
            ("load", REQUIRED_LOAD),
            ("run", REQUIRED_RUN),
            ("structure", REQUIRED_STRUCTURE),
            ("storage", REQUIRED_STORAGE),
            ("caches", REQUIRED_CACHES),
        ] {
            let obj = ix
                .get(section)
                .unwrap_or_else(|| panic!("{experiment}/{name}: missing section `{section}`"));
            for field in fields {
                assert!(
                    obj.get(field).is_some(),
                    "{experiment}/{name}: missing `{section}.{field}`"
                );
            }
        }
        // Latencies carry the per-verb percentiles.
        for lat in ix.get("run").unwrap().get("latency_us").and_then(Json::as_arr).unwrap() {
            for field in ["verb", "count", "p50", "p95", "p99"] {
                assert!(lat.get(field).is_some(), "{experiment}/{name}: latency `{field}`");
            }
        }
    }
}

#[test]
fn emitted_bench_json_round_trips_and_has_required_fields() {
    let dir = std::env::temp_dir().join(format!("siri-bench-schema-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    for workload in grid::GRID_WORKLOADS {
        let report = grid::run_cell(workload, Backend::Mem, tiny());
        let path = report.write_to(&dir).expect("write artifact");
        assert_eq!(
            path.file_name().unwrap().to_string_lossy(),
            format!("BENCH_{workload}_mem.json")
        );

        // Round trip through the actual bytes on disk.
        let text = std::fs::read_to_string(&path).unwrap();
        let doc = Json::parse(&text).expect("artifact must be valid JSON");
        assert_schema(&doc, &report.experiment);
        let back = Report::parse(&text).expect("artifact must satisfy the Report schema");
        assert_eq!(back, report, "{workload}: disk round trip must be lossless");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn file_backend_artifact_passes_the_same_schema() {
    let report = grid::run_cell("ycsb", Backend::File, tiny());
    let doc = Json::parse(&report.to_json().render()).unwrap();
    assert_schema(&doc, &report.experiment);
    assert_eq!(doc.get("backend").and_then(Json::as_str), Some("file"));
}

#[test]
fn tampered_artifact_is_rejected() {
    let report = grid::run_cell("ycsb", Backend::Mem, tiny());
    let text = report.to_json().render();
    // Renaming a required field (as an accidental schema change would)
    // must fail the strict parse.
    let drifted = text.replace("\"write_amplification\"", "\"write_amp\"");
    assert!(drifted != text, "fixture must actually change");
    let err = Report::parse(&drifted).unwrap_err();
    assert!(err.contains("write_amplification"), "{err}");
}
